// Package wolf is a Go reproduction of WOLF, the trace-driven dynamic
// deadlock detection and reproduction system of Samak and Ramanathan
// (PPoPP 2014).
//
// WOLF analyzes an execution of a multithreaded program and reports
// potential deadlocks, then classifies each one automatically:
//
//   - the Extended Dynamic Cycle Detector finds cycles in the lock
//     dependency relation Dσ, recording per-thread timestamps and
//     (S, J) vector clocks;
//   - the Pruner discards cycles whose threads provably never overlap;
//   - the Generator builds a synchronization dependency graph Gs per
//     cycle and discards cycles whose Gs is itself cyclic;
//   - the Replayer re-executes the program steering the schedule by Gs;
//     a re-execution that deadlocks at the recorded source locations
//     confirms the defect.
//
// Programs under analysis are written against the deterministic
// cooperative scheduler in package wolf/sim; the analysis re-executes
// them through a sim.Factory. A DeadlockFuzzer-style baseline
// (randomized, abstraction-based reproduction) is included for
// comparison, along with the paper's benchmark workloads and the
// harness that regenerates its tables and figures (cmd/paper).
//
// Quickstart:
//
//	factory := func() (sim.Program, sim.Options) {
//		var a, b *sim.Lock
//		opts := sim.Options{Setup: func(w *sim.World) {
//			a, b = w.NewLock("A"), w.NewLock("B")
//		}}
//		prog := func(t *sim.Thread) {
//			h := t.Go("worker", func(u *sim.Thread) {
//				u.Lock(b, "worker.go:7")
//				u.Lock(a, "worker.go:8")
//				u.Unlock(a, "worker.go:9")
//				u.Unlock(b, "worker.go:10")
//			}, "main.go:3")
//			t.Lock(a, "main.go:4")
//			t.Lock(b, "main.go:5")
//			t.Unlock(b, "main.go:6")
//			t.Unlock(a, "main.go:7")
//			t.Join(h, "main.go:8")
//		}
//		return prog, opts
//	}
//	report := wolf.Analyze(factory, wolf.Config{})
//	fmt.Print(report)
package wolf

import (
	"wolf/internal/core"
	"wolf/internal/fuzzer"
	"wolf/internal/replay"
	"wolf/sim"
)

// Re-exported pipeline types; see the internal/core documentation for
// field details.
type (
	// Config controls an analysis (detection seeds, replay budget,
	// ablation switches).
	Config = core.Config
	// Report is the outcome of analyzing one program.
	Report = core.Report
	// CycleReport is the verdict for one detected lock-graph cycle.
	CycleReport = core.CycleReport
	// DefectReport aggregates cycles sharing a source-location
	// signature.
	DefectReport = core.DefectReport
	// Classification is a cycle or defect verdict.
	Classification = core.Classification
	// Timings are the pipeline phase durations.
	Timings = core.Timings
)

// Classification values.
const (
	// Unknown: neither refuted nor reproduced.
	Unknown = core.Unknown
	// FalseByPruner: refuted by vector-clock pruning.
	FalseByPruner = core.FalseByPruner
	// FalseByGenerator: refuted by a cyclic synchronization dependency
	// graph.
	FalseByGenerator = core.FalseByGenerator
	// Confirmed: automatically reproduced.
	Confirmed = core.Confirmed
)

// Analyze runs the full WOLF pipeline on the program built by factory.
func Analyze(factory sim.Factory, cfg Config) *Report {
	return core.Analyze(factory, cfg)
}

// AnalyzeDeadlockFuzzer runs the DeadlockFuzzer baseline: identical
// detection, no pruning, randomized abstraction-based reproduction.
func AnalyzeDeadlockFuzzer(factory sim.Factory, cfg Config) *Report {
	return core.AnalyzeDF(factory, cfg)
}

// HitRate replays one analyzed cycle `runs` times and returns the
// fraction of runs that deadlocked at the recorded source locations —
// the paper's Figure 8 statistic. The cycle report must come from
// Analyze (it carries the synchronization dependency graph); pruned
// cycles return 0.
func HitRate(factory sim.Factory, cr *CycleReport, runs int) float64 {
	if cr.Gs == nil {
		return 0
	}
	return replay.HitRate(factory, cr.Gs, cr.Cycle, runs, replay.Config{})
}

// BaselineHitRate is HitRate for the DeadlockFuzzer baseline, which
// needs only the cycle.
func BaselineHitRate(factory sim.Factory, cr *CycleReport, runs int) float64 {
	return fuzzer.HitRate(factory, cr.Cycle, runs, fuzzer.Config{})
}
