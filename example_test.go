package wolf_test

import (
	"fmt"

	"wolf"
	"wolf/sim"
)

// Example demonstrates the full pipeline on a two-thread lock-order
// inversion: detection, classification and automatic confirmation.
func Example() {
	factory := func() (sim.Program, sim.Options) {
		var a, b *sim.Lock
		opts := sim.Options{Setup: func(w *sim.World) {
			a, b = w.NewLock("A"), w.NewLock("B")
		}}
		prog := func(t *sim.Thread) {
			h := t.Go("worker", func(u *sim.Thread) {
				u.Lock(b, "worker.go:7")
				u.Lock(a, "worker.go:8")
				u.Unlock(a, "worker.go:9")
				u.Unlock(b, "worker.go:10")
			}, "main.go:3")
			t.Lock(a, "main.go:4")
			t.Lock(b, "main.go:5")
			t.Unlock(b, "main.go:6")
			t.Unlock(a, "main.go:7")
			t.Join(h, "main.go:8")
		}
		return prog, opts
	}
	report := wolf.Analyze(factory, wolf.Config{DetectSeeds: []int64{3}})
	for _, d := range report.Defects {
		fmt.Printf("%s: %s\n", d.Signature, d.Class)
	}
	// Output:
	// main.go:5+worker.go:8: confirmed
}

// ExampleAnalyze_falsePositive shows the Pruner eliminating the paper's
// Figure 1 pattern: a thread that starts another while holding both
// locks can never deadlock with it.
func ExampleAnalyze_falsePositive() {
	factory := func() (sim.Program, sim.Options) {
		var tc, ct *sim.Lock
		opts := sim.Options{Setup: func(w *sim.World) {
			tc, ct = w.NewLock("ThreadCache"), w.NewLock("CachedThread")
		}}
		prog := func(t *sim.Thread) {
			t.Lock(tc, "init:401")
			t.Lock(ct, "init:75")
			h := t.Go("cached", func(u *sim.Thread) {
				u.Lock(ct, "run:24")
				u.Lock(tc, "run:175")
				u.Unlock(tc, "run:176")
				u.Unlock(ct, "run:56")
			}, "init:76")
			t.Unlock(ct, "init:78")
			t.Unlock(tc, "init:417")
			t.Join(h, "init:end")
		}
		return prog, opts
	}
	report := wolf.Analyze(factory, wolf.Config{DetectSeeds: []int64{2}})
	for _, d := range report.Defects {
		fmt.Printf("%s: %s\n", d.Signature, d.Class)
	}
	// Output:
	// init:75+run:175: false(pruner)
}
