package collections

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// mapImpls builds each Map implementation for table-driven tests.
func mapImpls() map[string]func() Map[int, string] {
	return map[string]func() Map[int, string]{
		"HashMap":         func() Map[int, string] { return NewHashMap[int, string](IntHasher) },
		"TreeMap":         func() Map[int, string] { return NewTreeMap[int, string](IntLess) },
		"LinkedHashMap":   func() Map[int, string] { return NewLinkedHashMap[int, string](IntHasher) },
		"IdentityHashMap": func() Map[int, string] { return NewIdentityHashMap[int, string](IntHasher) },
		"WeakHashMap":     func() Map[int, string] { return NewWeakHashMap[int, string](IntHasher) },
	}
}

func TestMapBasics(t *testing.T) {
	for name, mk := range mapImpls() {
		t.Run(name, func(t *testing.T) {
			m := mk()
			if m.Size() != 0 {
				t.Fatal("new map not empty")
			}
			if _, ok := m.Get(1); ok {
				t.Fatal("Get on empty")
			}
			if _, had := m.Put(1, "one"); had {
				t.Fatal("Put reported replacement on fresh key")
			}
			if old, had := m.Put(1, "uno"); !had || old != "one" {
				t.Fatalf("Put replace = %q/%v", old, had)
			}
			if v, ok := m.Get(1); !ok || v != "uno" {
				t.Fatalf("Get = %q/%v", v, ok)
			}
			if !m.ContainsKey(1) || m.ContainsKey(2) {
				t.Fatal("ContainsKey wrong")
			}
			if v, ok := m.Remove(1); !ok || v != "uno" {
				t.Fatalf("Remove = %q/%v", v, ok)
			}
			if _, ok := m.Remove(1); ok {
				t.Fatal("double Remove")
			}
			if m.Size() != 0 {
				t.Fatal("size after removal")
			}
			for i := 0; i < 100; i++ {
				m.Put(i, "v")
			}
			if m.Size() != 100 {
				t.Fatalf("size = %d", m.Size())
			}
			m.Clear()
			if m.Size() != 0 || m.ContainsKey(50) {
				t.Fatal("Clear wrong")
			}
		})
	}
}

// TestMapModelProperty drives each implementation against Go's map.
func TestMapModelProperty(t *testing.T) {
	for name, mk := range mapImpls() {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				m := mk()
				model := make(map[int]string)
				vals := []string{"a", "b", "c", "d"}
				for op := 0; op < 400; op++ {
					k := rng.Intn(60)
					switch rng.Intn(4) {
					case 0, 1:
						v := vals[rng.Intn(len(vals))]
						old, had := m.Put(k, v)
						mold, mhad := model[k]
						if had != mhad || (had && old != mold) {
							return false
						}
						model[k] = v
					case 2:
						old, had := m.Remove(k)
						mold, mhad := model[k]
						if had != mhad || (had && old != mold) {
							return false
						}
						delete(model, k)
					case 3:
						v, ok := m.Get(k)
						mv, mok := model[k]
						if ok != mok || (ok && v != mv) {
							return false
						}
					}
					if m.Size() != len(model) {
						return false
					}
				}
				// Full-content comparison via Each.
				seen := make(map[int]string)
				m.Each(func(k int, v string) bool {
					seen[k] = v
					return true
				})
				if len(seen) != len(model) {
					return false
				}
				for k, v := range model {
					if seen[k] != v {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTreeMapInvariants checks red-black properties under heavy churn.
func TestTreeMapInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewTreeMap[int, int](IntLess)
		live := make(map[int]bool)
		for op := 0; op < 500; op++ {
			k := rng.Intn(100)
			if rng.Intn(3) == 0 {
				m.Remove(k)
				delete(live, k)
			} else {
				m.Put(k, op)
				live[k] = true
			}
			m.checkInvariants()
			if m.Size() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestTreeMapSortedIteration: Each and Keys ascend.
func TestTreeMapSortedIteration(t *testing.T) {
	m := NewTreeMap[int, int](IntLess)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		m.Put(rng.Intn(1000), i)
	}
	keys := m.Keys()
	if !sort.IntsAreSorted(keys) {
		t.Fatalf("keys not sorted: %v", keys)
	}
	if k, ok := m.FirstKey(); !ok || k != keys[0] {
		t.Fatalf("FirstKey = %d, want %d", k, keys[0])
	}
	if k, ok := m.LastKey(); !ok || k != keys[len(keys)-1] {
		t.Fatalf("LastKey = %d, want %d", k, keys[len(keys)-1])
	}
	empty := NewTreeMap[int, int](IntLess)
	if _, ok := empty.FirstKey(); ok {
		t.Fatal("FirstKey on empty")
	}
}

// TestLinkedHashMapOrder: iteration follows insertion order across
// removals and re-insertions.
func TestLinkedHashMapOrder(t *testing.T) {
	m := NewLinkedHashMap[int, string](IntHasher)
	for _, k := range []int{5, 1, 9, 3} {
		m.Put(k, "x")
	}
	m.Remove(1)
	m.Put(1, "again") // re-insertion goes to the back
	want := []int{5, 9, 3, 1}
	got := m.Keys()
	if len(got) != len(want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
}

// TestHashMapResizePreservesEntries crosses several resize thresholds.
func TestHashMapResizePreservesEntries(t *testing.T) {
	m := NewHashMap[int, int](IntHasher)
	for i := 0; i < 5000; i++ {
		m.Put(i, i*3)
	}
	for i := 0; i < 5000; i++ {
		if v, ok := m.Get(i); !ok || v != i*3 {
			t.Fatalf("lost entry %d after resize", i)
		}
	}
}

// TestIdentityMapDeletionCluster: linear-probing deletion must not break
// probe chains.
func TestIdentityMapDeletionCluster(t *testing.T) {
	// Colliding hasher forces one long cluster.
	m := NewIdentityHashMap[int, int](func(int) uint64 { return 0 })
	for i := 0; i < 8; i++ {
		m.Put(i, i)
	}
	m.Remove(0) // head of the cluster
	for i := 1; i < 8; i++ {
		if v, ok := m.Get(i); !ok || v != i {
			t.Fatalf("probe chain broken at %d", i)
		}
	}
}

// TestWeakHashMapExpunge: cleared keys vanish at the next operation.
func TestWeakHashMapExpunge(t *testing.T) {
	m := NewWeakHashMap[int, string](IntHasher)
	m.Put(1, "a")
	m.Put(2, "b")
	m.ClearRef(1)
	if m.Size() != 1 {
		t.Fatalf("size = %d, want 1 after expunge", m.Size())
	}
	if m.ContainsKey(1) {
		t.Fatal("cleared key still present")
	}
	// Re-inserting a cleared key resurrects it.
	m.Put(1, "c")
	if v, ok := m.Get(1); !ok || v != "c" {
		t.Fatal("resurrected key lost")
	}
	// ClearRef on an absent key is harmless.
	m.ClearRef(99)
	if m.Size() != 2 {
		t.Fatalf("size = %d, want 2", m.Size())
	}
}
