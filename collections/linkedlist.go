package collections

import "fmt"

// node is a doubly-linked list node.
type node[T comparable] struct {
	val        T
	prev, next *node[T]
}

// LinkedList is a doubly-linked List, the java.util.LinkedList analogue.
// It also provides deque operations.
type LinkedList[T comparable] struct {
	head, tail *node[T]
	size       int
}

// NewLinkedList returns an empty list.
func NewLinkedList[T comparable]() *LinkedList[T] { return &LinkedList[T]{} }

// Add appends v.
func (l *LinkedList[T]) Add(v T) { l.AddLast(v) }

// AddFirst prepends v.
func (l *LinkedList[T]) AddFirst(v T) {
	n := &node[T]{val: v, next: l.head}
	if l.head != nil {
		l.head.prev = n
	} else {
		l.tail = n
	}
	l.head = n
	l.size++
}

// AddLast appends v.
func (l *LinkedList[T]) AddLast(v T) {
	n := &node[T]{val: v, prev: l.tail}
	if l.tail != nil {
		l.tail.next = n
	} else {
		l.head = n
	}
	l.tail = n
	l.size++
}

// nodeAt walks to index i from the nearer end.
func (l *LinkedList[T]) nodeAt(i int) *node[T] {
	if i < 0 || i >= l.size {
		panic(fmt.Sprintf("collections: index %d out of range [0,%d)", i, l.size))
	}
	if i < l.size/2 {
		n := l.head
		for ; i > 0; i-- {
			n = n.next
		}
		return n
	}
	n := l.tail
	for i = l.size - 1 - i; i > 0; i-- {
		n = n.prev
	}
	return n
}

// Insert places v at index i.
func (l *LinkedList[T]) Insert(i int, v T) {
	switch {
	case i == 0:
		l.AddFirst(v)
	case i == l.size:
		l.AddLast(v)
	default:
		at := l.nodeAt(i)
		n := &node[T]{val: v, prev: at.prev, next: at}
		at.prev.next = n
		at.prev = n
		l.size++
	}
}

// Get returns the element at index i.
func (l *LinkedList[T]) Get(i int) T { return l.nodeAt(i).val }

// Set replaces index i and returns the old value.
func (l *LinkedList[T]) Set(i int, v T) T {
	n := l.nodeAt(i)
	old := n.val
	n.val = v
	return old
}

// unlink removes n from the chain.
func (l *LinkedList[T]) unlink(n *node[T]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	l.size--
}

// RemoveAt deletes index i and returns the removed value.
func (l *LinkedList[T]) RemoveAt(i int) T {
	n := l.nodeAt(i)
	l.unlink(n)
	return n.val
}

// Remove deletes the first occurrence of v.
func (l *LinkedList[T]) Remove(v T) bool {
	for n := l.head; n != nil; n = n.next {
		if n.val == v {
			l.unlink(n)
			return true
		}
	}
	return false
}

// RemoveFirst pops the head; ok is false when empty.
func (l *LinkedList[T]) RemoveFirst() (v T, ok bool) {
	if l.head == nil {
		return v, false
	}
	n := l.head
	l.unlink(n)
	return n.val, true
}

// RemoveLast pops the tail; ok is false when empty.
func (l *LinkedList[T]) RemoveLast() (v T, ok bool) {
	if l.tail == nil {
		return v, false
	}
	n := l.tail
	l.unlink(n)
	return n.val, true
}

// IndexOf returns the first index of v, or -1.
func (l *LinkedList[T]) IndexOf(v T) int {
	i := 0
	for n := l.head; n != nil; n = n.next {
		if n.val == v {
			return i
		}
		i++
	}
	return -1
}

// Contains reports whether v occurs.
func (l *LinkedList[T]) Contains(v T) bool { return l.IndexOf(v) >= 0 }

// Size returns the element count.
func (l *LinkedList[T]) Size() int { return l.size }

// Each iterates head to tail.
func (l *LinkedList[T]) Each(fn func(v T) bool) {
	for n := l.head; n != nil; n = n.next {
		if !fn(n.val) {
			return
		}
	}
}

// Clear removes every element.
func (l *LinkedList[T]) Clear() {
	l.head, l.tail, l.size = nil, nil, 0
}
