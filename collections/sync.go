package collections

import (
	"wolf/sim"
)

// Source sites of the synchronized wrappers, mirroring the
// java.util.Collections line numbers the paper reports. Compound
// operations (AddAll, RemoveAll, Equals) acquire this collection's mutex
// at one site and the other collection's mutex at another while still
// holding the first — the nesting pattern behind Figures 2 and 9.
const (
	SiteCollEquals    = "Collections.java:1561"
	SiteCollSize      = "Collections.java:1565"
	SiteCollContains  = "Collections.java:1567"
	SiteCollToArray   = "Collections.java:1570"
	SiteCollGet       = "Collections.java:1574"
	SiteCollAdd       = "Collections.java:1577"
	SiteCollRemove    = "Collections.java:1581"
	SiteCollClear     = "Collections.java:1584"
	SiteCollAddAll    = "Collections.java:1591"
	SiteCollRemoveAll = "Collections.java:1594"

	SiteMapEquals      = "Collections.java:2024"
	SiteMapSize        = "Collections.java:2028"
	SiteMapGet         = "Collections.java:2031"
	SiteMapPut         = "Collections.java:2034"
	SiteMapRemove      = "Collections.java:2037"
	SiteMapContainsKey = "Collections.java:2043"
	SiteMapClear       = "Collections.java:2046"
	SiteMapKeys        = "Collections.java:2049"
)

// SyncList is a synchronized view of a List, the
// Collections.synchronizedList analogue. Every operation runs inside
// the view's mutex; compound operations touch the other view's mutex
// while holding this one.
type SyncList[T comparable] struct {
	mu   *sim.Lock
	list List[T]
}

// NewSyncList wraps list in a synchronized view. instance names the
// mutex ("SyncColl.mutex#" + instance), so views created here share a
// lock abstraction, as same-site Java allocations do.
func NewSyncList[T comparable](w *sim.World, instance string, list List[T]) *SyncList[T] {
	return &SyncList[T]{mu: w.NewLock("SyncColl.mutex#" + instance), list: list}
}

// Mutex exposes the view's lock for tests and harnesses.
func (s *SyncList[T]) Mutex() *sim.Lock { return s.mu }

// Unwrap returns the backing list (callers must hold the mutex).
func (s *SyncList[T]) Unwrap() List[T] { return s.list }

// Add appends v under the mutex.
func (s *SyncList[T]) Add(t *sim.Thread, v T) {
	t.WithLock(s.mu, SiteCollAdd, func() { s.list.Add(v) })
}

// Remove deletes the first occurrence of v under the mutex.
func (s *SyncList[T]) Remove(t *sim.Thread, v T) (ok bool) {
	t.WithLock(s.mu, SiteCollRemove, func() { ok = s.list.Remove(v) })
	return ok
}

// Contains reports membership under the mutex.
func (s *SyncList[T]) Contains(t *sim.Thread, v T) (ok bool) {
	t.WithLock(s.mu, SiteCollContains, func() { ok = s.list.Contains(v) })
	return ok
}

// Size returns the element count under the mutex.
func (s *SyncList[T]) Size(t *sim.Thread) (n int) {
	t.WithLock(s.mu, SiteCollSize, func() { n = s.list.Size() })
	return n
}

// Get returns the element at index i under the mutex.
func (s *SyncList[T]) Get(t *sim.Thread, i int) (v T) {
	t.WithLock(s.mu, SiteCollGet, func() { v = s.list.Get(i) })
	return v
}

// Clear removes every element under the mutex.
func (s *SyncList[T]) Clear(t *sim.Thread) {
	t.WithLock(s.mu, SiteCollClear, func() { s.list.Clear() })
}

// ToArray snapshots the elements under the mutex.
func (s *SyncList[T]) ToArray(t *sim.Thread) (out []T) {
	t.WithLock(s.mu, SiteCollToArray, func() {
		out = make([]T, 0, s.list.Size())
		s.list.Each(func(v T) bool {
			out = append(out, v)
			return true
		})
	})
	return out
}

// AddAll appends every element of other: it locks this view's mutex
// (Collections.java:1591), then snapshots other via ToArray, which locks
// other's mutex (1570) — the nested acquisition of the paper's Figure 9.
func (s *SyncList[T]) AddAll(t *sim.Thread, other *SyncList[T]) {
	t.Lock(s.mu, SiteCollAddAll)
	for _, v := range other.ToArray(t) {
		s.list.Add(v)
	}
	t.Unlock(s.mu, SiteCollAddAll)
}

// RemoveAll removes every element contained in other: it locks this
// view's mutex (1594) and probes other.Contains (1567) while holding it.
func (s *SyncList[T]) RemoveAll(t *sim.Thread, other *SyncList[T]) (removed int) {
	t.Lock(s.mu, SiteCollRemoveAll)
	var keep []T
	s.list.Each(func(v T) bool {
		if other.Contains(t, v) {
			removed++
		} else {
			keep = append(keep, v)
		}
		return true
	})
	if removed > 0 {
		s.list.Clear()
		for _, v := range keep {
			s.list.Add(v)
		}
	}
	t.Unlock(s.mu, SiteCollRemoveAll)
	return removed
}

// Equals compares element sequences: it locks this view's mutex (1561)
// and queries other.Size (1565) and other.Get (1574) while holding it.
func (s *SyncList[T]) Equals(t *sim.Thread, other *SyncList[T]) (eq bool) {
	t.Lock(s.mu, SiteCollEquals)
	eq = true
	if other.Size(t) != s.list.Size() {
		eq = false
	} else {
		i := 0
		s.list.Each(func(v T) bool {
			if other.Get(t, i) != v {
				eq = false
				return false
			}
			i++
			return true
		})
	}
	t.Unlock(s.mu, SiteCollEquals)
	return eq
}

// SyncMap is a synchronized view of a Map, the
// Collections.synchronizedMap analogue.
type SyncMap[K comparable, V comparable] struct {
	mu *sim.Lock
	m  Map[K, V]
}

// NewSyncMap wraps m in a synchronized view; instance names the mutex
// ("SyncMap.mutex#" + instance).
func NewSyncMap[K comparable, V comparable](w *sim.World, instance string, m Map[K, V]) *SyncMap[K, V] {
	return &SyncMap[K, V]{mu: w.NewLock("SyncMap.mutex#" + instance), m: m}
}

// Mutex exposes the view's lock for tests and harnesses.
func (s *SyncMap[K, V]) Mutex() *sim.Lock { return s.mu }

// Unwrap returns the backing map (callers must hold the mutex).
func (s *SyncMap[K, V]) Unwrap() Map[K, V] { return s.m }

// Put stores v under k under the mutex.
func (s *SyncMap[K, V]) Put(t *sim.Thread, k K, v V) (old V, had bool) {
	t.WithLock(s.mu, SiteMapPut, func() { old, had = s.m.Put(k, v) })
	return old, had
}

// Get returns the value under k under the mutex.
func (s *SyncMap[K, V]) Get(t *sim.Thread, k K) (v V, ok bool) {
	t.WithLock(s.mu, SiteMapGet, func() { v, ok = s.m.Get(k) })
	return v, ok
}

// Remove deletes k under the mutex.
func (s *SyncMap[K, V]) Remove(t *sim.Thread, k K) (v V, ok bool) {
	t.WithLock(s.mu, SiteMapRemove, func() { v, ok = s.m.Remove(k) })
	return v, ok
}

// ContainsKey reports key membership under the mutex.
func (s *SyncMap[K, V]) ContainsKey(t *sim.Thread, k K) (ok bool) {
	t.WithLock(s.mu, SiteMapContainsKey, func() { ok = s.m.ContainsKey(k) })
	return ok
}

// Size returns the entry count under the mutex.
func (s *SyncMap[K, V]) Size(t *sim.Thread) (n int) {
	t.WithLock(s.mu, SiteMapSize, func() { n = s.m.Size() })
	return n
}

// Keys snapshots the keys under the mutex.
func (s *SyncMap[K, V]) Keys(t *sim.Thread) (ks []K) {
	t.WithLock(s.mu, SiteMapKeys, func() { ks = s.m.Keys() })
	return ks
}

// Clear removes every entry under the mutex.
func (s *SyncMap[K, V]) Clear(t *sim.Thread) {
	t.WithLock(s.mu, SiteMapClear, func() { s.m.Clear() })
}

// Equals implements AbstractMap.equals through the synchronized view:
// it locks this map's mutex (Collections.java:2024), compares sizes —
// calling other.Size, which briefly locks other's mutex (2028, the
// paper's "line 509") — and then compares values per key via other.Get
// (2031, the paper's "line 522"). Two threads equals-ing two maps in
// opposite orders produce exactly the four cycles of the paper's
// Figure 2, of which the last (both blocked at the Get) is infeasible
// because of the interim Size acquisition.
func (s *SyncMap[K, V]) Equals(t *sim.Thread, other *SyncMap[K, V]) (eq bool) {
	t.Lock(s.mu, SiteMapEquals)
	eq = true
	if other.Size(t) != s.m.Size() {
		eq = false
	} else {
		s.m.Each(func(k K, v V) bool {
			ov, ok := other.Get(t, k)
			if !ok || ov != v {
				eq = false
				return false
			}
			return true
		})
	}
	t.Unlock(s.mu, SiteMapEquals)
	return eq
}
