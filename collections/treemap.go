package collections

// TreeMap is a red-black tree map with sorted iteration, the
// java.util.TreeMap analogue.
type TreeMap[K comparable, V comparable] struct {
	less func(a, b K) bool
	root *rbNode[K, V]
	size int
}

// rbColor is a node colour.
type rbColor bool

const (
	red   rbColor = false
	black rbColor = true
)

// rbNode is a tree node.
type rbNode[K comparable, V comparable] struct {
	key                 K
	val                 V
	color               rbColor
	left, right, parent *rbNode[K, V]
}

// NewTreeMap returns an empty tree map ordered by less.
func NewTreeMap[K comparable, V comparable](less func(a, b K) bool) *TreeMap[K, V] {
	return &TreeMap[K, V]{less: less}
}

// IntLess orders ints ascending.
func IntLess(a, b int) bool { return a < b }

// StringLess orders strings lexicographically.
func StringLess(a, b string) bool { return a < b }

// find returns the node for k, or nil.
func (t *TreeMap[K, V]) find(k K) *rbNode[K, V] {
	n := t.root
	for n != nil {
		switch {
		case t.less(k, n.key):
			n = n.left
		case t.less(n.key, k):
			n = n.right
		default:
			return n
		}
	}
	return nil
}

// Get returns the value under k.
func (t *TreeMap[K, V]) Get(k K) (V, bool) {
	if n := t.find(k); n != nil {
		return n.val, true
	}
	var zero V
	return zero, false
}

// ContainsKey reports whether k is present.
func (t *TreeMap[K, V]) ContainsKey(k K) bool { return t.find(k) != nil }

// Size returns the entry count.
func (t *TreeMap[K, V]) Size() int { return t.size }

// rotateLeft rotates the subtree rooted at x leftward.
func (t *TreeMap[K, V]) rotateLeft(x *rbNode[K, V]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

// rotateRight rotates the subtree rooted at x rightward.
func (t *TreeMap[K, V]) rotateRight(x *rbNode[K, V]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

// Put stores v under k.
func (t *TreeMap[K, V]) Put(k K, v V) (old V, had bool) {
	var parent *rbNode[K, V]
	n := t.root
	for n != nil {
		parent = n
		switch {
		case t.less(k, n.key):
			n = n.left
		case t.less(n.key, k):
			n = n.right
		default:
			old, had = n.val, true
			n.val = v
			return old, had
		}
	}
	nn := &rbNode[K, V]{key: k, val: v, color: red, parent: parent}
	switch {
	case parent == nil:
		t.root = nn
	case t.less(k, parent.key):
		parent.left = nn
	default:
		parent.right = nn
	}
	t.size++
	t.fixInsert(nn)
	return old, false
}

// fixInsert restores red-black invariants after inserting z.
func (t *TreeMap[K, V]) fixInsert(z *rbNode[K, V]) {
	for z.parent != nil && z.parent.color == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			u := gp.right
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateRight(gp)
		} else {
			u := gp.left
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateLeft(gp)
		}
	}
	t.root.color = black
}

// minimum returns the leftmost node under n.
func minimum[K comparable, V comparable](n *rbNode[K, V]) *rbNode[K, V] {
	for n.left != nil {
		n = n.left
	}
	return n
}

// transplant replaces subtree u with subtree v (v may be nil); returns
// v's parent pointer holder for fixups.
func (t *TreeMap[K, V]) transplant(u, v *rbNode[K, V]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

// Remove deletes k. The deletion fixup follows CLRS, treating nil
// children as black leaves via the parent parameter.
func (t *TreeMap[K, V]) Remove(k K) (V, bool) {
	z := t.find(k)
	if z == nil {
		var zero V
		return zero, false
	}
	removed := z.val
	t.size--

	y := z
	yColor := y.color
	var x, xParent *rbNode[K, V]
	switch {
	case z.left == nil:
		x, xParent = z.right, z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x, xParent = z.left, z.parent
		t.transplant(z, z.left)
	default:
		y = minimum(z.right)
		yColor = y.color
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yColor == black {
		t.fixDelete(x, xParent)
	}
	return removed, true
}

// fixDelete restores invariants after removing a black node; x (possibly
// nil) is the doubly-black node, parent its parent.
func (t *TreeMap[K, V]) fixDelete(x, parent *rbNode[K, V]) {
	for x != t.root && (x == nil || x.color == black) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if w != nil && w.color == red {
				w.color = black
				parent.color = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if w == nil {
				x, parent = parent, parent.parent
				continue
			}
			lBlack := w.left == nil || w.left.color == black
			rBlack := w.right == nil || w.right.color == black
			if lBlack && rBlack {
				w.color = red
				x, parent = parent, parent.parent
				continue
			}
			if rBlack {
				if w.left != nil {
					w.left.color = black
				}
				w.color = red
				t.rotateRight(w)
				w = parent.right
			}
			w.color = parent.color
			parent.color = black
			if w.right != nil {
				w.right.color = black
			}
			t.rotateLeft(parent)
			x = t.root
			parent = nil
		} else {
			w := parent.left
			if w != nil && w.color == red {
				w.color = black
				parent.color = red
				t.rotateRight(parent)
				w = parent.left
			}
			if w == nil {
				x, parent = parent, parent.parent
				continue
			}
			lBlack := w.left == nil || w.left.color == black
			rBlack := w.right == nil || w.right.color == black
			if lBlack && rBlack {
				w.color = red
				x, parent = parent, parent.parent
				continue
			}
			if lBlack {
				if w.right != nil {
					w.right.color = black
				}
				w.color = red
				t.rotateLeft(w)
				w = parent.left
			}
			w.color = parent.color
			parent.color = black
			if w.left != nil {
				w.left.color = black
			}
			t.rotateRight(parent)
			x = t.root
			parent = nil
		}
	}
	if x != nil {
		x.color = black
	}
}

// Each iterates entries in ascending key order.
func (t *TreeMap[K, V]) Each(fn func(k K, v V) bool) {
	var walk func(n *rbNode[K, V]) bool
	walk = func(n *rbNode[K, V]) bool {
		if n == nil {
			return true
		}
		if !walk(n.left) {
			return false
		}
		if !fn(n.key, n.val) {
			return false
		}
		return walk(n.right)
	}
	walk(t.root)
}

// Keys returns every key in ascending order.
func (t *TreeMap[K, V]) Keys() []K {
	out := make([]K, 0, t.size)
	t.Each(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Clear removes every entry.
func (t *TreeMap[K, V]) Clear() {
	t.root = nil
	t.size = 0
}

// FirstKey returns the smallest key; ok is false when empty.
func (t *TreeMap[K, V]) FirstKey() (k K, ok bool) {
	if t.root == nil {
		return k, false
	}
	return minimum(t.root).key, true
}

// LastKey returns the largest key; ok is false when empty.
func (t *TreeMap[K, V]) LastKey() (k K, ok bool) {
	if t.root == nil {
		return k, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.key, true
}

// checkInvariants verifies red-black properties; used by tests. It
// returns the black height and panics on violation.
func (t *TreeMap[K, V]) checkInvariants() int {
	if t.root != nil && t.root.color != black {
		panic("collections: red root")
	}
	var walk func(n *rbNode[K, V]) int
	walk = func(n *rbNode[K, V]) int {
		if n == nil {
			return 1
		}
		if n.color == red {
			if (n.left != nil && n.left.color == red) || (n.right != nil && n.right.color == red) {
				panic("collections: red node with red child")
			}
		}
		if n.left != nil && n.left.parent != n {
			panic("collections: broken parent link (left)")
		}
		if n.right != nil && n.right.parent != n {
			panic("collections: broken parent link (right)")
		}
		lh := walk(n.left)
		rh := walk(n.right)
		if lh != rh {
			panic("collections: unequal black heights")
		}
		if n.color == black {
			lh++
		}
		return lh
	}
	return walk(t.root)
}
