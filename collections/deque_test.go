package collections

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestArrayDequeBasics(t *testing.T) {
	d := NewArrayDeque[int](2)
	if _, ok := d.PollFirst(); ok {
		t.Fatal("PollFirst on empty")
	}
	if _, ok := d.PollLast(); ok {
		t.Fatal("PollLast on empty")
	}
	d.AddLast(2)
	d.AddFirst(1)
	d.AddLast(3)
	if d.Size() != 3 {
		t.Fatalf("size = %d", d.Size())
	}
	if v, _ := d.PeekFirst(); v != 1 {
		t.Fatalf("PeekFirst = %d", v)
	}
	if v, _ := d.PeekLast(); v != 3 {
		t.Fatalf("PeekLast = %d", v)
	}
	if d.Get(1) != 2 || !d.Contains(3) || d.Contains(9) {
		t.Fatal("Get/Contains wrong")
	}
	if v, _ := d.PollFirst(); v != 1 {
		t.Fatalf("PollFirst = %d", v)
	}
	if v, _ := d.PollLast(); v != 3 {
		t.Fatalf("PollLast = %d", v)
	}
	d.Clear()
	if d.Size() != 0 {
		t.Fatal("Clear wrong")
	}
}

// TestArrayDequeWrapAndGrow exercises circular wraparound across growth.
func TestArrayDequeWrapAndGrow(t *testing.T) {
	d := NewArrayDeque[int](4)
	// Force head movement before growing.
	for i := 0; i < 6; i++ {
		d.AddLast(i)
	}
	for i := 0; i < 4; i++ {
		d.PollFirst()
	}
	for i := 100; i < 160; i++ {
		d.AddLast(i)
	}
	if d.Size() != 62 {
		t.Fatalf("size = %d, want 62", d.Size())
	}
	if v, _ := d.PollFirst(); v != 4 {
		t.Fatalf("front = %d, want 4", v)
	}
}

// TestArrayDequeModel drives the deque against a slice model.
func TestArrayDequeModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewArrayDeque[int](2)
		var model []int
		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0:
				v := rng.Intn(100)
				d.AddFirst(v)
				model = append([]int{v}, model...)
			case 1:
				v := rng.Intn(100)
				d.AddLast(v)
				model = append(model, v)
			case 2:
				v, ok := d.PollFirst()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 3:
				v, ok := d.PollLast()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
			if d.Size() != len(model) {
				return false
			}
		}
		for i, v := range model {
			if d.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityQueueOrdering(t *testing.T) {
	q := NewPriorityQueue[int](IntLess)
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty")
	}
	in := []int{5, 1, 9, 1, 7, 3, 8, 2}
	for _, v := range in {
		q.Push(v)
	}
	if v, _ := q.Peek(); v != 1 {
		t.Fatalf("Peek = %d", v)
	}
	var out []int
	for q.Size() > 0 {
		v, _ := q.Pop()
		out = append(out, v)
	}
	if !sort.IntsAreSorted(out) {
		t.Fatalf("not sorted: %v", out)
	}
	if len(out) != len(in) {
		t.Fatalf("lost elements: %v", out)
	}
}

// TestPriorityQueueRemove removes interior elements and keeps order.
func TestPriorityQueueRemove(t *testing.T) {
	q := NewPriorityQueue[int](IntLess)
	for _, v := range []int{4, 8, 2, 6, 9, 1} {
		q.Push(v)
	}
	if !q.Remove(6) || q.Remove(42) {
		t.Fatal("Remove wrong")
	}
	var out []int
	for q.Size() > 0 {
		v, _ := q.Pop()
		out = append(out, v)
	}
	want := []int{1, 2, 4, 8, 9}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

// TestPriorityQueueModel drives the heap against a sorted model.
func TestPriorityQueueModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewPriorityQueue[int](IntLess)
		var model []int
		for op := 0; op < 300; op++ {
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Intn(50)
				q.Push(v)
				model = append(model, v)
				sort.Ints(model)
			case 2:
				v, ok := q.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return q.Size() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSets(t *testing.T) {
	impls := map[string]Set[int]{
		"HashSet":       NewHashSet[int](IntHasher),
		"LinkedHashSet": NewLinkedHashSet[int](IntHasher),
		"TreeSet":       NewTreeSet[int](IntLess),
	}
	for name, s := range impls {
		t.Run(name, func(t *testing.T) {
			if !s.Add(3) || s.Add(3) {
				t.Fatal("Add duplicate handling wrong")
			}
			s.Add(1)
			s.Add(2)
			if s.Size() != 3 || !s.Contains(2) || s.Contains(9) {
				t.Fatal("membership wrong")
			}
			if !s.Remove(2) || s.Remove(2) {
				t.Fatal("Remove wrong")
			}
			n := 0
			s.Each(func(int) bool { n++; return true })
			if n != 2 {
				t.Fatalf("Each visited %d", n)
			}
			s.Clear()
			if s.Size() != 0 {
				t.Fatal("Clear wrong")
			}
		})
	}
}

func TestTreeSetOrdered(t *testing.T) {
	s := NewTreeSet[int](IntLess)
	for _, v := range []int{5, 2, 8, 1} {
		s.Add(v)
	}
	var got []int
	s.Each(func(v int) bool {
		got = append(got, v)
		return true
	})
	if !sort.IntsAreSorted(got) {
		t.Fatalf("unordered: %v", got)
	}
	if f, _ := s.First(); f != 1 {
		t.Fatalf("First = %d", f)
	}
	if l, _ := s.Last(); l != 8 {
		t.Fatalf("Last = %d", l)
	}
}
