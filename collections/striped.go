package collections

import (
	"fmt"

	"wolf/sim"
)

// StripedMap is a lock-striped concurrent map in the style of
// java.util.concurrent.ConcurrentHashMap's segmented predecessors: the
// key space is partitioned across independent segments, each guarded by
// its own monitor, so single-key operations on different segments never
// contend and never nest — a deadlock-free-by-design counterpoint to
// the SyncMap wrapper whose compound operations nest two monitors.
//
// Whole-map operations (Size, EachKey) lock segments one at a time in
// ascending index order, the canonical ordered-acquisition discipline
// that keeps the lock graph acyclic.
type StripedMap[K comparable, V comparable] struct {
	hash Hasher[K]
	segs []stripe[K, V]
}

// stripe is one segment.
type stripe[K comparable, V comparable] struct {
	mu *sim.Lock
	m  *HashMap[K, V]
}

// NewStripedMap returns a map with the given number of segments
// (rounded up to a power of two, minimum 2). instance names the segment
// locks ("StripedMap.seg<i>#<instance>").
func NewStripedMap[K comparable, V comparable](w *sim.World, instance string, h Hasher[K], segments int) *StripedMap[K, V] {
	n := 2
	for n < segments {
		n <<= 1
	}
	sm := &StripedMap[K, V]{hash: h}
	for i := 0; i < n; i++ {
		sm.segs = append(sm.segs, stripe[K, V]{
			mu: w.NewLock(fmt.Sprintf("StripedMap.seg%d#%s", i, instance)),
			m:  NewHashMap[K, V](h),
		})
	}
	return sm
}

// Segments returns the segment count.
func (sm *StripedMap[K, V]) Segments() int { return len(sm.segs) }

// seg returns the stripe for k.
func (sm *StripedMap[K, V]) seg(k K) *stripe[K, V] {
	return &sm.segs[int(sm.hash(k))&(len(sm.segs)-1)]
}

// Put stores v under k, locking only k's segment.
func (sm *StripedMap[K, V]) Put(t *sim.Thread, k K, v V) (old V, had bool) {
	s := sm.seg(k)
	t.WithLock(s.mu, "StripedMap.java:put", func() { old, had = s.m.Put(k, v) })
	return old, had
}

// Get returns the value under k, locking only k's segment.
func (sm *StripedMap[K, V]) Get(t *sim.Thread, k K) (v V, ok bool) {
	s := sm.seg(k)
	t.WithLock(s.mu, "StripedMap.java:get", func() { v, ok = s.m.Get(k) })
	return v, ok
}

// Remove deletes k, locking only k's segment.
func (sm *StripedMap[K, V]) Remove(t *sim.Thread, k K) (v V, ok bool) {
	s := sm.seg(k)
	t.WithLock(s.mu, "StripedMap.java:remove", func() { v, ok = s.m.Remove(k) })
	return v, ok
}

// Size sums segment sizes, locking segments one at a time in index
// order (never holding two at once).
func (sm *StripedMap[K, V]) Size(t *sim.Thread) int {
	n := 0
	for i := range sm.segs {
		s := &sm.segs[i]
		t.WithLock(s.mu, "StripedMap.java:size", func() { n += s.m.Size() })
	}
	return n
}

// EachKey visits every key, segment by segment in index order.
func (sm *StripedMap[K, V]) EachKey(t *sim.Thread, fn func(k K) bool) {
	for i := range sm.segs {
		s := &sm.segs[i]
		keep := true
		t.WithLock(s.mu, "StripedMap.java:keys", func() {
			s.m.Each(func(k K, _ V) bool {
				keep = fn(k)
				return keep
			})
		})
		if !keep {
			return
		}
	}
}
