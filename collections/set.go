package collections

// Set is an unordered collection of unique elements, the java.util.Set
// analogue.
type Set[T comparable] interface {
	// Add inserts v, reporting whether it was absent.
	Add(v T) bool
	// Remove deletes v, reporting whether it was present.
	Remove(v T) bool
	// Contains reports membership.
	Contains(v T) bool
	// Size returns the element count.
	Size() int
	// Each iterates elements until fn returns false.
	Each(fn func(v T) bool)
	// Clear removes every element.
	Clear()
}

// unit is the value type backing map-based sets.
type unit struct{}

// HashSet is a hash-table Set, the java.util.HashSet analogue.
type HashSet[T comparable] struct {
	m *HashMap[T, unit]
}

// NewHashSet returns an empty set using the given hasher.
func NewHashSet[T comparable](h Hasher[T]) *HashSet[T] {
	return &HashSet[T]{m: NewHashMap[T, unit](h)}
}

// NewLinkedHashSet returns a set with insertion-order iteration, the
// java.util.LinkedHashSet analogue.
func NewLinkedHashSet[T comparable](h Hasher[T]) *HashSet[T] {
	return &HashSet[T]{m: NewLinkedHashMap[T, unit](h)}
}

// Add inserts v.
func (s *HashSet[T]) Add(v T) bool {
	_, had := s.m.Put(v, unit{})
	return !had
}

// Remove deletes v.
func (s *HashSet[T]) Remove(v T) bool {
	_, had := s.m.Remove(v)
	return had
}

// Contains reports membership.
func (s *HashSet[T]) Contains(v T) bool { return s.m.ContainsKey(v) }

// Size returns the element count.
func (s *HashSet[T]) Size() int { return s.m.Size() }

// Each iterates elements.
func (s *HashSet[T]) Each(fn func(v T) bool) {
	s.m.Each(func(k T, _ unit) bool { return fn(k) })
}

// Clear removes every element.
func (s *HashSet[T]) Clear() { s.m.Clear() }

// TreeSet is a sorted Set backed by a red-black tree, the
// java.util.TreeSet analogue.
type TreeSet[T comparable] struct {
	m *TreeMap[T, unit]
}

// NewTreeSet returns an empty set ordered by less.
func NewTreeSet[T comparable](less func(a, b T) bool) *TreeSet[T] {
	return &TreeSet[T]{m: NewTreeMap[T, unit](less)}
}

// Add inserts v.
func (s *TreeSet[T]) Add(v T) bool {
	_, had := s.m.Put(v, unit{})
	return !had
}

// Remove deletes v.
func (s *TreeSet[T]) Remove(v T) bool {
	_, had := s.m.Remove(v)
	return had
}

// Contains reports membership.
func (s *TreeSet[T]) Contains(v T) bool { return s.m.ContainsKey(v) }

// Size returns the element count.
func (s *TreeSet[T]) Size() int { return s.m.Size() }

// Each iterates in ascending order.
func (s *TreeSet[T]) Each(fn func(v T) bool) {
	s.m.Each(func(k T, _ unit) bool { return fn(k) })
}

// Clear removes every element.
func (s *TreeSet[T]) Clear() { s.m.Clear() }

// First returns the smallest element.
func (s *TreeSet[T]) First() (T, bool) { return s.m.FirstKey() }

// Last returns the largest element.
func (s *TreeSet[T]) Last() (T, bool) { return s.m.LastKey() }
