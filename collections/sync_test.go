package collections

import (
	"testing"

	"wolf/internal/detect"
	"wolf/internal/trace"
	"wolf/internal/vclock"
	"wolf/sim"
)

// recordRun executes prog sequentially under the extended recorder.
func recordRun(t *testing.T, prog sim.Program, opts sim.Options) *trace.Trace {
	t.Helper()
	vt := vclock.NewTracker()
	rec := trace.NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	out := sim.Run(prog, sim.FirstEnabled{}, opts)
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
	return rec.Finish(0)
}

// TestSyncMapSingleThreadSafe: wrapper operations acquire and release
// correctly in one thread (no residual locks, reentrancy-free).
func TestSyncMapSingleThreadSafe(t *testing.T) {
	var sm *SyncMap[int, string]
	opts := sim.Options{}
	prog := func(th *sim.Thread) {
		sm = NewSyncMap[int, string](th.World(), "A", NewHashMap[int, string](IntHasher))
		sm.Put(th, 1, "a")
		sm.Put(th, 2, "b")
		if v, ok := sm.Get(th, 1); !ok || v != "a" {
			t.Error("Get through wrapper wrong")
		}
		if sm.Size(th) != 2 {
			t.Error("Size through wrapper wrong")
		}
		if !sm.ContainsKey(th, 2) {
			t.Error("ContainsKey wrong")
		}
		if ks := sm.Keys(th); len(ks) != 2 {
			t.Errorf("Keys = %v", ks)
		}
		sm.Remove(th, 1)
		sm.Clear(th)
		if sm.Size(th) != 0 {
			t.Error("Clear wrong")
		}
	}
	out := sim.Run(prog, sim.FirstEnabled{}, opts)
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
}

// TestSyncMapEqualsSemantics: Equals compares map contents.
func TestSyncMapEqualsSemantics(t *testing.T) {
	prog := func(th *sim.Thread) {
		w := th.World()
		a := NewSyncMap[int, int](w, "A", NewHashMap[int, int](IntHasher))
		b := NewSyncMap[int, int](w, "B", NewTreeMap[int, int](IntLess))
		for i := 0; i < 5; i++ {
			a.Put(th, i, i*i)
			b.Put(th, i, i*i)
		}
		if !a.Equals(th, b) {
			t.Error("equal maps reported unequal")
		}
		b.Put(th, 2, -1)
		if a.Equals(th, b) {
			t.Error("unequal values reported equal")
		}
		b.Put(th, 2, 4)
		b.Remove(th, 4)
		if a.Equals(th, b) {
			t.Error("different sizes reported equal")
		}
	}
	out := sim.Run(prog, sim.FirstEnabled{}, sim.Options{})
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
}

// TestSyncListCompoundOps: AddAll/RemoveAll/Equals through the wrappers.
func TestSyncListCompoundOps(t *testing.T) {
	prog := func(th *sim.Thread) {
		w := th.World()
		a := NewSyncList[int](w, "A", NewArrayList[int](4))
		b := NewSyncList[int](w, "B", NewLinkedList[int]())
		for i := 0; i < 4; i++ {
			a.Add(th, i)
			b.Add(th, i)
		}
		if !a.Equals(th, b) {
			t.Error("equal lists unequal")
		}
		a.AddAll(th, b) // a = 0..3 0..3
		if a.Size(th) != 8 {
			t.Errorf("AddAll size = %d", a.Size(th))
		}
		if n := a.RemoveAll(th, b); n != 8 {
			t.Errorf("RemoveAll removed %d, want 8", n)
		}
		if a.Size(th) != 0 {
			t.Errorf("RemoveAll left %d", a.Size(th))
		}
		if got := b.ToArray(th); len(got) != 4 || got[0] != 0 {
			t.Errorf("ToArray = %v", got)
		}
	}
	out := sim.Run(prog, sim.FirstEnabled{}, sim.Options{})
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
}

// TestFigure2CyclesFromRealWrappers: two threads equals-ing two real
// synchronized maps in opposite orders generate exactly the paper's four
// cycles and three defects — now arising from the actual container code
// rather than a hand-written lock script.
func TestFigure2CyclesFromRealWrappers(t *testing.T) {
	var sm1, sm2 *SyncMap[int, string]
	opts := sim.Options{Setup: func(w *sim.World) {
		m1 := NewHashMap[int, string](IntHasher)
		m2 := NewHashMap[int, string](IntHasher)
		m1.Put(1, "x")
		m2.Put(1, "x")
		sm1 = NewSyncMap[int, string](w, "SM1", m1)
		sm2 = NewSyncMap[int, string](w, "SM2", m2)
	}}
	prog := func(th *sim.Thread) {
		h1 := th.Go("t1", func(u *sim.Thread) { sm1.Equals(u, sm2) }, "s1")
		h2 := th.Go("t2", func(u *sim.Thread) { sm2.Equals(u, sm1) }, "s2")
		th.Join(h1, "j1")
		th.Join(h2, "j2")
	}
	tr := recordRun(t, prog, opts)
	cycles := detect.Cycles(tr, detect.Config{})
	if len(cycles) != 4 {
		t.Fatalf("cycles = %d, want 4 (Figure 2):\n%v", len(cycles), cycles)
	}
	defects := detect.GroupDefects(cycles)
	if len(defects) != 3 {
		t.Fatalf("defects = %d, want 3: %v", len(defects), defects)
	}
}

// TestMutexAbstractions: same-site instances share a lock abstraction by
// the naming convention (needed by the DeadlockFuzzer baseline).
func TestMutexAbstractions(t *testing.T) {
	prog := func(th *sim.Thread) {
		w := th.World()
		a := NewSyncMap[int, int](w, "A", NewHashMap[int, int](IntHasher))
		b := NewSyncMap[int, int](w, "B", NewHashMap[int, int](IntHasher))
		if a.Mutex().Name() == b.Mutex().Name() {
			t.Error("instances share a concrete lock name")
		}
	}
	out := sim.Run(prog, sim.FirstEnabled{}, sim.Options{})
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
}
