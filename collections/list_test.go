package collections

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// listImpls builds each List implementation for table-driven tests.
func listImpls() map[string]func() List[int] {
	return map[string]func() List[int]{
		"ArrayList":  func() List[int] { return NewArrayList[int](2) },
		"LinkedList": func() List[int] { return NewLinkedList[int]() },
		"Stack":      func() List[int] { return NewStack[int]() },
	}
}

func TestListBasics(t *testing.T) {
	for name, mk := range listImpls() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			if l.Size() != 0 {
				t.Fatal("new list not empty")
			}
			for i := 0; i < 10; i++ {
				l.Add(i * 10)
			}
			if l.Size() != 10 {
				t.Fatalf("size = %d, want 10", l.Size())
			}
			for i := 0; i < 10; i++ {
				if got := l.Get(i); got != i*10 {
					t.Fatalf("Get(%d) = %d, want %d", i, got, i*10)
				}
			}
			if !l.Contains(50) || l.Contains(55) {
				t.Fatal("Contains wrong")
			}
			if l.IndexOf(70) != 7 || l.IndexOf(-1) != -1 {
				t.Fatal("IndexOf wrong")
			}
			if old := l.Set(3, 333); old != 30 || l.Get(3) != 333 {
				t.Fatal("Set wrong")
			}
			if got := l.RemoveAt(0); got != 0 || l.Size() != 9 || l.Get(0) != 10 {
				t.Fatal("RemoveAt wrong")
			}
			if !l.Remove(333) || l.Contains(333) {
				t.Fatal("Remove wrong")
			}
			if l.Remove(999) {
				t.Fatal("Remove of absent value returned true")
			}
			l.Insert(0, -5)
			if l.Get(0) != -5 {
				t.Fatal("Insert at head wrong")
			}
			l.Insert(l.Size(), 999)
			if l.Get(l.Size()-1) != 999 {
				t.Fatal("Insert at tail wrong")
			}
			l.Insert(2, 42)
			if l.Get(2) != 42 {
				t.Fatal("Insert in middle wrong")
			}
			l.Clear()
			if l.Size() != 0 || l.Contains(10) {
				t.Fatal("Clear wrong")
			}
		})
	}
}

func TestListEachEarlyStop(t *testing.T) {
	for name, mk := range listImpls() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			for i := 0; i < 5; i++ {
				l.Add(i)
			}
			var seen []int
			l.Each(func(v int) bool {
				seen = append(seen, v)
				return v < 2
			})
			if len(seen) != 3 {
				t.Fatalf("early stop visited %v", seen)
			}
		})
	}
}

func TestListOutOfRangePanics(t *testing.T) {
	for name, mk := range listImpls() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			l.Add(1)
			for _, f := range []func(){
				func() { l.Get(1) },
				func() { l.Get(-1) },
				func() { l.RemoveAt(5) },
				func() { l.Set(2, 0) },
			} {
				func() {
					defer func() {
						if recover() == nil {
							t.Error("expected panic")
						}
					}()
					f()
				}()
			}
		})
	}
}

// TestListModelProperty drives each implementation against a slice model
// with random operations.
func TestListModelProperty(t *testing.T) {
	for name, mk := range listImpls() {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				l := mk()
				var model []int
				for op := 0; op < 300; op++ {
					switch rng.Intn(6) {
					case 0, 1:
						v := rng.Intn(50)
						l.Add(v)
						model = append(model, v)
					case 2:
						if len(model) > 0 {
							i := rng.Intn(len(model))
							if l.RemoveAt(i) != model[i] {
								return false
							}
							model = append(model[:i], model[i+1:]...)
						}
					case 3:
						v := rng.Intn(50)
						got := l.Contains(v)
						want := false
						for _, m := range model {
							if m == v {
								want = true
								break
							}
						}
						if got != want {
							return false
						}
					case 4:
						i := rng.Intn(len(model) + 1)
						v := rng.Intn(50)
						l.Insert(i, v)
						model = append(model[:i], append([]int{v}, model[i:]...)...)
					case 5:
						v := rng.Intn(50)
						got := l.Remove(v)
						want := false
						for i, m := range model {
							if m == v {
								want = true
								model = append(model[:i], model[i+1:]...)
								break
							}
						}
						if got != want {
							return false
						}
					}
					if l.Size() != len(model) {
						return false
					}
				}
				for i, v := range model {
					if l.Get(i) != v {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLinkedListDeque(t *testing.T) {
	l := NewLinkedList[int]()
	if _, ok := l.RemoveFirst(); ok {
		t.Fatal("RemoveFirst on empty")
	}
	if _, ok := l.RemoveLast(); ok {
		t.Fatal("RemoveLast on empty")
	}
	l.AddFirst(2)
	l.AddFirst(1)
	l.AddLast(3)
	if v, _ := l.RemoveFirst(); v != 1 {
		t.Fatalf("RemoveFirst = %d, want 1", v)
	}
	if v, _ := l.RemoveLast(); v != 3 {
		t.Fatalf("RemoveLast = %d, want 3", v)
	}
	if l.Size() != 1 || l.Get(0) != 2 {
		t.Fatal("deque ops corrupted list")
	}
}

func TestStackOps(t *testing.T) {
	s := NewStack[string]()
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop on empty")
	}
	if _, ok := s.Peek(); ok {
		t.Fatal("Peek on empty")
	}
	s.Push("a")
	s.Push("b")
	s.Push("c")
	if v, _ := s.Peek(); v != "c" {
		t.Fatalf("Peek = %s", v)
	}
	if s.Search("c") != 1 || s.Search("a") != 3 || s.Search("x") != -1 {
		t.Fatal("Search wrong")
	}
	if v, _ := s.Pop(); v != "c" {
		t.Fatalf("Pop = %s", v)
	}
	if s.Size() != 2 {
		t.Fatalf("size = %d", s.Size())
	}
}

func TestArrayListGrowth(t *testing.T) {
	l := NewArrayList[int](1)
	for i := 0; i < 1000; i++ {
		l.Add(i)
	}
	if l.Size() != 1000 || l.Get(999) != 999 || l.Get(0) != 0 {
		t.Fatal("growth corrupted data")
	}
}
