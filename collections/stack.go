package collections

// Stack is a LIFO built on an ArrayList, the java.util.Stack analogue
// (which extends Vector and therefore exposes list operations too).
type Stack[T comparable] struct {
	ArrayList[T]
}

// NewStack returns an empty stack.
func NewStack[T comparable]() *Stack[T] {
	return &Stack[T]{ArrayList[T]{data: make([]T, 4)}}
}

// Push places v on top.
func (s *Stack[T]) Push(v T) { s.Add(v) }

// Pop removes and returns the top element; ok is false when empty.
func (s *Stack[T]) Pop() (v T, ok bool) {
	if s.size == 0 {
		return v, false
	}
	return s.RemoveAt(s.size - 1), true
}

// Peek returns the top element without removing it; ok is false when
// empty.
func (s *Stack[T]) Peek() (v T, ok bool) {
	if s.size == 0 {
		return v, false
	}
	return s.data[s.size-1], true
}

// Search returns the 1-based distance of v from the top, or -1
// (java.util.Stack.search semantics).
func (s *Stack[T]) Search(v T) int {
	for i := s.size - 1; i >= 0; i-- {
		if s.data[i] == v {
			return s.size - i
		}
	}
	return -1
}
