package collections

import (
	"testing"

	"wolf/internal/detect"
	"wolf/internal/trace"
	"wolf/internal/vclock"
	"wolf/sim"
)

// TestStripedMapBasics exercises single-key operations.
func TestStripedMapBasics(t *testing.T) {
	prog := func(th *sim.Thread) {
		sm := NewStripedMap[int, string](th.World(), "A", IntHasher, 4)
		if sm.Segments() != 4 {
			t.Errorf("segments = %d", sm.Segments())
		}
		for i := 0; i < 50; i++ {
			sm.Put(th, i, "v")
		}
		if n := sm.Size(th); n != 50 {
			t.Errorf("size = %d", n)
		}
		if _, ok := sm.Get(th, 7); !ok {
			t.Error("Get missed")
		}
		if _, ok := sm.Remove(th, 7); !ok {
			t.Error("Remove missed")
		}
		if _, ok := sm.Get(th, 7); ok {
			t.Error("Get after Remove")
		}
		seen := 0
		sm.EachKey(th, func(int) bool { seen++; return true })
		if seen != 49 {
			t.Errorf("EachKey visited %d", seen)
		}
	}
	// The striped map is allocated inside the program (its locks need a
	// world), so run it under the scheduler.
	out := sim.Run(prog, sim.FirstEnabled{}, sim.Options{})
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
}

// TestStripedMapConcurrentNoCycles: heavy concurrent use of a striped
// map yields zero lock-graph cycles — ordered whole-map iteration and
// unnested single-key operations are deadlock-free by design, the
// counterpoint to SyncMap's nested Equals.
func TestStripedMapConcurrentNoCycles(t *testing.T) {
	var sm *StripedMap[int, int]
	factory := func() (sim.Program, sim.Options) {
		opts := sim.Options{Setup: func(w *sim.World) {
			sm = NewStripedMap[int, int](w, "S", IntHasher, 4)
		}}
		prog := func(th *sim.Thread) {
			var hs []*sim.Thread
			for c := 0; c < 4; c++ {
				c := c
				hs = append(hs, th.Go("client", func(u *sim.Thread) {
					for i := 0; i < 15; i++ {
						sm.Put(u, c*100+i, i)
						sm.Get(u, c*100+i/2)
						if i%5 == 0 {
							sm.Size(u) // ordered multi-segment sweep
						}
					}
				}, "spawn"))
			}
			for _, h := range hs {
				th.Join(h, "join")
			}
		}
		return prog, opts
	}
	for seed := int64(1); seed <= 5; seed++ {
		prog, opts := factory()
		vt := vclock.NewTracker()
		rec := trace.NewRecorder(vt)
		opts.Listeners = append(opts.Listeners, vt, rec)
		out := sim.Run(prog, sim.NewRandomStrategy(seed), opts)
		if out.Kind != sim.Terminated {
			t.Fatalf("seed %d: outcome = %v", seed, out)
		}
		tr := rec.Finish(seed)
		if cycles := detect.Cycles(tr, detect.Config{}); len(cycles) != 0 {
			t.Fatalf("seed %d: striped map produced cycles: %v", seed, cycles)
		}
	}
}

// TestStripedKeyDistribution: keys land on the segment their hash
// selects, so different segments hold disjoint keys.
func TestStripedKeyDistribution(t *testing.T) {
	prog := func(th *sim.Thread) {
		sm := NewStripedMap[int, int](th.World(), "D", IntHasher, 8)
		for i := 0; i < 200; i++ {
			sm.Put(th, i, i)
		}
		perSeg := make(map[int]int)
		for i := 0; i < 200; i++ {
			perSeg[int(IntHasher(i))&(sm.Segments()-1)]++
		}
		// All 8 segments should get a share with a decent hash.
		if len(perSeg) != 8 {
			t.Errorf("only %d segments used", len(perSeg))
		}
		if n := sm.Size(th); n != 200 {
			t.Errorf("size = %d", n)
		}
	}
	out := sim.Run(prog, sim.FirstEnabled{}, sim.Options{})
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
}
