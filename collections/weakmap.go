package collections

// WeakHashMap is a hash map whose entries disappear once their keys are
// no longer strongly referenced, the java.util.WeakHashMap analogue.
// Go's runtime does not expose the JVM's reference queues, so weakness
// is simulated: keys registered as unreachable via ClearRef are expunged
// lazily on the next structural operation, which is observationally how
// WeakHashMap behaves (stale entries vanish at unpredictable map
// touches). This preserves the synchronization-relevant behaviour — the
// timing of internal expunge work inside size()/get() — that the
// paper's workloads exercise.
type WeakHashMap[K comparable, V comparable] struct {
	inner   *HashMap[K, V]
	cleared map[K]bool
	// pendingExpunge batches cleared keys like the JVM's reference
	// queue: they are removed on the next map operation.
	pendingExpunge []K
}

// NewWeakHashMap returns an empty weak map using the given hasher.
func NewWeakHashMap[K comparable, V comparable](h Hasher[K]) *WeakHashMap[K, V] {
	return &WeakHashMap[K, V]{
		inner:   NewHashMap[K, V](h),
		cleared: make(map[K]bool),
	}
}

// ClearRef marks k's referent as garbage collected; the entry will be
// expunged at the next map operation.
func (m *WeakHashMap[K, V]) ClearRef(k K) {
	if !m.cleared[k] {
		m.cleared[k] = true
		m.pendingExpunge = append(m.pendingExpunge, k)
	}
}

// expunge removes entries whose keys were cleared.
func (m *WeakHashMap[K, V]) expunge() {
	for _, k := range m.pendingExpunge {
		m.inner.Remove(k)
	}
	m.pendingExpunge = m.pendingExpunge[:0]
}

// Put stores v under k, resurrecting a cleared key.
func (m *WeakHashMap[K, V]) Put(k K, v V) (old V, had bool) {
	m.expunge()
	delete(m.cleared, k)
	return m.inner.Put(k, v)
}

// Get returns the value under k.
func (m *WeakHashMap[K, V]) Get(k K) (V, bool) {
	m.expunge()
	return m.inner.Get(k)
}

// Remove deletes k.
func (m *WeakHashMap[K, V]) Remove(k K) (V, bool) {
	m.expunge()
	delete(m.cleared, k)
	return m.inner.Remove(k)
}

// ContainsKey reports whether k is present (and not cleared).
func (m *WeakHashMap[K, V]) ContainsKey(k K) bool {
	m.expunge()
	return m.inner.ContainsKey(k)
}

// Size returns the live entry count.
func (m *WeakHashMap[K, V]) Size() int {
	m.expunge()
	return m.inner.Size()
}

// Each iterates live entries.
func (m *WeakHashMap[K, V]) Each(fn func(k K, v V) bool) {
	m.expunge()
	m.inner.Each(fn)
}

// Keys returns every live key.
func (m *WeakHashMap[K, V]) Keys() []K {
	m.expunge()
	return m.inner.Keys()
}

// Clear removes every entry.
func (m *WeakHashMap[K, V]) Clear() {
	m.pendingExpunge = m.pendingExpunge[:0]
	m.cleared = make(map[K]bool)
	m.inner.Clear()
}
