package collections

// ArrayDeque is a resizable circular-buffer double-ended queue, the
// java.util.ArrayDeque analogue.
type ArrayDeque[T comparable] struct {
	buf  []T
	head int // index of the first element
	size int
}

// NewArrayDeque returns an empty deque with the given initial capacity
// (rounded up to a power of two, minimum 8).
func NewArrayDeque[T comparable](capacity int) *ArrayDeque[T] {
	n := 8
	for n < capacity {
		n <<= 1
	}
	return &ArrayDeque[T]{buf: make([]T, n)}
}

// grow doubles the buffer, unrolling the circular layout.
func (d *ArrayDeque[T]) grow() {
	nb := make([]T, len(d.buf)*2)
	for i := 0; i < d.size; i++ {
		nb[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf = nb
	d.head = 0
}

// AddFirst prepends v.
func (d *ArrayDeque[T]) AddFirst(v T) {
	if d.size == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = v
	d.size++
}

// AddLast appends v.
func (d *ArrayDeque[T]) AddLast(v T) {
	if d.size == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.size)&(len(d.buf)-1)] = v
	d.size++
}

// PollFirst removes and returns the front element.
func (d *ArrayDeque[T]) PollFirst() (v T, ok bool) {
	if d.size == 0 {
		return v, false
	}
	v = d.buf[d.head]
	var zero T
	d.buf[d.head] = zero
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.size--
	return v, true
}

// PollLast removes and returns the back element.
func (d *ArrayDeque[T]) PollLast() (v T, ok bool) {
	if d.size == 0 {
		return v, false
	}
	i := (d.head + d.size - 1) & (len(d.buf) - 1)
	v = d.buf[i]
	var zero T
	d.buf[i] = zero
	d.size--
	return v, true
}

// PeekFirst returns the front element without removing it.
func (d *ArrayDeque[T]) PeekFirst() (v T, ok bool) {
	if d.size == 0 {
		return v, false
	}
	return d.buf[d.head], true
}

// PeekLast returns the back element without removing it.
func (d *ArrayDeque[T]) PeekLast() (v T, ok bool) {
	if d.size == 0 {
		return v, false
	}
	return d.buf[(d.head+d.size-1)&(len(d.buf)-1)], true
}

// Get returns the i-th element from the front.
func (d *ArrayDeque[T]) Get(i int) T {
	if i < 0 || i >= d.size {
		panic("collections: deque index out of range")
	}
	return d.buf[(d.head+i)&(len(d.buf)-1)]
}

// Size returns the element count.
func (d *ArrayDeque[T]) Size() int { return d.size }

// Contains reports whether v occurs.
func (d *ArrayDeque[T]) Contains(v T) bool {
	for i := 0; i < d.size; i++ {
		if d.Get(i) == v {
			return true
		}
	}
	return false
}

// Each iterates front to back until fn returns false.
func (d *ArrayDeque[T]) Each(fn func(v T) bool) {
	for i := 0; i < d.size; i++ {
		if !fn(d.Get(i)) {
			return
		}
	}
}

// Clear removes every element.
func (d *ArrayDeque[T]) Clear() {
	var zero T
	for i := 0; i < d.size; i++ {
		d.buf[(d.head+i)&(len(d.buf)-1)] = zero
	}
	d.head, d.size = 0, 0
}

// PriorityQueue is a binary min-heap ordered by less, the
// java.util.PriorityQueue analogue.
type PriorityQueue[T comparable] struct {
	heap []T
	less func(a, b T) bool
}

// NewPriorityQueue returns an empty queue ordered by less.
func NewPriorityQueue[T comparable](less func(a, b T) bool) *PriorityQueue[T] {
	return &PriorityQueue[T]{less: less}
}

// Push inserts v.
func (q *PriorityQueue[T]) Push(v T) {
	q.heap = append(q.heap, v)
	i := len(q.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(q.heap[i], q.heap[p]) {
			break
		}
		q.heap[i], q.heap[p] = q.heap[p], q.heap[i]
		i = p
	}
}

// Pop removes and returns the minimum element.
func (q *PriorityQueue[T]) Pop() (v T, ok bool) {
	if len(q.heap) == 0 {
		return v, false
	}
	v = q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	q.siftDown(0)
	return v, true
}

// siftDown restores the heap property from index i.
func (q *PriorityQueue[T]) siftDown(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(q.heap[l], q.heap[smallest]) {
			smallest = l
		}
		if r < n && q.less(q.heap[r], q.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}

// Peek returns the minimum element without removing it.
func (q *PriorityQueue[T]) Peek() (v T, ok bool) {
	if len(q.heap) == 0 {
		return v, false
	}
	return q.heap[0], true
}

// Size returns the element count.
func (q *PriorityQueue[T]) Size() int { return len(q.heap) }

// Remove deletes one occurrence of v, restoring heap order.
func (q *PriorityQueue[T]) Remove(v T) bool {
	for i, x := range q.heap {
		if x != v {
			continue
		}
		last := len(q.heap) - 1
		q.heap[i] = q.heap[last]
		q.heap = q.heap[:last]
		if i < last {
			q.siftDown(i)
			// The moved element may also need to rise.
			for i > 0 {
				p := (i - 1) / 2
				if !q.less(q.heap[i], q.heap[p]) {
					break
				}
				q.heap[i], q.heap[p] = q.heap[p], q.heap[i]
				i = p
			}
		}
		return true
	}
	return false
}
