// Package collections implements the container library the benchmark
// workloads exercise: resizable arrays, linked lists, stacks, hash maps,
// red-black tree maps, linked hash maps, identity maps and weak maps,
// plus Collections.synchronized*-style wrappers whose compound
// operations nest lock acquisitions exactly like java.util does.
//
// The data structures are real implementations (the workloads do real
// work between synchronization points); the synchronized wrappers are
// where the paper's deadlocks live.
package collections

import "fmt"

// List is an ordered collection, the java.util.List analogue.
type List[T comparable] interface {
	// Add appends v.
	Add(v T)
	// Insert places v at index i, shifting later elements.
	Insert(i int, v T)
	// Get returns the element at index i.
	Get(i int) T
	// Set replaces index i and returns the old value.
	Set(i int, v T) T
	// RemoveAt deletes index i and returns the removed value.
	RemoveAt(i int) T
	// Remove deletes the first occurrence of v.
	Remove(v T) bool
	// IndexOf returns the first index of v, or -1.
	IndexOf(v T) int
	// Contains reports whether v occurs.
	Contains(v T) bool
	// Size returns the element count.
	Size() int
	// Each calls fn for every element in order until fn returns false.
	Each(fn func(v T) bool)
	// Clear removes every element.
	Clear()
}

// ArrayList is a resizable-array List, the java.util.ArrayList analogue.
type ArrayList[T comparable] struct {
	data []T
	size int
}

// NewArrayList returns an empty ArrayList with the given initial
// capacity (clamped to at least 1).
func NewArrayList[T comparable](capacity int) *ArrayList[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &ArrayList[T]{data: make([]T, capacity)}
}

// ensure grows the backing array to hold at least n elements, using the
// classic 1.5x growth policy.
func (a *ArrayList[T]) ensure(n int) {
	if n <= len(a.data) {
		return
	}
	newCap := len(a.data) + len(a.data)/2 + 1
	if newCap < n {
		newCap = n
	}
	nd := make([]T, newCap)
	copy(nd, a.data[:a.size])
	a.data = nd
}

// Add appends v.
func (a *ArrayList[T]) Add(v T) {
	a.ensure(a.size + 1)
	a.data[a.size] = v
	a.size++
}

// Insert places v at index i.
func (a *ArrayList[T]) Insert(i int, v T) {
	a.check(i, a.size+1)
	a.ensure(a.size + 1)
	copy(a.data[i+1:a.size+1], a.data[i:a.size])
	a.data[i] = v
	a.size++
}

// Get returns the element at index i.
func (a *ArrayList[T]) Get(i int) T {
	a.check(i, a.size)
	return a.data[i]
}

// Set replaces index i and returns the old value.
func (a *ArrayList[T]) Set(i int, v T) T {
	a.check(i, a.size)
	old := a.data[i]
	a.data[i] = v
	return old
}

// RemoveAt deletes index i and returns the removed value.
func (a *ArrayList[T]) RemoveAt(i int) T {
	a.check(i, a.size)
	old := a.data[i]
	copy(a.data[i:], a.data[i+1:a.size])
	a.size--
	var zero T
	a.data[a.size] = zero
	return old
}

// Remove deletes the first occurrence of v.
func (a *ArrayList[T]) Remove(v T) bool {
	if i := a.IndexOf(v); i >= 0 {
		a.RemoveAt(i)
		return true
	}
	return false
}

// IndexOf returns the first index of v, or -1.
func (a *ArrayList[T]) IndexOf(v T) int {
	for i := 0; i < a.size; i++ {
		if a.data[i] == v {
			return i
		}
	}
	return -1
}

// Contains reports whether v occurs.
func (a *ArrayList[T]) Contains(v T) bool { return a.IndexOf(v) >= 0 }

// Size returns the element count.
func (a *ArrayList[T]) Size() int { return a.size }

// Each iterates in index order.
func (a *ArrayList[T]) Each(fn func(v T) bool) {
	for i := 0; i < a.size; i++ {
		if !fn(a.data[i]) {
			return
		}
	}
}

// Clear removes every element.
func (a *ArrayList[T]) Clear() {
	var zero T
	for i := 0; i < a.size; i++ {
		a.data[i] = zero
	}
	a.size = 0
}

// check panics on an out-of-range index, mirroring Java's
// IndexOutOfBoundsException.
func (a *ArrayList[T]) check(i, bound int) {
	if i < 0 || i >= bound {
		panic(fmt.Sprintf("collections: index %d out of range [0,%d)", i, bound))
	}
}
