package collections

// Map associates keys with values, the java.util.Map analogue.
type Map[K comparable, V comparable] interface {
	// Put stores v under k, returning the replaced value if any.
	Put(k K, v V) (old V, had bool)
	// Get returns the value under k.
	Get(k K) (V, bool)
	// Remove deletes k, returning the removed value if any.
	Remove(k K) (V, bool)
	// ContainsKey reports whether k is present.
	ContainsKey(k K) bool
	// Size returns the entry count.
	Size() int
	// Each calls fn for every entry (iteration order is
	// implementation-specific) until fn returns false.
	Each(fn func(k K, v V) bool)
	// Keys returns every key in iteration order.
	Keys() []K
	// Clear removes every entry.
	Clear()
}

// Hasher maps a key to a 64-bit hash.
type Hasher[K comparable] func(K) uint64

// IntHasher hashes integer keys with a Fibonacci mix.
func IntHasher(k int) uint64 {
	x := uint64(k) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// StringHasher is the FNV-1a hash.
func StringHasher(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// hmEntry is a chained hash bucket entry.
type hmEntry[K comparable, V comparable] struct {
	key  K
	val  V
	hash uint64
	next *hmEntry[K, V]
	// before/after thread the insertion-order list for LinkedHashMap.
	before, after *hmEntry[K, V]
}

// HashMap is a chained hash table with power-of-two bucket counts and
// 0.75 load-factor resizing, the java.util.HashMap analogue.
type HashMap[K comparable, V comparable] struct {
	hash    Hasher[K]
	buckets []*hmEntry[K, V]
	size    int
	// linked enables insertion-order iteration (LinkedHashMap).
	linked     bool
	head, tail *hmEntry[K, V]
}

// NewHashMap returns an empty map using the given hasher.
func NewHashMap[K comparable, V comparable](h Hasher[K]) *HashMap[K, V] {
	return &HashMap[K, V]{hash: h, buckets: make([]*hmEntry[K, V], 16)}
}

// NewLinkedHashMap returns a map that additionally iterates in insertion
// order, the java.util.LinkedHashMap analogue.
func NewLinkedHashMap[K comparable, V comparable](h Hasher[K]) *HashMap[K, V] {
	m := NewHashMap[K, V](h)
	m.linked = true
	return m
}

// idx returns the bucket index for a hash.
func (m *HashMap[K, V]) idx(h uint64) int { return int(h) & (len(m.buckets) - 1) }

// find returns the entry for k, or nil.
func (m *HashMap[K, V]) find(k K) *hmEntry[K, V] {
	for e := m.buckets[m.idx(m.hash(k))]; e != nil; e = e.next {
		if e.key == k {
			return e
		}
	}
	return nil
}

// Put stores v under k.
func (m *HashMap[K, V]) Put(k K, v V) (old V, had bool) {
	if e := m.find(k); e != nil {
		old, had = e.val, true
		e.val = v
		return old, had
	}
	if m.size+1 > len(m.buckets)*3/4 {
		m.resize()
	}
	h := m.hash(k)
	i := m.idx(h)
	e := &hmEntry[K, V]{key: k, val: v, hash: h, next: m.buckets[i]}
	m.buckets[i] = e
	m.size++
	if m.linked {
		if m.tail == nil {
			m.head, m.tail = e, e
		} else {
			e.before = m.tail
			m.tail.after = e
			m.tail = e
		}
	}
	return old, false
}

// resize doubles the bucket array and rehashes.
func (m *HashMap[K, V]) resize() {
	nb := make([]*hmEntry[K, V], len(m.buckets)*2)
	mask := len(nb) - 1
	for _, e := range m.buckets {
		for e != nil {
			next := e.next
			i := int(e.hash) & mask
			e.next = nb[i]
			nb[i] = e
			e = next
		}
	}
	m.buckets = nb
}

// Get returns the value under k.
func (m *HashMap[K, V]) Get(k K) (V, bool) {
	if e := m.find(k); e != nil {
		return e.val, true
	}
	var zero V
	return zero, false
}

// Remove deletes k.
func (m *HashMap[K, V]) Remove(k K) (V, bool) {
	i := m.idx(m.hash(k))
	var prev *hmEntry[K, V]
	for e := m.buckets[i]; e != nil; prev, e = e, e.next {
		if e.key != k {
			continue
		}
		if prev == nil {
			m.buckets[i] = e.next
		} else {
			prev.next = e.next
		}
		m.size--
		if m.linked {
			if e.before != nil {
				e.before.after = e.after
			} else {
				m.head = e.after
			}
			if e.after != nil {
				e.after.before = e.before
			} else {
				m.tail = e.before
			}
		}
		return e.val, true
	}
	var zero V
	return zero, false
}

// ContainsKey reports whether k is present.
func (m *HashMap[K, V]) ContainsKey(k K) bool { return m.find(k) != nil }

// Size returns the entry count.
func (m *HashMap[K, V]) Size() int { return m.size }

// Each iterates entries: insertion order when linked, bucket order
// otherwise.
func (m *HashMap[K, V]) Each(fn func(k K, v V) bool) {
	if m.linked {
		for e := m.head; e != nil; e = e.after {
			if !fn(e.key, e.val) {
				return
			}
		}
		return
	}
	for _, b := range m.buckets {
		for e := b; e != nil; e = e.next {
			if !fn(e.key, e.val) {
				return
			}
		}
	}
}

// Keys returns every key in iteration order.
func (m *HashMap[K, V]) Keys() []K {
	out := make([]K, 0, m.size)
	m.Each(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Clear removes every entry.
func (m *HashMap[K, V]) Clear() {
	for i := range m.buckets {
		m.buckets[i] = nil
	}
	m.size = 0
	m.head, m.tail = nil, nil
}
