package collections

// IdentityHashMap is an open-addressing (linear probing) hash table, the
// java.util.IdentityHashMap analogue. Java compares keys by reference
// identity; in this library keys are comparable values, so "identity" is
// value equality, but the probing table structure and its rehashing
// behaviour follow the original.
type IdentityHashMap[K comparable, V comparable] struct {
	hash Hasher[K]
	keys []K
	vals []V
	used []bool
	size int
}

// NewIdentityHashMap returns an empty map using the given hasher.
func NewIdentityHashMap[K comparable, V comparable](h Hasher[K]) *IdentityHashMap[K, V] {
	const initial = 16
	return &IdentityHashMap[K, V]{
		hash: h,
		keys: make([]K, initial),
		vals: make([]V, initial),
		used: make([]bool, initial),
	}
}

// probe returns the slot of k, or the first free slot on its probe path.
func (m *IdentityHashMap[K, V]) probe(k K) int {
	mask := len(m.keys) - 1
	i := int(m.hash(k)) & mask
	for m.used[i] && m.keys[i] != k {
		i = (i + 1) & mask
	}
	return i
}

// Put stores v under k.
func (m *IdentityHashMap[K, V]) Put(k K, v V) (old V, had bool) {
	if m.size+1 > len(m.keys)*2/3 {
		m.resize()
	}
	i := m.probe(k)
	if m.used[i] {
		old, had = m.vals[i], true
		m.vals[i] = v
		return old, had
	}
	m.keys[i], m.vals[i], m.used[i] = k, v, true
	m.size++
	return old, false
}

// resize doubles the table and reinserts.
func (m *IdentityHashMap[K, V]) resize() {
	ok, ov, ou := m.keys, m.vals, m.used
	n := len(ok) * 2
	m.keys = make([]K, n)
	m.vals = make([]V, n)
	m.used = make([]bool, n)
	m.size = 0
	for i, u := range ou {
		if u {
			m.Put(ok[i], ov[i])
		}
	}
}

// Get returns the value under k.
func (m *IdentityHashMap[K, V]) Get(k K) (V, bool) {
	i := m.probe(k)
	if m.used[i] {
		return m.vals[i], true
	}
	var zero V
	return zero, false
}

// Remove deletes k, re-inserting the probe run after it (the standard
// linear-probing deletion fix).
func (m *IdentityHashMap[K, V]) Remove(k K) (V, bool) {
	i := m.probe(k)
	if !m.used[i] {
		var zero V
		return zero, false
	}
	removed := m.vals[i]
	mask := len(m.keys) - 1
	var zeroK K
	var zeroV V
	m.used[i] = false
	m.keys[i], m.vals[i] = zeroK, zeroV
	m.size--
	// Rehash the cluster following i (which may legitimately refill
	// slot i) — the standard linear-probing deletion fix.
	j := (i + 1) & mask
	for m.used[j] {
		k2, v2 := m.keys[j], m.vals[j]
		m.used[j] = false
		m.keys[j], m.vals[j] = zeroK, zeroV
		m.size--
		m.Put(k2, v2)
		j = (j + 1) & mask
	}
	return removed, true
}

// ContainsKey reports whether k is present.
func (m *IdentityHashMap[K, V]) ContainsKey(k K) bool {
	return m.used[m.probe(k)]
}

// Size returns the entry count.
func (m *IdentityHashMap[K, V]) Size() int { return m.size }

// Each iterates in table order.
func (m *IdentityHashMap[K, V]) Each(fn func(k K, v V) bool) {
	for i, u := range m.used {
		if u && !fn(m.keys[i], m.vals[i]) {
			return
		}
	}
}

// Keys returns every key in table order.
func (m *IdentityHashMap[K, V]) Keys() []K {
	out := make([]K, 0, m.size)
	m.Each(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Clear removes every entry.
func (m *IdentityHashMap[K, V]) Clear() {
	for i := range m.used {
		m.used[i] = false
		var zeroK K
		var zeroV V
		m.keys[i], m.vals[i] = zeroK, zeroV
	}
	m.size = 0
}
