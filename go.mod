module wolf

go 1.24
