// Benchmarks regenerating the paper's evaluation artifacts. One
// benchmark per table/figure, with sub-benchmarks per workload, plus
// ablation benchmarks for the design choices called out in DESIGN.md.
//
// Custom metrics reported alongside ns/op:
//
//	defects, confirmed, false-pos, unknown — defect classification
//	hit-rate — fraction of replays reproducing the deadlock (Figure 8)
//	det-ratio, rep-ratio — WOLF/DF time ratios (Figure 10)
package wolf_test

import (
	"testing"

	"wolf"
	"wolf/internal/core"
	"wolf/internal/fuzzer"
	"wolf/internal/replay"
	"wolf/internal/workloads"
)

// table1Workloads lists the Table 1 rows exercised by the benchmarks.
// The heavyweight Jigsaw row runs under its own sub-benchmark so the
// cheap rows stay readable.
var table1Workloads = []string{
	"cache4j", "Jigsaw", "JavaLogging",
	"ArrayList", "Stack", "LinkedList",
	"HashMap", "TreeMap", "WeakHashMap", "LinkedHashMap", "IdentityHashMap",
}

// seedOf caches terminating detection seeds per workload.
var seedOf = map[string]int64{}

// seedFor finds (and caches) a terminating detection seed.
func seedFor(b *testing.B, w workloads.Workload) int64 {
	if s, ok := seedOf[w.Name]; ok {
		return s
	}
	s, ok := workloads.FindTerminatingSeed(w.New, 300)
	if !ok {
		b.Fatalf("%s: no terminating seed", w.Name)
	}
	seedOf[w.Name] = s
	return s
}

// BenchmarkTable1 runs the full WOLF pipeline (detection, pruning,
// generation, replay classification) per workload — the work behind
// each Table 1 row.
func BenchmarkTable1(b *testing.B) {
	for _, name := range table1Workloads {
		w, _ := workloads.ByName(name)
		b.Run(name, func(b *testing.B) {
			seed := seedFor(b, w)
			var rep *wolf.Report
			for i := 0; i < b.N; i++ {
				rep = wolf.Analyze(w.New, wolf.Config{DetectSeeds: []int64{seed}, ReplayAttempts: 5})
			}
			pr, gen, conf, unk := rep.CountDefects()
			b.ReportMetric(float64(len(rep.Defects)), "defects")
			b.ReportMetric(float64(pr+gen), "false-pos")
			b.ReportMetric(float64(conf), "confirmed")
			b.ReportMetric(float64(unk), "unknown")
		})
	}
}

// BenchmarkTable2 runs the DeadlockFuzzer baseline pipeline per
// workload — Table 2 compares the tools per cycle, and the baseline's
// cycle-level classification is the differing half of that table.
func BenchmarkTable2(b *testing.B) {
	for _, name := range table1Workloads {
		w, _ := workloads.ByName(name)
		b.Run(name, func(b *testing.B) {
			seed := seedFor(b, w)
			var rep *wolf.Report
			for i := 0; i < b.N; i++ {
				rep = wolf.AnalyzeDeadlockFuzzer(w.New, wolf.Config{DetectSeeds: []int64{seed}, ReplayAttempts: 5})
			}
			_, _, conf, unk := rep.CountCycles()
			b.ReportMetric(float64(len(rep.Cycles)), "cycles")
			b.ReportMetric(float64(conf), "confirmed")
			b.ReportMetric(float64(unk), "unknown")
		})
	}
}

// fig8Workloads are the Figure 8 subjects (benchmarks with confirmed
// deadlocks).
var fig8Workloads = []string{"JavaLogging", "ArrayList", "HashMap", "Figure9"}

// BenchmarkFig8 measures one steered replay per iteration and reports
// the observed hit rate for both tools — the Figure 8 measurement loop.
func BenchmarkFig8(b *testing.B) {
	for _, name := range fig8Workloads {
		w, _ := workloads.ByName(name)
		seed := int64(0)
		b.Run(name+"/WOLF", func(b *testing.B) {
			seed = seedFor(b, w)
			rep := core.Analyze(w.New, core.Config{DetectSeeds: []int64{seed}, ReplayAttempts: 5})
			cr := firstConfirmed(b, rep)
			hits := 0
			for i := 0; i < b.N; i++ {
				out := replay.Attempt(w.New, cr.Gs, cr.Cycle, int64(i), 0)
				if replay.Hit(out, cr.Cycle) {
					hits++
				}
			}
			b.ReportMetric(float64(hits)/float64(b.N), "hit-rate")
		})
		b.Run(name+"/DF", func(b *testing.B) {
			rep := core.Analyze(w.New, core.Config{DetectSeeds: []int64{seed}, ReplayAttempts: 5})
			cr := firstConfirmed(b, rep)
			hits := 0
			for i := 0; i < b.N; i++ {
				out := fuzzer.Attempt(w.New, cr.Cycle, int64(i), 0)
				if fuzzer.Hit(out, cr.Cycle) {
					hits++
				}
			}
			b.ReportMetric(float64(hits)/float64(b.N), "hit-rate")
		})
	}
}

// firstConfirmed returns a confirmed cycle report, preferring a cycle
// whose deadlocking acquisitions come from distinct source locations —
// the asymmetric deadlocks are the ones where the tools differ most.
func firstConfirmed(b *testing.B, rep *core.Report) *core.CycleReport {
	b.Helper()
	var fallback *core.CycleReport
	for _, cr := range rep.Cycles {
		if cr.Class != core.Confirmed || cr.Gs == nil {
			continue
		}
		sites := cr.Cycle.Sites()
		if len(sites) == 2 && sites[0] != sites[1] {
			return cr
		}
		if fallback == nil {
			fallback = cr
		}
	}
	if fallback == nil {
		b.Fatal("no confirmed cycle")
	}
	return fallback
}

// BenchmarkFig10 measures both tools end to end and reports WOLF's
// detection and reproduction times normalized to DeadlockFuzzer's.
func BenchmarkFig10(b *testing.B) {
	for _, name := range []string{"JavaLogging", "HashMap", "ArrayList", "Jigsaw"} {
		w, _ := workloads.ByName(name)
		b.Run(name, func(b *testing.B) {
			seed := seedFor(b, w)
			cfg := wolf.Config{DetectSeeds: []int64{seed}, ReplayAttempts: 5}
			var detRatio, repRatio float64
			for i := 0; i < b.N; i++ {
				wr := wolf.Analyze(w.New, cfg)
				dr := wolf.AnalyzeDeadlockFuzzer(w.New, cfg)
				wd := wr.Timings.Detect() + wr.Timings.Prune + wr.Timings.Generate
				if dd := dr.Timings.Detect(); dd > 0 {
					detRatio = float64(wd) / float64(dd)
				}
				if dr.Timings.Replay > 0 {
					repRatio = float64(wr.Timings.Replay) / float64(dr.Timings.Replay)
				}
			}
			b.ReportMetric(detRatio, "det-ratio")
			b.ReportMetric(repRatio, "rep-ratio")
		})
	}
}

// BenchmarkAblation quantifies each pipeline component's contribution
// on the Jigsaw workload (see DESIGN.md): disabling the Pruner or the
// Generator moves their false positives into the unknown bucket, and
// dropping the type-C context edges from Gs reduces replay reliability.
func BenchmarkAblation(b *testing.B) {
	w, _ := workloads.ByName("Jigsaw")
	variants := []struct {
		name string
		cfg  func(seed int64) wolf.Config
	}{
		{"Full", func(s int64) wolf.Config {
			return wolf.Config{DetectSeeds: []int64{s}, ReplayAttempts: 5}
		}},
		{"NoPruner", func(s int64) wolf.Config {
			return wolf.Config{DetectSeeds: []int64{s}, ReplayAttempts: 5, DisablePruner: true}
		}},
		{"NoGenerator", func(s int64) wolf.Config {
			return wolf.Config{DetectSeeds: []int64{s}, ReplayAttempts: 5, DisableGenerator: true}
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			seed := seedFor(b, w)
			var rep *wolf.Report
			for i := 0; i < b.N; i++ {
				rep = wolf.Analyze(w.New, v.cfg(seed))
			}
			pr, gen, conf, unk := rep.CountDefects()
			b.ReportMetric(float64(pr+gen), "false-pos")
			b.ReportMetric(float64(conf), "confirmed")
			b.ReportMetric(float64(unk), "unknown")
		})
	}
}

// BenchmarkAblationNoContextEdges compares replay hit rates with and
// without the type-C edges on the Figure 9 workload, where the context
// ordering is what makes the mixed deadlock reproducible.
func BenchmarkAblationNoContextEdges(b *testing.B) {
	w, _ := workloads.ByName("Figure9")
	for _, v := range []struct {
		name string
		cfg  wolf.Config
	}{
		{"AllEdges", wolf.Config{DetectSeeds: []int64{1}, ReplayAttempts: 5}},
		{"NoC", wolf.Config{DetectSeeds: []int64{1}, ReplayAttempts: 5, EdgeKinds: 1 | 4}}, // D|P
	} {
		b.Run(v.name, func(b *testing.B) {
			rep := core.Analyze(w.New, core.Config(v.cfg))
			// The asymmetric addAll/removeAll cycle is the one whose
			// reproduction depends on the context ordering; select it by
			// signature regardless of how the weakened pipeline
			// classified it.
			var target *core.CycleReport
			for _, cr := range rep.Cycles {
				sites := cr.Cycle.Sites()
				if cr.Gs != nil && !cr.Class.IsFalse() && len(sites) == 2 && sites[0] != sites[1] {
					target = cr
					break
				}
			}
			if target == nil {
				b.Fatal("no asymmetric cycle")
			}
			hits := 0
			for i := 0; i < b.N; i++ {
				out := replay.Attempt(w.New, target.Gs, target.Cycle, int64(i), 0)
				if replay.Hit(out, target.Cycle) {
					hits++
				}
			}
			b.ReportMetric(float64(hits)/float64(b.N), "hit-rate")
		})
	}
}
