package wolfsync

import (
	"sync/atomic"

	"wolf/internal/trace"
)

// shardCount is the number of independent push heads in the event
// buffer. Goroutines hash to shards by runtime ID; 64 heads keep CAS
// contention negligible for any realistic goroutine count.
const shardCount = 64

// event is one recorded acquisition, a node in a shard's Treiber
// stack. The tuple is fully built by the recording goroutine, so the
// drainer never touches goroutine-local state.
type event struct {
	next *event
	tup  *trace.Tuple
}

// bufShard is one push head, padded to its own cache line so CAS
// traffic on neighbouring shards does not false-share.
type bufShard struct {
	head atomic.Pointer[event]
	_    [64 - 8]byte
}

// buffer is the lock-free sharded event buffer between instrumented
// goroutines and the drainer. Push is one CAS on the goroutine's
// shard; drain swaps every head to nil and reverses the lists.
//
// Ordering invariant: a goroutine always pushes to the same shard, and
// a swap takes the whole list — so any drain observes a prefix of each
// goroutine's event sequence, and concatenating drains preserves every
// goroutine's program order. That is exactly the per-thread ordering
// trace.Validate demands; the interleaving across goroutines is
// arbitrary, as in any real trace.
type buffer struct {
	shards [shardCount]bufShard
	size   atomic.Int64
}

// push adds an event to the shard, refusing when the buffer holds max
// events already (the recorder counts the drop). The size check is
// racy by design — a handful of events over the cap is fine, blocking
// the program is not.
func (b *buffer) push(shard uint32, ev *event, max int64) bool {
	if b.size.Load() >= max {
		return false
	}
	h := &b.shards[shard].head
	for {
		old := h.Load()
		ev.next = old
		if h.CompareAndSwap(old, ev) {
			b.size.Add(1)
			return true
		}
	}
}

// drain detaches every shard's list and returns the tuples in
// per-goroutine program order (shard by shard, each list reversed from
// its push order). Callers serialize drains (the recorder's mutex);
// pushes proceed concurrently and are simply picked up next time.
func (b *buffer) drain() []*trace.Tuple {
	var out []*trace.Tuple
	for i := range b.shards {
		h := &b.shards[i].head
		var head *event
		for {
			head = h.Load()
			if head == nil {
				break
			}
			if h.CompareAndSwap(head, nil) {
				break
			}
		}
		if head == nil {
			continue
		}
		// Reverse the LIFO list back into push order.
		var n int64
		var rev *event
		for e := head; e != nil; {
			next := e.next
			e.next = rev
			rev = e
			n++
			e = next
		}
		b.size.Add(-n)
		for e := rev; e != nil; e = e.next {
			out = append(out, e.tup)
		}
	}
	return out
}
