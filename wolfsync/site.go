package wolfsync

import (
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
)

// Call-site capture. Site strings follow the repo-wide "file:line"
// convention (basename only — module paths would bloat the string
// table and leak build layout into fingerprints). Resolution through
// runtime.CallersFrames is paid once per program counter: resolved
// sites are interned in a process-wide cache, so the steady-state cost
// of a recorded acquisition is one lock-free map lookup. Interning
// also means every tuple recorded from the same source line shares one
// string, which is what keeps held-set stacks cheap and lets the WTRC
// string table collapse them to a single entry.
var siteCache sync.Map // map[uintptr]string

// siteFor resolves and interns one call-site program counter.
func siteFor(pc uintptr) string {
	if v, ok := siteCache.Load(pc); ok {
		return v.(string)
	}
	frames := runtime.CallersFrames([]uintptr{pc})
	f, _ := frames.Next()
	s := "unknown"
	if f.File != "" {
		s = filepath.Base(f.File) + ":" + strconv.Itoa(f.Line)
	}
	siteCache.Store(pc, s)
	return s
}

// callSite captures the caller of the exported Mutex method: skip
// runtime.Callers, callSite and the method itself.
func callSite() string {
	var pcs [1]uintptr
	if runtime.Callers(3, pcs[:]) == 0 {
		return "unknown"
	}
	return siteFor(pcs[0])
}
