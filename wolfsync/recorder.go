package wolfsync

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wolf/internal/httpx"
	"wolf/internal/trace"
	"wolf/internal/vclock"
	"wolf/sim"
)

// Environment variables consulted by Start when no sink option is
// given — the protocol `wolfctl run` speaks to instrumented programs.
const (
	// EnvOut names the .wtrc file Stop writes (file sink).
	EnvOut = "WOLFSYNC_OUT"
	// EnvURL is a wolfd base URL to live-stream snapshots into.
	EnvURL = "WOLFSYNC_URL"
	// EnvTraceparent is a W3C traceparent forwarded on stream opens,
	// tying the resulting jobs to the caller's causal trace.
	EnvTraceparent = "WOLFSYNC_TRACEPARENT"
)

// ErrActive is returned by Start when a session is already recording:
// the recorder is process-global (it hooks every wolfsync.Mutex), so
// sessions are exclusive.
var ErrActive = errors.New("wolfsync: a recording session is already active")

// active is the process-global recording session, nil when idle.
var active atomic.Pointer[Recorder]

// epochSeq numbers sessions so per-goroutine counters can detect a new
// session lazily, without a stop-the-world reset.
var epochSeq atomic.Uint64

// lockSeq names mutexes that were never given a name.
var lockSeq atomic.Int64

// wallLast makes wall-clock timestamps globally non-decreasing even if
// the wall clock steps backwards (NTP): each reading is clamped to the
// maximum issued so far. Per-thread monotonicity — the invariant
// trace.Validate enforces — follows a fortiori.
var wallLast atomic.Int64

func wallTau() int {
	now := time.Now().UnixNano()
	for {
		old := wallLast.Load()
		if now <= old {
			return int(old)
		}
		if wallLast.CompareAndSwap(old, now) {
			return int(now)
		}
	}
}

// options collects Start's configuration.
type options struct {
	file        string
	streamURL   string
	traceparent string
	source      string
	quiesce     time.Duration
	chunk       int
	maxBuffered int64
	wallTau     bool
	httpClient  *httpx.Client
}

// withHTTPClient overrides the streaming sink's HTTP client (tests).
func withHTTPClient(c *httpx.Client) Option { return func(o *options) { o.httpClient = c } }

// Option configures Start.
type Option func(*options)

// WithFile makes Stop write the final trace to path (atomically: a
// temp file in the same directory, then rename).
func WithFile(path string) Option { return func(o *options) { o.file = path } }

// WithStream ships trace snapshots to wolfd at base (e.g.
// "http://localhost:8077") over POST /v1/streams: once on Stop, and
// whenever recording has been quiet for the quiesce window — so a
// wedged program's trace reaches wolfd without anyone calling Stop.
func WithStream(base string) Option { return func(o *options) { o.streamURL = base } }

// WithTraceparent forwards a W3C traceparent header on stream opens.
func WithTraceparent(tp string) Option { return func(o *options) { o.traceparent = tp } }

// WithQuiesce sets how long recording must stay quiet before the
// streaming sink ships a snapshot mid-run (default 2s; 0 disables
// mid-run shipping, leaving only the final ship on Stop).
func WithQuiesce(d time.Duration) Option { return func(o *options) { o.quiesce = d } }

// WithMaxBuffered bounds the in-memory event buffer. Beyond the bound
// new acquisitions are counted as dropped instead of recorded — the
// recorder never blocks or grows without limit (default 1<<20 events).
func WithMaxBuffered(n int) Option { return func(o *options) { o.maxBuffered = int64(n) } }

// WithWallClockTau stamps every tuple with a wall-clock timestamp
// (nanoseconds, clamped to be non-decreasing) instead of the default
// Bottom. Timestamps from concurrent goroutines are mutually unordered
// in trace order — trace.Validate deliberately only checks per-thread
// monotonicity, which this mode guarantees.
func WithWallClockTau() Option { return func(o *options) { o.wallTau = true } }

// Stats is a point-in-time snapshot of a session's counters.
type Stats struct {
	// Recorded counts tuples accepted into the buffer.
	Recorded int64
	// Dropped counts acquisitions discarded because the buffer was
	// full — the never-block guarantee made visible.
	Dropped int64
	// Anomalies counts releases with no matching held entry
	// (cross-goroutine unlocks, unlocks of never-recorded locks).
	Anomalies int64
	// Ships and ShipErrors count streaming-sink snapshot deliveries
	// and failures (a failed ship keeps the tuples for the next try).
	Ships      int64
	ShipErrors int64
	// LastJob is the job ID wolfd minted for the most recent shipped
	// snapshot, "" before the first successful ship.
	LastJob string
}

// Recorder is one recording session. Obtain it from Start; it is ready
// for concurrent use by any number of goroutines.
type Recorder struct {
	epoch uint64
	opts  options

	buf  buffer
	tids atomic.Int64

	recorded  atomic.Int64
	dropped   atomic.Int64
	anomalies atomic.Int64

	mu      sync.Mutex
	tuples  []*trace.Tuple
	shipped int // len(tuples) covered by the last successful ship

	sink *streamSink

	stop     chan struct{}
	loopDone chan struct{}
}

// Start begins a recording session and installs it as the process
// recorder. With no sink options, sinks come from the WOLFSYNC_OUT /
// WOLFSYNC_URL / WOLFSYNC_TRACEPARENT environment (both may be set;
// neither is also fine — call WriteTo yourself). The calling goroutine
// becomes thread "main" unless it already carries a name. Only one
// session may be active at a time (ErrActive otherwise).
func Start(opts ...Option) (*Recorder, error) {
	o := options{
		quiesce:     2 * time.Second,
		chunk:       64 << 10,
		maxBuffered: 1 << 20,
		source:      "wolfsync",
	}
	for _, fn := range opts {
		fn(&o)
	}
	if o.file == "" && o.streamURL == "" {
		o.file = os.Getenv(EnvOut)
		o.streamURL = os.Getenv(EnvURL)
		if o.traceparent == "" {
			o.traceparent = os.Getenv(EnvTraceparent)
		}
	}
	if o.maxBuffered <= 0 {
		return nil, fmt.Errorf("wolfsync: max buffered events must be positive")
	}
	r := &Recorder{
		epoch: epochSeq.Add(1),
		opts:  o,
		stop:  make(chan struct{}),
	}
	if o.streamURL != "" {
		r.sink = newStreamSink(o)
	}
	if !active.CompareAndSwap(nil, r) {
		return nil, ErrActive
	}
	// The session root: name the calling goroutine "main" so creation
	// chains match sim's root thread. A goroutine that already carries
	// a real name (a nested Start from a labelled worker) keeps it.
	g := curG()
	if strings.HasPrefix(g.name, "g.") {
		g.name = "main"
		g.epoch = 0
	}
	if r.sink != nil && o.quiesce > 0 {
		r.loopDone = make(chan struct{})
		go r.loop()
	}
	return r, nil
}

// loop is the streaming sink's background shipper: when recording has
// been quiet for the quiesce window and unshipped tuples exist, ship a
// snapshot. It runs until Stop.
func (r *Recorder) loop() {
	defer close(r.loopDone)
	poll := max(r.opts.quiesce/4, 50*time.Millisecond)
	t := time.NewTicker(poll)
	defer t.Stop()
	lastLen := -1
	lastChange := time.Now()
	for {
		select {
		case <-r.stop:
			return
		case now := <-t.C:
			r.mu.Lock()
			r.drainLocked()
			n := len(r.tuples)
			shipped := r.shipped
			r.mu.Unlock()
			if n != lastLen {
				lastLen, lastChange = n, now
				continue
			}
			if n > shipped && now.Sub(lastChange) >= r.opts.quiesce {
				r.ship()
			}
		}
	}
}

// Stop ends the session: uninstalls the recorder, drains the buffer a
// final time, and flushes the configured sinks (file write, final
// stream ship). It returns the first sink error; the recorder itself
// cannot fail. Acquisitions racing with Stop may go unrecorded, which
// is inherent — stopping a recorder mid-flight truncates the trace at
// some consistent per-goroutine prefix.
func (r *Recorder) Stop() error {
	active.CompareAndSwap(r, nil)
	select {
	case <-r.stop:
		return nil // already stopped
	default:
	}
	close(r.stop)
	if r.loopDone != nil {
		<-r.loopDone
	}
	var errs []error
	if r.sink != nil {
		if err := r.ship(); err != nil {
			errs = append(errs, err)
		}
	}
	if r.opts.file != "" {
		if err := r.WriteFile(r.opts.file); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// ship sends one snapshot to wolfd, if there is anything new to send.
// Failures are counted and the tuples kept for the next attempt; the
// instrumented program is never blocked (ship runs on the background
// loop or inside Stop, never on an instrumented goroutine).
func (r *Recorder) ship() error {
	tr, n := r.snapshotN()
	r.mu.Lock()
	already := r.shipped
	r.mu.Unlock()
	if n == 0 || n <= already {
		return nil
	}
	if _, err := r.sink.ship(tr); err != nil {
		return fmt.Errorf("wolfsync: ship snapshot: %w", err)
	}
	r.mu.Lock()
	if n > r.shipped {
		r.shipped = n
	}
	r.mu.Unlock()
	return nil
}

// drainLocked folds buffered events into the ordered tuple log.
// Caller holds r.mu.
func (r *Recorder) drainLocked() {
	r.tuples = append(r.tuples, r.buf.drain()...)
}

// snapshotN assembles the current trace and reports how many tuples it
// covers.
func (r *Recorder) snapshotN() (*trace.Trace, int) {
	r.mu.Lock()
	r.drainLocked()
	tups := make([]*trace.Tuple, len(r.tuples))
	copy(tups, r.tuples)
	r.mu.Unlock()
	tr, err := trace.Assemble(tups, nil, nil, len(tups), 0)
	if err != nil {
		// Assemble only fails on malformed positions; the recorder
		// constructs them densely by design. Fall back to an empty
		// trace rather than panicking inside an instrumented program.
		tr, _ = trace.Assemble(nil, nil, nil, 0, 0)
	}
	return tr, len(tups)
}

// snapshot returns the trace recorded so far. Safe at any time, on any
// goroutine, concurrently with recording.
func (r *Recorder) snapshot() *trace.Trace {
	tr, _ := r.snapshotN()
	return tr
}

// WriteTo serializes the trace recorded so far as binary WTRC,
// implementing io.WriterTo. Safe at any time, concurrently with
// recording.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	err := r.snapshot().WriteBinary(cw)
	return cw.n, err
}

// countingWriter tallies bytes for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteFile writes the trace recorded so far to path atomically: a
// temp file in the destination directory, then a rename — a crash
// mid-write never leaves a torn .wtrc behind.
func (r *Recorder) WriteFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".wolfsync-*.wtrc")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := r.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Stats returns the session's counters.
func (r *Recorder) Stats() Stats {
	s := Stats{
		Recorded:  r.recorded.Load(),
		Dropped:   r.dropped.Load(),
		Anomalies: r.anomalies.Load(),
	}
	if r.sink != nil {
		s.Ships = r.sink.ships.Load()
		s.ShipErrors = r.sink.shipErrs.Load()
		if j := r.sink.lastJob.Load(); j != nil {
			s.LastJob = *j
		}
	}
	return s
}

// noteAcquire records an acquisition request by the calling goroutine:
// called by Mutex.Lock before blocking on the real mutex (and by
// TryLock after a successful try — which never blocks, so the
// distinction is unobservable). Re-acquisition of a lock already held
// by this goroutine emits no tuple, matching sim's reentrancy rule.
func noteAcquire(lock, site string) {
	g := curG()
	r := active.Load()
	reentrant := g.holdsLock(lock)
	e := heldEntry{lock: lock, site: site, reentrant: reentrant}
	if r != nil && !reentrant {
		g.ensure(r)
		g.seq++
		g.occ[site]++
		e.idx = sim.Index{Thread: g.name, Seq: g.seq}
		e.key = trace.Key{Thread: g.name, Site: site, Occ: g.occ[site]}
		tau := vclock.Bottom
		if r.opts.wallTau {
			tau = wallTau()
		}
		tup := &trace.Tuple{
			Thread:   g.name,
			ThreadID: g.tid,
			Lock:     lock,
			Site:     site,
			Idx:      e.idx,
			Key:      e.key,
			Tau:      tau,
			Held:     g.snapshotHeld(),
			Pos:      g.pos,
		}
		if r.buf.push(g.shard(), &event{tup: tup}, r.opts.maxBuffered) {
			g.pos++
			r.recorded.Add(1)
		} else {
			r.dropped.Add(1)
		}
	}
	g.held = append(g.held, e)
}

// noteRelease pops the most recent matching held entry — sim's unlock
// rule. A release with no matching entry (cross-goroutine unlock, or a
// lock acquired before instrumentation) is counted as an anomaly and
// otherwise ignored: sync.Mutex permits it, so the recorder must too.
func noteRelease(lock string) {
	g := curG()
	for i := len(g.held) - 1; i >= 0; i-- {
		if g.held[i].lock == lock {
			g.held = append(g.held[:i], g.held[i+1:]...)
			return
		}
	}
	if r := active.Load(); r != nil {
		r.anomalies.Add(1)
	}
}
