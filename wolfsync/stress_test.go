package wolfsync

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"wolf/internal/trace"
)

// TestStressConcurrentFlush is the recorder's -race gauntlet: 64
// goroutines hammer a pool of shared mutexes (always acquiring in
// index order, so the stress never deadlocks for real) while another
// goroutine snapshots the trace concurrently the whole time. The final
// trace must pass trace.Validate — per-thread dense positions and
// monotone taus surviving concurrent partial drains is exactly the
// ordering guarantee the sharded buffer exists to provide — and must
// round-trip through the binary codec.
func TestStressConcurrentFlush(t *testing.T) {
	const (
		goroutines = 64
		iters      = 100
		pool       = 8
	)
	locks := make([]*Mutex, pool)
	for i := range locks {
		locks[i] = NewMutex("shared#" + string(rune('a'+i)))
	}
	r, err := Start(WithWallClockTau())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := range goroutines {
		i := i
		Go("stress", func() {
			defer wg.Done()
			for k := range iters {
				a := (i + k) % pool
				b := (i + k + 1 + k%(pool-1)) % pool
				if a > b {
					a, b = b, a
				}
				locks[a].Lock()
				if a != b {
					locks[b].Lock()
				}
				if a != b {
					locks[b].Unlock()
				}
				locks[a].Unlock()
			}
		})
	}

	// Concurrent flusher: serialize snapshots as fast as possible
	// while the stress runs, exercising drain/push races under -race.
	stop := make(chan struct{})
	flusher := make(chan struct{})
	go func() {
		defer close(flusher)
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := r.WriteTo(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	<-flusher

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("stress trace invalid: %v", err)
	}
	want := goroutines * iters * 2
	if len(tr.Tuples) != want {
		t.Fatalf("recorded %d tuples, want %d", len(tr.Tuples), want)
	}

	// Round trip: re-encode and re-decode must preserve the relation.
	var buf2 bytes.Buffer
	if err := tr.WriteBinary(&buf2); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.ReadBinary(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Tuples) != len(tr.Tuples) {
		t.Fatalf("round trip lost tuples: %d != %d", len(tr2.Tuples), len(tr.Tuples))
	}
	for i := range tr.Tuples {
		a, b := tr.Tuples[i], tr2.Tuples[i]
		if a.Thread != b.Thread || a.Lock != b.Lock || a.Site != b.Site ||
			a.Key != b.Key || a.Pos != b.Pos || a.Tau != b.Tau || len(a.Held) != len(b.Held) {
			t.Fatalf("tuple %d diverged: %+v != %+v", i, a, b)
		}
	}
}
