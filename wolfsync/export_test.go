package wolfsync

// WithHTTPClient exposes the streaming sink's HTTP-client override to
// the external test package (sink_test.go lives there to break the
// wolfsync → server → workloads → wolfsync test-import cycle).
var WithHTTPClient = withHTTPClient
