package wolfsync

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"wolf/internal/httpx"
	"wolf/internal/trace"
)

// streamSink ships trace snapshots to wolfd over the streaming
// ingestion API: open a stream (POST /v1/streams, tagged
// source=wolfsync), append the serialized WTRC in chunks, close into a
// job. Requests go through the shared retrying client, so transient
// 429/502/503 from wolfd are absorbed; a sink that still fails drops
// the ship, counts it, and leaves the tuples for the next attempt —
// the instrumented program never notices either way.
//
// WTRC's layout (counts and string table before tuples) means a
// snapshot can only be serialized once its contents are fixed, so the
// sink ships whole snapshots rather than appending live events; each
// ship supersedes the last, and wolfd's content-addressed dedup plus
// fingerprint-keyed corpus make repeated ships of a growing trace
// converge on one defect record per defect.
type streamSink struct {
	base   string
	tp     string
	source string
	chunk  int
	hc     *httpx.Client

	ships    atomic.Int64
	shipErrs atomic.Int64
	lastJob  atomic.Pointer[string]
}

func newStreamSink(o options) *streamSink {
	hc := o.httpClient
	if hc == nil {
		// Bounded end to end: modest per-request timeout, retries with
		// backoff inside the client. A dead wolfd costs the background
		// shipper a few seconds per attempt, nothing more.
		hc = &httpx.Client{HTTP: &http.Client{Timeout: 10 * time.Second}}
	}
	return &streamSink{
		base:   o.streamURL,
		tp:     o.traceparent,
		source: o.source,
		chunk:  o.chunk,
		hc:     hc,
	}
}

// ship delivers one snapshot, returning the job ID wolfd minted for
// it. Every failure path increments shipErrs exactly once.
func (s *streamSink) ship(tr *trace.Trace) (string, error) {
	job, err := s.shipOnce(tr)
	if err != nil {
		s.shipErrs.Add(1)
		return "", err
	}
	s.ships.Add(1)
	s.lastJob.Store(&job)
	return job, nil
}

func (s *streamSink) shipOnce(tr *trace.Trace) (string, error) {
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		return "", err
	}
	data := buf.Bytes()

	meta, _ := json.Marshal(struct {
		Source string `json:"source"`
	}{Source: s.source})
	req, err := http.NewRequest(http.MethodPost, s.base+"/v1/streams", bytes.NewReader(meta))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if s.tp != "" {
		req.Header.Set("traceparent", s.tp)
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return "", err
	}
	var opened struct {
		ID string `json:"id"`
	}
	err = decodeJSON(resp, http.StatusCreated, &opened)
	if err != nil {
		return "", fmt.Errorf("open stream: %w", err)
	}

	for off := 0; off < len(data); off += s.chunk {
		end := min(off+s.chunk, len(data))
		resp, err := s.hc.Post(s.base+"/v1/streams/"+opened.ID+"/chunks",
			"application/octet-stream", data[off:end])
		if err != nil {
			return "", err
		}
		if err := decodeJSON(resp, http.StatusOK, &struct{}{}); err != nil {
			return "", fmt.Errorf("chunk at %d: %w", off, err)
		}
	}

	resp, err = s.hc.Post(s.base+"/v1/streams/"+opened.ID+"/close", "", nil)
	if err != nil {
		return "", err
	}
	var j struct {
		ID string `json:"id"`
	}
	if err := decodeJSON(resp, http.StatusAccepted, &j); err != nil {
		return "", fmt.Errorf("close stream: %w", err)
	}
	return j.ID, nil
}

// decodeJSON consumes a response, enforcing the expected status.
func decodeJSON(resp *http.Response, want int, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode != want {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
