package wolfsync

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// lockName lazily names an anonymous lock. Zero-value mutexes work
// like their sync counterparts; they get a generated "prefix#N" name
// on first use. Named constructors give locks the stable identities
// that make fingerprints meaningful (and comparable with sim locks of
// the same name).
type lockName struct {
	p atomic.Pointer[string]
}

func (n *lockName) get(prefix string) string {
	if s := n.p.Load(); s != nil {
		return *s
	}
	fresh := fmt.Sprintf("%s#%d", prefix, lockSeq.Add(1)-1)
	if n.p.CompareAndSwap(nil, &fresh) {
		return fresh
	}
	return *n.p.Load()
}

func (n *lockName) set(name string) { n.p.Store(&name) }

// Mutex is a drop-in replacement for sync.Mutex that records every
// acquisition with the active Recorder. The zero value is an unlocked,
// anonymous mutex; NewMutex gives it a stable name.
//
// Acquisitions are recorded at request time — before blocking on the
// underlying mutex — so a real deadlock leaves its blocked requests in
// the trace. Re-acquiring a lock this goroutine already holds records
// nothing (and, as with sync.Mutex, will self-deadlock). Unlocking
// from a different goroutine than the locker is legal for sync.Mutex
// and tolerated here: the recorder cannot attribute such a release, so
// it counts an anomaly and the lock stays on the locker's recorded
// lockset — over-approximating held sets rather than corrupting them.
type Mutex struct {
	mu   sync.Mutex
	name lockName
}

// NewMutex returns a mutex recorded under the given stable name.
func NewMutex(name string) *Mutex {
	m := &Mutex{}
	m.name.set(name)
	return m
}

// Name returns the mutex's recorded identity, naming it if needed.
func (m *Mutex) Name() string { return m.name.get("m") }

// Lock acquires the mutex, recording the acquisition against the
// caller's source line.
func (m *Mutex) Lock() {
	noteAcquire(m.name.get("m"), callSite())
	m.mu.Lock()
}

// LockAt is Lock with an explicit site label — for wrappers whose
// immediate caller is not the interesting frame, and for programs that
// must match a sim workload's site strings exactly.
func (m *Mutex) LockAt(site string) {
	noteAcquire(m.name.get("m"), site)
	m.mu.Lock()
}

// TryLock attempts the lock without blocking. A failed try records
// nothing: the goroutine never waits, so there is no wait-for edge to
// record. A successful try is an ordinary acquisition.
func (m *Mutex) TryLock() bool {
	if !m.mu.TryLock() {
		return false
	}
	noteAcquire(m.name.get("m"), callSite())
	return true
}

// Unlock releases the mutex and pops the caller's most recent matching
// held entry.
func (m *Mutex) Unlock() {
	noteRelease(m.name.get("m"))
	m.mu.Unlock()
}

// RWMutex is a drop-in replacement for sync.RWMutex. Both read and
// write acquisitions are recorded as acquisitions of the same lock
// name: WTRC's event vocabulary has a single acquire event, and
// collapsing the read/write distinction is the sound direction — every
// real deadlock involving the write side is still a cycle in the
// recorded order, at the cost of possible false cycles between
// readers (the detector's replay stage exists to sort exactly such
// candidates out). A nested RLock by the same goroutine is reentrant:
// recorded once, held until the matching RUnlock.
type RWMutex struct {
	mu   sync.RWMutex
	name lockName
}

// NewRWMutex returns an RWMutex recorded under the given stable name.
func NewRWMutex(name string) *RWMutex {
	m := &RWMutex{}
	m.name.set(name)
	return m
}

// Name returns the mutex's recorded identity, naming it if needed.
func (m *RWMutex) Name() string { return m.name.get("rw") }

// Lock acquires the write lock.
func (m *RWMutex) Lock() {
	noteAcquire(m.name.get("rw"), callSite())
	m.mu.Lock()
}

// LockAt is Lock with an explicit site label.
func (m *RWMutex) LockAt(site string) {
	noteAcquire(m.name.get("rw"), site)
	m.mu.Lock()
}

// TryLock attempts the write lock without blocking; only a successful
// try is recorded.
func (m *RWMutex) TryLock() bool {
	if !m.mu.TryLock() {
		return false
	}
	noteAcquire(m.name.get("rw"), callSite())
	return true
}

// Unlock releases the write lock.
func (m *RWMutex) Unlock() {
	noteRelease(m.name.get("rw"))
	m.mu.Unlock()
}

// RLock acquires the read lock, recorded as an acquisition of the
// same lock name (see the type comment for why that is the sound
// mapping).
func (m *RWMutex) RLock() {
	noteAcquire(m.name.get("rw"), callSite())
	m.mu.RLock()
}

// RLockAt is RLock with an explicit site label.
func (m *RWMutex) RLockAt(site string) {
	noteAcquire(m.name.get("rw"), site)
	m.mu.RLock()
}

// TryRLock attempts the read lock without blocking; only a successful
// try is recorded.
func (m *RWMutex) TryRLock() bool {
	if !m.mu.TryRLock() {
		return false
	}
	noteAcquire(m.name.get("rw"), callSite())
	return true
}

// RUnlock releases the read lock.
func (m *RWMutex) RUnlock() {
	noteRelease(m.name.get("rw"))
	m.mu.RUnlock()
}
