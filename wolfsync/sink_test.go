package wolfsync_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wolf/internal/httpx"
	"wolf/internal/server"
	"wolf/internal/store"
	"wolf/wolfsync"
)

// startWolfd runs a corpus-backed wolfd behind httptest.
func startWolfd(t *testing.T) string {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{Workers: 2, QueueSize: 8, Store: st})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		st.Close()
	})
	return ts.URL
}

// TestStreamSinkEndToEnd records a small run with the live streaming
// sink pointed at a real in-process wolfd: Stop ships the snapshot over
// POST /v1/streams, the resulting analysis job completes, and the
// stream is labeled source=wolfsync in wolfd's metrics.
func TestStreamSinkEndToEnd(t *testing.T) {
	base := startWolfd(t)

	rec, err := wolfsync.Start(wolfsync.WithStream(base), wolfsync.WithQuiesce(0))
	if err != nil {
		t.Fatal(err)
	}
	a, b := wolfsync.NewMutex("outer"), wolfsync.NewMutex("inner")
	for i := 0; i < 3; i++ {
		a.Lock()
		b.Lock()
		b.Unlock()
		a.Unlock()
	}
	if err := rec.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}

	st := rec.Stats()
	if st.Ships != 1 || st.ShipErrors != 0 || st.LastJob == "" {
		t.Fatalf("ships=%d shipErrs=%d lastJob=%q, want 1/0/non-empty",
			st.Ships, st.ShipErrors, st.LastJob)
	}

	// The shipped snapshot must decode and analyze server-side.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + st.LastJob)
		if err != nil {
			t.Fatal(err)
		}
		var j struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if j.State == "done" {
			break
		}
		if j.State == "failed" {
			t.Fatalf("job failed: %s", j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", st.LastJob, j.State)
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := `wolfd_streams_opened_total{source="wolfsync"} 1`; !strings.Contains(string(raw), want) {
		t.Fatalf("wolfd metrics missing %q", want)
	}
}

// TestStreamSinkUnreachable: a dead wolfd costs the recorder a counted
// ship error on Stop — recording itself never fails or blocks.
func TestStreamSinkUnreachable(t *testing.T) {
	rec, err := wolfsync.Start(
		wolfsync.WithStream("http://127.0.0.1:1"), // reserved port, connection refused
		wolfsync.WithQuiesce(0),
		wolfsync.WithHTTPClient(&httpx.Client{
			HTTP:        &http.Client{Timeout: 200 * time.Millisecond},
			MaxAttempts: 1,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	m := wolfsync.NewMutex("lonely")
	m.Lock()
	m.Unlock()

	if err := rec.Stop(); err == nil {
		t.Fatal("Stop should surface the failed final ship")
	}
	st := rec.Stats()
	if st.Recorded != 1 || st.Ships != 0 || st.ShipErrors != 1 {
		t.Fatalf("recorded=%d ships=%d shipErrs=%d, want 1/0/1",
			st.Recorded, st.Ships, st.ShipErrors)
	}
}
