package wolfsync

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"wolf/internal/trace"
	"wolf/internal/vclock"
)

// record runs body under a fresh session and returns the decoded
// trace, exercising the full WriteTo → ReadBinary round trip.
func record(t *testing.T, body func(), opts ...Option) *trace.Trace {
	t.Helper()
	r, err := Start(opts...)
	if err != nil {
		t.Fatal(err)
	}
	body()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
	return tr
}

func TestNestedAcquisitionRecordsHeldSet(t *testing.T) {
	a, b := NewMutex("A"), NewMutex("B")
	tr := record(t, func() {
		a.LockAt("x.go:1")
		b.LockAt("x.go:2")
		b.Unlock()
		a.Unlock()
	})
	if len(tr.Tuples) != 2 {
		t.Fatalf("got %d tuples, want 2", len(tr.Tuples))
	}
	first, second := tr.Tuples[0], tr.Tuples[1]
	if first.Thread != "main" || first.Lock != "A" || first.Site != "x.go:1" {
		t.Fatalf("first tuple = %+v", first)
	}
	if len(first.Held) != 0 {
		t.Fatalf("first acquisition held %v, want nothing", first.Held)
	}
	if second.Lock != "B" || len(second.Held) != 1 || second.Held[0].Lock != "A" {
		t.Fatalf("second tuple = %+v", second)
	}
	if second.Held[0].Site != "x.go:1" {
		t.Fatalf("held site = %q, want x.go:1", second.Held[0].Site)
	}
}

func TestCallSiteCapture(t *testing.T) {
	m := NewMutex("L")
	tr := record(t, func() {
		m.Lock() // the recorded site must be this line of this file
		m.Unlock()
	})
	if len(tr.Tuples) != 1 {
		t.Fatalf("got %d tuples, want 1", len(tr.Tuples))
	}
	site := tr.Tuples[0].Site
	if filepath.Ext(site) == site || site[:13] != "wolfsync_test" {
		t.Fatalf("site = %q, want wolfsync_test.go:<line>", site)
	}
}

func TestReentrancyAndTryLock(t *testing.T) {
	rw := NewRWMutex("R")
	m := NewMutex("M")
	busy := NewMutex("busy")
	tr := record(t, func() {
		rw.RLockAt("r.go:1")
		rw.RLockAt("r.go:2") // reentrant: no tuple
		rw.RUnlock()
		rw.RUnlock()

		if !m.TryLock() { // uncontended try succeeds: one tuple
			t.Error("TryLock failed on free mutex")
		}
		m.Unlock()

		busy.LockAt("b.go:1")
		done := make(chan bool)
		go func() { done <- busy.TryLock() }() // contended try: no tuple
		if <-done {
			t.Error("TryLock succeeded on held mutex")
		}
		busy.Unlock()
	})
	var locks []string
	for _, tp := range tr.Tuples {
		locks = append(locks, tp.Lock)
	}
	want := []string{"R", "M", "busy"}
	if len(locks) != len(want) {
		t.Fatalf("recorded %v, want %v", locks, want)
	}
	for i := range want {
		if locks[i] != want[i] {
			t.Fatalf("recorded %v, want %v", locks, want)
		}
	}
}

func TestGoCreationChainNaming(t *testing.T) {
	m := NewMutex("shared")
	tr := record(t, func() {
		var wg sync.WaitGroup
		wg.Add(3)
		for range 2 {
			Go("worker", func() {
				defer wg.Done()
				m.LockAt("w.go:1")
				m.Unlock()
			})
		}
		Go("other", func() {
			defer wg.Done()
			m.LockAt("o.go:1")
			m.Unlock()
		})
		wg.Wait()
	})
	names := map[string]bool{}
	for _, tp := range tr.Tuples {
		names[tp.Thread] = true
	}
	for _, want := range []string{"main/worker.0", "main/worker.1", "main/other.0"} {
		if !names[want] {
			t.Fatalf("thread %s missing from %v", want, names)
		}
	}
}

func TestDropWhenBufferFull(t *testing.T) {
	m := NewMutex("cap")
	r, err := Start(WithMaxBuffered(4))
	if err != nil {
		t.Fatal(err)
	}
	for range 10 {
		m.Lock()
		m.Unlock()
	}
	st := r.Stats()
	tr := r.snapshot()
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if st.Dropped == 0 {
		t.Fatalf("stats = %+v, want drops", st)
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("trace with drops invalid: %v", err)
	}
	if len(tr.Tuples) == 0 || len(tr.Tuples) > 5 {
		t.Fatalf("got %d tuples with cap 4", len(tr.Tuples))
	}
}

func TestStartExclusive(t *testing.T) {
	r, err := Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Start(); err != ErrActive {
		t.Fatalf("second Start: %v, want ErrActive", err)
	}
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := r.Stop(); err != nil {
		t.Fatalf("double Stop: %v", err)
	}
}

func TestEnvFileSink(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.wtrc")
	t.Setenv(EnvOut, out)
	m := NewMutex("envd")
	r, err := Start()
	if err != nil {
		t.Fatal(err)
	}
	m.Lock()
	m.Unlock()
	if err := r.Stop(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Tuples) != 1 || tr.Tuples[0].Lock != "envd" {
		t.Fatalf("env sink trace = %+v", tr.Tuples)
	}
}

func TestWallClockTau(t *testing.T) {
	m := NewMutex("tau")
	tr := record(t, func() {
		for range 3 {
			m.Lock()
			m.Unlock()
			time.Sleep(time.Millisecond)
		}
	}, WithWallClockTau())
	last := vclock.Bottom
	for i, tp := range tr.Tuples {
		if tp.Tau == vclock.Bottom {
			t.Fatalf("tuple %d has Bottom tau in wall-clock mode", i)
		}
		if tp.Tau < last {
			t.Fatalf("tau ran backwards: %d after %d", tp.Tau, last)
		}
		last = tp.Tau
	}
}

func TestCrossGoroutineUnlockCountsAnomaly(t *testing.T) {
	m := NewMutex("handoff")
	r, err := Start()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	locked := make(chan struct{})
	done := make(chan struct{})
	Go("locker", func() {
		m.Lock()
		close(locked)
		<-done
	})
	<-locked
	m.Unlock() // legal for sync.Mutex; unattributable for the recorder
	close(done)
	if st := r.Stats(); st.Anomalies != 1 {
		t.Fatalf("anomalies = %d, want 1", st.Anomalies)
	}
}

// TestWallClockTauCrossGoroutine: concurrent goroutines stamping
// wall-clock taus produce cross-thread skew in drain order; the
// recorded trace must still pass trace.Validate (which record()
// asserts), and each goroutine's own taus must be non-decreasing.
func TestWallClockTauCrossGoroutine(t *testing.T) {
	tr := record(t, func() {
		var wg sync.WaitGroup
		wg.Add(2)
		for _, name := range []string{"a", "b"} {
			name := name
			Go(name, func() {
				defer wg.Done()
				m := NewMutex("own-" + name)
				for range 5 {
					m.Lock()
					m.Unlock()
					time.Sleep(100 * time.Microsecond)
				}
			})
		}
		wg.Wait()
	}, WithWallClockTau())
	last := map[string]int{}
	for i, tp := range tr.Tuples {
		if tp.Tau == vclock.Bottom {
			t.Fatalf("tuple %d has Bottom tau in wall-clock mode", i)
		}
		if prev, ok := last[tp.Thread]; ok && tp.Tau < prev {
			t.Fatalf("thread %s tau ran backwards: %d after %d", tp.Thread, tp.Tau, prev)
		}
		last[tp.Thread] = tp.Tau
	}
	if len(last) != 2 {
		t.Fatalf("expected 2 recording threads, saw %d", len(last))
	}
}
