// Package wolfsync instruments real Go programs for WOLF: drop-in
// replacements for sync.Mutex and sync.RWMutex that record every lock
// acquisition as a WTRC tuple, so traces from production code feed the
// same detection pipeline as sim recordings.
//
// The recorder is designed to stay off the program's hot path:
//
//   - Acquisitions are recorded into a lock-free sharded buffer
//     (one CAS per event, no shared lock).
//   - Call sites are captured from the runtime and interned, so the
//     steady-state cost of a recorded Lock is one cache lookup.
//   - Sinks never block the instrumented program: the file sink writes
//     on demand, the streaming sink ships snapshots from a background
//     goroutine and degrades to drop-and-count when wolfd is
//     unreachable.
//
// Thread identity follows the paper's creation-chain scheme: the
// goroutine that calls Start is "main", and goroutines spawned through
// wolfsync.Go get stable names parent + "/" + name + "." + n — the
// exact naming sim uses, which is what makes fingerprints from real
// runs byte-comparable with fingerprints from simulated ones.
// Goroutines the recorder has never seen (spawned with plain go, or by
// a library such as net/http) are admitted with generated "g.N" names;
// use Label from inside such a goroutine to give it a meaningful one.
//
// Acquisitions are recorded at request time, before blocking on the
// underlying mutex. A run that completes yields the same trace either
// way (a goroutine does nothing between request and grant), and a run
// that deadlocks for real leaves the blocked requests in the trace —
// which is precisely what makes the wedge diagnosable after the fact.
//
// Minimal use:
//
//	rec, _ := wolfsync.Start()          // sinks from WOLFSYNC_* env
//	defer rec.Stop()
//	var mu wolfsync.Mutex
//	mu.Lock()
//	// ...
//	mu.Unlock()
package wolfsync

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wolf/internal/trace"
	"wolf/sim"
)

// goroutines maps runtime goroutine IDs to their recorder-side state.
// Entries registered by Go are removed when the goroutine returns;
// first-touch entries for anonymous goroutines stay until process
// exit (the runtime never reuses goroutine IDs, so a stale entry can
// never be resurrected — it is only garbage).
var goroutines sync.Map // map[uint64]*gstate

// anonSeq numbers goroutines that record before anyone names them.
var anonSeq atomic.Int64

// goid extracts the runtime's ID for the calling goroutine from the
// first stack-trace line ("goroutine N [running]: ..."). There is no
// public API for this; the parse is the standard trick and costs one
// small runtime.Stack call, paid once per goroutine per lookup.
func goid() uint64 {
	var b [64]byte
	n := runtime.Stack(b[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for i := prefix; i < n && b[i] >= '0' && b[i] <= '9'; i++ {
		id = id*10 + uint64(b[i]-'0')
	}
	return id
}

// heldEntry is one level of the goroutine's lock stack.
type heldEntry struct {
	lock string
	site string
	idx  sim.Index
	key  trace.Key
	// reentrant marks a re-acquisition of a lock already on the stack
	// (nested RLock, and defensively a self-deadlocking double Lock):
	// no tuple is emitted and the entry is skipped in held-set
	// snapshots, mirroring how sim and the paper treat reentrancy.
	reentrant bool
}

// gstate is the recorder's per-goroutine state. Every field is written
// only by the owning goroutine (creation-chain counters included —
// a goroutine names only its own children), so no locking is needed;
// the registry map itself is the only shared structure.
type gstate struct {
	gid  uint64
	name string

	// epoch ties the counters below to one recording session; a new
	// session resets them lazily on the goroutine's next acquisition.
	epoch uint64
	tid   sim.ThreadID
	seq   int            // 1-based operation counter (Idx.Seq)
	pos   int            // dense per-thread tuple position
	occ   map[string]int // per-site occurrence counter (Key.Occ)
	held  []heldEntry

	children map[string]int // per-name child ordinals for Go
}

// curG returns the calling goroutine's state, admitting it with a
// generated name on first touch.
func curG() *gstate {
	id := goid()
	if v, ok := goroutines.Load(id); ok {
		return v.(*gstate)
	}
	g := &gstate{gid: id, name: fmt.Sprintf("g.%d", anonSeq.Add(1)-1)}
	goroutines.Store(id, g)
	return g
}

// shard maps the goroutine to its event-buffer shard. The mapping is a
// pure function of the goroutine ID, so all of one goroutine's events
// land in one shard — that is what preserves per-thread order across
// partial drains.
func (g *gstate) shard() uint32 { return uint32(g.gid % shardCount) }

// holdsLock reports whether lock is already on the goroutine's stack.
func (g *gstate) holdsLock(lock string) bool {
	for i := range g.held {
		if g.held[i].lock == lock {
			return true
		}
	}
	return false
}

// ensure (re)binds the goroutine's counters to recorder r's session.
// Locks still held from before the session (or from a previous one)
// are re-keyed against the fresh counters so the held sets of upcoming
// tuples carry valid, unique keys.
func (g *gstate) ensure(r *Recorder) {
	if g.epoch == r.epoch {
		return
	}
	g.epoch = r.epoch
	g.tid = sim.ThreadID(r.tids.Add(1) - 1)
	g.seq, g.pos = 0, 0
	g.occ = make(map[string]int)
	for i := range g.held {
		e := &g.held[i]
		if e.reentrant {
			continue
		}
		g.seq++
		g.occ[e.site]++
		e.idx = sim.Index{Thread: g.name, Seq: g.seq}
		e.key = trace.Key{Thread: g.name, Site: e.site, Occ: g.occ[e.site]}
	}
}

// snapshotHeld copies the current non-reentrant lock stack in
// acquisition order — the L_t of the tuple about to be recorded.
func (g *gstate) snapshotHeld() []trace.HeldLock {
	var out []trace.HeldLock
	for i := range g.held {
		e := &g.held[i]
		if e.reentrant {
			continue
		}
		out = append(out, trace.HeldLock{Lock: e.lock, Idx: e.idx, Key: e.key, Site: e.site})
	}
	return out
}

// Go spawns fn on a new goroutine with a stable creation-chain name:
// parentName + "/" + name + "." + n, where n counts children of the
// same name spawned by the calling goroutine — the naming sim.Thread.Go
// uses, and the identity the paper's thread abstraction is built on.
// The child's registry entry is removed when fn returns.
func Go(name string, fn func()) {
	parent := curG()
	if parent.children == nil {
		parent.children = make(map[string]int)
	}
	n := parent.children[name]
	parent.children[name] = n + 1
	child := fmt.Sprintf("%s/%s.%d", parent.name, name, n)
	go func() {
		id := goid()
		g := &gstate{gid: id, name: child}
		goroutines.Store(id, g)
		defer goroutines.Delete(id)
		fn()
	}()
}

// Label names the calling goroutine for all acquisitions it records
// from now on. It is the escape hatch for goroutines not spawned via
// Go (HTTP handler goroutines, worker pools): call it on entry, before
// the first instrumented Lock. Tuples already recorded keep the old
// name, so a mid-session Label produces two thread identities; label
// early.
func Label(name string) {
	if name == "" {
		return
	}
	g := curG()
	if g.name != name {
		g.name = name
		g.epoch = 0 // force a re-key on the next recorded acquisition
	}
}
