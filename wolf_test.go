package wolf_test

import (
	"strings"
	"testing"

	"wolf"
	"wolf/sim"
)

// inversionFactory is the quickstart program from the package docs.
func inversionFactory() (sim.Program, sim.Options) {
	var a, b *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b = w.NewLock("A"), w.NewLock("B")
	}}
	prog := func(t *sim.Thread) {
		h := t.Go("worker", func(u *sim.Thread) {
			u.Lock(b, "worker.go:7")
			u.Lock(a, "worker.go:8")
			u.Unlock(a, "worker.go:9")
			u.Unlock(b, "worker.go:10")
		}, "main.go:3")
		t.Lock(a, "main.go:4")
		t.Lock(b, "main.go:5")
		t.Unlock(b, "main.go:6")
		t.Unlock(a, "main.go:7")
		t.Join(h, "main.go:8")
	}
	return prog, opts
}

// TestPublicAPIAnalyze: the quickstart confirms its deadlock through the
// public surface alone.
func TestPublicAPIAnalyze(t *testing.T) {
	rep := wolf.Analyze(inversionFactory, wolf.Config{DetectSeeds: []int64{3}})
	if len(rep.Defects) != 1 {
		t.Fatalf("defects = %d, want 1\n%v", len(rep.Defects), rep)
	}
	if rep.Defects[0].Class != wolf.Confirmed {
		t.Fatalf("class = %v, want confirmed", rep.Defects[0].Class)
	}
	if !strings.Contains(rep.String(), "confirmed") {
		t.Fatalf("report rendering missing verdict:\n%v", rep)
	}
}

// TestPublicAPIBaseline: the baseline confirms the easy case too.
func TestPublicAPIBaseline(t *testing.T) {
	rep := wolf.AnalyzeDeadlockFuzzer(inversionFactory, wolf.Config{
		DetectSeeds:    []int64{3},
		ReplayAttempts: 10,
	})
	if len(rep.Defects) != 1 {
		t.Fatalf("defects = %d, want 1", len(rep.Defects))
	}
	if rep.Defects[0].Class != wolf.Confirmed {
		t.Fatalf("baseline class = %v, want confirmed", rep.Defects[0].Class)
	}
}

// TestPublicAPIHitRates: WOLF's hit rate dominates the baseline's on the
// quickstart.
func TestPublicAPIHitRates(t *testing.T) {
	rep := wolf.Analyze(inversionFactory, wolf.Config{DetectSeeds: []int64{3}})
	cr := rep.Defects[0].Cycles[0]
	hw := wolf.HitRate(inversionFactory, cr, 20)
	hd := wolf.BaselineHitRate(inversionFactory, cr, 20)
	if hw < hd {
		t.Fatalf("WOLF hit rate %.2f below baseline %.2f", hw, hd)
	}
	if hw < 0.9 {
		t.Fatalf("WOLF hit rate %.2f, want >= 0.9 on the quickstart", hw)
	}
}

// TestHitRateOnPrunedCycle returns zero rather than misbehaving.
func TestHitRateOnPrunedCycle(t *testing.T) {
	// Figure-1-style program whose only cycle is pruned.
	factory := func() (sim.Program, sim.Options) {
		var tc, ct *sim.Lock
		opts := sim.Options{Setup: func(w *sim.World) {
			tc, ct = w.NewLock("TC"), w.NewLock("CT")
		}}
		prog := func(t *sim.Thread) {
			t.Lock(tc, "init:1")
			t.Lock(ct, "init:2")
			h := t.Go("cached", func(u *sim.Thread) {
				u.Lock(ct, "run:1")
				u.Lock(tc, "run:2")
				u.Unlock(tc, "run:3")
				u.Unlock(ct, "run:4")
			}, "init:3")
			t.Unlock(ct, "init:4")
			t.Unlock(tc, "init:5")
			t.Join(h, "init:6")
		}
		return prog, opts
	}
	rep := wolf.Analyze(factory, wolf.Config{DetectSeeds: []int64{2}})
	if len(rep.Cycles) != 1 || rep.Cycles[0].Class != wolf.FalseByPruner {
		t.Fatalf("unexpected pipeline result:\n%v", rep)
	}
	if hr := wolf.HitRate(factory, rep.Cycles[0], 5); hr != 0 {
		t.Fatalf("hit rate on pruned cycle = %v, want 0", hr)
	}
}
