// Command benchjson converts `go test -bench` text output on stdin into
// machine-readable JSON on stdout, for CI benchmark artifacts:
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | benchjson > BENCH.json
//
// Each benchmark line becomes one result object with the trailing
// -procs suffix split off the name and every value/unit pair collected
// into a metrics map, so downstream tooling can diff runs without
// parsing the bench text format itself.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name without the -procs suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (0 when absent).
	Procs int `json:"procs,omitempty"`
	// Iterations is b.N for the run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every pair on the line
	// ("ns/op", "B/op", "allocs/op", custom units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the document benchjson emits.
type Report struct {
	// Goos/Goarch/Pkg echo the bench header lines when present.
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkgs    []string `json:"pkgs,omitempty"`
	Results []Result `json:"results"`
}

// parseLine parses one "BenchmarkX-8  10  123 ns/op  ..." line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}

// parse consumes bench output line by line.
func parse(lines *bufio.Scanner) (Report, error) {
	var rep Report
	for lines.Scan() {
		line := lines.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkgs = append(rep.Pkgs, strings.TrimPrefix(line, "pkg: "))
		default:
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	return rep, lines.Err()
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	rep, err := parse(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
