package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: wolf/internal/obs
cpu: AMD EPYC 7B13
BenchmarkSpanDisabled-8          	1000000	        12.3 ns/op	       0 B/op	       0 allocs/op
BenchmarkHistogramObserve-8      	5000000	         4.56 ns/op
BenchmarkDetection/Figure4-8     	     10	    123456 ns/op	   98765 B/op	     321 allocs/op
PASS
ok  	wolf/internal/obs	1.234s
`

func TestParse(t *testing.T) {
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Errorf("env = %q/%q", rep.Goos, rep.Goarch)
	}
	if len(rep.Pkgs) != 1 || rep.Pkgs[0] != "wolf/internal/obs" {
		t.Errorf("pkgs = %v", rep.Pkgs)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkSpanDisabled" || r.Procs != 8 || r.Iterations != 1000000 {
		t.Errorf("first result = %+v", r)
	}
	if r.Metrics["ns/op"] != 12.3 || r.Metrics["allocs/op"] != 0 {
		t.Errorf("metrics = %v", r.Metrics)
	}
	if sub := rep.Results[2]; sub.Name != "BenchmarkDetection/Figure4" || sub.Metrics["B/op"] != 98765 {
		t.Errorf("subbench = %+v", sub)
	}
}

func TestParseLineRejects(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	wolf/internal/obs	1.234s",
		"BenchmarkBroken notanumber 12 ns/op",
		"BenchmarkNoMetrics-8 100",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted", line)
		}
	}
}
