// Command paper regenerates the evaluation artifacts of "Trace Driven
// Dynamic Deadlock Detection and Reproduction" (PPoPP 2014): Table 1
// (defect-level comparison of WOLF vs DeadlockFuzzer), Table 2
// (cycle-level comparison), Figure 8 (hit rates over repeated replays)
// and Figure 10 (relative overheads).
//
// Usage:
//
//	paper [-table1] [-table2] [-fig8] [-fig10] [-all]
//	      [-runs N] [-attempts N] [-workloads a,b,c]
//
// With no selection flags, -all is assumed. Absolute timings differ
// from the paper (different machine, simulated substrate); the tables
// print the paper's numbers alongside for shape comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wolf/internal/report"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "regenerate Table 1 (defect-level comparison)")
		table2    = flag.Bool("table2", false, "regenerate Table 2 (cycle-level comparison)")
		fig8      = flag.Bool("fig8", false, "regenerate Figure 8 (hit rates)")
		fig10     = flag.Bool("fig10", false, "regenerate Figure 10 (normalized overheads)")
		all       = flag.Bool("all", false, "regenerate everything")
		runs      = flag.Int("runs", 100, "replays per deadlock for Figure 8")
		attempts  = flag.Int("attempts", 5, "replay attempts per cycle for classification")
		workloads = flag.String("workloads", "", "comma-separated benchmark subset (default: all)")
		csvPath   = flag.String("csv", "", "also write machine-readable results to this CSV file")
		ext       = flag.Bool("ext", false, "also regenerate the value-flow extension comparison table")
	)
	flag.Parse()
	if !*table1 && !*table2 && !*fig8 && !*fig10 {
		*all = true
	}
	if *all {
		*table1, *table2, *fig8, *fig10 = true, true, true, true
	}

	cfg := report.Config{
		ReplayAttempts: *attempts,
		HitRateRuns:    *runs,
	}
	if *workloads != "" {
		cfg.Workloads = strings.Split(*workloads, ",")
	}

	start := time.Now()
	fmt.Fprintln(os.Stderr, "running benchmark campaign (WOLF and DeadlockFuzzer pipelines)...")
	results, err := report.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *table1 {
		fmt.Println(report.Table1(results))
	}
	if *table2 {
		fmt.Println(report.Table2(results))
	}
	if *fig8 {
		fmt.Fprintf(os.Stderr, "measuring hit rates (%d runs per deadlock)...\n", *runs)
		report.MeasureHitRates(results, cfg)
		fmt.Println(report.Fig8(results))
	}
	if *fig10 {
		fmt.Println(report.Fig10(results))
	}
	if *ext {
		fmt.Fprintln(os.Stderr, "running the value-flow extension comparison...")
		extResults, err := report.RunExtension(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(report.TableExt(extResults))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := report.WriteCSV(f, results); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}
