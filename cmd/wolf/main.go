// Command wolf runs the WOLF deadlock analysis pipeline on a named
// benchmark workload and prints every detected cycle's classification.
//
// Usage:
//
//	wolf -workload Jigsaw [-df] [-attempts N] [-seed N] [-v]
//	wolf -workload Figure4 -faults rate=0.1,seed=7
//	wolf -list
//
// -df runs the DeadlockFuzzer baseline instead; -v additionally prints
// each cycle's threads, locks and synchronization dependency graph size.
// -faults injects deterministic scheduling perturbations (preemptions,
// stalls, spurious wakeups, delayed grants) into every replay run to
// exercise reproduction robustness; see sim.ParseFaultSpec for the
// spec syntax.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"wolf/internal/core"
	"wolf/internal/immunize"
	"wolf/internal/obs"
	"wolf/internal/race"
	"wolf/internal/trace"
	"wolf/internal/workloads"
	"wolf/sim"
)

func main() {
	var (
		name     = flag.String("workload", "Figure4", "benchmark name (see -list)")
		list     = flag.Bool("list", false, "list available workloads")
		df       = flag.Bool("df", false, "run the DeadlockFuzzer baseline instead of WOLF")
		attempts = flag.Int("attempts", 5, "replay attempts per cycle")
		seed     = flag.Int64("seed", 0, "detection schedule seed (0 = search for a terminating one)")
		verbose  = flag.Bool("v", false, "print per-cycle details")
		data     = flag.Bool("data", false, "enable the value-flow (data dependency) extension")
		ranked   = flag.Bool("rank", false, "print defects in triage order instead of discovery order")
		record   = flag.String("record", "", "record the detection trace to this file and exit")
		offline  = flag.String("trace", "", "analyze a recorded trace file instead of executing (no replay)")
		races    = flag.Bool("races", false, "also run the FastTrack-style race detector on the detection run")
		dot      = flag.String("dot", "", "print the synchronization dependency graph of the defect with this signature as Graphviz dot")
		protect  = flag.Int("immunize", 0, "after analysis, run N random executions with and without Dimmunix-style avoidance of the confirmed deadlocks")
		timeline = flag.String("timeline", "", "write a Chrome trace-event timeline of the analysis to this file (load in Perfetto)")
		debug    = flag.String("debug-addr", "", "serve net/http/pprof on this address (for example localhost:6060)")
		faults   = flag.String("faults", "", "inject scheduling faults during replay, e.g. rate=0.1,seed=7,kinds=preempt+stall")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		bi := obs.ReadBuildInfo()
		fmt.Printf("wolf %s %s", bi.Version, bi.GoVersion)
		if bi.Revision != "" {
			fmt.Printf(" %s", bi.Revision)
		}
		fmt.Println()
		return
	}

	faultCfg, err := sim.ParseFaultSpec(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -faults %q: %v\n", *faults, err)
		os.Exit(2)
	}

	if *debug != "" {
		obs.ServeDebug(*debug)
		fmt.Fprintf(os.Stderr, "pprof on http://%s/debug/pprof/\n", *debug)
	}

	if *list {
		for _, w := range workloads.Registry() {
			fmt.Println(w.Name)
		}
		return
	}

	if *offline != "" {
		f, err := os.Open(*offline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer f.Close()
		tr, err := trace.Decode(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		rep := core.AnalyzeTrace(tr, core.Config{DataDependency: *data})
		fmt.Printf("offline analysis of %s (seed %d, %d tuples)\n", *offline, tr.Seed, len(tr.Tuples))
		fmt.Print(rep)
		return
	}

	w, ok := workloads.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (try -list)\n", *name)
		os.Exit(1)
	}
	s := *seed
	if s == 0 {
		found, ok := workloads.FindTerminatingSeed(w.New, 300)
		if !ok {
			fmt.Fprintln(os.Stderr, "no terminating detection seed found; pass -seed")
			os.Exit(1)
		}
		s = found
	}
	if *record != "" {
		tr := core.Record(w.New, s, 0)
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer f.Close()
		// The binary format is the wolfd ingest hot path; JSON stays the
		// default for greppability. -trace sniffs the format either way.
		write := tr.Write
		if strings.HasSuffix(*record, ".bin") || strings.HasSuffix(*record, ".wtrc") {
			write = tr.WriteBinary
		}
		if err := write(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d tuples (%d steps) from %s seed %d to %s\n",
			len(tr.Tuples), tr.Steps, w.Name, s, *record)
		return
	}

	cfg := core.Config{DetectSeeds: []int64{s}, ReplayAttempts: *attempts, DataDependency: *data, Faults: faultCfg}
	ctx := context.Background()
	var rec *obs.Recorder
	if *timeline != "" {
		rec = obs.NewRecorder()
		ctx = obs.WithRecorder(ctx, rec)
	}
	var rep *core.Report
	if *df {
		rep = core.AnalyzeDFCtx(ctx, w.New, cfg)
	} else {
		rep = core.AnalyzeCtx(ctx, w.New, cfg)
	}
	fmt.Printf("workload %s, detection seed %d\n", w.Name, s)
	if faultCfg.Enabled() {
		var injected int
		for _, cr := range rep.Cycles {
			injected += cr.Faults.Total()
		}
		fmt.Printf("fault injection %s: %d faults injected across replays\n", faultCfg, injected)
	}
	fmt.Print(rep)
	if *timeline != "" {
		tl := core.BuildTimeline(w.New, cfg, rep)
		// Process 3 is the pipeline itself: one track per phase span.
		tl.Process(3, "pipeline")
		rec.WriteTimeline(tl, 3)
		out, err := os.Create(*timeline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := tl.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := out.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("timeline: %d events written to %s\n", tl.Len(), *timeline)
	}
	if *dot != "" {
		for _, d := range rep.Defects {
			if d.Signature != *dot {
				continue
			}
			for _, cr := range d.Cycles {
				if cr.Gs != nil {
					fmt.Print(cr.Gs.DOT(d.Signature))
					return
				}
			}
		}
		fmt.Fprintf(os.Stderr, "no graph for signature %q (pruned, or unknown signature)\n", *dot)
		os.Exit(1)
	}
	if *ranked {
		fmt.Println("triage order:")
		for i, d := range rep.Rank() {
			fmt.Printf("  %2d. %-16s %s (%d cycles)\n", i+1, d.Class, d.Signature, len(d.Cycles))
		}
	}
	fmt.Printf("detection slowdown %.2fx, SL %.1f, Vs %.1f\n",
		rep.Timings.DetectionSlowdown(), rep.AvgStackLen(), rep.AvgGsSize())
	if *protect > 0 {
		base := immunize.Baseline(w.New, *protect, s+10_000)
		prot := immunize.Protect(w.New, rep, *protect, s+10_000)
		fmt.Printf("immunization: %d/%d unprotected runs deadlocked, %d/%d protected runs deadlocked\n",
			base, *protect, prot, *protect)
	}
	if *races {
		found, _ := race.Check(w.New, sim.NewRandomStrategy(s))
		if len(found) == 0 {
			fmt.Println("no data races on shared vars")
		} else {
			fmt.Printf("data races (%d):\n%s", len(found), race.Summary(found))
		}
	}
	if *verbose {
		for _, cr := range rep.Cycles {
			fmt.Printf("\n%v\n  class: %v", cr.Cycle, cr.Class)
			if cr.PruneReason != nil {
				fmt.Printf(" (%s: %s vs %s)", cr.PruneReason.Rule, cr.PruneReason.ThreadA, cr.PruneReason.ThreadB)
			}
			if cr.GsSize > 0 {
				fmt.Printf(", |Gs| = %d", cr.GsSize)
			}
			if cr.ReplayAttempts > 0 {
				fmt.Printf(", %d replay attempt(s)", cr.ReplayAttempts)
			}
			fmt.Println()
		}
	}
}
