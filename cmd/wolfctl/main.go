// Command wolfctl is the CLI client for a wolfd analysis service and
// its persistent defect corpus.
//
// Usage:
//
//	wolfctl [-addr http://localhost:8077] <command> [args]
//
//	wolfctl upload trace.wtrc [-wait]   upload a recorded trace, print the job
//	wolfctl run [-o FILE] [-stream] -- <command> [args]
//	                                    run an instrumented program with the
//	                                    WOLFSYNC_* recording environment set,
//	                                    then upload its trace and wait
//	wolfctl stream trace.wtrc [-chunk N] [-interval D] [-source S] [-wait]
//	                                    replay a trace into /v1/streams chunk by
//	                                    chunk, printing candidates as they arrive
//	wolfctl jobs [-state done] [-limit N]
//	wolfctl defects [-json]             aggregated defect records
//	wolfctl defects <fingerprint>       one record (full or 12-char prefix)
//	wolfctl top [-n 10] [-class C] [-workload W] [-json]
//	                                    highest-ranked defects (confirmed first,
//	                                    then occurrence weight and recency)
//	wolfctl trace                       list stored trace blobs
//	wolfctl trace <hash> [-o out.wtrc]  fetch one blob (binary encoding)
//	wolfctl rm <hash>                   delete a stored trace blob
//	wolfctl replay <hash> [-wait]       re-enqueue analysis of a stored trace
//	wolfctl nodes [-json]               analyzer fleet from /v1/nodes
//	wolfctl status [-json]              one-shot ops rollup from /v1/status
//	wolfctl tail [-follow] [-kind K] [-job J] [-trace T] [-since N]
//	                                    flight-recorder events; -follow keeps an
//	                                    SSE live tail open until interrupted
//	wolfctl -version                    print build information
//
// The corpus commands need a wolfd started with -data-dir. Uploads may
// be JSON or binary WTRC, gzipped or not — gzip is detected by magic
// and forwarded with the right Content-Encoding.
//
// Every request goes through the shared retrying client: 429/502/503
// responses (load shedding, drain, a restarting coordinator) are
// retried with exponential backoff plus jitter, honoring Retry-After —
// so scripted wolfctl loops survive a wolfd restart instead of failing
// the batch.
package main

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"wolf/internal/httpx"
	"wolf/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes one wolfctl invocation; split from main so tests can
// drive the CLI against an httptest server.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wolfctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", envOr("WOLFD_ADDR", "http://localhost:8077"), "wolfd base URL")
	version := fs.Bool("version", false, "print build information and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: wolfctl [-addr URL] upload|run|stream|jobs|defects|top|trace|rm|replay|nodes|status|tail ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		bi := obs.ReadBuildInfo()
		fmt.Fprintf(stdout, "wolfctl %s %s", bi.Version, bi.GoVersion)
		if bi.Revision != "" {
			fmt.Fprintf(stdout, " %s", bi.Revision)
		}
		fmt.Fprintln(stdout)
		return 0
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	c := &client{base: strings.TrimRight(*addr, "/"), hc: &httpx.Client{}, out: stdout, err: stderr}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	var err error
	switch cmd {
	case "upload":
		err = c.upload(rest)
	case "run":
		err = c.run(rest)
	case "stream":
		err = c.stream(rest)
	case "jobs":
		err = c.jobs(rest)
	case "defects":
		err = c.defects(rest)
	case "top":
		err = c.top(rest)
	case "trace":
		err = c.trace(rest)
	case "rm":
		err = c.rm(rest)
	case "replay":
		err = c.replay(rest)
	case "nodes":
		err = c.nodes(rest)
	case "status":
		err = c.status(rest)
	case "tail":
		err = c.tail(rest)
	default:
		fmt.Fprintf(stderr, "wolfctl: unknown command %q\n", cmd)
		fs.Usage()
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "wolfctl:", err)
		return 1
	}
	return 0
}

// parseArgs parses fs accepting flags and positional arguments in any
// order (stdlib flag stops at the first positional), returning the
// positionals.
func parseArgs(fs *flag.FlagSet, args []string) ([]string, error) {
	var pos []string
	for len(args) > 0 {
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		args = fs.Args()
		for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
			pos = append(pos, args[0])
			args = args[1:]
		}
	}
	return pos, nil
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

type client struct {
	base string
	// hc retries 429/502/503 with backoff so scripted invocations ride
	// out load shedding and restarts.
	hc  *httpx.Client
	out io.Writer
	err io.Writer
}

// apiError decodes wolfd's {"error": ...} body into a readable error.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s", resp.Status)
}

func (c *client) getJSON(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// jobView mirrors the fields of wolfd's job status wolfctl renders.
type jobView struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Source    string `json:"source"`
	TraceHash string `json:"trace_hash"`
	Error     string `json:"error"`
	ReportURL string `json:"report_url"`
}

// upload posts a recorded trace file and optionally waits for the job.
func (c *client) upload(args []string) error {
	fs := flag.NewFlagSet("upload", flag.ContinueOnError)
	fs.SetOutput(c.err)
	wait := fs.Bool("wait", false, "poll until the job reaches a terminal state")
	traceparent := fs.String("traceparent", "", "W3C traceparent header forwarded with the upload")
	pos, err := parseArgs(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("usage: wolfctl upload <trace-file> [-wait] [-traceparent TP]")
	}
	data, err := os.ReadFile(pos[0])
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/traces", bytes.NewReader(data))
	if err != nil {
		return err
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		req.Header.Set("Content-Encoding", "gzip")
	}
	if *traceparent != "" {
		req.Header.Set("traceparent", *traceparent)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return apiError(resp)
	}
	var j jobView
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return err
	}
	if *wait {
		if j, err = c.poll(j.ID); err != nil {
			return err
		}
	}
	c.printJob(j)
	if j.State == "failed" {
		return fmt.Errorf("job %s failed: %s", j.ID, j.Error)
	}
	return nil
}

// candidate mirrors the cycle candidates wolfd emits in chunk
// responses.
type candidate struct {
	Event       int      `json:"event"`
	Fingerprint string   `json:"fingerprint"`
	Signature   string   `json:"signature"`
	Threads     []string `json:"threads"`
	Pruned      bool     `json:"pruned"`
	PruneRule   string   `json:"prune_rule"`
}

// chunkReply mirrors the running totals of one chunk append.
type chunkReply struct {
	ID         string      `json:"id"`
	Bytes      int64       `json:"bytes"`
	Events     int         `json:"events"`
	Candidates int         `json:"candidates"`
	Done       bool        `json:"done"`
	New        []candidate `json:"new"`
}

// stream replays a recorded trace into /v1/streams chunk by chunk —
// the incremental counterpart of upload, and the e2e driver for the
// streaming ingestion path. Candidates print as the server emits them,
// long before the trace finishes uploading.
func (c *client) stream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ContinueOnError)
	fs.SetOutput(c.err)
	chunk := fs.Int("chunk", 4096, "chunk size in bytes")
	interval := fs.Duration("interval", 0, "pause between chunks (simulates a live client)")
	wait := fs.Bool("wait", false, "poll until the finalized job reaches a terminal state")
	source := fs.String("source", "sim", "source label recorded on the stream (wolfd's streams-opened metric)")
	pos, err := parseArgs(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("usage: wolfctl stream <trace-file> [-chunk N] [-interval D] [-source S] [-wait]")
	}
	if *chunk <= 0 {
		return fmt.Errorf("-chunk must be positive")
	}
	data, err := os.ReadFile(pos[0])
	if err != nil {
		return err
	}
	// The chunk endpoint takes raw WTRC bytes; decompress a gzipped
	// recording locally instead of forwarding the encoding header.
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("gunzip %s: %w", pos[0], err)
		}
		if data, err = io.ReadAll(zr); err != nil {
			return fmt.Errorf("gunzip %s: %w", pos[0], err)
		}
	}

	var opened struct {
		ID string `json:"id"`
	}
	var meta []byte
	ctype := ""
	if *source != "" {
		meta, _ = json.Marshal(struct {
			Source string `json:"source"`
		}{Source: *source})
		ctype = "application/json"
	}
	resp, err := c.hc.Post(c.base+"/v1/streams", ctype, meta)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated {
		defer resp.Body.Close()
		return apiError(resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&opened)
	resp.Body.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(c.out, "stream %s opened (%d bytes in %d-byte chunks)\n", opened.ID, len(data), *chunk)

	var reply chunkReply
	for off := 0; off < len(data); off += *chunk {
		end := min(off+*chunk, len(data))
		resp, err := c.hc.Post(c.base+"/v1/streams/"+opened.ID+"/chunks",
			"application/octet-stream", data[off:end])
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			defer resp.Body.Close()
			return apiError(resp)
		}
		err = json.NewDecoder(resp.Body).Decode(&reply)
		resp.Body.Close()
		if err != nil {
			return err
		}
		for _, cand := range reply.New {
			verdict := "potential"
			if cand.Pruned {
				verdict = "pruned:" + cand.PruneRule
			}
			fmt.Fprintf(c.out, "candidate\t%s\t%s\t%s\tevent=%d\tthreads=%s\n",
				short(cand.Fingerprint), verdict, cand.Signature, cand.Event,
				strings.Join(cand.Threads, ","))
		}
		if *interval > 0 && end < len(data) {
			time.Sleep(*interval)
		}
	}
	fmt.Fprintf(c.out, "streamed %d bytes, %d events, %d candidates\n",
		reply.Bytes, reply.Events, reply.Candidates)

	resp, err = c.hc.Post(c.base+"/v1/streams/"+opened.ID+"/close", "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return apiError(resp)
	}
	var j jobView
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return err
	}
	if *wait {
		if j, err = c.poll(j.ID); err != nil {
			return err
		}
	}
	c.printJob(j)
	if j.State == "failed" {
		return fmt.Errorf("job %s failed: %s", j.ID, j.Error)
	}
	return nil
}

// poll waits for a job to leave the queued/running states.
func (c *client) poll(id string) (jobView, error) {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var j jobView
		if err := c.getJSON("/v1/jobs/"+id, &j); err != nil {
			return j, err
		}
		if j.State == "done" || j.State == "failed" {
			return j, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return jobView{}, fmt.Errorf("job %s did not finish within 2m", id)
}

func (c *client) printJob(j jobView) {
	fmt.Fprintf(c.out, "%s\t%s\t%s", j.ID, j.State, j.Source)
	if j.TraceHash != "" {
		fmt.Fprintf(c.out, "\t%s", short(j.TraceHash))
	}
	if j.Error != "" {
		fmt.Fprintf(c.out, "\t%s", j.Error)
	}
	fmt.Fprintln(c.out)
}

func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

// jobs lists jobs, forwarding the server-side state/limit filters.
func (c *client) jobs(args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ContinueOnError)
	fs.SetOutput(c.err)
	state := fs.String("state", "", "filter by state: queued, running, done or failed")
	limit := fs.Int("limit", 0, "keep only the N most recent matches")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := "/v1/jobs"
	sep := "?"
	if *state != "" {
		path += sep + "state=" + *state
		sep = "&"
	}
	if *limit > 0 {
		path += sep + fmt.Sprintf("limit=%d", *limit)
	}
	var out struct {
		Jobs []jobView `json:"jobs"`
	}
	if err := c.getJSON(path, &out); err != nil {
		return err
	}
	for _, j := range out.Jobs {
		c.printJob(j)
	}
	return nil
}

// defectRecord mirrors the corpus record fields wolfctl renders.
type defectRecord struct {
	Fingerprint string    `json:"fingerprint"`
	Signature   string    `json:"signature"`
	Class       string    `json:"class"`
	Method      string    `json:"method,omitempty"`
	Occurrences int       `json:"occurrences"`
	FirstSeen   time.Time `json:"first_seen"`
	LastSeen    time.Time `json:"last_seen"`
	Traces      []string  `json:"traces"`
	Workloads   []string  `json:"workloads,omitempty"`
	Rank        float64   `json:"rank,omitempty"`
}

// top renders the highest-ranked defects in the corpus: wolfd sorts by
// the corpus triage score (confirmed reproductions first, then
// occurrence weight and recency) and wolfctl prints one line per
// defect.
func (c *client) top(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	fs.SetOutput(c.err)
	n := fs.Int("n", 10, "number of defects to show")
	class := fs.String("class", "", "filter by class: candidate or confirmed")
	workload := fs.String("workload", "", "filter by workload name")
	asJSON := fs.Bool("json", false, "print raw JSON instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("-n must be positive")
	}
	q := url.Values{}
	q.Set("sort", "rank")
	q.Set("limit", fmt.Sprintf("%d", *n))
	if *class != "" {
		q.Set("class", *class)
	}
	if *workload != "" {
		q.Set("workload", *workload)
	}
	var raw struct {
		Defects json.RawMessage `json:"defects"`
		Total   int             `json:"total"`
	}
	if err := c.getJSON("/v1/defects?"+q.Encode(), &raw); err != nil {
		return err
	}
	if *asJSON {
		return indentJSON(c.out, raw.Defects)
	}
	var defects []defectRecord
	if err := json.Unmarshal(raw.Defects, &defects); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "RANK\tFINGERPRINT\tCLASS\tOCCURRENCES\tWORKLOADS\tLAST SEEN\tSIGNATURE\n")
	for _, d := range defects {
		wl := strings.Join(d.Workloads, ",")
		if wl == "" {
			wl = "-"
		}
		fmt.Fprintf(c.out, "%.1f\t%s\t%s\t%d\t%s\t%s\t%s\n",
			d.Rank, short(d.Fingerprint), d.Class, d.Occurrences, wl,
			d.LastSeen.UTC().Format(time.RFC3339), d.Signature)
	}
	if raw.Total > len(defects) {
		fmt.Fprintf(c.out, "(%d of %d defects)\n", len(defects), raw.Total)
	}
	return nil
}

// defects lists the corpus defect records, or one record by
// fingerprint.
func (c *client) defects(args []string) error {
	fs := flag.NewFlagSet("defects", flag.ContinueOnError)
	fs.SetOutput(c.err)
	asJSON := fs.Bool("json", false, "print raw JSON instead of the table")
	pos, err := parseArgs(fs, args)
	if err != nil {
		return err
	}
	if len(pos) > 1 {
		return fmt.Errorf("usage: wolfctl defects [-json] [fingerprint]")
	}
	if len(pos) == 1 {
		var d json.RawMessage
		if err := c.getJSON("/v1/defects/"+pos[0], &d); err != nil {
			return err
		}
		return indentJSON(c.out, d)
	}
	var raw struct {
		Defects json.RawMessage `json:"defects"`
	}
	if err := c.getJSON("/v1/defects", &raw); err != nil {
		return err
	}
	if *asJSON {
		return indentJSON(c.out, raw.Defects)
	}
	var defects []defectRecord
	if err := json.Unmarshal(raw.Defects, &defects); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "FINGERPRINT\tCLASS\tOCCURRENCES\tTRACES\tLAST SEEN\tSIGNATURE\n")
	for _, d := range defects {
		fmt.Fprintf(c.out, "%s\t%s\t%d\t%d\t%s\t%s\n",
			short(d.Fingerprint), d.Class, d.Occurrences, len(d.Traces),
			d.LastSeen.UTC().Format(time.RFC3339), d.Signature)
	}
	return nil
}

func indentJSON(w io.Writer, raw json.RawMessage) error {
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err := buf.WriteTo(w)
	return err
}

// trace lists stored blobs, or fetches one by content address.
func (c *client) trace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	fs.SetOutput(c.err)
	out := fs.String("o", "", "write the blob to this file instead of stdout")
	pos, err := parseArgs(fs, args)
	if err != nil {
		return err
	}
	if len(pos) == 0 {
		var list struct {
			Traces []struct {
				Hash  string `json:"hash"`
				Bytes int64  `json:"bytes"`
			} `json:"traces"`
		}
		if err := c.getJSON("/v1/traces", &list); err != nil {
			return err
		}
		for _, tr := range list.Traces {
			fmt.Fprintf(c.out, "%s\t%d\n", tr.Hash, tr.Bytes)
		}
		return nil
	}
	if len(pos) != 1 {
		return fmt.Errorf("usage: wolfctl trace [hash] [-o file]")
	}
	resp, err := c.hc.Get(c.base + "/v1/traces/" + pos[0])
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	dst := c.out
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	_, err = io.Copy(dst, resp.Body)
	return err
}

// rm deletes a stored trace blob.
func (c *client) rm(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: wolfctl rm <hash>")
	}
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/traces/"+args[0], nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return apiError(resp)
	}
	fmt.Fprintf(c.out, "deleted %s\n", short(args[0]))
	return nil
}

// nodeView mirrors the /v1/nodes fields wolfctl renders.
type nodeView struct {
	ID            string `json:"id"`
	Name          string `json:"name"`
	State         string `json:"state"`
	Leased        int    `json:"leased"`
	Completed     int64  `json:"completed"`
	Failed        int64  `json:"failed"`
	Registered    string `json:"registered"`
	LastHeartbeat string `json:"last_heartbeat"`
}

// nodes lists the analyzer fleet a coordinator knows about. A
// single-process wolfd answers with an empty list.
func (c *client) nodes(args []string) error {
	fs := flag.NewFlagSet("nodes", flag.ContinueOnError)
	fs.SetOutput(c.err)
	asJSON := fs.Bool("json", false, "print raw JSON instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var raw struct {
		Nodes json.RawMessage `json:"nodes"`
	}
	if err := c.getJSON("/v1/nodes", &raw); err != nil {
		return err
	}
	if *asJSON {
		return indentJSON(c.out, raw.Nodes)
	}
	var nodes []nodeView
	if err := json.Unmarshal(raw.Nodes, &nodes); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "NODE\tNAME\tSTATE\tLEASED\tCOMPLETED\tFAILED\tLAST HEARTBEAT\n")
	for _, n := range nodes {
		hb := n.LastHeartbeat
		if hb == "" {
			hb = "-"
		}
		fmt.Fprintf(c.out, "%s\t%s\t%s\t%d\t%d\t%d\t%s\n",
			n.ID, n.Name, n.State, n.Leased, n.Completed, n.Failed, hb)
	}
	return nil
}

// statusView mirrors the /v1/status fields wolfctl renders.
type statusView struct {
	Status string `json:"status"`
	Role   string `json:"role"`
	Fleet  *struct {
		Nodes      int   `json:"nodes"`
		Alive      int   `json:"alive"`
		Leased     int   `json:"leased"`
		Pending    int   `json:"pending"`
		Reassigned int64 `json:"reassigned"`
	} `json:"fleet"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Build         struct {
		Version  string `json:"version"`
		Revision string `json:"revision"`
	} `json:"build"`
	Queue struct {
		Depth    int64 `json:"depth"`
		Capacity int   `json:"capacity"`
	} `json:"queue"`
	Workers struct {
		Total int   `json:"total"`
		Busy  int64 `json:"busy"`
	} `json:"workers"`
	Streams struct {
		Open int64 `json:"open"`
		Max  int   `json:"max"`
	} `json:"streams"`
	Jobs struct {
		Accepted  int64 `json:"accepted"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Rejected  int64 `json:"rejected"`
	} `json:"jobs"`
	ErrorWindow struct {
		Seconds float64 `json:"seconds"`
		Done    int     `json:"done"`
		Failed  int     `json:"failed"`
		Rate    float64 `json:"rate"`
	} `json:"error_window"`
	Latency map[string]struct {
		P50   float64 `json:"p50"`
		P95   float64 `json:"p95"`
		P99   float64 `json:"p99"`
		Count uint64  `json:"count"`
	} `json:"latency"`
	Corpus *struct {
		Traces  int `json:"traces"`
		Defects int `json:"defects"`
		Jobs    int `json:"jobs"`
	} `json:"corpus"`
	Events struct {
		Seq      uint64 `json:"seq"`
		Capacity int    `json:"capacity"`
	} `json:"events"`
}

// status renders the one-shot ops rollup from /v1/status.
func (c *client) status(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	fs.SetOutput(c.err)
	asJSON := fs.Bool("json", false, "print raw JSON instead of the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asJSON {
		var raw json.RawMessage
		if err := c.getJSON("/v1/status", &raw); err != nil {
			return err
		}
		return indentJSON(c.out, raw)
	}
	var v statusView
	if err := c.getJSON("/v1/status", &v); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "wolfd %s\trole=%s\tversion=%s\tuptime=%s\n",
		v.Status, v.Role, v.Build.Version, (time.Duration(v.UptimeSeconds) * time.Second).String())
	if v.Fleet != nil {
		fmt.Fprintf(c.out, "fleet\tnodes=%d alive=%d leased=%d pending=%d reassigned=%d\n",
			v.Fleet.Nodes, v.Fleet.Alive, v.Fleet.Leased, v.Fleet.Pending, v.Fleet.Reassigned)
	}
	fmt.Fprintf(c.out, "queue\t%d/%d\tworkers\t%d/%d busy\tstreams\t%d/%d open\n",
		v.Queue.Depth, v.Queue.Capacity, v.Workers.Busy, v.Workers.Total,
		v.Streams.Open, v.Streams.Max)
	fmt.Fprintf(c.out, "jobs\taccepted=%d completed=%d failed=%d rejected=%d\n",
		v.Jobs.Accepted, v.Jobs.Completed, v.Jobs.Failed, v.Jobs.Rejected)
	fmt.Fprintf(c.out, "errors\t%d/%d failed over last %.0fs (rate %.2f)\n",
		v.ErrorWindow.Failed, v.ErrorWindow.Done+v.ErrorWindow.Failed,
		v.ErrorWindow.Seconds, v.ErrorWindow.Rate)
	for _, stage := range []string{"queue_wait", "detect", "prune", "generate", "analysis"} {
		lat, ok := v.Latency[stage]
		if !ok {
			continue
		}
		fmt.Fprintf(c.out, "latency\t%s\tp50=%.3fs p95=%.3fs p99=%.3fs n=%d\n",
			stage, lat.P50, lat.P95, lat.P99, lat.Count)
	}
	if v.Corpus != nil {
		fmt.Fprintf(c.out, "corpus\ttraces=%d defects=%d jobs=%d\n",
			v.Corpus.Traces, v.Corpus.Defects, v.Corpus.Jobs)
	}
	fmt.Fprintf(c.out, "events\tseq=%d capacity=%d\n", v.Events.Seq, v.Events.Capacity)
	return nil
}

// eventView mirrors the flight-recorder event fields wolfctl renders.
type eventView struct {
	Seq    uint64            `json:"seq"`
	Time   time.Time         `json:"time"`
	Kind   string            `json:"kind"`
	Job    string            `json:"job"`
	Stream string            `json:"stream"`
	Trace  string            `json:"trace"`
	Msg    string            `json:"msg"`
	Attrs  map[string]string `json:"attrs"`
}

// printEvent renders one flight-recorder event as a tab-separated line.
func (c *client) printEvent(ev eventView) {
	fmt.Fprintf(c.out, "%d\t%s\t%s", ev.Seq, ev.Time.UTC().Format(time.RFC3339Nano), ev.Kind)
	if ev.Job != "" {
		fmt.Fprintf(c.out, "\tjob=%s", ev.Job)
	}
	if ev.Stream != "" {
		fmt.Fprintf(c.out, "\tstream=%s", ev.Stream)
	}
	if ev.Trace != "" {
		fmt.Fprintf(c.out, "\ttrace=%s", ev.Trace)
	}
	if ev.Msg != "" {
		fmt.Fprintf(c.out, "\t%s", ev.Msg)
	}
	for k, v := range ev.Attrs {
		fmt.Fprintf(c.out, "\t%s=%s", k, v)
	}
	fmt.Fprintln(c.out)
}

// tail prints flight-recorder events from /v1/debug/events: a filtered
// snapshot by default, or — with -follow — a live SSE tail that runs
// until the connection drops or the process is interrupted.
func (c *client) tail(args []string) error {
	fs := flag.NewFlagSet("tail", flag.ContinueOnError)
	fs.SetOutput(c.err)
	follow := fs.Bool("follow", false, "keep the connection open and stream new events")
	kind := fs.String("kind", "", "only events of this kind (e.g. job.failed)")
	job := fs.String("job", "", "only events of this job ID")
	stream := fs.String("stream", "", "only events of this stream ID")
	trace := fs.String("trace", "", "only events of this W3C trace ID")
	since := fs.Uint64("since", 0, "only events after this sequence number")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q := url.Values{}
	if *kind != "" {
		q.Set("kind", *kind)
	}
	if *job != "" {
		q.Set("job", *job)
	}
	if *stream != "" {
		q.Set("stream", *stream)
	}
	if *trace != "" {
		q.Set("trace", *trace)
	}
	if *since > 0 {
		q.Set("since", fmt.Sprintf("%d", *since))
	}
	if !*follow {
		var out struct {
			Events []eventView `json:"events"`
		}
		path := "/v1/debug/events"
		if len(q) > 0 {
			path += "?" + q.Encode()
		}
		if err := c.getJSON(path, &out); err != nil {
			return err
		}
		for _, ev := range out.Events {
			c.printEvent(ev)
		}
		return nil
	}
	q.Set("follow", "1")
	resp, err := c.hc.Get(c.base + "/v1/debug/events?" + q.Encode())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	// Consume SSE frames: `id: N` / `data: {...}` / blank separator.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev eventView
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			continue
		}
		c.printEvent(ev)
	}
	return sc.Err()
}

// replay re-enqueues analysis of a stored trace.
func (c *client) replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	fs.SetOutput(c.err)
	wait := fs.Bool("wait", false, "poll until the job reaches a terminal state")
	pos, err := parseArgs(fs, args)
	if err != nil {
		return err
	}
	if len(pos) != 1 {
		return fmt.Errorf("usage: wolfctl replay <hash> [-wait]")
	}
	resp, err := c.hc.Post(c.base+"/v1/traces/"+pos[0]+"/replay", "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return apiError(resp)
	}
	var j jobView
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return err
	}
	if *wait {
		if j, err = c.poll(j.ID); err != nil {
			return err
		}
	}
	c.printJob(j)
	if j.State == "failed" {
		return fmt.Errorf("job %s failed: %s", j.ID, j.Error)
	}
	return nil
}
