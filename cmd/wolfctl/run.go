package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"wolf/wolfsync"
)

// run executes an instrumented program under a recording environment
// and gets its trace analyzed: wolfctl sets the WOLFSYNC_* variables
// wolfsync.Start consults, runs the command, then uploads the recorded
// .wtrc and waits for the verdict. The upload happens even when the
// command exits non-zero or wedges past its own timeout — a failing
// run is exactly the trace worth analyzing — and the command's error
// is reported after the trace is safe.
//
// With -stream the child ships snapshots itself (WOLFSYNC_URL points
// at this wolfctl's wolfd), so there is no file and no upload step;
// quiesce-triggered ships mean even a deadlocked child that never
// reaches Stop gets its trace in.
func (c *client) run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(c.err)
	out := fs.String("o", "", "keep the recorded trace at this path (default: a temp file, removed after upload)")
	stream := fs.Bool("stream", false, "child live-streams to wolfd (WOLFSYNC_URL) instead of recording a file")
	wait := fs.Bool("wait", true, "poll the upload job to a terminal state")
	traceparent := fs.String("traceparent", "", "W3C traceparent forwarded to the child and on the upload")

	// Everything after "--" is the command; flags come before it. With
	// no "--", flag parsing stops at the first positional, which starts
	// the command.
	cmdArgs := []string(nil)
	flagArgs := args
	for i, a := range args {
		if a == "--" {
			flagArgs, cmdArgs = args[:i], args[i+1:]
			break
		}
	}
	if err := fs.Parse(flagArgs); err != nil {
		return err
	}
	if cmdArgs == nil {
		cmdArgs = fs.Args()
	}
	if len(cmdArgs) == 0 {
		return fmt.Errorf("usage: wolfctl run [-o FILE] [-stream] [-wait=false] [-traceparent TP] -- <command> [args]")
	}

	path := *out
	if !*stream && path == "" {
		f, err := os.CreateTemp("", "wolfsync-*.wtrc")
		if err != nil {
			return err
		}
		path = f.Name()
		f.Close()
		defer os.Remove(path)
	}

	child := exec.Command(cmdArgs[0], cmdArgs[1:]...)
	child.Stdout = c.out
	child.Stderr = c.err
	child.Stdin = os.Stdin
	env := os.Environ()
	if *stream {
		env = append(env, wolfsync.EnvURL+"="+c.base)
	} else {
		env = append(env, wolfsync.EnvOut+"="+path)
	}
	if *traceparent != "" {
		env = append(env, wolfsync.EnvTraceparent+"="+*traceparent)
	}
	child.Env = env
	runErr := child.Run()

	if !*stream {
		if st, err := os.Stat(path); err != nil || st.Size() == 0 {
			if runErr != nil {
				return fmt.Errorf("command failed with no trace recorded (does it call wolfsync.Start?): %w", runErr)
			}
			return fmt.Errorf("no trace recorded at %s (does the program call wolfsync.Start?)", path)
		}
		upArgs := []string{path}
		if *wait {
			upArgs = append(upArgs, "-wait")
		}
		if *traceparent != "" {
			upArgs = append(upArgs, "-traceparent", *traceparent)
		}
		if err := c.upload(upArgs); err != nil {
			if runErr != nil {
				return fmt.Errorf("%w (command also failed: %v)", err, runErr)
			}
			return err
		}
	}
	if runErr != nil {
		return fmt.Errorf("command failed: %w", runErr)
	}
	return nil
}
