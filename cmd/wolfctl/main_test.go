package main

import (
	"bytes"
	"compress/gzip"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"wolf/internal/core"
	"wolf/internal/server"
	"wolf/internal/store"
	"wolf/internal/workloads"
)

// startWolfd runs a corpus-backed wolfd behind httptest and returns its
// base URL.
func startWolfd(t *testing.T) string {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(server.Config{Workers: 2, QueueSize: 8, Store: st})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		st.Close()
	})
	return ts.URL
}

// traceFile records a Figure4 detection trace to a temp .wtrc file.
func traceFile(t *testing.T) string {
	t.Helper()
	w, ok := workloads.ByName("Figure4")
	if !ok {
		t.Fatal("Figure4 not registered")
	}
	seed, ok := workloads.FindTerminatingSeed(w.New, 300)
	if !ok {
		t.Fatal("no terminating seed")
	}
	tr := core.Record(w.New, seed, 0)
	path := filepath.Join(t.TempDir(), "fig4.wtrc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// ctl runs one wolfctl invocation and returns exit code and stdout.
func ctl(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	if errb.Len() > 0 {
		t.Logf("stderr: %s", errb.String())
	}
	return code, out.String()
}

func TestUploadDefectsTraceReplayRoundTrip(t *testing.T) {
	base := startWolfd(t)
	path := traceFile(t)

	// Upload twice: content addressing dedups the blob, the defect
	// record counts two occurrences.
	code, out := ctl(t, "-addr", base, "upload", path, "-wait")
	if code != 0 || !strings.Contains(out, "done") {
		t.Fatalf("upload: code=%d out=%q", code, out)
	}
	if code, out = ctl(t, "-addr", base, "upload", path, "-wait"); code != 0 {
		t.Fatalf("second upload: code=%d out=%q", code, out)
	}

	code, out = ctl(t, "-addr", base, "defects")
	if code != 0 {
		t.Fatalf("defects: code=%d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 { // header + one record
		t.Fatalf("defects table = %q, want one record", out)
	}
	if !strings.Contains(lines[1], "\t2\t") {
		t.Errorf("defect row %q missing occurrence count 2", lines[1])
	}

	// JSON form carries the full fingerprint; the single-record fetch
	// accepts its 12-char prefix.
	code, out = ctl(t, "-addr", base, "defects", "-json")
	if code != 0 || !strings.Contains(out, `"fingerprint"`) {
		t.Fatalf("defects -json: code=%d out=%q", code, out)
	}
	fp := extract(t, out, `"fingerprint": "`)
	if code, out = ctl(t, "-addr", base, "defects", fp[:12]); code != 0 || !strings.Contains(out, fp) {
		t.Fatalf("defects by prefix: code=%d", code)
	}

	// One stored blob; fetch it back and replay it.
	code, out = ctl(t, "-addr", base, "trace")
	if code != 0 {
		t.Fatalf("trace list: code=%d", code)
	}
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 1 {
		t.Fatalf("trace list = %q, want exactly one blob (dedup)", out)
	}
	hash := strings.Fields(out)[0]
	dst := filepath.Join(t.TempDir(), "out.wtrc")
	if code, _ = ctl(t, "-addr", base, "trace", hash, "-o", dst); code != 0 {
		t.Fatalf("trace fetch: code=%d", code)
	}
	orig, _ := os.ReadFile(path)
	got, _ := os.ReadFile(dst)
	if !bytes.Equal(orig, got) {
		t.Error("fetched blob differs from the uploaded encoding")
	}
	if code, out = ctl(t, "-addr", base, "replay", hash, "-wait"); code != 0 || !strings.Contains(out, "done") {
		t.Fatalf("replay: code=%d out=%q", code, out)
	}

	// Jobs listing respects the server-side filters.
	code, out = ctl(t, "-addr", base, "jobs", "-state", "done", "-limit", "2")
	if code != 0 {
		t.Fatalf("jobs: code=%d", code)
	}
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 2 {
		t.Errorf("jobs -limit 2 = %q, want 2 rows", out)
	}

	// Delete the blob; the defect record survives.
	if code, _ = ctl(t, "-addr", base, "rm", hash); code != 0 {
		t.Fatalf("rm: code=%d", code)
	}
	if code, _ = ctl(t, "-addr", base, "trace", hash); code == 0 {
		t.Error("trace fetch after rm should fail")
	}
	if code, out = ctl(t, "-addr", base, "defects"); code != 0 || len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Error("defect record must survive trace deletion")
	}
}

func TestStreamCommand(t *testing.T) {
	base := startWolfd(t)
	path := traceFile(t)

	// Stream in small chunks: candidates print mid-stream, the close
	// finalizes into a normal job we wait on.
	code, out := ctl(t, "-addr", base, "stream", path, "-chunk", "512", "-wait")
	if code != 0 {
		t.Fatalf("stream: code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "stream s-") {
		t.Errorf("output %q missing stream id line", out)
	}
	if !strings.Contains(out, "candidate\t") {
		t.Errorf("output %q missing live candidate lines", out)
	}
	if !strings.Contains(out, "done") {
		t.Errorf("output %q missing finalized job state", out)
	}

	// The finalized stream and a plain upload of the same file converge
	// on the same defect record (occurrences = 2).
	if code, _ = ctl(t, "-addr", base, "upload", path, "-wait"); code != 0 {
		t.Fatal("upload after stream failed")
	}
	code, out = ctl(t, "-addr", base, "defects")
	if code != 0 {
		t.Fatalf("defects: code=%d", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], "\t2\t") {
		t.Errorf("defects table = %q, want one record with 2 occurrences", out)
	}
}

func TestStreamCommandGzip(t *testing.T) {
	base := startWolfd(t)
	path := traceFile(t)

	// Gzip the recording; stream must decompress locally since the
	// chunk endpoint takes raw WTRC bytes.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gzPath := filepath.Join(t.TempDir(), "fig4.wtrc.gz")
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gzPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out := ctl(t, "-addr", base, "stream", gzPath, "-wait")
	if code != 0 || !strings.Contains(out, "done") {
		t.Fatalf("stream gzip: code=%d out=%q", code, out)
	}
}

func TestStreamUsageErrors(t *testing.T) {
	if code, _ := ctl(t, "stream"); code != 1 {
		t.Error("stream without file should exit 1")
	}
	if code, _ := ctl(t, "stream", "nope.wtrc", "-chunk", "0"); code != 1 {
		t.Error("stream -chunk 0 should exit 1")
	}
}

// extract pulls the value following marker out of JSON-ish text.
func extract(t *testing.T, text, marker string) string {
	t.Helper()
	i := strings.Index(text, marker)
	if i < 0 {
		t.Fatalf("marker %q not found", marker)
	}
	rest := text[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		t.Fatalf("unterminated value after %q", marker)
	}
	return rest[:j]
}

func TestVersionFlag(t *testing.T) {
	code, out := ctl(t, "-version")
	if code != 0 || !strings.Contains(out, "wolfctl") || !strings.Contains(out, "go1.") {
		t.Fatalf("-version: code=%d out=%q", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _ := ctl(t); code != 2 {
		t.Error("no command should exit 2")
	}
	if code, _ := ctl(t, "frobnicate"); code != 2 {
		t.Error("unknown command should exit 2")
	}
	if code, _ := ctl(t, "-addr", "http://127.0.0.1:1", "defects"); code != 1 {
		t.Error("unreachable server should exit 1")
	}
}

func TestStatusCommand(t *testing.T) {
	base := startWolfd(t)
	path := traceFile(t)
	if code, _ := ctl(t, "-addr", base, "upload", path, "-wait"); code != 0 {
		t.Fatal("upload failed")
	}

	code, out := ctl(t, "-addr", base, "status")
	if code != 0 {
		t.Fatalf("status: code=%d out=%q", code, out)
	}
	for _, want := range []string{"wolfd ok", "queue\t", "jobs\t", "latency\tanalysis", "corpus\t", "events\tseq="} {
		if !strings.Contains(out, want) {
			t.Errorf("status output %q missing %q", out, want)
		}
	}

	code, out = ctl(t, "-addr", base, "status", "-json")
	if code != 0 || !strings.Contains(out, `"uptime_seconds"`) {
		t.Fatalf("status -json: code=%d out=%q", code, out)
	}
}

func TestTailCommand(t *testing.T) {
	base := startWolfd(t)
	path := traceFile(t)

	// Forward a client traceparent so the tail can filter on its ID.
	const traceID = "0af7651916cd43dd8448eb211c80319c"
	code, _ := ctl(t, "-addr", base, "upload", path, "-wait",
		"-traceparent", "00-"+traceID+"-b7ad6b7169203331-01")
	if code != 0 {
		t.Fatal("upload failed")
	}

	code, out := ctl(t, "-addr", base, "tail")
	if code != 0 {
		t.Fatalf("tail: code=%d out=%q", code, out)
	}
	for _, want := range []string{"job.queued", "job.started", "job.done", "trace=" + traceID} {
		if !strings.Contains(out, want) {
			t.Errorf("tail output %q missing %q", out, want)
		}
	}

	// Kind and trace filters narrow the snapshot.
	code, out = ctl(t, "-addr", base, "tail", "-kind", "job.done", "-trace", traceID)
	if code != 0 {
		t.Fatalf("tail filtered: code=%d out=%q", code, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "job.done") {
		t.Fatalf("filtered tail = %q, want exactly the job.done event", out)
	}
	// -since past the end yields nothing.
	if _, out = ctl(t, "-addr", base, "tail", "-since", "1000000"); strings.TrimSpace(out) != "" {
		t.Errorf("tail -since huge = %q, want empty", out)
	}
}

// TestNodesCommand covers the fleet listing: empty in single mode,
// one alive row against a coordinator with a registered analyzer.
func TestNodesCommand(t *testing.T) {
	base := startWolfd(t)
	code, out := ctl(t, "-addr", base, "nodes")
	if code != 0 || !strings.Contains(out, "NODE\tNAME\tSTATE") {
		t.Fatalf("nodes (single mode): code=%d out=%q", code, out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 1 {
		t.Fatalf("nodes in single mode = %q, want header only", out)
	}

	s := server.New(server.Config{QueueSize: 4, Role: server.RoleCoordinator})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/v1/nodes", "application/json", strings.NewReader(`{"name":"worker-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	code, out = ctl(t, "-addr", ts.URL, "nodes")
	if code != 0 || !strings.Contains(out, "worker-1") || !strings.Contains(out, "alive") {
		t.Fatalf("nodes (coordinator): code=%d out=%q", code, out)
	}
	code, out = ctl(t, "-addr", ts.URL, "nodes", "-json")
	if code != 0 || !strings.Contains(out, `"state": "alive"`) {
		t.Fatalf("nodes -json: code=%d out=%q", code, out)
	}
}

// TestRetryOnShedding pins the CLI-wide retry policy: a server that
// sheds the first attempt with 503 + Retry-After sees the command
// succeed on the retry instead of failing the invocation.
func TestRetryOnShedding(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"jobs":[{"id":"j-1","state":"done","source":"upload"}]}`))
	}))
	t.Cleanup(ts.Close)
	code, out := ctl(t, "-addr", ts.URL, "jobs")
	if code != 0 || !strings.Contains(out, "j-1") {
		t.Fatalf("jobs after shed: code=%d out=%q", code, out)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2 (one shed, one retry)", calls.Load())
	}
}

// TestRunCommand: wolfctl run hands the child a WOLFSYNC_OUT path and
// uploads whatever the child records there.
func TestRunCommand(t *testing.T) {
	base := startWolfd(t)
	path := traceFile(t)

	code, out := ctl(t, "-addr", base, "run", "--",
		"sh", "-c", `cp '`+path+`' "$WOLFSYNC_OUT"`)
	if code != 0 || !strings.Contains(out, "done") {
		t.Fatalf("run: code=%d out=%q", code, out)
	}
}

// TestRunCommandChildFailure: a non-zero child exit does not lose the
// trace — the upload completes first, then the child's failure is
// reported and wolfctl exits non-zero.
func TestRunCommandChildFailure(t *testing.T) {
	base := startWolfd(t)
	path := traceFile(t)

	var out, errb bytes.Buffer
	code := run([]string{"-addr", base, "run", "--",
		"sh", "-c", `cp '` + path + `' "$WOLFSYNC_OUT"; exit 3`}, &out, &errb)
	if code != 1 {
		t.Fatalf("run with failing child: code=%d, want 1", code)
	}
	if !strings.Contains(out.String(), "done") {
		t.Fatalf("trace was not uploaded before reporting the failure: %q", out.String())
	}
	if !strings.Contains(errb.String(), "command failed") {
		t.Fatalf("child failure not reported: %q", errb.String())
	}
}

// TestRunCommandNoTrace: a child that never records is an error, not a
// silent no-op.
func TestRunCommandNoTrace(t *testing.T) {
	base := startWolfd(t)
	var out, errb bytes.Buffer
	code := run([]string{"-addr", base, "run", "--", "true"}, &out, &errb)
	if code != 1 || !strings.Contains(errb.String(), "no trace recorded") {
		t.Fatalf("run with idle child: code=%d stderr=%q", code, errb.String())
	}
}

func TestTopCommand(t *testing.T) {
	base := startWolfd(t)
	path := traceFile(t)
	// Two uploads: dedup leaves one trace, the defect record counts two
	// occurrences and carries the Figure4 workload tag.
	for i := 0; i < 2; i++ {
		if code, out := ctl(t, "-addr", base, "upload", path, "-wait"); code != 0 {
			t.Fatalf("upload: code=%d out=%q", code, out)
		}
	}

	code, out := ctl(t, "-addr", base, "top")
	if code != 0 {
		t.Fatalf("top: code=%d out=%q", code, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[0], "RANK\tFINGERPRINT\tCLASS") {
		t.Fatalf("missing header: %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatalf("no defect rows: %q", out)
	}
	for _, want := range []string{"upload", "\t2\t"} {
		if !strings.Contains(lines[1], want) {
			t.Errorf("top row %q missing %q", lines[1], want)
		}
	}

	// -n 1 truncates and reports the hidden remainder when there is one.
	code, out = ctl(t, "-addr", base, "top", "-n", "1")
	if code != 0 {
		t.Fatalf("top -n 1: code=%d out=%q", code, out)
	}
	rows := strings.Split(strings.TrimSpace(out), "\n")
	var dataRows int
	for _, l := range rows[1:] {
		if !strings.HasPrefix(l, "(") {
			dataRows++
		}
	}
	if dataRows != 1 {
		t.Fatalf("top -n 1 printed %d rows: %q", dataRows, out)
	}

	code, out = ctl(t, "-addr", base, "top", "-json")
	if code != 0 || !strings.Contains(out, `"rank"`) || !strings.Contains(out, `"workloads"`) {
		t.Fatalf("top -json: code=%d out=%q", code, out)
	}

	// Filter that matches nothing still exits 0 with only the header.
	code, out = ctl(t, "-addr", base, "top", "-workload", "nosuch")
	if code != 0 || strings.Count(out, "\n") != 1 {
		t.Fatalf("top empty filter: code=%d out=%q", code, out)
	}

	if code, _ = ctl(t, "-addr", base, "top", "-n", "0"); code == 0 {
		t.Error("top -n 0 should fail")
	}
}
