// Command wolfd runs the WOLF analysis service: an HTTP API accepting
// trace uploads (JSON or binary, gzip-aware) and serving structured
// deadlock reports from a bounded queue and worker pool.
//
// Usage:
//
//	wolfd [-addr :8077] [-workers 4] [-queue 64] [-timeout 30s] [-data]
//	      [-data-dir /var/lib/wolfd] [-max-body 32] [-watchdog-grace 2s]
//	      [-max-streams 64] [-stream-idle 2m] [-stream-budget 16]
//	      [-flight-recorder 4096] [-log-format text|json] [-log-level info]
//	      [-debug-addr localhost:6060]
//
// -data-dir attaches a persistent corpus: uploaded traces are archived
// by content address, finished analyses aggregate into fingerprinted
// defect records, and jobs survive restarts. Without it the server is
// fully in-memory.
//
// Logs are structured (log/slog) and tagged with job IDs; -log-format
// json emits one JSON object per line for log shippers. -debug-addr
// serves net/http/pprof on a separate listener. SIGINT/SIGTERM triggers
// a graceful shutdown: new uploads are refused, the in-flight analysis
// finishes (or is watchdog-failed), and still-queued jobs are failed
// fast (bounded by -drain).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wolf/internal/core"
	"wolf/internal/obs"
	"wolf/internal/server"
	"wolf/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8077", "listen address")
		workers   = flag.Int("workers", 4, "analysis worker pool size")
		queue     = flag.Int("queue", 64, "bounded job queue size (full queue returns 429)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-job analysis timeout")
		drain     = flag.Duration("drain", 60*time.Second, "graceful shutdown drain budget")
		grace     = flag.Duration("watchdog-grace", 2*time.Second, "extra wait past -timeout before a worker abandons a stuck analysis")
		maxBody   = flag.Int64("max-body", 32, "maximum decompressed upload size in MiB")
		maxStr    = flag.Int("max-streams", 64, "maximum concurrently open ingestion streams (full returns 429)")
		strIdle   = flag.Duration("stream-idle", 2*time.Minute, "evict ingestion streams idle longer than this")
		strBudget = flag.Int64("stream-budget", 16, "per-stream decoder memory budget in MiB")
		data      = flag.Bool("data", false, "enable the value-flow (data dependency) extension")
		flight    = flag.Int("flight-recorder", 4096, "flight-recorder ring capacity (lifecycle events kept for /v1/debug/events)")
		par       = flag.Int("analysis-parallelism", 0, "per-job Generator worker pool size (0 = GOMAXPROCS, capped; output is identical at any value)")
		dataDir   = flag.String("data-dir", "", "persist traces, jobs and defect records in this directory")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (for example localhost:6060)")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		bi := obs.ReadBuildInfo()
		fmt.Printf("wolfd %s %s", bi.Version, bi.GoVersion)
		if bi.Revision != "" {
			fmt.Printf(" %s", bi.Revision)
		}
		fmt.Println()
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, opts)
	default:
		fmt.Fprintf(os.Stderr, "bad -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	log := slog.New(handler)

	if *debugAddr != "" {
		obs.ServeDebug(*debugAddr)
		log.Info("pprof enabled", "addr", *debugAddr)
	}

	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir)
		if err != nil {
			log.Error("open data dir", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		defer st.Close()
		stats := st.Stats()
		log.Info("corpus opened", "dir", *dataDir,
			"traces", stats.Traces, "defects", stats.Defects, "jobs", stats.Jobs)
	}

	srv := server.New(server.Config{
		Workers:            *workers,
		QueueSize:          *queue,
		JobTimeout:         *timeout,
		WatchdogGrace:      *grace,
		MaxUploadBytes:     *maxBody << 20,
		MaxOpenStreams:     *maxStr,
		StreamIdleTimeout:  *strIdle,
		StreamMemBudget:    *strBudget << 20,
		FlightRecorderSize: *flight,
		Analysis:           core.Config{DataDependency: *data, Parallelism: *par},
		Logger:             log,
		Store:              st,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		bi := obs.ReadBuildInfo()
		log.Info("wolfd listening", "addr", *addr, "workers", *workers,
			"queue", *queue, "timeout", *timeout,
			"version", bi.Version, "go", bi.GoVersion)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve failed", "err", err)
			os.Exit(1)
		}
	case s := <-sig:
		log.Info("draining", "signal", s.String(), "budget", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Warn("drain incomplete", "err", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Warn("http shutdown", "err", err)
		}
		m := srv.Metrics()
		log.Info("wolfd stopped",
			"accepted", m.JobsAccepted.Load(), "completed", m.JobsCompleted.Load(),
			"failed", m.JobsFailed(), "timeout", m.JobsTimedOut.Load(),
			"panic", m.JobsPanicked.Load(), "rejected", m.JobsRejected.Load())
	}
}
