// Command wolfd runs the WOLF analysis service: an HTTP API accepting
// trace uploads (JSON or binary, gzip-aware) and serving structured
// deadlock reports from a bounded queue and worker pool.
//
// Usage:
//
//	wolfd [-addr :8077] [-workers 4] [-queue 64] [-timeout 30s] [-data]
//	      [-data-dir /var/lib/wolfd] [-max-corpus-bytes N] [-trace-ttl 0]
//	      [-gc-interval 1m] [-max-body 32] [-watchdog-grace 2s]
//	      [-max-streams 64] [-stream-idle 2m] [-stream-budget 16]
//	      [-flight-recorder 4096] [-log-format text|json] [-log-level info]
//	      [-debug-addr localhost:6060]
//	      [-role coordinator|analyzer] [-coordinator URL] [-node-name NAME]
//	      [-lease-ttl 15s] [-heartbeat 3s] [-heartbeat-timeout 10s]
//	      [-max-deliveries 3] [-max-renewals 8] [-poll 500ms]
//
// -data-dir attaches a persistent corpus: uploaded traces are archived
// by content address, finished analyses aggregate into fingerprinted
// defect records, and jobs survive restarts. Without it the server is
// fully in-memory.
//
// Without -role wolfd is the classic single process. -role=coordinator
// serves the same API but hands analysis to registered analyzer nodes
// under time-bounded leases; -role=analyzer -coordinator=URL runs one
// such node — it registers, heartbeats, pulls leased work, and
// delivers results, retrying every coordinator call with exponential
// backoff so either side can restart without losing work.
//
// Logs are structured (log/slog) and tagged with job IDs; -log-format
// json emits one JSON object per line for log shippers. -debug-addr
// serves net/http/pprof on a separate listener. SIGINT/SIGTERM triggers
// a graceful shutdown: new uploads are refused, the in-flight analysis
// finishes (or is watchdog-failed), and still-queued jobs are failed
// fast (bounded by -drain).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wolf/internal/core"
	"wolf/internal/fleet"
	"wolf/internal/obs"
	"wolf/internal/server"
	"wolf/internal/store"
)

// analyzerOpts carries the -role=analyzer flag subset into runAnalyzer.
type analyzerOpts struct {
	addr        string
	coordinator string
	name        string
	poll        time.Duration
	timeout     time.Duration
	analysis    core.Config
}

// runAnalyzer is the -role=analyzer main: register with the
// coordinator, pull and analyze leased work until SIGINT/SIGTERM, and
// serve a small /healthz listener so fleet members probe uniformly.
func runAnalyzer(log *slog.Logger, opts analyzerOpts) {
	name := opts.name
	if name == "" {
		if hn, err := os.Hostname(); err == nil {
			name = hn
		}
	}
	a := fleet.NewAnalyzer(fleet.AnalyzerConfig{
		Coordinator: opts.coordinator,
		Name:        name,
		Poll:        opts.poll,
		JobTimeout:  opts.timeout,
		Analysis:    opts.analysis,
		Logger:      log,
	})

	httpSrv := &http.Server{Addr: opts.addr, Handler: a.Handler()}
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("analyzer health listener failed", "err", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Info("wolfd analyzer starting", "addr", opts.addr,
		"coordinator", opts.coordinator, "name", name)
	err := a.Run(ctx)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutCtx)
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Error("analyzer stopped", "err", err)
		os.Exit(1)
	}
	log.Info("analyzer stopped", "node", a.ID())
}

func main() {
	var (
		addr      = flag.String("addr", ":8077", "listen address")
		workers   = flag.Int("workers", 4, "analysis worker pool size")
		queue     = flag.Int("queue", 64, "bounded job queue size (full queue returns 429)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-job analysis timeout")
		drain     = flag.Duration("drain", 60*time.Second, "graceful shutdown drain budget")
		grace     = flag.Duration("watchdog-grace", 2*time.Second, "extra wait past -timeout before a worker abandons a stuck analysis")
		maxBody   = flag.Int64("max-body", 32, "maximum decompressed upload size in MiB")
		maxStr    = flag.Int("max-streams", 64, "maximum concurrently open ingestion streams (full returns 429)")
		strIdle   = flag.Duration("stream-idle", 2*time.Minute, "evict ingestion streams idle longer than this")
		strBudget = flag.Int64("stream-budget", 16, "per-stream decoder memory budget in MiB")
		data      = flag.Bool("data", false, "enable the value-flow (data dependency) extension")
		flight    = flag.Int("flight-recorder", 4096, "flight-recorder ring capacity (lifecycle events kept for /v1/debug/events)")
		par       = flag.Int("analysis-parallelism", 0, "per-job Generator worker pool size (0 = GOMAXPROCS, capped; output is identical at any value)")
		dataDir   = flag.String("data-dir", "", "persist traces, jobs and defect records in this directory")
		maxCorpus = flag.Int64("max-corpus-bytes", 0, "trace GC: total stored-trace byte budget (0 = unbounded); unreferenced blobs are pruned oldest-first")
		traceTTL  = flag.Duration("trace-ttl", 0, "trace GC: expire unreferenced trace blobs older than this (0 = never)")
		gcEvery   = flag.Duration("gc-interval", time.Minute, "trace GC: pass cadence when -max-corpus-bytes or -trace-ttl is set")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (for example localhost:6060)")
		version   = flag.Bool("version", false, "print build information and exit")

		role     = flag.String("role", "", "fleet role: empty (single process), coordinator, or analyzer")
		coordURL = flag.String("coordinator", "", "coordinator base URL (required with -role=analyzer)")
		nodeName = flag.String("node-name", "", "analyzer node label (default: hostname)")
		leaseTTL = flag.Duration("lease-ttl", 15*time.Second, "coordinator: work lease duration analyzers must renew within")
		hbEvery  = flag.Duration("heartbeat", 3*time.Second, "coordinator: heartbeat cadence handed to analyzers")
		hbOut    = flag.Duration("heartbeat-timeout", 10*time.Second, "coordinator: silence after which a node is lost and its jobs reassigned")
		maxDeliv = flag.Int("max-deliveries", 3, "coordinator: deliveries per job before it fails with reason reassign-exhausted")
		maxRenew = flag.Int("max-renewals", 8, "coordinator: lease renewals before a job is re-offered to a second node")
		poll     = flag.Duration("poll", 500*time.Millisecond, "analyzer: idle sleep between work pulls")
	)
	flag.Parse()

	if *version {
		bi := obs.ReadBuildInfo()
		fmt.Printf("wolfd %s %s", bi.Version, bi.GoVersion)
		if bi.Revision != "" {
			fmt.Printf(" %s", bi.Revision)
		}
		fmt.Println()
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, opts)
	default:
		fmt.Fprintf(os.Stderr, "bad -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	log := slog.New(handler)

	if *debugAddr != "" {
		obs.ServeDebug(*debugAddr)
		log.Info("pprof enabled", "addr", *debugAddr)
	}

	switch *role {
	case "", "coordinator":
	case "analyzer":
		if *coordURL == "" {
			fmt.Fprintln(os.Stderr, "-role=analyzer requires -coordinator=URL")
			os.Exit(2)
		}
		runAnalyzer(log, analyzerOpts{
			addr:        *addr,
			coordinator: *coordURL,
			name:        *nodeName,
			poll:        *poll,
			timeout:     *timeout,
			analysis:    core.Config{DataDependency: *data, Parallelism: *par},
		})
		return
	default:
		fmt.Fprintf(os.Stderr, "bad -role %q (want coordinator or analyzer)\n", *role)
		os.Exit(2)
	}

	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir)
		if err != nil {
			log.Error("open data dir", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		defer st.Close()
		stats := st.Stats()
		warm, openSecs := st.OpenInfo()
		log.Info("corpus opened", "dir", *dataDir,
			"traces", stats.Traces, "defects", stats.Defects, "jobs", stats.Jobs,
			"warm", warm, "open_seconds", fmt.Sprintf("%.3f", openSecs))
	}

	srvRole := server.RoleSingle
	if *role == "coordinator" {
		srvRole = server.RoleCoordinator
	}
	srv := server.New(server.Config{
		Workers:            *workers,
		QueueSize:          *queue,
		JobTimeout:         *timeout,
		WatchdogGrace:      *grace,
		MaxUploadBytes:     *maxBody << 20,
		MaxOpenStreams:     *maxStr,
		StreamIdleTimeout:  *strIdle,
		StreamMemBudget:    *strBudget << 20,
		FlightRecorderSize: *flight,
		Analysis:           core.Config{DataDependency: *data, Parallelism: *par},
		Logger:             log,
		Store:              st,
		MaxCorpusBytes:     *maxCorpus,
		TraceTTL:           *traceTTL,
		GCInterval:         *gcEvery,
		Role:               srvRole,
		LeaseTTL:           *leaseTTL,
		HeartbeatInterval:  *hbEvery,
		HeartbeatTimeout:   *hbOut,
		MaxDeliveries:      *maxDeliv,
		MaxRenewals:        *maxRenew,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		bi := obs.ReadBuildInfo()
		log.Info("wolfd listening", "addr", *addr, "workers", *workers,
			"queue", *queue, "timeout", *timeout,
			"version", bi.Version, "go", bi.GoVersion)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve failed", "err", err)
			os.Exit(1)
		}
	case s := <-sig:
		log.Info("draining", "signal", s.String(), "budget", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Warn("drain incomplete", "err", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Warn("http shutdown", "err", err)
		}
		m := srv.Metrics()
		log.Info("wolfd stopped",
			"accepted", m.JobsAccepted.Load(), "completed", m.JobsCompleted.Load(),
			"failed", m.JobsFailed(), "timeout", m.JobsTimedOut.Load(),
			"panic", m.JobsPanicked.Load(), "rejected", m.JobsRejected.Load())
	}
}
