// Command wolfd runs the WOLF analysis service: an HTTP API accepting
// trace uploads (JSON or binary, gzip-aware) and serving structured
// deadlock reports from a bounded queue and worker pool.
//
// Usage:
//
//	wolfd [-addr :8077] [-workers 4] [-queue 64] [-timeout 30s] [-data]
//
// SIGINT/SIGTERM triggers a graceful shutdown: new uploads are refused
// while queued and in-flight analyses complete (bounded by -drain).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wolf/internal/core"
	"wolf/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8077", "listen address")
		workers = flag.Int("workers", 4, "analysis worker pool size")
		queue   = flag.Int("queue", 64, "bounded job queue size (full queue returns 429)")
		timeout = flag.Duration("timeout", 30*time.Second, "per-job analysis timeout")
		drain   = flag.Duration("drain", 60*time.Second, "graceful shutdown drain budget")
		maxMB   = flag.Int64("max-upload-mb", 64, "maximum decompressed upload size in MiB")
		data    = flag.Bool("data", false, "enable the value-flow (data dependency) extension")
	)
	flag.Parse()

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueSize:      *queue,
		JobTimeout:     *timeout,
		MaxUploadBytes: *maxMB << 20,
		Analysis:       core.Config{DataDependency: *data},
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("wolfd listening on %s (%d workers, queue %d, timeout %v)",
			*addr, *workers, *queue, *timeout)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case s := <-sig:
		log.Printf("received %v, draining (budget %v)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		m := srv.Metrics()
		fmt.Printf("wolfd: %d accepted, %d completed, %d failed (%d timeout, %d panic), %d rejected\n",
			m.JobsAccepted.Load(), m.JobsCompleted.Load(), m.JobsFailed.Load(),
			m.JobsTimedOut.Load(), m.JobsPanicked.Load(), m.JobsRejected.Load())
	}
}
