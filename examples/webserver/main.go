// Webserver: a Jigsaw-flavored scenario demonstrating the Pruner.
//
// A server initializes its thread cache while holding both the cache
// monitor and each cached thread's monitor, then starts the thread —
// which acquires the same two monitors in the opposite order (the
// paper's Figure 1). The lock graph contains a cycle, but the deadlock
// is impossible: the child cannot run until the parent releases both
// locks. WOLF's vector clocks prove it. A second, real inversion
// between a request handler and an admin reconfiguration is detected,
// survives pruning, and is confirmed by replay.
//
//	go run ./examples/webserver
package main

import (
	"fmt"

	"wolf"
	"wolf/sim"
)

// server holds the monitors of the mini web server.
type server struct {
	threadCache *sim.Lock
	cachedTh    *sim.Lock
	resource    *sim.Lock
	context     *sim.Lock
}

// factory builds the server program.
func factory() (sim.Program, sim.Options) {
	var s *server
	opts := sim.Options{Setup: func(w *sim.World) {
		s = &server{
			threadCache: w.NewLock("ThreadCache"),
			cachedTh:    w.NewLock("CachedThread"),
			resource:    w.NewLock("Resource"),
			context:     w.NewLock("ServletContext"),
		}
	}}
	prog := func(t *sim.Thread) {
		// Figure 1: initialize() starts the cached thread while holding
		// both monitors.
		t.Lock(s.threadCache, "ThreadCache.java:401")
		t.Lock(s.cachedTh, "CachedThread.java:75")
		cached := t.Go("cached", func(u *sim.Thread) {
			u.Lock(s.cachedTh, "CachedThread.java:24")
			u.Lock(s.threadCache, "ThreadCache.java:175")
			u.Unlock(s.threadCache, "ThreadCache.java:176")
			u.Unlock(s.cachedTh, "CachedThread.java:56")
		}, "CachedThread.java:76")
		t.Unlock(s.cachedTh, "CachedThread.java:78")
		t.Unlock(s.threadCache, "ThreadCache.java:417")

		// A real inversion: serving locks resource→context, admin locks
		// context→resource.
		handler := t.Go("handler", func(u *sim.Thread) {
			u.Lock(s.resource, "HttpdResource.java:88")
			u.Lock(s.context, "ServletContext.java:142")
			u.Unlock(s.context, "ServletContext.java:144")
			u.Unlock(s.resource, "HttpdResource.java:97")
		}, "httpd.java:accept")
		admin := t.Go("admin", func(u *sim.Thread) {
			u.Lock(s.context, "AdminServer.java:210")
			u.Lock(s.resource, "AdminServer.java:223")
			u.Unlock(s.resource, "AdminServer.java:225")
			u.Unlock(s.context, "AdminServer.java:230")
		}, "admin.java:start")

		t.Join(cached, "httpd.java:join1")
		t.Join(handler, "httpd.java:join2")
		t.Join(admin, "httpd.java:join3")
	}
	return prog, opts
}

func main() {
	// Record several schedules: runs that deadlock mid-detection yield
	// truncated traces, so union the cycles of a few seeds.
	report := wolf.Analyze(factory, wolf.Config{DetectSeeds: []int64{1, 2, 3, 4, 5}})
	fmt.Print(report)
	fmt.Println()
	for _, cr := range report.Cycles {
		fmt.Printf("cycle %v\n  verdict: %v", cr.Cycle, cr.Class)
		if cr.PruneReason != nil {
			fmt.Printf(" — %s orders %s after %s", cr.PruneReason.Rule,
				cr.PruneReason.ThreadA, cr.PruneReason.ThreadB)
		}
		fmt.Println()
	}
}
