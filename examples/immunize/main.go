// Immunize: closing the loop from detection to defense.
//
// WOLF's output is more than a bug report: a confirmed deadlock carries
// the exact acquisition signature needed to avoid it at runtime, the
// idea behind Dimmunix (Jula et al., OSDI 2008), which the paper cites
// in its introduction. This example analyzes the bank-transfer
// workload, then re-runs it under random schedules with and without the
// signature-driven avoidance.
//
//	go run ./examples/immunize
package main

import (
	"fmt"

	"wolf/internal/core"
	"wolf/internal/immunize"
	"wolf/sim"
)

// factory is the textbook transfer deadlock: two tellers moving money
// between the same pair of accounts in opposite directions.
func factory() (sim.Program, sim.Options) {
	type account struct {
		mu      *sim.Lock
		balance int
	}
	var a, b *account
	opts := sim.Options{Setup: func(w *sim.World) {
		a = &account{mu: w.NewLock("account#A"), balance: 100}
		b = &account{mu: w.NewLock("account#B"), balance: 100}
	}}
	transfer := func(u *sim.Thread, from, to *account, amount int, tag string) {
		u.Lock(from.mu, "bank.go:lock-from-"+tag)
		u.Yield("bank.go:audit-" + tag)
		u.Lock(to.mu, "bank.go:lock-to-"+tag)
		from.balance -= amount
		to.balance += amount
		u.Unlock(to.mu, "bank.go:u1-"+tag)
		u.Unlock(from.mu, "bank.go:u2-"+tag)
	}
	prog := func(t *sim.Thread) {
		t1 := t.Go("teller", func(u *sim.Thread) { transfer(u, a, b, 10, "ab") }, "spawn1")
		t2 := t.Go("teller", func(u *sim.Thread) { transfer(u, b, a, 20, "ba") }, "spawn2")
		t.Join(t1, "j1")
		t.Join(t2, "j2")
	}
	return prog, opts
}

func main() {
	// Step 1: find a terminating schedule and confirm the deadlock.
	var seed int64
	for seed = 1; ; seed++ {
		prog, opts := factory()
		if out := sim.Run(prog, sim.NewRandomStrategy(seed), opts); out.Kind == sim.Terminated {
			break
		}
	}
	rep := core.Analyze(factory, core.Config{DetectSeeds: []int64{seed}, ReplayAttempts: 5})
	fmt.Print(rep)

	// Step 2: defend future executions with the confirmed signatures.
	const runs = 200
	base := immunize.Baseline(factory, runs, 9000)
	prot := immunize.Protect(factory, rep, runs, 9000)
	fmt.Printf("\nwithout immunization: %3d/%d runs deadlock\n", base, runs)
	fmt.Printf("with immunization:    %3d/%d runs deadlock\n", prot, runs)
}
