// Quickstart: detect, classify and automatically confirm a textbook
// lock-order deadlock with the WOLF pipeline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"wolf"
	"wolf/sim"
)

// factory builds a fresh two-thread program with inverted lock orders.
// Analyses re-execute the program many times, so all state (locks and
// data) is rebuilt on every call.
func factory() (sim.Program, sim.Options) {
	var a, b *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b = w.NewLock("A"), w.NewLock("B")
	}}
	prog := func(t *sim.Thread) {
		h := t.Go("worker", func(u *sim.Thread) {
			u.Lock(b, "worker.go:7")
			u.Lock(a, "worker.go:8") // inverted: B then A
			u.Unlock(a, "worker.go:9")
			u.Unlock(b, "worker.go:10")
		}, "main.go:3")
		t.Lock(a, "main.go:4")
		t.Lock(b, "main.go:5") // A then B
		t.Unlock(b, "main.go:6")
		t.Unlock(a, "main.go:7")
		t.Join(h, "main.go:8")
	}
	return prog, opts
}

func main() {
	// Analyze records one execution, detects lock-graph cycles, prunes
	// impossible ones, and replays the rest to confirm them.
	report := wolf.Analyze(factory, wolf.Config{})
	fmt.Print(report)

	// Every confirmed defect was actually driven into a deadlock; the
	// hit rate tells how reliably the replay reproduces it.
	for _, d := range report.Defects {
		if d.Class == wolf.Confirmed {
			hr := wolf.HitRate(factory, d.Cycles[0], 50)
			base := wolf.BaselineHitRate(factory, d.Cycles[0], 50)
			fmt.Printf("defect %s: WOLF hit rate %.2f, DeadlockFuzzer baseline %.2f\n",
				d.Signature, hr, base)
		}
	}
}
