// The global-lock scenario as a real, instrumented Go program: HTTP
// control goroutines lock pipeline-then-registry, pipeline goroutines
// lock registry-then-pipeline (see internal/workloads/globallock.go
// for the post-mortem this models). Run the raw variant and it usually
// deadlocks for real; because wolfsync records acquisitions at request
// time, the wedged run's trace still contains the blocked requests,
// and Stop ships it wherever WOLFSYNC_OUT / WOLFSYNC_URL point.
//
//	WOLFSYNC_URL=http://localhost:8077 go run ./examples/globallock -variant deadlock
//	go run ./examples/globallock -variant fixed -o fixed.wtrc
//
// Variants: deadlock (raw reversal), crashed (holder faults with the
// registry held), fixed (message-posting fix; completes cleanly).
// Or drive it through wolfctl, which sets the environment and uploads:
//
//	wolfctl run -- go run ./examples/globallock -variant deadlock
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wolf/internal/workloads"
	"wolf/wolfsync"
)

func main() {
	variant := flag.String("variant", "deadlock", "deadlock|crashed|fixed")
	timeout := flag.Duration("timeout", 5*time.Second, "how long to wait before declaring the run wedged")
	out := flag.String("o", "", "write the trace here (overrides WOLFSYNC_OUT)")
	flag.Parse()

	var opts []wolfsync.Option
	if *out != "" {
		opts = append(opts, wolfsync.WithFile(*out))
	}
	rec, err := wolfsync.Start(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "globallock:", err)
		os.Exit(1)
	}

	spec := workloads.DefaultGlobalLockSpec()
	switch *variant {
	case "deadlock":
	case "crashed":
		spec.Crash = true
	case "fixed":
		spec.Fixed = true
	default:
		fmt.Fprintf(os.Stderr, "globallock: unknown variant %q\n", *variant)
		os.Exit(2)
	}

	ok := workloads.RunGlobalLockReal(workloads.GlobalLockRealOptions{
		Spec:    spec,
		Timeout: *timeout,
	})
	if !ok {
		fmt.Fprintf(os.Stderr, "globallock: wedged after %s — shipping the trace of the stuck run\n", *timeout)
	}
	if err := rec.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "globallock: flush:", err)
		os.Exit(1)
	}
	st := rec.Stats()
	fmt.Printf("recorded %d acquisitions (%d dropped)", st.Recorded, st.Dropped)
	if st.LastJob != "" {
		fmt.Printf(", shipped as job %s", st.LastJob)
	}
	fmt.Println()
	if !ok {
		os.Exit(2)
	}
}
