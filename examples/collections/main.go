// Collections: the paper's Figure 2 scenario on real synchronized maps.
//
// Two threads call Equals on two synchronized maps in opposite orders.
// Equals locks its own mutex, then briefly locks the other map's mutex
// for the size check, and again per entry for value comparison. The
// detector reports four cycles (three defects); one of them — both
// threads blocking at the per-entry read — can never happen because of
// the interim size acquisition, and WOLF's Generator proves it with a
// cyclic synchronization dependency graph.
//
//	go run ./examples/collections
package main

import (
	"fmt"

	"wolf"
	"wolf/collections"
	"wolf/sim"
)

// factory wires two equal single-entry maps behind synchronized views.
func factory() (sim.Program, sim.Options) {
	var sm1, sm2 *collections.SyncMap[int, string]
	opts := sim.Options{Setup: func(w *sim.World) {
		m1 := collections.NewHashMap[int, string](collections.IntHasher)
		m2 := collections.NewTreeMap[int, string](collections.IntLess)
		m1.Put(7, "x")
		m2.Put(7, "x")
		sm1 = collections.NewSyncMap[int, string](w, "SM1", m1)
		sm2 = collections.NewSyncMap[int, string](w, "SM2", m2)
	}}
	prog := func(t *sim.Thread) {
		t1 := t.Go("worker", func(u *sim.Thread) { sm1.Equals(u, sm2) }, "spawn")
		t2 := t.Go("worker", func(u *sim.Thread) { sm2.Equals(u, sm1) }, "spawn")
		t.Join(t1, "j1")
		t.Join(t2, "j2")
	}
	return prog, opts
}

func main() {
	report := wolf.Analyze(factory, wolf.Config{})
	fmt.Print(report)
	fmt.Println()
	for _, cr := range report.Cycles {
		fmt.Printf("cycle %v\n  verdict: %v", cr.Cycle, cr.Class)
		if cr.GsSize > 0 {
			fmt.Printf(" (|Gs| = %d)", cr.GsSize)
		}
		fmt.Println()
	}

	// The baseline cannot classify the impossible cycle — it stays
	// unknown and would be handed to a human.
	fmt.Println()
	baseline := wolf.AnalyzeDeadlockFuzzer(factory, wolf.Config{ReplayAttempts: 10})
	fmt.Print(baseline)
}
