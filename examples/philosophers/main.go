// Philosophers: dining philosophers under the WOLF pipeline.
//
// Five philosophers pick up their left fork, think, then pick up their
// right fork — the classic five-thread circular wait. The detector
// finds the 5-cycle (and nothing shorter: neighbouring pairs alone do
// not form cycles), and the replayer drives all five threads into the
// deadlock on demand.
//
//	go run ./examples/philosophers
package main

import (
	"fmt"

	"wolf"
	"wolf/sim"
)

const seats = 5

// factory builds the table.
func factory() (sim.Program, sim.Options) {
	forks := make([]*sim.Lock, seats)
	opts := sim.Options{Setup: func(w *sim.World) {
		for i := range forks {
			forks[i] = w.NewLock(fmt.Sprintf("fork#%d", i))
		}
	}}
	prog := func(t *sim.Thread) {
		var hs []*sim.Thread
		for i := 0; i < seats; i++ {
			i := i
			hs = append(hs, t.Go("philosopher", func(u *sim.Thread) {
				left, right := forks[i], forks[(i+1)%seats]
				for meal := 0; meal < 2; meal++ {
					u.Lock(left, fmt.Sprintf("table.go:left-%d", i))
					u.Yield(fmt.Sprintf("table.go:think-%d", i))
					u.Lock(right, fmt.Sprintf("table.go:right-%d", i))
					u.Unlock(right, fmt.Sprintf("table.go:down1-%d", i))
					u.Unlock(left, fmt.Sprintf("table.go:down2-%d", i))
				}
			}, "table.go:seat"))
		}
		for _, h := range hs {
			t.Join(h, "table.go:gather")
		}
	}
	return prog, opts
}

func main() {
	report := wolf.Analyze(factory, wolf.Config{
		// The circular wait involves all five threads; raise the cycle
		// length bound accordingly. Use several detection seeds: a
		// recorded run that itself deadlocks never executes the blocked
		// acquisitions, so its trace cannot show the full circle.
		MaxCycleLen:    seats,
		ReplayAttempts: 10,
		DetectSeeds:    []int64{1, 2, 3, 4, 5, 6, 7, 8},
	})
	fmt.Print(report)
	fmt.Println()
	confirmed := 0
	for _, cr := range report.Cycles {
		if cr.Class == wolf.Confirmed {
			confirmed++
			fmt.Printf("confirmed %d-way circular wait: %v\n", len(cr.Cycle.Tuples), cr.Cycle)
			break
		}
	}
	if confirmed == 0 {
		fmt.Println("no confirmed cycle — try more replay attempts")
	}
}
