package sim

import "testing"

// TestChildNeverRunsBeforeStartExecutes is a regression test: a child
// thread must not be schedulable between its creation inside Go and the
// execution of the parent's OpStart. (An early version of the scheduler
// parked new children on OpBegin immediately, letting them run before the
// start operation executed, which corrupted happens-before timestamps.)
func TestChildNeverRunsBeforeStartExecutes(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		startExecuted := make(map[string]bool)
		violation := ""
		ln := ListenerFunc(func(ev Event) {
			switch ev.Op.Kind {
			case OpStart:
				startExecuted[ev.Op.Child.Name()] = true
			default:
				if ev.Thread.Parent() != nil && !startExecuted[ev.Thread.Name()] {
					violation = ev.Thread.Name() + " ran " + ev.Op.String() + " before its start executed"
				}
			}
		})
		prog := func(th *Thread) {
			h1 := th.Go("a", func(u *Thread) {
				u.Yield("a1")
				h := u.Go("b", func(v *Thread) { v.Yield("b1") }, "a2")
				u.Join(h, "a3")
			}, "m1")
			th.Yield("m2")
			th.Join(h1, "m3")
		}
		out := Run(prog, NewRandomStrategy(seed), Options{Listeners: []Listener{ln}})
		if out.Kind != Terminated {
			t.Fatalf("seed %d: outcome = %v", seed, out)
		}
		if violation != "" {
			t.Fatalf("seed %d: %s", seed, violation)
		}
	}
}
