package sim

import "testing"

// TestVarLoadStore: stores become visible to subsequent loads, with
// indexed events.
func TestVarLoadStore(t *testing.T) {
	var flag *Var
	var observed []any
	ln := ListenerFunc(func(ev Event) {
		if ev.Op.Kind == OpLoad || ev.Op.Kind == OpStore {
			if ev.Index.Zero() {
				t.Errorf("%v missing index", ev.Op)
			}
			observed = append(observed, ev.Op.Kind)
		}
	})
	prog := func(th *Thread) {
		h := th.Go("w", func(u *Thread) {
			for !u.LoadBool(flag, "w:poll") {
				u.Yield("w:spin")
			}
		}, "m1")
		th.Store(flag, true, "m2")
		th.Join(h, "m3")
	}
	out := Run(prog, &RoundRobin{}, Options{
		Setup:     func(w *World) { flag = w.NewVar("flag", false) },
		Listeners: []Listener{ln},
	})
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v", out)
	}
	if len(observed) < 2 {
		t.Fatalf("observed = %v", observed)
	}
}

// TestVarTypesAndLookup: typed helpers and registry.
func TestVarTypesAndLookup(t *testing.T) {
	var n *Var
	prog := func(th *Thread) {
		if got := th.LoadInt(n, "r1"); got != 7 {
			t.Errorf("initial = %d, want 7", got)
		}
		th.Store(n, 12, "w1")
		if got := th.LoadInt(n, "r2"); got != 12 {
			t.Errorf("after store = %d, want 12", got)
		}
		if th.World().VarByName("n") != n {
			t.Error("VarByName failed")
		}
	}
	out := Run(prog, FirstEnabled{}, Options{Setup: func(w *World) { n = w.NewVar("n", 7) }})
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v", out)
	}
}

// TestDuplicateVarPanics: names are unique.
func TestDuplicateVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(func(*Thread) {}, FirstEnabled{}, Options{Setup: func(w *World) {
		w.NewVar("x", 0)
		w.NewVar("x", 1)
	}})
}
