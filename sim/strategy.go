package sim

import "math/rand"

// Strategy decides which enabled thread executes its pending operation
// next. Pick is never called with an empty enabled slice; enabled is in
// thread-creation order. Pick must return one of the enabled threads.
//
// Strategies are the extension point the WOLF Replayer and the
// DeadlockFuzzer baseline plug into: both steer the schedule by choosing
// (or refusing to choose) threads that are about to acquire locks.
type Strategy interface {
	Pick(w *World, enabled []*Thread) *Thread
}

// StrategyFunc adapts a function to the Strategy interface.
type StrategyFunc func(w *World, enabled []*Thread) *Thread

// Pick calls f.
func (f StrategyFunc) Pick(w *World, enabled []*Thread) *Thread { return f(w, enabled) }

// RandomStrategy schedules uniformly at random with a seeded source,
// modeling the OS scheduler during the paper's detection runs
// (Algorithm 1 picks "a random thread from Enabled").
type RandomStrategy struct {
	rng *rand.Rand
}

// NewRandomStrategy returns a random strategy with the given seed.
// Runs are reproducible: the same program, seed and options yield the
// same schedule.
func NewRandomStrategy(seed int64) *RandomStrategy {
	return &RandomStrategy{rng: rand.New(rand.NewSource(seed))}
}

// Pick returns a uniformly random enabled thread.
func (s *RandomStrategy) Pick(_ *World, enabled []*Thread) *Thread {
	return enabled[s.rng.Intn(len(enabled))]
}

// RoundRobin schedules enabled threads cyclically by thread ID, a useful
// deterministic baseline in tests.
type RoundRobin struct {
	last ThreadID
}

// Pick returns the enabled thread with the smallest ID greater than the
// previously picked one, wrapping around.
func (s *RoundRobin) Pick(_ *World, enabled []*Thread) *Thread {
	for _, t := range enabled {
		if t.ID() > s.last {
			s.last = t.ID()
			return t
		}
	}
	s.last = enabled[0].ID()
	return enabled[0]
}

// FirstEnabled always runs the enabled thread with the smallest ID,
// driving each thread as far as possible before switching. It is the
// most sequential schedule and rarely exposes deadlocks.
type FirstEnabled struct{}

// Pick returns enabled[0].
func (FirstEnabled) Pick(_ *World, enabled []*Thread) *Thread { return enabled[0] }

// PreferenceStrategy consults choose and falls back to the base strategy
// when choose returns nil. It composes replay logic with random noise.
type PreferenceStrategy struct {
	Choose func(w *World, enabled []*Thread) *Thread
	Base   Strategy
}

// Pick applies Choose, then Base.
func (s *PreferenceStrategy) Pick(w *World, enabled []*Thread) *Thread {
	if t := s.Choose(w, enabled); t != nil {
		return t
	}
	return s.Base.Pick(w, enabled)
}
