package sim

import (
	"fmt"
	"strings"
)

// OutcomeKind classifies how a run ended.
type OutcomeKind int

const (
	// Terminated: every thread finished.
	Terminated OutcomeKind = iota
	// Deadlocked: no thread is enabled but some are blocked on locks or
	// joins.
	Deadlocked
	// StepLimit: the run exceeded Options.MaxSteps.
	StepLimit
	// ProgramError: a thread panicked, unlocked a lock it did not hold,
	// exited holding locks, or the strategy misbehaved.
	ProgramError
	// Halted: the strategy returned nil to stop the run mid-schedule
	// (used by schedule explorers to cut off at branch points).
	Halted
)

// String returns the outcome kind name.
func (k OutcomeKind) String() string {
	switch k {
	case Terminated:
		return "terminated"
	case Deadlocked:
		return "deadlocked"
	case StepLimit:
		return "step-limit"
	case ProgramError:
		return "program-error"
	case Halted:
		return "halted"
	default:
		return fmt.Sprintf("OutcomeKind(%d)", int(k))
	}
}

// BlockedThread describes one thread stuck at the end of a deadlocked run.
type BlockedThread struct {
	// Thread is the stable name of the blocked thread.
	Thread string
	// Op is the operation the thread is blocked on (OpLock or OpJoin).
	Op Op
	// NextIndex is the execution index the blocked operation would have
	// received.
	NextIndex Index
	// Holding lists the names of locks held by the thread.
	Holding []string
}

// String formats the blocked thread for diagnostics.
func (b BlockedThread) String() string {
	return fmt.Sprintf("%s blocked on %v holding [%s]", b.Thread, b.Op, strings.Join(b.Holding, " "))
}

// Outcome reports how a run ended.
type Outcome struct {
	// Kind classifies the ending.
	Kind OutcomeKind
	// Steps is the number of operations executed.
	Steps int
	// Blocked describes stuck threads for Deadlocked and StepLimit runs.
	Blocked []BlockedThread
	// Err is set for ProgramError outcomes.
	Err error
	// EnabledAtHalt lists the threads that were schedulable when the
	// strategy halted the run (Halted outcomes only), in creation order.
	EnabledAtHalt []string
	// World is the finished world, inspectable after the run.
	World *World
}

// Deadlocked reports whether the run ended in a deadlock.
func (o *Outcome) Deadlocked() bool { return o.Kind == Deadlocked }

// BlockedLockSites returns the set of sites at which threads are blocked
// on lock acquisitions, used to match a reproduced deadlock against the
// defect the replayer set out to reproduce (the paper's "hit" criterion:
// the execution deadlocks at the same source locations).
func (o *Outcome) BlockedLockSites() map[string]bool {
	sites := make(map[string]bool)
	for _, b := range o.Blocked {
		if b.Op.Kind == OpLock {
			sites[b.Op.Site] = true
		}
	}
	return sites
}

// String formats the outcome for diagnostics.
func (o *Outcome) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v after %d steps", o.Kind, o.Steps)
	if o.Err != nil {
		fmt.Fprintf(&sb, ": %v", o.Err)
	}
	for _, b := range o.Blocked {
		fmt.Fprintf(&sb, "\n  %v", b)
	}
	return sb.String()
}
