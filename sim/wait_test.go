package sim

import (
	"testing"
)

// TestWaitNotifyHandshake: a waiter parks until the notifier fires, and
// Wait returns with the monitor re-held at the saved depth.
func TestWaitNotifyHandshake(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		var mon *Lock
		ready := false
		sawReady := false
		prog := func(th *Thread) {
			waiter := th.Go("waiter", func(u *Thread) {
				u.Lock(mon, "w1")
				u.Lock(mon, "w1b") // reentrant: depth 2 across the wait
				for !ready {
					u.Wait(mon, "w2")
					if !u.Holds(mon) || mon.Depth() != 2 {
						t.Error("monitor not re-held at saved depth after Wait")
					}
				}
				sawReady = true
				u.Unlock(mon, "w3")
				u.Unlock(mon, "w3b")
			}, "m1")
			th.Lock(mon, "m2")
			ready = true
			th.Notify(mon, "m3")
			th.Unlock(mon, "m4")
			th.Join(waiter, "m5")
		}
		out := Run(prog, NewRandomStrategy(seed), Options{
			Setup: func(w *World) { mon = w.NewLock("mon") },
		})
		if out.Kind != Terminated {
			t.Fatalf("seed %d: outcome = %v", seed, out)
		}
		if !sawReady {
			t.Fatalf("seed %d: waiter returned without seeing ready", seed)
		}
	}
}

// TestLostNotifyDeadlocks: notify before wait is lost; the waiter blocks
// forever and the run reports a deadlock with the wait visible.
func TestLostNotifyDeadlocks(t *testing.T) {
	var mon *Lock
	prog := func(th *Thread) {
		// Notify fires first (forced by running main before starting
		// the waiter's wait).
		th.Lock(mon, "m1")
		th.Notify(mon, "m2") // wait set empty: lost
		th.Unlock(mon, "m3")
		waiter := th.Go("waiter", func(u *Thread) {
			u.Lock(mon, "w1")
			u.Wait(mon, "w2") // never notified again
			u.Unlock(mon, "w3")
		}, "m4")
		th.Join(waiter, "m5")
	}
	out := Run(prog, FirstEnabled{}, Options{
		Setup: func(w *World) { mon = w.NewLock("mon") },
	})
	if out.Kind != Deadlocked {
		t.Fatalf("outcome = %v, want deadlocked (lost notification)", out)
	}
	foundWait := false
	for _, b := range out.Blocked {
		if b.Op.Kind == OpWaitResume {
			foundWait = true
			if b.Op.Site != "w2" {
				t.Errorf("blocked wait site = %s, want w2", b.Op.Site)
			}
		}
	}
	if !foundWait {
		t.Fatalf("blocked report missing the waiter: %v", out)
	}
}

// TestNotifyAllWakesEveryone: three waiters all resume.
func TestNotifyAllWakesEveryone(t *testing.T) {
	var mon *Lock
	woke := 0
	prog := func(th *Thread) {
		var hs []*Thread
		for i := 0; i < 3; i++ {
			hs = append(hs, th.Go("waiter", func(u *Thread) {
				u.Lock(mon, "w1")
				u.Wait(mon, "w2")
				woke++
				u.Unlock(mon, "w3")
			}, "spawn"))
		}
		// Let all three reach their waits first.
		for mon.Waiters() < 3 {
			th.Yield("m-poll")
		}
		th.Lock(mon, "m1")
		th.NotifyAll(mon, "m2")
		th.Unlock(mon, "m3")
		for _, h := range hs {
			th.Join(h, "m4")
		}
	}
	out := Run(prog, NewRandomStrategy(7), Options{
		Setup: func(w *World) { mon = w.NewLock("mon") },
	})
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v", out)
	}
	if woke != 3 {
		t.Fatalf("woke = %d, want 3", woke)
	}
}

// TestNotifyWakesExactlyOne: with a single Notify and two waiters, one
// stays parked and the run deadlocks at the join.
func TestNotifyWakesExactlyOne(t *testing.T) {
	var mon *Lock
	prog := func(th *Thread) {
		h1 := th.Go("waiter", func(u *Thread) {
			u.Lock(mon, "w1")
			u.Wait(mon, "w2")
			u.Unlock(mon, "w3")
		}, "spawn")
		h2 := th.Go("waiter", func(u *Thread) {
			u.Lock(mon, "x1")
			u.Wait(mon, "x2")
			u.Unlock(mon, "x3")
		}, "spawn")
		for mon.Waiters() < 2 {
			th.Yield("m-poll")
		}
		th.Lock(mon, "m1")
		th.Notify(mon, "m2")
		th.Unlock(mon, "m3")
		th.Join(h1, "m4")
		th.Join(h2, "m5")
	}
	out := Run(prog, &RoundRobin{}, Options{
		Setup: func(w *World) { mon = w.NewLock("mon") },
	})
	if out.Kind != Deadlocked {
		t.Fatalf("outcome = %v, want deadlocked (one waiter never woken)", out)
	}
}

// TestWaitWithoutMonitorIsProgramError mirrors IllegalMonitorState.
func TestWaitWithoutMonitorIsProgramError(t *testing.T) {
	var mon *Lock
	prog := func(th *Thread) { th.Wait(mon, "w") }
	out := Run(prog, FirstEnabled{}, Options{Setup: func(w *World) { mon = w.NewLock("mon") }})
	if out.Kind != ProgramError {
		t.Fatalf("outcome = %v, want program-error", out)
	}
}

// TestNotifyWithoutMonitorIsProgramError mirrors IllegalMonitorState.
func TestNotifyWithoutMonitorIsProgramError(t *testing.T) {
	var mon *Lock
	prog := func(th *Thread) { th.Notify(mon, "n") }
	out := Run(prog, FirstEnabled{}, Options{Setup: func(w *World) { mon = w.NewLock("mon") }})
	if out.Kind != ProgramError {
		t.Fatalf("outcome = %v, want program-error", out)
	}
}

// TestWaitReleasesMonitorForOthers: while one thread waits, another can
// take the monitor (the whole point of Wait vs holding the lock).
func TestWaitReleasesMonitorForOthers(t *testing.T) {
	var mon *Lock
	turns := []string{}
	prog := func(th *Thread) {
		waiter := th.Go("waiter", func(u *Thread) {
			u.Lock(mon, "w1")
			turns = append(turns, "waiter-holds")
			u.Wait(mon, "w2")
			turns = append(turns, "waiter-back")
			u.Unlock(mon, "w3")
		}, "m1")
		for mon.Waiters() == 0 {
			th.Yield("m-poll")
		}
		th.Lock(mon, "m2") // acquirable because the waiter released it
		turns = append(turns, "main-holds")
		th.Notify(mon, "m3")
		th.Unlock(mon, "m4")
		th.Join(waiter, "m5")
	}
	out := Run(prog, NewRandomStrategy(11), Options{
		Setup: func(w *World) { mon = w.NewLock("mon") },
	})
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v", out)
	}
	want := []string{"waiter-holds", "main-holds", "waiter-back"}
	if len(turns) != 3 || turns[0] != want[0] || turns[1] != want[1] || turns[2] != want[2] {
		t.Fatalf("turns = %v, want %v", turns, want)
	}
}

// TestWaitEventIndices: OpWait and OpWaitResume both receive execution
// indices and the resume is observable by listeners.
func TestWaitEventIndices(t *testing.T) {
	var mon *Lock
	var kinds []OpKind
	ln := ListenerFunc(func(ev Event) {
		if ev.Op.Kind == OpWait || ev.Op.Kind == OpWaitResume || ev.Op.Kind == OpNotify {
			kinds = append(kinds, ev.Op.Kind)
			if ev.Index.Zero() {
				t.Errorf("%v has no index", ev.Op)
			}
		}
	})
	prog := func(th *Thread) {
		waiter := th.Go("waiter", func(u *Thread) {
			u.Lock(mon, "w1")
			u.Wait(mon, "w2")
			u.Unlock(mon, "w3")
		}, "m1")
		for mon.Waiters() == 0 {
			th.Yield("m-poll")
		}
		th.Lock(mon, "m2")
		th.Notify(mon, "m3")
		th.Unlock(mon, "m4")
		th.Join(waiter, "m5")
	}
	out := Run(prog, &RoundRobin{}, Options{
		Setup:     func(w *World) { mon = w.NewLock("mon") },
		Listeners: []Listener{ln},
	})
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v", out)
	}
	if len(kinds) != 3 || kinds[0] != OpWait || kinds[1] != OpNotify || kinds[2] != OpWaitResume {
		t.Fatalf("event kinds = %v, want [wait notify wait-resume]", kinds)
	}
}
