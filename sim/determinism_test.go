package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// traceString renders an event stream compactly for comparison.
func traceString(evs []Event) string {
	var sb strings.Builder
	for _, ev := range evs {
		fmt.Fprintf(&sb, "%s %v %v;", ev.Thread.Name(), ev.Op, ev.Index)
	}
	return sb.String()
}

// mixProgram is a nontrivial program exercising locks, starts, joins and
// data-dependent branching; its behaviour depends only on the schedule.
func mixProgram() (Program, Options) {
	var la, lb, lc *Lock
	opts := Options{Setup: func(w *World) {
		la, lb, lc = w.NewLock("A"), w.NewLock("B"), w.NewLock("C")
	}}
	shared := 0
	prog := func(th *Thread) {
		var hs []*Thread
		for i := 0; i < 3; i++ {
			i := i
			hs = append(hs, th.Go("w", func(u *Thread) {
				u.Lock(la, "w-a")
				shared += i
				u.Unlock(la, "w-a2")
				if shared%2 == 0 {
					u.Lock(lb, "w-b")
					u.Unlock(lb, "w-b2")
				} else {
					u.Lock(lc, "w-c")
					u.Unlock(lc, "w-c2")
				}
			}, "spawn"))
		}
		th.Lock(lb, "m-b")
		th.Yield("m-y")
		th.Unlock(lb, "m-b2")
		for _, h := range hs {
			th.Join(h, "m-j")
		}
	}
	return prog, opts
}

func runSeed(seed int64) string {
	prog, opts := mixProgram()
	var evs []Event
	opts.Listeners = []Listener{ListenerFunc(func(ev Event) { evs = append(evs, ev) })}
	out := Run(prog, NewRandomStrategy(seed), opts)
	return fmt.Sprintf("%v|%s", out.Kind, traceString(evs))
}

// TestDeterministicReplaySameSeed: identical seeds produce identical event
// traces — the foundation of reproducible detection runs.
func TestDeterministicReplaySameSeed(t *testing.T) {
	f := func(seed int64) bool { return runSeed(seed) == runSeed(seed) }
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSeedsVarySchedule: different seeds should explore different
// schedules at least sometimes (sanity check that randomness is live).
func TestSeedsVarySchedule(t *testing.T) {
	base := runSeed(0)
	varied := false
	for seed := int64(1); seed <= 20; seed++ {
		if runSeed(seed) != base {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("20 different seeds all produced the identical trace")
	}
}

// TestIndicesStableAcrossSchedules: per-thread execution indices depend
// only on the thread's own control flow, not the interleaving, for a
// program with schedule-independent control flow. This is the property
// the paper's execution indices rely on.
func TestIndicesStableAcrossSchedules(t *testing.T) {
	build := func() (Program, *Options) {
		var la, lb *Lock
		opts := &Options{Setup: func(w *World) {
			la, lb = w.NewLock("A"), w.NewLock("B")
		}}
		prog := func(th *Thread) {
			h := th.Go("w", func(u *Thread) {
				u.Lock(lb, "w1")
				u.Unlock(lb, "w2")
				u.Lock(la, "w3")
				u.Unlock(la, "w4")
			}, "m1")
			th.Lock(la, "m2")
			th.Unlock(la, "m3")
			th.Join(h, "m4")
		}
		return prog, opts
	}
	indexOf := func(seed int64) map[string]Index {
		prog, opts := build()
		got := make(map[string]Index)
		opts.Listeners = []Listener{ListenerFunc(func(ev Event) {
			if ev.Op.Kind == OpLock || ev.Op.Kind == OpUnlock {
				got[ev.Thread.Name()+"/"+ev.Op.Site] = ev.Index
			}
		})}
		out := Run(prog, NewRandomStrategy(seed), *opts)
		if out.Kind != Terminated {
			t.Fatalf("seed %d: outcome %v", seed, out)
		}
		return got
	}
	ref := indexOf(0)
	for seed := int64(1); seed < 10; seed++ {
		got := indexOf(seed)
		if len(got) != len(ref) {
			t.Fatalf("seed %d: %d indexed ops, want %d", seed, len(got), len(ref))
		}
		for k, ix := range ref {
			if got[k] != ix {
				t.Errorf("seed %d: index of %s = %v, want %v", seed, k, got[k], ix)
			}
		}
	}
}

// TestNoGoroutineLeakAfterAbort: aborted runs (step limit) unwind their
// parked thread goroutines rather than leaking them. We detect leaks
// indirectly: thousands of aborted runs must not hang or panic.
func TestNoGoroutineLeakAfterAbort(t *testing.T) {
	for i := 0; i < 200; i++ {
		prog := func(th *Thread) {
			th.Go("spin", func(u *Thread) {
				for {
					u.Yield("s")
				}
			}, "m1")
			for {
				th.Yield("m")
			}
		}
		out := Run(prog, NewRandomStrategy(int64(i)), Options{MaxSteps: 50})
		if out.Kind != StepLimit {
			t.Fatalf("outcome = %v", out)
		}
	}
}

// TestListenersSeeSerializedState: listeners run on the scheduler
// goroutine and observe consistent world state.
func TestListenersSeeSerializedState(t *testing.T) {
	var l *Lock
	prog := func(th *Thread) {
		h := th.Go("w", func(u *Thread) {
			u.Lock(l, "w1")
			u.Unlock(l, "w2")
		}, "m1")
		th.Lock(l, "m2")
		th.Unlock(l, "m3")
		th.Join(h, "m4")
	}
	bad := false
	ln := ListenerFunc(func(ev Event) {
		if ev.Op.Kind == OpLock && !ev.Reentrant {
			if ev.Op.Lock.Owner() != ev.Thread {
				bad = true
			}
		}
		if ev.Op.Kind == OpUnlock && !ev.Reentrant {
			if ev.Op.Lock.Owner() != nil {
				bad = true
			}
		}
	})
	out := Run(prog, NewRandomStrategy(5), Options{
		Setup:     func(w *World) { l = w.NewLock("L") },
		Listeners: []Listener{ln},
	})
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v", out)
	}
	if bad {
		t.Fatal("listener observed inconsistent lock state")
	}
}
