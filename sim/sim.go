// Package sim provides a deterministic, cooperative user-level scheduler
// for multithreaded programs built from locks, thread starts and joins.
//
// It is the execution substrate for the WOLF deadlock analysis (Samak and
// Ramanathan, "Trace Driven Dynamic Deadlock Detection and Reproduction",
// PPoPP 2014). The paper instruments JVM threads; Go does not expose
// goroutine scheduling, so sim serializes execution at exactly the
// operations the analysis observes — Lock, Unlock, Start (Go), Join and
// Yield — and hands the scheduling decision to a pluggable Strategy.
//
// Execution model. Every simulated thread runs on its own goroutine but
// only one thread executes at a time. Before each visible operation the
// thread parks and publishes the pending operation; the World applies the
// operation's effect centrally once a Strategy picks the thread. This
// "announce before execute" protocol is what lets a replayer pause a
// thread immediately before a lock acquisition, and makes runtime deadlock
// detection exact: when no thread is enabled and some are blocked on locks
// or joins, the run has deadlocked.
//
// Identity. Threads, locks and operations have stable identities that are
// reproducible across schedules as long as per-thread control flow is
// deterministic: a thread's name is its creation path (for example
// "main/worker.1"), a lock's name is chosen at allocation, and every
// executed operation has an execution index (thread name, per-thread
// sequence number). These are the identities the WOLF algorithms use to
// relate a recorded trace to a replayed run.
//
// A minimal program:
//
//	var la, lb *sim.Lock
//	opts := sim.Options{Setup: func(w *sim.World) {
//		la, lb = w.NewLock("A"), w.NewLock("B")
//	}}
//	prog := func(t *sim.Thread) {
//		h := t.Go("w", func(u *sim.Thread) {
//			u.Lock(lb, "w:1")
//			u.Lock(la, "w:2")
//			u.Unlock(la, "w:3")
//			u.Unlock(lb, "w:4")
//		}, "main:1")
//		t.Lock(la, "main:2")
//		t.Lock(lb, "main:3")
//		t.Unlock(lb, "main:4")
//		t.Unlock(la, "main:5")
//		t.Join(h, "main:6")
//	}
//	out := sim.Run(prog, sim.NewRandomStrategy(1), opts)
//
// Depending on the schedule the run either terminates normally or
// deadlocks; out reports which, along with the blocked operations.
package sim
