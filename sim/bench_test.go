package sim

import (
	"fmt"
	"testing"
)

// BenchmarkStepThroughput measures raw scheduler throughput: one thread
// spinning on yields (pure announce/execute round trips).
func BenchmarkStepThroughput(b *testing.B) {
	prog := func(t *Thread) {
		for i := 0; i < b.N; i++ {
			t.Yield("spin")
		}
	}
	b.ReportAllocs()
	out := Run(prog, FirstEnabled{}, Options{MaxSteps: b.N + 16})
	if out.Kind != Terminated && out.Kind != StepLimit {
		b.Fatalf("outcome = %v", out)
	}
}

// BenchmarkLockUnlock measures the lock/unlock pair cost including event
// dispatch to one listener.
func BenchmarkLockUnlock(b *testing.B) {
	var l *Lock
	count := 0
	prog := func(t *Thread) {
		for i := 0; i < b.N; i++ {
			t.Lock(l, "a")
			t.Unlock(l, "b")
		}
	}
	b.ReportAllocs()
	out := Run(prog, FirstEnabled{}, Options{
		Setup:     func(w *World) { l = w.NewLock("L") },
		MaxSteps:  2*b.N + 16,
		Listeners: []Listener{ListenerFunc(func(Event) { count++ })},
	})
	if out.Kind != Terminated && out.Kind != StepLimit {
		b.Fatalf("outcome = %v", out)
	}
}

// BenchmarkContextSwitch measures ping-pong between two threads through
// a contended lock (worst-case switch density).
func BenchmarkContextSwitch(b *testing.B) {
	var l *Lock
	prog := func(t *Thread) {
		h := t.Go("peer", func(u *Thread) {
			for i := 0; i < b.N; i++ {
				u.Lock(l, "p1")
				u.Unlock(l, "p2")
			}
		}, "m0")
		for i := 0; i < b.N; i++ {
			t.Lock(l, "m1")
			t.Unlock(l, "m2")
		}
		t.Join(h, "m3")
	}
	b.ReportAllocs()
	out := Run(prog, &RoundRobin{}, Options{
		Setup:    func(w *World) { l = w.NewLock("L") },
		MaxSteps: 8*b.N + 64,
	})
	if out.Kind != Terminated && out.Kind != StepLimit {
		b.Fatalf("outcome = %v", out)
	}
}

// BenchmarkSpawnJoin measures thread lifecycle cost.
func BenchmarkSpawnJoin(b *testing.B) {
	prog := func(t *Thread) {
		for i := 0; i < b.N; i++ {
			h := t.Go("child", func(u *Thread) {}, "m0")
			t.Join(h, "m1")
		}
	}
	b.ReportAllocs()
	out := Run(prog, FirstEnabled{}, Options{MaxSteps: 8*b.N + 64})
	if out.Kind != Terminated && out.Kind != StepLimit {
		b.Fatalf("outcome = %v", out)
	}
}

// BenchmarkManyThreadsFanout measures scheduling with wide enabled sets.
func BenchmarkManyThreadsFanout(b *testing.B) {
	for _, n := range []int{8, 64} {
		b.Run(fmt.Sprintf("threads=%d", n), func(b *testing.B) {
			iters := b.N/n + 1
			prog := func(t *Thread) {
				var hs []*Thread
				for i := 0; i < n; i++ {
					hs = append(hs, t.Go("w", func(u *Thread) {
						for j := 0; j < iters; j++ {
							u.Yield("y")
						}
					}, "m0"))
				}
				for _, h := range hs {
					t.Join(h, "m1")
				}
			}
			b.ReportAllocs()
			out := Run(prog, NewRandomStrategy(1), Options{MaxSteps: n*iters + 4*n + 64})
			if out.Kind != Terminated && out.Kind != StepLimit {
				b.Fatalf("outcome = %v", out)
			}
		})
	}
}
