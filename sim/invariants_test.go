package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomOpsProgram generates a structurally random but well-formed
// program: workers perform properly bracketed lock sections (possibly
// nested), yields, and var traffic.
func randomOpsProgram(progSeed int64) (Program, Options) {
	rng := rand.New(rand.NewSource(progSeed))
	nLocks := 2 + rng.Intn(3)
	nWorkers := 1 + rng.Intn(4)
	locks := make([]*Lock, nLocks)
	var flag *Var
	opts := Options{Setup: func(w *World) {
		for i := range locks {
			locks[i] = w.NewLock(fmt.Sprintf("L%d", i))
		}
		flag = w.NewVar("flag", 0)
	}}
	type section struct {
		locks  []int // nesting chain
		yields int
	}
	plans := make([][]section, nWorkers)
	for i := range plans {
		for s := 0; s < 1+rng.Intn(3); s++ {
			sec := section{yields: rng.Intn(2)}
			perm := rng.Perm(nLocks)
			sec.locks = perm[:1+rng.Intn(nLocks)]
			plans[i] = append(plans[i], sec)
		}
	}
	prog := func(th *Thread) {
		var hs []*Thread
		for i, plan := range plans {
			i, plan := i, plan
			hs = append(hs, th.Go("w", func(u *Thread) {
				for si, sec := range plan {
					for li, l := range sec.locks {
						u.Lock(locks[l], fmt.Sprintf("w%d.%d.%d", i, si, li))
					}
					for y := 0; y < sec.yields; y++ {
						u.Yield("y")
					}
					u.Store(flag, i, fmt.Sprintf("w%d.%d.s", i, si))
					for li := len(sec.locks) - 1; li >= 0; li-- {
						u.Unlock(locks[sec.locks[li]], "u")
					}
				}
			}, "spawn"))
		}
		for _, h := range hs {
			th.Join(h, "join")
		}
	}
	return prog, opts
}

// TestInvariantsUnderRandomSchedules machine-checks core runtime
// invariants across random programs and schedules:
//
//   - a lock's owner always holds it (cross-checked at every event);
//   - per-thread execution indices increase by exactly one;
//   - on Terminated outcomes every lock is free;
//   - on Deadlocked outcomes at least two threads are blocked and every
//     blocked Lock operation targets a lock held by somebody else.
func TestInvariantsUnderRandomSchedules(t *testing.T) {
	check := func(progSeed, schedSeed int64) bool {
		prog, opts := randomOpsProgram(progSeed)
		lastSeq := make(map[string]int)
		ok := true
		opts.Listeners = append(opts.Listeners, ListenerFunc(func(ev Event) {
			if !ev.Index.Zero() {
				name := ev.Thread.Name()
				if ev.Index.Seq != lastSeq[name]+1 {
					ok = false
				}
				lastSeq[name] = ev.Index.Seq
			}
			if ev.Op.Kind == OpLock && ev.Op.Lock.Owner() != ev.Thread {
				ok = false
			}
		}))
		out := Run(prog, NewRandomStrategy(schedSeed), opts)
		switch out.Kind {
		case Terminated:
			for _, l := range out.World.Locks() {
				if l.Owner() != nil {
					return false
				}
			}
		case Deadlocked:
			if len(out.Blocked) < 2 {
				return false
			}
			for _, b := range out.Blocked {
				if b.Op.Kind != OpLock {
					continue
				}
				if b.Op.Lock.Owner() == nil {
					return false
				}
			}
		default:
			return false
		}
		return ok
	}
	f := func(progSeed, schedSeed int64) bool {
		return check(progSeed%1000, schedSeed%1000)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEventStreamTotalOrder: step numbers are strictly increasing and
// dense across the whole run.
func TestEventStreamTotalOrder(t *testing.T) {
	prog, opts := randomOpsProgram(7)
	next := 0
	opts.Listeners = append(opts.Listeners, ListenerFunc(func(ev Event) {
		if ev.Step != next {
			t.Errorf("step %d out of order (want %d)", ev.Step, next)
		}
		next++
	}))
	out := Run(prog, NewRandomStrategy(3), opts)
	if out.Steps != next {
		t.Fatalf("outcome steps %d != events %d", out.Steps, next)
	}
}

// TestHeldSetMatchesLockOwnership: at every event, the thread's Held()
// slice and each lock's Owner() agree.
func TestHeldSetMatchesLockOwnership(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		prog, opts := randomOpsProgram(seed)
		bad := false
		opts.Listeners = append(opts.Listeners, ListenerFunc(func(ev Event) {
			for _, l := range ev.Thread.Held() {
				if l.Owner() != ev.Thread {
					bad = true
				}
			}
		}))
		Run(prog, NewRandomStrategy(seed*31+1), opts)
		if bad {
			t.Fatalf("seed %d: held set inconsistent with ownership", seed)
		}
	}
}
