package sim

import "fmt"

// LockID is the dense per-run identifier of a lock, assigned in creation
// order. It is valid only within a single run; cross-run identity is the
// lock's name.
type LockID int

// Lock is a reentrant mutex with Java monitor semantics: the owning thread
// may re-acquire it, it is released when the matching number of unlocks
// have executed, and it carries a wait set for Wait/Notify condition
// synchronization.
type Lock struct {
	w       *World
	id      LockID
	name    string
	owner   *Thread
	depth   int
	waitSet []*Thread
}

// Waiters returns the number of threads in the monitor's wait set.
func (l *Lock) Waiters() int { return len(l.waitSet) }

// ID returns the per-run dense identifier.
func (l *Lock) ID() LockID { return l.id }

// Name returns the stable cross-run identity of the lock.
func (l *Lock) Name() string { return l.name }

// Owner returns the thread currently holding the lock, or nil.
func (l *Lock) Owner() *Thread { return l.owner }

// Depth returns the current reentrancy depth (0 when free).
func (l *Lock) Depth() int { return l.depth }

// HeldBy reports whether t currently holds the lock.
func (l *Lock) HeldBy(t *Thread) bool { return l.owner == t && t != nil }

// String formats the lock for diagnostics.
func (l *Lock) String() string { return fmt.Sprintf("lock(%s)", l.name) }

// acquire makes t the owner, incrementing the reentrancy depth.
// The caller must have checked availability.
func (l *Lock) acquire(t *Thread) (reentrant bool) {
	if l.owner == t {
		l.depth++
		return true
	}
	if l.owner != nil {
		panic("sim: internal error: acquiring a lock owned by another thread")
	}
	l.owner = t
	l.depth = 1
	t.held = append(t.held, l)
	return false
}

// release decrements the depth, freeing the lock at zero.
func (l *Lock) release(t *Thread) (reentrant bool, err error) {
	if l.owner != t {
		return false, fmt.Errorf("thread %s unlocks %s held by %v", t.Name(), l.Name(), l.owner)
	}
	l.depth--
	if l.depth > 0 {
		return true, nil
	}
	l.owner = nil
	for i := len(t.held) - 1; i >= 0; i-- {
		if t.held[i] == l {
			t.held = append(t.held[:i], t.held[i+1:]...)
			break
		}
	}
	return false, nil
}
