package sim

import "fmt"

// Var is a shared program variable whose reads and writes are visible
// operations. Ordinary Go variables in program closures are invisible to
// the analyses; routing schedule-relevant state (flags, published
// pointers, counters that guard branches) through a Var lets trace-aware
// tools reason about data dependencies — the extension the WOLF paper
// leaves as future work in Section 4.4.
type Var struct {
	w    *World
	name string
	val  any
}

// Name returns the stable cross-run identity of the variable.
func (v *Var) Name() string { return v.name }

// Value returns the current value without a scheduling point; use only
// from listeners and strategies (programs must use Thread.Load).
func (v *Var) Value() any { return v.val }

// String formats the variable for diagnostics.
func (v *Var) String() string { return fmt.Sprintf("var(%s)", v.name) }

// NewVar registers a shared variable with the given stable name and
// initial value. Names must be unique within a run.
func (w *World) NewVar(name string, initial any) *Var {
	if _, dup := w.byVar[name]; dup {
		panic(fmt.Sprintf("sim: duplicate var name %q", name))
	}
	v := &Var{w: w, name: name, val: initial}
	w.vars = append(w.vars, v)
	w.byVar[name] = v
	return v
}

// VarByName returns the variable with the given name, or nil.
func (w *World) VarByName(name string) *Var { return w.byVar[name] }

// Load reads v at a scheduling point and returns the observed value.
func (t *Thread) Load(v *Var, site string) any {
	t.checkRunning("Load")
	if v == nil {
		panic("sim: Load(nil)")
	}
	t.announce(Op{Kind: OpLoad, Var: v, Site: site})
	return v.val
}

// LoadBool is Load for boolean flags.
func (t *Thread) LoadBool(v *Var, site string) bool {
	val, _ := t.Load(v, site).(bool)
	return val
}

// LoadInt is Load for integer variables.
func (t *Thread) LoadInt(v *Var, site string) int {
	val, _ := t.Load(v, site).(int)
	return val
}

// Store writes val to v at a scheduling point.
func (t *Thread) Store(v *Var, val any, site string) {
	t.checkRunning("Store")
	if v == nil {
		panic("sim: Store(nil)")
	}
	t.announce(Op{Kind: OpStore, Var: v, Val: val, Site: site})
}
