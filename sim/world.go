package sim

import (
	"fmt"
)

// DefaultMaxSteps bounds a run when Options.MaxSteps is zero.
const DefaultMaxSteps = 1 << 20

// Options configures a run.
type Options struct {
	// Seed seeds per-thread random sources (Thread.Rand). The scheduling
	// strategy owns its own randomness.
	Seed int64
	// MaxSteps aborts the run after this many executed operations;
	// DefaultMaxSteps when zero.
	MaxSteps int
	// Listeners observe every executed operation, in order.
	Listeners []Listener
	// Setup, if non-nil, runs before the root thread starts. It may
	// allocate locks with World.NewLock and build shared program state.
	Setup func(w *World)
}

// World owns all threads and locks of one run and drives the schedule.
type World struct {
	seed      int64
	maxSteps  int
	listeners []Listener
	strategy  Strategy

	threads []*Thread
	// active holds non-terminated threads in creation order; enabled()
	// compacts it lazily so scheduling cost tracks live threads, not
	// every thread ever created.
	active []*Thread
	locks  []*Lock
	byLock map[string]*Lock
	vars   []*Var
	byVar  map[string]*Var

	ctl     chan *Thread
	step    int
	stopped bool
	outcome *Outcome
}

// Factory produces a fresh program and options for one run. Analyses
// that re-execute a program (replay, schedule exploration, overhead
// measurement) take a Factory so every run gets independent state; the
// Setup closure must rebuild all locks and shared data.
type Factory func() (Program, Options)

// Run executes prog as the root thread "main" under the given strategy.
func Run(prog Program, s Strategy, opts Options) *Outcome {
	if prog == nil {
		panic("sim: Run(nil program)")
	}
	if s == nil {
		panic("sim: Run with nil strategy")
	}
	w := &World{
		seed:      opts.Seed,
		maxSteps:  opts.MaxSteps,
		listeners: opts.Listeners,
		strategy:  s,
		byLock:    make(map[string]*Lock),
		byVar:     make(map[string]*Var),
		ctl:       make(chan *Thread),
	}
	if w.maxSteps <= 0 {
		w.maxSteps = DefaultMaxSteps
	}
	if opts.Setup != nil {
		opts.Setup(w)
	}
	w.newThread("main", nil, prog)
	return w.run()
}

// NewLock allocates a lock with the given stable name. Names must be
// unique within a run; NewLock panics on duplicates. Use Thread.NewLock
// for locks allocated during execution, which suffixes a per-thread
// counter automatically.
func (w *World) NewLock(name string) *Lock {
	return w.newLock(name)
}

func (w *World) newLock(name string) *Lock {
	if _, dup := w.byLock[name]; dup {
		panic(fmt.Sprintf("sim: duplicate lock name %q", name))
	}
	l := &Lock{w: w, id: LockID(len(w.locks)), name: name}
	w.locks = append(w.locks, l)
	w.byLock[name] = l
	return l
}

// LockByName returns the lock with the given name, or nil.
func (w *World) LockByName(name string) *Lock { return w.byLock[name] }

// Locks returns all locks in creation order. The slice is owned by the
// world; do not modify it.
func (w *World) Locks() []*Lock { return w.locks }

// Threads returns all threads in creation order. The slice is owned by
// the world; do not modify it.
func (w *World) Threads() []*Thread { return w.threads }

// ThreadByName returns the thread with the given stable name, or nil.
func (w *World) ThreadByName(name string) *Thread {
	for _, t := range w.threads {
		if t.name == name {
			return t
		}
	}
	return nil
}

// Step returns the number of operations executed so far.
func (w *World) Step() int { return w.step }

// newThread registers a thread parked on OpBegin and spawns its goroutine.
func (w *World) newThread(name string, parent *Thread, prog Program) *Thread {
	t := &Thread{
		w:      w,
		id:     ThreadID(len(w.threads)),
		name:   name,
		parent: parent,
		resume: make(chan struct{}),
		// The root thread is immediately schedulable; children stay on
		// OpNone until their parent's OpStart executes.
		pending: Op{Kind: OpNone},
		state:   stateParked,
	}
	if parent == nil {
		t.pending = Op{Kind: OpBegin}
	}
	w.threads = append(w.threads, t)
	w.active = append(w.active, t)
	go t.run(prog)
	return t
}

// enabled returns the parked threads whose pending operation can execute
// now, in thread-creation order (deterministic for strategies). It also
// compacts terminated threads out of the active list.
func (w *World) enabled() []*Thread {
	var en []*Thread
	live := w.active[:0]
	for _, t := range w.active {
		if t.state == stateDone {
			continue
		}
		live = append(live, t)
		if t.state == stateParked && w.canExecute(t) {
			en = append(en, t)
		}
	}
	w.active = live
	return en
}

// canExecute reports whether t's pending operation would not block.
func (w *World) canExecute(t *Thread) bool {
	switch op := t.pending; op.Kind {
	case OpLock:
		return op.Lock.owner == nil || op.Lock.owner == t
	case OpJoin:
		return op.Target.state == stateDone
	case OpWaitResume:
		// Wait returns only after a notification, and the monitor must
		// be reacquirable.
		return t.notified && op.Lock.owner == nil
	case OpNone:
		return false
	default:
		return true
	}
}

// run drives the schedule until termination, deadlock, error or the step
// limit, then unwinds any surviving thread goroutines.
func (w *World) run() *Outcome {
	defer w.unwind()
	for {
		enabled := w.enabled()
		if len(enabled) == 0 {
			if w.allDone() {
				return w.finish(&Outcome{Kind: Terminated, Steps: w.step})
			}
			return w.finish(&Outcome{Kind: Deadlocked, Steps: w.step, Blocked: w.blocked()})
		}
		if w.step >= w.maxSteps {
			return w.finish(&Outcome{Kind: StepLimit, Steps: w.step, Blocked: w.blocked()})
		}
		t := w.strategy.Pick(w, enabled)
		if t == nil {
			// The strategy halts the run at this scheduling point.
			out := &Outcome{Kind: Halted, Steps: w.step}
			for _, e := range enabled {
				out.EnabledAtHalt = append(out.EnabledAtHalt, e.name)
			}
			return w.finish(out)
		}
		if t.state != stateParked || !w.canExecute(t) {
			return w.finish(&Outcome{
				Kind:  ProgramError,
				Steps: w.step,
				Err:   fmt.Errorf("strategy picked an unschedulable thread %v", t),
			})
		}
		if out := w.execute(t); out != nil {
			return w.finish(out)
		}
	}
}

// execute applies t's pending operation, notifies listeners, and resumes
// t until its next announcement. A non-nil return aborts the run.
func (w *World) execute(t *Thread) *Outcome {
	op := t.pending
	ev := Event{Op: op, Thread: t, Step: w.step}
	w.step++
	switch op.Kind {
	case OpBegin:
		// No effect; the thread starts running user code after resume.
	case OpLock:
		ev.Index = t.nextIndex()
		ev.Reentrant = op.Lock.acquire(t)
	case OpUnlock:
		ev.Index = t.nextIndex()
		reentrant, err := op.Lock.release(t)
		if err != nil {
			return &Outcome{Kind: ProgramError, Steps: w.step, Err: err}
		}
		ev.Reentrant = reentrant
	case OpStart:
		ev.Index = t.nextIndex()
		// The child becomes schedulable only now: it was created parked
		// on OpNone so it cannot run before its start operation executes.
		op.Child.pending = Op{Kind: OpBegin}
	case OpJoin, OpYield:
		ev.Index = t.nextIndex()
	case OpLoad:
		ev.Index = t.nextIndex()
	case OpStore:
		ev.Index = t.nextIndex()
		op.Var.val = op.Val
	case OpWait:
		ev.Index = t.nextIndex()
		// Release the monitor entirely and enter the wait set; the
		// thread stays parked on the runtime-generated reacquisition.
		l := op.Lock
		depth := l.depth
		l.depth = 0
		l.owner = nil
		for i := len(t.held) - 1; i >= 0; i-- {
			if t.held[i] == l {
				t.held = append(t.held[:i], t.held[i+1:]...)
				break
			}
		}
		l.waitSet = append(l.waitSet, t)
		t.notified = false
		t.pending = Op{Kind: OpWaitResume, Lock: l, Site: op.Site, savedDepth: depth}
		for _, ln := range w.listeners {
			ln.OnEvent(ev)
		}
		return nil // the thread remains parked until notified
	case OpWaitResume:
		ev.Index = t.nextIndex()
		l := op.Lock
		l.owner = t
		l.depth = op.savedDepth
		t.held = append(t.held, l)
		t.notified = false
	case OpNotify:
		ev.Index = t.nextIndex()
		l := op.Lock
		if len(l.waitSet) > 0 {
			l.waitSet[0].notified = true
			l.waitSet = l.waitSet[1:]
		}
	case OpNotifyAll:
		ev.Index = t.nextIndex()
		l := op.Lock
		for _, waiter := range l.waitSet {
			waiter.notified = true
		}
		l.waitSet = nil
	case OpExit:
		t.state = stateDone
		t.pending = Op{}
		if len(t.held) > 0 {
			return &Outcome{
				Kind:  ProgramError,
				Steps: w.step,
				Err:   fmt.Errorf("thread %s exited holding %d lock(s)", t.name, len(t.held)),
			}
		}
	case OpPanic:
		t.state = stateDone
		t.pending = Op{}
		return &Outcome{
			Kind:  ProgramError,
			Steps: w.step,
			Err:   fmt.Errorf("thread %s panicked: %v", t.name, op.panicVal),
		}
	default:
		return &Outcome{Kind: ProgramError, Steps: w.step, Err: fmt.Errorf("invalid pending op %v", op)}
	}
	for _, ln := range w.listeners {
		ln.OnEvent(ev)
	}
	if op.Kind == OpExit || op.Kind == OpPanic {
		return nil // the thread goroutine has already returned
	}
	t.pending = Op{}
	t.resume <- struct{}{}
	next := <-w.ctl
	if next != t {
		panic("sim: internal error: unexpected thread announced")
	}
	return nil
}

// allDone reports whether every thread has terminated.
func (w *World) allDone() bool {
	for _, t := range w.active {
		if t.state != stateDone {
			return false
		}
	}
	return true
}

// blocked describes every parked thread that cannot execute, for deadlock
// reports.
func (w *World) blocked() []BlockedThread {
	var bs []BlockedThread
	for _, t := range w.active {
		if t.state == stateParked && !w.canExecute(t) && t.pending.Kind != OpNone {
			b := BlockedThread{
				Thread: t.name,
				Op:     t.pending,
				// NextIndex is the index the operation would get.
				NextIndex: Index{Thread: t.name, Seq: t.seq + 1},
			}
			for _, l := range t.held {
				b.Holding = append(b.Holding, l.Name())
			}
			bs = append(bs, b)
		}
	}
	return bs
}

// finish records the outcome and returns it.
func (w *World) finish(out *Outcome) *Outcome {
	out.World = w
	w.outcome = out
	return out
}

// unwind releases any still-parked thread goroutines by panicking
// worldStopped into them.
func (w *World) unwind() {
	w.stopped = true
	for _, t := range w.threads {
		if t.state == stateParked {
			t.state = stateDone
			close(t.resume)
		}
	}
}
