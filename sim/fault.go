package sim

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// FaultKind is a bitmask selecting which scheduling perturbations an
// Injector may apply. Faults model the adversarial conditions a real
// scheduler imposes on a steered re-execution — preemptions, descheduled
// threads, spurious monitor wakeups, slow lock hand-offs — so the
// pipeline's confirmation claim can be exercised under schedule noise
// rather than only on the cooperative schedules the replayer prefers.
type FaultKind uint8

const (
	// FaultPreempt overrides the base strategy's pick with a uniformly
	// random enabled thread, modeling an involuntary context switch.
	FaultPreempt FaultKind = 1 << iota
	// FaultStall freezes one thread for a few scheduling points, modeling
	// a descheduled or page-faulting thread.
	FaultStall
	// FaultWakeup spuriously wakes one thread from a monitor wait set
	// without a notification — the wakeup Java explicitly permits and
	// condition loops must tolerate.
	FaultWakeup
	// FaultDelayGrant hides a thread that is about to acquire a lock from
	// the base strategy for one scheduling point, modeling a slow lock
	// hand-off.
	FaultDelayGrant

	// FaultAll enables every fault kind.
	FaultAll = FaultPreempt | FaultStall | FaultWakeup | FaultDelayGrant
)

// faultNames orders the kinds for rendering and parsing.
var faultNames = []struct {
	kind FaultKind
	name string
}{
	{FaultPreempt, "preempt"},
	{FaultStall, "stall"},
	{FaultWakeup, "wakeup"},
	{FaultDelayGrant, "delay"},
}

// String renders the mask as "preempt+stall+wakeup+delay".
func (k FaultKind) String() string {
	if k == 0 {
		return "none"
	}
	var parts []string
	for _, fn := range faultNames {
		if k&fn.kind != 0 {
			parts = append(parts, fn.name)
		}
	}
	return strings.Join(parts, "+")
}

// DefaultMaxStall bounds a single injected stall (in scheduling points)
// when FaultConfig.MaxStall is zero.
const DefaultMaxStall = 8

// FaultConfig parameterizes an Injector. The zero value injects nothing;
// any configuration is fully reproducible from (Seed, Rate, Kinds).
type FaultConfig struct {
	// Seed seeds the injector's private randomness.
	Seed int64
	// Rate is the per-scheduling-point probability of each enabled fault
	// kind firing independently; 0 disables injection entirely.
	Rate float64
	// Kinds selects the perturbations to inject; FaultAll when zero.
	Kinds FaultKind
	// MaxStall bounds one stall's length in scheduling points
	// (DefaultMaxStall when zero).
	MaxStall int
}

// Enabled reports whether the configuration injects anything.
func (c FaultConfig) Enabled() bool { return c.Rate > 0 }

// kinds returns the effective kind mask.
func (c FaultConfig) kinds() FaultKind {
	if c.Kinds == 0 {
		return FaultAll
	}
	return c.Kinds
}

// maxStall returns the effective stall bound.
func (c FaultConfig) maxStall() int {
	if c.MaxStall <= 0 {
		return DefaultMaxStall
	}
	return c.MaxStall
}

// String renders the configuration in the -faults flag syntax.
func (c FaultConfig) String() string {
	if !c.Enabled() {
		return "off"
	}
	s := fmt.Sprintf("rate=%g,seed=%d", c.Rate, c.Seed)
	if c.Kinds != 0 && c.Kinds != FaultAll {
		s += ",kinds=" + c.Kinds.String()
	}
	if c.MaxStall > 0 {
		s += ",stall=" + strconv.Itoa(c.MaxStall)
	}
	return s
}

// ParseFaultSpec parses the "rate=0.1,seed=7[,kinds=preempt+stall]
// [,stall=8]" syntax of the wolf -faults flag into a FaultConfig.
// An empty spec returns the zero (disabled) configuration.
func ParseFaultSpec(spec string) (FaultConfig, error) {
	var cfg FaultConfig
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cfg, fmt.Errorf("sim: fault spec field %q is not key=value", field)
		}
		switch key {
		case "rate":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r < 0 || r > 1 {
				return cfg, fmt.Errorf("sim: fault rate %q must be a number in [0,1]", val)
			}
			cfg.Rate = r
		case "seed":
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("sim: fault seed %q: %v", val, err)
			}
			cfg.Seed = s
		case "stall":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return cfg, fmt.Errorf("sim: fault stall bound %q must be a positive integer", val)
			}
			cfg.MaxStall = n
		case "kinds":
			var mask FaultKind
			for _, name := range strings.Split(val, "+") {
				found := false
				for _, fn := range faultNames {
					if fn.name == name {
						mask |= fn.kind
						found = true
					}
				}
				if name == "all" {
					mask = FaultAll
					found = true
				}
				if !found {
					return cfg, fmt.Errorf("sim: unknown fault kind %q (want preempt, stall, wakeup, delay or all)", name)
				}
			}
			cfg.Kinds = mask
		default:
			return cfg, fmt.Errorf("sim: unknown fault spec key %q", key)
		}
	}
	return cfg, nil
}

// FaultStats counts the perturbations an Injector actually applied.
type FaultStats struct {
	// Preemptions counts overridden scheduling decisions.
	Preemptions int
	// Stalls counts stall windows started (not stalled steps).
	Stalls int
	// Wakeups counts spurious monitor wakeups.
	Wakeups int
	// DelayedGrants counts acquisitions hidden from the base strategy.
	DelayedGrants int
}

// Total is the number of injected faults of any kind.
func (s FaultStats) Total() int {
	return s.Preemptions + s.Stalls + s.Wakeups + s.DelayedGrants
}

// String renders nonzero counts compactly.
func (s FaultStats) String() string {
	return fmt.Sprintf("preempt=%d stall=%d wakeup=%d delay=%d",
		s.Preemptions, s.Stalls, s.Wakeups, s.DelayedGrants)
}

// Injector wraps a scheduling strategy with deterministic fault
// injection. Every scheduling point it may, independently per enabled
// kind with probability Rate: spuriously wake a monitor waiter, start a
// stall window on a thread, hide an acquiring thread from the base
// strategy for one decision, or preempt the base strategy's choice with
// a random thread. The same (base strategy, program, FaultConfig) always
// produces the same schedule; the injector never deadlocks a live run by
// itself because filtering falls back to the full enabled set whenever
// it would leave the base strategy nothing to pick.
type Injector struct {
	base    Strategy
	cfg     FaultConfig
	kinds   FaultKind
	rng     *rand.Rand
	stalled map[ThreadID]int
	stats   FaultStats
}

// NewInjector wraps base with fault injection under cfg. A disabled
// configuration yields a pass-through injector.
func NewInjector(base Strategy, cfg FaultConfig) *Injector {
	if base == nil {
		panic("sim: NewInjector(nil base strategy)")
	}
	return &Injector{
		base:    base,
		cfg:     cfg,
		kinds:   cfg.kinds(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		stalled: make(map[ThreadID]int),
	}
}

// Stats returns the perturbation counts so far.
func (in *Injector) Stats() FaultStats { return in.stats }

// fire flips one deterministic coin for an enabled kind.
func (in *Injector) fire(k FaultKind) bool {
	return in.kinds&k != 0 && in.rng.Float64() < in.cfg.Rate
}

// Pick applies the configured perturbations, then delegates to the base
// strategy on the (possibly filtered) enabled set. A nil pick from the
// base strategy — a halt request — passes through untouched.
func (in *Injector) Pick(w *World, enabled []*Thread) *Thread {
	if !in.cfg.Enabled() {
		return in.base.Pick(w, enabled)
	}

	// Spurious wakeup: move one random waiter out of a wait set without a
	// notification. The thread becomes schedulable once its monitor is
	// free, exactly as after a real notify.
	if in.fire(FaultWakeup) {
		in.spuriousWakeup(w)
	}

	// Stall bookkeeping: expire windows, then maybe start a new one.
	for _, t := range enabled {
		if in.stalled[t.ID()] > 0 {
			in.stalled[t.ID()]--
		}
	}
	if in.fire(FaultStall) {
		victim := enabled[in.rng.Intn(len(enabled))]
		if in.stalled[victim.ID()] == 0 {
			in.stalled[victim.ID()] = 1 + in.rng.Intn(in.cfg.maxStall())
			in.stats.Stalls++
		}
	}

	// Filter the enabled set: stalled threads are invisible, and a delay
	// grant hides one random pending acquisition for this decision.
	candidates := make([]*Thread, 0, len(enabled))
	for _, t := range enabled {
		if in.stalled[t.ID()] > 0 {
			continue
		}
		candidates = append(candidates, t)
	}
	if in.fire(FaultDelayGrant) {
		var acquiring []int
		for i, t := range candidates {
			if k := t.Pending().Kind; k == OpLock || k == OpWaitResume {
				acquiring = append(acquiring, i)
			}
		}
		if len(acquiring) > 0 {
			i := acquiring[in.rng.Intn(len(acquiring))]
			candidates = append(candidates[:i], candidates[i+1:]...)
			in.stats.DelayedGrants++
		}
	}
	// Never starve the run: if filtering emptied the set, schedule from
	// the full enabled list (stalls and delays are best-effort noise).
	if len(candidates) == 0 {
		candidates = enabled
	}

	if in.fire(FaultPreempt) {
		in.stats.Preemptions++
		return candidates[in.rng.Intn(len(candidates))]
	}
	return in.base.Pick(w, candidates)
}

// spuriousWakeup marks one random waiting thread notified, removing it
// from its monitor's wait set. Deterministic: locks are scanned in
// creation order and the victim is drawn from the injector's seeded rng.
func (in *Injector) spuriousWakeup(w *World) {
	type waiter struct {
		l *Lock
		i int
	}
	var waiters []waiter
	for _, l := range w.locks {
		for i := range l.waitSet {
			waiters = append(waiters, waiter{l, i})
		}
	}
	if len(waiters) == 0 {
		return
	}
	pick := waiters[in.rng.Intn(len(waiters))]
	l, i := pick.l, pick.i
	t := l.waitSet[i]
	l.waitSet = append(l.waitSet[:i:i], l.waitSet[i+1:]...)
	t.notified = true
	in.stats.Wakeups++
}
