package sim

import "testing"

// inversionProg builds the two-thread inverted acquisition program whose
// deadlock has depth 2.
func inversionProg() (Program, Options) {
	var a, b *Lock
	opts := Options{Setup: func(w *World) {
		a, b = w.NewLock("A"), w.NewLock("B")
	}}
	prog := func(th *Thread) {
		h := th.Go("w", func(u *Thread) {
			u.Lock(b, "w1")
			u.Yield("w2")
			u.Lock(a, "w3")
			u.Unlock(a, "w4")
			u.Unlock(b, "w5")
		}, "m1")
		th.Lock(a, "m2")
		th.Yield("m3")
		th.Lock(b, "m4")
		th.Unlock(b, "m5")
		th.Unlock(a, "m6")
		th.Join(h, "m7")
	}
	return prog, opts
}

// TestPCTFindsDepth2Deadlock: across a batch of seeds, PCT with depth 2
// triggers the inversion deadlock at a healthy rate.
func TestPCTFindsDepth2Deadlock(t *testing.T) {
	deadlocks := 0
	const runs = 100
	for seed := int64(0); seed < runs; seed++ {
		prog, opts := inversionProg()
		out := Run(prog, NewPCTStrategy(seed, 2, 16), opts)
		switch out.Kind {
		case Deadlocked:
			deadlocks++
		case Terminated:
		default:
			t.Fatalf("seed %d: outcome = %v", seed, out)
		}
	}
	// PCT's guarantee for n=2 threads, k≈14 steps, d=2 is ≥ 1/(n·k) ≈ 4%
	// per run; observed rates sit near 10%.
	if deadlocks < runs/20 {
		t.Fatalf("PCT deadlocked %d/%d, want >= %d", deadlocks, runs, runs/20)
	}
}

// TestPCTDeterministic: a seed fully determines the schedule.
func TestPCTDeterministic(t *testing.T) {
	run := func(seed int64) OutcomeKind {
		prog, opts := inversionProg()
		return Run(prog, NewPCTStrategy(seed, 3, 32), opts).Kind
	}
	for seed := int64(0); seed < 20; seed++ {
		if run(seed) != run(seed) {
			t.Fatalf("seed %d: nondeterministic", seed)
		}
	}
}

// TestPCTDepth1IsStrictPriority: with no change points the same thread
// runs to completion whenever enabled (no preemption), so the inversion
// program never deadlocks.
func TestPCTDepth1IsStrictPriority(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		prog, opts := inversionProg()
		out := Run(prog, NewPCTStrategy(seed, 1, 16), opts)
		if out.Kind != Terminated {
			t.Fatalf("seed %d: depth-1 PCT produced %v", seed, out)
		}
	}
}

// TestPCTParamClamping: degenerate parameters are clamped, not fatal.
func TestPCTParamClamping(t *testing.T) {
	prog, opts := inversionProg()
	out := Run(prog, NewPCTStrategy(1, 0, 0), opts)
	if out.Kind != Terminated && out.Kind != Deadlocked {
		t.Fatalf("outcome = %v", out)
	}
}
