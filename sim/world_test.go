package sim

import (
	"strings"
	"testing"
)

// collectEvents runs prog and returns the outcome plus the executed events.
func collectEvents(t *testing.T, prog Program, s Strategy, opts Options) (*Outcome, []Event) {
	t.Helper()
	var evs []Event
	opts.Listeners = append(opts.Listeners, ListenerFunc(func(ev Event) { evs = append(evs, ev) }))
	out := Run(prog, s, opts)
	return out, evs
}

func TestEmptyProgramTerminates(t *testing.T) {
	out := Run(func(*Thread) {}, FirstEnabled{}, Options{})
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v, want terminated", out)
	}
	// Only OpBegin and OpExit execute, both without indices.
	if out.Steps != 2 {
		t.Fatalf("steps = %d, want 2", out.Steps)
	}
}

func TestSingleThreadLockUnlock(t *testing.T) {
	var l *Lock
	prog := func(th *Thread) {
		th.Lock(l, "s1")
		if !th.Holds(l) {
			t.Error("thread does not hold l after Lock")
		}
		th.Unlock(l, "s2")
		if th.Holds(l) {
			t.Error("thread still holds l after Unlock")
		}
	}
	out, evs := collectEvents(t, prog, FirstEnabled{}, Options{
		Setup: func(w *World) { l = w.NewLock("L") },
	})
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v", out)
	}
	var kinds []string
	for _, ev := range evs {
		kinds = append(kinds, ev.Op.Kind.String())
	}
	want := "begin lock unlock exit"
	if got := strings.Join(kinds, " "); got != want {
		t.Fatalf("event kinds = %q, want %q", got, want)
	}
	if evs[1].Index != (Index{Thread: "main", Seq: 1}) {
		t.Errorf("lock index = %v, want main:1", evs[1].Index)
	}
	if evs[2].Index != (Index{Thread: "main", Seq: 2}) {
		t.Errorf("unlock index = %v, want main:2", evs[2].Index)
	}
}

func TestReentrantLock(t *testing.T) {
	var l *Lock
	prog := func(th *Thread) {
		th.Lock(l, "a")
		th.Lock(l, "b") // reentrant
		if l.Depth() != 2 {
			t.Errorf("depth = %d, want 2", l.Depth())
		}
		th.Unlock(l, "c")
		if !th.Holds(l) {
			t.Error("lock released too early")
		}
		th.Unlock(l, "d")
		if th.Holds(l) {
			t.Error("lock still held")
		}
	}
	out, evs := collectEvents(t, prog, FirstEnabled{}, Options{
		Setup: func(w *World) { l = w.NewLock("L") },
	})
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v", out)
	}
	if !evs[2].Reentrant {
		t.Error("second lock event not marked reentrant")
	}
	if !evs[3].Reentrant {
		t.Error("first unlock event not marked reentrant")
	}
	if evs[4].Reentrant {
		t.Error("final unlock event marked reentrant")
	}
}

func TestUnlockNotHeldIsProgramError(t *testing.T) {
	var l *Lock
	prog := func(th *Thread) { th.Unlock(l, "s") }
	out := Run(prog, FirstEnabled{}, Options{Setup: func(w *World) { l = w.NewLock("L") }})
	if out.Kind != ProgramError {
		t.Fatalf("outcome = %v, want program-error", out)
	}
}

func TestExitHoldingLockIsProgramError(t *testing.T) {
	var l *Lock
	prog := func(th *Thread) { th.Lock(l, "s") }
	out := Run(prog, FirstEnabled{}, Options{Setup: func(w *World) { l = w.NewLock("L") }})
	if out.Kind != ProgramError {
		t.Fatalf("outcome = %v, want program-error", out)
	}
}

func TestPanicIsProgramError(t *testing.T) {
	out := Run(func(*Thread) { panic("boom") }, FirstEnabled{}, Options{})
	if out.Kind != ProgramError {
		t.Fatalf("outcome = %v, want program-error", out)
	}
	if out.Err == nil || !strings.Contains(out.Err.Error(), "boom") {
		t.Fatalf("err = %v, want to mention boom", out.Err)
	}
}

func TestStartAndJoin(t *testing.T) {
	var order []string
	prog := func(th *Thread) {
		h := th.Go("child", func(c *Thread) {
			order = append(order, "child")
			c.Yield("c1")
		}, "m1")
		th.Join(h, "m2")
		order = append(order, "after-join")
	}
	out := Run(prog, NewRandomStrategy(7), Options{})
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v", out)
	}
	if len(order) != 2 || order[0] != "child" || order[1] != "after-join" {
		t.Fatalf("order = %v", order)
	}
}

func TestChildNamesAreStable(t *testing.T) {
	var names []string
	prog := func(th *Thread) {
		a := th.Go("w", func(c *Thread) {}, "m1")
		b := th.Go("w", func(c *Thread) {}, "m2")
		g := th.Go("other", func(c *Thread) {
			d := c.Go("w", func(*Thread) {}, "o1")
			names = append(names, d.Name())
		}, "m3")
		names = append(names, a.Name(), b.Name())
		th.Join(a, "m4")
		th.Join(b, "m5")
		th.Join(g, "m6")
	}
	out := Run(prog, NewRandomStrategy(3), Options{})
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v", out)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"main/w.0", "main/w.1", "main/other.0/w.0"} {
		if !strings.Contains(joined, want) {
			t.Errorf("names %v missing %q", names, want)
		}
	}
}

func TestJoinBlocksUntilChildExits(t *testing.T) {
	childDone := false
	prog := func(th *Thread) {
		h := th.Go("c", func(c *Thread) {
			c.Yield("c1")
			c.Yield("c2")
			childDone = true
		}, "m1")
		th.Join(h, "m2")
		if !childDone {
			t.Error("join returned before child finished")
		}
	}
	// FirstEnabled would run main first; main blocks at join, then the
	// child becomes the only enabled thread.
	out := Run(prog, FirstEnabled{}, Options{})
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v", out)
	}
}

func TestClassicDeadlock(t *testing.T) {
	var la, lb *Lock
	prog := func(th *Thread) {
		h := th.Go("w", func(u *Thread) {
			u.Lock(lb, "w1")
			u.Yield("w2")
			u.Lock(la, "w3")
			u.Unlock(la, "w4")
			u.Unlock(lb, "w5")
		}, "m1")
		th.Lock(la, "m2")
		th.Yield("m3")
		th.Lock(lb, "m4")
		th.Unlock(lb, "m5")
		th.Unlock(la, "m6")
		th.Join(h, "m7")
	}
	opts := Options{Setup: func(w *World) { la, lb = w.NewLock("A"), w.NewLock("B") }}
	// Round-robin interleaves the two threads step by step, which drives
	// both into the nested acquisition and must deadlock.
	out := Run(prog, &RoundRobin{}, opts)
	if out.Kind != Deadlocked {
		t.Fatalf("outcome = %v, want deadlocked", out)
	}
	if len(out.Blocked) != 2 {
		t.Fatalf("blocked = %v, want 2 threads", out.Blocked)
	}
	sites := out.BlockedLockSites()
	if !sites["m4"] || !sites["w3"] {
		t.Fatalf("blocked sites = %v, want m4 and w3", sites)
	}
}

func TestDeadlockAvoidedBySequentialSchedule(t *testing.T) {
	var la, lb *Lock
	prog := func(th *Thread) {
		h := th.Go("w", func(u *Thread) {
			u.Lock(lb, "w1")
			u.Lock(la, "w3")
			u.Unlock(la, "w4")
			u.Unlock(lb, "w5")
		}, "m1")
		th.Lock(la, "m2")
		th.Lock(lb, "m4")
		th.Unlock(lb, "m5")
		th.Unlock(la, "m6")
		th.Join(h, "m7")
	}
	opts := Options{Setup: func(w *World) { la, lb = w.NewLock("A"), w.NewLock("B") }}
	out := Run(prog, FirstEnabled{}, opts)
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v, want terminated", out)
	}
}

func TestStepLimit(t *testing.T) {
	prog := func(th *Thread) {
		for {
			th.Yield("spin")
		}
	}
	out := Run(prog, FirstEnabled{}, Options{MaxSteps: 100})
	if out.Kind != StepLimit {
		t.Fatalf("outcome = %v, want step-limit", out)
	}
	if out.Steps < 100 {
		t.Fatalf("steps = %d, want >= 100", out.Steps)
	}
}

func TestBlockedOnHeldLockNotEnabled(t *testing.T) {
	var l *Lock
	sawBlocked := false
	prog := func(th *Thread) {
		h := th.Go("w", func(u *Thread) {
			u.Lock(l, "w1")
			u.Unlock(l, "w2")
		}, "m1")
		th.Lock(l, "m2")
		th.Yield("m3")
		th.Yield("m4")
		th.Unlock(l, "m5")
		th.Join(h, "m6")
	}
	// A strategy that checks the child is never offered while main holds l.
	strat := StrategyFunc(func(w *World, enabled []*Thread) *Thread {
		for _, th := range enabled {
			if th.Name() == "main/w.0" && th.Pending().Kind == OpLock && l.Owner() != nil && l.Owner() != th {
				t.Error("blocked thread offered as enabled")
			}
		}
		// Prefer main to create the blocking window.
		for _, th := range enabled {
			if th.Name() == "main" {
				return th
			}
		}
		sawBlocked = true
		return enabled[0]
	})
	opts := Options{Setup: func(w *World) { l = w.NewLock("L") }}
	out := Run(prog, strat, opts)
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v", out)
	}
	if !sawBlocked {
		t.Log("child never had to wait; schedule did not exercise blocking window")
	}
}

func TestLockNamesUniqueAndStable(t *testing.T) {
	var names []string
	prog := func(th *Thread) {
		l1 := th.NewLock("mu")
		l2 := th.NewLock("mu")
		names = append(names, l1.Name(), l2.Name())
		th.Lock(l1, "s1")
		th.Unlock(l1, "s2")
		_ = l2
	}
	out := Run(prog, FirstEnabled{}, Options{})
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v", out)
	}
	if names[0] != "mu@main.0" || names[1] != "mu@main.1" {
		t.Fatalf("lock names = %v", names)
	}
}

func TestDuplicateWorldLockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate lock name")
		}
	}()
	Run(func(*Thread) {}, FirstEnabled{}, Options{Setup: func(w *World) {
		w.NewLock("L")
		w.NewLock("L")
	}})
}

func TestThreadByNameAndLockByName(t *testing.T) {
	var l *Lock
	prog := func(th *Thread) {
		h := th.Go("kid", func(*Thread) {}, "m1")
		w := th.World()
		if w.ThreadByName("main/kid.0") != h {
			t.Error("ThreadByName did not find child")
		}
		if w.LockByName("L") != l {
			t.Error("LockByName did not find L")
		}
		th.Join(h, "m2")
	}
	out := Run(prog, NewRandomStrategy(1), Options{Setup: func(w *World) { l = w.NewLock("L") }})
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v", out)
	}
}

func TestManyThreadsTerminate(t *testing.T) {
	const n = 50
	var l *Lock
	count := 0
	prog := func(th *Thread) {
		var hs []*Thread
		for i := 0; i < n; i++ {
			hs = append(hs, th.Go("w", func(u *Thread) {
				u.Lock(l, "w1")
				count++
				u.Unlock(l, "w2")
			}, "m1"))
		}
		for _, h := range hs {
			th.Join(h, "m2")
		}
	}
	out := Run(prog, NewRandomStrategy(42), Options{Setup: func(w *World) { l = w.NewLock("L") }})
	if out.Kind != Terminated {
		t.Fatalf("outcome = %v", out)
	}
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}
