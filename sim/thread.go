package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// ThreadID is the dense per-run identifier of a thread, assigned in
// creation order. Cross-run identity is the thread's name.
type ThreadID int

// Program is the body of a simulated thread. It must interact with shared
// state only through the Thread's operations (Lock, Unlock, Go, Join,
// Yield); plain Go code between operations runs exclusively, so reads and
// writes of shared program data are race-free by construction.
type Program func(t *Thread)

// threadState tracks a thread's lifecycle from the world's perspective.
type threadState int

const (
	// stateParked: the thread has a pending operation and is waiting to be
	// scheduled.
	stateParked threadState = iota
	// stateRunning: the thread is executing program code between
	// operations (only ever one thread at a time).
	stateRunning
	// stateDone: the thread has terminated.
	stateDone
)

// Thread is a simulated thread.
type Thread struct {
	w      *World
	id     ThreadID
	name   string
	parent *Thread

	resume  chan struct{}
	pending Op
	state   threadState

	seq      int // visible program operations executed
	held     []*Lock
	notified bool           // woken from a wait set, pending monitor reacquisition
	children map[string]int // per-name child counter for stable naming
	lockSeq  map[string]int // per-name lock counter for stable naming
	rng      *rand.Rand
}

// ID returns the dense per-run identifier.
func (t *Thread) ID() ThreadID { return t.id }

// Name returns the stable creation-path name, for example "main/worker.1".
func (t *Thread) Name() string { return t.name }

// Parent returns the creating thread, or nil for the root thread.
func (t *Thread) Parent() *Thread { return t.parent }

// World returns the world the thread belongs to.
func (t *Thread) World() *World { return t.w }

// Seq returns the number of visible operations the thread has executed.
func (t *Thread) Seq() int { return t.seq }

// Pending returns the operation the thread is parked on. Meaningful only
// while the thread is parked (which is whenever a Strategy or Listener
// inspects it).
func (t *Thread) Pending() Op { return t.pending }

// Held returns the locks currently held by the thread, in acquisition
// order. The returned slice is owned by the thread; do not modify it.
func (t *Thread) Held() []*Lock { return t.held }

// Holds reports whether the thread currently holds l.
func (t *Thread) Holds(l *Lock) bool { return l != nil && l.owner == t }

// Terminated reports whether the thread has finished.
func (t *Thread) Terminated() bool { return t.state == stateDone }

// String formats the thread for diagnostics.
func (t *Thread) String() string { return fmt.Sprintf("thread(%s)", t.name) }

// Rand returns a deterministic per-thread random source seeded from the
// world seed and the thread's stable name. Programs that need randomness
// should use it so runs remain reproducible.
func (t *Thread) Rand() *rand.Rand {
	if t.rng == nil {
		h := fnv.New64a()
		h.Write([]byte(t.name))
		t.rng = rand.New(rand.NewSource(t.w.seed ^ int64(h.Sum64())))
	}
	return t.rng
}

// nextIndex allocates the execution index for the thread's next visible
// operation.
func (t *Thread) nextIndex() Index {
	t.seq++
	return Index{Thread: t.name, Seq: t.seq}
}

// announce parks the thread on op and returns once the world has executed
// the operation's effect. If the world aborted the run while the thread
// was parked, announce unwinds the thread goroutine via worldStopped.
func (t *Thread) announce(op Op) {
	t.pending = op
	t.state = stateParked
	t.w.ctl <- t
	<-t.resume
	if t.w.stopped {
		panic(worldStopped{})
	}
	t.state = stateRunning
}

// Lock acquires l, blocking until it is free or already held by t.
// site labels the source location of the acquisition.
func (t *Thread) Lock(l *Lock, site string) {
	t.checkRunning("Lock")
	if l == nil {
		panic("sim: Lock(nil)")
	}
	t.announce(Op{Kind: OpLock, Lock: l, Site: site})
}

// Unlock releases one level of reentrancy of l. Unlocking a lock not held
// by t aborts the run with an error outcome.
func (t *Thread) Unlock(l *Lock, site string) {
	t.checkRunning("Unlock")
	if l == nil {
		panic("sim: Unlock(nil)")
	}
	t.announce(Op{Kind: OpUnlock, Lock: l, Site: site})
}

// WithLock acquires l at site, runs body, then releases l at the same
// site. It is the sim analogue of a Java synchronized block and the
// dominant pattern in workloads. body must not panic.
func (t *Thread) WithLock(l *Lock, site string, body func()) {
	t.Lock(l, site)
	body()
	t.Unlock(l, site)
}

// Go creates and starts a child thread running prog. The child's stable
// name is parentName + "/" + name + "." + n where n counts children of the
// same name created by this parent, mirroring the paper's creation-order
// thread identity. It returns the child's handle for Join.
func (t *Thread) Go(name string, prog Program, site string) *Thread {
	t.checkRunning("Go")
	if prog == nil {
		panic("sim: Go(nil program)")
	}
	if t.children == nil {
		t.children = make(map[string]int)
	}
	n := t.children[name]
	t.children[name] = n + 1
	child := t.w.newThread(fmt.Sprintf("%s/%s.%d", t.name, name, n), t, prog)
	t.announce(Op{Kind: OpStart, Child: child, Site: site})
	return child
}

// Join blocks until target terminates.
func (t *Thread) Join(target *Thread, site string) {
	t.checkRunning("Join")
	if target == nil {
		panic("sim: Join(nil)")
	}
	t.announce(Op{Kind: OpJoin, Target: target, Site: site})
}

// Yield is a scheduling point with no synchronization effect, modeling
// computation the scheduler may interleave.
func (t *Thread) Yield(site string) {
	t.checkRunning("Yield")
	t.announce(Op{Kind: OpYield, Site: site})
}

// Wait releases monitor l entirely (saving the reentrancy depth), parks
// the thread in l's wait set, and returns only after another thread
// Notifies the monitor and the depth has been reacquired — Java
// Object.wait() semantics. Waiting on a monitor the thread does not
// hold aborts the run with a program error.
func (t *Thread) Wait(l *Lock, site string) {
	t.checkRunning("Wait")
	if l == nil {
		panic("sim: Wait(nil)")
	}
	if !t.Holds(l) {
		panic(fmt.Sprintf("sim: Wait on monitor %s not held by %s", l.Name(), t.Name()))
	}
	t.announce(Op{Kind: OpWait, Lock: l, Site: site})
}

// Notify wakes one thread (FIFO) from l's wait set; a no-op when the
// wait set is empty — the classic lost-notification hazard. The woken
// thread must reacquire the monitor before its Wait returns. Notifying
// a monitor the thread does not hold aborts the run.
func (t *Thread) Notify(l *Lock, site string) {
	t.checkRunning("Notify")
	if l == nil {
		panic("sim: Notify(nil)")
	}
	if !t.Holds(l) {
		panic(fmt.Sprintf("sim: Notify on monitor %s not held by %s", l.Name(), t.Name()))
	}
	t.announce(Op{Kind: OpNotify, Lock: l, Site: site})
}

// NotifyAll wakes every thread from l's wait set.
func (t *Thread) NotifyAll(l *Lock, site string) {
	t.checkRunning("NotifyAll")
	if l == nil {
		panic("sim: NotifyAll(nil)")
	}
	if !t.Holds(l) {
		panic(fmt.Sprintf("sim: NotifyAll on monitor %s not held by %s", l.Name(), t.Name()))
	}
	t.announce(Op{Kind: OpNotifyAll, Lock: l, Site: site})
}

// NewLock allocates a lock with the stable name name + "@" + threadName +
// "." + n, where n counts locks of the same base name allocated by this
// thread. Allocation is not a scheduling point, matching unmonitored
// object allocation in the paper's setting.
func (t *Thread) NewLock(name string) *Lock {
	t.checkRunning("NewLock")
	if t.lockSeq == nil {
		t.lockSeq = make(map[string]int)
	}
	n := t.lockSeq[name]
	t.lockSeq[name] = n + 1
	return t.w.newLock(fmt.Sprintf("%s@%s.%d", name, t.name, n))
}

// checkRunning guards against calling thread operations from outside the
// thread's own program (for example from a Listener or Strategy).
func (t *Thread) checkRunning(op string) {
	if t.state != stateRunning {
		panic(fmt.Sprintf("sim: %s called on thread %s which is not the running thread", op, t.name))
	}
}

// run is the thread goroutine body.
func (t *Thread) run(prog Program) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(worldStopped); ok {
				return // world aborted the run; unwind quietly
			}
			t.pending = Op{Kind: OpPanic, panicVal: r}
			t.state = stateParked
			t.w.ctl <- t
			return
		}
	}()
	<-t.resume // wait for OpBegin to be executed
	if t.w.stopped {
		panic(worldStopped{})
	}
	t.state = stateRunning
	prog(t)
	t.pending = Op{Kind: OpExit}
	t.state = stateParked
	t.w.ctl <- t
}

// worldStopped is panicked into parked threads when the world aborts a
// run early (step limit or program error) to unwind their goroutines.
type worldStopped struct{}
