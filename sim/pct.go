package sim

import "math/rand"

// PCTStrategy implements Probabilistic Concurrency Testing (Burckhardt
// et al., ASPLOS 2010): every thread gets a random priority, the
// highest-priority enabled thread always runs, and at d-1 random change
// points during the run the current thread's priority is demoted below
// everything else. For a program with n threads and k steps, one run
// finds any bug of depth d with probability at least 1/(n·k^(d-1)) —
// much better than uniform random scheduling for ordering bugs like
// deadlocks, which have depth 2.
//
// PCT is an alternative detection-phase scheduler: the paper's detector
// records whatever schedule it is given, and a PCT-driven run often
// covers inverted acquisition orders that uniform random runs miss.
type PCTStrategy struct {
	rng *rand.Rand
	// depth is the bug depth d (number of priority change points + 1).
	depth int
	// expectedSteps is the k used to place change points.
	expectedSteps int

	priorities   map[ThreadID]int
	changePoints map[int]bool
	nextHigh     int // descending counter for initial priorities
	nextLow      int // descending counter for demotions (below all highs)
	step         int
}

// NewPCTStrategy returns a PCT scheduler for bugs of the given depth,
// assuming runs of roughly expectedSteps operations.
func NewPCTStrategy(seed int64, depth, expectedSteps int) *PCTStrategy {
	if depth < 1 {
		depth = 1
	}
	if expectedSteps < 1 {
		expectedSteps = 1024
	}
	s := &PCTStrategy{
		rng:           rand.New(rand.NewSource(seed)),
		depth:         depth,
		expectedSteps: expectedSteps,
		priorities:    make(map[ThreadID]int),
		changePoints:  make(map[int]bool),
		nextHigh:      1 << 30,
		nextLow:       1 << 10,
	}
	for i := 0; i < depth-1; i++ {
		s.changePoints[s.rng.Intn(expectedSteps)] = true
	}
	return s
}

// priority returns (assigning lazily) the thread's priority. New threads
// draw a fresh value just below previously assigned high priorities,
// with a random perturbation so creation order does not dominate.
func (s *PCTStrategy) priority(t *Thread) int {
	if p, ok := s.priorities[t.ID()]; ok {
		return p
	}
	s.nextHigh -= 1 + s.rng.Intn(1000)
	s.priorities[t.ID()] = s.nextHigh
	return s.nextHigh
}

// Pick runs the highest-priority enabled thread, demoting it first when
// the step hits a change point.
func (s *PCTStrategy) Pick(_ *World, enabled []*Thread) *Thread {
	best := enabled[0]
	bestP := s.priority(best)
	for _, t := range enabled[1:] {
		if p := s.priority(t); p > bestP {
			best, bestP = t, p
		}
	}
	if s.changePoints[s.step] {
		// Demote the would-be winner below every priority seen so far
		// and re-select.
		s.nextLow--
		s.priorities[best.ID()] = s.nextLow
		best = enabled[0]
		bestP = s.priority(best)
		for _, t := range enabled[1:] {
			if p := s.priority(t); p > bestP {
				best, bestP = t, p
			}
		}
	}
	s.step++
	return best
}
