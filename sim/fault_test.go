package sim

import (
	"testing"
)

// faultProg builds a two-worker program with opposite lock orders (a
// textbook deadlock candidate) plus a main thread that joins both.
func faultProg() (Program, Options) {
	var a, b *Lock
	opts := Options{Setup: func(w *World) {
		a, b = w.NewLock("a"), w.NewLock("b")
	}}
	prog := func(t *Thread) {
		w1 := t.Go("w", func(u *Thread) {
			u.Lock(a, "w1:a")
			u.Yield("w1:mid")
			u.Lock(b, "w1:b")
			u.Unlock(b, "w1:ub")
			u.Unlock(a, "w1:ua")
		}, "spawn")
		w2 := t.Go("w", func(u *Thread) {
			u.Lock(b, "w2:b")
			u.Yield("w2:mid")
			u.Lock(a, "w2:a")
			u.Unlock(a, "w2:ua")
			u.Unlock(b, "w2:ub")
		}, "spawn")
		t.Join(w1, "j1")
		t.Join(w2, "j2")
	}
	return prog, opts
}

// outcomeFingerprint summarizes a run for determinism comparison.
func outcomeFingerprint(out *Outcome) string {
	s := out.Kind.String()
	for _, b := range out.Blocked {
		s += "|" + b.String()
	}
	return s
}

// TestFaultInjectionDeterministic: identical (seed, rate) yields an
// identical schedule, step count and fault statistics.
func TestFaultInjectionDeterministic(t *testing.T) {
	run := func() (*Outcome, FaultStats) {
		prog, opts := faultProg()
		inj := NewInjector(NewRandomStrategy(3), FaultConfig{Seed: 7, Rate: 0.3})
		out := Run(prog, inj, opts)
		return out, inj.Stats()
	}
	out1, st1 := run()
	out2, st2 := run()
	if out1.Steps != out2.Steps || outcomeFingerprint(out1) != outcomeFingerprint(out2) {
		t.Fatalf("runs diverged: %v (%d steps) vs %v (%d steps)",
			out1.Kind, out1.Steps, out2.Kind, out2.Steps)
	}
	if st1 != st2 {
		t.Fatalf("fault stats diverged: %v vs %v", st1, st2)
	}
}

// TestFaultInjectionSeedsDiffer: different injector seeds perturb the
// schedule differently (detectable via stats or step counts over a
// seed sweep).
func TestFaultInjectionSeedsDiffer(t *testing.T) {
	fingerprints := make(map[string]bool)
	for seed := int64(1); seed <= 8; seed++ {
		prog, opts := faultProg()
		inj := NewInjector(NewRandomStrategy(3), FaultConfig{Seed: seed, Rate: 0.4})
		out := Run(prog, inj, opts)
		fingerprints[outcomeFingerprint(out)+"#"+inj.Stats().String()] = true
	}
	if len(fingerprints) < 2 {
		t.Fatalf("8 injector seeds produced a single fingerprint; injection is inert")
	}
}

// TestFaultInjectionDisabledIsTransparent: a zero config delegates every
// decision to the base strategy unchanged.
func TestFaultInjectionDisabledIsTransparent(t *testing.T) {
	prog, opts := faultProg()
	base := Run(prog, NewRandomStrategy(5), opts)

	prog, opts = faultProg()
	inj := NewInjector(NewRandomStrategy(5), FaultConfig{})
	injected := Run(prog, inj, opts)

	if outcomeFingerprint(base) != outcomeFingerprint(injected) || base.Steps != injected.Steps {
		t.Fatalf("disabled injector changed the schedule: %v vs %v", base, injected)
	}
	if inj.Stats().Total() != 0 {
		t.Fatalf("disabled injector reported faults: %v", inj.Stats())
	}
}

// TestFaultInjectionStatsCount: at a high rate on a contended program,
// every toggled kind fires.
func TestFaultInjectionStatsCount(t *testing.T) {
	var total FaultStats
	for seed := int64(1); seed <= 20; seed++ {
		prog, opts := faultProg()
		inj := NewInjector(NewRandomStrategy(seed), FaultConfig{
			Seed:  seed,
			Rate:  0.5,
			Kinds: FaultPreempt | FaultStall | FaultDelayGrant,
		})
		Run(prog, inj, opts)
		st := inj.Stats()
		total.Preemptions += st.Preemptions
		total.Stalls += st.Stalls
		total.DelayedGrants += st.DelayedGrants
		if st.Wakeups != 0 {
			t.Fatalf("wakeup fired though not toggled: %v", st)
		}
	}
	if total.Preemptions == 0 || total.Stalls == 0 || total.DelayedGrants == 0 {
		t.Fatalf("some toggled kinds never fired over 20 seeds: %v", total)
	}
}

// TestFaultInjectionSpuriousWakeup: a waiter parked with no notifier in
// sight is released by an injected wakeup, so the run terminates where
// an uninjected schedule would lose the notification and deadlock.
func TestFaultInjectionSpuriousWakeup(t *testing.T) {
	factory := func() (Program, Options) {
		var mon *Lock
		opts := Options{Setup: func(w *World) { mon = w.NewLock("mon") }}
		prog := func(t *Thread) {
			// The child notifies before the waiter waits (the classic lost
			// notification), then the main thread waits forever — unless a
			// spurious wakeup rescues it. A spinner keeps scheduling
			// points (and thus injection opportunities) coming while the
			// waiter is parked.
			c := t.Go("notifier", func(u *Thread) {
				u.Lock(mon, "n:lock")
				u.Notify(mon, "n:notify")
				u.Unlock(mon, "n:unlock")
			}, "spawn")
			t.Join(c, "join")
			t.Go("spinner", func(u *Thread) {
				for i := 0; i < 50; i++ {
					u.Yield("spin")
				}
			}, "spawn")
			t.Lock(mon, "m:lock")
			t.Wait(mon, "m:wait")
			t.Unlock(mon, "m:unlock")
		}
		return prog, opts
	}

	prog, opts := factory()
	plain := Run(prog, NewRandomStrategy(1), opts)
	if plain.Kind != Deadlocked {
		t.Fatalf("uninjected lost-notification run = %v, want deadlock", plain.Kind)
	}

	rescued := false
	for seed := int64(1); seed <= 10 && !rescued; seed++ {
		prog, opts := factory()
		inj := NewInjector(NewRandomStrategy(1), FaultConfig{Seed: seed, Rate: 0.5, Kinds: FaultWakeup})
		out := Run(prog, inj, opts)
		if out.Kind == Terminated && inj.Stats().Wakeups > 0 {
			rescued = true
		}
	}
	if !rescued {
		t.Fatal("no injected spurious wakeup released the lost-notification waiter in 10 seeds")
	}
}

// TestFaultInjectionNeverStarves: filtering must not wedge a live run —
// with only stalls and delays at rate 1.0 the program still finishes.
func TestFaultInjectionNeverStarves(t *testing.T) {
	prog, opts := faultProg()
	inj := NewInjector(FirstEnabled{}, FaultConfig{Seed: 1, Rate: 1.0, Kinds: FaultStall | FaultDelayGrant})
	out := Run(prog, inj, opts)
	if out.Kind != Terminated && out.Kind != Deadlocked {
		t.Fatalf("run under saturating stall/delay injection = %v, want terminated or a real deadlock", out)
	}
}

// TestParseFaultSpec covers the -faults flag syntax round trip.
func TestParseFaultSpec(t *testing.T) {
	cfg, err := ParseFaultSpec("rate=0.1,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Rate != 0.1 || cfg.Seed != 7 || cfg.Kinds != 0 || !cfg.Enabled() {
		t.Fatalf("cfg = %+v", cfg)
	}
	cfg, err = ParseFaultSpec("rate=0.5,seed=2,kinds=preempt+wakeup,stall=3")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kinds != FaultPreempt|FaultWakeup || cfg.MaxStall != 3 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg, err := ParseFaultSpec(""); err != nil || cfg.Enabled() {
		t.Fatalf("empty spec = %+v, %v", cfg, err)
	}
	for _, bad := range []string{"rate=2", "rate=x", "seed=x", "kinds=nosuch", "bogus=1", "rate"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Fatalf("ParseFaultSpec(%q) accepted", bad)
		}
	}
}

// TestFaultKindString pins the mask rendering used in logs and flags.
func TestFaultKindString(t *testing.T) {
	if got := FaultAll.String(); got != "preempt+stall+wakeup+delay" {
		t.Fatalf("FaultAll = %q", got)
	}
	if got := (FaultStall | FaultWakeup).String(); got != "stall+wakeup" {
		t.Fatalf("mask = %q", got)
	}
	if got := FaultKind(0).String(); got != "none" {
		t.Fatalf("zero mask = %q", got)
	}
}
