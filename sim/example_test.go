package sim_test

import (
	"fmt"

	"wolf/sim"
)

// ExampleRun shows a deterministic run of a two-thread program under a
// seeded random strategy, with a listener observing every operation.
func ExampleRun() {
	var mu *sim.Lock
	counter := 0
	opts := sim.Options{
		Setup: func(w *sim.World) { mu = w.NewLock("counter.mu") },
		Listeners: []sim.Listener{sim.ListenerFunc(func(ev sim.Event) {
			if ev.Op.Kind == sim.OpLock && !ev.Reentrant {
				fmt.Printf("%s acquires %s at %s\n", ev.Thread.Name(), ev.Op.Lock.Name(), ev.Op.Site)
			}
		})},
	}
	prog := func(t *sim.Thread) {
		h := t.Go("worker", func(u *sim.Thread) {
			u.Lock(mu, "worker:inc")
			counter++
			u.Unlock(mu, "worker:done")
		}, "main:spawn")
		t.Lock(mu, "main:inc")
		counter++
		t.Unlock(mu, "main:done")
		t.Join(h, "main:join")
	}
	out := sim.Run(prog, sim.FirstEnabled{}, opts)
	fmt.Println(out.Kind, counter)
	// Output:
	// main acquires counter.mu at main:inc
	// main/worker.0 acquires counter.mu at worker:inc
	// terminated 2
}

// ExampleRun_deadlock shows a schedule driving two threads into a
// deadlock, and the blocked-state report.
func ExampleRun_deadlock() {
	var a, b *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b = w.NewLock("A"), w.NewLock("B")
	}}
	prog := func(t *sim.Thread) {
		h := t.Go("w", func(u *sim.Thread) {
			u.Lock(b, "w:1")
			u.Lock(a, "w:2")
			u.Unlock(a, "w:3")
			u.Unlock(b, "w:4")
		}, "m:0")
		t.Lock(a, "m:1")
		t.Lock(b, "m:2")
		t.Unlock(b, "m:3")
		t.Unlock(a, "m:4")
		t.Join(h, "m:5")
	}
	// Round-robin interleaves the threads step by step, forcing the
	// nested acquisitions to overlap.
	out := sim.Run(prog, &sim.RoundRobin{}, opts)
	fmt.Println(out.Kind)
	for _, blocked := range out.Blocked {
		fmt.Println(blocked.String())
	}
	// Output:
	// deadlocked
	// main blocked on lock(B)@m:2 holding [A]
	// main/w.0 blocked on lock(A)@w:2 holding [B]
}

// ExampleThread_Wait shows the monitor handshake: the waiter releases
// the monitor, the notifier stores under it, and the waiter resumes.
func ExampleThread_Wait() {
	var mon *sim.Lock
	ready := false
	opts := sim.Options{Setup: func(w *sim.World) { mon = w.NewLock("mon") }}
	prog := func(t *sim.Thread) {
		h := t.Go("waiter", func(u *sim.Thread) {
			u.Lock(mon, "waiter:enter")
			for !ready {
				u.Wait(mon, "waiter:wait")
			}
			fmt.Println("waiter saw ready")
			u.Unlock(mon, "waiter:exit")
		}, "main:spawn")
		for mon.Waiters() == 0 {
			t.Yield("main:poll")
		}
		t.Lock(mon, "main:enter")
		ready = true
		t.Notify(mon, "main:notify")
		t.Unlock(mon, "main:exit")
		t.Join(h, "main:join")
	}
	out := sim.Run(prog, &sim.RoundRobin{}, opts)
	fmt.Println(out.Kind)
	// Output:
	// waiter saw ready
	// terminated
}
