// Package detect implements iGoodLock-style cycle detection over the
// lock dependency relation Dσ — the detection half of WOLF's Extended
// Dynamic Cycle Detector (Section 3.1/3.2 of the paper).
//
// A potential deadlock is a cycle θ = {η1 … ηn} of Dσ tuples where
//
//   - lock(ηi) ∈ lockset(ηi+1) for every consecutive pair, and
//     lock(ηn) ∈ lockset(η1): every thread waits for a lock held by the
//     next;
//   - locksets are pairwise disjoint (no guard lock) and all threads are
//     distinct (each thread contributes one edge).
//
// Cycles are canonicalized so each set of tuples is reported once: the
// first tuple belongs to the lexicographically smallest thread in the
// cycle.
package detect

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"wolf/internal/obs"
	"wolf/internal/trace"
)

// DefaultMaxLength bounds cycle length (number of threads involved) when
// a Config leaves it zero. Deadlocks among more than a handful of threads
// are vanishingly rare in practice.
const DefaultMaxLength = 4

// Cycle is one potential deadlock: Tuples[i+1] holds the lock Tuples[i]
// is acquiring (cyclically).
type Cycle struct {
	Tuples []*trace.Tuple
}

// Threads returns the names of the threads in the cycle, in cycle order.
func (c *Cycle) Threads() []string {
	out := make([]string, len(c.Tuples))
	for i, tp := range c.Tuples {
		out[i] = tp.Thread
	}
	return out
}

// Sites returns the source locations of the deadlocking acquisitions, in
// cycle order.
func (c *Cycle) Sites() []string {
	out := make([]string, len(c.Tuples))
	for i, tp := range c.Tuples {
		out[i] = tp.Site
	}
	return out
}

// Signature is the canonical defect identity of the cycle: the sorted
// source locations of its deadlocking acquisitions. The paper counts
// defects by these signatures (Section 4.3): two cycles whose
// acquisitions come from the same source locations are one defect.
func (c *Cycle) Signature() string {
	sites := c.Sites()
	sort.Strings(sites)
	return strings.Join(sites, "+")
}

// String renders the cycle as thread:lock@site waiting chains.
func (c *Cycle) String() string {
	var parts []string
	for _, tp := range c.Tuples {
		parts = append(parts, fmt.Sprintf("%s holds{%s} wants %s@%s",
			tp.Thread, strings.Join(tp.LockNames(), ","), tp.Lock, tp.Site))
	}
	return "{" + strings.Join(parts, " | ") + "}"
}

// AvgStackDepth is the paper's SL statistic: the average acquisition
// stack length across the cycle's tuples.
func (c *Cycle) AvgStackDepth() float64 {
	if len(c.Tuples) == 0 {
		return 0
	}
	sum := 0
	for _, tp := range c.Tuples {
		sum += tp.StackDepth()
	}
	return float64(sum) / float64(len(c.Tuples))
}

// Config controls cycle detection.
type Config struct {
	// MaxLength bounds the number of threads per cycle;
	// DefaultMaxLength when zero.
	MaxLength int
	// NoReduce disables the MagicFuzzer-style pre-pass that iteratively
	// discards tuples provably outside every cycle (Cai and Chan, ICSE
	// 2012). Reduction never changes the result; the switch exists for
	// ablation benchmarks.
	NoReduce bool
}

// Cycles finds every potential deadlock in tr.
func Cycles(tr *trace.Trace, cfg Config) []*Cycle {
	return CyclesCtx(context.Background(), tr, cfg)
}

// CyclesCtx is Cycles with observability: when ctx carries an
// obs.Recorder, the reduction and the chain search each emit a span
// ("detect.reduce", "detect.search") with tuple and cycle counts, so
// the detection cost split is visible per run.
func CyclesCtx(ctx context.Context, tr *trace.Trace, cfg Config) []*Cycle {
	maxLen := cfg.MaxLength
	if maxLen <= 0 {
		maxLen = DefaultMaxLength
	}
	tuples := tr.Tuples
	if !cfg.NoReduce {
		_, sp := obs.Start(ctx, "detect.reduce")
		sp.Add("tuples_in", int64(len(tuples)))
		tuples = Reduce(tuples)
		sp.Add("tuples_out", int64(len(tuples)))
		sp.End()
	}
	_, sp := obs.Start(ctx, "detect.search")
	defer sp.End()
	sp.Add("tuples", int64(len(tuples)))
	d := &detector{maxLen: maxLen}
	// Index tuples by held lock so "who holds ℓ" lookups are O(1).
	d.byHeld = make(map[string][]*trace.Tuple)
	for _, tp := range tuples {
		for _, h := range tp.Held {
			d.byHeld[h.Lock] = append(d.byHeld[h.Lock], tp)
		}
	}
	for _, tp := range tuples {
		if len(tp.Held) == 0 {
			continue // cannot participate: holds nothing for others to wait on
		}
		d.chain = d.chain[:0]
		d.extend(tp)
	}
	sp.Add("cycles", int64(len(d.found)))
	return d.found
}

// Reduce iteratively removes tuples that cannot belong to any cycle —
// the lock-dependency reduction of MagicFuzzer. A tuple η = (t, L, ℓ)
// survives only while both hold:
//
//   - some other thread's surviving tuple holds ℓ (someone to wait on),
//     and
//   - some other thread's surviving tuple acquires a lock in L (someone
//     waiting on us).
//
// Removing a tuple can invalidate others, so the filter runs to a fixed
// point. On traces dominated by non-conflicting lock activity (a busy
// server's request traffic) this discards nearly everything before the
// exponential chain search runs.
func Reduce(tuples []*trace.Tuple) []*trace.Tuple {
	alive := make(map[*trace.Tuple]bool, len(tuples))
	n := 0
	for _, tp := range tuples {
		if len(tp.Held) > 0 {
			alive[tp] = true
			n++
		}
	}
	for changed := true; changed; {
		changed = false
		// heldBy[l] and wants[l] count surviving tuples per thread set;
		// recomputing per round keeps the code simple and each round is
		// linear.
		heldBy := make(map[string]map[string]bool, n)
		wants := make(map[string]map[string]bool, n)
		for tp := range alive {
			addLockThread(wants, tp.Lock, tp.Thread)
			for _, h := range tp.Held {
				addLockThread(heldBy, h.Lock, tp.Thread)
			}
		}
		for tp := range alive {
			if !otherThread(heldBy[tp.Lock], tp.Thread) || !anyWanted(wants, tp) {
				delete(alive, tp)
				changed = true
			}
		}
	}
	out := make([]*trace.Tuple, 0, len(alive))
	for _, tp := range tuples {
		if alive[tp] {
			out = append(out, tp)
		}
	}
	return out
}

// addLockThread records that thread relates to lock.
func addLockThread(m map[string]map[string]bool, lock, thread string) {
	set := m[lock]
	if set == nil {
		set = make(map[string]bool, 2)
		m[lock] = set
	}
	set[thread] = true
}

// otherThread reports whether the set contains a thread other than self.
func otherThread(set map[string]bool, self string) bool {
	for th := range set {
		if th != self {
			return true
		}
	}
	return false
}

// anyWanted reports whether some other thread acquires one of tp's held
// locks.
func anyWanted(wants map[string]map[string]bool, tp *trace.Tuple) bool {
	for _, h := range tp.Held {
		if otherThread(wants[h.Lock], tp.Thread) {
			return true
		}
	}
	return false
}

type detector struct {
	maxLen int
	byHeld map[string][]*trace.Tuple
	chain  []*trace.Tuple
	found  []*Cycle
}

// extend grows the current chain with tp and explores continuations.
// Invariant: chain[i+1] holds lock(chain[i]); chain[0] has the smallest
// thread name (rotation canonicalization).
func (d *detector) extend(tp *trace.Tuple) {
	d.chain = append(d.chain, tp)
	defer func() { d.chain = d.chain[:len(d.chain)-1] }()

	first := d.chain[0]
	// Close the cycle: the first tuple holds what the last one wants.
	if len(d.chain) >= 2 && first.HoldsLock(tp.Lock) {
		cyc := &Cycle{Tuples: append([]*trace.Tuple(nil), d.chain...)}
		d.found = append(d.found, cyc)
		// A longer cycle through the same prefix would reuse tp's thread
		// differently; keep exploring other extensions but do not extend
		// past a closing tuple with the same tuple again — continue below
		// is still valid for longer cycles through different locks.
	}
	if len(d.chain) == d.maxLen {
		return
	}
	for _, next := range d.byHeld[tp.Lock] {
		if next.Thread <= first.Thread {
			continue // canonical rotation: chain[0] is the min thread
		}
		if d.conflicts(next) {
			continue
		}
		d.extend(next)
	}
}

// conflicts reports whether next violates the distinct-thread or
// guard-lock conditions against the current chain.
func (d *detector) conflicts(next *trace.Tuple) bool {
	for _, tp := range d.chain {
		if tp.Thread == next.Thread {
			return true
		}
		// Pairwise disjoint locksets (a shared held lock guards the
		// would-be deadlock).
		for _, h := range next.Held {
			if tp.HoldsLock(h.Lock) {
				return true
			}
		}
	}
	return false
}

// Defect groups the cycles that share a source-location signature.
// Fixing the defect means changing those source locations; reproducing
// any one of its cycles proves the defect (Section 4.3).
type Defect struct {
	// Signature is the canonical sorted site list.
	Signature string
	// Cycles are the lock-graph cycles with this signature.
	Cycles []*Cycle
}

// String renders the defect's signature.
func (df *Defect) String() string {
	return fmt.Sprintf("defect[%s] (%d cycles)", df.Signature, len(df.Cycles))
}

// GroupDefects buckets cycles into defects by signature, preserving first
// occurrence order.
func GroupDefects(cycles []*Cycle) []*Defect {
	bySig := make(map[string]*Defect)
	var out []*Defect
	for _, c := range cycles {
		sig := c.Signature()
		df := bySig[sig]
		if df == nil {
			df = &Defect{Signature: sig}
			bySig[sig] = df
			out = append(out, df)
		}
		df.Cycles = append(df.Cycles, c)
	}
	return out
}
