// Package detect implements iGoodLock-style cycle detection over the
// lock dependency relation Dσ — the detection half of WOLF's Extended
// Dynamic Cycle Detector (Section 3.1/3.2 of the paper).
//
// A potential deadlock is a cycle θ = {η1 … ηn} of Dσ tuples where
//
//   - lock(ηi) ∈ lockset(ηi+1) for every consecutive pair, and
//     lock(ηn) ∈ lockset(η1): every thread waits for a lock held by the
//     next;
//   - locksets are pairwise disjoint (no guard lock) and all threads are
//     distinct (each thread contributes one edge).
//
// Cycles are canonicalized so each set of tuples is reported once: the
// first tuple belongs to the lexicographically smallest thread in the
// cycle.
package detect

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"wolf/internal/obs"
	"wolf/internal/trace"
)

// DefaultMaxLength bounds cycle length (number of threads involved) when
// a Config leaves it zero. Deadlocks among more than a handful of threads
// are vanishingly rare in practice.
const DefaultMaxLength = 4

// Cycle is one potential deadlock: Tuples[i+1] holds the lock Tuples[i]
// is acquiring (cyclically).
type Cycle struct {
	Tuples []*trace.Tuple
}

// Threads returns the names of the threads in the cycle, in cycle order.
func (c *Cycle) Threads() []string {
	out := make([]string, len(c.Tuples))
	for i, tp := range c.Tuples {
		out[i] = tp.Thread
	}
	return out
}

// Sites returns the source locations of the deadlocking acquisitions, in
// cycle order.
func (c *Cycle) Sites() []string {
	out := make([]string, len(c.Tuples))
	for i, tp := range c.Tuples {
		out[i] = tp.Site
	}
	return out
}

// Signature is the canonical defect identity of the cycle: the sorted
// source locations of its deadlocking acquisitions. The paper counts
// defects by these signatures (Section 4.3): two cycles whose
// acquisitions come from the same source locations are one defect.
func (c *Cycle) Signature() string {
	sites := c.Sites()
	sort.Strings(sites)
	return strings.Join(sites, "+")
}

// String renders the cycle as thread:lock@site waiting chains.
func (c *Cycle) String() string {
	var parts []string
	for _, tp := range c.Tuples {
		parts = append(parts, fmt.Sprintf("%s holds{%s} wants %s@%s",
			tp.Thread, strings.Join(tp.LockNames(), ","), tp.Lock, tp.Site))
	}
	return "{" + strings.Join(parts, " | ") + "}"
}

// AvgStackDepth is the paper's SL statistic: the average acquisition
// stack length across the cycle's tuples.
func (c *Cycle) AvgStackDepth() float64 {
	if len(c.Tuples) == 0 {
		return 0
	}
	sum := 0
	for _, tp := range c.Tuples {
		sum += tp.StackDepth()
	}
	return float64(sum) / float64(len(c.Tuples))
}

// Config controls cycle detection.
type Config struct {
	// MaxLength bounds the number of threads per cycle;
	// DefaultMaxLength when zero.
	MaxLength int
	// NoReduce disables the MagicFuzzer-style pre-pass that iteratively
	// discards tuples provably outside every cycle (Cai and Chan, ICSE
	// 2012). Reduction never changes the result; the switch exists for
	// ablation benchmarks.
	NoReduce bool
}

// Cycles finds every potential deadlock in tr.
func Cycles(tr *trace.Trace, cfg Config) []*Cycle {
	return CyclesCtx(context.Background(), tr, cfg)
}

// CyclesCtx is Cycles with observability: when ctx carries an
// obs.Recorder, the reduction and the chain search each emit a span
// ("detect.reduce", "detect.search") with tuple and cycle counts, so
// the detection cost split is visible per run.
func CyclesCtx(ctx context.Context, tr *trace.Trace, cfg Config) []*Cycle {
	maxLen := cfg.MaxLength
	if maxLen <= 0 {
		maxLen = DefaultMaxLength
	}
	tuples := tr.Tuples
	if !cfg.NoReduce {
		_, sp := obs.Start(ctx, "detect.reduce")
		sp.Add("tuples_in", int64(len(tuples)))
		tuples = Reduce(tuples)
		sp.Add("tuples_out", int64(len(tuples)))
		sp.End()
	}
	_, sp := obs.Start(ctx, "detect.search")
	defer sp.End()
	sp.Add("tuples", int64(len(tuples)))
	d := &detector{maxLen: maxLen}
	// "Who holds ℓ" postings. When the search runs over the full tuple
	// list (reduction disabled or nothing removed) the shared trace index
	// already has them; otherwise build postings over the reduced set so
	// the chain search never re-explores discarded tuples.
	if len(tuples) == len(tr.Tuples) {
		d.heldBy = tr.Index().HeldBy
	} else {
		byHeld := make(map[string][]*trace.Tuple)
		for _, tp := range tuples {
			for _, h := range tp.Held {
				byHeld[h.Lock] = append(byHeld[h.Lock], tp)
			}
		}
		d.heldBy = func(lock string) []*trace.Tuple { return byHeld[lock] }
	}
	for _, tp := range tuples {
		if len(tp.Held) == 0 {
			continue // cannot participate: holds nothing for others to wait on
		}
		d.chain = d.chain[:0]
		d.extend(tp)
	}
	sp.Add("cycles", int64(len(d.found)))
	return d.found
}

// Reduce iteratively removes tuples that cannot belong to any cycle —
// the lock-dependency reduction of MagicFuzzer. A tuple η = (t, L, ℓ)
// survives only while both hold:
//
//   - some other thread's surviving tuple holds ℓ (someone to wait on),
//     and
//   - some other thread's surviving tuple acquires a lock in L (someone
//     waiting on us).
//
// Removing a tuple can invalidate others, so the filter runs to a fixed
// point. On traces dominated by non-conflicting lock activity (a busy
// server's request traffic) this discards nearly everything before the
// exponential chain search runs.
func Reduce(tuples []*trace.Tuple) []*trace.Tuple {
	r := newReducer(tuples)
	r.run()
	out := make([]*trace.Tuple, 0, len(r.cands))
	for _, c := range r.cands {
		if c.alive {
			out = append(out, c.tp)
		}
	}
	return out
}

// reducer is the worklist state of the reduction fixpoint. Instead of
// rebuilding the heldBy/wants relations every round (quadratic on
// removal cascades), it maintains per-(lock, thread) reference counts
// and re-examines a tuple only when a count it depends on drops to
// zero — the only transition that can newly falsify a survival
// condition, since counts never increase.
type reducer struct {
	threadIDs map[string]int
	lockIDs   map[string]int
	cands     []reduceCand
	// wantCnt[l][t] counts alive tuples of thread t acquiring lock l;
	// holdCnt[l][t] counts alive tuples of thread t holding l. Entries
	// are deleted on zero so len() is the distinct-thread count.
	wantCnt, holdCnt []map[int]int
	// wantersOf[l] / holdersOf[l] are candidate indices acquiring /
	// holding lock l — the tuples to re-examine when the opposite
	// relation on l shrinks.
	wantersOf, holdersOf [][]int
	queue                []int
	queued               []bool
}

// reduceCand is one candidate tuple with interned lock IDs.
type reduceCand struct {
	tp     *trace.Tuple
	thread int
	lock   int
	held   []int
	alive  bool
}

func newReducer(tuples []*trace.Tuple) *reducer {
	r := &reducer{
		threadIDs: make(map[string]int, 8),
		lockIDs:   make(map[string]int, 16),
	}
	for _, tp := range tuples {
		if len(tp.Held) == 0 {
			continue // cannot participate: holds nothing for others to wait on
		}
		c := reduceCand{
			tp:     tp,
			thread: intern(r.threadIDs, tp.Thread),
			lock:   r.internLock(tp.Lock),
			held:   make([]int, len(tp.Held)),
			alive:  true,
		}
		for i, h := range tp.Held {
			c.held[i] = r.internLock(h.Lock)
		}
		r.cands = append(r.cands, c)
	}
	for i := range r.cands {
		c := &r.cands[i]
		bump(r.wantCnt, c.lock, c.thread, 1)
		r.wantersOf[c.lock] = append(r.wantersOf[c.lock], i)
		for _, l := range c.held {
			bump(r.holdCnt, l, c.thread, 1)
			r.holdersOf[l] = append(r.holdersOf[l], i)
		}
	}
	return r
}

func (r *reducer) internLock(name string) int {
	id, ok := r.lockIDs[name]
	if !ok {
		id = len(r.lockIDs)
		r.lockIDs[name] = id
		r.wantCnt = append(r.wantCnt, nil)
		r.holdCnt = append(r.holdCnt, nil)
		r.wantersOf = append(r.wantersOf, nil)
		r.holdersOf = append(r.holdersOf, nil)
	}
	return id
}

func intern(m map[string]int, name string) int {
	id, ok := m[name]
	if !ok {
		id = len(m)
		m[name] = id
	}
	return id
}

// bump adjusts counts[l][t] by delta, deleting the entry at zero.
func bump(counts []map[int]int, l, t, delta int) {
	m := counts[l]
	if m == nil {
		m = make(map[int]int, 2)
		counts[l] = m
	}
	if n := m[t] + delta; n > 0 {
		m[t] = n
	} else {
		delete(m, t)
	}
}

// otherIn reports whether counts[l] has an entry for a thread ≠ self.
func otherIn(counts []map[int]int, l, self int) bool {
	m := counts[l]
	if len(m) >= 2 {
		return true
	}
	if len(m) == 1 {
		_, own := m[self]
		return !own
	}
	return false
}

// survives checks the two MagicFuzzer conditions for candidate c.
func (r *reducer) survives(c *reduceCand) bool {
	if !otherIn(r.holdCnt, c.lock, c.thread) {
		return false
	}
	for _, l := range c.held {
		if otherIn(r.wantCnt, l, c.thread) {
			return true
		}
	}
	return false
}

// run drains the worklist to the fixed point. Every candidate is
// examined once up front; afterwards only zero-transitions of a
// (lock, thread) count re-enqueue its dependents, so the total work is
// the initial pass plus bounded propagation per removal.
func (r *reducer) run() {
	r.queued = make([]bool, len(r.cands))
	r.queue = make([]int, 0, len(r.cands))
	for i := range r.cands {
		r.push(i)
	}
	for len(r.queue) > 0 {
		i := r.queue[len(r.queue)-1]
		r.queue = r.queue[:len(r.queue)-1]
		r.queued[i] = false
		c := &r.cands[i]
		if !c.alive || r.survives(c) {
			continue
		}
		c.alive = false
		// Retract c's contributions; a count hitting zero wakes the
		// tuples whose condition read that count.
		if bump(r.wantCnt, c.lock, c.thread, -1); r.wantCnt[c.lock][c.thread] == 0 {
			for _, j := range r.holdersOf[c.lock] {
				r.push(j)
			}
		}
		for _, l := range c.held {
			if bump(r.holdCnt, l, c.thread, -1); r.holdCnt[l][c.thread] == 0 {
				for _, j := range r.wantersOf[l] {
					r.push(j)
				}
			}
		}
	}
}

func (r *reducer) push(i int) {
	if !r.queued[i] && r.cands[i].alive {
		r.queued[i] = true
		r.queue = append(r.queue, i)
	}
}

type detector struct {
	maxLen int
	heldBy func(lock string) []*trace.Tuple
	chain  []*trace.Tuple
	found  []*Cycle
}

// extend grows the current chain with tp and explores continuations.
// Invariant: chain[i+1] holds lock(chain[i]); chain[0] has the smallest
// thread name (rotation canonicalization).
func (d *detector) extend(tp *trace.Tuple) {
	d.chain = append(d.chain, tp)
	defer func() { d.chain = d.chain[:len(d.chain)-1] }()

	first := d.chain[0]
	// Close the cycle: the first tuple holds what the last one wants.
	if len(d.chain) >= 2 && first.HoldsLock(tp.Lock) {
		cyc := &Cycle{Tuples: append([]*trace.Tuple(nil), d.chain...)}
		d.found = append(d.found, cyc)
		// A longer cycle through the same prefix would reuse tp's thread
		// differently; keep exploring other extensions but do not extend
		// past a closing tuple with the same tuple again — continue below
		// is still valid for longer cycles through different locks.
	}
	if len(d.chain) == d.maxLen {
		return
	}
	for _, next := range d.heldBy(tp.Lock) {
		if next.Thread <= first.Thread {
			continue // canonical rotation: chain[0] is the min thread
		}
		if d.conflicts(next) {
			continue
		}
		d.extend(next)
	}
}

// conflicts reports whether next violates the distinct-thread or
// guard-lock conditions against the current chain.
func (d *detector) conflicts(next *trace.Tuple) bool {
	for _, tp := range d.chain {
		if tp.Thread == next.Thread {
			return true
		}
		// Pairwise disjoint locksets (a shared held lock guards the
		// would-be deadlock).
		for _, h := range next.Held {
			if tp.HoldsLock(h.Lock) {
				return true
			}
		}
	}
	return false
}

// Defect groups the cycles that share a source-location signature.
// Fixing the defect means changing those source locations; reproducing
// any one of its cycles proves the defect (Section 4.3).
type Defect struct {
	// Signature is the canonical sorted site list.
	Signature string
	// Cycles are the lock-graph cycles with this signature.
	Cycles []*Cycle
}

// String renders the defect's signature.
func (df *Defect) String() string {
	return fmt.Sprintf("defect[%s] (%d cycles)", df.Signature, len(df.Cycles))
}

// GroupDefects buckets cycles into defects by signature, preserving first
// occurrence order.
func GroupDefects(cycles []*Cycle) []*Defect {
	bySig := make(map[string]*Defect)
	var out []*Defect
	for _, c := range cycles {
		sig := c.Signature()
		df := bySig[sig]
		if df == nil {
			df = &Defect{Signature: sig}
			bySig[sig] = df
			out = append(out, df)
		}
		df.Cycles = append(df.Cycles, c)
	}
	return out
}
