package detect

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"wolf/internal/trace"
	"wolf/internal/vclock"
	"wolf/sim"
)

// randomLockProgram builds a random multithreaded lock program: some
// threads do nested pairs (cycle candidates), others do flat
// acquire/release traffic that the reduction should discard.
func randomLockProgram(progSeed int64) sim.Factory {
	return func() (sim.Program, sim.Options) {
		rng := rand.New(rand.NewSource(progSeed))
		nLocks := 3 + rng.Intn(3)
		locks := make([]*sim.Lock, nLocks)
		opts := sim.Options{Setup: func(w *sim.World) {
			for i := range locks {
				locks[i] = w.NewLock(fmt.Sprintf("L%d", i))
			}
		}}
		nNest := 2 + rng.Intn(2)
		nFlat := 1 + rng.Intn(3)
		type sec struct{ a, b int }
		secs := make([][]sec, nNest)
		for i := range secs {
			for s := 0; s < 1+rng.Intn(3); s++ {
				a := rng.Intn(nLocks)
				b := rng.Intn(nLocks)
				for b == a {
					b = rng.Intn(nLocks)
				}
				secs[i] = append(secs[i], sec{a, b})
			}
		}
		flatOps := make([][]int, nFlat)
		for i := range flatOps {
			for s := 0; s < 2+rng.Intn(5); s++ {
				flatOps[i] = append(flatOps[i], rng.Intn(nLocks))
			}
		}
		prog := func(th *sim.Thread) {
			var hs []*sim.Thread
			for i, ss := range secs {
				i, ss := i, ss
				hs = append(hs, th.Go("nest", func(u *sim.Thread) {
					for k, s := range ss {
						u.Lock(locks[s.a], fmt.Sprintf("n%d.%d.a", i, k))
						u.Lock(locks[s.b], fmt.Sprintf("n%d.%d.b", i, k))
						u.Unlock(locks[s.b], "ub")
						u.Unlock(locks[s.a], "ua")
					}
				}, "sp"))
			}
			for i, ops := range flatOps {
				i, ops := i, ops
				hs = append(hs, th.Go("flat", func(u *sim.Thread) {
					for k, l := range ops {
						u.Lock(locks[l], fmt.Sprintf("f%d.%d", i, k))
						u.Unlock(locks[l], "fu")
					}
				}, "sp"))
			}
			for _, h := range hs {
				th.Join(h, "j")
			}
		}
		return prog, opts
	}
}

// recordSeed records one run of f (any outcome except error).
func recordSeed(t *testing.T, f sim.Factory, seed int64) *trace.Trace {
	t.Helper()
	prog, opts := f()
	vt := vclock.NewTracker()
	rec := trace.NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	out := sim.Run(prog, sim.NewRandomStrategy(seed), opts)
	if out.Kind == sim.ProgramError {
		t.Fatalf("outcome = %v", out)
	}
	return rec.Finish(seed)
}

// sigsOf canonicalizes a cycle list for comparison.
func sigsOf(cycles []*Cycle) []string {
	var out []string
	for _, c := range cycles {
		keys := make([]string, len(c.Tuples))
		for i, tp := range c.Tuples {
			keys[i] = tp.Key.String()
		}
		sort.Strings(keys)
		out = append(out, fmt.Sprint(keys))
	}
	sort.Strings(out)
	return out
}

// TestReduceNeverChangesCycles: the MagicFuzzer reduction is a pure
// optimization — identical cycles with and without it, across many
// random programs and schedules.
func TestReduceNeverChangesCycles(t *testing.T) {
	for progSeed := int64(0); progSeed < 40; progSeed++ {
		f := randomLockProgram(progSeed)
		for schedSeed := int64(1); schedSeed <= 3; schedSeed++ {
			tr := recordSeed(t, f, schedSeed)
			with := sigsOf(Cycles(tr, Config{}))
			without := sigsOf(Cycles(tr, Config{NoReduce: true}))
			if len(with) != len(without) {
				t.Fatalf("prog %d seed %d: %d cycles reduced vs %d unreduced",
					progSeed, schedSeed, len(with), len(without))
			}
			for i := range with {
				if with[i] != without[i] {
					t.Fatalf("prog %d seed %d: cycle sets differ", progSeed, schedSeed)
				}
			}
		}
	}
}

// TestReduceDiscardsFlatTraffic: tuples from flat acquire/release
// threads and one-sided nesting vanish.
func TestReduceDiscardsFlatTraffic(t *testing.T) {
	var a, b, c *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b, c = w.NewLock("A"), w.NewLock("B"), w.NewLock("C")
	}}
	prog := func(th *sim.Thread) {
		// Real inversion on A/B.
		h1 := th.Go("x", func(u *sim.Thread) {
			u.Lock(a, "x1")
			u.Lock(b, "x2")
			u.Unlock(b, "x3")
			u.Unlock(a, "x4")
		}, "s")
		h2 := th.Go("y", func(u *sim.Thread) {
			u.Lock(b, "y1")
			u.Lock(a, "y2")
			u.Unlock(a, "y3")
			u.Unlock(b, "y4")
		}, "s")
		// One-sided nesting into C: nobody nests out of C, so these
		// tuples cannot close a cycle.
		h3 := th.Go("z", func(u *sim.Thread) {
			for i := 0; i < 5; i++ {
				u.Lock(a, "z1")
				u.Lock(c, "z2")
				u.Unlock(c, "z3")
				u.Unlock(a, "z4")
			}
		}, "s")
		th.Join(h1, "j1")
		th.Join(h2, "j2")
		th.Join(h3, "j3")
	}
	vt := vclock.NewTracker()
	rec := trace.NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	out := sim.Run(prog, sim.FirstEnabled{}, opts)
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
	tr := rec.Finish(0)
	reduced := Reduce(tr.Tuples)
	// Only x's and y's nested tuples survive: z's C-nesting is
	// one-sided (z holds A wanting C, but nothing holds C wanting A or
	// anything z holds... note z holding A wanted by y survives only if
	// its want side is satisfiable: C is never held by others).
	for _, tp := range reduced {
		if tp.Thread == "main/z.0" {
			t.Errorf("one-sided tuple survived reduction: %v", tp)
		}
	}
	if len(reduced) != 2 {
		t.Errorf("reduced to %d tuples, want 2 (the A/B inversion)", len(reduced))
	}
	// And the cycles are unchanged.
	if got := len(Cycles(tr, Config{})); got != 1 {
		t.Errorf("cycles = %d, want 1", got)
	}
}

// BenchmarkDetectReduction measures the chain search with and without
// the reduction on a traffic-heavy trace.
func BenchmarkDetectReduction(b *testing.B) {
	f := func() (sim.Program, sim.Options) {
		var locks []*sim.Lock
		opts := sim.Options{Setup: func(w *sim.World) {
			for i := 0; i < 9; i++ {
				locks = append(locks, w.NewLock(fmt.Sprintf("L%d", i)))
			}
		}}
		prog := func(th *sim.Thread) {
			var hs []*sim.Thread
			// One real inversion.
			hs = append(hs, th.Go("x", func(u *sim.Thread) {
				u.Lock(locks[0], "x1")
				u.Lock(locks[1], "x2")
				u.Unlock(locks[1], "x3")
				u.Unlock(locks[0], "x4")
			}, "s"))
			hs = append(hs, th.Go("y", func(u *sim.Thread) {
				u.Lock(locks[1], "y1")
				u.Lock(locks[0], "y2")
				u.Unlock(locks[0], "y3")
				u.Unlock(locks[1], "y4")
			}, "s"))
			// Acyclic chain traffic: thread w nests lock w → lock w+1,
			// many times. The chains never close into a cycle, but an
			// unreduced search walks every deep L2→L3→L4→… combination
			// from each of the repeated tuples; the reduction collapses
			// the whole family from both ends before the search starts.
			for w := 2; w < 7; w++ {
				w := w
				hs = append(hs, th.Go("noise", func(u *sim.Thread) {
					for i := 0; i < 20; i++ {
						u.Lock(locks[w], fmt.Sprintf("n%d.%d", w, i))
						u.Lock(locks[w+1], fmt.Sprintf("m%d.%d", w, i))
						u.Unlock(locks[w+1], "u1")
						u.Unlock(locks[w], "u2")
					}
				}, "s"))
			}
			for _, h := range hs {
				th.Join(h, "j")
			}
		}
		return prog, opts
	}
	prog, opts := f()
	vt := vclock.NewTracker()
	rec := trace.NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	sim.Run(prog, sim.FirstEnabled{}, opts)
	tr := rec.Finish(0)
	b.Run("Reduced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Cycles(tr, Config{})
		}
	})
	b.Run("Unreduced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Cycles(tr, Config{NoReduce: true})
		}
	})
}

// chainTuples builds a synthetic removal-cascade input: thread ti holds
// Li and wants Li+1. Nobody wants L0 and nobody holds Ln, so reduction
// peels one tuple from each end per round — the worst case for a
// rebuild-per-round fixpoint, which goes quadratic here.
func chainTuples(n int) []*trace.Tuple {
	out := make([]*trace.Tuple, n)
	for i := 0; i < n; i++ {
		out[i] = &trace.Tuple{
			Thread: fmt.Sprintf("t%d", i),
			Lock:   fmt.Sprintf("L%d", i+1),
			Held:   []trace.HeldLock{{Lock: fmt.Sprintf("L%d", i)}},
		}
	}
	return out
}

// TestReduceChainCascade: the whole chain is reduced away, regardless of
// how incremental the fixpoint is.
func TestReduceChainCascade(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 64} {
		if got := Reduce(chainTuples(n)); len(got) != 0 {
			t.Fatalf("n=%d: %d tuples survived a pure chain", n, len(got))
		}
	}
}

// BenchmarkReduce measures the reduction fixpoint on cascade-heavy
// synthetic inputs where each round only unlocks a little more work.
func BenchmarkReduce(b *testing.B) {
	for _, n := range []int{64, 512, 2048} {
		b.Run(fmt.Sprintf("chain-%d", n), func(b *testing.B) {
			tuples := chainTuples(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := Reduce(tuples); len(got) != 0 {
					b.Fatal("chain should reduce to nothing")
				}
			}
		})
	}
}
