package detect

import (
	"sort"
	"strings"
	"testing"

	"wolf/internal/trace"
	"wolf/internal/vclock"
	"wolf/sim"
)

// record runs prog under the extended recorder and returns the trace.
func record(t *testing.T, prog sim.Program, opts sim.Options, s sim.Strategy) *trace.Trace {
	t.Helper()
	vt := vclock.NewTracker()
	rec := trace.NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	out := sim.Run(prog, s, opts)
	if out.Kind == sim.ProgramError {
		t.Fatalf("outcome = %v", out)
	}
	return rec.Finish(0)
}

// fig4Trace records the paper's Figure 4 program sequentially.
func fig4Trace(t *testing.T) *trace.Trace {
	t.Helper()
	var l1, l2, l3 *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		l1, l2, l3 = w.NewLock("l1"), w.NewLock("l2"), w.NewLock("l3")
	}}
	t3body := func(u *sim.Thread) {
		u.Lock(l3, "31")
		u.Lock(l2, "32")
		u.Lock(l1, "33")
		u.Unlock(l1, "34")
		u.Unlock(l2, "35")
		u.Unlock(l3, "36")
	}
	prog := func(th *sim.Thread) {
		th.Lock(l1, "11")
		th.Lock(l2, "12")
		th.Unlock(l2, "13")
		th.Unlock(l1, "14")
		th.Go("t2", func(u *sim.Thread) { u.Go("t3", t3body, "21") }, "15")
		th.Lock(l3, "16")
		th.Unlock(l3, "17")
		th.Lock(l1, "18")
		th.Lock(l2, "19")
		th.Unlock(l2, "20")
		th.Unlock(l1, "21")
	}
	return record(t, prog, opts, sim.FirstEnabled{})
}

// TestFigure4Cycles: the detector finds exactly the paper's θ1 = {η2, η5}
// and θ2 = {η8, η5}.
func TestFigure4Cycles(t *testing.T) {
	tr := fig4Trace(t)
	cycles := Cycles(tr, Config{})
	if len(cycles) != 2 {
		t.Fatalf("found %d cycles, want 2:\n%v", len(cycles), cycles)
	}
	var sigs []string
	for _, c := range cycles {
		sigs = append(sigs, c.Signature())
	}
	sort.Strings(sigs)
	// θ1: main acquiring l2 at 12, t3 acquiring l1 at 33.
	// θ2: main acquiring l2 at 19, t3 acquiring l1 at 33.
	want := []string{"12+33", "19+33"}
	if sigs[0] != want[0] || sigs[1] != want[1] {
		t.Fatalf("cycle signatures = %v, want %v", sigs, want)
	}
	for _, c := range cycles {
		if len(c.Tuples) != 2 {
			t.Errorf("cycle %v has %d tuples, want 2", c, len(c.Tuples))
		}
		ths := c.Threads()
		if ths[0] != "main" || !strings.Contains(ths[1], "t3") {
			t.Errorf("cycle threads = %v, want [main, …t3…]", ths)
		}
	}
}

// TestNoCycleOnConsistentOrder: consistent lock ordering yields no cycles.
func TestNoCycleOnConsistentOrder(t *testing.T) {
	var a, b *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b = w.NewLock("A"), w.NewLock("B")
	}}
	body := func(u *sim.Thread) {
		u.Lock(a, "x1")
		u.Lock(b, "x2")
		u.Unlock(b, "x3")
		u.Unlock(a, "x4")
	}
	prog := func(th *sim.Thread) {
		h := th.Go("w", body, "m1")
		body(th)
		th.Join(h, "m2")
	}
	tr := record(t, prog, opts, sim.NewRandomStrategy(1))
	if cycles := Cycles(tr, Config{}); len(cycles) != 0 {
		t.Fatalf("found %d cycles on consistent order: %v", len(cycles), cycles)
	}
}

// TestGuardLockSuppressesCycle: a common outer lock guards the inversion.
func TestGuardLockSuppressesCycle(t *testing.T) {
	var g, a, b *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		g, a, b = w.NewLock("G"), w.NewLock("A"), w.NewLock("B")
	}}
	prog := func(th *sim.Thread) {
		h := th.Go("w", func(u *sim.Thread) {
			u.Lock(g, "w0")
			u.Lock(b, "w1")
			u.Lock(a, "w2")
			u.Unlock(a, "w3")
			u.Unlock(b, "w4")
			u.Unlock(g, "w5")
		}, "m0")
		th.Lock(g, "m1")
		th.Lock(a, "m2")
		th.Lock(b, "m3")
		th.Unlock(b, "m4")
		th.Unlock(a, "m5")
		th.Unlock(g, "m6")
		th.Join(h, "m7")
	}
	tr := record(t, prog, opts, sim.NewRandomStrategy(1))
	if cycles := Cycles(tr, Config{}); len(cycles) != 0 {
		t.Fatalf("guarded inversion reported as cycle: %v", cycles)
	}
}

// TestThreeThreadCycle: an A→B→C→A chain across three threads.
func TestThreeThreadCycle(t *testing.T) {
	var a, b, c *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b, c = w.NewLock("A"), w.NewLock("B"), w.NewLock("C")
	}}
	hold := func(first, second *sim.Lock, s1, s2 string) sim.Program {
		return func(u *sim.Thread) {
			u.Lock(first, s1)
			u.Lock(second, s2)
			u.Unlock(second, s2+"u")
			u.Unlock(first, s1+"u")
		}
	}
	prog := func(th *sim.Thread) {
		h1 := th.Go("w1", hold(a, b, "t1a", "t1b"), "m1")
		h2 := th.Go("w2", hold(b, c, "t2b", "t2c"), "m2")
		h3 := th.Go("w3", hold(c, a, "t3c", "t3a"), "m3")
		th.Join(h1, "m4")
		th.Join(h2, "m5")
		th.Join(h3, "m6")
	}
	// A sequential schedule records all acquisitions without deadlocking.
	tr := record(t, prog, opts, sim.FirstEnabled{})
	cycles := Cycles(tr, Config{})
	if len(cycles) != 1 {
		t.Fatalf("found %d cycles, want 1: %v", len(cycles), cycles)
	}
	if got := len(cycles[0].Tuples); got != 3 {
		t.Fatalf("cycle length = %d, want 3", got)
	}
}

// TestMaxLengthBound: the same 3-cycle is invisible with MaxLength 2.
func TestMaxLengthBound(t *testing.T) {
	var a, b, c *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b, c = w.NewLock("A"), w.NewLock("B"), w.NewLock("C")
	}}
	prog := func(th *sim.Thread) {
		mk := func(first, second *sim.Lock, tag string) *sim.Thread {
			return th.Go(tag, func(u *sim.Thread) {
				u.Lock(first, tag+"1")
				u.Lock(second, tag+"2")
				u.Unlock(second, tag+"3")
				u.Unlock(first, tag+"4")
			}, "m-"+tag)
		}
		h1, h2, h3 := mk(a, b, "w1"), mk(b, c, "w2"), mk(c, a, "w3")
		th.Join(h1, "j1")
		th.Join(h2, "j2")
		th.Join(h3, "j3")
	}
	tr := record(t, prog, opts, sim.FirstEnabled{})
	if cycles := Cycles(tr, Config{MaxLength: 2}); len(cycles) != 0 {
		t.Fatalf("MaxLength=2 found %d cycles, want 0", len(cycles))
	}
	if cycles := Cycles(tr, Config{MaxLength: 3}); len(cycles) != 1 {
		t.Fatalf("MaxLength=3 found %d cycles, want 1", len(cycles))
	}
}

// TestNoDuplicateRotations: each cycle set is reported exactly once even
// when every rotation is discoverable.
func TestNoDuplicateRotations(t *testing.T) {
	tr := fig4Trace(t)
	cycles := Cycles(tr, Config{})
	seen := make(map[string]int)
	for _, c := range cycles {
		key := c.Signature()
		seen[key]++
		if seen[key] > 1 {
			t.Fatalf("cycle %s reported %d times", key, seen[key])
		}
	}
}

// TestGroupDefects: cycles sharing source locations collapse into one
// defect (paper Section 4.3).
func TestGroupDefects(t *testing.T) {
	var a, b *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b = w.NewLock("A"), w.NewLock("B")
	}}
	// Each worker performs the same inversion twice from the same source
	// sites on the same lock objects → multiple cycles, one defect.
	prog := func(th *sim.Thread) {
		left := func(u *sim.Thread) {
			for i := 0; i < 2; i++ {
				u.Lock(a, "L1")
				u.Lock(b, "L2")
				u.Unlock(b, "L3")
				u.Unlock(a, "L4")
			}
		}
		right := func(u *sim.Thread) {
			for i := 0; i < 2; i++ {
				u.Lock(b, "R1")
				u.Lock(a, "R2")
				u.Unlock(a, "R3")
				u.Unlock(b, "R4")
			}
		}
		h1 := th.Go("l", left, "m1")
		h2 := th.Go("r", right, "m2")
		th.Join(h1, "m3")
		th.Join(h2, "m4")
	}
	tr := record(t, prog, opts, sim.FirstEnabled{})
	cycles := Cycles(tr, Config{})
	if len(cycles) != 4 {
		t.Fatalf("found %d cycles, want 4 (2 iterations × 2 iterations)", len(cycles))
	}
	defects := GroupDefects(cycles)
	if len(defects) != 1 {
		t.Fatalf("grouped into %d defects, want 1: %v", len(defects), defects)
	}
	if defects[0].Signature != "L2+R2" {
		t.Fatalf("defect signature = %s, want L2+R2", defects[0].Signature)
	}
}

// TestAvgStackDepth: SL counts held plus pending acquisitions.
func TestAvgStackDepth(t *testing.T) {
	tr := fig4Trace(t)
	cycles := Cycles(tr, Config{})
	for _, c := range cycles {
		// main holds 1 and wants 1 (depth 2); t3 holds 2 wants 1 (depth 3).
		if got := c.AvgStackDepth(); got != 2.5 {
			t.Errorf("cycle %v SL = %v, want 2.5", c, got)
		}
	}
}
