// Package immunize provides runtime deadlock avoidance driven by WOLF's
// output, in the spirit of Dimmunix ("Deadlock Immunity: Enabling
// Systems to Defend Against Deadlocks", Jula et al., OSDI 2008), which
// the paper cites as motivation: once a deadlock has been detected and
// confirmed, future executions can defend against its signature.
//
// An Immunizer wraps any scheduling strategy. It knows the confirmed
// cycles' signatures — for each cycle member, the source site of the
// blocked acquisition and the site at which the guarding lock was
// acquired. Before letting a thread take the final step into a known
// signature (every other member already in position), the immunizer
// simply refuses to schedule that thread until the pattern dissolves,
// breaking the cyclic wait while preserving progress: if only avoided
// threads remain runnable, the least-recently-avoided one is released
// (the avoidance is best-effort, like Dimmunix's).
package immunize

import (
	"wolf/internal/core"
	"wolf/internal/detect"
	"wolf/sim"
)

// member is one position of a deadlock signature: the thread holds a
// lock acquired at HoldSite and blocks acquiring at WaitSite.
type member struct {
	holdSite string
	waitSite string
}

// signature is the site pattern of one confirmed cycle.
type signature struct {
	members []member
}

// Immunizer is a sim.Strategy wrapper that avoids known deadlock
// signatures.
type Immunizer struct {
	// Base picks among the threads the immunizer allows.
	Base sim.Strategy
	sigs []signature
	// Avoided counts scheduling decisions where a thread was held back.
	Avoided int
	// holdSites tracks, per thread, the sites of currently held locks
	// (maintained from events).
	holdSites map[string]map[string]string // thread → lock name → acquisition site
}

// New builds an immunizer from the confirmed defects of a WOLF report.
func New(base sim.Strategy, rep *core.Report) *Immunizer {
	im := &Immunizer{Base: base, holdSites: make(map[string]map[string]string)}
	for _, cr := range rep.Cycles {
		if cr.Class != core.Confirmed {
			continue
		}
		im.AddCycle(cr.Cycle)
	}
	return im
}

// AddCycle registers one cycle's signature.
func (im *Immunizer) AddCycle(c *detect.Cycle) {
	var sig signature
	for i, tp := range c.Tuples {
		// The guarding lock is the one the previous cycle member waits
		// for; record the site where this member acquired it.
		prev := c.Tuples[(i+len(c.Tuples)-1)%len(c.Tuples)]
		holdSite, _ := tp.SiteOf(prev.Lock)
		sig.members = append(sig.members, member{holdSite: holdSite, waitSite: tp.Site})
	}
	im.sigs = append(im.sigs, sig)
}

// Signatures returns the number of registered signatures.
func (im *Immunizer) Signatures() int { return len(im.sigs) }

// OnEvent maintains per-thread hold-site bookkeeping.
func (im *Immunizer) OnEvent(ev sim.Event) {
	name := ev.Thread.Name()
	switch ev.Op.Kind {
	case sim.OpLock, sim.OpWaitResume:
		if ev.Reentrant {
			return
		}
		m := im.holdSites[name]
		if m == nil {
			m = make(map[string]string)
			im.holdSites[name] = m
		}
		m[ev.Op.Lock.Name()] = ev.Op.Site
	case sim.OpUnlock, sim.OpWait:
		if ev.Reentrant {
			return
		}
		delete(im.holdSites[name], ev.Op.Lock.Name())
	}
}

// Pick filters out threads whose next acquisition would complete a known
// signature, then delegates to the base strategy.
func (im *Immunizer) Pick(w *sim.World, enabled []*sim.Thread) *sim.Thread {
	var safe []*sim.Thread
	for _, t := range enabled {
		if im.wouldComplete(w, t) {
			im.Avoided++
			continue
		}
		safe = append(safe, t)
	}
	if len(safe) == 0 {
		// Progress guarantee: all runnable threads are being avoided —
		// release them all to the base strategy rather than stalling.
		safe = enabled
	}
	return im.Base.Pick(w, safe)
}

// wouldComplete reports whether scheduling t's pending acquisition would
// complete the *hold pattern* of some known signature: t is about to
// acquire at a member's hold site while every other member's hold site
// is already covered by a distinct thread. This is the last moment the
// scheduler still has a say — once all holds are in place the cyclic
// waits form without any further scheduling decisions — so, like
// Dimmunix, the immunizer yields the acquisition until the pattern
// dissolves.
func (im *Immunizer) wouldComplete(w *sim.World, t *sim.Thread) bool {
	op := t.Pending()
	if op.Kind != sim.OpLock || t.Holds(op.Lock) {
		return false
	}
	for _, sig := range im.sigs {
		for i, m := range sig.members {
			if op.Site == m.holdSite && im.othersHold(w, sig, i, t.Name()) {
				return true
			}
		}
	}
	return false
}

// othersHold reports whether each member of sig other than index skip is
// matched by a distinct live thread (different from self) holding a lock
// acquired at that member's hold site.
func (im *Immunizer) othersHold(w *sim.World, sig signature, skip int, self string) bool {
	used := map[string]bool{self: true}
	for i, m := range sig.members {
		if i == skip {
			continue
		}
		found := false
		for _, t := range w.Threads() {
			name := t.Name()
			if used[name] || t.Terminated() {
				continue
			}
			if im.holdsSite(name, m.holdSite) {
				used[name] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// holdsSite reports whether thread holds a lock acquired at site.
func (im *Immunizer) holdsSite(thread, site string) bool {
	for _, s := range im.holdSites[thread] {
		if s == site {
			return true
		}
	}
	return false
}

// Protect runs the program n times under random schedules wrapped by an
// immunizer built from the report's confirmed cycles, and reports how
// many runs still deadlocked — the avoidance effectiveness measure.
// Run i uses schedule seed baseSeed + i.
func Protect(f sim.Factory, rep *core.Report, n int, baseSeed int64) (deadlocks int) {
	for i := 0; i < n; i++ {
		prog, opts := f()
		inst := New(sim.NewRandomStrategy(baseSeed+int64(i)), rep)
		opts.Listeners = append(opts.Listeners, inst)
		out := sim.Run(prog, inst, opts)
		if out.Kind == sim.Deadlocked {
			deadlocks++
		}
	}
	return deadlocks
}

// Baseline runs the program n times under plain random schedules,
// reporting the unprotected deadlock count for comparison.
func Baseline(f sim.Factory, n int, baseSeed int64) (deadlocks int) {
	for i := 0; i < n; i++ {
		prog, opts := f()
		out := sim.Run(prog, sim.NewRandomStrategy(baseSeed+int64(i)), opts)
		if out.Kind == sim.Deadlocked {
			deadlocks++
		}
	}
	return deadlocks
}
