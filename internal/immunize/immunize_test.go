package immunize

import (
	"testing"

	"wolf/internal/core"
	"wolf/sim"
)

// inversionFactory: the classic two-thread deadlock with a wide window
// (yields between the acquisitions), so unprotected random runs deadlock
// often.
func inversionFactory() (sim.Program, sim.Options) {
	var a, b *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b = w.NewLock("A"), w.NewLock("B")
	}}
	prog := func(th *sim.Thread) {
		h := th.Go("w", func(u *sim.Thread) {
			u.Lock(b, "w:1")
			u.Yield("w:2")
			u.Lock(a, "w:3")
			u.Unlock(a, "w:4")
			u.Unlock(b, "w:5")
		}, "m:0")
		th.Lock(a, "m:1")
		th.Yield("m:2")
		th.Lock(b, "m:3")
		th.Unlock(b, "m:4")
		th.Unlock(a, "m:5")
		th.Join(h, "m:6")
	}
	return prog, opts
}

// analyze produces a report with the confirmed inversion.
func analyze(t *testing.T, f sim.Factory) *core.Report {
	t.Helper()
	for seed := int64(1); seed < 100; seed++ {
		prog, opts := f()
		if out := sim.Run(prog, sim.NewRandomStrategy(seed), opts); out.Kind == sim.Terminated {
			rep := core.Analyze(f, core.Config{DetectSeeds: []int64{seed}, ReplayAttempts: 5})
			_, _, conf, _ := rep.CountDefects()
			if conf == 0 {
				t.Fatal("deadlock not confirmed")
			}
			return rep
		}
	}
	t.Fatal("no terminating seed")
	return nil
}

// TestImmunizerPreventsKnownDeadlock: unprotected runs deadlock
// frequently; protected runs never do, and all terminate.
func TestImmunizerPreventsKnownDeadlock(t *testing.T) {
	rep := analyze(t, inversionFactory)
	const runs = 100
	base := Baseline(inversionFactory, runs, 1000)
	if base < runs/10 {
		t.Fatalf("baseline deadlocked only %d/%d; workload too tame for the test", base, runs)
	}
	prot := Protect(inversionFactory, rep, runs, 1000)
	if prot != 0 {
		t.Fatalf("immunized runs deadlocked %d/%d (baseline %d)", prot, runs, base)
	}
}

// TestImmunizerPreservesCompletion: protected runs terminate (no
// starvation from over-avoidance).
func TestImmunizerPreservesCompletion(t *testing.T) {
	rep := analyze(t, inversionFactory)
	for i := int64(0); i < 50; i++ {
		prog, opts := inversionFactory()
		inst := New(sim.NewRandomStrategy(2000+i), rep)
		opts.Listeners = append(opts.Listeners, inst)
		out := sim.Run(prog, inst, opts)
		if out.Kind != sim.Terminated {
			t.Fatalf("seed %d: outcome = %v", i, out)
		}
	}
}

// TestImmunizerOnFigure2: protects against all confirmed map-equals
// deadlocks at once.
func TestImmunizerOnFigure2(t *testing.T) {
	factory := func() (sim.Program, sim.Options) {
		var m1, m2 *sim.Lock
		opts := sim.Options{Setup: func(w *sim.World) {
			m1, m2 = w.NewLock("mutex#SM1"), w.NewLock("mutex#SM2")
		}}
		equals := func(mine, other *sim.Lock) sim.Program {
			return func(u *sim.Thread) {
				u.Lock(mine, "2024")
				u.Lock(other, "509")
				u.Unlock(other, "509u")
				u.Lock(other, "522")
				u.Unlock(other, "522u")
				u.Unlock(mine, "2025")
			}
		}
		prog := func(th *sim.Thread) {
			h1 := th.Go("t1", equals(m1, m2), "s1")
			h2 := th.Go("t2", equals(m2, m1), "s2")
			th.Join(h1, "j1")
			th.Join(h2, "j2")
		}
		return prog, opts
	}
	rep := analyze(t, factory)
	if im := New(sim.FirstEnabled{}, rep); im.Signatures() < 2 {
		t.Fatalf("signatures = %d, want >= 2", im.Signatures())
	}
	const runs = 100
	base := Baseline(factory, runs, 500)
	prot := Protect(factory, rep, runs, 500)
	if prot != 0 {
		t.Fatalf("immunized runs deadlocked %d/%d (baseline %d)", prot, runs, base)
	}
	if base == 0 {
		t.Skip("baseline never deadlocked; nothing demonstrated")
	}
}

// TestImmunizerAvoidanceCounter: avoidance actually fires on schedules
// that would have deadlocked.
func TestImmunizerAvoidanceCounter(t *testing.T) {
	rep := analyze(t, inversionFactory)
	fired := false
	for i := int64(0); i < 50 && !fired; i++ {
		prog, opts := inversionFactory()
		inst := New(sim.NewRandomStrategy(3000+i), rep)
		opts.Listeners = append(opts.Listeners, inst)
		sim.Run(prog, inst, opts)
		fired = inst.Avoided > 0
	}
	if !fired {
		t.Fatal("avoidance never fired in 50 runs")
	}
}
