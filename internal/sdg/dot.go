package sdg

import (
	"fmt"
	"strings"
)

// DOT renders the live graph in Graphviz dot format for visual
// inspection of a defect's synchronization dependencies. Vertices are
// grouped into per-thread clusters in program order; edge styles encode
// the kinds (type-D solid red, type-C dashed blue, type-P gray, type-V
// dotted green).
func (g *Graph) DOT(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph Gs {\n")
	fmt.Fprintf(&sb, "  label=%q; rankdir=TB; node [shape=box, fontsize=10];\n", title)

	// Cluster vertices by thread, in insertion (trace) order.
	cluster := 0
	for thread, ids := range g.byThread {
		live := make([]int, 0, len(ids))
		for _, id := range ids {
			if !g.dead[id] {
				live = append(live, id)
			}
		}
		if len(live) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=%q; color=gray;\n", cluster, thread)
		cluster++
		for _, id := range live {
			v := g.verts[id]
			fmt.Fprintf(&sb, "    n%d [label=%q];\n", id, fmt.Sprintf("%s#%d\n%s", v.Key.Site, v.Key.Occ, v.Lock))
		}
		fmt.Fprintf(&sb, "  }\n")
	}

	for u := range g.verts {
		if g.dead[u] {
			continue
		}
		for ei := g.outHead[u]; ei >= 0; ei = g.edges[ei].next {
			e := g.edges[ei]
			if g.dead[e.to] {
				continue
			}
			fmt.Fprintf(&sb, "  n%d -> n%d [%s];\n", u, e.to, dotStyle(e.kind))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// dotStyle maps an edge kind mask to Graphviz attributes; the dominant
// kind (D > V > C > P) picks the style.
func dotStyle(k Kind) string {
	switch {
	case k&D != 0:
		return `color=red, penwidth=2, label="D"`
	case k&V != 0:
		return `color=darkgreen, style=dotted, label="V"`
	case k&C != 0:
		return `color=blue, style=dashed, label="C"`
	default:
		return `color=gray`
	}
}
