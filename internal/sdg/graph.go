package sdg

import (
	"fmt"
	"sort"
	"strings"

	"wolf/internal/trace"
)

// edgeRec is one pooled adjacency record: a link in a vertex's out- or
// in-list. Records live in a single per-graph slice instead of one
// slice per vertex, which keeps a build to a handful of allocations
// even for the thousands of program-order edges long prefixes produce.
type edgeRec struct {
	to   int32
	next int32 // index of the next record in the same list, -1 at the end
	kind Kind
}

// Graph is a synchronization dependency graph. Vertices are interned to
// dense integers so construction and per-replay cloning stay cheap even
// for the large graphs long traces produce (the paper's Vs statistic
// reaches the thousands).
type Graph struct {
	ids      map[trace.Key]int
	verts    []Vertex
	dead     []bool
	edges    []edgeRec // shared pool for out- and in-lists
	outHead  []int32
	outTail  []int32
	inHead   []int32
	inTail   []int32
	byThread map[string][]int
	live     int
}

// newGraph returns an empty graph sized for about n vertices.
func newGraph(n int) *Graph {
	return &Graph{
		ids:      make(map[trace.Key]int, n),
		verts:    make([]Vertex, 0, n),
		dead:     make([]bool, 0, n),
		edges:    make([]edgeRec, 0, 4*n),
		outHead:  make([]int32, 0, n),
		outTail:  make([]int32, 0, n),
		inHead:   make([]int32, 0, n),
		inTail:   make([]int32, 0, n),
		byThread: make(map[string][]int, 4),
	}
}

// intern returns the id for key, creating the vertex if needed.
func (g *Graph) intern(key trace.Key, lock string) int {
	if id, ok := g.ids[key]; ok {
		return id
	}
	id := len(g.verts)
	g.ids[key] = id
	g.verts = append(g.verts, Vertex{Key: key, Lock: lock})
	g.dead = append(g.dead, false)
	g.outHead = append(g.outHead, -1)
	g.outTail = append(g.outTail, -1)
	g.inHead = append(g.inHead, -1)
	g.inTail = append(g.inTail, -1)
	g.byThread[key.Thread] = append(g.byThread[key.Thread], id)
	g.live++
	return id
}

// internData returns the id for a data event's vertex, creating it with
// the event's variable as the "lock" label.
func (g *Graph) internData(de *trace.DataEvent) int {
	return g.intern(de.Key, "var:"+de.Var)
}

// addEdgeIDs records u → v, merging kinds; self edges are ignored.
func (g *Graph) addEdgeIDs(u, v int, k Kind) {
	if u == v {
		return
	}
	for ei := g.outHead[u]; ei >= 0; ei = g.edges[ei].next {
		if int(g.edges[ei].to) == v {
			g.edges[ei].kind |= k
			for ej := g.inHead[v]; ej >= 0; ej = g.edges[ej].next {
				if int(g.edges[ej].to) == u {
					g.edges[ej].kind |= k
					break
				}
			}
			return
		}
	}
	g.appendRec(g.outHead, g.outTail, u, edgeRec{to: int32(v), next: -1, kind: k})
	g.appendRec(g.inHead, g.inTail, v, edgeRec{to: int32(u), next: -1, kind: k})
}

// appendRec links a new record at the tail of vertex at's list, keeping
// iteration in insertion order (replay steering and dot output depend
// on it).
func (g *Graph) appendRec(head, tail []int32, at int, rec edgeRec) {
	ei := int32(len(g.edges))
	g.edges = append(g.edges, rec)
	if tail[at] >= 0 {
		g.edges[tail[at]].next = ei
	} else {
		head[at] = ei
	}
	tail[at] = ei
}

// Size returns the number of live vertices (the paper's Vs statistic).
func (g *Graph) Size() int { return g.live }

// Edges returns the number of distinct live (u, v) pairs.
func (g *Graph) Edges() int {
	n := 0
	for u := range g.verts {
		if g.dead[u] {
			continue
		}
		for ei := g.outHead[u]; ei >= 0; ei = g.edges[ei].next {
			if !g.dead[g.edges[ei].to] {
				n++
			}
		}
	}
	return n
}

// Empty reports whether no vertices remain.
func (g *Graph) Empty() bool { return g.live == 0 }

// Vertex returns the live vertex at key, or nil. The pointer aliases
// graph storage and is valid until the graph is released.
func (g *Graph) Vertex(key trace.Key) *Vertex {
	if id, ok := g.ids[key]; ok && !g.dead[id] {
		return &g.verts[id]
	}
	return nil
}

// HasEdge reports whether u → v exists (live) with any kind in mask.
func (g *Graph) HasEdge(u, v trace.Key, mask Kind) bool {
	ui, ok := g.ids[u]
	if !ok || g.dead[ui] {
		return false
	}
	vi, ok := g.ids[v]
	if !ok || g.dead[vi] {
		return false
	}
	for ei := g.outHead[ui]; ei >= 0; ei = g.edges[ei].next {
		if int(g.edges[ei].to) == vi {
			return g.edges[ei].kind&mask != 0
		}
	}
	return false
}

// Cyclic reports whether Gs contains a cycle, which proves the
// associated potential deadlock is a false positive (Algorithm 3,
// line 30).
func (g *Graph) Cyclic() bool { return len(g.FindCycle()) > 0 }

// FindCycle returns the vertices of one cycle in order, or nil if the
// graph is acyclic.
func (g *Graph) FindCycle() []trace.Key {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, len(g.verts))
	parent := make([]int, len(g.verts))
	var cycle []trace.Key

	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for ei := g.outHead[u]; ei >= 0; ei = g.edges[ei].next {
			v := int(g.edges[ei].to)
			if g.dead[v] {
				continue
			}
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Back edge u → v closes a cycle v … u.
				var ids []int
				ids = append(ids, v)
				for x := u; x != v; x = parent[x] {
					ids = append(ids, x)
				}
				for i := len(ids) - 1; i >= 0; i-- {
					cycle = append(cycle, g.verts[ids[i]].Key)
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, u := range g.sortedIDs() {
		if color[u] == white {
			if dfs(u) {
				return cycle
			}
		}
	}
	return nil
}

// sortedIDs returns live vertex ids in deterministic key order.
func (g *Graph) sortedIDs() []int {
	out := make([]int, 0, g.live)
	for id := range g.verts {
		if !g.dead[id] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return g.verts[out[i]].Key.Less(g.verts[out[j]].Key)
	})
	return out
}

// CrossThreadBlockers returns the source vertices of live edges into v
// from other threads — the dependencies that must be satisfied before
// the acquisition at v may execute (Algorithm 4, line 18).
func (g *Graph) CrossThreadBlockers(v trace.Key) []trace.Key {
	vi, ok := g.ids[v]
	if !ok || g.dead[vi] {
		return nil
	}
	var out []trace.Key
	for ei := g.inHead[vi]; ei >= 0; ei = g.edges[ei].next {
		u := int(g.edges[ei].to)
		if !g.dead[u] && g.verts[u].Key.Thread != v.Thread {
			out = append(out, g.verts[u].Key)
		}
	}
	return out
}

// Blocked reports whether the acquisition at v must wait for another
// thread's acquisition.
func (g *Graph) Blocked(v trace.Key) bool {
	vi, ok := g.ids[v]
	if !ok || g.dead[vi] {
		return false
	}
	for ei := g.inHead[vi]; ei >= 0; ei = g.edges[ei].next {
		u := int(g.edges[ei].to)
		if !g.dead[u] && g.verts[u].Key.Thread != v.Thread {
			return true
		}
	}
	return false
}

// removeID tombstones a vertex; incident edges die with it because
// traversals skip dead endpoints.
func (g *Graph) removeID(id int) {
	if g.dead[id] {
		return
	}
	g.dead[id] = true
	g.live--
}

// Executed informs the graph that the acquisition at key ran: the vertex
// and every vertex that reaches it are removed (Algorithm 4, lines
// 22-23). Ancestors either executed already or were skipped by divergent
// control flow — the paper's vertex-skipping rule — so they are stale
// either way. A key with no live vertex is a no-op.
func (g *Graph) Executed(key trace.Key) {
	id, ok := g.ids[key]
	if !ok || g.dead[id] {
		return
	}
	stack := []int{id}
	seen := make([]bool, len(g.verts))
	seen[id] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for ei := g.inHead[x]; ei >= 0; ei = g.edges[ei].next {
			u := int(g.edges[ei].to)
			if !seen[u] && !g.dead[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
		g.removeID(x)
	}
}

// RemoveThread deletes every remaining vertex of thread (without the
// ancestor cascade): the thread terminated, so its pending acquisitions
// can never execute and must not block other threads forever.
func (g *Graph) RemoveThread(thread string) {
	for _, id := range g.byThread[thread] {
		g.removeID(id)
	}
}

// ThreadVertices returns the live vertices of thread in trace order.
func (g *Graph) ThreadVertices(thread string) []trace.Key {
	var out []trace.Key
	for _, id := range g.byThread[thread] {
		if !g.dead[id] {
			out = append(out, g.verts[id].Key)
		}
	}
	return out
}

// Clone returns an independent copy for one replay attempt. Vertex and
// edge storage is shared: removal only tombstones entries in the dead
// bitmap, and addEdgeIDs is never called after Build, so sharing is
// safe; only the dead bitmap and live count are duplicated.
func (g *Graph) Clone() *Graph {
	return &Graph{
		ids:      g.ids,
		verts:    g.verts,
		dead:     append([]bool(nil), g.dead...),
		edges:    g.edges,
		outHead:  g.outHead,
		outTail:  g.outTail,
		inHead:   g.inHead,
		inTail:   g.inTail,
		byThread: g.byThread,
		live:     g.live,
	}
}

// String renders live vertices and edges deterministically.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, id := range g.sortedIDs() {
		fmt.Fprintf(&sb, "%v", &g.verts[id])
		var es []string
		for ei := g.outHead[id]; ei >= 0; ei = g.edges[ei].next {
			e := g.edges[ei]
			if !g.dead[e.to] {
				es = append(es, fmt.Sprintf("-%v->%v", e.kind, g.verts[e.to].Key))
			}
		}
		sort.Strings(es)
		for _, e := range es {
			sb.WriteString(" ")
			sb.WriteString(e)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
