package sdg

import (
	"fmt"
	"sort"
	"strings"

	"wolf/internal/trace"
)

// edge is one adjacency entry.
type edge struct {
	to   int
	kind Kind
}

// Graph is a synchronization dependency graph. Vertices are interned to
// dense integers so construction and per-replay cloning stay cheap even
// for the large graphs long traces produce (the paper's Vs statistic
// reaches the thousands).
type Graph struct {
	ids      map[trace.Key]int
	verts    []Vertex
	dead     []bool
	out, in  [][]edge
	byThread map[string][]int
	live     int
}

// newGraph returns an empty graph sized for about n vertices.
func newGraph(n int) *Graph {
	return &Graph{
		ids:      make(map[trace.Key]int, n),
		verts:    make([]Vertex, 0, n),
		dead:     make([]bool, 0, n),
		out:      make([][]edge, 0, n),
		in:       make([][]edge, 0, n),
		byThread: make(map[string][]int, 4),
	}
}

// intern returns the id for key, creating the vertex if needed.
func (g *Graph) intern(key trace.Key, lock string) int {
	if id, ok := g.ids[key]; ok {
		return id
	}
	id := len(g.verts)
	g.ids[key] = id
	g.verts = append(g.verts, Vertex{Key: key, Lock: lock})
	g.dead = append(g.dead, false)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.byThread[key.Thread] = append(g.byThread[key.Thread], id)
	g.live++
	return id
}

// internData returns the id for a data event's vertex, creating it with
// the event's variable as the "lock" label.
func (g *Graph) internData(de *trace.DataEvent) int {
	return g.intern(de.Key, "var:"+de.Var)
}

// addEdgeIDs records u → v, merging kinds; self edges are ignored.
func (g *Graph) addEdgeIDs(u, v int, k Kind) {
	if u == v {
		return
	}
	for i := range g.out[u] {
		if g.out[u][i].to == v {
			g.out[u][i].kind |= k
			for j := range g.in[v] {
				if g.in[v][j].to == u {
					g.in[v][j].kind |= k
					break
				}
			}
			return
		}
	}
	g.out[u] = append(g.out[u], edge{to: v, kind: k})
	g.in[v] = append(g.in[v], edge{to: u, kind: k})
}

// Size returns the number of live vertices (the paper's Vs statistic).
func (g *Graph) Size() int { return g.live }

// Edges returns the number of distinct live (u, v) pairs.
func (g *Graph) Edges() int {
	n := 0
	for u, es := range g.out {
		if g.dead[u] {
			continue
		}
		for _, e := range es {
			if !g.dead[e.to] {
				n++
			}
		}
	}
	return n
}

// Empty reports whether no vertices remain.
func (g *Graph) Empty() bool { return g.live == 0 }

// Vertex returns the live vertex at key, or nil. The pointer aliases
// graph storage and is valid until the graph is released.
func (g *Graph) Vertex(key trace.Key) *Vertex {
	if id, ok := g.ids[key]; ok && !g.dead[id] {
		return &g.verts[id]
	}
	return nil
}

// HasEdge reports whether u → v exists (live) with any kind in mask.
func (g *Graph) HasEdge(u, v trace.Key, mask Kind) bool {
	ui, ok := g.ids[u]
	if !ok || g.dead[ui] {
		return false
	}
	vi, ok := g.ids[v]
	if !ok || g.dead[vi] {
		return false
	}
	for _, e := range g.out[ui] {
		if e.to == vi {
			return e.kind&mask != 0
		}
	}
	return false
}

// Cyclic reports whether Gs contains a cycle, which proves the
// associated potential deadlock is a false positive (Algorithm 3,
// line 30).
func (g *Graph) Cyclic() bool { return len(g.FindCycle()) > 0 }

// FindCycle returns the vertices of one cycle in order, or nil if the
// graph is acyclic.
func (g *Graph) FindCycle() []trace.Key {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, len(g.verts))
	parent := make([]int, len(g.verts))
	var cycle []trace.Key

	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, e := range g.out[u] {
			v := e.to
			if g.dead[v] {
				continue
			}
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Back edge u → v closes a cycle v … u.
				var ids []int
				ids = append(ids, v)
				for x := u; x != v; x = parent[x] {
					ids = append(ids, x)
				}
				for i := len(ids) - 1; i >= 0; i-- {
					cycle = append(cycle, g.verts[ids[i]].Key)
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, u := range g.sortedIDs() {
		if color[u] == white {
			if dfs(u) {
				return cycle
			}
		}
	}
	return nil
}

// sortedIDs returns live vertex ids in deterministic key order.
func (g *Graph) sortedIDs() []int {
	out := make([]int, 0, g.live)
	for id := range g.verts {
		if !g.dead[id] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return g.verts[out[i]].Key.Less(g.verts[out[j]].Key)
	})
	return out
}

// CrossThreadBlockers returns the source vertices of live edges into v
// from other threads — the dependencies that must be satisfied before
// the acquisition at v may execute (Algorithm 4, line 18).
func (g *Graph) CrossThreadBlockers(v trace.Key) []trace.Key {
	vi, ok := g.ids[v]
	if !ok || g.dead[vi] {
		return nil
	}
	var out []trace.Key
	for _, e := range g.in[vi] {
		if !g.dead[e.to] && g.verts[e.to].Key.Thread != v.Thread {
			out = append(out, g.verts[e.to].Key)
		}
	}
	return out
}

// Blocked reports whether the acquisition at v must wait for another
// thread's acquisition.
func (g *Graph) Blocked(v trace.Key) bool {
	vi, ok := g.ids[v]
	if !ok || g.dead[vi] {
		return false
	}
	for _, e := range g.in[vi] {
		if !g.dead[e.to] && g.verts[e.to].Key.Thread != v.Thread {
			return true
		}
	}
	return false
}

// removeID tombstones a vertex; incident edges die with it because
// traversals skip dead endpoints.
func (g *Graph) removeID(id int) {
	if g.dead[id] {
		return
	}
	g.dead[id] = true
	g.live--
}

// Executed informs the graph that the acquisition at key ran: the vertex
// and every vertex that reaches it are removed (Algorithm 4, lines
// 22-23). Ancestors either executed already or were skipped by divergent
// control flow — the paper's vertex-skipping rule — so they are stale
// either way. A key with no live vertex is a no-op.
func (g *Graph) Executed(key trace.Key) {
	id, ok := g.ids[key]
	if !ok || g.dead[id] {
		return
	}
	stack := []int{id}
	seen := make([]bool, len(g.verts))
	seen[id] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.in[x] {
			if !seen[e.to] && !g.dead[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
		g.removeID(x)
	}
}

// RemoveThread deletes every remaining vertex of thread (without the
// ancestor cascade): the thread terminated, so its pending acquisitions
// can never execute and must not block other threads forever.
func (g *Graph) RemoveThread(thread string) {
	for _, id := range g.byThread[thread] {
		g.removeID(id)
	}
}

// ThreadVertices returns the live vertices of thread in trace order.
func (g *Graph) ThreadVertices(thread string) []trace.Key {
	var out []trace.Key
	for _, id := range g.byThread[thread] {
		if !g.dead[id] {
			out = append(out, g.verts[id].Key)
		}
	}
	return out
}

// Clone returns an independent copy for one replay attempt. Vertex and
// edge storage is shared: removal only tombstones entries in the dead
// bitmap, and addEdgeIDs is never called after Build, so sharing is
// safe; only the dead bitmap and live count are duplicated.
func (g *Graph) Clone() *Graph {
	return &Graph{
		ids:      g.ids,
		verts:    g.verts,
		dead:     append([]bool(nil), g.dead...),
		out:      g.out,
		in:       g.in,
		byThread: g.byThread,
		live:     g.live,
	}
}

// String renders live vertices and edges deterministically.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, id := range g.sortedIDs() {
		fmt.Fprintf(&sb, "%v", &g.verts[id])
		var es []string
		for _, e := range g.out[id] {
			if !g.dead[e.to] {
				es = append(es, fmt.Sprintf("-%v->%v", e.kind, g.verts[e.to].Key))
			}
		}
		sort.Strings(es)
		for _, e := range es {
			sb.WriteString(" ")
			sb.WriteString(e)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
