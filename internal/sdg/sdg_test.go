package sdg

import (
	"strings"
	"testing"

	"wolf/internal/detect"
	"wolf/internal/trace"
	"wolf/internal/vclock"
	"wolf/sim"
)

// record runs prog under the extended recorder.
func record(t *testing.T, prog sim.Program, opts sim.Options, s sim.Strategy) *trace.Trace {
	t.Helper()
	vt := vclock.NewTracker()
	rec := trace.NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	out := sim.Run(prog, s, opts)
	if out.Kind == sim.ProgramError {
		t.Fatalf("outcome = %v", out)
	}
	return rec.Finish(0)
}

// fig4 records the paper's Figure 4 program sequentially and returns the
// trace plus the surviving cycle θ2 (main@19 / t3@33).
func fig4(t *testing.T) (*trace.Trace, *detect.Cycle) {
	t.Helper()
	var l1, l2, l3 *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		l1, l2, l3 = w.NewLock("l1"), w.NewLock("l2"), w.NewLock("l3")
	}}
	t3body := func(u *sim.Thread) {
		u.Lock(l3, "31")
		u.Lock(l2, "32")
		u.Lock(l1, "33")
		u.Unlock(l1, "34")
		u.Unlock(l2, "35")
		u.Unlock(l3, "36")
	}
	prog := func(th *sim.Thread) {
		th.Lock(l1, "11")
		th.Lock(l2, "12")
		th.Unlock(l2, "13")
		th.Unlock(l1, "14")
		th.Go("t2", func(u *sim.Thread) { u.Go("t3", t3body, "21") }, "15")
		th.Lock(l3, "16")
		th.Unlock(l3, "17")
		th.Lock(l1, "18")
		th.Lock(l2, "19")
		th.Unlock(l2, "20")
		th.Unlock(l1, "21")
	}
	tr := record(t, prog, opts, sim.FirstEnabled{})
	for _, c := range detect.Cycles(tr, detect.Config{}) {
		if c.Signature() == "19+33" {
			return tr, c
		}
	}
	t.Fatal("θ2 not found")
	return nil, nil
}

// Stable keys of the paper's indices in our encoding: each site occurs
// once per thread in Figure 4.
var (
	ix11 = trace.Key{Thread: "main", Site: "11", Occ: 1}
	ix12 = trace.Key{Thread: "main", Site: "12", Occ: 1}
	ix16 = trace.Key{Thread: "main", Site: "16", Occ: 1}
	ix18 = trace.Key{Thread: "main", Site: "18", Occ: 1}
	ix19 = trace.Key{Thread: "main", Site: "19", Occ: 1}
	ix31 = trace.Key{Thread: "main/t2.0/t3.0", Site: "31", Occ: 1}
	ix32 = trace.Key{Thread: "main/t2.0/t3.0", Site: "32", Occ: 1}
	ix33 = trace.Key{Thread: "main/t2.0/t3.0", Site: "33", Occ: 1}
)

// TestFigure7aEdges reproduces the paper's Figure 7(a) exactly: the Gs of
// θ2 has type-D edges (18,33) and (32,19), type-C edges (16,31), (12,32)
// and (11,33), and the six program-order edges.
func TestFigure7aEdges(t *testing.T) {
	tr, c := fig4(t)
	g := Build(c, tr)
	type e struct {
		u, v trace.Key
		k    Kind
	}
	want := []e{
		{ix18, ix33, D}, {ix32, ix19, D},
		{ix16, ix31, C}, {ix12, ix32, C}, {ix11, ix33, C},
		{ix11, ix12, P}, {ix12, ix16, P}, {ix16, ix18, P}, {ix18, ix19, P},
		{ix31, ix32, P}, {ix32, ix33, P},
	}
	for _, w := range want {
		if !g.HasEdge(w.u, w.v, w.k) {
			t.Errorf("missing type-%v edge (%v,%v)\n%v", w.k, w.u, w.v, g)
		}
	}
	if g.Size() != 8 {
		t.Errorf("|Vs| = %d, want 8 (11,12,16,18,19,31,32,33)\n%v", g.Size(), g)
	}
	if g.Edges() != len(want) {
		t.Errorf("edges = %d, want %d\n%v", g.Edges(), len(want), g)
	}
	if g.Cyclic() {
		t.Errorf("Figure 7(a) graph must be acyclic:\n%v", g)
	}
}

// figure2 builds the paper's Figure 2 scenario: two threads calling
// equals on two synchronized maps in opposite order; size() acquires the
// other map's mutex before the per-entry get() does.
func figure2(t *testing.T) (*trace.Trace, []*detect.Cycle) {
	t.Helper()
	var m1, m2 *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		m1, m2 = w.NewLock("SM1.mutex"), w.NewLock("SM2.mutex")
	}}
	equals := func(mine, other *sim.Lock) sim.Program {
		return func(u *sim.Thread) {
			u.Lock(mine, "2024")
			u.Lock(other, "509") // t.size()
			u.Unlock(other, "509u")
			u.Lock(other, "522") // value.equals(t.get())
			u.Unlock(other, "522u")
			u.Unlock(mine, "2025")
		}
	}
	prog := func(th *sim.Thread) {
		h1 := th.Go("t1", equals(m1, m2), "s1")
		h2 := th.Go("t2", equals(m2, m1), "s2")
		th.Join(h1, "j1")
		th.Join(h2, "j2")
	}
	tr := record(t, prog, opts, sim.FirstEnabled{})
	return tr, detect.Cycles(tr, detect.Config{})
}

// TestFigure2FourCycles: the detector reports θ1..θ4 (both threads can
// block at 509 or 522).
func TestFigure2FourCycles(t *testing.T) {
	_, cycles := figure2(t)
	if len(cycles) != 4 {
		t.Fatalf("cycles = %d, want 4: %v", len(cycles), cycles)
	}
	defects := detect.GroupDefects(cycles)
	if len(defects) != 3 {
		t.Fatalf("defects = %d, want 3 (509+509, 509+522, 522+522)", len(defects))
	}
}

// TestFigure7bCyclicGs: θ4 (both threads blocking at 522) has a cyclic
// Gs and is therefore a false positive, while θ1 (both at 509) is
// acyclic.
func TestFigure7bCyclicGs(t *testing.T) {
	tr, cycles := figure2(t)
	verdicts := make(map[string]bool)
	for _, c := range cycles {
		g := Build(c, tr)
		verdicts[c.Signature()] = g.Cyclic()
	}
	if !verdicts["522+522"] {
		t.Error("θ4 (522+522) Gs must be cyclic (paper Figure 7(b))")
	}
	if verdicts["509+509"] {
		t.Error("θ1 (509+509) Gs must be acyclic")
	}
	// θ2/θ3 (509+522 mixed) are real deadlocks: acyclic.
	if verdicts["509+522"] {
		t.Error("θ2/θ3 (509+522) Gs must be acyclic")
	}
}

// TestBlockedAndRemoval walks the Replayer's bookkeeping through the
// paper's Section 3.5 narrative.
func TestBlockedAndRemoval(t *testing.T) {
	tr, c := fig4(t)
	g := Build(c, tr)
	// Initially t3's first acquisition (31) is blocked by (16,31).
	if !g.Blocked(ix31) {
		t.Fatalf("31 should be blocked by 16:\n%v", g)
	}
	// main executes 11 and 12: their vertices (and ancestors) go away,
	// together with edges (11,33), (12,32).
	g.Executed(ix11)
	g.Executed(ix12)
	if g.Vertex(ix11) != nil || g.Vertex(ix12) != nil {
		t.Fatal("11/12 not removed")
	}
	if g.Blocked(ix32) {
		t.Fatalf("32 still blocked after 12 executed:\n%v", g)
	}
	if !g.Blocked(ix31) {
		t.Fatal("31 should still be blocked by 16")
	}
	// main executes 16: t3 becomes free to run 31.
	g.Executed(ix16)
	if g.Blocked(ix31) {
		t.Fatalf("31 still blocked after 16:\n%v", g)
	}
	// 33 is still blocked (by 18), 19 still blocked (by 32).
	if !g.Blocked(ix33) || !g.Blocked(ix19) {
		t.Fatalf("33/19 should remain blocked:\n%v", g)
	}
	// t3 executes 31 and 32; then 19 becomes unblocked.
	g.Executed(ix31)
	g.Executed(ix32)
	if g.Blocked(ix19) {
		t.Fatalf("19 still blocked after 32:\n%v", g)
	}
	// main executes 18: 33 becomes unblocked; the deadlock may form.
	g.Executed(ix18)
	if g.Blocked(ix33) {
		t.Fatalf("33 still blocked after 18:\n%v", g)
	}
}

// TestSkippedVertexRemoval: executing a later acquisition removes skipped
// earlier vertices and their ancestors via the program-order chain,
// releasing waiters (the paper's control-flow divergence handling: if
// main skips 16, t3 must not wait for it forever).
func TestSkippedVertexRemoval(t *testing.T) {
	tr, c := fig4(t)
	g := Build(c, tr)
	// main jumps straight to 18, skipping 16: 16 reaches 18 through the
	// type-P chain and is removed as an ancestor.
	g.Executed(ix18)
	if g.Vertex(ix16) != nil {
		t.Fatal("skipped vertex 16 not removed")
	}
	if g.Blocked(ix31) {
		t.Fatalf("31 still blocked after 16 was skipped:\n%v", g)
	}
}

// TestRemoveThread: a terminated thread's vertices vanish, unblocking
// waiters, but other threads' vertices stay.
func TestRemoveThread(t *testing.T) {
	tr, c := fig4(t)
	g := Build(c, tr)
	g.RemoveThread("main")
	if g.Vertex(ix11) != nil || g.Vertex(ix19) != nil {
		t.Fatal("main vertices not removed")
	}
	if g.Vertex(ix31) == nil || g.Vertex(ix33) == nil {
		t.Fatal("t3 vertices wrongly removed")
	}
	if g.Blocked(ix31) || g.Blocked(ix33) {
		t.Fatalf("t3 vertices still blocked after main removal:\n%v", g)
	}
}

// TestRemoveWithAncestorsCrossThread: removing an executed vertex prunes
// cross-thread ancestors too.
func TestRemoveWithAncestorsCrossThread(t *testing.T) {
	tr, c := fig4(t)
	g := Build(c, tr)
	// Every vertex except the sink 19 reaches 33 (directly or through
	// the P chains and the D edge (18,33)).
	g.Executed(ix33)
	if g.Size() != 1 || g.Vertex(ix19) == nil {
		t.Fatalf("after removing 33 with ancestors, want only 19 left:\n%v", g)
	}
}

// TestCloneIsIndependent: mutating a clone leaves the original intact.
func TestCloneIsIndependent(t *testing.T) {
	tr, c := fig4(t)
	g := Build(c, tr)
	n := g.Size()
	cl := g.Clone()
	cl.Executed(ix19)
	if g.Size() != n {
		t.Fatalf("original mutated: size %d → %d", n, g.Size())
	}
	if cl.Size() == n {
		t.Fatal("clone not mutated")
	}
}

// TestBuildKindsAblation: without type-C edges the graph loses the
// context constraints but keeps D and P.
func TestBuildKindsAblation(t *testing.T) {
	tr, c := fig4(t)
	g := BuildKinds(c, tr, D|P)
	if g.HasEdge(ix16, ix31, C) {
		t.Fatal("type-C edge present in D|P build")
	}
	if !g.HasEdge(ix18, ix33, D) || !g.HasEdge(ix31, ix32, P) {
		t.Fatal("D/P edges missing in D|P build")
	}
}

// TestCrossThreadBlockers lists exactly the foreign dependencies.
func TestCrossThreadBlockers(t *testing.T) {
	tr, c := fig4(t)
	g := Build(c, tr)
	bs := g.CrossThreadBlockers(ix33)
	seen := make(map[trace.Key]bool)
	for _, b := range bs {
		seen[b] = true
	}
	if !seen[ix18] || !seen[ix11] || len(bs) != 2 {
		t.Fatalf("blockers of 33 = %v, want {18, 11}", bs)
	}
}

// TestDOTRendering: the dot export mentions every live vertex and edge
// kind, and none of the removed ones.
func TestDOTRendering(t *testing.T) {
	tr, c := fig4(t)
	g := Build(c, tr)
	dot := g.DOT("theta2")
	for _, want := range []string{"digraph Gs", "theta2", "cluster_", `label="D"`, `label="C"`, "19#1", "33#1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Remove main's vertices: they must vanish from the rendering.
	g.RemoveThread("main")
	dot = g.DOT("pruned")
	if strings.Contains(dot, "19#1") {
		t.Error("removed vertex still rendered")
	}
	if !strings.Contains(dot, "33#1") {
		t.Error("surviving vertex not rendered")
	}
}
