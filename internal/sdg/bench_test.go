package sdg

import (
	"testing"

	"wolf/internal/detect"
	"wolf/internal/trace"
	"wolf/internal/vclock"
	"wolf/sim"
)

// benchTrace builds a trace with long prefixes: two threads doing many
// nested sections before an inverted pair.
func benchTrace(b *testing.B) (*trace.Trace, []*detect.Cycle) {
	b.Helper()
	var res, ctx *sim.Lock
	var noise []*sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		res, ctx = w.NewLock("res"), w.NewLock("ctx")
		for i := 0; i < 4; i++ {
			noise = append(noise, w.NewLock("noise"+string(rune('0'+i))))
		}
	}}
	body := func(first, second *sim.Lock, tag string) sim.Program {
		return func(u *sim.Thread) {
			for i := 0; i < 30; i++ {
				for _, n := range noise {
					u.Lock(n, tag+"-n")
					u.Unlock(n, tag+"-nu")
				}
			}
			u.Lock(first, tag+"-1")
			u.Lock(second, tag+"-2")
			u.Unlock(second, tag+"-2u")
			u.Unlock(first, tag+"-1u")
		}
	}
	prog := func(th *sim.Thread) {
		h1 := th.Go("a", body(res, ctx, "a"), "s1")
		h2 := th.Go("b", body(ctx, res, "b"), "s2")
		th.Join(h1, "j1")
		th.Join(h2, "j2")
	}
	vt := vclock.NewTracker()
	rec := trace.NewRecorder(vt)
	opts.Listeners = []sim.Listener{vt, rec}
	out := sim.Run(prog, sim.FirstEnabled{}, opts)
	if out.Kind != sim.Terminated {
		b.Fatalf("outcome %v", out)
	}
	tr := rec.Finish(0)
	cycles := detect.Cycles(tr, detect.Config{})
	if len(cycles) == 0 {
		b.Fatal("no cycles")
	}
	return tr, cycles
}

func BenchmarkBuild(b *testing.B) {
	tr, cycles := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := Build(cycles[0], tr)
		if g.Size() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkClone(b *testing.B) {
	tr, cycles := benchTrace(b)
	g := Build(cycles[0], tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := g.Clone()
		cl.RemoveThread("main/a.0")
	}
}

func BenchmarkCyclicCheck(b *testing.B) {
	tr, cycles := benchTrace(b)
	g := Build(cycles[0], tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Cyclic() {
			b.Fatal("unexpected cycle")
		}
	}
}
