// Package sdg implements WOLF's Generator (Algorithm 3 of the paper): it
// builds the synchronization dependency graph Gs of a potential deadlock
// from the recorded trace.
//
// Vertices are (thread, acquisition, lock) triples — the lock
// acquisitions leading up to (and including) the deadlocking acquisitions,
// identified by their stable cross-run keys (thread, site, occurrence).
// An edge (u, v) means the acquisition at u must execute before the
// acquisition at v for the deadlock to manifest. Three edge kinds:
//
//   - type-D: the deadlock condition itself — each cycle thread must
//     acquire-and-hold its lock before the neighbouring thread's blocked
//     acquisition of the same lock.
//   - type-C: context — locks held at the deadlock must be acquired by
//     the cycle thread only after every other cycle thread's earlier
//     acquisitions of the same lock, so the deadlocking context can be
//     set up.
//   - type-P: program order within each cycle thread.
//
// A cycle in Gs proves the deadlock infeasible for the observed trace
// (the paper's Figure 7(b), the interim-acquisition pattern of Figure 2's
// θ4); an acyclic Gs drives the Replayer.
package sdg

import (
	"context"
	"fmt"
	"strings"

	"wolf/internal/detect"
	"wolf/internal/obs"
	"wolf/internal/trace"
)

// Kind is a bitmask of edge kinds between two vertices.
type Kind uint8

const (
	// D is a type-D (deadlock) edge.
	D Kind = 1 << iota
	// C is a type-C (context) edge.
	C
	// P is a type-P (program order) edge.
	P
	// V is a type-V (value flow) edge — the data-dependency extension
	// the paper proposes as future work (Section 4.4): a load that
	// steered a cycle thread's control flow must re-observe the store
	// that produced its value, so the store must precede the load.
	V
	// AllKinds includes the paper's edge kinds (no data edges).
	AllKinds = D | C | P
	// AllWithData adds the value-flow extension.
	AllWithData = AllKinds | V
)

// String renders the kinds present in the mask.
func (k Kind) String() string {
	var parts []string
	if k&D != 0 {
		parts = append(parts, "D")
	}
	if k&C != 0 {
		parts = append(parts, "C")
	}
	if k&P != 0 {
		parts = append(parts, "P")
	}
	if k&V != 0 {
		parts = append(parts, "V")
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "")
}

// Vertex is one lock acquisition in Gs.
type Vertex struct {
	// Key identifies the acquisition across runs.
	Key trace.Key
	// Lock is the acquired lock's stable name.
	Lock string
}

// Thread returns the acquiring thread's stable name.
func (v *Vertex) Thread() string { return v.Key.Thread }

// String renders the vertex as (thread, site#occ, lock).
func (v *Vertex) String() string {
	return fmt.Sprintf("(%s,%s#%d,%s)", v.Key.Thread, v.Key.Site, v.Key.Occ, v.Lock)
}

// Build constructs Gs for cycle c over trace tr with every edge kind.
func Build(c *detect.Cycle, tr *trace.Trace) *Graph {
	return BuildKinds(c, tr, AllKinds)
}

// BuildKinds constructs Gs restricted to the given edge kinds; used by
// ablation experiments (for example, replaying without type-C edges).
func BuildKinds(c *detect.Cycle, tr *trace.Trace, kinds Kind) *Graph {
	return BuildKindsCtx(context.Background(), c, tr, kinds)
}

// BuildKindsCtx is BuildKinds with observability: when ctx carries an
// obs.Recorder, one "sdg.build" span records the size of the graph
// produced (the paper's Vs statistic) and its edge count.
func BuildKindsCtx(ctx context.Context, c *detect.Cycle, tr *trace.Trace, kinds Kind) *Graph {
	_, sp := obs.Start(ctx, "sdg.build")
	g := buildKinds(c, tr, kinds)
	if sp != nil {
		sp.Add("vertices", int64(g.Size()))
		sp.Add("edges", int64(g.Edges()))
		sp.End()
	}
	return g
}

func buildKinds(c *detect.Cycle, tr *trace.Trace, kinds Kind) *Graph {
	// D'σ: for every cycle thread, the tuples strictly before its
	// deadlocking acquisition.
	prefix := make(map[string][]*trace.Tuple, len(c.Tuples))
	capacity := len(c.Tuples)
	for _, tp := range c.Tuples {
		prefix[tp.Thread] = tr.Prefix(tp.Thread, tp.Pos)
		capacity += tp.Pos + len(tp.Held)
		if kinds&V != 0 {
			// Data edges intern load/store vertices too; size for them
			// up front so the vertex arrays do not regrow mid-build.
			capacity += len(tr.DataByThread(tp.Thread))
		}
	}
	g := newGraph(capacity)

	// vertexFor interns the vertex of tuple tp's acquisition of lock lk
	// (either the pending lock or a held one).
	vertexFor := func(tp *trace.Tuple, lk string) int {
		key, ok := tp.Mu(lk)
		if !ok {
			panic(fmt.Sprintf("sdg: tuple %v has no µ for lock %s", tp, lk))
		}
		return g.intern(key, lk)
	}

	if kinds&D != 0 {
		// Type-D: for every pair ηi, ηj in θ with lock(ηi) ∈ lockset(ηj):
		// the acquisition of ℓi held by tj precedes ti's blocked
		// acquisition of ℓi.
		for _, ei := range c.Tuples {
			for _, ej := range c.Tuples {
				if ei == ej || !ej.HoldsLock(ei.Lock) {
					continue
				}
				v := vertexFor(ei, ei.Lock)
				u := vertexFor(ej, ei.Lock)
				g.addEdgeIDs(u, v, D)
			}
		}
	}

	if kinds&C != 0 {
		// Type-C: every lock in a cycle tuple's context (held locks plus
		// the pending lock, as in the paper's Figure 7(a)) must be
		// acquired by the cycle thread after the other cycle threads'
		// earlier acquisitions of the same lock. The shared index narrows
		// the candidate scan to exactly the other threads' acquisitions
		// of that lock (in program order, cut at the deadlocking
		// position) instead of walking their whole D'σ prefixes.
		idx := tr.Index()
		for _, ei := range c.Tuples {
			locks := append(ei.LockNames(), ei.Lock)
			for _, lk := range locks {
				v := vertexFor(ei, lk)
				for _, ej := range c.Tuples {
					if ej.Thread == ei.Thread {
						continue
					}
					for _, ex := range idx.AcquiresOf(ej.Thread, lk) {
						if ex.Pos >= ej.Pos {
							break // past the D'σ prefix
						}
						g.addEdgeIDs(vertexFor(ex, lk), v, C)
					}
				}
			}
		}
	}

	if kinds&P != 0 {
		// Type-P: program order over each cycle thread's D'σ tuples plus
		// its deadlocking tuple.
		for _, tp := range c.Tuples {
			seq := append(append([]*trace.Tuple(nil), prefix[tp.Thread]...), tp)
			for i := 0; i+1 < len(seq); i++ {
				u := vertexFor(seq[i], seq[i].Lock)
				v := vertexFor(seq[i+1], seq[i+1].Lock)
				g.addEdgeIDs(u, v, P)
			}
		}
	}

	if kinds&V != 0 {
		addDataEdges(g, c, tr, vertexFor)
	}
	return g
}

// addDataEdges implements the value-flow extension. For the recorded
// control flow of each cycle thread to repeat, every load it performed
// before its deadlocking acquisition must observe the same store. When
// that store was issued by another cycle thread, the store must execute
// first, so:
//
//   - the load and its producing store become vertices, anchored into
//     their threads' program order next to the surrounding lock
//     acquisitions (for stores after the thread's deadlocking
//     acquisition, the anchor is the deadlocking acquisition itself);
//   - a type-V edge runs store → load.
//
// A cycle through a V edge proves the deadlock incompatible with the
// recorded value flow: reproducing the paths requires the producer to
// have already passed the point where the deadlock must block it. This
// refutes the paper's "unknown due to data dependency" defects.
func addDataEdges(g *Graph, c *detect.Cycle, tr *trace.Trace, vertexFor func(*trace.Tuple, string) int) {
	inCycle := make(map[string]*trace.Tuple, len(c.Tuples))
	for _, tp := range c.Tuples {
		inCycle[tp.Thread] = tp
	}
	// anchor interns a data event and ties it into its thread's program
	// order between the neighbouring acquisition vertices.
	anchor := func(de *trace.DataEvent) int {
		id := g.internData(de)
		deadlock := inCycle[de.Thread]
		tuples := tr.ByThread(de.Thread)
		// Previous acquisition in program order (clamped to the
		// deadlocking acquisition for post-deadlock stores).
		prev := de.PosAfter - 1
		if prev > deadlock.Pos {
			prev = deadlock.Pos
		}
		if prev >= 0 {
			g.addEdgeIDs(vertexFor(tuples[prev], tuples[prev].Lock), id, V)
		}
		// Next acquisition, only within the deadlock prefix.
		if de.PosAfter <= deadlock.Pos {
			next := tuples[de.PosAfter]
			g.addEdgeIDs(id, vertexFor(next, next.Lock), V)
		}
		return id
	}
	idx := tr.Index()
	for _, tp := range c.Tuples {
		for _, de := range tr.DataByThread(tp.Thread) {
			if de.Store || de.PosAfter > tp.Pos || de.Observed.Zero() {
				continue // only pre-deadlock loads with a foreign producer
			}
			src, ok := inCycle[de.Observed.Thread]
			if !ok || src.Thread == tp.Thread {
				continue // producer is not a monitored cycle thread
			}
			// The index resolves the producing store in O(1); the
			// Generator used to linear-scan the producer thread's data
			// events per load.
			store := idx.Store(de.Observed)
			if store == nil {
				continue
			}
			g.addEdgeIDs(anchor(store), anchor(de), V)
		}
	}
}
