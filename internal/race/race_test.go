package race

import (
	"testing"

	"wolf/sim"
)

// TestUnsynchronizedWriteWriteRace: two threads store the same Var with
// no ordering.
func TestUnsynchronizedWriteWriteRace(t *testing.T) {
	f := func() (sim.Program, sim.Options) {
		var x *sim.Var
		opts := sim.Options{Setup: func(w *sim.World) { x = w.NewVar("x", 0) }}
		prog := func(th *sim.Thread) {
			a := th.Go("a", func(u *sim.Thread) { u.Store(x, 1, "a:1") }, "m1")
			b := th.Go("b", func(u *sim.Thread) { u.Store(x, 2, "b:1") }, "m2")
			th.Join(a, "m3")
			th.Join(b, "m4")
		}
		return prog, opts
	}
	races, out := Check(f, sim.NewRandomStrategy(1))
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
	if len(races) != 1 || races[0].Kind != "write-write" {
		t.Fatalf("races = %v, want one write-write", races)
	}
}

// TestLockProtectedAccessesAreClean: the same accesses under a common
// lock report nothing.
func TestLockProtectedAccessesAreClean(t *testing.T) {
	f := func() (sim.Program, sim.Options) {
		var x *sim.Var
		var mu *sim.Lock
		opts := sim.Options{Setup: func(w *sim.World) {
			x = w.NewVar("x", 0)
			mu = w.NewLock("mu")
		}}
		body := func(tag string, val int) sim.Program {
			return func(u *sim.Thread) {
				u.Lock(mu, tag+":l")
				_ = u.LoadInt(x, tag+":r")
				u.Store(x, val, tag+":w")
				u.Unlock(mu, tag+":u")
			}
		}
		prog := func(th *sim.Thread) {
			a := th.Go("a", body("a", 1), "m1")
			b := th.Go("b", body("b", 2), "m2")
			th.Join(a, "m3")
			th.Join(b, "m4")
		}
		return prog, opts
	}
	for seed := int64(0); seed < 20; seed++ {
		races, out := Check(f, sim.NewRandomStrategy(seed))
		if out.Kind != sim.Terminated {
			t.Fatalf("seed %d: outcome = %v", seed, out)
		}
		if len(races) != 0 {
			t.Fatalf("seed %d: false race: %v", seed, races)
		}
	}
}

// TestStartJoinOrderIsClean: parent writes before start and after join.
func TestStartJoinOrderIsClean(t *testing.T) {
	f := func() (sim.Program, sim.Options) {
		var x *sim.Var
		opts := sim.Options{Setup: func(w *sim.World) { x = w.NewVar("x", 0) }}
		prog := func(th *sim.Thread) {
			th.Store(x, 1, "m:w1")
			c := th.Go("c", func(u *sim.Thread) {
				_ = u.LoadInt(x, "c:r")
				u.Store(x, 2, "c:w")
			}, "m1")
			th.Join(c, "m2")
			th.Store(x, 3, "m:w2")
		}
		return prog, opts
	}
	for seed := int64(0); seed < 10; seed++ {
		races, _ := Check(f, sim.NewRandomStrategy(seed))
		if len(races) != 0 {
			t.Fatalf("seed %d: false race: %v", seed, races)
		}
	}
}

// TestReadWriteRace: unordered read against a later write.
func TestReadWriteRace(t *testing.T) {
	f := func() (sim.Program, sim.Options) {
		var x *sim.Var
		opts := sim.Options{Setup: func(w *sim.World) { x = w.NewVar("x", 0) }}
		prog := func(th *sim.Thread) {
			a := th.Go("reader", func(u *sim.Thread) { _ = u.LoadInt(x, "r:1") }, "m1")
			b := th.Go("writer", func(u *sim.Thread) { u.Store(x, 1, "w:1") }, "m2")
			th.Join(a, "m3")
			th.Join(b, "m4")
		}
		return prog, opts
	}
	found := false
	for seed := int64(0); seed < 20 && !found; seed++ {
		races, _ := Check(f, sim.NewRandomStrategy(seed))
		for _, r := range races {
			if r.Kind == "read-write" || r.Kind == "write-read" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("read/write race never detected")
	}
}

// TestSharedReadsThenWrite: concurrent readers inflate the read vector;
// a racing writer conflicts with each.
func TestSharedReadsThenWrite(t *testing.T) {
	f := func() (sim.Program, sim.Options) {
		var x *sim.Var
		opts := sim.Options{Setup: func(w *sim.World) { x = w.NewVar("x", 0) }}
		prog := func(th *sim.Thread) {
			r1 := th.Go("r1", func(u *sim.Thread) { _ = u.LoadInt(x, "r1:1") }, "m1")
			r2 := th.Go("r2", func(u *sim.Thread) { _ = u.LoadInt(x, "r2:1") }, "m2")
			w1 := th.Go("w1", func(u *sim.Thread) { u.Store(x, 5, "w1:1") }, "m3")
			th.Join(r1, "m4")
			th.Join(r2, "m5")
			th.Join(w1, "m6")
		}
		return prog, opts
	}
	// Force both reads before the write: round robin runs creation order.
	races, out := Check(f, &sim.RoundRobin{})
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
	rw := 0
	for _, r := range races {
		if r.Kind == "read-write" {
			rw++
		}
	}
	if rw < 2 {
		t.Fatalf("races = %v, want read-write against both readers", races)
	}
}

// TestWaitNotifySynchronizes: the watcher pattern guarded by a monitor
// handshake is race-free, while the bare flag poll is racy.
func TestWaitNotifySynchronizes(t *testing.T) {
	clean := func() (sim.Program, sim.Options) {
		var x *sim.Var
		var mon *sim.Lock
		opts := sim.Options{Setup: func(w *sim.World) {
			x = w.NewVar("x", 0)
			mon = w.NewLock("mon")
		}}
		prog := func(th *sim.Thread) {
			c := th.Go("c", func(u *sim.Thread) {
				u.Lock(mon, "c:l")
				u.Wait(mon, "c:wait")
				u.Unlock(mon, "c:u")
				_ = u.LoadInt(x, "c:r") // ordered after the notifier's store
			}, "m1")
			for mon.Waiters() == 0 {
				th.Yield("m:poll")
			}
			th.Store(x, 42, "m:w")
			th.Lock(mon, "m:l")
			th.Notify(mon, "m:n")
			th.Unlock(mon, "m:u")
			th.Join(c, "m2")
		}
		return prog, opts
	}
	races, out := Check(clean, &sim.RoundRobin{})
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
	if len(races) != 0 {
		t.Fatalf("wait/notify handshake reported races: %v", races)
	}
}

// TestRacyFlagPollDetected: the Jigsaw watcher pattern (unsynchronized
// flag) is itself a data race — detectable by this tool even though the
// deadlock analysis classifies the associated cycle false(data).
func TestRacyFlagPollDetected(t *testing.T) {
	f := func() (sim.Program, sim.Options) {
		var flag *sim.Var
		opts := sim.Options{Setup: func(w *sim.World) { flag = w.NewVar("ready", false) }}
		prog := func(th *sim.Thread) {
			pub := th.Go("pub", func(u *sim.Thread) { u.Store(flag, true, "pub:w") }, "m1")
			wat := th.Go("wat", func(u *sim.Thread) {
				for i := 0; i < 5 && !u.LoadBool(flag, "wat:r"); i++ {
					u.Yield("wat:y")
				}
			}, "m2")
			th.Join(pub, "m3")
			th.Join(wat, "m4")
		}
		return prog, opts
	}
	found := false
	for seed := int64(0); seed < 20 && !found; seed++ {
		races, _ := Check(f, sim.NewRandomStrategy(seed))
		found = len(races) > 0
	}
	if !found {
		t.Fatal("racy flag poll never detected")
	}
}

// TestDedupAcrossIterations: repeated racy accesses from the same sites
// report once.
func TestDedupAcrossIterations(t *testing.T) {
	f := func() (sim.Program, sim.Options) {
		var x *sim.Var
		opts := sim.Options{Setup: func(w *sim.World) { x = w.NewVar("x", 0) }}
		prog := func(th *sim.Thread) {
			a := th.Go("a", func(u *sim.Thread) {
				for i := 0; i < 5; i++ {
					u.Store(x, i, "a:w")
				}
			}, "m1")
			b := th.Go("b", func(u *sim.Thread) {
				for i := 0; i < 5; i++ {
					u.Store(x, -i, "b:w")
				}
			}, "m2")
			th.Join(a, "m3")
			th.Join(b, "m4")
		}
		return prog, opts
	}
	races, _ := Check(f, &sim.RoundRobin{})
	if len(races) != 1 {
		t.Fatalf("races = %v, want exactly one deduplicated report", races)
	}
	if got := NewDetectorRacyVarsHelper(races); len(got) != 1 || got[0] != "x" {
		t.Fatalf("racy vars = %v", got)
	}
}

// NewDetectorRacyVarsHelper extracts racy var names from a race list
// (mirrors Detector.RacyVars for externally collected slices).
func NewDetectorRacyVarsHelper(races []Race) []string {
	set := map[string]bool{}
	var out []string
	for _, r := range races {
		if !set[r.Var] {
			set[r.Var] = true
			out = append(out, r.Var)
		}
	}
	return out
}
