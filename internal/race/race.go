// Package race implements a FastTrack-style dynamic data-race detector
// (Flanagan and Freund, PLDI 2009) over sim executions.
//
// The WOLF paper's Pruner is explicitly "motivated by" vector-clock race
// detectors (Section 5); this package completes the lineage: it tracks
// full happens-before vector clocks through lock releases/acquisitions,
// thread start/join and monitor wait/notify, and checks every sim.Var
// access against the variable's last-writer epoch and read history.
// Unlike FastTrack proper it does not need the epoch-to-VC adaptive
// trick for performance (sim workloads are small), but it implements the
// same adaptive read representation for fidelity: a single read epoch
// while reads are totally ordered, inflating to a read vector under
// concurrent reads.
package race

import (
	"fmt"
	"sort"
	"strings"

	"wolf/sim"
)

// epoch is a (thread, clock) pair, FastTrack's scalar summary.
type epoch struct {
	tid sim.ThreadID
	clk int
}

// vc is a dense vector clock.
type vc []int

// at returns the component for tid.
func (v vc) at(tid sim.ThreadID) int {
	if int(tid) < len(v) {
		return v[tid]
	}
	return 0
}

// set grows and assigns.
func (v *vc) set(tid sim.ThreadID, val int) {
	for int(tid) >= len(*v) {
		*v = append(*v, 0)
	}
	(*v)[tid] = val
}

// join folds other into v.
func (v *vc) join(other vc) {
	for i, c := range other {
		if c > v.at(sim.ThreadID(i)) {
			v.set(sim.ThreadID(i), c)
		}
	}
}

// happensBefore reports whether epoch e is ordered before the thread
// clock v (e.clk <= v[e.tid]).
func (e epoch) happensBefore(v vc) bool { return e.clk <= v.at(e.tid) }

// varState is FastTrack's per-variable metadata.
type varState struct {
	write epoch
	// readEpoch summarizes reads while they are totally ordered;
	// readVC takes over after concurrent reads (readShared true).
	readEpoch  epoch
	readVC     vc
	readShared bool
	// lastWriteSite and lastReadSites support reporting.
	writeSite string
	readSites map[sim.ThreadID]string
}

// Race is one detected conflicting access pair.
type Race struct {
	// Var is the variable's stable name.
	Var string
	// Kind is "write-write", "read-write" or "write-read".
	Kind string
	// PrevThread/PrevSite identify the earlier access.
	PrevThread string
	PrevSite   string
	// Thread/Site identify the racing access.
	Thread string
	Site   string
}

// String renders the race report.
func (r Race) String() string {
	return fmt.Sprintf("race on %s (%s): %s@%s vs %s@%s",
		r.Var, r.Kind, r.PrevThread, r.PrevSite, r.Thread, r.Site)
}

// key canonicalizes a race for deduplication (unordered site pair).
func (r Race) key() string {
	a, b := r.PrevSite, r.Site
	if a > b {
		a, b = b, a
	}
	return r.Var + "|" + r.Kind + "|" + a + "|" + b
}

// Detector is a sim.Listener that reports data races on sim.Var
// accesses.
type Detector struct {
	clocks  []vc
	lockRel map[string]vc
	vars    map[string]*varState
	names   []string
	seen    map[string]bool
	races   []Race
}

// NewDetector returns an empty detector.
func NewDetector() *Detector {
	return &Detector{
		lockRel: make(map[string]vc),
		vars:    make(map[string]*varState),
		seen:    make(map[string]bool),
	}
}

// Races returns the deduplicated races in detection order.
func (d *Detector) Races() []Race { return d.races }

// RacyVars returns the sorted names of variables with at least one race.
func (d *Detector) RacyVars() []string {
	set := make(map[string]bool)
	for _, r := range d.races {
		set[r.Var] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// ensure sizes clocks (and the thread's initial self-component) for tid.
func (d *Detector) ensure(tid sim.ThreadID, name string) {
	for int(tid) >= len(d.clocks) {
		d.clocks = append(d.clocks, nil)
		d.names = append(d.names, "")
	}
	if d.clocks[tid] == nil {
		var v vc
		v.set(tid, 1)
		d.clocks[tid] = v
	}
	d.names[tid] = name
}

// increment bumps the thread's own component.
func (d *Detector) increment(tid sim.ThreadID) {
	d.clocks[tid].set(tid, d.clocks[tid].at(tid)+1)
}

// OnEvent applies happens-before updates and access checks.
func (d *Detector) OnEvent(ev sim.Event) {
	t := ev.Thread.ID()
	d.ensure(t, ev.Thread.Name())
	switch ev.Op.Kind {
	case sim.OpStart:
		c := ev.Op.Child.ID()
		d.ensure(c, ev.Op.Child.Name())
		d.clocks[c].join(d.clocks[t])
		d.increment(t)
		d.increment(c)
	case sim.OpJoin:
		c := ev.Op.Target.ID()
		d.ensure(c, ev.Op.Target.Name())
		d.clocks[t].join(d.clocks[c])
		d.increment(t)
	case sim.OpUnlock, sim.OpWait:
		if ev.Reentrant {
			return
		}
		rel := make(vc, len(d.clocks[t]))
		copy(rel, d.clocks[t])
		d.lockRel[ev.Op.Lock.Name()] = rel
		d.increment(t)
	case sim.OpLock, sim.OpWaitResume:
		if ev.Reentrant {
			return
		}
		if rel, ok := d.lockRel[ev.Op.Lock.Name()]; ok {
			d.clocks[t].join(rel)
		}
	case sim.OpNotify, sim.OpNotifyAll:
		// The waiter synchronizes through the monitor reacquisition;
		// publish the notifier's clock on the monitor as well so the
		// notify → wakeup order is visible even without an interleaved
		// unlock.
		rel := make(vc, len(d.clocks[t]))
		copy(rel, d.clocks[t])
		d.lockRel[ev.Op.Lock.Name()] = rel
		d.increment(t)
	case sim.OpLoad:
		d.read(t, ev.Op.Var.Name(), ev.Op.Site)
	case sim.OpStore:
		d.write(t, ev.Op.Var.Name(), ev.Op.Site)
	}
}

// state returns (allocating) the variable's metadata.
func (d *Detector) state(name string) *varState {
	vs := d.vars[name]
	if vs == nil {
		vs = &varState{readSites: make(map[sim.ThreadID]string)}
		d.vars[name] = vs
	}
	return vs
}

// read applies FastTrack's read rule.
func (d *Detector) read(t sim.ThreadID, name, site string) {
	vs := d.state(name)
	myVC := d.clocks[t]
	// write-read check.
	if vs.write.clk != 0 && !vs.write.happensBefore(myVC) {
		d.report(Race{
			Var: name, Kind: "write-read",
			PrevThread: d.names[vs.write.tid], PrevSite: vs.writeSite,
			Thread: d.names[t], Site: site,
		})
	}
	me := epoch{tid: t, clk: myVC.at(t)}
	if vs.readShared {
		vs.readVC.set(t, me.clk)
	} else if vs.readEpoch.clk == 0 || vs.readEpoch.tid == t {
		vs.readEpoch = me
	} else if vs.readEpoch.happensBefore(myVC) {
		vs.readEpoch = me
	} else {
		// Concurrent reads: inflate to a read vector.
		vs.readShared = true
		vs.readVC = nil
		vs.readVC.set(vs.readEpoch.tid, vs.readEpoch.clk)
		vs.readVC.set(t, me.clk)
	}
	vs.readSites[t] = site
}

// write applies FastTrack's write rule.
func (d *Detector) write(t sim.ThreadID, name, site string) {
	vs := d.state(name)
	myVC := d.clocks[t]
	if vs.write.clk != 0 && !vs.write.happensBefore(myVC) {
		d.report(Race{
			Var: name, Kind: "write-write",
			PrevThread: d.names[vs.write.tid], PrevSite: vs.writeSite,
			Thread: d.names[t], Site: site,
		})
	}
	if vs.readShared {
		for i, clk := range vs.readVC {
			rt := sim.ThreadID(i)
			if clk != 0 && rt != t && !(epoch{tid: rt, clk: clk}).happensBefore(myVC) {
				d.report(Race{
					Var: name, Kind: "read-write",
					PrevThread: d.names[rt], PrevSite: vs.readSites[rt],
					Thread: d.names[t], Site: site,
				})
			}
		}
	} else if vs.readEpoch.clk != 0 && vs.readEpoch.tid != t && !vs.readEpoch.happensBefore(myVC) {
		d.report(Race{
			Var: name, Kind: "read-write",
			PrevThread: d.names[vs.readEpoch.tid], PrevSite: vs.readSites[vs.readEpoch.tid],
			Thread: d.names[t], Site: site,
		})
	}
	vs.write = epoch{tid: t, clk: myVC.at(t)}
	vs.writeSite = site
	vs.readShared = false
	vs.readEpoch = epoch{}
	vs.readVC = nil
}

// report deduplicates and records a race.
func (d *Detector) report(r Race) {
	if d.seen[r.key()] {
		return
	}
	d.seen[r.key()] = true
	d.races = append(d.races, r)
}

// Check runs the program once under the given strategy and returns the
// detected races.
func Check(f sim.Factory, s sim.Strategy) ([]Race, *sim.Outcome) {
	prog, opts := f()
	det := NewDetector()
	opts.Listeners = append(opts.Listeners, det)
	out := sim.Run(prog, s, opts)
	return det.Races(), out
}

// Summary renders races one per line.
func Summary(races []Race) string {
	var sb strings.Builder
	for _, r := range races {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
