package trace

import "wolf/internal/vclock"

// Assemble builds a Trace from already-decoded parts, rebuilding the
// per-thread indexes. It is the single assembly point shared by the
// JSON reader and the streaming decoder (internal/stream): per-thread
// positions must be dense 0..n-1 in tuple order, anything else is
// structural corruption (ErrCorrupt).
func Assemble(tuples []*Tuple, clocks []vclock.Vector, taus []int, steps int, seed int64) (*Trace, error) {
	tr := &Trace{
		Tuples:   tuples,
		byThread: make(map[string][]*Tuple),
		Clocks:   clocks,
		Taus:     taus,
		Steps:    steps,
		Seed:     seed,
	}
	for _, tp := range tuples {
		if tp == nil {
			return nil, corruptf("null tuple")
		}
		seq := tr.byThread[tp.Thread]
		if tp.Pos != len(seq) {
			return nil, corruptf("tuple %v has position %d, want %d", tp, tp.Pos, len(seq))
		}
		tr.byThread[tp.Thread] = append(seq, tp)
	}
	return tr, nil
}
