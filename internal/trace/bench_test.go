package trace

import (
	"bytes"
	"testing"

	"wolf/internal/vclock"
	"wolf/sim"
)

// benchProgram: several threads with nested sections and data traffic.
func benchProgram(iters int) (sim.Program, sim.Options) {
	var a, b, c *sim.Lock
	var v *sim.Var
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b, c = w.NewLock("A"), w.NewLock("B"), w.NewLock("C")
		v = w.NewVar("v", 0)
	}}
	prog := func(th *sim.Thread) {
		var hs []*sim.Thread
		for i := 0; i < 4; i++ {
			hs = append(hs, th.Go("w", func(u *sim.Thread) {
				for j := 0; j < iters; j++ {
					u.Lock(a, "s1")
					u.Lock(b, "s2")
					u.Store(v, j, "s3")
					u.Unlock(b, "s4")
					u.Lock(c, "s5")
					u.Unlock(c, "s6")
					u.Unlock(a, "s7")
				}
			}, "m"))
		}
		for _, h := range hs {
			th.Join(h, "j")
		}
	}
	return prog, opts
}

// BenchmarkRecorder measures full extended-detector instrumentation
// (vector clocks + Dσ recording) per recorded run.
func BenchmarkRecorder(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, opts := benchProgram(20)
		vt := vclock.NewTracker()
		rec := NewRecorder(vt)
		opts.Listeners = append(opts.Listeners, vt, rec)
		out := sim.Run(prog, sim.NewRandomStrategy(int64(i)), opts)
		if out.Kind == sim.ProgramError {
			b.Fatal(out)
		}
		if tr := rec.Finish(int64(i)); len(tr.Tuples) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkBareRun is the uninstrumented baseline for BenchmarkRecorder
// (their ratio is the Table 1 slowdown statistic at micro scale).
func BenchmarkBareRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, opts := benchProgram(20)
		out := sim.Run(prog, sim.NewRandomStrategy(int64(i)), opts)
		if out.Kind == sim.ProgramError {
			b.Fatal(out)
		}
	}
}

// BenchmarkSerialize measures trace write+read round trips.
func BenchmarkSerialize(b *testing.B) {
	prog, opts := benchProgram(20)
	vt := vclock.NewTracker()
	rec := NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	sim.Run(prog, sim.NewRandomStrategy(1), opts)
	tr := rec.Finish(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf discard
		if err := tr.Write(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// discard is an io.Writer that counts bytes.
type discard struct{ n int }

func (d *discard) Write(p []byte) (int, error) {
	d.n += len(p)
	return len(p), nil
}

// largeTrace records a large trace (hundreds of tuples) for the
// JSON-vs-binary codec comparison: the wolfd ingest hot path.
func largeTrace(b *testing.B) *Trace {
	b.Helper()
	prog, opts := benchProgram(200)
	vt := vclock.NewTracker()
	rec := NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	opts.MaxSteps = 1 << 20
	sim.Run(prog, sim.NewRandomStrategy(1), opts)
	tr := rec.Finish(1)
	if len(tr.Tuples) < 100 {
		b.Fatalf("trace too small: %d tuples", len(tr.Tuples))
	}
	return tr
}

// BenchmarkEncodeJSON / BenchmarkEncodeBinary compare the two codecs on
// the same large trace; bytes/op makes the size difference visible.
func BenchmarkEncodeJSON(b *testing.B) {
	tr := largeTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf discard
		if err := tr.Write(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.n))
	}
}

func BenchmarkEncodeBinary(b *testing.B) {
	tr := largeTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf discard
		if err := tr.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.n))
	}
}

func BenchmarkDecodeJSON(b *testing.B) {
	tr := largeTrace(b)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBinary(b *testing.B) {
	tr := largeTrace(b)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
