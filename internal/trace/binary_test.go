package trace

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"wolf/internal/vclock"
	"wolf/sim"
)

// recordFig4 produces a timestamped Figure 4 trace for codec tests.
func recordFig4(t *testing.T) *Trace {
	t.Helper()
	prog, opts, _ := fig4()
	vt := vclock.NewTracker()
	rec := NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	out := sim.Run(prog, sim.FirstEnabled{}, opts)
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
	return rec.Finish(42)
}

// TestBinaryRoundTrip: every field survives a binary write/read cycle.
func TestBinaryRoundTrip(t *testing.T) {
	tr := recordFig4(t)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, got, tr)
}

// TestDecodeSniffsFormat: Decode reads both encodings of the same trace.
func TestDecodeSniffsFormat(t *testing.T) {
	tr := recordFig4(t)
	var js, bin bytes.Buffer
	if err := tr.Write(&js); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"json": js.Bytes(), "binary": bin.Bytes()} {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertTracesEqual(t, got, tr)
	}
}

// assertTracesEqual compares every serialized field of two traces.
func assertTracesEqual(t *testing.T, got, want *Trace) {
	t.Helper()
	if got.Seed != want.Seed || got.Steps != want.Steps {
		t.Fatalf("metadata: seed=%d steps=%d, want %d/%d", got.Seed, got.Steps, want.Seed, want.Steps)
	}
	if !reflect.DeepEqual(got.Taus, want.Taus) {
		t.Fatalf("taus = %v, want %v", got.Taus, want.Taus)
	}
	if !reflect.DeepEqual(got.Clocks, want.Clocks) {
		t.Fatalf("clocks = %v, want %v", got.Clocks, want.Clocks)
	}
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("tuples = %d, want %d", len(got.Tuples), len(want.Tuples))
	}
	for i, w := range want.Tuples {
		g := got.Tuples[i]
		if g.Thread != w.Thread || g.ThreadID != w.ThreadID || g.Lock != w.Lock ||
			g.Site != w.Site || g.Idx != w.Idx || g.Key != w.Key || g.Tau != w.Tau ||
			g.Pos != w.Pos || !reflect.DeepEqual(g.Held, w.Held) {
			t.Fatalf("tuple %d = %+v, want %+v", i, g, w)
		}
	}
	for _, th := range want.Threads() {
		if len(got.ByThread(th)) != len(want.ByThread(th)) {
			t.Fatalf("byThread[%s] not rebuilt", th)
		}
	}
}

// corruptBinary returns a valid binary encoding mutated by f.
func corruptBinary(t *testing.T, f func([]byte) []byte) []byte {
	t.Helper()
	tr := recordFig4(t)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return f(buf.Bytes())
}

// TestReadErrorPaths: malformed input in either codec fails cleanly with
// an error, never a panic.
func TestReadErrorPaths(t *testing.T) {
	badVersion := func(b []byte) []byte {
		out := append([]byte(nil), b[:4]...)
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], 99)
		out = append(out, tmp[:n]...)
		// Skip the original version uvarint.
		_, used := binary.Uvarint(b[4:])
		return append(out, b[4+used:]...)
	}
	cases := []struct {
		name string
		data []byte
		read func(b []byte) error
	}{
		{"json/empty", []byte(""), readJSON},
		{"json/garbage", []byte("not json"), readJSON},
		{"json/truncated", []byte(`{"version":1,"tuples":[{"Thread":"m"`), readJSON},
		{"json/bad-version", []byte(`{"version":99,"tuples":[]}`), readJSON},
		{"json/null-tuple", []byte(`{"version":1,"tuples":[null]}`), readJSON},
		{"json/out-of-order-pos", []byte(`{"version":1,"tuples":[{"Thread":"main","Lock":"L","Pos":5}]}`), readJSON},
		{"binary/empty", []byte(""), readBin},
		{"binary/bad-magic", []byte("XXXXrest"), readBin},
		{"binary/magic-only", []byte("WTRC"), readBin},
		{"binary/bad-version", corruptBinary(t, badVersion), readBin},
		{"binary/truncated-half", corruptBinary(t, func(b []byte) []byte { return b[:len(b)/2] }), readBin},
		{"binary/truncated-tail", corruptBinary(t, func(b []byte) []byte { return b[:len(b)-3] }), readBin},
		{"binary/huge-string-len", append([]byte("WTRC\x01\x00\x00\x00\x00\x01"), 0xff, 0xff, 0xff, 0xff, 0x7f), readBin},
		{"decode/empty", []byte(""), readDecode},
		{"decode/truncated-binary", corruptBinary(t, func(b []byte) []byte { return b[:6] }), readDecode},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.read(tc.data); err == nil {
				t.Fatalf("expected error for %s", tc.name)
			}
		})
	}
}

func readJSON(b []byte) error   { _, err := Read(bytes.NewReader(b)); return err }
func readBin(b []byte) error    { _, err := ReadBinary(bytes.NewReader(b)); return err }
func readDecode(b []byte) error { _, err := Decode(bytes.NewReader(b)); return err }

// TestBinaryOutOfOrderPos: positions are validated on decode like the
// JSON reader does.
func TestBinaryOutOfOrderPos(t *testing.T) {
	tr := recordFig4(t)
	tr.Tuples[0].Pos = 5
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected position error")
	} else if !strings.Contains(err.Error(), "position") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// FuzzTraceRead: arbitrary bytes through every reader must return an
// error or a consistent trace — never panic. Valid encodings are seeded
// so the fuzzer starts from structurally interesting inputs.
func FuzzTraceRead(f *testing.F) {
	prog, opts, _ := fig4()
	vt := vclock.NewTracker()
	rec := NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	sim.Run(prog, sim.FirstEnabled{}, opts)
	tr := rec.Finish(7)
	var js, bin bytes.Buffer
	if err := tr.Write(&js); err != nil {
		f.Fatal(err)
	}
	if err := tr.WriteBinary(&bin); err != nil {
		f.Fatal(err)
	}
	f.Add(js.Bytes())
	f.Add(bin.Bytes())
	f.Add([]byte(`{"version":1,"tuples":[]}`))
	f.Add([]byte("WTRC\x01"))
	// Adversarial seeds: truncated valid stream, oversized collection
	// counts (tau, clock, string, tuple), oversized string length — the
	// length-prefix attacks ReadBinary caps allocation against.
	f.Add(bin.Bytes()[:len(bin.Bytes())/2])
	f.Add(bin.Bytes()[:len(bin.Bytes())-3])
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0x0f}
	f.Add(append([]byte("WTRC\x01\x00\x00"), huge...))
	f.Add(append([]byte("WTRC\x01\x00\x00\x00"), huge...))
	f.Add(append([]byte("WTRC\x01\x00\x00\x00\x00"), huge...))
	f.Add(append([]byte("WTRC\x01\x00\x00\x00\x00\x00"), huge...))
	f.Add(append([]byte("WTRC\x01\x00\x00\x00\x00\x01"), 0xff, 0xff, 0xff, 0xff, 0x7f))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, read := range []func([]byte) error{readJSON, readBin, readDecode} {
			if err := read(data); err != nil {
				continue
			}
		}
	})
}
