package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"wolf/internal/vclock"
	"wolf/sim"
)

// ErrCorrupt is the sentinel wrapped by every binary-decode failure —
// truncated streams, oversized length prefixes, out-of-range indices,
// bad magic — so callers can distinguish adversarial or damaged input
// (errors.Is(err, ErrCorrupt)) from I/O problems and reject it at the
// door.
var ErrCorrupt = errors.New("corrupt binary trace")

// corruptf builds an ErrCorrupt-wrapping decode error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("trace: "+format+": %w", append(args, ErrCorrupt)...)
}

// Binary trace format ("WTRC"): the ingest hot path of the wolfd
// service. The layout is length-prefixed and versioned so readers can
// reject foreign or future data without scanning it:
//
//	magic   4 bytes "WTRC"
//	version uvarint (BinaryVersion)
//	seed    varint
//	steps   uvarint
//	taus    uvarint count, then varint each
//	clocks  uvarint count, then per vector: uvarint len + (varint S, varint J) pairs
//	strings uvarint count, then per string: uvarint len + raw bytes
//	tuples  uvarint count, then per tuple (all strings as table indices):
//	        thread, lock, site, threadID(varint), idx(thread,seq),
//	        key(thread,site,occ), tau(varint), pos,
//	        held count + per held: lock, site, idx(thread,seq), key(thread,site,occ)
//
// Every string is interned once in the table; tuples reference it by
// index, which is what makes the format both smaller and faster to
// decode than JSON (no field names, no quoting, no reflection).

// BinaryMagic marks a binary trace stream ("WTRC"). Exported so the
// streaming decoder (internal/stream) recognizes the same header.
var BinaryMagic = [4]byte{'W', 'T', 'R', 'C'}

// BinaryVersion is the current binary schema version.
const BinaryVersion = 1

// MaxStringLen bounds a single interned string so corrupt length
// prefixes cannot drive huge allocations. Shared by the batch and
// streaming decoders.
const MaxStringLen = 1 << 20

// maxPrealloc caps slice preallocation from wire-declared counts.
const maxPrealloc = 1024

// CapAlloc returns the preallocation capacity for a collection whose
// length n came from the wire: at most maxPrealloc, so an adversarial
// length prefix costs the attacker bytes, not us memory — slices grow
// incrementally past the bound. Both the batch (ReadBinary) and the
// streaming (internal/stream) decoders size every count-prefixed
// collection through this one helper.
func CapAlloc(n int) int { return min(n, maxPrealloc) }

// WriteBinary serializes the trace in the binary format.
func (tr *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(BinaryMagic[:]); err != nil {
		return err
	}
	e := &binWriter{w: bw, index: make(map[string]uint64)}

	// First pass: intern every string in deterministic encounter order.
	for _, tp := range tr.Tuples {
		if tp == nil {
			return fmt.Errorf("trace: null tuple")
		}
		e.intern(tp.Thread)
		e.intern(tp.Lock)
		e.intern(tp.Site)
		e.intern(tp.Idx.Thread)
		e.intern(tp.Key.Thread)
		e.intern(tp.Key.Site)
		for _, h := range tp.Held {
			e.intern(h.Lock)
			e.intern(h.Site)
			e.intern(h.Idx.Thread)
			e.intern(h.Key.Thread)
			e.intern(h.Key.Site)
		}
	}

	e.uvarint(BinaryVersion)
	e.varint(tr.Seed)
	e.uvarint(uint64(tr.Steps))
	e.uvarint(uint64(len(tr.Taus)))
	for _, tau := range tr.Taus {
		e.varint(int64(tau))
	}
	e.uvarint(uint64(len(tr.Clocks)))
	for _, v := range tr.Clocks {
		e.uvarint(uint64(len(v)))
		for _, p := range v {
			e.varint(int64(p.S))
			e.varint(int64(p.J))
		}
	}
	e.uvarint(uint64(len(e.table)))
	for _, s := range e.table {
		e.uvarint(uint64(len(s)))
		e.bytes([]byte(s))
	}
	e.uvarint(uint64(len(tr.Tuples)))
	for _, tp := range tr.Tuples {
		e.str(tp.Thread)
		e.str(tp.Lock)
		e.str(tp.Site)
		e.varint(int64(tp.ThreadID))
		e.str(tp.Idx.Thread)
		e.uvarint(uint64(tp.Idx.Seq))
		e.str(tp.Key.Thread)
		e.str(tp.Key.Site)
		e.uvarint(uint64(tp.Key.Occ))
		e.varint(int64(tp.Tau))
		e.uvarint(uint64(tp.Pos))
		e.uvarint(uint64(len(tp.Held)))
		for _, h := range tp.Held {
			e.str(h.Lock)
			e.str(h.Site)
			e.str(h.Idx.Thread)
			e.uvarint(uint64(h.Idx.Seq))
			e.str(h.Key.Thread)
			e.str(h.Key.Site)
			e.uvarint(uint64(h.Key.Occ))
		}
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// binWriter accumulates varint-encoded fields, interning strings.
type binWriter struct {
	w     *bufio.Writer
	buf   [binary.MaxVarintLen64]byte
	table []string
	index map[string]uint64
	err   error
}

func (e *binWriter) intern(s string) {
	if _, ok := e.index[s]; !ok {
		e.index[s] = uint64(len(e.table))
		e.table = append(e.table, s)
	}
}

func (e *binWriter) str(s string) { e.uvarint(e.index[s]) }

func (e *binWriter) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *binWriter) varint(v int64) {
	if e.err != nil {
		return
	}
	n := binary.PutVarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *binWriter) bytes(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

// ReadBinary deserializes a trace written by WriteBinary, rebuilding the
// per-thread indexes. Malformed input yields an error, never a panic,
// and allocations are bounded by the input length.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, corruptf("binary magic: %v", err)
	}
	if magic != BinaryMagic {
		return nil, corruptf("bad magic %q", magic[:])
	}
	return readBinaryBody(br)
}

// readBinaryBody decodes everything after the magic.
func readBinaryBody(br *bufio.Reader) (*Trace, error) {
	d := &binReader{r: br}
	if v := d.uvarint(); d.err == nil && v != BinaryVersion {
		return nil, corruptf("unsupported binary version %d (want %d)", v, BinaryVersion)
	}
	tr := &Trace{byThread: make(map[string][]*Tuple)}
	tr.Seed = d.varint()
	tr.Steps = d.int()

	// Collection counts come from the wire, so pre-allocation is capped
	// and slices grow incrementally past the bound — an adversarial
	// length prefix costs the attacker bytes, not us memory.
	nTaus := d.count()
	if nTaus > 0 {
		tr.Taus = make([]int, 0, CapAlloc(nTaus))
	}
	for i := 0; i < nTaus && d.err == nil; i++ {
		tr.Taus = append(tr.Taus, int(d.varint()))
	}
	nClocks := d.count()
	for i := 0; i < nClocks && d.err == nil; i++ {
		n := d.count()
		v := make(vclock.Vector, 0, CapAlloc(n))
		for j := 0; j < n && d.err == nil; j++ {
			v = append(v, vclock.SJ{S: int(d.varint()), J: int(d.varint())})
		}
		tr.Clocks = append(tr.Clocks, v)
	}

	nStrings := d.count()
	table := make([]string, 0, CapAlloc(nStrings))
	for i := 0; i < nStrings && d.err == nil; i++ {
		table = append(table, d.string())
	}
	d.table = table

	nTuples := d.count()
	for i := 0; i < nTuples && d.err == nil; i++ {
		tp := &Tuple{
			Thread:   d.str(),
			Lock:     d.str(),
			Site:     d.str(),
			ThreadID: sim.ThreadID(d.varint()),
		}
		tp.Idx = sim.Index{Thread: d.str(), Seq: d.int()}
		tp.Key = Key{Thread: d.str(), Site: d.str(), Occ: d.int()}
		tp.Tau = int(d.varint())
		tp.Pos = d.int()
		nHeld := d.count()
		if nHeld > 0 && d.err == nil {
			tp.Held = make([]HeldLock, 0, CapAlloc(nHeld))
		}
		for j := 0; j < nHeld && d.err == nil; j++ {
			h := HeldLock{Lock: d.str(), Site: d.str()}
			h.Idx = sim.Index{Thread: d.str(), Seq: d.int()}
			h.Key = Key{Thread: d.str(), Site: d.str(), Occ: d.int()}
			tp.Held = append(tp.Held, h)
		}
		if d.err != nil {
			break
		}
		seq := tr.byThread[tp.Thread]
		if tp.Pos != len(seq) {
			return nil, corruptf("tuple %v has position %d, want %d", tp, tp.Pos, len(seq))
		}
		tr.byThread[tp.Thread] = append(seq, tp)
		tr.Tuples = append(tr.Tuples, tp)
	}
	if d.err != nil {
		return nil, corruptf("binary decode: %v", d.err)
	}
	return tr, nil
}

// binReader decodes varint-encoded fields, resolving string indices. The
// first error sticks; subsequent reads return zero values.
type binReader struct {
	r     *bufio.Reader
	table []string
	err   error
}

func (d *binReader) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *binReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.fail(err)
		return 0
	}
	return v
}

func (d *binReader) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.fail(err)
		return 0
	}
	return v
}

// int reads a uvarint that must fit a non-negative int.
func (d *binReader) int() int {
	v := d.uvarint()
	if v > math.MaxInt32 {
		d.fail(fmt.Errorf("value %d out of range", v))
		return 0
	}
	return int(v)
}

// count reads a collection length.
func (d *binReader) count() int { return d.int() }

// string reads one length-prefixed string for the table.
func (d *binReader) string() string {
	n := d.int()
	if d.err != nil {
		return ""
	}
	if n > MaxStringLen {
		d.fail(fmt.Errorf("string length %d exceeds limit", n))
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.fail(err)
		return ""
	}
	return string(b)
}

// str resolves a string-table index.
func (d *binReader) str() string {
	i := d.uvarint()
	if d.err != nil {
		return ""
	}
	if i >= uint64(len(d.table)) {
		d.fail(fmt.Errorf("string index %d out of range (table size %d)", i, len(d.table)))
		return ""
	}
	return d.table[i]
}

// Decode reads a trace in either supported format, sniffing the binary
// magic: uploads to wolfd and the wolf -trace flag accept both without
// the caller declaring which one it is.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(BinaryMagic))
	if err == nil && [4]byte(head) == BinaryMagic {
		br.Discard(len(BinaryMagic))
		return readBinaryBody(br)
	}
	return Read(br)
}
