package trace

import (
	"fmt"
	"testing"
)

// indexTrace builds a synthetic trace directly (the index only depends
// on Tuples and Data): nThreads writer/reader pairs, each with nEvents
// stores observed by the paired reader, plus a small lock vocabulary so
// postings have depth.
func indexTrace(nPairs, nEvents int) *Trace {
	tr := &Trace{
		byThread:     make(map[string][]*Tuple),
		dataByThread: make(map[string][]*DataEvent),
	}
	for p := 0; p < nPairs; p++ {
		w := fmt.Sprintf("w%d", p)
		r := fmt.Sprintf("r%d", p)
		for i := 0; i < 3; i++ {
			tp := &Tuple{
				Thread: w,
				Lock:   fmt.Sprintf("L%d", i+1),
				Site:   fmt.Sprintf("s%d", i),
				Key:    Key{Thread: w, Site: fmt.Sprintf("s%d", i), Occ: 1},
				Held:   []HeldLock{{Lock: fmt.Sprintf("L%d", i)}},
				Pos:    i,
			}
			tr.Tuples = append(tr.Tuples, tp)
			tr.byThread[w] = append(tr.byThread[w], tp)
		}
		for i := 0; i < nEvents; i++ {
			st := &DataEvent{
				Thread: w,
				Var:    fmt.Sprintf("v%d_%d", p, i),
				Store:  true,
				Site:   "st",
				Key:    Key{Thread: w, Site: "st", Occ: i + 1},
			}
			ld := &DataEvent{
				Thread:   r,
				Var:      st.Var,
				Site:     "ld",
				Key:      Key{Thread: r, Site: "ld", Occ: i + 1},
				Observed: st.Key,
			}
			tr.Data = append(tr.Data, st, ld)
			tr.dataByThread[w] = append(tr.dataByThread[w], st)
			tr.dataByThread[r] = append(tr.dataByThread[r], ld)
		}
	}
	return tr
}

// scanStore is the pre-index linear resolution (what sdg.findStore did),
// kept as the reference the index is checked against.
func scanStore(tr *Trace, key Key) *DataEvent {
	for _, de := range tr.DataByThread(key.Thread) {
		if de.Key == key {
			return de
		}
	}
	return nil
}

// TestIndexStoreResolvesAllProducers: on a trace with many data events,
// every load's observed producer resolves through the index to exactly
// the event the linear scan finds — same pointer, store-typed, matching
// key.
func TestIndexStoreResolvesAllProducers(t *testing.T) {
	tr := indexTrace(4, 200)
	idx := tr.Index()
	loads := 0
	for _, de := range tr.Data {
		if de.Store || de.Observed.Zero() {
			continue
		}
		loads++
		got := idx.Store(de.Observed)
		want := scanStore(tr, de.Observed)
		if got == nil || got != want {
			t.Fatalf("Store(%v) = %v, scan found %v", de.Observed, got, want)
		}
		if !got.Store || got.Key != de.Observed {
			t.Fatalf("Store(%v) resolved to wrong event %v", de.Observed, got)
		}
	}
	if loads != 4*200 {
		t.Fatalf("exercised %d loads, want %d", loads, 4*200)
	}
	if idx.Store(Key{Thread: "w0", Site: "nope", Occ: 1}) != nil {
		t.Fatal("unknown key resolved")
	}
}

// TestIndexPostings: interning, held postings and per-thread per-lock
// acquisition postings agree with the raw trace.
func TestIndexPostings(t *testing.T) {
	tr := indexTrace(2, 3)
	idx := tr.Index()

	if idx.NumThreads() != 4 { // w0, w1 acquire; r0, r1 only touch data
		t.Fatalf("NumThreads = %d, want 4", idx.NumThreads())
	}
	if _, ok := idx.ThreadID("r0"); !ok {
		t.Fatal("data-only thread not interned")
	}
	if idx.NumLocks() != 4 { // L0 (held only), L1..L3
		t.Fatalf("NumLocks = %d, want 4", idx.NumLocks())
	}

	// Held postings: L1 is held by each writer's second tuple.
	held := idx.HeldBy("L1")
	if len(held) != 2 {
		t.Fatalf("HeldBy(L1) = %d tuples, want 2", len(held))
	}
	for _, tp := range held {
		if !tp.HoldsLock("L1") {
			t.Fatalf("posting %v does not hold L1", tp)
		}
	}
	if id, ok := idx.LockID("L1"); !ok || len(idx.HeldByID(id)) != 2 {
		t.Fatal("HeldByID disagrees with HeldBy")
	}

	// Acquisition postings: w0 acquires L2 exactly once, in program order.
	acq := idx.AcquiresOf("w0", "L2")
	if len(acq) != 1 || acq[0].Thread != "w0" || acq[0].Lock != "L2" {
		t.Fatalf("AcquiresOf(w0, L2) = %v", acq)
	}
	if got := idx.AcquiresOf("w0", "absent"); got != nil {
		t.Fatalf("AcquiresOf absent lock = %v", got)
	}
	if got := idx.AcquiresOf("absent", "L2"); got != nil {
		t.Fatalf("AcquiresOf absent thread = %v", got)
	}

	// Program order within a posting list.
	all := idx.AcquiresOf("w0", "L1")
	for i := 1; i < len(all); i++ {
		if all[i-1].Pos >= all[i].Pos {
			t.Fatal("posting list out of program order")
		}
	}

	// Name round-trip.
	if id, _ := idx.ThreadID("w1"); idx.ThreadName(id) != "w1" {
		t.Fatal("thread name round-trip")
	}
	if id, _ := idx.LockID("L3"); idx.LockName(id) != "L3" {
		t.Fatal("lock name round-trip")
	}
}

// TestIndexIdempotent: Index() returns the same instance every call.
func TestIndexIdempotent(t *testing.T) {
	tr := indexTrace(1, 1)
	if tr.Index() != tr.Index() {
		t.Fatal("Index rebuilt")
	}
}

// BenchmarkStoreResolve pins the speedup of the index's store map over
// the linear scan the Generator used to do per load.
func BenchmarkStoreResolve(b *testing.B) {
	tr := indexTrace(1, 5000)
	keys := make([]Key, 0, 5000)
	for _, de := range tr.Data {
		if !de.Store {
			keys = append(keys, de.Observed)
		}
	}
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if scanStore(tr, keys[i%len(keys)]) == nil {
				b.Fatal("miss")
			}
		}
	})
	b.Run("index", func(b *testing.B) {
		idx := tr.Index()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if idx.Store(keys[i%len(keys)]) == nil {
				b.Fatal("miss")
			}
		}
	})
}
