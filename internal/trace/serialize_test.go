package trace

import (
	"bytes"
	"strings"
	"testing"

	"wolf/internal/vclock"
	"wolf/sim"
)

// roundTrip writes and re-reads a trace.
func roundTrip(t *testing.T, tr *Trace) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestSerializeRoundTrip: every field survives a write/read cycle.
func TestSerializeRoundTrip(t *testing.T) {
	prog, opts, _ := fig4()
	vt := vclock.NewTracker()
	rec := NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	out := sim.Run(prog, sim.FirstEnabled{}, opts)
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
	tr := rec.Finish(42)
	got := roundTrip(t, tr)

	if got.Seed != 42 || got.Steps != tr.Steps {
		t.Fatalf("metadata lost: seed=%d steps=%d", got.Seed, got.Steps)
	}
	if len(got.Tuples) != len(tr.Tuples) {
		t.Fatalf("tuples = %d, want %d", len(got.Tuples), len(tr.Tuples))
	}
	for i, tp := range tr.Tuples {
		g := got.Tuples[i]
		if g.Thread != tp.Thread || g.Lock != tp.Lock || g.Key != tp.Key ||
			g.Tau != tp.Tau || g.Idx != tp.Idx || len(g.Held) != len(tp.Held) {
			t.Fatalf("tuple %d mismatch: %v vs %v", i, g, tp)
		}
		for j := range tp.Held {
			if g.Held[j] != tp.Held[j] {
				t.Fatalf("tuple %d held %d mismatch", i, j)
			}
		}
	}
	if len(got.Clocks) != len(tr.Clocks) {
		t.Fatalf("clocks = %d, want %d", len(got.Clocks), len(tr.Clocks))
	}
	for i := range tr.Clocks {
		for j := range tr.Clocks[i] {
			if got.Clocks[i].At(sim.ThreadID(j)) != tr.Clocks[i][j] {
				t.Fatalf("clock %d/%d mismatch", i, j)
			}
		}
	}
	// Per-thread views are rebuilt.
	if len(got.ByThread("main")) != len(tr.ByThread("main")) {
		t.Fatal("byThread not rebuilt")
	}
}

// TestReadRejectsBadVersion guards the version gate.
func TestReadRejectsBadVersion(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"version":99,"tuples":[]}`)); err == nil {
		t.Fatal("expected version error")
	}
}

// TestReadRejectsGarbage rejects malformed input.
func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
}

// TestReadRejectsInconsistentPositions: tuple positions must match their
// per-thread order.
func TestReadRejectsInconsistentPositions(t *testing.T) {
	in := `{"version":1,"tuples":[{"Thread":"main","Lock":"L","Pos":5}]}`
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("expected position error")
	}
}
