package trace

import (
	"fmt"

	"wolf/sim"
)

// DataEvent is one recorded shared-variable access. Data events let the
// Generator add value-flow (type-V) constraints to the synchronization
// dependency graph — the data-dependency extension the paper proposes
// as future work in Section 4.4.
type DataEvent struct {
	// Thread is the accessing thread's stable name.
	Thread string
	// Var is the variable's stable name.
	Var string
	// Store is true for writes.
	Store bool
	// Site is the access's source location.
	Site string
	// Key is the stable cross-run identity of the access (its own
	// occurrence counter, shared with the acquisition key space).
	Key Key
	// Observed is the key of the store whose value this load returned;
	// zero for stores, for loads of the initial value, and for loads of
	// a value the reading thread itself wrote last.
	Observed Key
	// PosAfter is the number of lock-acquisition tuples the thread had
	// recorded when the access happened: the event sits between tuple
	// PosAfter-1 and tuple PosAfter in program order.
	PosAfter int
	// Idx is the per-run execution index.
	Idx sim.Index
}

// String formats the event for diagnostics.
func (d *DataEvent) String() string {
	kind := "load"
	if d.Store {
		kind = "store"
	}
	return fmt.Sprintf("%s(%s)@%s by %s", kind, d.Var, d.Site, d.Thread)
}

// recordData handles OpLoad/OpStore events inside the Recorder.
func (r *Recorder) recordData(ev sim.Event) {
	name := ev.Thread.Name()
	de := &DataEvent{
		Thread:   name,
		Var:      ev.Op.Var.Name(),
		Store:    ev.Op.Kind == sim.OpStore,
		Site:     ev.Op.Site,
		Key:      CountKey(r.occ, name, ev.Op.Site),
		PosAfter: len(r.byThread[name]),
		Idx:      ev.Index,
	}
	if de.Store {
		r.lastStore[de.Var] = de.Key
	} else if last, ok := r.lastStore[de.Var]; ok && last.Thread != name {
		de.Observed = last
	}
	r.data = append(r.data, de)
	r.dataByThread[name] = append(r.dataByThread[name], de)
}
