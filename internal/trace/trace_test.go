package trace

import (
	"testing"

	"wolf/internal/vclock"
	"wolf/sim"
)

// fig4 builds the paper's Figure 4 program. Sites are the paper's
// execution indices rendered as strings so tests can refer to them.
func fig4() (sim.Program, sim.Options, func() (*sim.Lock, *sim.Lock, *sim.Lock)) {
	var l1, l2, l3 *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		l1, l2, l3 = w.NewLock("l1"), w.NewLock("l2"), w.NewLock("l3")
	}}
	t3body := func(u *sim.Thread) {
		u.Lock(l3, "31")
		u.Lock(l2, "32")
		u.Lock(l1, "33")
		u.Unlock(l1, "34")
		u.Unlock(l2, "35")
		u.Unlock(l3, "36")
	}
	t2body := func(u *sim.Thread) { u.Go("t3", t3body, "21") }
	prog := func(th *sim.Thread) {
		th.Lock(l1, "11")
		th.Lock(l2, "12")
		th.Unlock(l2, "13")
		th.Unlock(l1, "14")
		th.Go("t2", t2body, "15")
		th.Lock(l3, "16")
		th.Unlock(l3, "17")
		th.Lock(l1, "18")
		th.Lock(l2, "19")
		th.Unlock(l2, "20")
		th.Unlock(l1, "21")
	}
	return prog, opts, func() (*sim.Lock, *sim.Lock, *sim.Lock) { return l1, l2, l3 }
}

// Record runs prog with an extended (timestamped) recorder.
func record(t *testing.T, prog sim.Program, opts sim.Options, s sim.Strategy) *Trace {
	t.Helper()
	vt := vclock.NewTracker()
	rec := NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	out := sim.Run(prog, s, opts)
	if out.Kind == sim.ProgramError {
		t.Fatalf("outcome = %v", out)
	}
	return rec.Finish(0)
}

// TestFigure5Dsigma reproduces the extended Dσ on the right of Figure 5:
// eight tuples with the timestamps the paper lists.
func TestFigure5Dsigma(t *testing.T) {
	prog, opts, _ := fig4()
	tr := record(t, prog, opts, sim.FirstEnabled{})
	if len(tr.Tuples) != 8 {
		t.Fatalf("|Dσ| = %d, want 8:\n%v", len(tr.Tuples), tr)
	}
	main := tr.ByThread("main")
	t3 := tr.ByThread("main/t2.0/t3.0")
	if len(main) != 5 || len(t3) != 3 {
		t.Fatalf("per-thread tuple counts = %d/%d, want 5/3", len(main), len(t3))
	}
	// η'2 = (t1, {ℓ1}, ℓ2, {11,12}, 1)
	eta2 := main[1]
	if eta2.Lock != "l2" || len(eta2.Held) != 1 || eta2.Held[0].Lock != "l1" || eta2.Tau != 1 {
		t.Errorf("η2 = %v, want (main,{l1},l2,...,1)", eta2)
	}
	if eta2.Held[0].Idx != (sim.Index{Thread: "main", Seq: 1}) {
		t.Errorf("η2 context = %v, want main:1", eta2.Held[0].Idx)
	}
	// η'5 = (t3, {ℓ3,ℓ2}, ℓ1, {31,32,33}, 1)
	eta5 := t3[2]
	if eta5.Lock != "l1" || len(eta5.Held) != 2 || eta5.Tau != 1 {
		t.Errorf("η5 = %v, want (t3,{l3,l2},l1,...,1)", eta5)
	}
	if eta5.Held[0].Lock != "l3" || eta5.Held[1].Lock != "l2" {
		t.Errorf("η5 lockset order = %v, want [l3 l2]", eta5.LockNames())
	}
	// η'6 = (t1, {}, ℓ3, {16}, 2): timestamp advanced to 2 after starting t2.
	eta6 := main[2]
	if eta6.Lock != "l3" || len(eta6.Held) != 0 || eta6.Tau != 2 {
		t.Errorf("η6 = %v, want (main,{},l3,...,2)", eta6)
	}
	// η'8 = (t1, {ℓ1}, ℓ2, {18,19}, 2)
	eta8 := main[4]
	if eta8.Lock != "l2" || eta8.Tau != 2 || len(eta8.Held) != 1 {
		t.Errorf("η8 = %v, want (main,{l1},l2,...,2)", eta8)
	}
}

// TestMuFunction: µ maps held locks to their context indices and the
// pending lock to the tuple's own index.
func TestMuFunction(t *testing.T) {
	prog, opts, _ := fig4()
	tr := record(t, prog, opts, sim.FirstEnabled{})
	eta5 := tr.ByThread("main/t2.0/t3.0")[2]
	t3 := "main/t2.0/t3.0"
	if k, ok := eta5.Mu("l3"); !ok || k != (Key{Thread: t3, Site: "31", Occ: 1}) {
		t.Errorf("µ5(l3) = %v/%v, want %s@31#1", k, ok, t3)
	}
	if k, ok := eta5.Mu("l2"); !ok || k != (Key{Thread: t3, Site: "32", Occ: 1}) {
		t.Errorf("µ5(l2) = %v/%v, want %s@32#1", k, ok, t3)
	}
	if k, ok := eta5.Mu("l1"); !ok || k != eta5.Key {
		t.Errorf("µ5(l1) = %v/%v, want own key %v", k, ok, eta5.Key)
	}
	if _, ok := eta5.Mu("nonexistent"); ok {
		t.Error("µ5(nonexistent) should not resolve")
	}
}

// TestReentrantAcquisitionsNotRecorded: only first acquisitions enter Dσ.
func TestReentrantAcquisitionsNotRecorded(t *testing.T) {
	var l *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) { l = w.NewLock("L") }}
	prog := func(th *sim.Thread) {
		th.Lock(l, "a")
		th.Lock(l, "b")
		th.Unlock(l, "c")
		th.Unlock(l, "d")
	}
	tr := record(t, prog, opts, sim.FirstEnabled{})
	if len(tr.Tuples) != 1 {
		t.Fatalf("|Dσ| = %d, want 1 (reentrant skipped):\n%v", len(tr.Tuples), tr)
	}
}

// TestOutOfOrderRelease: releasing locks in non-LIFO order keeps the
// lockset correct (Java allows it through explicit monitors).
func TestOutOfOrderRelease(t *testing.T) {
	var a, b, c *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b, c = w.NewLock("A"), w.NewLock("B"), w.NewLock("C")
	}}
	prog := func(th *sim.Thread) {
		th.Lock(a, "1")
		th.Lock(b, "2")
		th.Unlock(a, "3") // out of order
		th.Lock(c, "4")
		th.Unlock(c, "5")
		th.Unlock(b, "6")
	}
	tr := record(t, prog, opts, sim.FirstEnabled{})
	last := tr.ByThread("main")[2]
	if last.Lock != "C" {
		t.Fatalf("last tuple lock = %s, want C", last.Lock)
	}
	if got := last.LockNames(); len(got) != 1 || got[0] != "B" {
		t.Fatalf("lockset at C = %v, want [B]", got)
	}
}

// TestPrefixSlicing: D'σ prefixes stop strictly before the given position.
func TestPrefixSlicing(t *testing.T) {
	prog, opts, _ := fig4()
	tr := record(t, prog, opts, sim.FirstEnabled{})
	main := tr.ByThread("main")
	pre := tr.Prefix("main", main[4].Pos)
	if len(pre) != 4 {
		t.Fatalf("prefix length = %d, want 4", len(pre))
	}
	for _, tp := range pre {
		if tp.Idx.Seq >= main[4].Idx.Seq {
			t.Errorf("prefix contains tuple %v at or after the boundary", tp)
		}
	}
	if got := tr.Prefix("main", 99); len(got) != 5 {
		t.Errorf("over-long prefix = %d tuples, want 5", len(got))
	}
	if got := tr.Prefix("absent", 3); len(got) != 0 {
		t.Errorf("prefix of unknown thread = %d tuples, want 0", len(got))
	}
}

// TestThreadsOrder lists threads by first acquisition.
func TestThreadsOrder(t *testing.T) {
	prog, opts, _ := fig4()
	tr := record(t, prog, opts, sim.FirstEnabled{})
	names := tr.Threads()
	if len(names) != 2 || names[0] != "main" || names[1] != "main/t2.0/t3.0" {
		t.Fatalf("threads = %v", names)
	}
}

// TestBaseRecorderWithoutTimestamps: a nil tracker records Tau = Bottom,
// modeling the original iGoodLock detector.
func TestBaseRecorderWithoutTimestamps(t *testing.T) {
	prog, opts, _ := fig4()
	rec := NewRecorder(nil)
	opts.Listeners = append(opts.Listeners, rec)
	out := sim.Run(prog, sim.FirstEnabled{}, opts)
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
	tr := rec.Finish(0)
	for _, tp := range tr.Tuples {
		if tp.Tau != vclock.Bottom {
			t.Fatalf("tuple %v has timestamp without a tracker", tp)
		}
	}
	if tr.Clocks != nil {
		t.Fatal("base trace should have no clocks")
	}
}
