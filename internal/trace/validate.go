package trace

// Trace validation: structural integrity checks that gate analysis.
// Decoding only proves the bytes parse; Validate proves the decoded
// relation Dσ is a trace some execution could actually have recorded —
// every tuple names its thread and locks, locksets are consistent,
// positions are dense, thread IDs resolve into the clock tables, and
// per-thread timestamps never run backwards. wolfd runs it on every
// upload and rejects failures with HTTP 422 before any analysis work is
// queued.
//
// Every invariant here is deliberately per-thread, because recorders
// fall into two classes with different global guarantees:
//
//   - The sim recorder serializes the whole execution, so its traces
//     happen to be globally ordered — taus grow along the entire trace
//     and the clock/timestamp tables are fully populated.
//   - Runtime recorders (wolfsync) observe real goroutines running on
//     real CPUs. Trace order is a drain order, not a happens-before
//     order: tuples from concurrent goroutines interleave arbitrarily,
//     and wall-clock taus from different goroutines may run "backwards"
//     across threads (goroutine A's τ=1000 can precede B's τ=50 in
//     trace order). That skew is legal — only each thread's own
//     subsequence must be non-decreasing, which is exactly what
//     InvalidNonMonotonicTau checks. Validate never compares taus
//     across threads.
//
// Runtime recorders also omit the clock and timestamp tables entirely
// (vector clocks are a sim artifact); with no tables recorded, thread
// IDs only need to be non-negative, and Bottom taus are exempt from the
// monotonicity rule. What survives recorder class is the per-thread
// core the detector depends on: dense positions, self-consistent
// keys/indices, and well-formed locksets.

import (
	"errors"
	"fmt"

	"wolf/internal/vclock"
)

// ErrInvalid is the sentinel every validation error wraps
// (errors.Is(err, ErrInvalid)).
var ErrInvalid = errors.New("invalid trace")

// Validation classes: the distinct corruption categories Validate
// detects. Each ValidationError carries exactly one.
const (
	// InvalidMissingField: a tuple is nil or lacks a thread, lock or
	// site name.
	InvalidMissingField = "missing-field"
	// InvalidBadKey: a tuple's stable key or execution index contradicts
	// the tuple itself (wrong thread, wrong site, non-positive occurrence).
	InvalidBadKey = "bad-key"
	// InvalidBadPosition: per-thread positions are not dense 0..n-1 in
	// trace order.
	InvalidBadPosition = "bad-position"
	// InvalidHeldSet: a lockset entry is empty, duplicated, or contains
	// the lock being acquired (an acquisition is never in its own L_t).
	InvalidHeldSet = "held-set"
	// InvalidThreadID: a tuple's thread ID does not resolve into the
	// recorded clock/timestamp tables.
	InvalidThreadID = "thread-id"
	// InvalidClockShape: the clock and timestamp tables disagree in
	// length, or a clock vector is wider than the thread table.
	InvalidClockShape = "clock-shape"
	// InvalidNonMonotonicTau: a thread's timestamps decrease along its
	// own tuple sequence (τ is a per-thread logical clock; it only
	// grows). Taus are never compared across threads: wall-clock skew
	// between concurrent goroutines is legal in runtime-recorded traces.
	InvalidNonMonotonicTau = "non-monotonic-tau"
)

// ValidationError describes one structural defect found by Validate.
type ValidationError struct {
	// Class is the corruption class (one of the Invalid* constants).
	Class string
	// Tuple is the index of the offending tuple in Dσ, -1 for
	// trace-level defects.
	Tuple int
	// Detail is a human-readable explanation.
	Detail string
}

// Error implements error.
func (e *ValidationError) Error() string {
	if e.Tuple < 0 {
		return fmt.Sprintf("trace: invalid (%s): %s", e.Class, e.Detail)
	}
	return fmt.Sprintf("trace: invalid (%s) at tuple %d: %s", e.Class, e.Tuple, e.Detail)
}

// Unwrap ties every validation error to ErrInvalid.
func (e *ValidationError) Unwrap() error { return ErrInvalid }

// invalidf builds a ValidationError.
func invalidf(class string, tuple int, format string, args ...any) error {
	return &ValidationError{Class: class, Tuple: tuple, Detail: fmt.Sprintf(format, args...)}
}

// ValidateClocks checks the clock and timestamp tables of a trace: the
// two tables must agree in length when both were recorded, and no clock
// vector may be wider than the thread table. It is split out of
// Validate so the streaming decoder can run it as soon as the header
// sections (taus, clocks) complete, before any tuple arrives.
func ValidateClocks(clocks []vclock.Vector, taus []int) error {
	if len(taus) > 0 && len(clocks) > 0 && len(taus) != len(clocks) {
		return invalidf(InvalidClockShape, -1,
			"%d timestamps but %d clock vectors", len(taus), len(clocks))
	}
	for i, v := range clocks {
		if len(v) > len(clocks) {
			return invalidf(InvalidClockShape, -1,
				"clock vector %d has %d entries for %d threads", i, len(v), len(clocks))
		}
	}
	return nil
}

// TupleValidator applies Validate's per-tuple rules incrementally, in
// trace order — the mid-stream 422 gate of the streaming ingestion
// path. Feed every tuple through Check as it decodes; the first defect
// is returned as the same *ValidationError batch validation would
// produce.
type TupleValidator struct {
	// nThreads is the recorded thread-table size tuples' thread IDs must
	// resolve into (0 when neither clocks nor taus were recorded).
	nThreads int
	pos      map[string]int
	lastTau  map[string]int
	n        int
}

// NewTupleValidator returns a validator for a trace whose clock and
// timestamp tables are clocks and taus (either may be empty).
func NewTupleValidator(clocks []vclock.Vector, taus []int) *TupleValidator {
	nThreads := len(clocks)
	if nThreads == 0 {
		nThreads = len(taus)
	}
	return &TupleValidator{
		nThreads: nThreads,
		pos:      make(map[string]int),
		lastTau:  make(map[string]int),
	}
}

// Check validates the next tuple in trace order, returning a
// *ValidationError for the first defect found.
func (v *TupleValidator) Check(tp *Tuple) error {
	i := v.n
	v.n++
	if tp == nil {
		return invalidf(InvalidMissingField, i, "nil tuple")
	}
	if tp.Thread == "" || tp.Lock == "" || tp.Site == "" {
		return invalidf(InvalidMissingField, i,
			"thread=%q lock=%q site=%q", tp.Thread, tp.Lock, tp.Site)
	}
	if tp.Key.Thread != tp.Thread || tp.Key.Site != tp.Site || tp.Key.Occ < 1 {
		return invalidf(InvalidBadKey, i, "key %v contradicts tuple %v", tp.Key, tp)
	}
	if tp.Idx.Thread != tp.Thread || tp.Idx.Seq < 1 {
		return invalidf(InvalidBadKey, i, "index %v contradicts tuple %v", tp.Idx, tp)
	}
	if tp.Pos != v.pos[tp.Thread] {
		return invalidf(InvalidBadPosition, i,
			"thread %s position %d, want %d", tp.Thread, tp.Pos, v.pos[tp.Thread])
	}
	v.pos[tp.Thread]++
	seen := make(map[string]bool, len(tp.Held))
	for _, h := range tp.Held {
		switch {
		case h.Lock == "":
			return invalidf(InvalidHeldSet, i, "lockset entry without a lock name")
		case h.Lock == tp.Lock:
			return invalidf(InvalidHeldSet, i,
				"acquired lock %s appears in its own lockset", tp.Lock)
		case seen[h.Lock]:
			return invalidf(InvalidHeldSet, i, "lock %s held twice", h.Lock)
		}
		seen[h.Lock] = true
	}
	// Thread IDs index the clock and timestamp tables; when neither
	// was recorded (the base, timestamp-free detector) any
	// non-negative dense ID is acceptable.
	if tp.ThreadID < 0 || (v.nThreads > 0 && int(tp.ThreadID) >= v.nThreads) {
		return invalidf(InvalidThreadID, i,
			"thread id %d outside recorded table of %d", tp.ThreadID, v.nThreads)
	}
	if tp.Tau != vclock.Bottom {
		if last, ok := v.lastTau[tp.Thread]; ok && tp.Tau < last {
			return invalidf(InvalidNonMonotonicTau, i,
				"thread %s timestamp %d after %d", tp.Thread, tp.Tau, last)
		}
		v.lastTau[tp.Thread] = tp.Tau
	}
	return nil
}

// Validate checks the structural integrity of a decoded trace and
// returns the first defect found as a *ValidationError (nil when the
// trace is well-formed). It never mutates the trace. It is the batch
// composition of ValidateClocks and TupleValidator, which the streaming
// decoder runs incrementally instead.
func Validate(tr *Trace) error {
	if tr == nil {
		return invalidf(InvalidMissingField, -1, "nil trace")
	}
	if err := ValidateClocks(tr.Clocks, tr.Taus); err != nil {
		return err
	}
	v := NewTupleValidator(tr.Clocks, tr.Taus)
	for _, tp := range tr.Tuples {
		if err := v.Check(tp); err != nil {
			return err
		}
	}
	return nil
}
