package trace

// Trace validation: structural integrity checks that gate analysis.
// Decoding only proves the bytes parse; Validate proves the decoded
// relation Dσ is a trace some execution could actually have recorded —
// every tuple names its thread and locks, locksets are consistent,
// positions are dense, thread IDs resolve into the clock tables, and
// per-thread timestamps never run backwards. wolfd runs it on every
// upload and rejects failures with HTTP 422 before any analysis work is
// queued.

import (
	"errors"
	"fmt"

	"wolf/internal/vclock"
)

// ErrInvalid is the sentinel every validation error wraps
// (errors.Is(err, ErrInvalid)).
var ErrInvalid = errors.New("invalid trace")

// Validation classes: the distinct corruption categories Validate
// detects. Each ValidationError carries exactly one.
const (
	// InvalidMissingField: a tuple is nil or lacks a thread, lock or
	// site name.
	InvalidMissingField = "missing-field"
	// InvalidBadKey: a tuple's stable key or execution index contradicts
	// the tuple itself (wrong thread, wrong site, non-positive occurrence).
	InvalidBadKey = "bad-key"
	// InvalidBadPosition: per-thread positions are not dense 0..n-1 in
	// trace order.
	InvalidBadPosition = "bad-position"
	// InvalidHeldSet: a lockset entry is empty, duplicated, or contains
	// the lock being acquired (an acquisition is never in its own L_t).
	InvalidHeldSet = "held-set"
	// InvalidThreadID: a tuple's thread ID does not resolve into the
	// recorded clock/timestamp tables.
	InvalidThreadID = "thread-id"
	// InvalidClockShape: the clock and timestamp tables disagree in
	// length, or a clock vector is wider than the thread table.
	InvalidClockShape = "clock-shape"
	// InvalidNonMonotonicTau: a thread's timestamps decrease along its
	// own tuple sequence (τ is a per-thread logical clock; it only grows).
	InvalidNonMonotonicTau = "non-monotonic-tau"
)

// ValidationError describes one structural defect found by Validate.
type ValidationError struct {
	// Class is the corruption class (one of the Invalid* constants).
	Class string
	// Tuple is the index of the offending tuple in Dσ, -1 for
	// trace-level defects.
	Tuple int
	// Detail is a human-readable explanation.
	Detail string
}

// Error implements error.
func (e *ValidationError) Error() string {
	if e.Tuple < 0 {
		return fmt.Sprintf("trace: invalid (%s): %s", e.Class, e.Detail)
	}
	return fmt.Sprintf("trace: invalid (%s) at tuple %d: %s", e.Class, e.Tuple, e.Detail)
}

// Unwrap ties every validation error to ErrInvalid.
func (e *ValidationError) Unwrap() error { return ErrInvalid }

// invalidf builds a ValidationError.
func invalidf(class string, tuple int, format string, args ...any) error {
	return &ValidationError{Class: class, Tuple: tuple, Detail: fmt.Sprintf(format, args...)}
}

// Validate checks the structural integrity of a decoded trace and
// returns the first defect found as a *ValidationError (nil when the
// trace is well-formed). It never mutates the trace.
func Validate(tr *Trace) error {
	if tr == nil {
		return invalidf(InvalidMissingField, -1, "nil trace")
	}
	if len(tr.Taus) > 0 && len(tr.Clocks) > 0 && len(tr.Taus) != len(tr.Clocks) {
		return invalidf(InvalidClockShape, -1,
			"%d timestamps but %d clock vectors", len(tr.Taus), len(tr.Clocks))
	}
	for i, v := range tr.Clocks {
		if len(v) > len(tr.Clocks) {
			return invalidf(InvalidClockShape, -1,
				"clock vector %d has %d entries for %d threads", i, len(v), len(tr.Clocks))
		}
	}
	nThreads := len(tr.Clocks)
	if nThreads == 0 {
		nThreads = len(tr.Taus)
	}
	pos := make(map[string]int)
	lastTau := make(map[string]int)
	for i, tp := range tr.Tuples {
		if tp == nil {
			return invalidf(InvalidMissingField, i, "nil tuple")
		}
		if tp.Thread == "" || tp.Lock == "" || tp.Site == "" {
			return invalidf(InvalidMissingField, i,
				"thread=%q lock=%q site=%q", tp.Thread, tp.Lock, tp.Site)
		}
		if tp.Key.Thread != tp.Thread || tp.Key.Site != tp.Site || tp.Key.Occ < 1 {
			return invalidf(InvalidBadKey, i, "key %v contradicts tuple %v", tp.Key, tp)
		}
		if tp.Idx.Thread != tp.Thread || tp.Idx.Seq < 1 {
			return invalidf(InvalidBadKey, i, "index %v contradicts tuple %v", tp.Idx, tp)
		}
		if tp.Pos != pos[tp.Thread] {
			return invalidf(InvalidBadPosition, i,
				"thread %s position %d, want %d", tp.Thread, tp.Pos, pos[tp.Thread])
		}
		pos[tp.Thread]++
		seen := make(map[string]bool, len(tp.Held))
		for _, h := range tp.Held {
			switch {
			case h.Lock == "":
				return invalidf(InvalidHeldSet, i, "lockset entry without a lock name")
			case h.Lock == tp.Lock:
				return invalidf(InvalidHeldSet, i,
					"acquired lock %s appears in its own lockset", tp.Lock)
			case seen[h.Lock]:
				return invalidf(InvalidHeldSet, i, "lock %s held twice", h.Lock)
			}
			seen[h.Lock] = true
		}
		// Thread IDs index the clock and timestamp tables; when neither
		// was recorded (the base, timestamp-free detector) any
		// non-negative dense ID is acceptable.
		if tp.ThreadID < 0 || (nThreads > 0 && int(tp.ThreadID) >= nThreads) {
			return invalidf(InvalidThreadID, i,
				"thread id %d outside recorded table of %d", tp.ThreadID, nThreads)
		}
		if tp.Tau != vclock.Bottom {
			if last, ok := lastTau[tp.Thread]; ok && tp.Tau < last {
				return invalidf(InvalidNonMonotonicTau, i,
					"thread %s timestamp %d after %d", tp.Thread, tp.Tau, last)
			}
			lastTau[tp.Thread] = tp.Tau
		}
	}
	return nil
}
