package trace

import (
	"bytes"
	"errors"
	"testing"

	"wolf/sim"
)

// validTrace returns a freshly recorded, well-formed Figure 4 trace.
func validTrace(t *testing.T) *Trace {
	t.Helper()
	return recordFig4(t)
}

// TestValidateAcceptsRecorded: everything the Recorder produces is valid,
// with and without timestamps.
func TestValidateAcceptsRecorded(t *testing.T) {
	if err := Validate(validTrace(t)); err != nil {
		t.Fatalf("recorded trace rejected: %v", err)
	}
	prog, opts, _ := fig4()
	rec := NewRecorder(nil)
	opts.Listeners = append(opts.Listeners, rec)
	sim.Run(prog, sim.FirstEnabled{}, opts)
	if err := Validate(rec.Finish(1)); err != nil {
		t.Fatalf("timestamp-free trace rejected: %v", err)
	}
}

// TestValidateSurvivesRoundTrip: validity is preserved by both codecs.
func TestValidateSurvivesRoundTrip(t *testing.T) {
	tr := validTrace(t)
	var js, bin bytes.Buffer
	if err := tr.Write(&js); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"json": js.Bytes(), "binary": bin.Bytes()} {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Validate(got); err != nil {
			t.Fatalf("%s: decoded trace rejected: %v", name, err)
		}
	}
}

// TestValidateCorruptionClasses: every corruption class is detected,
// typed, and wraps ErrInvalid.
func TestValidateCorruptionClasses(t *testing.T) {
	cases := []struct {
		name    string
		class   string
		corrupt func(tr *Trace)
	}{
		{"nil-tuple", InvalidMissingField, func(tr *Trace) {
			tr.Tuples[0] = nil
		}},
		{"empty-lock", InvalidMissingField, func(tr *Trace) {
			tr.Tuples[0].Lock = ""
		}},
		{"key-wrong-thread", InvalidBadKey, func(tr *Trace) {
			tr.Tuples[0].Key.Thread = "ghost"
		}},
		{"key-zero-occ", InvalidBadKey, func(tr *Trace) {
			tr.Tuples[0].Key.Occ = 0
		}},
		{"index-wrong-thread", InvalidBadKey, func(tr *Trace) {
			tr.Tuples[0].Idx.Thread = "ghost"
		}},
		{"position-gap", InvalidBadPosition, func(tr *Trace) {
			tr.Tuples[0].Pos = 7
		}},
		{"held-self", InvalidHeldSet, func(tr *Trace) {
			last := lastHeldTuple(tr)
			last.Held[0].Lock = last.Lock
		}},
		{"held-duplicate", InvalidHeldSet, func(tr *Trace) {
			last := lastHeldTuple(tr)
			last.Held = append(last.Held, last.Held[0])
		}},
		{"held-empty-name", InvalidHeldSet, func(tr *Trace) {
			lastHeldTuple(tr).Held[0].Lock = ""
		}},
		{"thread-id-range", InvalidThreadID, func(tr *Trace) {
			tr.Tuples[0].ThreadID = 99
		}},
		{"thread-id-negative", InvalidThreadID, func(tr *Trace) {
			tr.Tuples[0].ThreadID = -1
		}},
		{"clock-shape", InvalidClockShape, func(tr *Trace) {
			tr.Taus = tr.Taus[:len(tr.Taus)-1]
		}},
		{"tau-backwards", InvalidNonMonotonicTau, func(tr *Trace) {
			for _, name := range tr.Threads() {
				if ts := tr.ByThread(name); len(ts) >= 2 {
					ts[0].Tau = 1 << 20
					return
				}
			}
			panic("no thread with two acquisitions in fixture")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := validTrace(t)
			tc.corrupt(tr)
			err := Validate(tr)
			if err == nil {
				t.Fatalf("corruption %s accepted", tc.name)
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("error %v does not wrap ErrInvalid", err)
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("error %T is not a *ValidationError", err)
			}
			if ve.Class != tc.class {
				t.Fatalf("class = %s, want %s (%v)", ve.Class, tc.class, err)
			}
		})
	}
}

// lastHeldTuple returns a tuple with a non-empty lockset.
func lastHeldTuple(tr *Trace) *Tuple {
	for i := len(tr.Tuples) - 1; i >= 0; i-- {
		if len(tr.Tuples[i].Held) > 0 {
			return tr.Tuples[i]
		}
	}
	panic("no tuple with held locks in fixture")
}

// TestValidateNil: a nil trace is rejected, not dereferenced.
func TestValidateNil(t *testing.T) {
	err := Validate(nil)
	if err == nil || !errors.Is(err, ErrInvalid) {
		t.Fatalf("Validate(nil) = %v", err)
	}
}

// TestReadBinaryErrCorrupt: every binary decode failure is typed, so
// callers can classify corrupt input without string matching.
func TestReadBinaryErrCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad-magic":   []byte("XXXXrest"),
		"magic-only":  []byte("WTRC"),
		"truncated":   corruptBinary(t, func(b []byte) []byte { return b[:len(b)/2] }),
		"huge-string": append([]byte("WTRC\x01\x00\x00\x00\x00\x01"), 0xff, 0xff, 0xff, 0xff, 0x7f),
	}
	// bad-position: a structurally valid stream whose tuple positions
	// contradict each other.
	tr := recordFig4(t)
	tr.Tuples[0].Pos = 9
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	cases["bad-position"] = buf.Bytes()

	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ReadBinary(bytes.NewReader(data))
			if err == nil {
				t.Fatal("corrupt input accepted")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
		})
	}
}

// TestReadBinaryOversizedCounts: adversarial count prefixes (claiming
// billions of elements) fail fast on the truncated stream instead of
// allocating for the claimed size.
func TestReadBinaryOversizedCounts(t *testing.T) {
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0x0f} // uvarint ~4.2e9
	// Header: magic, version=1, seed=0, steps=0, then a huge tau count
	// with no tau data behind it.
	data := append([]byte("WTRC\x01\x00\x00"), huge...)
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("oversized tau count accepted")
	} else if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v does not wrap ErrCorrupt", err)
	}
	// Same for the tuple count: valid empty collections, then a huge
	// tuple count.
	data = append([]byte("WTRC\x01\x00\x00\x00\x00\x00"), huge...)
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("oversized tuple count accepted")
	} else if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v does not wrap ErrCorrupt", err)
	}
}

// TestValidateCrossThreadTauSkew: runtime recorders stamp tuples with
// per-goroutine wall-clock readings, so in trace order (a drain order,
// not a happens-before order) taus from concurrent threads interleave
// arbitrarily — thread A's τ=1000 can precede thread B's τ=50. Validate
// must accept that skew: τ monotonicity is strictly per-thread.
func TestValidateCrossThreadTauSkew(t *testing.T) {
	mk := func(thread string, tid sim.ThreadID, seq, occ, pos, tau int) *Tuple {
		return &Tuple{
			Thread:   thread,
			ThreadID: tid,
			Lock:     "L",
			Site:     "s.go:1",
			Idx:      sim.Index{Thread: thread, Seq: seq},
			Key:      Key{Thread: thread, Site: "s.go:1", Occ: occ},
			Tau:      tau,
			Pos:      pos,
		}
	}
	tups := []*Tuple{
		mk("main/a.0", 0, 1, 1, 0, 1000),
		mk("main/b.0", 1, 1, 1, 0, 50), // far behind a.0 in trace order: legal
		mk("main/a.0", 0, 2, 2, 1, 1001),
		mk("main/b.0", 1, 2, 2, 1, 60),
	}
	tr, err := Assemble(tups, nil, nil, len(tups), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(tr); err != nil {
		t.Fatalf("cross-thread tau skew rejected: %v", err)
	}

	// The per-thread rule still bites: make b.0's second tau decrease.
	tups[3].Tau = 40
	err = Validate(tr)
	var verr *ValidationError
	if !errors.As(err, &verr) || verr.Class != InvalidNonMonotonicTau {
		t.Fatalf("per-thread tau decrease not rejected: %v", err)
	}
}
