// Package trace records the lock dependency relation Dσ of a run — the
// data both the WOLF cycle detector and the Generator consume.
//
// Dσ is a sequence of tuples η = (t, L_t, ℓ, C_t, τ_t): thread t acquired
// lock ℓ while holding the locks in L_t, whose acquisitions happened at
// the execution indices in C_t, at thread timestamp τ_t (Section 3.1 and
// 3.2 of the paper). Only first (non-reentrant) acquisitions are
// recorded, matching Java monitor semantics.
package trace

import (
	"fmt"
	"strings"

	"wolf/internal/vclock"
	"wolf/sim"
)

// Key is the stable cross-run identity of one lock acquisition: the
// acquiring thread, the source site of the acquisition, and the 1-based
// occurrence count of that site within the thread. It plays the role of
// the paper's execution indices, which "identify instructions, objects
// and threads across runs": unlike a raw operation counter it survives
// control-flow divergence elsewhere in the thread.
type Key struct {
	// Thread is the stable thread name.
	Thread string
	// Site is the source location of the acquisition.
	Site string
	// Occ counts non-reentrant acquisitions at Site by Thread, 1-based.
	Occ int
}

// Zero reports whether the key is the zero value.
func (k Key) Zero() bool { return k == Key{} }

// String formats the key as thread@site#occ.
func (k Key) String() string { return fmt.Sprintf("%s@%s#%d", k.Thread, k.Site, k.Occ) }

// Less orders keys lexicographically for deterministic output.
func (k Key) Less(o Key) bool {
	if k.Thread != o.Thread {
		return k.Thread < o.Thread
	}
	if k.Site != o.Site {
		return k.Site < o.Site
	}
	return k.Occ < o.Occ
}

// Tuple is one element η of the lock dependency relation Dσ.
type Tuple struct {
	// Thread is the stable name of the acquiring thread t.
	Thread string
	// ThreadID is t's dense per-run identifier.
	ThreadID sim.ThreadID
	// Lock is the stable name of the lock ℓ being acquired.
	Lock string
	// Site is the source location of the acquisition.
	Site string
	// Idx is the per-run execution index of the acquisition.
	Idx sim.Index
	// Key is the stable cross-run identity of the acquisition (µ(ℓ)).
	Key Key
	// Tau is τ_t, the thread's timestamp at the acquisition (Bottom when
	// recorded by the base, timestamp-free detector).
	Tau int
	// Held lists the locks in L_t (excluding ℓ) in acquisition order.
	Held []HeldLock
	// Pos is the 0-based position of this tuple within the thread's own
	// tuple sequence, used to slice D'σ prefixes.
	Pos int
}

// HeldLock is one entry of a tuple's lockset with its acquisition context.
type HeldLock struct {
	// Lock is the stable lock name.
	Lock string
	// Idx is the per-run execution index where it was acquired (C_t
	// entry).
	Idx sim.Index
	// Key is the stable cross-run identity of that acquisition.
	Key Key
	// Site is the source location of that acquisition.
	Site string
}

// Mu returns the stable acquisition key associated with lock name within
// the tuple: the held acquisition for locks in L_t, or the tuple's own
// acquisition for ℓ itself. It implements the paper's µ function,
// extended to the pending lock as used by Algorithm 3's type-D edges.
func (tp *Tuple) Mu(lock string) (Key, bool) {
	if lock == tp.Lock {
		return tp.Key, true
	}
	for _, h := range tp.Held {
		if h.Lock == lock {
			return h.Key, true
		}
	}
	return Key{}, false
}

// SiteOf returns the source location of the acquisition of lock within
// the tuple (held or pending), if any.
func (tp *Tuple) SiteOf(lock string) (string, bool) {
	if lock == tp.Lock {
		return tp.Site, true
	}
	for _, h := range tp.Held {
		if h.Lock == lock {
			return h.Site, true
		}
	}
	return "", false
}

// HoldsLock reports whether lock is in the tuple's lockset L_t.
func (tp *Tuple) HoldsLock(lock string) bool {
	for _, h := range tp.Held {
		if h.Lock == lock {
			return true
		}
	}
	return false
}

// LockNames returns the names in L_t, in acquisition order.
func (tp *Tuple) LockNames() []string {
	out := make([]string, len(tp.Held))
	for i, h := range tp.Held {
		out[i] = h.Lock
	}
	return out
}

// StackDepth is the paper's SL statistic for one tuple: the number of
// lock acquisitions on the thread's stack including the pending one.
func (tp *Tuple) StackDepth() int { return len(tp.Held) + 1 }

// String renders the tuple like the paper: (t, {L}, ℓ, {C}, τ).
func (tp *Tuple) String() string {
	var ls, cs []string
	for _, h := range tp.Held {
		ls = append(ls, h.Lock)
		cs = append(cs, h.Idx.String())
	}
	cs = append(cs, tp.Idx.String())
	return fmt.Sprintf("(%s,{%s},%s,{%s},%d)",
		tp.Thread, strings.Join(ls, ","), tp.Lock, strings.Join(cs, ","), tp.Tau)
}

// Trace is the recorded Dσ of one run plus the per-thread views the
// Generator needs.
type Trace struct {
	// Tuples is Dσ in global execution order.
	Tuples []*Tuple
	// byThread indexes each thread's tuples in program order.
	byThread map[string][]*Tuple
	// Clocks is the final vector clock of every thread (by ThreadID).
	Clocks []vclock.Vector
	// Taus is the final scalar timestamp of every thread (by ThreadID).
	Taus []int
	// Data holds the recorded shared-variable accesses in execution
	// order.
	Data []*DataEvent
	// dataByThread indexes data events per thread in program order.
	dataByThread map[string][]*DataEvent
	// Steps is the length of the recorded run.
	Steps int
	// Seed is the schedule seed that produced the trace, so the run can
	// be regenerated.
	Seed int64

	// indexOnce lazily caches the derived analysis index (see Index).
	indexOnce
}

// ByThread returns thread's tuples in program order.
func (tr *Trace) ByThread(thread string) []*Tuple { return tr.byThread[thread] }

// DataByThread returns thread's shared-variable accesses in program
// order.
func (tr *Trace) DataByThread(thread string) []*DataEvent { return tr.dataByThread[thread] }

// Threads returns the names of all threads that acquired locks, in first
// acquisition order.
func (tr *Trace) Threads() []string {
	var names []string
	seen := make(map[string]bool)
	for _, tp := range tr.Tuples {
		if !seen[tp.Thread] {
			seen[tp.Thread] = true
			names = append(names, tp.Thread)
		}
	}
	return names
}

// Prefix returns the tuples of thread strictly before position pos — the
// D'σ slice for a deadlocking tuple at Pos = pos.
func (tr *Trace) Prefix(thread string, pos int) []*Tuple {
	ts := tr.byThread[thread]
	if pos > len(ts) {
		pos = len(ts)
	}
	if pos < 0 {
		pos = 0
	}
	return ts[:pos]
}

// String renders the full Dσ, one tuple per line.
func (tr *Trace) String() string {
	var sb strings.Builder
	for _, tp := range tr.Tuples {
		sb.WriteString(tp.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Recorder is a sim.Listener that builds a Trace. If Timestamps is
// non-nil it must appear earlier in the listener list so τ values are
// current when acquisitions are recorded.
type Recorder struct {
	// Timestamps supplies τ values; nil records Tau = Bottom (the base
	// iGoodLock detector is timestamp-free).
	Timestamps *vclock.Tracker

	tuples       []*Tuple
	byThread     map[string][]*Tuple
	stacks       map[string][]HeldLock
	occ          map[string]map[string]int
	data         []*DataEvent
	dataByThread map[string][]*DataEvent
	lastStore    map[string]Key
	steps        int
}

// NewRecorder returns a recorder stamping timestamps from tr (which may
// be nil for the base detector).
func NewRecorder(tr *vclock.Tracker) *Recorder {
	return &Recorder{
		Timestamps:   tr,
		byThread:     make(map[string][]*Tuple),
		stacks:       make(map[string][]HeldLock),
		occ:          make(map[string]map[string]int),
		dataByThread: make(map[string][]*DataEvent),
		lastStore:    make(map[string]Key),
	}
}

// NextKey returns the stable key the next non-reentrant acquisition at
// site by thread would receive. CountKey advances the counter; the
// replay strategy mirrors this bookkeeping.
func NextKey(occ map[string]map[string]int, thread, site string) Key {
	return Key{Thread: thread, Site: site, Occ: occ[thread][site] + 1}
}

// CountKey advances the per-thread per-site occurrence counter and
// returns the key just consumed.
func CountKey(occ map[string]map[string]int, thread, site string) Key {
	m := occ[thread]
	if m == nil {
		m = make(map[string]int)
		occ[thread] = m
	}
	m[site]++
	return Key{Thread: thread, Site: site, Occ: m[site]}
}

// OnEvent records lock acquisitions and maintains per-thread lock stacks.
// A monitor Wait fully releases the lock (popped like an unlock); the
// runtime's wait-resume reacquisition is recorded as a fresh acquisition,
// since it can block and participate in deadlocks like any other.
func (r *Recorder) OnEvent(ev sim.Event) {
	r.steps++
	switch ev.Op.Kind {
	case sim.OpLock, sim.OpWaitResume:
		if ev.Reentrant {
			return
		}
		name := ev.Thread.Name()
		stack := r.stacks[name]
		tau := vclock.Bottom
		if r.Timestamps != nil {
			tau = r.Timestamps.Tau(ev.Thread.ID())
		}
		key := CountKey(r.occ, name, ev.Op.Site)
		tp := &Tuple{
			Thread:   name,
			ThreadID: ev.Thread.ID(),
			Lock:     ev.Op.Lock.Name(),
			Site:     ev.Op.Site,
			Idx:      ev.Index,
			Key:      key,
			Tau:      tau,
			Held:     append([]HeldLock(nil), stack...),
			Pos:      len(r.byThread[name]),
		}
		r.tuples = append(r.tuples, tp)
		r.byThread[name] = append(r.byThread[name], tp)
		r.stacks[name] = append(stack, HeldLock{
			Lock: ev.Op.Lock.Name(),
			Idx:  ev.Index,
			Key:  key,
			Site: ev.Op.Site,
		})
	case sim.OpLoad, sim.OpStore:
		r.recordData(ev)
	case sim.OpUnlock, sim.OpWait:
		if ev.Reentrant {
			return
		}
		name := ev.Thread.Name()
		stack := r.stacks[name]
		// Java monitors release in any order relative to the stack;
		// remove the most recent matching entry.
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].Lock == ev.Op.Lock.Name() {
				r.stacks[name] = append(stack[:i:i], stack[i+1:]...)
				return
			}
		}
	}
}

// Finish assembles the Trace after the run completed.
func (r *Recorder) Finish(seed int64) *Trace {
	tr := &Trace{
		Tuples:       r.tuples,
		byThread:     r.byThread,
		Data:         r.data,
		dataByThread: r.dataByThread,
		Steps:        r.steps,
		Seed:         seed,
	}
	if r.Timestamps != nil {
		tr.Clocks = r.Timestamps.Snapshot()
		tr.Taus = r.Timestamps.Taus()
	}
	return tr
}
