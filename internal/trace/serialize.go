package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"wolf/internal/vclock"
)

// fileFormat is the on-disk representation of a Trace. The schema is
// versioned so recorded traces stay readable across tool versions.
type fileFormat struct {
	Version int           `json:"version"`
	Seed    int64         `json:"seed"`
	Steps   int           `json:"steps"`
	Taus    []int         `json:"taus,omitempty"`
	Clocks  [][]clockPair `json:"clocks,omitempty"`
	Tuples  []*Tuple      `json:"tuples"`
}

// clockPair mirrors vclock.SJ for encoding.
type clockPair struct {
	S int `json:"s"`
	J int `json:"j"`
}

// formatVersion is the current trace schema version.
const formatVersion = 1

// Write serializes the trace as JSON.
func (tr *Trace) Write(w io.Writer) error {
	ff := fileFormat{
		Version: formatVersion,
		Seed:    tr.Seed,
		Steps:   tr.Steps,
		Taus:    tr.Taus,
		Tuples:  tr.Tuples,
	}
	for _, v := range tr.Clocks {
		row := make([]clockPair, len(v))
		for i, p := range v {
			row[i] = clockPair{S: p.S, J: p.J}
		}
		ff.Clocks = append(ff.Clocks, row)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&ff)
}

// Read deserializes a trace written by Write, rebuilding the per-thread
// indexes.
func Read(r io.Reader) (*Trace, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if ff.Version != formatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d (want %d)", ff.Version, formatVersion)
	}
	var clocks []vclock.Vector
	for _, row := range ff.Clocks {
		v := make(vclock.Vector, len(row))
		for i, p := range row {
			v[i] = vclock.SJ{S: p.S, J: p.J}
		}
		clocks = append(clocks, v)
	}
	return Assemble(ff.Tuples, clocks, ff.Taus, ff.Steps, ff.Seed)
}
