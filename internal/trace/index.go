package trace

import "sync"

// Index is the per-trace analysis index: derived lookup structures that
// several pipeline phases need but that only depend on the immutable
// recorded trace, so they are computed once per trace instead of once
// per phase (or worse, once per cycle).
//
// It provides:
//
//   - thread and lock name interning to dense integer IDs, so phases can
//     use slices instead of string-keyed maps;
//   - held-lock postings (which tuples hold ℓ), the "who can I wait on"
//     lookup the cycle search needs;
//   - per-thread per-lock acquisition postings in program order, which
//     turn the Generator's type-C candidate scan from "walk the whole
//     D'σ prefix for every context lock" into "walk exactly the
//     acquisitions of that lock";
//   - a store-key map resolving a load's observed producer in O(1)
//     instead of a linear scan over the producing thread's data events.
//
// An Index is immutable after construction and safe for concurrent use,
// which is what lets the parallel per-cycle fan-out in core share one
// index across workers. Build it via Trace.Index; construction is
// guarded by sync.Once, so concurrent callers get the same instance.
type Index struct {
	threadIDs map[string]int
	threads   []string
	lockIDs   map[string]int
	locks     []string
	// held[lockID] lists the tuples holding that lock in their lockset
	// L_t, in Dσ order.
	held [][]*Tuple
	// acquires[threadID][lockID] lists the thread's tuples acquiring
	// that lock, in program order (Tuple.Pos increasing).
	acquires []map[int][]*Tuple
	// stores maps a store's stable key to its recorded event.
	stores map[Key]*DataEvent
}

// Index returns the trace's analysis index, building it on first use.
// The trace must not be mutated after the first call; concurrent calls
// are safe and return the same index.
func (tr *Trace) Index() *Index {
	tr.idxOnce.Do(func() { tr.idx = buildIndex(tr) })
	return tr.idx
}

func buildIndex(tr *Trace) *Index {
	idx := &Index{
		threadIDs: make(map[string]int, 8),
		lockIDs:   make(map[string]int, 16),
		stores:    make(map[Key]*DataEvent),
	}
	for _, tp := range tr.Tuples {
		t := idx.internThread(tp.Thread)
		l := idx.internLock(tp.Lock)
		acq := idx.acquires[t]
		acq[l] = append(acq[l], tp)
		for _, h := range tp.Held {
			hl := idx.internLock(h.Lock)
			idx.held[hl] = append(idx.held[hl], tp)
		}
	}
	for _, de := range tr.Data {
		idx.internThread(de.Thread)
		if de.Store {
			idx.stores[de.Key] = de
		}
	}
	return idx
}

func (idx *Index) internThread(name string) int {
	if id, ok := idx.threadIDs[name]; ok {
		return id
	}
	id := len(idx.threads)
	idx.threadIDs[name] = id
	idx.threads = append(idx.threads, name)
	idx.acquires = append(idx.acquires, make(map[int][]*Tuple, 4))
	return id
}

func (idx *Index) internLock(name string) int {
	if id, ok := idx.lockIDs[name]; ok {
		return id
	}
	id := len(idx.locks)
	idx.lockIDs[name] = id
	idx.locks = append(idx.locks, name)
	idx.held = append(idx.held, nil)
	return id
}

// NumThreads returns the number of interned threads (threads that
// acquired a lock or touched a shared variable).
func (idx *Index) NumThreads() int { return len(idx.threads) }

// NumLocks returns the number of interned locks.
func (idx *Index) NumLocks() int { return len(idx.locks) }

// ThreadID returns the dense ID of the named thread.
func (idx *Index) ThreadID(name string) (int, bool) {
	id, ok := idx.threadIDs[name]
	return id, ok
}

// LockID returns the dense ID of the named lock.
func (idx *Index) LockID(name string) (int, bool) {
	id, ok := idx.lockIDs[name]
	return id, ok
}

// ThreadName returns the name of the thread with the given dense ID.
func (idx *Index) ThreadName(id int) string { return idx.threads[id] }

// LockName returns the name of the lock with the given dense ID.
func (idx *Index) LockName(id int) string { return idx.locks[id] }

// HeldBy returns the tuples whose lockset contains lock, in Dσ order —
// the candidate set for "some thread holds ℓ" questions in the cycle
// search.
func (idx *Index) HeldBy(lock string) []*Tuple {
	id, ok := idx.lockIDs[lock]
	if !ok {
		return nil
	}
	return idx.held[id]
}

// HeldByID is HeldBy keyed by dense lock ID.
func (idx *Index) HeldByID(lockID int) []*Tuple { return idx.held[lockID] }

// AcquiresOf returns thread's tuples acquiring lock, in program order
// (Tuple.Pos increasing). Callers slicing D'σ prefixes stop at the
// first tuple whose Pos reaches the deadlocking position.
func (idx *Index) AcquiresOf(thread, lock string) []*Tuple {
	t, ok := idx.threadIDs[thread]
	if !ok {
		return nil
	}
	l, ok := idx.lockIDs[lock]
	if !ok {
		return nil
	}
	return idx.acquires[t][l]
}

// Store resolves a store's stable key to its recorded event, or nil.
// This replaces the Generator's linear scan over the producing thread's
// data events.
func (idx *Index) Store(key Key) *DataEvent { return idx.stores[key] }

// indexOnce is the lazy-build guard embedded in Trace. It lives here so
// the Trace struct declaration stays focused on recorded data.
type indexOnce struct {
	idxOnce sync.Once
	idx     *Index
}
