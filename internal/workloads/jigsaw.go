package workloads

import (
	"fmt"

	"wolf/collections"
	"wolf/sim"
)

// jigsaw.go models the Jigsaw web-server benchmark — the paper's
// largest subject (160 KLoC; 30 defects, of which 7 are start-order
// false positives, 6 are real and reproducible, and 17 remain unknown
// because data dependencies the analysis cannot see make them
// infeasible). The mini server preserves those three defect families:
//
//  1. Thread-cache initialization (the paper's Figure 1): the server
//     starts each cached worker while holding both the ThreadCache and
//     the CachedThread monitors; the worker acquires them in the
//     opposite order. A lock-graph cycle exists but the start-order
//     vector clocks prune it. One defect per server module (7).
//  2. Request/admin inversions over a resource and its servlet context,
//     executed by twin worker threads (same creation site, Figure 9
//     style): each pair yields a symmetric serve/serve deadlock that
//     both tools reproduce and a mixed serve/admin deadlock that only
//     WOLF's concrete-thread, Gs-ordered replay reproduces. Three pairs
//     → 6 real defects, 3 of them DeadlockFuzzer-hard.
//  3. Flag-ordered inversions: a publisher performs lock(X); lock(Y)
//     sections and raises a plain data flag after releasing; a watcher
//     performs the inverted section only once it observes the flag. The
//     lock graph contains the cycle and neither the Pruner (the threads
//     overlap) nor the Generator (Gs is acyclic) can refute it, but no
//     schedule deadlocks — the paper's "unknown due to data dependency"
//     category (17 defects).
const (
	jigsawFPModules    = 7
	jigsawRealPairs    = 3
	jigsawDataPairs    = 17
	jigsawServeIters   = 4
	jigsawAdminIters   = 4
	jigsawChainLen     = 3
	jigsawPollBudget   = 120
	jigsawStartupDelay = 150
	jigsawClients      = 8
	jigsawClientReqs   = 120
)

// jigsawState is the shared server state of one run.
type jigsawState struct {
	threadCache  *sim.Lock
	cachedTh     []*sim.Lock
	res, ctx     []*sim.Lock
	dataX, dataY []*sim.Lock
	flags        []*sim.Var
	routeLock    *sim.Lock
	routes       *collections.TreeMap[string, string]
	statLock     *sim.Lock
	served       int
}

// lookup does real routing work under the shared route lock — noise
// acquisitions that fatten Gs the way a real server's shared structures
// do.
func (j *jigsawState) lookup(t *sim.Thread, path string, site string) string {
	var out string
	t.WithLock(j.routeLock, site, func() {
		if v, ok := j.routes.Get(path); ok {
			out = v
		} else {
			out = "404"
		}
	})
	return out
}

// bump updates server statistics under the stat lock.
func (j *jigsawState) bump(t *sim.Thread, site string) {
	t.WithLock(j.statLock, site, func() { j.served++ })
}

// cachedWorker is the Figure 1 counterpart: waitForRunner locks the
// CachedThread monitor, then isFree locks the ThreadCache.
func (j *jigsawState) cachedWorker(k int) sim.Program {
	return func(u *sim.Thread) {
		u.Lock(j.cachedTh[k], fmt.Sprintf("CachedThread%d.java:24", k))
		u.Lock(j.threadCache, fmt.Sprintf("ThreadCache%d.java:175", k))
		u.Unlock(j.threadCache, fmt.Sprintf("ThreadCache%d.java:176", k))
		u.Unlock(j.cachedTh[k], fmt.Sprintf("CachedThread%d.java:56", k))
		j.bump(u, "httpd.java:stats")
	}
}

// chainSites returns the private session/parser/buffer lock chain a
// handler holds while touching a resource, deepening lock stacks the
// way Jigsaw's nested monitors do.
func (j *jigsawState) withChain(u *sim.Thread, tag string, body func()) {
	var chain []*sim.Lock
	for c := 0; c < jigsawChainLen; c++ {
		l := u.NewLock(fmt.Sprintf("session.%s.%d", tag, c))
		u.Lock(l, fmt.Sprintf("Session.java:%s.%d", tag, c))
		chain = append(chain, l)
	}
	body()
	for i := len(chain) - 1; i >= 0; i-- {
		u.Unlock(chain[i], fmt.Sprintf("Session.java:%s.%d.u", tag, i))
	}
}

// serveOp locks first then second — the request path
// (HttpdResource.java:serve holds the resource, then the context).
func (j *jigsawState) serveOp(u *sim.Thread, p int, first, second *sim.Lock, iter int) {
	j.withChain(u, fmt.Sprintf("serve%d", p), func() {
		u.Lock(first, fmt.Sprintf("HttpdResource%d.java:88", p))
		j.lookup(u, "/index", fmt.Sprintf("Daemon%d.java:route", p))
		u.Lock(second, fmt.Sprintf("ServletContext%d.java:142", p))
		u.Unlock(second, fmt.Sprintf("ServletContext%d.java:144", p))
		u.Unlock(first, fmt.Sprintf("HttpdResource%d.java:97", p))
	})
	_ = iter
}

// adminOp locks the context then the resource — the reconfiguration
// path (AdminServer.java) that inverts serveOp's order.
func (j *jigsawState) adminOp(u *sim.Thread, p int) {
	j.withChain(u, fmt.Sprintf("admin%d", p), func() {
		u.Lock(j.ctx[p], fmt.Sprintf("AdminServer%d.java:210", p))
		j.bump(u, "httpd.java:stats")
		u.Lock(j.res[p], fmt.Sprintf("AdminServer%d.java:223", p))
		u.Unlock(j.res[p], fmt.Sprintf("AdminServer%d.java:225", p))
		u.Unlock(j.ctx[p], fmt.Sprintf("AdminServer%d.java:230", p))
	})
}

// publisher performs ordered lock(X); lock(Y) sections and raises the
// pair's flag only after releasing everything.
func (j *jigsawState) publisher(q int) sim.Program {
	return func(u *sim.Thread) {
		for i := 0; i < 2; i++ {
			u.Lock(j.dataX[q], fmt.Sprintf("ResourceStore%d.java:55", q))
			u.Lock(j.dataY[q], fmt.Sprintf("ResourceStore%d.java:61", q))
			u.Unlock(j.dataY[q], fmt.Sprintf("ResourceStore%d.java:63", q))
			u.Unlock(j.dataX[q], fmt.Sprintf("ResourceStore%d.java:66", q))
		}
		// The flag is a plain data write: invisible to the lock
		// analysis, visible to the value-flow extension.
		u.Store(j.flags[q], true, fmt.Sprintf("ResourceStore%d.java:70", q))
	}
}

// watcher polls the flag (bounded, like a handler timeout) and performs
// the inverted section only after observing it — which is only possible
// once the publisher has finished, so the inversion can never overlap.
func (j *jigsawState) watcher(q int) sim.Program {
	return func(u *sim.Thread) {
		site := fmt.Sprintf("EventWatcher%d.java:poll", q)
		seen := false
		for i := 0; i < jigsawPollBudget; i++ {
			if u.LoadBool(j.flags[q], site) {
				seen = true
				break
			}
			u.Yield(site + ".spin")
		}
		if !seen {
			return
		}
		u.Lock(j.dataY[q], fmt.Sprintf("EventWatcher%d.java:80", q))
		u.Lock(j.dataX[q], fmt.Sprintf("EventWatcher%d.java:84", q))
		u.Unlock(j.dataX[q], fmt.Sprintf("EventWatcher%d.java:86", q))
		u.Unlock(j.dataY[q], fmt.Sprintf("EventWatcher%d.java:89", q))
	}
}

// Jigsaw is the Table 1 "Jigsaw" row.
func Jigsaw() Workload {
	factory := func() (sim.Program, sim.Options) {
		var j *jigsawState
		opts := sim.Options{Setup: func(w *sim.World) {
			j = &jigsawState{
				threadCache: w.NewLock("ThreadCache#0"),
				routeLock:   w.NewLock("RouteTable"),
				statLock:    w.NewLock("ServerStats"),
				routes:      collections.NewTreeMap[string, string](collections.StringLess),
			}
			j.routes.Put("/index", "index.html")
			j.routes.Put("/admin", "admin.html")
			for k := 0; k < jigsawFPModules; k++ {
				j.cachedTh = append(j.cachedTh, w.NewLock(fmt.Sprintf("CachedThread#%d", k)))
			}
			for p := 0; p < jigsawRealPairs; p++ {
				j.res = append(j.res, w.NewLock(fmt.Sprintf("Resource#%d", p)))
				j.ctx = append(j.ctx, w.NewLock(fmt.Sprintf("Context#%d", p)))
			}
			for q := 0; q < jigsawDataPairs; q++ {
				j.dataX = append(j.dataX, w.NewLock(fmt.Sprintf("StoreX#%d", q)))
				j.dataY = append(j.dataY, w.NewLock(fmt.Sprintf("StoreY#%d", q)))
				j.flags = append(j.flags, w.NewVar(fmt.Sprintf("storeReady#%d", q), false))
			}
		}}
		prog := func(th *sim.Thread) {
			var hs []*sim.Thread
			// Family 1: thread-cache initialization (Figure 1 × 7).
			th.Lock(j.threadCache, "ThreadCache.java:401")
			for k := 0; k < jigsawFPModules; k++ {
				th.Lock(j.cachedTh[k], fmt.Sprintf("CachedThread%d.java:75", k))
				hs = append(hs, th.Go("cached", j.cachedWorker(k), fmt.Sprintf("CachedThread%d.java:76", k)))
				th.Unlock(j.cachedTh[k], fmt.Sprintf("CachedThread%d.java:78", k))
			}
			th.Unlock(j.threadCache, "ThreadCache.java:417")

			// Family 2: twin request/admin workers per resource pair.
			for p := 0; p < jigsawRealPairs; p++ {
				p := p
				hs = append(hs, th.Go("httpd-worker", func(u *sim.Thread) {
					for i := 0; i < jigsawServeIters; i++ {
						j.serveOp(u, p, j.res[p], j.ctx[p], i)
					}
				}, "httpd.java:spawn"))
				hs = append(hs, th.Go("httpd-worker", func(u *sim.Thread) {
					// Accept-queue latency: the second worker usually
					// starts after the first has drained its requests,
					// so recorded runs rarely deadlock — the replayer
					// must force the overlap from the trace alone.
					for i := 0; i < jigsawStartupDelay; i++ {
						u.Yield("httpd.java:accept")
					}
					// Prelude: the same serve code on the same locks in
					// swapped roles — the Figure 9 abstraction trap.
					for i := 0; i < jigsawServeIters; i++ {
						j.serveOp(u, p, j.ctx[p], j.res[p], i)
					}
					for i := 0; i < jigsawAdminIters; i++ {
						j.adminOp(u, p)
					}
				}, "httpd.java:spawn"))
			}

			// Background traffic: plain clients hammering the route
			// table and statistics — single-lock operations that make
			// the execution dominated by ordinary request work, as a
			// real server's is.
			for c := 0; c < jigsawClients; c++ {
				hs = append(hs, th.Go("client", func(u *sim.Thread) {
					for r := 0; r < jigsawClientReqs; r++ {
						j.lookup(u, "/index", "Client.java:get")
						j.bump(u, "httpd.java:stats")
					}
				}, "httpd.java:accept-client"))
			}

			// Family 3: flag-ordered publisher/watcher pairs.
			for q := 0; q < jigsawDataPairs; q++ {
				hs = append(hs, th.Go("publisher", j.publisher(q), "ResourceStore.java:start"))
				hs = append(hs, th.Go("watcher", j.watcher(q), "EventWatcher.java:start"))
			}

			for _, h := range hs {
				th.Join(h, "httpd.java:shutdown")
			}
		}
		return prog, opts
	}
	return Workload{
		Name: "Jigsaw",
		New:  factory,
		Paper: PaperRow{
			LoC: "160,388", SL: 11, Vs: 1486, Slowdown: 1.23,
			Defects: 30, FPPruner: 7, TPWolf: 6, TPDF: 3, UnkWolf: 17, UnkDF: 27,
			Cycles: 265, CyclesFPWolf: 83, CyclesTPWolf: 97, CyclesTPDF: 35,
			HitWolf: 0.5, HitDF: 0.1,
		},
	}
}
