package workloads

// Registry workloads under fault injection: the pipeline must keep
// confirming known deadlocks when scheduling perturbations are injected
// into replay, through the same ByName path that wolf -workload and the
// wolfd service use.

import (
	"testing"

	"wolf/internal/core"
	"wolf/sim"
)

// TestRegistryFigure4UnderFaultInjection: the registry's Figure 4 is
// confirmed with faults on, resolved through ByName.
func TestRegistryFigure4UnderFaultInjection(t *testing.T) {
	w, ok := ByName("Figure4")
	if !ok {
		t.Fatal("Figure4 not registered")
	}
	seed, ok := FindTerminatingSeed(w.New, 300)
	if !ok {
		t.Fatal("no terminating seed")
	}
	rep := core.Analyze(w.New, core.Config{
		DetectSeeds: []int64{seed},
		Faults:      sim.FaultConfig{Rate: 0.1, Seed: 7},
	})
	_, _, conf, unk := rep.CountDefects()
	if conf != 1 || unk != 0 {
		t.Fatalf("Figure4 under faults: confirmed=%d unknown=%d, want 1/0\n%v", conf, unk, rep)
	}
}

// TestTaskQueueUnderFaultInjection: a wait/notify-heavy workload — the
// one most exposed to injected spurious wakeups — still confirms its
// queue-monitor/stats inversion.
func TestTaskQueueUnderFaultInjection(t *testing.T) {
	w, ok := ByName("TaskQueue")
	if !ok {
		t.Fatal("TaskQueue not registered")
	}
	seed, ok := FindTerminatingSeed(w.New, 500)
	if !ok {
		t.Fatal("no terminating seed")
	}
	rep := core.Analyze(w.New, core.Config{
		DetectSeeds:    []int64{seed},
		ReplayAttempts: 10,
		Faults:         sim.FaultConfig{Rate: 0.05, Seed: 3},
	})
	confirmedWorker := false
	for _, d := range rep.Defects {
		if d.Class == core.Confirmed && contains(d.Signature, "Worker.java:73") {
			confirmedWorker = true
		}
	}
	if !confirmedWorker {
		t.Fatalf("queue/stats inversion not confirmed under faults:\n%v", rep)
	}
}
