package workloads

import (
	"fmt"

	"wolf/sim"
)

// The global-lock family models the GStreamer/GLib post-mortem that
// motivated WOLF-style tracing for media pipelines: a process-global
// type-registry lock (GLib's type system takes it inside g_object_set)
// acquired by HTTP control threads while they hold a per-pipeline
// lock, and by pipeline threads in the opposite nesting — the classic
// AB/BA reversal, smeared across a process-global resource so every
// pipeline is exposed to every handler. Three variants:
//
//   - GlobalLock: the raw reversal. Any run, terminating or not,
//     records both nesting orders, so detection finds the cycle even
//     when the schedule got lucky.
//   - GlobalLockCrash: a crashed holder. Pipeline 0 takes the registry
//     and then faults (modeled as blocking on a wedge lock the parent
//     holds forever); every other thread piles up behind the registry
//     and the whole process wedges without any cycle — the failure
//     mode where only the trace tells you who held what.
//   - GlobalLockFixed: the message-posting fix. HTTP threads post
//     switch requests to a per-pipeline bus and never touch the
//     registry or pipeline locks themselves; the owning pipeline
//     thread applies them, so both locks are only ever nested in one
//     order and the cycle is gone.
//
// The same scenario exists as a real instrumented program — see
// RunGlobalLockReal and examples/globallock — sharing these lock
// names and site strings verbatim, which is what makes sim and
// wolfsync fingerprints byte-comparable.

// Lock names shared by the sim and wolfsync drivers.
const (
	glRegistryLock = "TypeRegistry"
	glWedgeLock    = "crashwedge"
)

func glPipelineLock(i int) string { return fmt.Sprintf("pipeline#%d", i) }
func glBusLock(i int) string      { return fmt.Sprintf("bus#%d", i) }

// Acquisition sites shared by the sim and wolfsync drivers. The
// fingerprint hashes these strings, so the two drivers must agree on
// them byte for byte.
const (
	glSiteRefClass  = "gsttype.c:type-class-ref"   // pipeline thread → registry
	glSiteConfigure = "interpipe.c:configure-src"  // pipeline thread → its pipeline lock
	glSiteSwitch    = "server.cpp:switch-producer" // HTTP thread → pipeline lock
	glSiteObjectSet = "gobject.c:g_object_set"     // HTTP thread → registry
	glSiteCrash     = "interpipe.c:buffer-unref"   // crashed holder's faulting wait
	glSiteWedge     = "harness:hold-wedge"         // parent arming the fault
	glSitePost      = "bus.c:post-message"         // fixed: HTTP thread → bus
	glSiteDrain     = "bus.c:bus-drain"            // fixed: owner draining its bus
	glSiteApplySet  = "bus.c:apply-g_object_set"   // fixed: owner → registry
	glSiteApplyCfg  = "bus.c:apply-configure"      // fixed: owner → its pipeline lock
	glSiteInit      = "interpipe.c:init"           // compute inside the nesting
	glSiteHandle    = "server.cpp:handle"          // compute inside the nesting
	glSiteSpawnPipe = "main.go:spawn-pipeline"
	glSiteSpawnHTTP = "main.go:spawn-http"
	glSiteJoin      = "main.go:join"
)

// GlobalLockSpec sizes one run of the scenario.
type GlobalLockSpec struct {
	// Pipelines is the number of pipeline threads (and pipeline locks).
	Pipelines int
	// HTTP is the number of HTTP control threads.
	HTTP int
	// Requests is how many switch requests each HTTP thread issues,
	// round-robin over pipelines.
	Requests int
	// Rounds is how many create/configure rounds each pipeline thread
	// runs.
	Rounds int
	// Crash makes pipeline 0 fault while holding the registry.
	Crash bool
	// Fixed applies the message-posting fix.
	Fixed bool
}

// DefaultGlobalLockSpec is the shape the registered workloads and the
// fingerprint-identity test use: small enough that random schedules
// terminate often, large enough that both nesting orders and several
// same-abstraction instances appear.
func DefaultGlobalLockSpec() GlobalLockSpec {
	return GlobalLockSpec{Pipelines: 2, HTTP: 2, Requests: 2, Rounds: 2}
}

func (s GlobalLockSpec) withDefaults() GlobalLockSpec {
	d := DefaultGlobalLockSpec()
	if s.Pipelines <= 0 {
		s.Pipelines = d.Pipelines
	}
	if s.HTTP <= 0 {
		s.HTTP = d.HTTP
	}
	if s.Requests <= 0 {
		s.Requests = d.Requests
	}
	if s.Rounds <= 0 {
		s.Rounds = d.Rounds
	}
	return s
}

// expectedMsgs returns, per pipeline, how many switch messages the
// fixed variant's HTTP threads will post to it.
func expectedMsgs(s GlobalLockSpec) []int {
	out := make([]int, s.Pipelines)
	for j := 0; j < s.HTTP; j++ {
		for q := 0; q < s.Requests; q++ {
			out[(j+q)%s.Pipelines]++
		}
	}
	return out
}

// globalLockFactory builds the sim program for one spec.
func globalLockFactory(spec GlobalLockSpec) sim.Factory {
	spec = spec.withDefaults()
	return func() (sim.Program, sim.Options) {
		var reg, wedge *sim.Lock
		pipes := make([]*sim.Lock, spec.Pipelines)
		buses := make([]*sim.Lock, spec.Pipelines)
		queues := make([]int, spec.Pipelines)
		opts := sim.Options{Setup: func(w *sim.World) {
			reg = w.NewLock(glRegistryLock)
			for i := range pipes {
				pipes[i] = w.NewLock(glPipelineLock(i))
				if spec.Fixed {
					buses[i] = w.NewLock(glBusLock(i))
				}
			}
			if spec.Crash {
				wedge = w.NewLock(glWedgeLock)
			}
		}}
		expected := expectedMsgs(spec)
		prog := func(th *sim.Thread) {
			if spec.Crash {
				// The parent arms the fault: it holds the wedge forever,
				// so the crashed holder's next acquisition never returns.
				th.Lock(wedge, glSiteWedge)
			}
			var children []*sim.Thread
			for i := 0; i < spec.Pipelines; i++ {
				i := i
				children = append(children, th.Go("pipeline", func(u *sim.Thread) {
					if spec.Crash && i == 0 {
						u.Lock(reg, glSiteRefClass)
						u.Lock(wedge, glSiteCrash) // faults holding the registry
						return
					}
					for r := 0; r < spec.Rounds; r++ {
						u.Lock(reg, glSiteRefClass)
						u.Yield(glSiteInit)
						u.Lock(pipes[i], glSiteConfigure)
						u.Unlock(pipes[i], glSiteConfigure)
						u.Unlock(reg, glSiteRefClass)
					}
					if spec.Fixed {
						for got := 0; got < expected[i]; got++ {
							u.Lock(buses[i], glSiteDrain)
							for queues[i] == 0 {
								u.Wait(buses[i], glSiteDrain)
							}
							queues[i]--
							u.Unlock(buses[i], glSiteDrain)
							// Apply the switch on the owner thread: the
							// same two locks, always registry-first.
							u.Lock(reg, glSiteApplySet)
							u.Lock(pipes[i], glSiteApplyCfg)
							u.Unlock(pipes[i], glSiteApplyCfg)
							u.Unlock(reg, glSiteApplySet)
						}
					}
				}, glSiteSpawnPipe))
			}
			for j := 0; j < spec.HTTP; j++ {
				j := j
				children = append(children, th.Go("http", func(u *sim.Thread) {
					for q := 0; q < spec.Requests; q++ {
						p := (j + q) % spec.Pipelines
						if spec.Fixed {
							u.Lock(buses[p], glSitePost)
							queues[p]++
							u.Notify(buses[p], glSitePost)
							u.Unlock(buses[p], glSitePost)
						} else {
							u.Lock(pipes[p], glSiteSwitch)
							u.Yield(glSiteHandle)
							u.Lock(reg, glSiteObjectSet)
							u.Unlock(reg, glSiteObjectSet)
							u.Unlock(pipes[p], glSiteSwitch)
						}
					}
				}, glSiteSpawnHTTP))
			}
			for _, c := range children {
				th.Join(c, glSiteJoin)
			}
		}
		return prog, opts
	}
}

// GlobalLock is the raw registry/pipeline lock-order reversal.
func GlobalLock() Workload {
	return Workload{Name: "GlobalLock", New: globalLockFactory(DefaultGlobalLockSpec())}
}

// GlobalLockCrash is the crashed-holder variant: no cycle, a wedged
// process, and a trace that names the holder. It never terminates —
// registry-wide tests that need a terminating seed skip it.
func GlobalLockCrash() Workload {
	spec := DefaultGlobalLockSpec()
	spec.Crash = true
	return Workload{Name: "GlobalLockCrash", New: globalLockFactory(spec)}
}

// GlobalLockFixed is the message-posting fix: zero cycles.
func GlobalLockFixed() Workload {
	spec := DefaultGlobalLockSpec()
	spec.Fixed = true
	return Workload{Name: "GlobalLockFixed", New: globalLockFactory(spec)}
}
