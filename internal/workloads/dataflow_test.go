package workloads

import (
	"testing"

	"wolf/internal/core"
)

// TestDataDependencyExtensionOnJigsaw: with the value-flow extension
// enabled, the 17 flag-ordered defects that plain WOLF leaves unknown
// are refuted as false(data) — the paper's Section 4.4 conjecture,
// implemented. The base verdicts (7 pruner false positives, 6 confirmed)
// are unchanged.
func TestDataDependencyExtensionOnJigsaw(t *testing.T) {
	w := Jigsaw()
	seed, ok := FindTerminatingSeed(w.New, 300)
	if !ok {
		t.Fatal("no terminating seed")
	}
	rep := core.Analyze(w.New, core.Config{
		DetectSeeds:    []int64{seed},
		ReplayAttempts: 5,
		DataDependency: true,
	})
	pr, gen, conf, unk := rep.CountDefects()
	if pr != 7 || conf != 6 {
		t.Errorf("pruner FP=%d confirmed=%d, want 7/6", pr, conf)
	}
	if unk != 0 {
		t.Errorf("unknown = %d, want 0 (all data defects refuted)", unk)
	}
	if gen != 17 {
		t.Errorf("generator+data FP = %d, want 17", gen)
	}
	dataCount := 0
	for _, d := range rep.Defects {
		if d.Class == core.FalseByData {
			dataCount++
			if !contains(d.Signature, "EventWatcher") {
				t.Errorf("non-watcher defect %s classified false(data)", d.Signature)
			}
		}
	}
	if dataCount != 17 {
		t.Errorf("false(data) defects = %d, want 17", dataCount)
	}
}

// TestDataDependencySoundOnRealDefects: enabling the extension must not
// refute reproducible deadlocks on any benchmark.
func TestDataDependencySoundOnRealDefects(t *testing.T) {
	for _, name := range []string{"JavaLogging", "ArrayList", "HashMap", "TaskQueue"} {
		w, _ := ByName(name)
		seed, ok := FindTerminatingSeed(w.New, 300)
		if !ok {
			t.Fatalf("%s: no seed", name)
		}
		base := core.Analyze(w.New, core.Config{DetectSeeds: []int64{seed}, ReplayAttempts: 5})
		ext := core.Analyze(w.New, core.Config{DetectSeeds: []int64{seed}, ReplayAttempts: 5, DataDependency: true})
		_, _, confBase, _ := base.CountDefects()
		_, _, confExt, _ := ext.CountDefects()
		if confExt < confBase {
			t.Errorf("%s: extension lost confirmations (%d → %d)", name, confBase, confExt)
		}
	}
}
