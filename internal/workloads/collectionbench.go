package workloads

import (
	"fmt"

	"wolf/collections"
	"wolf/sim"
)

// newList instantiates the backing list implementation for a list
// benchmark.
func newList(kind string) collections.List[int] {
	switch kind {
	case "ArrayList":
		return collections.NewArrayList[int](4)
	case "Stack":
		return collections.NewStack[int]()
	case "LinkedList":
		return collections.NewLinkedList[int]()
	default:
		panic(fmt.Sprintf("workloads: unknown list kind %q", kind))
	}
}

// newMap instantiates the backing map implementation for a map
// benchmark.
func newMap(kind string) collections.Map[int, string] {
	switch kind {
	case "HashMap":
		return collections.NewHashMap[int, string](collections.IntHasher)
	case "TreeMap":
		return collections.NewTreeMap[int, string](collections.IntLess)
	case "WeakHashMap":
		return collections.NewWeakHashMap[int, string](collections.IntHasher)
	case "LinkedHashMap":
		return collections.NewLinkedHashMap[int, string](collections.IntHasher)
	case "IdentityHashMap":
		return collections.NewIdentityHashMap[int, string](collections.IntHasher)
	default:
		panic(fmt.Sprintf("workloads: unknown map kind %q", kind))
	}
}

// listFactory builds the list harness: two twin workers exercise Equals,
// RemoveAll and AddAll over two synchronized views in opposite orders.
// The initial sizes differ (1 vs 2), so Equals always takes the
// size-only path and every thread's acquisition sequence is
// schedule-independent. Each worker produces nested acquisitions at
// Collections.java:1565 (size inside equals), :1567 (contains inside
// removeAll) and :1570 (toArray inside addAll) while holding its own
// view's mutex — six defects, all real.
func listFactory(kind string) sim.Factory {
	return func() (sim.Program, sim.Options) {
		var sc1, sc2 *collections.SyncList[int]
		opts := sim.Options{Setup: func(w *sim.World) {
			l1, l2 := newList(kind), newList(kind)
			l1.Add(101)
			l2.Add(201)
			l2.Add(202)
			sc1 = collections.NewSyncList[int](w, "SC1", l1)
			sc2 = collections.NewSyncList[int](w, "SC2", l2)
		}}
		ops := func(mine, other *collections.SyncList[int]) sim.Program {
			return func(u *sim.Thread) {
				mine.Equals(u, other)    // 1561 → other 1565 (size-only path)
				mine.RemoveAll(u, other) // 1594 → other 1567 per element
				mine.AddAll(u, other)    // 1591 → other 1570
			}
		}
		prog := func(th *sim.Thread) {
			t1 := th.Go("worker", ops(sc1, sc2), "spawn")
			t2 := th.Go("worker", ops(sc2, sc1), "spawn")
			th.Join(t1, "j1")
			th.Join(t2, "j2")
		}
		return prog, opts
	}
}

// ListBench is one of the three list rows of Table 1 (ArrayList, Stack,
// LinkedList): 6 defects / 9 cycles in the paper, all real; WOLF
// reproduces every defect, DeadlockFuzzer roughly half.
func ListBench(kind string) Workload {
	return Workload{
		Name: kind,
		New:  listFactory(kind),
		Paper: PaperRow{
			LoC: "17,633", SL: 4.2, Vs: 4.7, Slowdown: 1.95,
			Defects: 6, TPWolf: 6, TPDF: 3, UnkDF: 3,
			Cycles: 9, CyclesTPWolf: 9, CyclesTPDF: 3,
			HitWolf: 0.95, HitDF: 0.35,
		},
	}
}

// mapFactory builds the map harness of the paper's Figure 2: two
// workers equals two equal one-entry synchronized maps in opposite
// orders. Equals locks its own mutex (Collections.java:2024), briefly
// locks the other's for the size check (:2028 — the paper's "line 509")
// and again per entry for the value comparison (:2031 — "line 522").
// Four cycles, three defects; the both-at-:2031 cycle is infeasible and
// eliminated by the Generator.
func mapFactory(kind string) sim.Factory {
	return func() (sim.Program, sim.Options) {
		var sm1, sm2 *collections.SyncMap[int, string]
		opts := sim.Options{Setup: func(w *sim.World) {
			m1, m2 := newMap(kind), newMap(kind)
			m1.Put(7, "x")
			m2.Put(7, "x")
			sm1 = collections.NewSyncMap[int, string](w, "SM1", m1)
			sm2 = collections.NewSyncMap[int, string](w, "SM2", m2)
		}}
		prog := func(th *sim.Thread) {
			t1 := th.Go("worker", func(u *sim.Thread) { sm1.Equals(u, sm2) }, "spawn")
			t2 := th.Go("worker", func(u *sim.Thread) { sm2.Equals(u, sm1) }, "spawn")
			th.Join(t1, "j1")
			th.Join(t2, "j2")
		}
		return prog, opts
	}
}

// MapBench is one of the five map rows of Table 1: 3 defects / 4 cycles,
// one eliminated by the Generator, the other two confirmed by both tools
// (WOLF far more reliably — Figure 8).
func MapBench(kind string) Workload {
	return Workload{
		Name: kind,
		New:  mapFactory(kind),
		Paper: PaperRow{
			LoC: "18,911", SL: 4.1, Vs: 4, Slowdown: 2.2,
			Defects: 3, FPGen: 1, TPWolf: 2, TPDF: 2, UnkDF: 1,
			Cycles: 4, CyclesFPWolf: 1, CyclesTPWolf: 3, CyclesTPDF: 3,
			HitWolf: 0.95, HitDF: 0.55,
		},
	}
}
