package workloads

import (
	"wolf/collections"
	"wolf/sim"
)

// Figure4 is the paper's running example (Figure 4): three threads,
// three locks, cycles θ1 (pruned: t1 transitively starts t3) and θ2
// (real, reliably replayable).
func Figure4() Workload {
	factory := func() (sim.Program, sim.Options) {
		var l1, l2, l3 *sim.Lock
		opts := sim.Options{Setup: func(w *sim.World) {
			l1, l2, l3 = w.NewLock("l1"), w.NewLock("l2"), w.NewLock("l3")
		}}
		t3body := func(u *sim.Thread) {
			u.Lock(l3, "31")
			u.Lock(l2, "32")
			u.Lock(l1, "33")
			u.Unlock(l1, "34")
			u.Unlock(l2, "35")
			u.Unlock(l3, "36")
		}
		prog := func(th *sim.Thread) {
			th.Lock(l1, "11")
			th.Lock(l2, "12")
			th.Unlock(l2, "13")
			th.Unlock(l1, "14")
			th.Go("t2", func(u *sim.Thread) { u.Go("t3", t3body, "21") }, "15")
			th.Lock(l3, "16")
			th.Unlock(l3, "17")
			th.Lock(l1, "18")
			th.Lock(l2, "19")
			th.Unlock(l2, "20")
			th.Unlock(l1, "21")
		}
		return prog, opts
	}
	return Workload{
		Name: "Figure4",
		New:  factory,
		Paper: PaperRow{
			Defects: 2, FPPruner: 1, TPWolf: 1,
			Cycles: 2, CyclesFPWolf: 1, CyclesTPWolf: 1,
		},
	}
}

// Figure2 is the paper's Figure 2: two threads equals-ing two
// synchronized maps in opposite orders; four cycles, of which θ4 is
// eliminated by the Generator's cyclic Gs.
func Figure2() Workload {
	return Workload{
		Name: "Figure2",
		New:  mapFactory("HashMap"),
		Paper: PaperRow{
			Defects: 3, FPGen: 1, TPWolf: 2,
			Cycles: 4, CyclesFPWolf: 1, CyclesTPWolf: 3,
		},
	}
}

// Figure9 is the paper's Figure 9: twin worker threads (identical
// creation site) on two same-site synchronized collections. The real
// 1567+1570 deadlock is reliably reproduced by WOLF and essentially
// never by DeadlockFuzzer (abstraction collision).
func Figure9() Workload {
	factory := func() (sim.Program, sim.Options) {
		var sc1, sc2 *collections.SyncList[int]
		opts := sim.Options{Setup: func(w *sim.World) {
			a := collections.NewArrayList[int](4)
			b := collections.NewArrayList[int](4)
			a.Add(1)
			b.Add(2)
			sc1 = collections.NewSyncList[int](w, "SC1", a)
			sc2 = collections.NewSyncList[int](w, "SC2", b)
		}}
		prog := func(th *sim.Thread) {
			t1 := th.Go("worker", func(u *sim.Thread) {
				sc1.AddAll(u, sc2)
			}, "spawn")
			t2 := th.Go("worker", func(u *sim.Thread) {
				sc2.AddAll(u, sc1) // the prelude that confuses DF
				sc2.RemoveAll(u, sc1)
			}, "spawn")
			th.Join(t1, "j1")
			th.Join(t2, "j2")
		}
		return prog, opts
	}
	return Workload{
		Name: "Figure9",
		New:  factory,
		Paper: PaperRow{
			HitWolf: 1.0, HitDF: 0.0,
		},
	}
}

// Philosophers is the classic N-way dining philosophers cycle; every
// fork pair is a potential deadlock edge and the N-cycle is real.
func Philosophers(n int) Workload {
	factory := func() (sim.Program, sim.Options) {
		forks := make([]*sim.Lock, n)
		opts := sim.Options{Setup: func(w *sim.World) {
			for i := range forks {
				forks[i] = w.NewLock(forkName(i))
			}
		}}
		prog := func(th *sim.Thread) {
			var hs []*sim.Thread
			for i := 0; i < n; i++ {
				i := i
				hs = append(hs, th.Go("phil", func(u *sim.Thread) {
					left, right := forks[i], forks[(i+1)%n]
					u.Lock(left, philSite(i, "left"))
					u.Yield(philSite(i, "think"))
					u.Lock(right, philSite(i, "right"))
					u.Unlock(right, philSite(i, "downR"))
					u.Unlock(left, philSite(i, "downL"))
				}, "seat"))
			}
			for _, h := range hs {
				th.Join(h, "gather")
			}
		}
		return prog, opts
	}
	return Workload{Name: "Philosophers", New: factory}
}

func forkName(i int) string { return "fork#" + string(rune('0'+i)) }

func philSite(i int, what string) string {
	return "Philosopher.java:" + what + string(rune('0'+i))
}

// Bank models the textbook transfer deadlock: transfer(a, b) locks both
// accounts in argument order, so concurrent opposite transfers deadlock.
func Bank() Workload {
	factory := func() (sim.Program, sim.Options) {
		type account struct {
			mu      *sim.Lock
			balance int
		}
		var accounts []*account
		opts := sim.Options{Setup: func(w *sim.World) {
			accounts = nil
			for i := 0; i < 3; i++ {
				accounts = append(accounts, &account{
					mu:      w.NewLock("account#" + string(rune('A'+i))),
					balance: 100,
				})
			}
		}}
		transfer := func(u *sim.Thread, from, to *account, amount int, tag string) {
			u.Lock(from.mu, "Bank.java:transfer-from-"+tag)
			u.Yield("Bank.java:audit-" + tag)
			u.Lock(to.mu, "Bank.java:transfer-to-"+tag)
			from.balance -= amount
			to.balance += amount
			u.Unlock(to.mu, "Bank.java:release-to-"+tag)
			u.Unlock(from.mu, "Bank.java:release-from-"+tag)
		}
		prog := func(th *sim.Thread) {
			h1 := th.Go("teller", func(u *sim.Thread) {
				transfer(u, accounts[0], accounts[1], 10, "ab")
				transfer(u, accounts[1], accounts[2], 5, "bc")
			}, "spawn1")
			h2 := th.Go("teller", func(u *sim.Thread) {
				transfer(u, accounts[1], accounts[0], 20, "ba")
			}, "spawn2")
			th.Join(h1, "j1")
			th.Join(h2, "j2")
		}
		return prog, opts
	}
	return Workload{Name: "Bank", New: factory}
}
