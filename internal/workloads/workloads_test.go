package workloads

import (
	"testing"

	"wolf/internal/core"
	"wolf/sim"
)

// analyzeBoth runs both pipelines on the workload with its discovered
// detection seed.
func analyzeBoth(t *testing.T, w Workload, attempts int) (*core.Report, *core.Report) {
	t.Helper()
	seed, ok := FindTerminatingSeed(w.New, 300)
	if !ok {
		t.Fatalf("%s: no terminating seed", w.Name)
	}
	cfg := core.Config{DetectSeeds: []int64{seed}, ReplayAttempts: attempts}
	return core.Analyze(w.New, cfg), core.AnalyzeDF(w.New, cfg)
}

// expect captures the measured shape a workload must produce. Counts
// marked -1 are not asserted exactly.
type expect struct {
	defects, fpPr, fpGen, tpWolf, unkWolf int
	tpDF, unkDF                           int
}

// TestTable1Shapes locks in the per-benchmark defect classification that
// reproduces the paper's Table 1 rows.
func TestTable1Shapes(t *testing.T) {
	cases := map[string]expect{
		"cache4j":         {0, 0, 0, 0, 0, 0, 0},
		"Jigsaw":          {30, 7, 0, 6, 17, 3, 27},
		"JavaLogging":     {2, 0, 0, 2, 0, 1, 1},
		"ArrayList":       {6, 0, 0, 6, 0, 3, 3},
		"Stack":           {6, 0, 0, 6, 0, 3, 3},
		"LinkedList":      {6, 0, 0, 6, 0, 3, 3},
		"HashMap":         {3, 0, 1, 2, 0, 2, 1},
		"TreeMap":         {3, 0, 1, 2, 0, 2, 1},
		"WeakHashMap":     {3, 0, 1, 2, 0, 2, 1},
		"LinkedHashMap":   {3, 0, 1, 2, 0, 2, 1},
		"IdentityHashMap": {3, 0, 1, 2, 0, 2, 1},
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want, ok := cases[w.Name]
			if !ok {
				t.Fatalf("no expectation for %s", w.Name)
			}
			wolf, df := analyzeBoth(t, w, 5)
			pr, gen, tpW, unkW := wolf.CountDefects()
			if len(wolf.Defects) != want.defects || pr != want.fpPr || gen != want.fpGen ||
				tpW != want.tpWolf || unkW != want.unkWolf {
				t.Errorf("WOLF defects=%d FP=%d+%d TP=%d UNK=%d, want %d FP=%d+%d TP=%d UNK=%d\n%v",
					len(wolf.Defects), pr, gen, tpW, unkW,
					want.defects, want.fpPr, want.fpGen, want.tpWolf, want.unkWolf, wolf)
			}
			dpr, dgen, tpD, unkD := df.CountDefects()
			if dpr != 0 || dgen != 0 {
				t.Errorf("DF reported false positives %d+%d", dpr, dgen)
			}
			if tpD != want.tpDF || unkD != want.unkDF {
				t.Errorf("DF TP=%d UNK=%d, want TP=%d UNK=%d\n%v", tpD, unkD, want.tpDF, want.unkDF, df)
			}
			if tpW < tpD {
				t.Errorf("WOLF confirmed fewer defects (%d) than DF (%d)", tpW, tpD)
			}
		})
	}
}

// TestCycleCountsStable locks in cycle-level counts (our analogue of
// Table 2's Cycles column; absolute values differ from the paper's
// harnesses, the tool relationship must not).
func TestCycleCountsStable(t *testing.T) {
	wants := map[string]int{
		"cache4j": 0, "Jigsaw": 137, "JavaLogging": 2,
		"ArrayList": 12, "Stack": 12, "LinkedList": 12,
		"HashMap": 4, "TreeMap": 4, "WeakHashMap": 4,
		"LinkedHashMap": 4, "IdentityHashMap": 4,
	}
	for _, w := range All() {
		wolf, df := analyzeBoth(t, w, 1)
		if got := len(wolf.Cycles); got != wants[w.Name] {
			t.Errorf("%s: WOLF cycles = %d, want %d", w.Name, got, wants[w.Name])
		}
		if got := len(df.Cycles); got != wants[w.Name] {
			t.Errorf("%s: DF cycles = %d, want %d (same detector)", w.Name, got, wants[w.Name])
		}
		_, _, tpWc, _ := wolf.CountCycles()
		_, _, tpDc, _ := df.CountCycles()
		if wants[w.Name] > 0 && tpWc < tpDc {
			t.Errorf("%s: WOLF confirmed fewer cycles (%d) than DF (%d)", w.Name, tpWc, tpDc)
		}
	}
}

// TestJigsawFamilies: the three defect families land in the right
// buckets (Figure 1 pattern → pruner, flag-ordered → unknown, twin
// inversions → confirmed).
func TestJigsawFamilies(t *testing.T) {
	w := Jigsaw()
	wolf, _ := analyzeBoth(t, w, 5)
	for _, d := range wolf.Defects {
		sig := d.Signature
		switch {
		case contains(sig, "ThreadCache"):
			if d.Class != core.FalseByPruner {
				t.Errorf("thread-cache defect %s classified %v, want false(pruner)", sig, d.Class)
			}
		case contains(sig, "EventWatcher"):
			if d.Class != core.Unknown {
				t.Errorf("flag-ordered defect %s classified %v, want unknown", sig, d.Class)
			}
		case contains(sig, "ServletContext") || contains(sig, "AdminServer"):
			if d.Class != core.Confirmed {
				t.Errorf("inversion defect %s classified %v, want confirmed", sig, d.Class)
			}
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestPhilosophersDetected: the N-cycle is detected and confirmed.
func TestPhilosophersDetected(t *testing.T) {
	w := Philosophers(4)
	seed, ok := FindTerminatingSeed(w.New, 500)
	if !ok {
		t.Fatal("no terminating seed")
	}
	rep := core.Analyze(w.New, core.Config{
		DetectSeeds: []int64{seed}, ReplayAttempts: 10, MaxCycleLen: 4,
	})
	if len(rep.Cycles) == 0 {
		t.Fatal("no cycles detected")
	}
	_, _, conf, _ := rep.CountDefects()
	if conf == 0 {
		t.Fatalf("no philosopher deadlock confirmed:\n%v", rep)
	}
}

// TestBankDetected: the transfer inversion is detected and confirmed.
func TestBankDetected(t *testing.T) {
	w := Bank()
	seed, ok := FindTerminatingSeed(w.New, 300)
	if !ok {
		t.Fatal("no terminating seed")
	}
	rep := core.Analyze(w.New, core.Config{DetectSeeds: []int64{seed}, ReplayAttempts: 5})
	_, _, conf, _ := rep.CountDefects()
	if conf == 0 {
		t.Fatalf("no bank deadlock confirmed:\n%v", rep)
	}
}

// TestWorkloadsAreReentrant: factories build independent state; two
// sequential runs do not interfere.
func TestWorkloadsAreReentrant(t *testing.T) {
	for _, w := range All() {
		for i := 0; i < 2; i++ {
			prog, opts := w.New()
			out := sim.Run(prog, sim.FirstEnabled{}, opts)
			if out.Kind == sim.ProgramError {
				t.Fatalf("%s run %d: %v", w.Name, i, out)
			}
		}
	}
}

// TestByName resolves every table workload and the extras.
func TestByName(t *testing.T) {
	for _, name := range []string{
		"cache4j", "Jigsaw", "JavaLogging", "ArrayList", "HashMap",
		"Figure4", "Figure2", "Figure9", "Philosophers", "Bank",
	} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
}

// TestFigure4Workload: the running example classifies as in the paper.
func TestFigure4Workload(t *testing.T) {
	w := Figure4()
	wolf, _ := analyzeBoth(t, w, 5)
	pr, gen, conf, unk := wolf.CountDefects()
	if pr != 1 || gen != 0 || conf != 1 || unk != 0 {
		t.Fatalf("Figure4 = FP %d+%d TP %d UNK %d, want 1+0/1/0", pr, gen, conf, unk)
	}
}

// TestTaskQueueWithWaitNotify: the queue-monitor/stats inversion is
// detected and confirmed despite wait/notify traffic around it.
func TestTaskQueueWithWaitNotify(t *testing.T) {
	w := TaskQueue()
	seed, ok := FindTerminatingSeed(w.New, 500)
	if !ok {
		t.Fatal("no terminating seed")
	}
	rep := core.Analyze(w.New, core.Config{DetectSeeds: []int64{seed}, ReplayAttempts: 10})
	if len(rep.Defects) == 0 {
		t.Fatal("no defects detected")
	}
	confirmedWorker := false
	for _, d := range rep.Defects {
		if d.Class == core.Confirmed && contains(d.Signature, "Worker.java:73") {
			confirmedWorker = true
		}
	}
	if !confirmedWorker {
		t.Fatalf("queue/stats inversion not confirmed:\n%v", rep)
	}
}

// TestAppServerIntegration: the composite application exposes exactly
// its parts' defects (logging inversion + queue/stats inversion), both
// confirmed, with no false alarms from the striped map, the cache or
// the bounded queue itself.
func TestAppServerIntegration(t *testing.T) {
	w := AppServer()
	seed, ok := FindTerminatingSeed(w.New, 500)
	if !ok {
		t.Fatal("no terminating seed")
	}
	rep := core.Analyze(w.New, core.Config{DetectSeeds: []int64{seed}, ReplayAttempts: 10})
	sawQueue, sawLogging := false, false
	for _, d := range rep.Defects {
		switch {
		case contains(d.Signature, "app.go:73") || contains(d.Signature, "monitor.20"):
			sawQueue = true
			if d.Class != core.Confirmed {
				t.Errorf("queue/stats defect %s = %v, want confirmed", d.Signature, d.Class)
			}
		case contains(d.Signature, "AppenderSkeleton") || contains(d.Signature, "Category"):
			sawLogging = true
			if d.Class != core.Confirmed {
				t.Errorf("logging defect %s = %v, want confirmed", d.Signature, d.Class)
			}
		case contains(d.Signature, "StripedMap") || contains(d.Signature, "SynchronizedCache"):
			t.Errorf("false alarm on deadlock-free substrate: %s (%v)", d.Signature, d.Class)
		}
	}
	if !sawQueue || !sawLogging {
		t.Fatalf("missing expected defects (queue=%v logging=%v):\n%v", sawQueue, sawLogging, rep)
	}
}

// TestRegistry: every workload — Table 1 rows and named extras — is
// reachable through ByName under a unique name, so -list, -workload and
// the wolfd service share one source of truth.
func TestRegistry(t *testing.T) {
	seen := make(map[string]bool)
	for _, w := range Registry() {
		if w.Name == "" {
			t.Fatal("workload with empty name")
		}
		if seen[w.Name] {
			t.Fatalf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		got, ok := ByName(w.Name)
		if !ok || got.Name != w.Name {
			t.Fatalf("ByName(%q) = %v, %v", w.Name, got.Name, ok)
		}
		if got.New == nil {
			t.Fatalf("workload %q has no factory", w.Name)
		}
	}
	for _, name := range []string{"Figure4", "Figure9", "TaskQueue", "AppServer"} {
		if !seen[name] {
			t.Fatalf("registry is missing %q", name)
		}
	}
	if _, ok := ByName("NoSuchWorkload"); ok {
		t.Fatal("ByName invented a workload")
	}
}
