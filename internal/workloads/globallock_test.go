package workloads_test

import (
	"bytes"
	"sort"
	"testing"
	"time"

	"wolf/internal/core"
	"wolf/internal/detect"
	"wolf/internal/fingerprint"
	"wolf/internal/trace"
	"wolf/internal/workloads"
	"wolf/sim"
	"wolf/wolfsync"
)

// fpSet returns the deduplicated fingerprints of every cycle the base
// detector finds in tr, sorted.
func fpSet(tr *trace.Trace) []string {
	seen := map[string]bool{}
	for _, c := range detect.Cycles(tr, detect.Config{}) {
		seen[fingerprint.Of(c)] = true
	}
	out := make([]string, 0, len(seen))
	for fp := range seen {
		out = append(out, fp)
	}
	sort.Strings(out)
	return out
}

// simTrace records one terminating run of the named workload.
func simTrace(t *testing.T, name string) *trace.Trace {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("%s not registered", name)
	}
	seed, ok := workloads.FindTerminatingSeed(w.New, 300)
	if !ok {
		t.Fatalf("no terminating seed for %s", name)
	}
	return core.Record(w.New, seed, 0)
}

// realTrace records one staged real run of the scenario through
// wolfsync and round-trips it through the binary codec.
func realTrace(t *testing.T, spec workloads.GlobalLockSpec) *trace.Trace {
	t.Helper()
	rec, err := wolfsync.Start()
	if err != nil {
		t.Fatal(err)
	}
	ok := workloads.RunGlobalLockReal(workloads.GlobalLockRealOptions{
		Spec:    spec,
		Staged:  true,
		Timeout: 30 * time.Second,
	})
	var buf bytes.Buffer
	if _, werr := rec.WriteTo(&buf); werr != nil {
		t.Fatal(werr)
	}
	if serr := rec.Stop(); serr != nil {
		t.Fatal(serr)
	}
	if !ok {
		t.Fatal("staged real run did not terminate")
	}
	tr, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("real trace invalid: %v", err)
	}
	return tr
}

// TestGlobalLockFingerprintIdentity is the acceptance test for the
// wolfsync instrumentation: the same global-lock scenario, run once
// under sim and once as a real instrumented Go program, must converge
// on byte-identical defect fingerprints — same thread abstractions,
// same lock abstractions, same sites, same held stacks, hashed to the
// same digests.
func TestGlobalLockFingerprintIdentity(t *testing.T) {
	simFPs := fpSet(simTrace(t, "GlobalLock"))
	if len(simFPs) == 0 {
		t.Fatal("sim run of GlobalLock found no cycles")
	}
	realFPs := fpSet(realTrace(t, workloads.DefaultGlobalLockSpec()))
	if len(realFPs) == 0 {
		t.Fatal("real run of GlobalLock found no cycles")
	}
	if len(simFPs) != len(realFPs) {
		t.Fatalf("fingerprint sets differ:\n  sim  %v\n  real %v", simFPs, realFPs)
	}
	for i := range simFPs {
		if simFPs[i] != realFPs[i] {
			t.Fatalf("fingerprint sets differ:\n  sim  %v\n  real %v", simFPs, realFPs)
		}
	}
}

// TestGlobalLockFixedZeroCycles: the message-posting fix eliminates
// the cycle on both paths.
func TestGlobalLockFixedZeroCycles(t *testing.T) {
	spec := workloads.DefaultGlobalLockSpec()
	spec.Fixed = true
	if fps := fpSet(simTrace(t, "GlobalLockFixed")); len(fps) != 0 {
		t.Fatalf("sim fixed variant still has cycles: %v", fps)
	}
	if fps := fpSet(realTrace(t, spec)); len(fps) != 0 {
		t.Fatalf("real fixed variant still has cycles: %v", fps)
	}
}

// TestGlobalLockCrashWedges: the crashed-holder variant deadlocks the
// whole sim world without a cycle — the wedge is a stuck holder, not a
// reversal — and the trace still identifies the holder.
func TestGlobalLockCrashWedges(t *testing.T) {
	w, ok := workloads.ByName("GlobalLockCrash")
	if !ok {
		t.Fatal("GlobalLockCrash not registered")
	}
	prog, opts := w.New()
	opts.Seed = 1
	opts.MaxSteps = 100000
	out := sim.Run(prog, sim.NewRandomStrategy(1), opts)
	if out.Kind != sim.Deadlocked {
		t.Fatalf("crash variant ended %v, want Deadlocked", out.Kind)
	}
}

// TestGlobalLockCrashRealReleases: the real crashed-holder run wedges
// (timeout) while holding the registry, and the recorded trace names
// the holder; releasing the fault drains the run.
func TestGlobalLockCrashRealReleases(t *testing.T) {
	rec, err := wolfsync.Start()
	if err != nil {
		t.Fatal(err)
	}
	spec := workloads.DefaultGlobalLockSpec()
	spec.Crash = true
	release := make(chan struct{})
	ok := workloads.RunGlobalLockReal(workloads.GlobalLockRealOptions{
		Spec:         spec,
		Timeout:      300 * time.Millisecond,
		CrashRelease: release,
	})
	if ok {
		t.Fatal("crashed run completed before release")
	}
	tr := func() *trace.Trace {
		var buf bytes.Buffer
		if _, err := rec.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		tr, err := trace.ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}()
	close(release) // un-wedge so the goroutines drain
	defer rec.Stop()

	// The wedged trace must contain the crashed holder's registry
	// acquisition — the record that answers "who held it".
	found := false
	for _, tp := range tr.Tuples {
		if tp.Lock == "TypeRegistry" && tp.Thread == "main/pipeline.0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("wedged trace does not name the registry holder: %v", tr.Tuples)
	}
}
