// Package workloads defines the benchmark programs of the paper's
// evaluation (Section 4): an object cache (cache4j), a mini web server
// (Jigsaw), a hierarchical logging library (Java Logging / log4j bug
// 24159) and eight java.util collection harnesses, plus the paper's
// illustrative figures and a few classics used by examples.
//
// Each workload is a sim.Factory whose synchronization skeleton mirrors
// the original benchmark's, so the WOLF pipeline faces the same
// detection, pruning, generation and replay problems the paper reports.
// Expected outcomes (the paper's table rows) are attached for the
// reporting harness.
package workloads

import (
	"wolf/sim"
)

// PaperRow is the paper's reported outcome for one benchmark, used by
// the report package to print paper-vs-measured comparisons.
type PaperRow struct {
	// LoC is the benchmark size the paper lists (our analogue is much
	// smaller; the column is reproduced for reference).
	LoC string
	// SL is the average stack-trace length (our analogue: average lock
	// stack depth; see EXPERIMENTS.md).
	SL float64
	// Vs is the average number of vertices in Gs.
	Vs float64
	// Slowdown is the detection slowdown (Table 1).
	Slowdown float64
	// Defects and the per-tool classification counts (Table 1).
	Defects, FPPruner, FPGen, TPWolf, TPDF, UnkWolf, UnkDF int
	// Cycles and the per-tool cycle-level counts (Table 2).
	Cycles, CyclesFPWolf, CyclesTPWolf, CyclesTPDF int
	// HitWolf and HitDF are approximate Figure 8 hit rates.
	HitWolf, HitDF float64
}

// Workload is one benchmark.
type Workload struct {
	// Name is the benchmark's table name.
	Name string
	// New builds a fresh program + options per run.
	New sim.Factory
	// Paper is the paper's reported row.
	Paper PaperRow
}

// All returns every Table 1 benchmark in the paper's row order.
func All() []Workload {
	return []Workload{
		Cache4j(),
		Jigsaw(),
		JavaLogging(),
		ListBench("ArrayList"),
		ListBench("Stack"),
		ListBench("LinkedList"),
		MapBench("HashMap"),
		MapBench("TreeMap"),
		MapBench("WeakHashMap"),
		MapBench("LinkedHashMap"),
		MapBench("IdentityHashMap"),
	}
}

// Named returns the non-Table-1 workloads — the paper's illustrative
// figures plus the classics used by examples — as a registry, so
// `wolf -list`, `wolf -workload` and the wolfd service all share one
// source of truth.
func Named() []Workload {
	return []Workload{
		Figure4(),
		Figure2(),
		Figure9(),
		Philosophers(5),
		Bank(),
		TaskQueue(),
		AppServer(),
		GlobalLock(),
		GlobalLockCrash(),
		GlobalLockFixed(),
	}
}

// Registry returns every available workload: the Table 1 benchmarks
// followed by the named extras.
func Registry() []Workload {
	return append(All(), Named()...)
}

// ByName returns the workload with the given name.
func ByName(name string) (Workload, bool) {
	for _, w := range Registry() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// FindTerminatingSeed searches for a schedule seed whose recorded run
// terminates (so detection observes the complete trace), preferring the
// smallest. Detection on a deadlocked run still works but sees a
// truncated trace.
func FindTerminatingSeed(f sim.Factory, tries int) (int64, bool) {
	for seed := int64(1); seed <= int64(tries); seed++ {
		prog, opts := f()
		if out := sim.Run(prog, sim.NewRandomStrategy(seed), opts); out.Kind == sim.Terminated {
			return seed, true
		}
	}
	return 0, false
}
