package workloads

import (
	"sync"
	"time"

	"wolf/wolfsync"
)

// RunGlobalLockReal is the global-lock scenario as a real concurrent
// Go program: real goroutines, real wolfsync mutexes, the same lock
// names and site strings as the sim driver — so a trace recorded by an
// active wolfsync session lands on byte-identical defect fingerprints.
//
// Call it from the goroutine that called wolfsync.Start (the session's
// "main"), so spawned workers get the creation-chain names
// "main/pipeline.N" and "main/http.N" that match sim's.
type GlobalLockRealOptions struct {
	Spec GlobalLockSpec
	// Staged serializes the two phases — pipeline threads finish all
	// their registry→pipeline rounds before HTTP threads start — so
	// the deadlock variant is guaranteed to terminate while still
	// recording both nesting orders. Unstaged, the raw variant races
	// for real and usually wedges.
	Staged bool
	// Timeout bounds the wait for completion (default 10s). On
	// timeout the function returns false with the workers left in
	// whatever state they reached — for a wedged run that is the
	// point: the recorder has their blocked requests.
	Timeout time.Duration
	// CrashRelease, when non-nil, lets a test un-wedge the crashed
	// holder afterwards: closing it makes the holder release the
	// registry and return. Nil means the holder blocks forever, like
	// the real crash.
	CrashRelease <-chan struct{}
}

// glPause models the computation sim marks with Yield inside the
// nested critical sections. Holding the outer lock for a visible
// window is what makes the raw variant's reversal race actually fire
// on a real scheduler instead of depending on a lucky preemption.
func glPause() { time.Sleep(200 * time.Microsecond) }

// RunGlobalLockReal runs the scenario and reports whether every worker
// finished before the timeout.
func RunGlobalLockReal(opt GlobalLockRealOptions) bool {
	spec := opt.Spec.withDefaults()
	if opt.Timeout <= 0 {
		opt.Timeout = 10 * time.Second
	}

	reg := wolfsync.NewMutex(glRegistryLock)
	pipes := make([]*wolfsync.Mutex, spec.Pipelines)
	queues := make([]chan struct{}, spec.Pipelines)
	expected := expectedMsgs(spec)
	for i := range pipes {
		pipes[i] = wolfsync.NewMutex(glPipelineLock(i))
		queues[i] = make(chan struct{}, spec.HTTP*spec.Requests)
	}

	// Staged mode gates HTTP threads until every pipeline thread has
	// finished its registry→pipeline rounds.
	gate := make(chan struct{})
	var pipePhase sync.WaitGroup
	if opt.Staged && !spec.Crash {
		pipePhase.Add(spec.Pipelines)
		go func() { // plain goroutine: acquires nothing, records nothing
			pipePhase.Wait()
			close(gate)
		}()
	} else {
		close(gate)
	}

	var wg sync.WaitGroup
	wg.Add(spec.Pipelines + spec.HTTP)
	for i := 0; i < spec.Pipelines; i++ {
		i := i
		wolfsync.Go("pipeline", func() {
			defer wg.Done()
			if spec.Crash && i == 0 {
				reg.LockAt(glSiteRefClass)
				<-opt.CrashRelease // the fault: never returns unless released
				reg.Unlock()
				return
			}
			for r := 0; r < spec.Rounds; r++ {
				reg.LockAt(glSiteRefClass)
				glPause() // sim's Yield(glSiteInit): compute inside the nesting
				pipes[i].LockAt(glSiteConfigure)
				pipes[i].Unlock()
				reg.Unlock()
			}
			if opt.Staged && !spec.Crash {
				pipePhase.Done()
			}
			if spec.Fixed {
				for got := 0; got < expected[i]; got++ {
					<-queues[i]
					reg.LockAt(glSiteApplySet)
					pipes[i].LockAt(glSiteApplyCfg)
					pipes[i].Unlock()
					reg.Unlock()
				}
			}
		})
	}
	for j := 0; j < spec.HTTP; j++ {
		j := j
		wolfsync.Go("http", func() {
			defer wg.Done()
			<-gate
			for q := 0; q < spec.Requests; q++ {
				p := (j + q) % spec.Pipelines
				if spec.Fixed {
					queues[p] <- struct{}{}
				} else {
					pipes[p].LockAt(glSiteSwitch)
					glPause() // sim's Yield(glSiteHandle)
					reg.LockAt(glSiteObjectSet)
					reg.Unlock()
					pipes[p].Unlock()
				}
			}
		})
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(opt.Timeout):
		return false
	}
}
