package workloads

import (
	"wolf/collections"
	"wolf/sim"
)

// taskqueue.go is an extension workload exercising monitor Wait/Notify:
// a bounded producer/consumer queue in the style of java.util.concurrent
// precursors, plus a resource deadlock between the queue monitor and a
// statistics lock. WOLF targets resource deadlocks; the condition
// synchronization is realistic traffic the detector and replayer must
// tolerate (waits release the monitor, resumes reacquire it).

// boundedQueue is a classic monitor-based bounded buffer.
type boundedQueue struct {
	mon   *sim.Lock
	items *collections.LinkedList[int]
	cap   int
}

// put blocks while the queue is full (BoundedQueue.java:31).
func (q *boundedQueue) put(t *sim.Thread, v int) {
	t.Lock(q.mon, "BoundedQueue.java:29")
	for q.items.Size() >= q.cap {
		t.Wait(q.mon, "BoundedQueue.java:31")
	}
	q.items.AddLast(v)
	t.NotifyAll(q.mon, "BoundedQueue.java:34")
	t.Unlock(q.mon, "BoundedQueue.java:36")
}

// get blocks while the queue is empty (BoundedQueue.java:44).
func (q *boundedQueue) get(t *sim.Thread) int {
	t.Lock(q.mon, "BoundedQueue.java:42")
	for q.items.Size() == 0 {
		t.Wait(q.mon, "BoundedQueue.java:44")
	}
	v, _ := q.items.RemoveFirst()
	t.NotifyAll(q.mon, "BoundedQueue.java:47")
	t.Unlock(q.mon, "BoundedQueue.java:49")
	return v
}

// TaskQueue is the wait/notify extension workload: one defect (queue
// monitor vs statistics lock), detected and confirmed amid condition
// synchronization traffic.
func TaskQueue() Workload {
	const (
		producers = 2
		consumers = 2
		tasks     = 6
		capacity  = 2
	)
	factory := func() (sim.Program, sim.Options) {
		var (
			q     *boundedQueue
			stats *sim.Lock
			done  int
		)
		opts := sim.Options{Setup: func(w *sim.World) {
			q = &boundedQueue{
				mon:   w.NewLock("BoundedQueue.mon"),
				items: collections.NewLinkedList[int](),
				cap:   capacity,
			}
			stats = w.NewLock("WorkerStats")
			done = 0
		}}
		prog := func(th *sim.Thread) {
			var hs []*sim.Thread
			for p := 0; p < producers; p++ {
				p := p
				hs = append(hs, th.Go("producer", func(u *sim.Thread) {
					for i := 0; i < tasks/producers; i++ {
						q.put(u, p*100+i)
					}
				}, "Pool.java:spawnP"))
			}
			for c := 0; c < consumers; c++ {
				hs = append(hs, th.Go("consumer", func(u *sim.Thread) {
					for i := 0; i < tasks/consumers; i++ {
						v := q.get(u)
						// Record completion: stats lock nested under
						// the queue monitor.
						u.Lock(q.mon, "Worker.java:71")
						u.Lock(stats, "Worker.java:73")
						done += v % 7
						u.Unlock(stats, "Worker.java:75")
						u.Unlock(q.mon, "Worker.java:77")
					}
				}, "Pool.java:spawnC"))
			}
			// The monitoring thread inverts the order: stats, then the
			// queue monitor to read the backlog.
			hs = append(hs, th.Go("monitor", func(u *sim.Thread) {
				for i := 0; i < 3; i++ {
					u.Lock(stats, "Monitor.java:18")
					u.Lock(q.mon, "Monitor.java:20")
					_ = q.items.Size()
					u.Unlock(q.mon, "Monitor.java:22")
					u.Unlock(stats, "Monitor.java:24")
				}
			}, "Pool.java:spawnM"))
			for _, h := range hs {
				th.Join(h, "Pool.java:join")
			}
		}
		return prog, opts
	}
	return Workload{
		Name: "TaskQueue",
		New:  factory,
		Paper: PaperRow{
			// Extension workload; not a Table 1 row.
			Defects: 1, TPWolf: 1,
		},
	}
}
