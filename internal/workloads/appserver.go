package workloads

import (
	"fmt"

	"wolf/collections"
	"wolf/sim"
)

// AppServer is an integration workload composing the other substrates
// into one application: request handlers consult a striped session map
// (deadlock-free by design), push work through a bounded queue
// (wait/notify), log through the hierarchical logger (bug 24159's
// inversion) and update an LRU response cache. The composite contains
// exactly the defects of its parts — the logging inversion and the
// queue-monitor/stats inversion — and the pipeline must classify them
// amid all the unrelated synchronization.
func AppServer() Workload {
	const handlers = 3
	factory := func() (sim.Program, sim.Options) {
		var (
			sessions *collections.StripedMap[int, string]
			queue    *boundedQueue
			stats    *sim.Lock
			h        *hierarchy
			cache    *lruCache
			done     int
		)
		opts := sim.Options{Setup: func(w *sim.World) {
			sessions = collections.NewStripedMap[int, string](w, "sessions", collections.IntHasher, 4)
			queue = &boundedQueue{
				mon:   w.NewLock("AppQueue.mon"),
				items: collections.NewLinkedList[int](),
				cap:   2,
			}
			stats = w.NewLock("AppStats")
			app := &appender{mu: w.NewLock("appender#app"), name: "app", layout: "plain"}
			root := &category{
				mu:        w.NewLock("category#app"),
				name:      "app",
				level:     1,
				appenders: collections.NewArrayList[int](1),
			}
			root.appenders.Add(0)
			h = &hierarchy{appenders: []*appender{app}, root: root}
			root.hier = h
			cache = newLRUCache(w, 8)
			done = 0
		}}
		prog := func(th *sim.Thread) {
			var hs []*sim.Thread
			// Request handlers: session lookup, enqueue, cache, log.
			for i := 0; i < handlers; i++ {
				i := i
				hs = append(hs, th.Go("handler", func(u *sim.Thread) {
					for r := 0; r < 3; r++ {
						sessions.Put(u, i*10+r, "session")
						queue.put(u, i*10+r)
						if _, ok := cache.get(u, r); !ok {
							cache.put(u, r, fmt.Sprintf("body-%d", r))
						}
						h.root.log(u, logEvent{level: 2, msg: "served"})
					}
				}, "app.go:accept"))
			}
			// Worker: drains the queue, bumps stats under the queue
			// monitor (half of the queue/stats inversion).
			hs = append(hs, th.Go("worker", func(u *sim.Thread) {
				for r := 0; r < handlers*3; r++ {
					v := queue.get(u)
					u.Lock(queue.mon, "app.go:71")
					u.Lock(stats, "app.go:73")
					done += v % 3
					u.Unlock(stats, "app.go:75")
					u.Unlock(queue.mon, "app.go:77")
				}
			}, "app.go:spawnWorker"))
			// Monitor thread: inverts stats/queue-monitor order.
			hs = append(hs, th.Go("monitor", func(u *sim.Thread) {
				for r := 0; r < 2; r++ {
					u.Lock(stats, "app.go:monitor.18")
					u.Lock(queue.mon, "app.go:monitor.20")
					_ = queue.items.Size()
					u.Unlock(queue.mon, "app.go:monitor.22")
					u.Unlock(stats, "app.go:monitor.24")
				}
			}, "app.go:spawnMonitor"))
			// Admin thread: reconfigures the appender (the logging
			// inversion's other half).
			hs = append(hs, th.Go("admin", func(u *sim.Thread) {
				h.appenders[0].setLayout(u, h.root, "pattern")
			}, "app.go:spawnAdmin"))
			for _, x := range hs {
				th.Join(x, "app.go:shutdown")
			}
		}
		return prog, opts
	}
	return Workload{
		Name: "AppServer",
		New:  factory,
		Paper: PaperRow{
			// Integration workload, not a paper row: two real defects.
			Defects: 2, TPWolf: 2,
		},
	}
}
