package workloads

import (
	"fmt"

	"wolf/collections"
	"wolf/sim"
)

// cache4j.go models the cache4j benchmark: a synchronized LRU object
// cache hammered by several client threads. Its locking is disciplined
// (one cache-wide monitor, never nested), so no deadlock exists; the
// row exists to measure detection overhead on a lock-heavy program.

// lruCache is a blocking LRU cache in the style of
// cache4j's SynchronizedCache: a hash map plus an eviction list behind
// one monitor.
type lruCache struct {
	mu       *sim.Lock
	capacity int
	items    *collections.HashMap[int, string]
	order    *collections.LinkedList[int]
	hits     int
	misses   int
	evicted  int
}

// newLRUCache builds a cache with the given capacity.
func newLRUCache(w *sim.World, capacity int) *lruCache {
	return &lruCache{
		mu:       w.NewLock("cache4j.SynchronizedCache"),
		capacity: capacity,
		items:    collections.NewHashMap[int, string](collections.IntHasher),
		order:    collections.NewLinkedList[int](),
	}
}

// get returns the cached value, refreshing recency
// (SynchronizedCache.java:49).
func (c *lruCache) get(t *sim.Thread, key int) (string, bool) {
	var v string
	var ok bool
	t.WithLock(c.mu, "SynchronizedCache.java:49", func() {
		v, ok = c.items.Get(key)
		if ok {
			c.hits++
			c.order.Remove(key)
			c.order.AddLast(key)
		} else {
			c.misses++
		}
	})
	return v, ok
}

// put inserts a value, evicting the least recently used entry when full
// (SynchronizedCache.java:62).
func (c *lruCache) put(t *sim.Thread, key int, val string) {
	t.WithLock(c.mu, "SynchronizedCache.java:62", func() {
		if _, had := c.items.Put(key, val); had {
			c.order.Remove(key)
		} else if c.items.Size() > c.capacity {
			if victim, ok := c.order.RemoveFirst(); ok {
				c.items.Remove(victim)
				c.evicted++
			}
		}
		c.order.AddLast(key)
	})
}

// Cache4j is the Table 1 "cache4j" row: zero deadlocks, pure overhead
// measurement.
func Cache4j() Workload {
	const (
		clients  = 4
		requests = 25
		capacity = 16
	)
	factory := func() (sim.Program, sim.Options) {
		var cache *lruCache
		opts := sim.Options{Setup: func(w *sim.World) {
			cache = newLRUCache(w, capacity)
		}}
		prog := func(th *sim.Thread) {
			var hs []*sim.Thread
			for i := 0; i < clients; i++ {
				i := i
				hs = append(hs, th.Go("client", func(u *sim.Thread) {
					rng := u.Rand()
					for r := 0; r < requests; r++ {
						key := rng.Intn(40)
						if _, ok := cache.get(u, key); !ok {
							cache.put(u, key, fmt.Sprintf("value-%d-%d", i, key))
						}
					}
				}, "spawn"))
			}
			for _, h := range hs {
				th.Join(h, "gather")
			}
		}
		return prog, opts
	}
	return Workload{
		Name: "cache4j",
		New:  factory,
		Paper: PaperRow{
			LoC: "3,897", Slowdown: 1.32,
			// All defect and cycle counts are zero.
		},
	}
}
