package workloads

import (
	"wolf/collections"
	"wolf/sim"
)

// logging.go models the Java Logging benchmark (jakarta-log4j 1.2.8) and
// its bug 24159: the logging path locks the Category (logger) monitor
// and then each Appender's monitor, while appender reconfiguration locks
// the Appender monitor and emits an internal diagnostic through the
// logger — the classic inverted pair. Two distinct reconfiguration
// entry points give the benchmark's two defects; DeadlockFuzzer's
// randomized pausing is biased toward the one earlier in the code
// (SetLayout), leaving the second unknown, exactly as in Table 1.

// logEvent is a log record.
type logEvent struct {
	level int
	msg   string
}

// appender writes formatted events; its monitor guards layout state.
type appender struct {
	mu     *sim.Lock
	name   string
	layout string
	errors int
	out    []string
}

// category is a named logger; its monitor guards the appender list and
// the effective level.
type category struct {
	mu        *sim.Lock
	name      string
	level     int
	appenders *collections.ArrayList[int] // indices into the hierarchy's appender table
	hier      *hierarchy
}

// hierarchy owns loggers and appenders.
type hierarchy struct {
	appenders []*appender
	root      *category
}

// callAppenders is Category.callAppenders (Category.java:204): lock the
// category, then deliver to each appender (AppenderSkeleton.java:231).
func (c *category) log(t *sim.Thread, ev logEvent) {
	t.Lock(c.mu, "Category.java:204")
	if ev.level >= c.level {
		c.appenders.Each(func(i int) bool {
			a := c.hier.appenders[i]
			t.Lock(a.mu, "AppenderSkeleton.java:231")
			a.out = append(a.out, a.layout+":"+ev.msg)
			t.Unlock(a.mu, "AppenderSkeleton.java:233")
			return true
		})
	}
	t.Unlock(c.mu, "Category.java:206")
}

// setLayout is AppenderSkeleton.setLayout (AppenderSkeleton.java:76):
// lock the appender, then emit a configuration diagnostic through the
// logger (Category.java:59).
func (a *appender) setLayout(t *sim.Thread, root *category, layout string) {
	t.Lock(a.mu, "AppenderSkeleton.java:76")
	a.layout = layout
	t.Lock(root.mu, "Category.java:59") // LogLog diagnostic through the logger
	_ = root.level
	t.Unlock(root.mu, "Category.java:60")
	t.Unlock(a.mu, "AppenderSkeleton.java:78")
}

// setErrorHandler is AppenderSkeleton.setErrorHandler
// (AppenderSkeleton.java:94), with the same nested diagnostic
// (Category.java:63).
func (a *appender) setErrorHandler(t *sim.Thread, root *category) {
	t.Lock(a.mu, "AppenderSkeleton.java:94")
	a.errors = 0
	t.Lock(root.mu, "Category.java:63")
	_ = root.level
	t.Unlock(root.mu, "Category.java:64")
	t.Unlock(a.mu, "AppenderSkeleton.java:96")
}

// JavaLogging is the Table 1 "Java Logging" row: two defects (bug 24159
// through two reconfiguration entry points), both confirmed by WOLF,
// only the first by DeadlockFuzzer.
func JavaLogging() Workload {
	factory := func() (sim.Program, sim.Options) {
		var h *hierarchy
		opts := sim.Options{Setup: func(w *sim.World) {
			app := &appender{mu: w.NewLock("appender#console"), name: "console", layout: "plain"}
			root := &category{
				mu:        w.NewLock("category#root"),
				name:      "root",
				level:     1,
				appenders: collections.NewArrayList[int](1),
			}
			root.appenders.Add(0)
			h = &hierarchy{appenders: []*appender{app}, root: root}
			root.hier = h
		}}
		prog := func(th *sim.Thread) {
			logger := th.Go("logger", func(u *sim.Thread) {
				h.root.log(u, logEvent{level: 2, msg: "request served"})
			}, "spawnLog")
			config := th.Go("config", func(u *sim.Thread) {
				h.appenders[0].setLayout(u, h.root, "pattern")
				h.appenders[0].setErrorHandler(u, h.root)
			}, "spawnCfg")
			th.Join(logger, "j1")
			th.Join(config, "j2")
		}
		return prog, opts
	}
	return Workload{
		Name: "JavaLogging",
		New:  factory,
		Paper: PaperRow{
			LoC: "4,248", SL: 10, Vs: 20, Slowdown: 1.07,
			Defects: 2, TPWolf: 2, TPDF: 1, UnkDF: 1,
			Cycles: 2, CyclesTPWolf: 2, CyclesTPDF: 1,
			HitWolf: 1.0, HitDF: 0.5,
		},
	}
}
