package obs

// The flight recorder is a bounded, lock-free ring of recent Events:
// completed spans, job state transitions, stream lifecycle, shedding
// decisions, store writes, replay verdicts — whatever the embedding
// process considers worth retaining for an incident. Unlike the
// Recorder (which aggregates spans per job), the flight recorder is
// daemon-wide and fixed-size: writers never block and never allocate
// beyond the event itself, old entries are overwritten in ring order,
// and readers get a consistent snapshot without stopping writers.
//
// Writers claim a slot with one atomic increment and publish the event
// with one atomic pointer store; readers load the pointers they can see
// and order by the per-event sequence number. A reader racing a
// wrapping writer observes either the old or the new event — never a
// torn one — so the ring is safe under any number of concurrent
// writers and readers.

import (
	"cmp"
	"slices"
	"sync/atomic"
	"time"
)

// Event is one flight-recorder entry. Kind is a small closed vocabulary
// (for example "job.done", "stream.evict"); Job, Stream and Trace are
// optional correlation handles, and Attrs carries small kind-specific
// details.
type Event struct {
	// Seq is the global, monotonically increasing sequence number the
	// recorder assigned; readers use it for ordering and ?since cursors.
	Seq uint64 `json:"seq"`
	// Time is the wall-clock event time (stamped by Record when zero).
	Time time.Time `json:"time"`
	// Kind labels the event class, dot-namespaced per subsystem.
	Kind string `json:"kind"`
	// Job is the job ID the event concerns, if any.
	Job string `json:"job,omitempty"`
	// Stream is the ingestion-stream ID the event concerns, if any.
	Stream string `json:"stream,omitempty"`
	// Trace is the W3C trace ID correlating the event to a request.
	Trace string `json:"trace,omitempty"`
	// Msg is a short human-readable detail line.
	Msg string `json:"msg,omitempty"`
	// Attrs are small kind-specific key/value details.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// FlightRecorder is the bounded event ring. A nil *FlightRecorder is
// valid and inert, mirroring the nil-*Span convention. Create with
// NewFlightRecorder.
type FlightRecorder struct {
	mask  uint64
	seq   atomic.Uint64
	slots []atomic.Pointer[Event]
}

// NewFlightRecorder returns a ring retaining the most recent size
// events (rounded up to a power of two, minimum 16).
func NewFlightRecorder(size int) *FlightRecorder {
	n := 16
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{mask: uint64(n - 1), slots: make([]atomic.Pointer[Event], n)}
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Seq returns the latest assigned sequence number (the total number of
// events ever recorded).
func (f *FlightRecorder) Seq() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Record assigns the event its sequence number, stamps Time when unset,
// and publishes it, overwriting the oldest retained entry once the ring
// is full. It returns the assigned sequence number (0 on a nil ring).
func (f *FlightRecorder) Record(ev Event) uint64 {
	if f == nil {
		return 0
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	n := f.seq.Add(1)
	ev.Seq = n
	f.slots[(n-1)&f.mask].Store(&ev)
	return n
}

// Snapshot returns the retained events in sequence order. The result is
// a consistent-per-entry copy: each entry is an event that was fully
// published, though a concurrently writing ring may already have
// overwritten some by the time the caller looks.
func (f *FlightRecorder) Snapshot() []Event {
	return f.Since(0)
}

// Since returns the retained events with Seq > seq, in sequence order.
// It is the cursor primitive behind ?since= polling and the SSE tail:
// a reader that remembers the last Seq it saw gets exactly the new
// events (minus any the ring has already overwritten).
func (f *FlightRecorder) Since(seq uint64) []Event {
	if f == nil {
		return nil
	}
	out := make([]Event, 0, len(f.slots))
	for i := range f.slots {
		if ev := f.slots[i].Load(); ev != nil && ev.Seq > seq {
			out = append(out, *ev)
		}
	}
	// Ring order is not sequence order once wrapped (and concurrent
	// writers can publish slightly out of slot order); sort the bounded
	// snapshot.
	slices.SortFunc(out, func(a, b Event) int { return cmp.Compare(a.Seq, b.Seq) })
	return out
}
