package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderBasic(t *testing.T) {
	f := NewFlightRecorder(16)
	if f.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", f.Cap())
	}
	for i := 0; i < 5; i++ {
		seq := f.Record(Event{Kind: "job.queued", Job: fmt.Sprintf("j-%d", i)})
		if seq != uint64(i+1) {
			t.Fatalf("Record #%d returned seq %d", i, seq)
		}
	}
	evs := f.Snapshot()
	if len(evs) != 5 {
		t.Fatalf("Snapshot len = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d: Seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Time.IsZero() {
			t.Errorf("event %d: Time not stamped", i)
		}
	}
	since := f.Since(3)
	if len(since) != 2 || since[0].Seq != 4 || since[1].Seq != 5 {
		t.Fatalf("Since(3) = %+v, want seqs 4,5", since)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(16)
	const total = 100
	for i := 1; i <= total; i++ {
		f.Record(Event{Kind: "k", Msg: fmt.Sprintf("m%d", i)})
	}
	if f.Seq() != total {
		t.Fatalf("Seq = %d, want %d", f.Seq(), total)
	}
	evs := f.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("after wrap: Snapshot len = %d, want ring size 16", len(evs))
	}
	// Exactly the newest 16, in order.
	for i, ev := range evs {
		want := uint64(total - 16 + 1 + i)
		if ev.Seq != want {
			t.Errorf("event %d: Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestFlightRecorderRoundsSizeUp(t *testing.T) {
	for size, want := range map[int]int{0: 16, 1: 16, 17: 32, 4096: 4096, 5000: 8192} {
		if got := NewFlightRecorder(size).Cap(); got != want {
			t.Errorf("NewFlightRecorder(%d).Cap() = %d, want %d", size, got, want)
		}
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	if seq := f.Record(Event{Kind: "k"}); seq != 0 {
		t.Errorf("nil Record = %d, want 0", seq)
	}
	if f.Snapshot() != nil || f.Since(0) != nil || f.Cap() != 0 || f.Seq() != 0 {
		t.Error("nil recorder not inert")
	}
}

// TestFlightRecorderConcurrent hammers one ring with 8 writers while a
// reader snapshots continuously: the bound must hold, published events
// must never be torn (Kind always matches the writer that owns the
// Seq), and sequence order must be strict within a snapshot.
func TestFlightRecorderConcurrent(t *testing.T) {
	const (
		writers   = 8
		perWriter = 2000
	)
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := f.Snapshot()
			if len(evs) > f.Cap() {
				select {
				case errs <- fmt.Errorf("snapshot %d exceeds ring cap %d", len(evs), f.Cap()):
				default:
				}
				return
			}
			for i := range evs {
				if i > 0 && evs[i-1].Seq >= evs[i].Seq {
					select {
					case errs <- fmt.Errorf("snapshot out of order: %d then %d", evs[i-1].Seq, evs[i].Seq):
					default:
					}
					return
				}
				// Each event's Job names its writer and Msg its count;
				// a torn read would mix them.
				if evs[i].Kind != "w."+evs[i].Job {
					select {
					case errs <- fmt.Errorf("torn event: kind %q job %q", evs[i].Kind, evs[i].Job):
					default:
					}
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			job := fmt.Sprintf("%d", w)
			for i := 0; i < perWriter; i++ {
				f.Record(Event{Kind: "w." + job, Job: job, Time: time.Unix(1, 0)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Writers finish fast; give the reader a moment more, then stop it.
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if f.Seq() != writers*perWriter {
		t.Fatalf("Seq = %d, want %d", f.Seq(), writers*perWriter)
	}
	if got := len(f.Snapshot()); got != f.Cap() {
		t.Fatalf("final snapshot len = %d, want full ring %d", got, f.Cap())
	}
}
