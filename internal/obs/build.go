package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo describes the running binary for wolfd_build_info and the
// /version endpoint.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for plain go build).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit when stamped, "" otherwise.
	Revision string `json:"revision,omitempty"`
	// Modified reports a dirty working tree at build time.
	Modified bool `json:"modified,omitempty"`
}

// ReadBuildInfo extracts build metadata from the running binary. It
// degrades gracefully when debug info is unavailable (tests, stripped
// builds): GoVersion falls back to runtime.Version and Version to
// "unknown".
func ReadBuildInfo() BuildInfo {
	out := BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Version != "" {
		out.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		out.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.modified":
			out.Modified = s.Value == "true"
		}
	}
	return out
}
