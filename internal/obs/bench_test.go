// Observability-substrate micro-benchmarks: the span and histogram hot
// paths must stay cheap enough that phase-level instrumentation is
// invisible next to the work it measures (the acceptance bar is ≤ 5%
// on the detection pipeline benchmarks in the repo root).
package obs

import (
	"context"
	"testing"
	"time"
)

// BenchmarkSpanDisabled measures the instrumented-but-off path: a
// context without a recorder. This is the cost every caller pays when
// observability is not requested.
func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench")
		sp.Add("k", 1)
		sp.End()
	}
}

// BenchmarkSpanEnabled measures a full start/attr/end cycle against a
// live recorder.
func BenchmarkSpanEnabled(b *testing.B) {
	rec := NewRecorder()
	ctx := WithRecorder(context.Background(), rec)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench")
		sp.Add("k", 1)
		sp.End()
	}
}

// BenchmarkHistogramObserve measures the lock-free observe path.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

// BenchmarkHistogramObserveParallel measures contended observes, the
// wolfd worker-pool pattern.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(time.Millisecond)
		}
	})
}
