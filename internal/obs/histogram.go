package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets. Bucket i covers
// latencies up to BucketBound(i); one extra overflow bucket catches
// everything larger (the Prometheus "+Inf" bucket).
//
// With 28 power-of-two buckets starting at 1µs the histogram spans 1µs
// … ~134s, which covers everything from a single pruner call to a
// worst-case replay campaign with at most 2x relative error per
// observation.
const NumBuckets = 28

// bucketBoundNs returns bucket i's inclusive upper bound in nanoseconds:
// 1µs·2^i.
func bucketBoundNs(i int) int64 { return int64(1000) << uint(i) }

// BucketBound returns bucket i's inclusive upper bound as a duration.
func BucketBound(i int) time.Duration { return time.Duration(bucketBoundNs(i)) }

// bucketIndex maps a duration to its bucket: the smallest i with
// d ≤ 1µs·2^i, or NumBuckets for the overflow bucket.
func bucketIndex(d time.Duration) int {
	ns := int64(d)
	if ns <= 1000 {
		return 0
	}
	// d ≤ 1000·2^i  ⇔  ⌈d/1000⌉ ≤ 2^i, and the smallest such i is the
	// bit length of ⌈d/1000⌉-1.
	q := uint64((ns + 999) / 1000)
	i := bits.Len64(q - 1)
	if i >= NumBuckets {
		return NumBuckets
	}
	return i
}

// Histogram is a log-bucketed (power-of-two) latency histogram. All
// operations are lock-free atomic updates, so hot paths (the wolfd
// worker pool, per-request handlers) can observe without contention;
// histograms merge losslessly because every instance shares the same
// fixed bucket layout.
//
// The zero value is ready to use.
type Histogram struct {
	counts [NumBuckets + 1]atomic.Uint64
	sumNs  atomic.Int64
	count  atomic.Uint64
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.sumNs.Add(int64(d))
	h.count.Add(1)
}

// ObserveSince records the latency elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed latencies.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Bucket returns the observation count of bucket i (NumBuckets for the
// overflow bucket).
func (h *Histogram) Bucket(i int) uint64 { return h.counts[i].Load() }

// Merge folds o's observations into h. Safe to call concurrently with
// observations on either side; the merge itself is per-bucket atomic,
// not a snapshot.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if n := o.counts[i].Load(); n > 0 {
			h.counts[i].Add(n)
		}
	}
	h.sumNs.Add(o.sumNs.Load())
	h.count.Add(o.count.Load())
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) of the
// observed latencies: the bound of the first bucket whose cumulative
// count reaches q·total. It returns 0 with no observations and the
// maximum finite bound for observations in the overflow bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	need := uint64(math.Ceil(q * float64(total)))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for i := 0; i <= NumBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= need {
			if i == NumBuckets {
				return BucketBound(NumBuckets - 1)
			}
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}

// formatSeconds renders a float for exposition output (shortest
// round-trip form, as Prometheus clients emit).
func formatSeconds(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders the histogram as a Prometheus histogram
// family: cumulative name_bucket{le="..."} series, name_sum and
// name_count, with latencies converted to seconds. extraLabels, if
// non-empty, is spliced verbatim before the le label of every bucket
// and onto sum/count (callers build it with Label).
func (h *Histogram) WritePrometheus(w io.Writer, name, help, extraLabels string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	sep := ""
	if extraLabels != "" {
		sep = ","
	}
	var cum uint64
	for i := 0; i <= NumBuckets; i++ {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < NumBuckets {
			le = formatSeconds(BucketBound(i).Seconds())
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, extraLabels, sep, le, cum)
	}
	suffix := ""
	if extraLabels != "" {
		suffix = "{" + extraLabels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatSeconds(h.Sum().Seconds()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.Count())
}

// ObserveValue records one unitless value (a byte count, a queue
// length) into the same bucket layout. Pair with WritePrometheusValues
// so bounds render as raw values rather than seconds.
func (h *Histogram) ObserveValue(v int64) { h.Observe(time.Duration(v)) }

// WritePrometheusValues renders the histogram with raw (unit-free)
// bucket bounds and sum — for value distributions such as per-stream
// byte counts, where WritePrometheus's nanoseconds→seconds conversion
// would corrupt the scale.
func (h *Histogram) WritePrometheusValues(w io.Writer, name, help, extraLabels string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	sep := ""
	if extraLabels != "" {
		sep = ","
	}
	var cum uint64
	for i := 0; i <= NumBuckets; i++ {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < NumBuckets {
			le = strconv.FormatInt(bucketBoundNs(i), 10)
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, extraLabels, sep, le, cum)
	}
	suffix := ""
	if extraLabels != "" {
		suffix = "{" + extraLabels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %d\n", name, suffix, h.sumNs.Load())
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.Count())
}

// Label renders one key="value" label pair with Prometheus escaping,
// for composing label strings passed to WritePrometheus and friends.
func Label(key, value string) string {
	var b []byte
	b = append(b, key...)
	b = append(b, '=', '"')
	for _, r := range value {
		switch r {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, string(r)...)
		}
	}
	b = append(b, '"')
	return string(b)
}
