package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent is one event in the Chrome trace-event format (the JSON
// consumed by Perfetto and chrome://tracing). Field order matches the
// format documentation; zero-valued optional fields are omitted.
//
// Phases used by this repo:
//
//	"M"  metadata (process_name / thread_name)
//	"B"  duration begin   "E" duration end
//	"X"  complete (begin with inline dur)
//	"i"  instant (S: "t" thread, "p" process, "g" global)
//	"C"  counter
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Timeline accumulates Chrome trace events. Timestamps are written by
// the caller; the scheduler timeline uses the sim step counter as a
// logical microsecond clock so exports are deterministic and
// golden-testable, while span timelines use real microseconds.
//
// Timeline is not safe for concurrent use; the sim scheduler and the
// analysis pipeline are both single-threaded at the points that emit.
type Timeline struct {
	events []TraceEvent
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Add appends a raw event.
func (t *Timeline) Add(ev TraceEvent) { t.events = append(t.events, ev) }

// Events returns the accumulated events in emission order. The slice is
// owned by the timeline; do not modify it.
func (t *Timeline) Events() []TraceEvent { return t.events }

// Len returns the number of accumulated events.
func (t *Timeline) Len() int { return len(t.events) }

// Process emits a process_name metadata event naming pid's track group.
func (t *Timeline) Process(pid int64, name string) {
	t.Add(TraceEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}})
}

// Thread emits a thread_name metadata event naming the (pid, tid) track.
func (t *Timeline) Thread(pid, tid int64, name string) {
	t.Add(TraceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}})
}

// Begin opens a duration slice on the (pid, tid) track.
func (t *Timeline) Begin(pid, tid int64, name, cat string, ts int64, args map[string]any) {
	t.Add(TraceEvent{Name: name, Cat: cat, Ph: "B", Ts: ts, Pid: pid, Tid: tid, Args: args})
}

// End closes the most recent open slice on the (pid, tid) track.
func (t *Timeline) End(pid, tid int64, ts int64) {
	t.Add(TraceEvent{Ph: "E", Ts: ts, Pid: pid, Tid: tid})
}

// Complete emits a complete slice with an inline duration.
func (t *Timeline) Complete(pid, tid int64, name, cat string, ts, dur int64, args map[string]any) {
	if dur <= 0 {
		dur = 1 // zero-width slices are invisible in Perfetto
	}
	t.Add(TraceEvent{Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid, Args: args})
}

// Instant emits an instant marker. scope is "t" (thread), "p" (process)
// or "g" (global, drawn across every track).
func (t *Timeline) Instant(pid, tid int64, name, cat string, ts int64, scope string, args map[string]any) {
	t.Add(TraceEvent{Name: name, Cat: cat, Ph: "i", Ts: ts, Pid: pid, Tid: tid, S: scope, Args: args})
}

// Counter emits a counter sample; each key of values becomes one series
// of the counter track.
func (t *Timeline) Counter(pid, tid int64, name string, ts int64, values map[string]any) {
	t.Add(TraceEvent{Name: name, Ph: "C", Ts: ts, Pid: pid, Tid: tid, Args: values})
}

// WriteJSON serializes the timeline in the JSON object form of the
// trace-event format ({"traceEvents": [...]}), one event per line for
// greppability. Map-valued args marshal with sorted keys, so output is
// deterministic for deterministic event sequences.
func (t *Timeline) WriteJSON(w io.Writer) error {
	if _, err := io.WriteString(w, "{\"traceEvents\": [\n"); err != nil {
		return err
	}
	for i, ev := range t.events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(t.events)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(b, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "], \"displayTimeUnit\": \"ms\"}\n")
	return err
}

// ValidateTimeline parses data as trace-event JSON and checks the
// structural rules Perfetto relies on: a traceEvents array; every event
// carries a known phase, pid and non-negative ts; B/E pairs balance per
// (pid, tid) track; instants use a valid scope. It returns nil when the
// document validates.
func ValidateTimeline(data []byte) error {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("timeline: not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("timeline: missing traceEvents array")
	}
	type track struct{ pid, tid int64 }
	depth := make(map[track]int)
	for i, raw := range doc.TraceEvents {
		var ev TraceEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return fmt.Errorf("timeline: event %d: %w", i, err)
		}
		tr := track{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" && ev.Name != "thread_name" && ev.Name != "thread_sort_index" && ev.Name != "process_sort_index" {
				return fmt.Errorf("timeline: event %d: unknown metadata %q", i, ev.Name)
			}
		case "B":
			if ev.Name == "" {
				return fmt.Errorf("timeline: event %d: B event without name", i)
			}
			depth[tr]++
		case "E":
			depth[tr]--
			if depth[tr] < 0 {
				return fmt.Errorf("timeline: event %d: E without matching B on pid=%d tid=%d", i, ev.Pid, ev.Tid)
			}
		case "X":
			if ev.Dur < 0 {
				return fmt.Errorf("timeline: event %d: negative dur", i)
			}
		case "i":
			switch ev.S {
			case "", "t", "p", "g":
			default:
				return fmt.Errorf("timeline: event %d: bad instant scope %q", i, ev.S)
			}
		case "C":
			if len(ev.Args) == 0 {
				return fmt.Errorf("timeline: event %d: counter without values", i)
			}
		default:
			return fmt.Errorf("timeline: event %d: unknown phase %q", i, ev.Ph)
		}
		if ev.Ph != "M" && ev.Ts < 0 {
			return fmt.Errorf("timeline: event %d: negative ts", i)
		}
	}
	for tr, d := range depth {
		if d != 0 {
			return fmt.Errorf("timeline: %d unclosed B event(s) on pid=%d tid=%d", d, tr.pid, tr.tid)
		}
	}
	return nil
}
