package obs

import (
	"strings"
	"testing"
)

// lint runs PromLint over a literal exposition.
func lint(s string) []error { return PromLint(strings.NewReader(s)) }

func TestPromLintClean(t *testing.T) {
	clean := `# HELP jobs_total Jobs processed.
# TYPE jobs_total counter
jobs_total{reason="error"} 3
jobs_total{reason="timeout"} 1
# HELP queue_depth Current queue depth.
# TYPE queue_depth gauge
queue_depth 0
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.001"} 1
lat_seconds_bucket{le="1"} 2
lat_seconds_bucket{le="+Inf"} 2
lat_seconds_sum 0.5
lat_seconds_count 2
`
	if errs := lint(clean); errs != nil {
		t.Fatalf("clean exposition flagged: %v", errs)
	}
}

func TestPromLintViolations(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"sample without help", "foo 1\n", "without HELP"},
		{"type without help", "# TYPE foo counter\nfoo 1\n", "without preceding HELP"},
		{"help without type", "# HELP foo x\nfoo 1\n", "without TYPE"},
		{"bad type", "# HELP foo x\n# TYPE foo banana\nfoo 1\n", "unknown metric type"},
		{"duplicate series", "# HELP foo x\n# TYPE foo counter\nfoo 1\nfoo 2\n", "duplicate series"},
		{"negative counter", "# HELP foo x\n# TYPE foo counter\nfoo -1\n", "negative value"},
		{"bad metric name", "# HELP foo x\n# TYPE foo counter\n2foo 1\n", "invalid metric name"},
		{"bad label syntax", "# HELP foo x\n# TYPE foo counter\nfoo{bar=baz} 1\n", "unquoted label value"},
		{"bad label name", "# HELP foo x\n# TYPE foo counter\nfoo{2bar=\"b\"} 1\n", "invalid label name"},
		{"unterminated labels", "# HELP foo x\n# TYPE foo counter\nfoo{bar=\"b\" 1\n", "malformed label"},
		{"declared but empty", "# HELP foo x\n# TYPE foo counter\n", "no samples"},
		{
			"non-monotonic buckets",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not monotonic",
		},
		{
			"buckets out of order",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
			"out of le order",
		},
		{
			"missing inf bucket",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"not le=\"+Inf\"",
		},
		{
			"count mismatch",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
			"_count 3 != +Inf bucket 2",
		},
		{
			"missing sum",
			"# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"missing _sum",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			errs := lint(c.in)
			if len(errs) == 0 {
				t.Fatalf("no violation found, want %q", c.wantSub)
			}
			for _, e := range errs {
				if strings.Contains(e.Error(), c.wantSub) {
					return
				}
			}
			t.Fatalf("violations %v do not mention %q", errs, c.wantSub)
		})
	}
}

func TestPromLintEscapedLabels(t *testing.T) {
	in := "# HELP foo x\n# TYPE foo counter\nfoo{path=\"a\\\"b\\\\c\\n\"} 1\n"
	if errs := lint(in); errs != nil {
		t.Fatalf("escaped label flagged: %v", errs)
	}
}
