package obs

import (
	"context"
	"strings"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	const (
		tid = "4bf92f3577b34da6a3ce929d0e0e4736"
		pid = "00f067aa0ba902b7"
	)
	good := []string{
		"00-" + tid + "-" + pid + "-01",
		"00-" + tid + "-" + pid + "-00",
		// Future version: extra trailing fields are legal.
		"01-" + tid + "-" + pid + "-01-extra",
	}
	for _, in := range good {
		gotT, gotS, err := ParseTraceparent(in)
		if err != nil {
			t.Errorf("ParseTraceparent(%q) = %v", in, err)
			continue
		}
		if gotT != tid || gotS != pid {
			t.Errorf("ParseTraceparent(%q) = %q, %q", in, gotT, gotS)
		}
	}
	bad := []string{
		"",
		"00",
		"00-" + tid + "-" + pid,               // missing flags
		"00-" + tid + "-" + pid + "-01-extra", // v00 forbids extras
		"ff-" + tid + "-" + pid + "-01",       // forbidden version
		"0-" + tid + "-" + pid + "-01",        // short version
		"00-" + strings.ToUpper(tid) + "-" + pid + "-01", // uppercase hex
		"00-" + tid[:31] + "-" + pid + "-01",             // short trace-id
		"00-" + strings.Repeat("0", 32) + "-" + pid + "-01",
		"00-" + tid + "-" + strings.Repeat("0", 16) + "-01",
		"00-" + tid + "-" + pid + "-0g",
		"00-" + tid + "-" + pid[:15] + "-01",
	}
	for _, in := range bad {
		if _, _, err := ParseTraceparent(in); err == nil {
			t.Errorf("ParseTraceparent(%q): want error, got nil", in)
		}
	}
}

func TestFormatTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	if len(tid) != 32 || len(sid) != 16 {
		t.Fatalf("minted IDs have wrong length: %q %q", tid, sid)
	}
	header := FormatTraceparent(tid, sid)
	gotT, gotS, err := ParseTraceparent(header)
	if err != nil {
		t.Fatalf("round trip %q: %v", header, err)
	}
	if gotT != tid || gotS != sid {
		t.Fatalf("round trip %q = %q, %q", header, gotT, gotS)
	}
}

func TestSpanTraceIdentity(t *testing.T) {
	rec := NewRecorder()
	ctx := WithRecorder(context.Background(), rec)
	ctx = WithTrace(ctx, "4bf92f3577b34da6a3ce929d0e0e4736", "")

	ctx, outer := Start(ctx, "outer")
	_, inner := Start(ctx, "inner")
	inner.End()
	outer.End()

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	in, out := spans[0], spans[1]
	if in.Name != "inner" || out.Name != "outer" {
		t.Fatalf("span order: %q, %q", in.Name, out.Name)
	}
	for _, sr := range spans {
		if sr.Trace != "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("span %q: trace = %q", sr.Name, sr.Trace)
		}
		if len(sr.Span) != 16 {
			t.Errorf("span %q: bad span ID %q", sr.Name, sr.Span)
		}
	}
	if out.Parent != "" {
		t.Errorf("outer parent = %q, want root", out.Parent)
	}
	if in.Parent != out.Span {
		t.Errorf("inner parent = %q, want outer's span ID %q", in.Parent, out.Span)
	}
}

func TestSpanWithoutTraceContext(t *testing.T) {
	rec := NewRecorder()
	_, sp := Start(WithRecorder(context.Background(), rec), "plain")
	sp.End()
	sr := rec.Spans()[0]
	if sr.Trace != "" || sr.Span != "" || sr.Parent != "" {
		t.Fatalf("untraced span carries identity: %+v", sr)
	}
}

// FuzzTraceparent asserts the parser never panics, never returns bad
// IDs on success, and that accepted inputs with version 00 re-format to
// an equally parseable header.
func FuzzTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-00f067aa0ba902b7-01")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-tail")
	f.Add("")
	f.Add("----")
	f.Add("00-abc-def-01")
	f.Add(strings.Repeat("-", 300))
	f.Fuzz(func(t *testing.T, in string) {
		tid, sid, err := ParseTraceparent(in)
		if err != nil {
			return
		}
		if len(tid) != 32 || !lowerHex(tid) || allZero(tid) {
			t.Fatalf("accepted bad trace-id %q from %q", tid, in)
		}
		if len(sid) != 16 || !lowerHex(sid) || allZero(sid) {
			t.Fatalf("accepted bad parent-id %q from %q", sid, in)
		}
		tid2, sid2, err := ParseTraceparent(FormatTraceparent(tid, sid))
		if err != nil || tid2 != tid || sid2 != sid {
			t.Fatalf("re-format of %q not stable: %v", in, err)
		}
	})
}
