package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNilSafe(t *testing.T) {
	ctx, sp := Start(context.Background(), "noop")
	if sp != nil {
		t.Fatalf("Start without recorder: got non-nil span")
	}
	if ctx == nil {
		t.Fatalf("Start returned nil context")
	}
	// All methods must be inert on nil spans.
	sp.Add("k", 1)
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span End: got %v, want 0", d)
	}
	if sp.Name() != "" {
		t.Fatalf("nil span Name: got %q", sp.Name())
	}
}

func TestSpanRecording(t *testing.T) {
	rec := NewRecorder()
	ctx := WithRecorder(context.Background(), rec)
	if FromContext(ctx) != rec {
		t.Fatalf("FromContext did not return the attached recorder")
	}
	_, sp := Start(ctx, "phase")
	sp.Add("cycles", 3)
	sp.Add("cycles", 2)
	sp.Add("steps", 10)
	sp.End()
	_, sp2 := Start(ctx, "phase")
	sp2.Add("cycles", 1)
	sp2.End()

	if n := rec.Count("phase"); n != 2 {
		t.Fatalf("Count: got %d, want 2", n)
	}
	if got := rec.Total("phase", "cycles"); got != 6 {
		t.Fatalf("Total(cycles): got %d, want 6", got)
	}
	if got := rec.Total("phase", "steps"); got != 10 {
		t.Fatalf("Total(steps): got %d, want 10", got)
	}
	if rec.Sum("phase") <= 0 {
		t.Fatalf("Sum: got %v, want > 0", rec.Sum("phase"))
	}
	if rec.Sum("other") != 0 || rec.Count("other") != 0 {
		t.Fatalf("unknown name should be zero")
	}
	spans := rec.Spans()
	if len(spans) != 2 || spans[0].Attr("cycles") != 5 || spans[0].Attr("missing") != 0 {
		t.Fatalf("Spans snapshot wrong: %+v", spans)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := rec.start("w")
				sp.Add("n", 1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	if n := rec.Count("w"); n != 800 {
		t.Fatalf("Count: got %d, want 800", n)
	}
	if tot := rec.Total("w", "n"); tot != 800 {
		t.Fatalf("Total: got %d, want 800", tot)
	}
}

func TestRecorderWriteTimeline(t *testing.T) {
	rec := NewRecorder()
	sp := rec.start("detect")
	sp.Add("cycles", 2)
	sp.End()
	rec.start("prune").End()

	tl := NewTimeline()
	tl.Process(1, "pipeline")
	rec.WriteTimeline(tl, 1)
	var sb strings.Builder
	if err := tl.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTimeline([]byte(sb.String())); err != nil {
		t.Fatalf("span timeline invalid: %v", err)
	}
	// Two thread_name metadata + two X events + process_name.
	if tl.Len() != 5 {
		t.Fatalf("event count: got %d, want 5", tl.Len())
	}
}

func TestBuildInfo(t *testing.T) {
	bi := ReadBuildInfo()
	if bi.GoVersion == "" {
		t.Fatalf("BuildInfo missing GoVersion: %+v", bi)
	}
	if bi.Version == "" {
		t.Fatalf("BuildInfo missing Version: %+v", bi)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{time.Millisecond, 10},        // bound(10) = 1.024ms ≥ 1ms > bound(9)
		{time.Second, 20},             // bound(20) ≈ 1.049s ≥ 1s > bound(19)
		{5 * time.Minute, NumBuckets}, // overflow
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v): got %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket bound must land in its own bucket (inclusive upper).
	for i := 0; i < NumBuckets; i++ {
		if got := bucketIndex(BucketBound(i)); got != i {
			t.Errorf("bound %v: got bucket %d, want %d", BucketBound(i), got, i)
		}
	}
}

func TestHistogramObserveAndMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	a.Observe(3 * time.Millisecond)
	b.Observe(time.Hour) // overflow bucket
	b.Observe(-time.Second)

	a.Merge(&b)
	if a.Count() != 4 {
		t.Fatalf("Count after merge: got %d, want 4", a.Count())
	}
	wantSum := time.Microsecond + 3*time.Millisecond + time.Hour
	if a.Sum() != wantSum {
		t.Fatalf("Sum after merge: got %v, want %v", a.Sum(), wantSum)
	}
	if a.Bucket(NumBuckets) != 1 {
		t.Fatalf("overflow bucket: got %d, want 1", a.Bucket(NumBuckets))
	}
	if a.Bucket(0) != 2 { // 1µs and the clamped negative
		t.Fatalf("bucket 0: got %d, want 2", a.Bucket(0))
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile: got %v, want 0", q)
	}
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(10 * time.Second)
	if q := h.Quantile(0.5); q != BucketBound(0) {
		t.Fatalf("p50: got %v, want %v", q, BucketBound(0))
	}
	if q := h.Quantile(1); q < 10*time.Second {
		t.Fatalf("p100: got %v, want ≥ 10s", q)
	}
}

func TestHistogramPrometheusOutput(t *testing.T) {
	var h Histogram
	h.Observe(time.Microsecond)
	h.Observe(time.Second)
	var sb strings.Builder
	h.WritePrometheus(&sb, "test_seconds", "A test histogram.", "")
	out := sb.String()
	if errs := PromLint(strings.NewReader(out)); errs != nil {
		t.Fatalf("own histogram output fails lint: %v\n%s", errs, out)
	}
	if !strings.Contains(out, `test_seconds_bucket{le="1e-06"} 1`) {
		t.Errorf("missing 1µs bucket:\n%s", out)
	}
	if !strings.Contains(out, `test_seconds_bucket{le="+Inf"} 2`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "test_seconds_count 2") {
		t.Errorf("missing count:\n%s", out)
	}

	// Labeled form.
	sb.Reset()
	h.WritePrometheus(&sb, "test_seconds", "A test histogram.", Label("phase", "detect"))
	if errs := PromLint(strings.NewReader(sb.String())); errs != nil {
		t.Fatalf("labeled histogram fails lint: %v\n%s", errs, sb.String())
	}
	if !strings.Contains(sb.String(), `test_seconds_bucket{phase="detect",le="+Inf"} 2`) {
		t.Errorf("labeled bucket wrong:\n%s", sb.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Label("path", `a"b\c`+"\n")
	want := `path="a\"b\\c\n"`
	if got != want {
		t.Fatalf("Label: got %s, want %s", got, want)
	}
}
