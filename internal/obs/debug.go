package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugMux returns the handler served on a binary's -debug-addr: the
// full net/http/pprof suite under /debug/pprof/. It is a dedicated mux
// (not http.DefaultServeMux) so profiling never leaks onto the service
// listener — profiles can stall for seconds and must not share a port
// with production traffic.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts DebugMux on addr in a background goroutine and
// returns the server for shutdown. An empty addr is a no-op returning
// nil, so callers can pass the flag value straight through.
func ServeDebug(addr string) *http.Server {
	if addr == "" {
		return nil
	}
	srv := &http.Server{Addr: addr, Handler: DebugMux()}
	go srv.ListenAndServe()
	return srv
}
