package obs

// W3C Trace Context (https://www.w3.org/TR/trace-context/) helpers.
// wolfd ingests the `traceparent` header on every work-creating request
// so one client-supplied trace ID correlates the job record, spans, log
// lines, flight-recorder events and the timeline export; these helpers
// are the parse/format/mint primitives shared by the server and the
// CLIs.
//
// A traceparent is `version-traceid-parentid-flags`, e.g.
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// with a 2-hex-digit version, a 32-hex-digit trace ID, a 16-hex-digit
// parent span ID and 2 hex digits of flags. Trace and span IDs must not
// be all-zero.

import (
	"fmt"
	"math/rand/v2"
	"strings"
)

// lowerHex reports whether s is entirely lowercase hex digits.
func lowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// allZero reports whether s is entirely '0' characters.
func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// ParseTraceparent validates a W3C traceparent header value and returns
// its trace-id and parent-id fields. Unknown future versions are
// accepted as long as the four leading fields parse (the spec requires
// treating them as version 00); version "ff" and all-zero IDs are
// invalid.
func ParseTraceparent(s string) (traceID, spanID string, err error) {
	parts := strings.Split(s, "-")
	if len(parts) < 4 {
		return "", "", fmt.Errorf("traceparent: want version-traceid-parentid-flags, got %d field(s)", len(parts))
	}
	version, tid, pid, flags := parts[0], parts[1], parts[2], parts[3]
	switch {
	case len(version) != 2 || !lowerHex(version):
		return "", "", fmt.Errorf("traceparent: bad version %q", version)
	case version == "ff":
		return "", "", fmt.Errorf("traceparent: version ff is forbidden")
	case version == "00" && len(parts) != 4:
		return "", "", fmt.Errorf("traceparent: version 00 allows exactly 4 fields, got %d", len(parts))
	case len(tid) != 32 || !lowerHex(tid):
		return "", "", fmt.Errorf("traceparent: bad trace-id %q", tid)
	case allZero(tid):
		return "", "", fmt.Errorf("traceparent: all-zero trace-id")
	case len(pid) != 16 || !lowerHex(pid):
		return "", "", fmt.Errorf("traceparent: bad parent-id %q", pid)
	case allZero(pid):
		return "", "", fmt.Errorf("traceparent: all-zero parent-id")
	case len(flags) != 2 || !lowerHex(flags):
		return "", "", fmt.Errorf("traceparent: bad flags %q", flags)
	}
	return tid, pid, nil
}

// FormatTraceparent renders a version-00 traceparent with the sampled
// flag set, for echoing a trace identity back to clients.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// NewTraceID mints a random 32-hex-digit trace ID (never all-zero).
// math/rand/v2 is deliberate: trace IDs are correlation handles, not
// secrets, and minting must stay cheap on the request path.
func NewTraceID() string {
	for {
		hi, lo := rand.Uint64(), rand.Uint64()
		if hi|lo != 0 {
			return fmt.Sprintf("%016x%016x", hi, lo)
		}
	}
}

// NewSpanID mints a random 16-hex-digit span ID (never all-zero).
func NewSpanID() string {
	for {
		if v := rand.Uint64(); v != 0 {
			return fmt.Sprintf("%016x", v)
		}
	}
}
