package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// PromLint is a strict validator for the Prometheus text exposition
// format (version 0.0.4), used by tests to check every line /metrics
// emits. It enforces more than scrape-ability:
//
//   - every sample belongs to a family introduced by a # HELP and a
//     # TYPE line, in that order, exactly once;
//   - metric and label names match the Prometheus grammar; label values
//     are correctly quoted and escaped;
//   - histogram families carry _bucket/_sum/_count series, bucket counts
//     are monotonically non-decreasing in le order, the last bucket is
//     le="+Inf", and its count equals _count;
//   - counter and histogram values are non-negative and finite;
//   - no duplicate series (same name and label set).
//
// It returns every violation found, or nil for a clean exposition.
func PromLint(r io.Reader) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type family struct {
		help, typ string
		helpLine  int
		samples   int
	}
	families := make(map[string]*family)
	order := []string{}
	type histSeries struct {
		buckets []bucketSample // in emission order
		sum     *float64
		count   *float64
		line    int
	}
	hists := make(map[string]*histSeries) // histogram family+labels → series
	seen := make(map[string]int)          // full series key → line

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				fail(n, "malformed HELP line %q", line)
				continue
			}
			if f, dup := families[name]; dup && f.help != "" {
				fail(n, "duplicate HELP for %s (first at line %d)", name, f.helpLine)
				continue
			}
			families[name] = &family{help: rest[len(name)+1:], helpLine: n}
			order = append(order, name)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !validMetricName(fields[0]) {
				fail(n, "malformed TYPE line %q", line)
				continue
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				fail(n, "unknown metric type %q for %s", typ, name)
			}
			f := families[name]
			if f == nil || f.help == "" {
				fail(n, "TYPE for %s without preceding HELP", name)
				f = &family{helpLine: n}
				families[name] = f
			}
			if f.typ != "" {
				fail(n, "duplicate TYPE for %s", name)
			}
			if f.samples > 0 {
				fail(n, "TYPE for %s after its samples", name)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			fail(n, "%v", err)
			continue
		}
		famName := name
		f := families[name]
		if f == nil {
			// Histogram/summary child series attach to the base family.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suffix)
				if base != name && families[base] != nil {
					famName, f = base, families[base]
					break
				}
			}
		}
		if f == nil {
			fail(n, "sample %s without HELP/TYPE", name)
			continue
		}
		if f.typ == "" {
			fail(n, "sample %s without TYPE", name)
			continue
		}
		f.samples++

		key := name + "{" + canonicalLabels(labels) + "}"
		if prev, dup := seen[key]; dup {
			fail(n, "duplicate series %s (first at line %d)", key, prev)
		}
		seen[key] = n

		switch f.typ {
		case "counter", "histogram":
			if value < 0 {
				fail(n, "%s type %s has negative value %g", name, f.typ, value)
			}
		}
		if f.typ == "histogram" {
			hk := famName + "{" + canonicalLabels(withoutLabel(labels, "le")) + "}"
			hs := hists[hk]
			if hs == nil {
				hs = &histSeries{line: n}
				hists[hk] = hs
			}
			switch {
			case name == famName+"_bucket":
				le, ok := labelValue(labels, "le")
				if !ok {
					fail(n, "histogram bucket %s without le label", name)
					break
				}
				bound, err := parseLe(le)
				if err != nil {
					fail(n, "bad le value %q: %v", le, err)
					break
				}
				hs.buckets = append(hs.buckets, bucketSample{bound: bound, inf: le == "+Inf", count: value, line: n})
			case name == famName+"_sum":
				hs.sum = &value
			case name == famName+"_count":
				hs.count = &value
			case name == famName:
				fail(n, "histogram family %s has a bare sample (want _bucket/_sum/_count)", name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("read: %w", err))
	}

	for name, f := range families {
		if f.typ != "" && f.samples == 0 {
			errs = append(errs, fmt.Errorf("family %s declared (line %d) but has no samples", name, f.helpLine))
		}
	}
	for hk, hs := range hists {
		if len(hs.buckets) == 0 {
			errs = append(errs, fmt.Errorf("histogram %s has no buckets", hk))
			continue
		}
		prev := bucketSample{bound: -1, count: -1}
		for i, b := range hs.buckets {
			if i > 0 {
				if !prev.inf && !b.inf && b.bound <= prev.bound {
					errs = append(errs, fmt.Errorf("line %d: histogram %s buckets out of le order", b.line, hk))
				}
				if b.count < prev.count {
					errs = append(errs, fmt.Errorf("line %d: histogram %s bucket counts not monotonic (%g after %g)", b.line, hk, b.count, prev.count))
				}
			}
			prev = b
		}
		last := hs.buckets[len(hs.buckets)-1]
		if !last.inf {
			errs = append(errs, fmt.Errorf("histogram %s: last bucket is not le=\"+Inf\"", hk))
		}
		if hs.count == nil {
			errs = append(errs, fmt.Errorf("histogram %s: missing _count", hk))
		} else if last.inf && *hs.count != last.count {
			errs = append(errs, fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", hk, *hs.count, last.count))
		}
		if hs.sum == nil {
			errs = append(errs, fmt.Errorf("histogram %s: missing _sum", hk))
		}
	}
	return errs
}

type bucketSample struct {
	bound float64
	inf   bool
	count float64
	line  int
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func validMetricName(s string) bool { return metricNameRe.MatchString(s) }

// labelPair is one parsed label.
type labelPair struct{ name, value string }

// parseSample parses `name{label="v",...} value` (timestamp not used by
// this repo and rejected to keep the exposition minimal).
func parseSample(line string) (name string, labels []labelPair, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			lname := rest[:eq]
			if !labelNameRe.MatchString(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			lval, remain, verr := parseQuoted(rest)
			if verr != nil {
				return "", nil, 0, verr
			}
			labels = append(labels, labelPair{lname, lval})
			rest = remain
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return "", nil, 0, fmt.Errorf("want exactly one value in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return name, labels, value, nil
}

// parseQuoted consumes a leading double-quoted, backslash-escaped string
// and returns it unescaped with the remainder of the input.
func parseQuoted(s string) (string, string, error) {
	if s == "" || s[0] != '"' {
		return "", "", fmt.Errorf("expected quoted string in %q", s)
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			switch s[i] {
			case '\\', '"':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c in %q", s[i], s)
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string in %q", s)
}

func labelValue(labels []labelPair, name string) (string, bool) {
	for _, l := range labels {
		if l.name == name {
			return l.value, true
		}
	}
	return "", false
}

func withoutLabel(labels []labelPair, name string) []labelPair {
	out := make([]labelPair, 0, len(labels))
	for _, l := range labels {
		if l.name != name {
			out = append(out, l)
		}
	}
	return out
}

// canonicalLabels renders labels sorted by name for series identity.
func canonicalLabels(labels []labelPair) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.name + "=" + strconv.Quote(l.value)
	}
	// insertion sort: label sets are tiny
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, ",")
}

// parseLe parses a bucket upper bound ("+Inf" or a float).
func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}
