package obs

import (
	"bytes"
	"strings"
	"testing"
)

func buildSample() *Timeline {
	tl := NewTimeline()
	tl.Process(1, "wolf")
	tl.Thread(1, 1, "main")
	tl.Thread(1, 2, "worker")
	tl.Begin(1, 1, "hold A", "lock", 0, map[string]any{"site": "m:1"})
	tl.Instant(1, 2, "acquire B", "lock", 1, "t", nil)
	tl.Counter(1, 2, "locks", 1, map[string]any{"held": 1})
	tl.End(1, 1, 3)
	tl.Complete(1, 2, "paused", "replay", 2, 2, nil)
	tl.Instant(1, 1, "DEADLOCK", "deadlock", 4, "g", nil)
	return tl
}

func TestTimelineRoundTrip(t *testing.T) {
	tl := buildSample()
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateTimeline(buf.Bytes()); err != nil {
		t.Fatalf("sample timeline invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		`"traceEvents"`,
		`"name":"process_name"`,
		`"name":"thread_name"`,
		`"ph":"B"`,
		`"ph":"E"`,
		`"ph":"X"`,
		`"s":"g"`,
		`"displayTimeUnit": "ms"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s:\n%s", want, out)
		}
	}
}

func TestTimelineDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildSample().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSample().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same events, different JSON:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestValidateTimelineRejects(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"not json", "nope", "not valid JSON"},
		{"missing array", `{}`, "missing traceEvents"},
		{"unknown phase", `{"traceEvents":[{"name":"x","ph":"Z","ts":0,"pid":1,"tid":1}]}`, "unknown phase"},
		{"unbalanced E", `{"traceEvents":[{"ph":"E","ts":0,"pid":1,"tid":1}]}`, "E without matching B"},
		{"unclosed B", `{"traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":1}]}`, "unclosed B"},
		{"negative ts", `{"traceEvents":[{"name":"x","ph":"i","ts":-1,"pid":1,"tid":1}]}`, "negative ts"},
		{"bad scope", `{"traceEvents":[{"name":"x","ph":"i","ts":0,"pid":1,"tid":1,"s":"z"}]}`, "bad instant scope"},
		{"nameless B", `{"traceEvents":[{"ph":"B","ts":0,"pid":1,"tid":1},{"ph":"E","ts":1,"pid":1,"tid":1}]}`, "B event without name"},
		{"empty counter", `{"traceEvents":[{"name":"c","ph":"C","ts":0,"pid":1,"tid":1}]}`, "counter without values"},
		{"bad metadata", `{"traceEvents":[{"name":"bogus","ph":"M","pid":1,"tid":1}]}`, "unknown metadata"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateTimeline([]byte(c.in))
			if err == nil {
				t.Fatalf("validated, want error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %v does not mention %q", err, c.wantSub)
			}
		})
	}
}
