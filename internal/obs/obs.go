// Package obs is the observability substrate shared by every WOLF
// layer: lightweight pipeline spans with attribute counters, log-bucketed
// latency histograms rendered in Prometheus exposition format, Chrome
// trace-event timelines loadable in Perfetto, build-info reporting, and
// an opt-in pprof debug mux.
//
// The package depends only on the standard library so any layer — the
// sim scheduler, the analysis pipeline, the wolfd service, the CLIs —
// can import it without cycles or third-party baggage.
//
// Spans. A span measures one phase of work:
//
//	ctx, sp := obs.Start(ctx, "detect")
//	... work ...
//	sp.Add("cycles", int64(len(cycles)))
//	sp.End()
//
// Spans are collected by the *Recorder carried in the context; when no
// recorder is attached Start returns a nil span whose methods are no-ops,
// so instrumented code pays one context lookup and nothing else. The
// recorder aggregates by name (Sum, Count, Total), which is how
// core.Timings is derived as a view over spans.
package obs

import (
	"context"
	"sync"
	"time"
)

// Attr is one named span attribute counter.
type Attr struct {
	// Key names the counter (for example "cycles", "steps").
	Key string
	// Value is the accumulated count.
	Value int64
}

// Span is one in-flight measurement. A nil *Span is valid and inert, so
// callers never need to branch on whether recording is enabled.
type Span struct {
	rec    *Recorder
	name   string
	start  time.Time
	attrs  []Attr
	trace  string
	id     string
	parent string
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Add accumulates delta into the named attribute counter.
func (s *Span) Add(key string, delta int64) {
	if s == nil {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value += delta
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: delta})
}

// End finishes the span, hands it to the recorder, and returns its
// duration (zero for a nil span).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.rec.record(SpanRecord{Name: s.name, Start: s.start, Dur: d, Attrs: s.attrs,
		Trace: s.trace, Span: s.id, Parent: s.parent})
	return d
}

// SpanRecord is one finished span.
type SpanRecord struct {
	// Name is the span name.
	Name string
	// Start is the wall-clock start time.
	Start time.Time
	// Dur is the measured duration.
	Dur time.Duration
	// Attrs are the attribute counters accumulated before End.
	Attrs []Attr
	// Trace is the W3C trace ID of the request the span belongs to;
	// empty when the context carried no trace identity.
	Trace string
	// Span is the span's own ID and Parent its parent span's ID, giving
	// causal links within one trace ("" at the trace root).
	Span   string
	Parent string
}

// Attr returns the value of the named attribute counter (zero when
// absent).
func (r SpanRecord) Attr(key string) int64 {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return 0
}

// Recorder collects finished spans. It is safe for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// NewRecorder returns an empty span recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) record(sr SpanRecord) {
	r.mu.Lock()
	r.spans = append(r.spans, sr)
	r.mu.Unlock()
}

// Observe records a pre-measured span: work that was timed externally
// (or reconstructed) rather than bracketed by Start/End. Start is
// back-dated so timeline exports order it correctly.
func (r *Recorder) Observe(name string, dur time.Duration, attrs ...Attr) {
	r.record(SpanRecord{Name: name, Start: time.Now().Add(-dur), Dur: dur, Attrs: attrs})
}

// Mark returns a position in the span stream; SumFrom and CountFrom
// aggregate only spans recorded after it. Callers sharing one recorder
// across several pipeline runs use marks to scope per-run views (this
// is how core.Timings stays correct when a CLI analyzes twice under a
// single recorder).
func (r *Recorder) Mark() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// SumFrom is Sum restricted to spans recorded after mark.
func (r *Recorder) SumFrom(mark int, name string) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var d time.Duration
	for _, sr := range r.spans[min(mark, len(r.spans)):] {
		if sr.Name == name {
			d += sr.Dur
		}
	}
	return d
}

// Spans snapshots every finished span in completion order.
func (r *Recorder) Spans() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanRecord(nil), r.spans...)
}

// Sum returns the total duration of all finished spans with the given
// name.
func (r *Recorder) Sum(name string) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var d time.Duration
	for _, sr := range r.spans {
		if sr.Name == name {
			d += sr.Dur
		}
	}
	return d
}

// Count returns the number of finished spans with the given name.
func (r *Recorder) Count(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, sr := range r.spans {
		if sr.Name == name {
			n++
		}
	}
	return n
}

// Total sums the named attribute counter across all finished spans with
// the given span name.
func (r *Recorder) Total(name, key string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, sr := range r.spans {
		if sr.Name == name {
			total += sr.Attr(key)
		}
	}
	return total
}

// start opens a span on this recorder directly (no context needed).
func (r *Recorder) start(name string) *Span {
	return &Span{rec: r, name: name, start: time.Now()}
}

// ctxKey is the context key carrying the recorder.
type ctxKey struct{}

// traceKey is the context key carrying the trace identity.
type traceKey struct{}

// traceCtx is the propagated causal identity: the request's trace ID
// and the ID of the innermost open span (the parent of whatever starts
// next).
type traceCtx struct{ trace, span string }

// WithTrace returns a context carrying the given W3C trace ID (and,
// optionally, a parent span ID). Spans started under it are stamped
// with the trace ID and linked parent→child, so one client-supplied
// traceparent correlates every phase of a request across layers.
func WithTrace(ctx context.Context, traceID, parentSpan string) context.Context {
	return context.WithValue(ctx, traceKey{}, traceCtx{trace: traceID, span: parentSpan})
}

// TraceFrom returns the trace ID and current parent span ID carried by
// ctx ("" when none).
func TraceFrom(ctx context.Context) (traceID, parentSpan string) {
	tc, _ := ctx.Value(traceKey{}).(traceCtx)
	return tc.trace, tc.span
}

// WithRecorder returns a context carrying rec; spans started under it
// are collected there.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	return context.WithValue(ctx, ctxKey{}, rec)
}

// FromContext returns the recorder carried by ctx, or nil.
func FromContext(ctx context.Context) *Recorder {
	rec, _ := ctx.Value(ctxKey{}).(*Recorder)
	return rec
}

// Start opens a span named name on the context's recorder. When the
// context carries no recorder the returned span is nil (inert) and the
// input context is returned unchanged, which keeps the disabled path
// allocation-free. When the context also carries a trace identity
// (WithTrace), the span is stamped with the trace ID, minted a span ID,
// linked to its parent, and the returned context carries it as the new
// parent — giving causally linked spans end to end.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	rec := FromContext(ctx)
	if rec == nil {
		return ctx, nil
	}
	sp := rec.start(name)
	if tc, ok := ctx.Value(traceKey{}).(traceCtx); ok && tc.trace != "" {
		sp.trace, sp.parent = tc.trace, tc.span
		sp.id = NewSpanID()
		ctx = context.WithValue(ctx, traceKey{}, traceCtx{trace: tc.trace, span: sp.id})
	}
	return ctx, sp
}

// WriteTimeline appends every finished span as a complete ("X") Chrome
// trace event on the given timeline, one track per distinct span name
// under the process pid. Timestamps are real microseconds relative to
// the earliest span start, so the pipeline phases line up visually in
// Perfetto.
func (r *Recorder) WriteTimeline(tl *Timeline, pid int64) {
	spans := r.Spans()
	if len(spans) == 0 {
		return
	}
	epoch := spans[0].Start
	for _, sr := range spans {
		if sr.Start.Before(epoch) {
			epoch = sr.Start
		}
	}
	tids := make(map[string]int64)
	for _, sr := range spans {
		tid, ok := tids[sr.Name]
		if !ok {
			tid = int64(len(tids)) + 1
			tids[sr.Name] = tid
			tl.Thread(pid, tid, sr.Name)
		}
		args := make(map[string]any, len(sr.Attrs))
		for _, a := range sr.Attrs {
			args[a.Key] = a.Value
		}
		tl.Complete(pid, tid, sr.Name, "span", sr.Start.Sub(epoch).Microseconds(), sr.Dur.Microseconds(), args)
	}
}
