package obs

// CounterSet is a concurrency-safe set of named monotonic counters for
// low-cardinality labels discovered at runtime — replay divergence
// reasons, fallback confirmations, fault kinds. Spans aggregate
// durations by name; CounterSet fills the gap for pure event counts
// that several goroutines (the wolfd worker pool) bump concurrently and
// a metrics endpoint renders.

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// CounterSet holds named monotonic counters. The zero value is not
// usable; call NewCounterSet.
type CounterSet struct {
	mu sync.Mutex
	v  map[string]int64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{v: make(map[string]int64)}
}

// Add bumps the named counter by delta.
func (c *CounterSet) Add(name string, delta int64) {
	c.mu.Lock()
	c.v[name] += delta
	c.mu.Unlock()
}

// Get returns the named counter's value (zero when absent).
func (c *CounterSet) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v[name]
}

// Snapshot copies the current counters.
func (c *CounterSet) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.v))
	for k, v := range c.v {
		out[k] = v
	}
	return out
}

// WritePrometheus renders every counter in exposition format as
// `metric{label="<name>"} value`, sorted by name for stable scrapes.
// metric is the family name and label the label key, e.g.
// wolfd_replay_divergence_total{reason="max-steps"} 3.
func (c *CounterSet) WritePrometheus(w io.Writer, metric, label string) {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# TYPE %s counter\n", metric)
	for _, name := range names {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", metric, label, name, snap[name])
	}
}
