package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestCounterSetBasics covers Add/Get/Snapshot.
func TestCounterSetBasics(t *testing.T) {
	c := NewCounterSet()
	c.Add("starved", 2)
	c.Add("max-steps", 1)
	c.Add("starved", 1)
	if c.Get("starved") != 3 || c.Get("max-steps") != 1 || c.Get("absent") != 0 {
		t.Fatalf("counters = %v", c.Snapshot())
	}
	snap := c.Snapshot()
	snap["starved"] = 99
	if c.Get("starved") != 3 {
		t.Fatal("Snapshot aliases internal state")
	}
}

// TestCounterSetConcurrent: concurrent Adds are not lost.
func TestCounterSetConcurrent(t *testing.T) {
	c := NewCounterSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if c.Get("n") != 8000 {
		t.Fatalf("n = %d, want 8000", c.Get("n"))
	}
}

// TestCounterSetPrometheus pins the exposition rendering and its stable
// order.
func TestCounterSetPrometheus(t *testing.T) {
	c := NewCounterSet()
	c.Add("wrong-deadlock", 1)
	c.Add("max-steps", 2)
	var sb strings.Builder
	c.WritePrometheus(&sb, "wolfd_replay_divergence_total", "reason")
	want := "# TYPE wolfd_replay_divergence_total counter\n" +
		"wolfd_replay_divergence_total{reason=\"max-steps\"} 2\n" +
		"wolfd_replay_divergence_total{reason=\"wrong-deadlock\"} 1\n"
	if sb.String() != want {
		t.Fatalf("rendered:\n%s\nwant:\n%s", sb.String(), want)
	}
}
