package store

// The fingerprint query layer. Defects() returns the whole corpus
// sorted one way — fine for a demo, useless at millions of records and
// the reason GET /v1/defects was unbounded. Query filters by the
// dimensions operators actually slice on (defect class, workload,
// confirmation method, first/last-seen window, occurrence floor),
// paginates, and sorts server-side.
//
// The index is a set of in-memory postings: for each equality dimension
// a map from value to the fingerprint set carrying it, plus one slice
// of records ordered by last-seen for time-window narrowing. Postings
// are rebuilt from the defect map on Open (warm or cold — they are
// derived state, never persisted) and maintained incrementally on every
// record update. Query picks the smallest applicable posting as the
// candidate set, so an equality-filtered query touches only matching
// records, not the corpus.

import (
	"sort"
	"strings"
	"time"

	"wolf/internal/core"
)

// QueryOptions selects and orders defect records. Zero values mean
// "don't filter on this dimension".
type QueryOptions struct {
	Class          string    // "candidate" or "confirmed"
	Workload       string    // workload name recorded at ingest
	Method         string    // confirmation method ("replay", ...)
	Since          time.Time // LastSeen >= Since
	Until          time.Time // FirstSeen <= Until
	MinOccurrences int       // Occurrences >= MinOccurrences

	// Sort is one of "occurrences" (default: most-seen first),
	// "last_seen" (newest first), "first_seen" (oldest first) or "rank"
	// (highest corpus rank first). Ties break on fingerprint so pages
	// are stable.
	Sort string

	// Limit caps the returned page; 0 means no cap. Offset skips that
	// many records after sorting.
	Limit  int
	Offset int
}

// QueryResult is one page of defect records plus the total number of
// records matching the filters, so callers can paginate.
type QueryResult struct {
	Defects []DefectRecord
	Total   int
}

// validSorts gates QueryOptions.Sort; the server maps anything else to
// a 400 before calling Query.
var validSorts = map[string]bool{
	"": true, "occurrences": true, "last_seen": true, "first_seen": true, "rank": true,
}

// ValidSort reports whether name is an accepted Query sort order.
func ValidSort(name string) bool { return validSorts[name] }

// postings is the in-memory inverted index over defect records.
type postings struct {
	class    map[string]map[string]bool // class value -> fingerprint set
	workload map[string]map[string]bool
	method   map[string]map[string]bool

	// byLastSeen orders fingerprints by LastSeen ascending for
	// time-window candidate narrowing. Appends mark it unsorted; it is
	// re-sorted lazily on the next windowed query.
	byLastSeen []string
	sorted     bool
}

func newPostings() *postings {
	return &postings{
		class:    make(map[string]map[string]bool),
		workload: make(map[string]map[string]bool),
		method:   make(map[string]map[string]bool),
	}
}

func addPosting(m map[string]map[string]bool, key, fp string) {
	if key == "" {
		return
	}
	set, ok := m[key]
	if !ok {
		set = make(map[string]bool)
		m[key] = set
	}
	set[fp] = true
}

func dropPosting(m map[string]map[string]bool, key, fp string) {
	if set, ok := m[key]; ok {
		delete(set, fp)
		if len(set) == 0 {
			delete(m, key)
		}
	}
}

// indexDefectLocked (re-)registers a record in the postings after any
// mutation. Dimension values only ever accrete on a record (class moves
// candidate->confirmed, workloads append), so stale keys are dropped by
// diffing against the record's current values. Caller holds s.mu.
func (s *Store) indexDefectLocked(rec *DefectRecord, isNew bool) {
	fp := rec.Fingerprint
	if isNew {
		s.postings.byLastSeen = append(s.postings.byLastSeen, fp)
		s.postings.sorted = false
	} else {
		// LastSeen only moves forward; order may have changed.
		s.postings.sorted = false
		for key, set := range s.postings.class {
			if key != rec.Class && set[fp] {
				dropPosting(s.postings.class, key, fp)
			}
		}
		for key, set := range s.postings.method {
			if key != rec.Method && set[fp] {
				dropPosting(s.postings.method, key, fp)
			}
		}
	}
	addPosting(s.postings.class, rec.Class, fp)
	addPosting(s.postings.method, rec.Method, fp)
	for _, w := range rec.Workloads {
		addPosting(s.postings.workload, w, fp)
	}
}

// rebuildPostingsLocked derives the postings from the defect map; run
// once at Open. Caller holds s.mu.
func (s *Store) rebuildPostingsLocked() {
	s.postings = newPostings()
	for _, rec := range s.defects {
		s.indexDefectLocked(rec, true)
	}
}

// candidatesLocked picks the cheapest candidate fingerprint set for the
// given filters: the smallest equality posting when one applies, else a
// binary-searched slice of the last-seen ordering for Since windows,
// else everything. Caller holds s.mu.
func (s *Store) candidatesLocked(opts QueryOptions) []string {
	var best map[string]bool
	consider := func(m map[string]map[string]bool, key string) {
		if key == "" {
			return
		}
		set := m[key] // nil when no record carries the value: empty result
		if best == nil || len(set) < len(best) {
			if set == nil {
				set = map[string]bool{}
			}
			best = set
		}
	}
	consider(s.postings.class, opts.Class)
	consider(s.postings.workload, opts.Workload)
	consider(s.postings.method, opts.Method)
	if best != nil {
		out := make([]string, 0, len(best))
		for fp := range best {
			out = append(out, fp)
		}
		return out
	}
	if !opts.Since.IsZero() {
		if !s.postings.sorted {
			sort.Slice(s.postings.byLastSeen, func(i, j int) bool {
				a, b := s.defects[s.postings.byLastSeen[i]], s.defects[s.postings.byLastSeen[j]]
				return a.LastSeen.Before(b.LastSeen)
			})
			s.postings.sorted = true
		}
		ordered := s.postings.byLastSeen
		lo := sort.Search(len(ordered), func(i int) bool {
			return !s.defects[ordered[i]].LastSeen.Before(opts.Since)
		})
		out := make([]string, len(ordered)-lo)
		copy(out, ordered[lo:])
		return out
	}
	out := make([]string, 0, len(s.defects))
	for fp := range s.defects {
		out = append(out, fp)
	}
	return out
}

// Query returns the page of defect records matching opts plus the total
// match count. Returned records are clones with the corpus Rank filled
// in; mutating them does not touch the store.
func (s *Store) Query(opts QueryOptions) QueryResult {
	now := time.Now()
	s.mu.Lock()
	s.ensureDefectsLocked()
	matched := make([]*DefectRecord, 0, 16)
	for _, fp := range s.candidatesLocked(opts) {
		rec := s.defects[fp]
		if rec == nil || !matchDefect(rec, opts) {
			continue
		}
		matched = append(matched, rec)
	}
	// Clone inside the lock (records are mutated under s.mu), sort the
	// clones outside it.
	page := make([]DefectRecord, len(matched))
	for i, rec := range matched {
		page[i] = rec.clone()
	}
	s.mu.Unlock()

	for i := range page {
		page[i].Rank = core.ScoreDefect(page[i].Class == ClassConfirmed, page[i].Occurrences, page[i].LastSeen, now)
	}
	sortDefects(page, opts.Sort)
	total := len(page)
	if opts.Offset > 0 {
		if opts.Offset >= len(page) {
			page = nil
		} else {
			page = page[opts.Offset:]
		}
	}
	if opts.Limit > 0 && len(page) > opts.Limit {
		page = page[:opts.Limit]
	}
	return QueryResult{Defects: page, Total: total}
}

func matchDefect(rec *DefectRecord, opts QueryOptions) bool {
	if opts.Class != "" && rec.Class != opts.Class {
		return false
	}
	if opts.Method != "" && rec.Method != opts.Method {
		return false
	}
	if opts.Workload != "" && !containsString(rec.Workloads, opts.Workload) {
		return false
	}
	if !opts.Since.IsZero() && rec.LastSeen.Before(opts.Since) {
		return false
	}
	if !opts.Until.IsZero() && rec.FirstSeen.After(opts.Until) {
		return false
	}
	if opts.MinOccurrences > 0 && rec.Occurrences < opts.MinOccurrences {
		return false
	}
	return true
}

func sortDefects(recs []DefectRecord, order string) {
	less := func(i, j int) bool { // default: occurrences desc
		if recs[i].Occurrences != recs[j].Occurrences {
			return recs[i].Occurrences > recs[j].Occurrences
		}
		return recs[i].Fingerprint < recs[j].Fingerprint
	}
	switch order {
	case "last_seen":
		less = func(i, j int) bool {
			if !recs[i].LastSeen.Equal(recs[j].LastSeen) {
				return recs[i].LastSeen.After(recs[j].LastSeen)
			}
			return recs[i].Fingerprint < recs[j].Fingerprint
		}
	case "first_seen":
		less = func(i, j int) bool {
			if !recs[i].FirstSeen.Equal(recs[j].FirstSeen) {
				return recs[i].FirstSeen.Before(recs[j].FirstSeen)
			}
			return recs[i].Fingerprint < recs[j].Fingerprint
		}
	case "rank":
		less = func(i, j int) bool {
			if recs[i].Rank != recs[j].Rank {
				return recs[i].Rank > recs[j].Rank
			}
			return recs[i].Fingerprint < recs[j].Fingerprint
		}
	}
	sort.Slice(recs, less)
}

// workloadFromSource extracts the workload name from a job source tag
// ("workload:NAME" or bare NAME); empty sources index nothing.
func workloadFromSource(source string) string {
	if w, ok := strings.CutPrefix(source, "workload:"); ok {
		return w
	}
	return source
}
