package store

// Trace garbage collection. Traces are the bulky half of the corpus
// (defect records are small JSON); at millions of recordings the blob
// directory grows without bound unless something prunes it. GC deletes
// trace blobs under two policies — a total-size budget and a per-blob
// age ceiling — with one invariant that dominates both: a trace listed
// in any defect record's Traces set is NEVER deleted, whatever its age
// or the budget pressure, because those blobs are the reproduction
// evidence the paper's replay oracle depends on.

import (
	"os"
	"sort"
	"time"
)

// GCPolicy bounds the trace corpus. Zero fields disable that bound.
type GCPolicy struct {
	// MaxBytes is the total trace-blob budget; when exceeded, unreferenced
	// blobs are deleted oldest-first until the corpus fits.
	MaxBytes int64
	// TTL deletes unreferenced blobs older than this outright.
	TTL time.Duration
}

// GCStats reports one collection pass.
type GCStats struct {
	Deleted        int   // blobs removed
	BytesReclaimed int64 // their summed sizes
	Kept           int   // blobs retained because a defect references them
}

// GC runs one collection pass under policy. It never deletes a trace
// referenced by any defect record: the referenced set is computed under
// the same lock that every defect mutation takes, so a trace recorded as
// confirming evidence is protected before GC can observe it unreferenced.
func (s *Store) GC(policy GCPolicy, now time.Time) GCStats {
	var stats GCStats
	if policy.MaxBytes <= 0 && policy.TTL <= 0 {
		return stats
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureDefectsLocked()

	referenced := make(map[string]bool)
	for _, rec := range s.defects {
		for _, h := range rec.Traces {
			referenced[h] = true
		}
	}

	var total int64
	candidates := make([]TraceInfo, 0, s.traces.len())
	s.traces.each(func(info TraceInfo) {
		total += info.Bytes
		if referenced[info.Hash] {
			stats.Kept++
			return
		}
		candidates = append(candidates, info)
	})
	sort.Slice(candidates, func(i, j int) bool {
		if !candidates[i].ModTime.Equal(candidates[j].ModTime) {
			return candidates[i].ModTime.Before(candidates[j].ModTime)
		}
		return candidates[i].Hash < candidates[j].Hash
	})

	cutoff := time.Time{}
	if policy.TTL > 0 {
		cutoff = now.Add(-policy.TTL)
	}
	for _, info := range candidates {
		expired := !cutoff.IsZero() && info.ModTime.Before(cutoff)
		overBudget := policy.MaxBytes > 0 && total > policy.MaxBytes
		if !expired && !overBudget {
			// Oldest-first order: no later candidate is expired either, and
			// the budget only loosens from here.
			break
		}
		if err := os.Remove(s.tracePath(info.Hash, info.flat)); err != nil && !os.IsNotExist(err) {
			continue
		}
		s.markDirtyLocked()
		s.traces.del(info.Hash)
		total -= info.Bytes
		stats.Deleted++
		stats.BytesReclaimed += info.Bytes
		s.traceDeletes.Add(1)
	}
	s.gcRuns.Add(1)
	s.gcBytesReclaimed.Add(stats.BytesReclaimed)
	return stats
}
