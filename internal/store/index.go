package store

// The persistent index snapshot. Rebuilding the corpus index by
// scanning every shard on Open is O(corpus) — fine at thousands of
// traces, a startup-path collapse at millions. Instead the in-memory
// index (trace infos plus full defect records) is serialized to
// index.bin, written with the same tmp+fsync+rename discipline as every
// other corpus file, and a warm Open deserializes it in O(index) with
// no directory walk at all.
//
// Version 2 lays the trace table out as 256 per-shard sections of
// fixed-width entries behind a shard table of (count, bytes) pairs.
// A warm Open therefore only reads the file, checks the checksum and
// slices the sections — the per-shard maps materialize lazily on first
// access (see traceindex.go), which is what keeps a 100k-trace open in
// single-digit milliseconds. Shards untouched since load are written
// back verbatim on the next snapshot, so a read-mostly process never
// decodes most of the corpus at all.
//
// Correctness does not depend on the snapshot: it is a cache of
// filesystem state, validated on load and discarded on any doubt, with
// the parallel shard scan as the always-correct fallback. Two guards
// decide whether a snapshot can be trusted:
//
//   - A generation stamp: the byte length of the jobs journal at the
//     moment the snapshot was written. Every wolfd mutation batch also
//     appends a job record, so a journal that grew (or was compacted)
//     since the snapshot proves the snapshot is stale.
//   - A dirty marker (index.dirty): created before the first mutation
//     after a snapshot, removed only after the next snapshot lands. A
//     crash mid-anything leaves the marker behind, forcing a cold scan.
//     This covers direct store mutations (PutTrace, GC, migration) that
//     do not touch the journal.
//
// The payload itself carries a magic, a version and a trailing CRC-32C,
// so a torn or corrupt snapshot (crash during its own atomicWrite never
// produces one, but disks do) fails closed into a rescan. The checksum
// guards against accidental corruption, not tampering — the snapshot is
// a local cache with the same trust level as the files it indexes.

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// indexMagic and indexVersion head every index.bin.
var indexMagic = []byte("WIDX")

const indexVersion = 2

// crcTable is the Castagnoli polynomial — hardware-accelerated on
// every platform wolfd targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errBadIndex is the internal "snapshot cannot be trusted" signal; the
// caller falls back to a scan, never to the user.
var errBadIndex = errors.New("store: unusable index snapshot")

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.bin") }
func (s *Store) dirtyPath() string { return filepath.Join(s.dir, "index.dirty") }
func (s *Store) jobsPath() string  { return filepath.Join(s.dir, "jobs.jsonl") }

// journalSize is the jobs journal's current on-disk byte length — the
// snapshot generation stamp. A missing journal stamps as 0.
func (s *Store) journalSize() int64 {
	fi, err := os.Stat(s.jobsPath())
	if err != nil {
		return 0
	}
	return fi.Size()
}

// markDirtyLocked drops the dirty marker before the first mutation
// following a snapshot, invalidating that snapshot for any Open that
// happens before the next one is written. One syscall per
// snapshot-to-snapshot window; every later mutation sees s.dirty and
// returns immediately. Caller holds s.mu.
func (s *Store) markDirtyLocked() {
	if s.dirty {
		return
	}
	// Failing to drop the marker (full disk) is tolerable: the flag still
	// flips in memory, so this process keeps snapshotting correctly; only
	// a crash in exactly this window could leave a stale snapshot, and
	// the journal stamp still catches every job-creating mutation.
	if f, err := os.Create(s.dirtyPath()); err == nil {
		f.Close()
		syncDir(s.dir)
	}
	s.dirty = true
}

// saveIndexLocked atomically writes the snapshot and, when no blob
// write is in flight, clears the dirty marker. In-flight writes (the
// put path releases s.mu around disk I/O) leave the marker in place —
// the snapshot is still written, but the next Open rescans rather than
// trusting state that raced a writer. Caller holds s.mu.
func (s *Store) saveIndexLocked() error {
	data := s.encodeIndexLocked()
	if err := atomicWrite(s.indexPath(), data); err != nil {
		return err
	}
	if s.writing == 0 {
		os.Remove(s.dirtyPath())
		syncDir(s.dir)
		s.dirty = false
	}
	return nil
}

// SaveIndex persists the current index snapshot. Close calls it; a
// long-running server may also call it periodically so a crash close to
// the end of a large ingest does not force a full rescan.
func (s *Store) SaveIndex() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveIndexLocked()
}

// encodeIndexLocked serializes the index. Caller holds s.mu.
//
// Layout: magic, version byte, journal stamp varint; defect block
// (uvarint count, then per record: flags byte, uvarint length, JSON);
// shard table (256 x uvarint count, uvarint bytes); the 256 trace
// sections of fixed-width entries; CRC-32C trailer.
func (s *Store) encodeIndexLocked() []byte {
	var buf bytes.Buffer
	buf.Write(indexMagic)
	buf.WriteByte(indexVersion)
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	putVarint := func(v int64) { buf.Write(tmp[:binary.PutVarint(tmp[:], v)]) }

	putVarint(s.journalSize())

	if s.rawDefects != nil {
		// Never materialized since load: splice the block back verbatim.
		putUvarint(uint64(s.rawDefectN))
		buf.Write(s.rawDefects)
	} else {
		putUvarint(uint64(len(s.defects)))
		for fp, rec := range s.defects {
			data, err := json.Marshal(rec)
			if err != nil {
				continue
			}
			var flags byte
			if s.flatDefects[fp] {
				flags |= 1
			}
			buf.WriteByte(flags)
			putUvarint(uint64(len(data)))
			buf.Write(data)
		}
	}

	// Encode mutated shards; pass raw sections through verbatim.
	sections := make([][]byte, traceShards)
	for i := range s.traces.shards {
		ts := &s.traces.shards[i]
		if ts.m == nil {
			sections[i] = ts.raw
			putUvarint(uint64(ts.rawN))
			putUvarint(uint64(ts.rawBytes))
			continue
		}
		sec := make([]byte, 0, len(ts.m)*traceEntrySize)
		var shardBytes int64
		for _, info := range ts.m {
			raw, err := hex.DecodeString(info.Hash)
			if err != nil || len(raw) != 32 {
				continue // unreachable: validHash gates every insert
			}
			sec = encodeEntry(sec, raw, info)
			shardBytes += info.Bytes
		}
		sections[i] = sec
		putUvarint(uint64(len(sec) / traceEntrySize))
		putUvarint(uint64(shardBytes))
	}
	for _, sec := range sections {
		buf.Write(sec)
	}

	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.Checksum(buf.Bytes(), crcTable))
	buf.Write(sum[:])
	return buf.Bytes()
}

// loadIndex attempts a warm Open from the snapshot, populating the
// defect map eagerly and the trace shards lazily. It reports false —
// leaving the store empty for the cold scan — when there is no
// snapshot, the dirty marker exists, the generation stamp disagrees
// with the journal, or the payload fails validation. Called from Open
// before the job log is opened (journal compaction would move the
// stamp).
func (s *Store) loadIndex() bool {
	if _, err := os.Stat(s.dirtyPath()); err == nil {
		s.dirty = true
		return false
	}
	data, err := os.ReadFile(s.indexPath())
	if err != nil {
		return false
	}
	if err := s.decodeIndex(data); err != nil {
		s.traces.reset()
		s.defects = make(map[string]*DefectRecord)
		s.flatDefects = make(map[string]bool)
		s.rawDefects, s.rawDefectN = nil, 0
		return false
	}
	return true
}

// ensureDefectsLocked materializes the defect records from a lazily
// loaded snapshot block: JSON-parse every record, then rebuild the
// query postings. A no-op after the first call (and always after a cold
// scan, which builds the map directly). Caller holds s.mu.
func (s *Store) ensureDefectsLocked() {
	if s.rawDefects == nil {
		return
	}
	raw := s.rawDefects
	s.rawDefects, s.rawDefectN = nil, 0
	r := bytes.NewReader(raw)
	for r.Len() > 0 {
		flags, err := r.ReadByte()
		if err != nil {
			break
		}
		n, err := binary.ReadUvarint(r)
		if err != nil || n > uint64(r.Len()) {
			break
		}
		off := len(raw) - r.Len()
		r.Seek(int64(n), 1)
		rec := new(DefectRecord)
		// The block is checksummed and encoder-produced; a record that
		// still fails to parse is dropped rather than fatal.
		if err := json.Unmarshal(raw[off:off+int(n)], rec); err != nil || !validHash(rec.Fingerprint) {
			continue
		}
		s.defects[rec.Fingerprint] = rec
		if flags&1 != 0 {
			s.flatDefects[rec.Fingerprint] = true
		}
	}
	s.rebuildPostingsLocked()
}

// decodeIndex parses and validates one snapshot payload. The trace
// sections are only sliced, not decoded — they stay referenced from the
// read buffer until a shard materializes.
func (s *Store) decodeIndex(data []byte) error {
	if len(data) < len(indexMagic)+1+4 {
		return errBadIndex
	}
	payload, sum := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(sum) {
		return errBadIndex
	}
	if !bytes.Equal(payload[:len(indexMagic)], indexMagic) || payload[len(indexMagic)] != indexVersion {
		return errBadIndex
	}
	r := bytes.NewReader(payload[len(indexMagic)+1:])

	stamp, err := binary.ReadVarint(r)
	if err != nil {
		return errBadIndex
	}
	if stamp != s.journalSize() {
		return fmt.Errorf("%w: journal moved", errBadIndex)
	}

	// The defect block is only frame-walked here — each record's JSON is
	// parsed on first access (ensureDefectsLocked), keeping the warm open
	// free of per-record decoding.
	nDefects, err := binary.ReadUvarint(r)
	if err != nil || nDefects > uint64(r.Len()) {
		return errBadIndex
	}
	defStart := len(payload) - r.Len()
	for i := uint64(0); i < nDefects; i++ {
		if _, err := r.ReadByte(); err != nil { // flags
			return errBadIndex
		}
		n, err := binary.ReadUvarint(r)
		if err != nil || n > uint64(r.Len()) {
			return errBadIndex
		}
		r.Seek(int64(n), 1)
	}
	s.rawDefects = payload[defStart : len(payload)-r.Len()]
	s.rawDefectN = int(nDefects)

	counts := make([]int, traceShards)
	for i := 0; i < traceShards; i++ {
		n, err := binary.ReadUvarint(r)
		if err != nil || n > uint64(r.Len())/traceEntrySize {
			return errBadIndex
		}
		b, err := binary.ReadUvarint(r)
		if err != nil {
			return errBadIndex
		}
		counts[i] = int(n)
		s.traces.shards[i].rawN = int(n)
		s.traces.shards[i].rawBytes = int64(b)
		s.traces.n += int(n)
		s.traces.bytes += int64(b)
	}
	off := len(payload) - r.Len()
	for i, n := range counts {
		end := off + n*traceEntrySize
		if end > len(payload) {
			return errBadIndex
		}
		s.traces.shards[i].raw = payload[off:end]
		off = end
	}
	if off != len(payload) {
		return errBadIndex
	}
	return nil
}
