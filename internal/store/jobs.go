package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// JobRecord is one persisted snapshot of a wolfd job. The server appends
// a record at admission and again at completion; the latest record per
// ID wins on replay, so a job that never reached a terminal state is
// visibly stuck in "queued" after a restart (and the server fails it on
// rehydration).
type JobRecord struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Source string `json:"source"`
	// Trace is the W3C trace ID of the request that created the job, so
	// causal correlation survives restarts along with the job itself.
	Trace     string    `json:"trace,omitempty"`
	TraceHash string    `json:"trace_hash,omitempty"`
	Error     string    `json:"error,omitempty"`
	Created   time.Time `json:"created,omitzero"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	// Fleet fields (wolfd -role=coordinator): the analyzer node the job
	// was last leased to, the lease expiry, and how many times the job
	// has been delivered. Attempts survives restarts so the bounded
	// redelivery budget cannot be reset by bouncing the coordinator.
	Node        string    `json:"node,omitempty"`
	Attempts    int       `json:"attempts,omitempty"`
	LeaseExpiry time.Time `json:"lease_expiry,omitzero"`
	// Report is the wire-format analysis report (report.JSONReport) of a
	// done job, kept verbatim so it can be served after a restart.
	Report json.RawMessage `json:"report,omitempty"`
}

// jobLog is the append-only JSONL job journal. Caller (Store) serializes
// access.
type jobLog struct {
	path   string
	f      *os.File
	latest map[string]int // job ID → index in order
	order  []JobRecord    // latest record per job, first-seen order
	// replayed counts the raw records parsed at open — the journal's
	// on-disk length in records, as opposed to len(order) live jobs.
	replayed int
	// compacted marks that this open rewrote the journal (tests/stats).
	compacted bool
}

// openJobLog replays the journal, tolerating a torn tail: a crash
// mid-append can leave a final partial line, which is dropped and
// truncated away so the next append starts on a record boundary.
//
// When the replayed history exceeds twice the live job count — every
// job writes at least an admission and a terminal record, so 2× is the
// steady-state floor — the journal is compacted: rewritten atomically
// (same-directory temp file, fsync, rename) with exactly one
// latest-state line per job. A crash anywhere during compaction leaves
// either the intact original or the complete replacement, never a mix;
// an orphaned temp file is swept by the next Open.
func openJobLog(path string) (*jobLog, error) {
	jl := &jobLog{path: path, latest: make(map[string]int)}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}
	good := int64(0)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	offset := int64(0)
	for sc.Scan() {
		line := sc.Bytes()
		// +1 for the newline the scanner stripped; a final line without
		// one is by definition torn (append writes the newline with the
		// record) and stays beyond `good`.
		end := offset + int64(len(line)) + 1
		offset = end
		if end > int64(len(data)) {
			break
		}
		var rec JobRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.ID == "" {
			break // torn or corrupt: drop this and everything after
		}
		jl.upsert(rec)
		jl.replayed++
		good = end
	}
	switch {
	case jl.replayed > 2*len(jl.order):
		// Compaction rewrites the whole file, which also discards any
		// torn tail without a separate truncate.
		if err := jl.compact(); err != nil {
			return nil, err
		}
	case good < int64(len(data)):
		// Repair: truncate the torn tail so future appends are clean.
		if err := os.Truncate(path, good); err != nil {
			return nil, fmt.Errorf("store: repair job log: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	jl.f = f
	return jl, nil
}

// compact atomically rewrites the journal as one latest-state record
// per live job, in first-seen order. Must run before the append handle
// is opened (the handle's offset would go stale across the rename).
func (jl *jobLog) compact() error {
	var buf bytes.Buffer
	for _, rec := range jl.order {
		data, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("store: compact job log: %w", err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	if err := atomicWrite(jl.path, buf.Bytes()); err != nil {
		return fmt.Errorf("store: compact job log: %w", err)
	}
	jl.replayed = len(jl.order)
	jl.compacted = true
	return nil
}

// upsert merges one record into the latest-per-ID view.
func (jl *jobLog) upsert(rec JobRecord) {
	if i, ok := jl.latest[rec.ID]; ok {
		jl.order[i] = rec
		return
	}
	jl.latest[rec.ID] = len(jl.order)
	jl.order = append(jl.order, rec)
}

// append durably writes one record (fsynced) and merges it in memory.
func (jl *jobLog) append(rec JobRecord) error {
	if jl.f == nil {
		return fmt.Errorf("store: job log closed")
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode job: %w", err)
	}
	data = append(data, '\n')
	if _, err := jl.f.Write(data); err != nil {
		return fmt.Errorf("store: append job: %w", err)
	}
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("store: sync job log: %w", err)
	}
	jl.upsert(rec)
	return nil
}

// snapshot copies the latest record of every job, first-seen order.
func (jl *jobLog) snapshot() []JobRecord {
	return append([]JobRecord(nil), jl.order...)
}

func (jl *jobLog) len() int { return len(jl.order) }

func (jl *jobLog) close() error {
	if jl.f == nil {
		return nil
	}
	err := jl.f.Close()
	jl.f = nil
	return err
}
