// Package store is wolfd's on-disk defect corpus: a crash-safe,
// content-addressed archive of traces plus the defect records aggregated
// over them by deadlock fingerprint (internal/fingerprint).
//
// Layout under the data directory:
//
//	traces/ab/<sha256>.wtrc  one binary-encoded trace per file, named by
//	                         the SHA-256 of its encoding (content
//	                         addressing: identical traces dedup to one
//	                         blob, and a JSON upload and its binary
//	                         re-encoding share a hash), sharded by the
//	                         first address byte (shard.go)
//	defects/ab/<fp>.json     one defect record per fingerprint, sharded
//	                         the same way
//	jobs.jsonl               append-only job log, one JSON record per line
//	index.bin                persistent index snapshot (index.go); purely
//	                         a cache — deleting it costs one rescan
//	index.dirty              marker: mutations since the last snapshot
//
// Pre-sharding corpora with blobs directly under traces/ and defects/
// keep working: Open indexes both layouts and files migrate to their
// shard lazily on access.
//
// Crash-safety invariants:
//
//   - Trace blobs, defect records and the index snapshot are written to
//     a temp file in the same directory, fsynced, then renamed into
//     place — a reader never observes a partial file, and a crash
//     leaves at most an orphaned ".tmp-*" file that the next Open
//     sweeps.
//   - The job log is append-only and fsynced per record; a crash can
//     truncate at most the final line. Open tolerates a torn tail by
//     dropping the partial line and truncating the file back to the
//     last intact record before appending again.
//   - The filesystem stays the source of truth: the index snapshot is
//     validated against the journal generation and a dirty marker, and
//     on any doubt Open falls back to rebuilding the index with a
//     parallel scan of the shard directories.
package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wolf/internal/core"
	"wolf/internal/fingerprint"
	"wolf/internal/obs"
	"wolf/internal/trace"
)

// ErrNotFound is returned for lookups of traces or defects the corpus
// does not hold.
var ErrNotFound = errors.New("store: not found")

// traceExt is the filename extension of stored trace blobs.
const traceExt = ".wtrc"

// Defect classes: the best verdict observed for a fingerprint.
const (
	ClassCandidate = "candidate"
	ClassConfirmed = "confirmed"
)

// TraceInfo describes one stored trace blob.
type TraceInfo struct {
	// Hash is the SHA-256 of the binary encoding, hex encoded — both the
	// filename and the API identifier.
	Hash string `json:"hash"`
	// Bytes is the blob size on disk.
	Bytes int64 `json:"bytes"`
	// ModTime is when the blob was stored (its file mtime) — the age GC
	// policies act on.
	ModTime time.Time `json:"mod_time"`

	// flat marks a blob still at its pre-sharding path.
	flat bool
}

// DefectRecord is the longitudinal view of one deadlock fingerprint:
// how often it has been seen, when, in which traces, and whether replay
// ever confirmed it.
type DefectRecord struct {
	// Fingerprint is the canonical cycle identity (fingerprint.Of).
	Fingerprint string `json:"fingerprint"`
	// Signature is the paper's source-location defect signature of the
	// fingerprinted cycles.
	Signature string `json:"signature"`
	// Edges is the human-readable abstraction the fingerprint hashes.
	Edges []fingerprint.Edge `json:"edges"`
	// Class is the best verdict observed: "confirmed" once any analysis
	// reproduced the deadlock, "candidate" otherwise.
	Class string `json:"class"`
	// Method is the replay pass that confirmed it ("steering" or
	// "fallback"), empty while unconfirmed.
	Method string `json:"method,omitempty"`
	// Occurrences counts the analyses in which the fingerprint appeared.
	Occurrences int `json:"occurrences"`
	// FirstSeen and LastSeen bound the observation window.
	FirstSeen time.Time `json:"first_seen"`
	LastSeen  time.Time `json:"last_seen"`
	// Traces lists the hashes of the stored traces the fingerprint was
	// detected in, in first-seen order, deduplicated. GC never deletes a
	// blob on this list.
	Traces []string `json:"traces"`
	// Workloads lists the workload names whose recordings exhibited the
	// defect, in first-seen order, deduplicated.
	Workloads []string `json:"workloads,omitempty"`
	// Rank is the corpus triage score (core.ScoreDefect), computed at
	// query time and never persisted.
	Rank float64 `json:"rank,omitempty"`
}

// clone deep-copies the record so callers can't mutate the index.
func (d *DefectRecord) clone() DefectRecord {
	c := *d
	c.Edges = append([]fingerprint.Edge(nil), d.Edges...)
	c.Traces = append([]string(nil), d.Traces...)
	c.Workloads = append([]string(nil), d.Workloads...)
	return c
}

// Stats summarizes the corpus for logs and metrics.
type Stats struct {
	Traces     int
	TraceBytes int64
	Defects    int
	Jobs       int
}

// Store is an open corpus. All methods are safe for concurrent use.
type Store struct {
	dir string

	mu          sync.Mutex
	traces      traceIndex
	defects     map[string]*DefectRecord
	flatDefects map[string]bool // fingerprints still at pre-sharding paths
	postings    *postings
	jobs        *jobLog

	// rawDefects holds the snapshot's still-encoded defect block after a
	// warm Open; ensureDefectsLocked parses it on first defect access.
	// rawDefectN is its record count (for Stats without parsing).
	rawDefects []byte
	rawDefectN int

	// dirty mirrors the on-disk index.dirty marker; writing counts blob
	// writes in flight outside s.mu (they block marker clearing).
	dirty   bool
	writing int
	// inflight dedups concurrent puts of the same content address: one
	// writer per hash, followers wait on its channel.
	inflight map[string]chan struct{}

	// openSeconds and warm describe the last Open for logs and metrics.
	openSeconds float64
	warm        bool

	// Counters and latency for the wolfd_store_* metric family.
	tracePuts        atomic.Int64
	traceDedups      atomic.Int64
	traceDeletes     atomic.Int64
	defectUpdates    atomic.Int64
	gcRuns           atomic.Int64
	gcBytesReclaimed atomic.Int64
	putLatency       obs.Histogram
}

// Open opens (creating if needed) the corpus rooted at dir. When a
// valid index snapshot exists the in-memory index is loaded from it in
// O(index) — no directory walk; otherwise it is rebuilt by a parallel
// scan of the shard directories and a fresh snapshot is written so the
// next Open is warm.
func Open(dir string) (*Store, error) {
	start := time.Now()
	s := &Store{
		dir:         dir,
		defects:     make(map[string]*DefectRecord),
		flatDefects: make(map[string]bool),
		inflight:    make(map[string]chan struct{}),
	}
	for _, sub := range []string{s.tracesDir(), s.defectsDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	// Sweep root-level temp files: a crash during journal compaction or
	// an index snapshot leaves an orphaned ".tmp-*" next to jobs.jsonl.
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), ".tmp-") {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	// The snapshot must be validated before the job log is opened:
	// opening can truncate a torn tail or compact the journal, moving
	// the generation stamp the snapshot was taken against.
	s.warm = s.loadIndex()
	if !s.warm {
		if err := s.scanTraces(); err != nil {
			return nil, err
		}
		if err := s.scanDefects(); err != nil {
			return nil, err
		}
	}
	jl, err := openJobLog(s.jobsPath())
	if err != nil {
		return nil, err
	}
	s.jobs = jl
	if s.rawDefects == nil {
		// Cold open: defects were just scanned into the map. (A warm open
		// defers both the defect parse and the postings rebuild to the
		// first defect access — see ensureDefectsLocked.)
		s.rebuildPostingsLocked()
	}
	if !s.warm || jl.compacted {
		// Cold open or a journal rewrite: persist a snapshot stamped
		// against the journal as it is now, so the next Open is warm.
		s.saveIndexLocked()
	}
	s.openSeconds = time.Since(start).Seconds()
	return s, nil
}

// OpenInfo reports whether the last Open was served from the index
// snapshot and how long it took.
func (s *Store) OpenInfo() (warm bool, seconds float64) {
	return s.warm, s.openSeconds
}

// Close snapshots the index and releases the job log. The store must
// not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.saveIndexLocked()
	return s.jobs.close()
}

// Dir returns the corpus root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) tracesDir() string  { return filepath.Join(s.dir, "traces") }
func (s *Store) defectsDir() string { return filepath.Join(s.dir, "defects") }

// validHash reports whether name is a plausible lowercase hex digest —
// the only filenames the scanner trusts.
func validHash(name string) bool {
	if len(name) != 64 {
		return false
	}
	for _, c := range name {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// encodeBufPool recycles trace-encoding buffers on the put path; at
// ingest rates the per-put buffer was the dominant allocation.
var encodeBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// HashTrace returns the content address a trace would be stored under.
func HashTrace(tr *trace.Trace) (string, []byte, error) {
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		return "", nil, fmt.Errorf("store: encode trace: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), buf.Bytes(), nil
}

// hashTracePooled is HashTrace on a pooled buffer; the caller must
// return the buffer to encodeBufPool when done with its bytes.
func hashTracePooled(tr *trace.Trace) (string, *bytes.Buffer, error) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := tr.WriteBinary(buf); err != nil {
		encodeBufPool.Put(buf)
		return "", nil, fmt.Errorf("store: encode trace: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), buf, nil
}

// PutTrace stores the trace under its content address. It reports the
// hash and whether a new blob was written; storing a trace the corpus
// already holds is a cheap no-op (dedup). Concurrent puts of the same
// content collapse to one disk write (singleflight), and the write
// itself happens outside the store lock so a slow disk does not
// serialize unrelated ingest.
func (s *Store) PutTrace(ctx context.Context, tr *trace.Trace) (hash string, created bool, err error) {
	start := time.Now()
	_, sp := obs.Start(ctx, "store.put-trace")
	defer sp.End()
	hash, buf, err := hashTracePooled(tr)
	if err != nil {
		return "", false, err
	}
	defer encodeBufPool.Put(buf)
	data := buf.Bytes()
	sp.Add("bytes", int64(len(data)))
	defer s.putLatency.ObserveSince(start)

	for {
		s.mu.Lock()
		if _, ok := s.traces.get(hash); ok {
			s.migrateTraceLocked(hash)
			s.mu.Unlock()
			s.traceDedups.Add(1)
			sp.Add("dedup", 1)
			return hash, false, nil
		}
		if ch, ok := s.inflight[hash]; ok {
			// Another goroutine is writing this exact content; wait for it
			// and re-check (it may have failed — then this one retries).
			s.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		s.inflight[hash] = ch
		s.markDirtyLocked()
		s.writing++
		s.mu.Unlock()

		path := s.shardTracePath(hash)
		werr := os.MkdirAll(filepath.Dir(path), 0o755)
		if werr == nil {
			werr = atomicWrite(path, data)
		}

		s.mu.Lock()
		s.writing--
		delete(s.inflight, hash)
		close(ch)
		if werr != nil {
			s.mu.Unlock()
			return "", false, werr
		}
		s.traces.put(TraceInfo{Hash: hash, Bytes: int64(len(data)), ModTime: time.Now()})
		s.mu.Unlock()
		s.tracePuts.Add(1)
		return hash, true, nil
	}
}

// GetTrace loads and decodes a stored trace.
func (s *Store) GetTrace(hash string) (*trace.Trace, error) {
	rc, _, err := s.OpenTrace(hash)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	tr, err := trace.ReadBinary(rc)
	if err != nil {
		return nil, fmt.Errorf("store: trace %s: %w", fingerprint.Short(hash), err)
	}
	return tr, nil
}

// OpenTrace opens the raw blob of a stored trace for streaming, with
// its size. Opening a pre-sharding blob migrates it to its shard first
// (a rename; the open observes the post-migration path).
func (s *Store) OpenTrace(hash string) (io.ReadCloser, int64, error) {
	s.mu.Lock()
	info, ok := s.traces.get(hash)
	if ok && info.flat {
		s.migrateTraceLocked(hash)
		info, _ = s.traces.get(hash)
	}
	s.mu.Unlock()
	if !ok {
		return nil, 0, ErrNotFound
	}
	f, err := os.Open(s.tracePath(hash, info.flat))
	if errors.Is(err, fs.ErrNotExist) {
		// The index hint can be stale (e.g. a snapshot written mid-
		// migration); the blob is wholly at exactly one path, so try the
		// other before giving up.
		f, err = os.Open(s.tracePath(hash, !info.flat))
	}
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, ErrNotFound
		}
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	return f, info.Bytes, nil
}

// DeleteTrace removes a stored trace blob. Defect records keep their
// dangling hash references: the observation history stays intact even
// when blobs are reclaimed.
func (s *Store) DeleteTrace(hash string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.traces.get(hash)
	if !ok {
		return ErrNotFound
	}
	if err := os.Remove(s.tracePath(hash, info.flat)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	s.markDirtyLocked()
	s.traces.del(hash)
	s.traceDeletes.Add(1)
	return nil
}

// Traces lists the stored blobs, ordered by hash.
func (s *Store) Traces() []TraceInfo {
	s.mu.Lock()
	out := make([]TraceInfo, 0, s.traces.len())
	s.traces.each(func(info TraceInfo) {
		out = append(out, info)
	})
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Hash < out[j].Hash })
	return out
}

// HasTrace reports whether the corpus holds the blob.
func (s *Store) HasTrace(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.traces.get(hash)
	return ok
}

// CycleSummary is the defect-relevant distillation of one analyzed
// cycle: just enough to merge into a DefectRecord without the full
// *core.Report. It is what fleet analyzers ship back to the
// coordinator, so its JSON form is wire format.
type CycleSummary struct {
	// Fingerprint is the canonical cycle identity (fingerprint.Of).
	Fingerprint string `json:"fingerprint"`
	// Signature is the paper's source-location defect signature.
	Signature string `json:"signature"`
	// Edges is the human-readable abstraction the fingerprint hashes.
	Edges []fingerprint.Edge `json:"edges"`
	// Confirmed reports whether replay reproduced the deadlock; Method
	// names the confirming pass ("steering" or "fallback") when it did.
	Confirmed bool   `json:"confirmed,omitempty"`
	Method    string `json:"method,omitempty"`
}

// Summarize distills a report into the per-fingerprint summaries Record
// would fold in: false positives are excluded (refuted, not defects)
// and each fingerprint appears once no matter how many cycles collapse
// to it, with the first cycle providing the summary — exactly the
// dedup Record has always applied.
func Summarize(rep *core.Report) []CycleSummary {
	seen := make(map[string]bool)
	var out []CycleSummary
	for _, cr := range rep.Cycles {
		if cr.Class.IsFalse() {
			continue
		}
		fp := fingerprint.Of(cr.Cycle)
		if seen[fp] {
			continue
		}
		seen[fp] = true
		cs := CycleSummary{
			Fingerprint: fp,
			Signature:   cr.Cycle.Signature(),
			Edges:       fingerprint.Edges(cr.Cycle),
		}
		if cr.Class == core.Confirmed {
			cs.Confirmed = true
			cs.Method = string(cr.ReplayMethod)
		}
		out = append(out, cs)
	}
	return out
}

// Record folds one analysis into the defect corpus: every confirmed or
// still-candidate cycle of rep (false positives are excluded — they are
// refuted, not defects) is fingerprinted and merged into its defect
// record. One analysis contributes at most one occurrence per
// fingerprint no matter how many of its cycles collapse to it. source
// tags the defect with the workload that produced the trace
// ("workload:NAME" or a bare name; empty adds nothing). Updated records
// are persisted atomically before Record returns; it reports the
// fingerprints it touched.
func (s *Store) Record(ctx context.Context, traceHash string, rep *core.Report, source string, now time.Time) ([]string, error) {
	return s.RecordSummaries(ctx, traceHash, Summarize(rep), source, now)
}

// RecordSummaries merges pre-distilled cycle summaries into the corpus —
// the remote-completion path, where the coordinator holds an analyzer's
// summaries rather than a live *core.Report. Fingerprints are
// untrusted wire input and become filenames, so anything that is not a
// plain hex digest is rejected. Duplicate fingerprints within one call
// are collapsed (first wins), matching Summarize's dedup for callers
// that bypass it.
func (s *Store) RecordSummaries(ctx context.Context, traceHash string, sums []CycleSummary, source string, now time.Time) ([]string, error) {
	_, sp := obs.Start(ctx, "store.record-defects")
	defer sp.End()

	workload := workloadFromSource(source)
	seen := make(map[string]bool)
	var updated []string
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureDefectsLocked()
	for _, cs := range sums {
		if !validHash(cs.Fingerprint) {
			return updated, fmt.Errorf("store: invalid fingerprint %q", cs.Fingerprint)
		}
		if seen[cs.Fingerprint] {
			continue
		}
		seen[cs.Fingerprint] = true
		rec, ok := s.defects[cs.Fingerprint]
		if !ok {
			rec = &DefectRecord{
				Fingerprint: cs.Fingerprint,
				Signature:   cs.Signature,
				Edges:       append([]fingerprint.Edge(nil), cs.Edges...),
				Class:       ClassCandidate,
				FirstSeen:   now,
			}
			s.defects[cs.Fingerprint] = rec
		}
		rec.Occurrences++
		rec.LastSeen = now
		if cs.Confirmed {
			rec.Class = ClassConfirmed
			if rec.Method == "" {
				rec.Method = cs.Method
			}
		}
		if traceHash != "" && !containsString(rec.Traces, traceHash) {
			rec.Traces = append(rec.Traces, traceHash)
		}
		if workload != "" && !containsString(rec.Workloads, workload) {
			rec.Workloads = append(rec.Workloads, workload)
		}
		s.markDirtyLocked()
		if err := s.writeDefect(rec); err != nil {
			return updated, err
		}
		s.indexDefectLocked(rec, !ok)
		s.defectUpdates.Add(1)
		updated = append(updated, cs.Fingerprint)
	}
	sp.Add("updated", int64(len(updated)))
	return updated, nil
}

// writeDefect persists one record atomically at its sharded path. A
// record still at a pre-sharding path migrates here: the sharded copy
// is durably in place before the flat one is removed, so a crash
// between the two leaves at worst a duplicate that the next cold scan
// resolves in favor of the shard. Caller holds s.mu.
func (s *Store) writeDefect(rec *DefectRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode defect: %w", err)
	}
	path := s.shardDefectPath(rec.Fingerprint)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := atomicWrite(path, append(data, '\n')); err != nil {
		return err
	}
	if s.flatDefects[rec.Fingerprint] {
		os.Remove(s.flatDefectPath(rec.Fingerprint))
		delete(s.flatDefects, rec.Fingerprint)
	}
	return nil
}

// Defects lists the defect records, most occurrences first (fingerprint
// as tiebreak for determinism).
func (s *Store) Defects() []*DefectRecord {
	s.mu.Lock()
	s.ensureDefectsLocked()
	out := make([]*DefectRecord, 0, len(s.defects))
	for _, rec := range s.defects {
		c := rec.clone()
		out = append(out, &c)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Occurrences != out[j].Occurrences {
			return out[i].Occurrences > out[j].Occurrences
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// Defect looks one record up by full fingerprint.
func (s *Store) Defect(fp string) (*DefectRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureDefectsLocked()
	rec, ok := s.defects[fp]
	if !ok {
		return nil, false
	}
	c := rec.clone()
	return &c, true
}

// AppendJob durably appends one job record to the log.
func (s *Store) AppendJob(rec JobRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs.append(rec)
}

// Jobs returns the latest persisted record of every job, in first-seen
// order.
func (s *Store) Jobs() []JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs.snapshot()
}

// Stats summarizes the corpus.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	defects := len(s.defects)
	if s.rawDefects != nil {
		defects = s.rawDefectN
	}
	return Stats{
		Traces:     s.traces.len(),
		TraceBytes: s.traces.totalBytes(),
		Defects:    defects,
		Jobs:       s.jobs.len(),
	}
}

// WritePrometheus renders the wolfd_store_* and wolfd_corpus_* metric
// families in Prometheus text exposition format: corpus gauges,
// operation counters, startup cost and the trace-write latency
// histogram.
func (s *Store) WritePrometheus(w io.Writer) {
	st := s.Stats()
	s.mu.Lock()
	openSeconds := s.openSeconds
	s.mu.Unlock()
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("wolfd_store_traces", "Trace blobs in the corpus.", int64(st.Traces))
	gauge("wolfd_store_trace_bytes", "Total bytes of stored trace blobs.", st.TraceBytes)
	gauge("wolfd_store_defects", "Defect records in the corpus.", int64(st.Defects))
	gauge("wolfd_store_jobs", "Jobs in the persisted job log.", int64(st.Jobs))
	gauge("wolfd_corpus_traces", "Trace blobs in the corpus (corpus view).", int64(st.Traces))
	gauge("wolfd_corpus_defects", "Defect records in the corpus (corpus view).", int64(st.Defects))
	gauge("wolfd_corpus_bytes", "Total bytes of stored trace blobs (corpus view).", st.TraceBytes)
	fmt.Fprintf(w, "# HELP wolfd_store_open_seconds Duration of the last corpus Open.\n# TYPE wolfd_store_open_seconds gauge\nwolfd_store_open_seconds %g\n", openSeconds)
	counter("wolfd_store_trace_writes_total", "New trace blobs written.", s.tracePuts.Load())
	counter("wolfd_store_trace_dedup_total", "Trace puts deduplicated by content address.", s.traceDedups.Load())
	counter("wolfd_store_trace_deletes_total", "Trace blobs deleted.", s.traceDeletes.Load())
	counter("wolfd_store_defect_updates_total", "Defect record updates persisted.", s.defectUpdates.Load())
	counter("wolfd_store_gc_runs_total", "Trace GC passes completed.", s.gcRuns.Load())
	counter("wolfd_store_gc_bytes_reclaimed_total", "Trace bytes reclaimed by GC.", s.gcBytesReclaimed.Load())
	s.putLatency.WritePrometheus(w, "wolfd_store_put_seconds", "Trace put latency (including dedup hits).", "")
}

// atomicWrite writes data to path via a same-directory temp file, fsync
// and rename, so concurrent readers and crashes never observe a partial
// file.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
