package store

// Corpus-scale benchmarks backing the "millions of traces" acceptance
// numbers: warm Open must be index-bound (no readdir over the blob
// tree), cold Open is the parallel scan floor, and Query must stay
// sublinear in corpus size through the postings. CI runs these at the
// default 1k corpus on every push and at 100k in a dedicated step with
// WOLF_STORE_BENCH_LARGE=1.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// benchCorpusSize is 1000 by default; WOLF_STORE_BENCH_LARGE=1 selects
// the 100k corpus used for the headline Open/Query numbers.
func benchCorpusSize() int {
	if os.Getenv("WOLF_STORE_BENCH_LARGE") == "1" {
		return 100_000
	}
	return 1000
}

// buildBenchCorpus lays out n synthetic trace blobs plus n/100+1 defect
// records directly on disk (no fsync — the scanner only stats entries),
// sharded or flat.
func buildBenchCorpus(b *testing.B, dir string, n int, flat bool) {
	b.Helper()
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	blob := make([]byte, 64)
	for i := 0; i < n; i++ {
		hash := fakeHash(i)
		path := filepath.Join(dir, "traces", hash[:2], hash+traceExt)
		if flat {
			path = filepath.Join(dir, "traces", hash+traceExt)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < n/100+1; i++ {
		fp := fakeHash(2_000_000 + i)
		rec := DefectRecord{
			Fingerprint: fp,
			Signature:   fmt.Sprintf("sig-%d", i),
			Class:       ClassCandidate,
			Occurrences: i%7 + 1,
			FirstSeen:   t0,
			LastSeen:    t0.Add(time.Duration(i) * time.Minute),
			Traces:      []string{fakeHash(i % n)},
			Workloads:   []string{fmt.Sprintf("wl-%d", i%5)},
		}
		data, err := json.Marshal(&rec)
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(dir, "defects", fp[:2], fp+".json")
		if flat {
			path = filepath.Join(dir, "defects", fp+".json")
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// openOnce opens and closes the store once, leaving a fresh snapshot.
func openOnce(b *testing.B, dir string) {
	b.Helper()
	s, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreOpen measures corpus open latency: warm (snapshot
// load), cold (sharded parallel scan) and flat (legacy layout scan).
// The warm/cold ratio at 100k traces is the ISSUE's >=50x acceptance
// number.
func BenchmarkStoreOpen(b *testing.B) {
	n := benchCorpusSize()
	for _, tc := range []struct {
		name string
		flat bool
		warm bool
	}{
		{"warm", false, true},
		{"cold", false, false},
		{"flat", true, false},
	} {
		b.Run(fmt.Sprintf("%s-%d", tc.name, n), func(b *testing.B) {
			dir := b.TempDir()
			buildBenchCorpus(b, dir, n, tc.flat)
			openOnce(b, dir) // write the snapshot once
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !tc.warm {
					b.StopTimer()
					os.Remove(filepath.Join(dir, "index.bin"))
					b.StartTimer()
				}
				s, err := Open(dir)
				if err != nil {
					b.Fatal(err)
				}
				if warm, _ := s.OpenInfo(); warm != tc.warm {
					b.Fatalf("warm = %v, want %v", warm, tc.warm)
				}
				b.StopTimer()
				if len(s.Traces()) != n {
					b.Fatalf("indexed %d traces, want %d", len(s.Traces()), n)
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// benchQueryStore builds an in-memory corpus of n defect records
// (inserted under the store lock, no per-record file writes) so Query
// itself is the only cost measured.
func benchQueryStore(b *testing.B, n int) *Store {
	b.Helper()
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	s.mu.Lock()
	for i := 0; i < n; i++ {
		class := ClassCandidate
		if i%5 == 0 {
			class = ClassConfirmed
		}
		rec := &DefectRecord{
			Fingerprint: fakeHash(i),
			Signature:   fmt.Sprintf("sig-%d", i),
			Class:       class,
			Occurrences: i%13 + 1,
			FirstSeen:   t0.Add(time.Duration(i) * time.Second),
			LastSeen:    t0.Add(time.Duration(2*i) * time.Second),
			Workloads:   []string{fmt.Sprintf("wl-%d", i%50)},
		}
		s.defects[rec.Fingerprint] = rec
		s.indexDefectLocked(rec, true)
	}
	s.mu.Unlock()
	return s
}

// BenchmarkStoreQuery measures the fingerprint query layer over the
// postings. The acceptance criterion is sublinearity: the filtered
// variants must not grow proportionally with corpus size.
func BenchmarkStoreQuery(b *testing.B) {
	n := benchCorpusSize()
	s := benchQueryStore(b, n)
	for _, tc := range []struct {
		name string
		opts QueryOptions
	}{
		{"workload", QueryOptions{Workload: "wl-7", Limit: 100}},
		{"workload-confirmed", QueryOptions{Workload: "wl-0", Class: ClassConfirmed, Limit: 100}},
		{"since", QueryOptions{Since: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(2*n-200) * time.Second), Limit: 100}},
		{"top-rank", QueryOptions{Sort: "rank", Limit: 100}},
	} {
		b.Run(fmt.Sprintf("%s-%d", tc.name, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := s.Query(tc.opts)
				if res.Total == 0 {
					b.Fatal("query matched nothing")
				}
			}
		})
	}
}

// BenchmarkPutTraceDedup exercises the put hot path on a duplicate
// upload: pooled encode buffer, content hash, singleflight admission,
// no blob write.
func BenchmarkPutTraceDedup(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	tr, _ := recordedTrace(b, "Figure4", 1)
	ctx := context.Background()
	if _, _, err := s.PutTrace(ctx, tr); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, created, err := s.PutTrace(ctx, tr); err != nil || created {
			b.Fatalf("dedup put: created=%v err=%v", created, err)
		}
	}
}
