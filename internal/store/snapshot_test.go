package store

// Crash-recovery tests for the persistent index snapshot, extending the
// recovery_test.go kill-and-reopen pattern: whatever state a crash
// leaves index.bin and index.dirty in, reopening must converge on the
// same corpus a cold scan would build.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// snapshotOf renders the index as a comparable string: trace addresses
// and sizes plus the defect records as JSON. Trace mod-times are
// excluded — a warm open carries the put timestamp, a cold scan the
// file mtime, and the two legitimately differ by the write latency.
func snapshotOf(t *testing.T, s *Store) string {
	t.Helper()
	var b strings.Builder
	for _, info := range s.Traces() {
		fmt.Fprintf(&b, "trace %s %d\n", info.Hash, info.Bytes)
	}
	for _, rec := range s.Defects() {
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "jobs %d\n", len(s.Jobs()))
	return b.String()
}

// TestWarmOpenMatchesColdScan: a clean Close leaves a snapshot; the
// next Open must be warm and identical to what a forced scan sees.
func TestWarmOpenMatchesColdScan(t *testing.T) {
	dir := t.TempDir()
	hash, _ := seedCorpus(t, dir)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if warm, _ := s.OpenInfo(); !warm {
		t.Fatal("open after clean close should be warm")
	}
	want := snapshotOf(t, s)
	if !s.HasTrace(hash) {
		t.Fatal("warm open lost the trace")
	}
	s.Close()

	os.Remove(filepath.Join(dir, "index.bin"))
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if warm, _ := s2.OpenInfo(); warm {
		t.Fatal("open without index.bin cannot be warm")
	}
	if got := snapshotOf(t, s2); got != want {
		t.Errorf("cold scan disagrees with warm open:\n got %s\nwant %s", got, want)
	}
}

// TestCorruptSnapshotFallsBackToScan: bit rot or a torn snapshot fails
// checksum validation and degrades to the scan, never to an error or a
// wrong index.
func TestCorruptSnapshotFallsBackToScan(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(path string) error
	}{
		{"flipped byte", func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			data[len(data)/2] ^= 0xff
			return os.WriteFile(path, data, 0o644)
		}},
		{"truncated", func(path string) error {
			fi, err := os.Stat(path)
			if err != nil {
				return err
			}
			return os.Truncate(path, fi.Size()/2)
		}},
		{"empty", func(path string) error {
			return os.Truncate(path, 0)
		}},
		{"garbage", func(path string) error {
			return os.WriteFile(path, []byte("not a snapshot"), 0o644)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			hash, wantDefects := seedCorpus(t, dir)
			if err := tc.corrupt(filepath.Join(dir, "index.bin")); err != nil {
				t.Fatal(err)
			}
			s, err := Open(dir)
			if err != nil {
				t.Fatalf("corrupt snapshot failed open: %v", err)
			}
			defer s.Close()
			if warm, _ := s.OpenInfo(); warm {
				t.Error("corrupt snapshot served a warm open")
			}
			if !s.HasTrace(hash) || len(s.Defects()) != wantDefects {
				t.Errorf("scan fallback lost data: trace=%v defects=%d want %d",
					s.HasTrace(hash), len(s.Defects()), wantDefects)
			}
		})
	}
}

// TestDirtyMarkerForcesScan: a crash between a mutation and the next
// snapshot leaves index.dirty behind; the snapshot must not be trusted
// even though it validates.
func TestDirtyMarkerForcesScan(t *testing.T) {
	dir := t.TempDir()
	hash, _ := seedCorpus(t, dir)

	// Simulate the crash window: marker dropped, snapshot stale. Delete a
	// blob behind the snapshot's back so trusting it would be wrong.
	f, err := os.Create(filepath.Join(dir, "index.dirty"))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.Remove(filepath.Join(dir, "traces", hash[:2], hash+traceExt)); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if warm, _ := s.OpenInfo(); warm {
		t.Fatal("dirty marker did not force a scan")
	}
	if s.HasTrace(hash) {
		t.Error("scan resurrected a deleted blob the stale snapshot still indexed")
	}
	// The recovery open ends with a fresh snapshot and a cleared marker,
	// so the next open is warm again.
	s.Close()
	if _, err := os.Stat(filepath.Join(dir, "index.dirty")); !os.IsNotExist(err) {
		t.Fatal("dirty marker survived a clean close")
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if warm, _ := s2.OpenInfo(); !warm {
		t.Error("recovered corpus did not warm-open")
	}
}

// TestJournalGrowthInvalidatesSnapshot: the journal-size generation
// stamp catches a snapshot written before later job appends (e.g. a
// crash that lost the final snapshot but not the fsynced journal).
func TestJournalGrowthInvalidatesSnapshot(t *testing.T) {
	dir := t.TempDir()
	appendJobs(t, dir, 2) // Close wrote a snapshot stamped for 2 records

	// Simulate post-snapshot journal growth: append a record the way the
	// job log would, without touching the snapshot.
	f, err := os.OpenFile(filepath.Join(dir, "jobs.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"j-990000","state":"queued","source":"upload"}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if warm, _ := s.OpenInfo(); warm {
		t.Fatal("journal growth did not invalidate the snapshot")
	}
	if got := len(s.Jobs()); got != 3 {
		t.Errorf("jobs = %d, want 3 (appended record must be replayed)", got)
	}
}

// TestCrashDuringSnapshotWrite: a crash inside the snapshot's own
// atomicWrite leaves a temp file and the old (still stamped-valid)
// snapshot. Open sweeps the temp file; the old snapshot still matches
// the journal so it loads, and it describes the pre-crash state — which
// is exactly what the dirty-marker protocol guarantees it may.
func TestCrashDuringSnapshotWrite(t *testing.T) {
	dir := t.TempDir()
	hash, wantDefects := seedCorpus(t, dir)
	if err := os.WriteFile(filepath.Join(dir, ".tmp-snapshot"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.HasTrace(hash) || len(s.Defects()) != wantDefects {
		t.Error("corpus lost data after torn snapshot write")
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-snapshot")); !os.IsNotExist(err) {
		t.Error("torn snapshot temp file not swept")
	}
}

// TestSnapshotRoundTripsWorkloads: the snapshot must preserve the full
// defect record, including the query-layer dimensions added with it.
func TestSnapshotRoundTripsWorkloads(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tr, _ := recordedTrace(t, "Figure4", 1)
	hash, _, err := s.PutTrace(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Record(ctx, hash, analyze(t, tr), "workload:Figure4", time.Now()); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(s.Defects())
	if err != nil {
		t.Fatal(err)
	}
	wantN := len(s.Defects())
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if warm, _ := s2.OpenInfo(); !warm {
		t.Fatal("expected warm open")
	}
	got, err := json.Marshal(s2.Defects())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("records changed across snapshot round trip:\n got %s\nwant %s", got, want)
	}
	recs := s2.Defects()
	if len(recs) == 0 || len(recs[0].Workloads) == 0 || recs[0].Workloads[0] != "Figure4" {
		t.Errorf("workloads lost in snapshot: %+v", recs)
	}
	// And the postings rebuilt from the snapshot serve workload queries.
	res := s2.Query(QueryOptions{Workload: "Figure4"})
	if res.Total != wantN {
		t.Errorf("workload query after warm open = %d records, want %d", res.Total, wantN)
	}
}
