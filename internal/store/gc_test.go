package store

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"
)

// putFakeTrace stores a synthetic blob under a deterministic content
// address, bypassing trace encoding — GC only cares about files, sizes
// and mtimes.
func putFakeTrace(t *testing.T, s *Store, i int, size int) string {
	t.Helper()
	hash := fakeHash(i)
	path := s.shardTracePath(hash)
	if err := os.MkdirAll(fmt.Sprintf("%s/%s", s.tracesDir(), hash[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.traces.put(TraceInfo{Hash: hash, Bytes: int64(size), ModTime: time.Now()})
	s.mu.Unlock()
	return hash
}

// fakeHash derives a well-distributed synthetic content address.
func fakeHash(i int) string {
	h := fmt.Sprintf("%063x", i)
	// Spread shards: lead with the low byte so consecutive i land in
	// different buckets.
	return h[len(h)-2:] + h[:62]
}

// recordFakeDefect registers a defect referencing the given traces.
func recordFakeDefect(t *testing.T, s *Store, i int, traces []string) string {
	t.Helper()
	fp := fakeHash(1_000_000 + i)
	sums := []CycleSummary{{Fingerprint: fp, Signature: fmt.Sprintf("sig-%d", i)}}
	now := time.Now()
	for _, tr := range traces {
		if _, err := s.RecordSummaries(context.Background(), tr, sums, "workload:gc", now); err != nil {
			t.Fatal(err)
		}
	}
	return fp
}

// TestGCNeverOrphansConfirmingTraces is the GC safety property test:
// across randomized corpora and aggressive policies, a trace referenced
// by any defect record survives every GC pass — on disk and in the
// index — while unreferenced traces are reclaimable.
func TestGCNeverOrphansConfirmingTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}

		nTraces := 10 + rng.Intn(40)
		hashes := make([]string, nTraces)
		for i := range hashes {
			hashes[i] = putFakeTrace(t, s, trial*1000+i, 100+rng.Intn(400))
		}
		// Reference a random subset through defect records.
		referenced := make(map[string]bool)
		nDefects := 1 + rng.Intn(5)
		for d := 0; d < nDefects; d++ {
			var confirming []string
			for _, h := range hashes {
				if rng.Intn(3) == 0 {
					confirming = append(confirming, h)
					referenced[h] = true
				}
			}
			if len(confirming) == 0 {
				confirming = []string{hashes[rng.Intn(len(hashes))]}
				referenced[confirming[0]] = true
			}
			recordFakeDefect(t, s, trial*100+d, confirming)
		}
		// Backdate everything so the TTL policy sees every blob expired.
		for _, h := range hashes {
			s.touchModTime(h, time.Now().Add(-48*time.Hour))
		}

		// The most aggressive policy expressible: a 1-byte budget and a
		// TTL every blob violates.
		stats := s.GC(GCPolicy{MaxBytes: 1, TTL: time.Hour}, time.Now())

		for _, h := range hashes {
			if referenced[h] {
				if !s.HasTrace(h) {
					t.Fatalf("trial %d: GC deleted referenced trace %s", trial, h[:12])
				}
				rc, _, err := s.OpenTrace(h)
				if err != nil {
					t.Fatalf("trial %d: referenced trace %s unreadable after GC: %v", trial, h[:12], err)
				}
				rc.Close()
			} else if s.HasTrace(h) {
				t.Fatalf("trial %d: GC kept unreferenced expired trace %s under a 1-byte budget", trial, h[:12])
			}
		}
		if want := nTraces - len(referenced); stats.Deleted != want {
			t.Errorf("trial %d: deleted = %d, want %d", trial, stats.Deleted, want)
		}
		if stats.Kept != len(referenced) {
			t.Errorf("trial %d: kept = %d, want %d", trial, stats.Kept, len(referenced))
		}
		s.Close()
	}
}

// TestGCTTLOnly: with only a TTL set, young blobs survive regardless of
// corpus size and old unreferenced blobs go.
func TestGCTTLOnly(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	old := putFakeTrace(t, s, 1, 100)
	young := putFakeTrace(t, s, 2, 100)
	s.touchModTime(old, time.Now().Add(-2*time.Hour))

	stats := s.GC(GCPolicy{TTL: time.Hour}, time.Now())
	if s.HasTrace(old) {
		t.Error("expired blob survived TTL GC")
	}
	if !s.HasTrace(young) {
		t.Error("young blob deleted by TTL GC")
	}
	if stats.Deleted != 1 {
		t.Errorf("deleted = %d, want 1", stats.Deleted)
	}
}

// TestGCBudgetOldestFirst: over budget, the oldest unreferenced blobs
// go first and deletion stops at the budget line.
func TestGCBudgetOldestFirst(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	oldest := putFakeTrace(t, s, 1, 100)
	middle := putFakeTrace(t, s, 2, 100)
	newest := putFakeTrace(t, s, 3, 100)
	now := time.Now()
	s.touchModTime(oldest, now.Add(-3*time.Hour))
	s.touchModTime(middle, now.Add(-2*time.Hour))
	s.touchModTime(newest, now.Add(-1*time.Hour))

	stats := s.GC(GCPolicy{MaxBytes: 250}, now)
	if s.HasTrace(oldest) {
		t.Error("oldest blob survived over-budget GC")
	}
	if !s.HasTrace(middle) || !s.HasTrace(newest) {
		t.Error("GC deleted past the budget line")
	}
	if stats.Deleted != 1 || stats.BytesReclaimed != 100 {
		t.Errorf("stats = %+v, want 1 deletion of 100 bytes", stats)
	}
}

// TestGCDisabledIsNoOp: a zero policy touches nothing.
func TestGCDisabledIsNoOp(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := putFakeTrace(t, s, 1, 100)
	s.touchModTime(h, time.Now().Add(-1000*time.Hour))
	if stats := s.GC(GCPolicy{}, time.Now()); stats.Deleted != 0 || !s.HasTrace(h) {
		t.Errorf("zero policy deleted blobs: %+v", stats)
	}
}
