package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// churnJobs runs n jobs through queued → running → done, writing three
// journal records per job (one more than the 2× steady-state floor).
func churnJobs(t *testing.T, dir string, n int) {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		for _, state := range []string{"queued", "running", "done"} {
			rec := JobRecord{
				ID:      jobID(i),
				State:   state,
				Source:  "upload",
				Created: time.Date(2026, 8, 1, 0, 0, i, 0, time.UTC),
			}
			if err := s.AppendJob(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func logLines(t *testing.T, dir string) []string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		return nil
	}
	return strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
}

// TestCompactionOnOpen: a journal holding three records per job (above
// the 2× floor) is rewritten on Open to one latest-state line per job,
// preserving state and first-seen order.
func TestCompactionOnOpen(t *testing.T) {
	dir := t.TempDir()
	churnJobs(t, dir, 3) // 9 records, 3 live → compacts

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s.jobs.compacted {
		t.Error("journal above the 2x floor was not compacted")
	}
	if lines := logLines(t, dir); len(lines) != 3 {
		t.Fatalf("compacted log lines = %d, want 3", len(lines))
	}
	jobs := s.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(jobs))
	}
	for i, j := range jobs {
		if j.ID != jobID(i+1) || j.State != "done" {
			t.Errorf("job %d = %s/%s, want %s/done", i, j.ID, j.State, jobID(i+1))
		}
	}

	// Appends after compaction land cleanly and survive another reopen
	// (which must not compact again: 4 records, 4 live).
	if err := s.AppendJob(JobRecord{ID: "j-990000", State: "queued", Source: "upload"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.jobs.compacted {
		t.Error("freshly compacted journal re-compacted on next open")
	}
	if got := len(s2.Jobs()); got != 4 {
		t.Fatalf("jobs after append+reopen = %d, want 4", got)
	}
}

// TestNoCompactionAtSteadyState: the normal lifecycle writes exactly two
// records per job (admission + terminal). That is the floor, not churn,
// and must never trigger a rewrite.
func TestNoCompactionAtSteadyState(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		for _, state := range []string{"queued", "done"} {
			if err := s.AppendJob(JobRecord{ID: jobID(i), State: state, Source: "upload"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.jobs.compacted {
		t.Error("steady-state journal (replayed == 2x live) was compacted")
	}
	if lines := logLines(t, dir); len(lines) != 8 {
		t.Fatalf("log lines = %d, want 8 (untouched)", len(lines))
	}
}

// TestKillDuringCompaction: a crash mid-compaction leaves the original
// journal intact plus an orphaned temp file (atomicWrite renames only
// after a complete fsynced write). The next Open must sweep the orphan
// and compact from the intact original — no records lost.
func TestKillDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	churnJobs(t, dir, 3)

	// Simulate the crash artifact: a half-written compaction temp next
	// to jobs.jsonl.
	tmp := filepath.Join(dir, ".tmp-jobs-123456")
	if err := os.WriteFile(tmp, []byte(`{"id":"j-010000","state":"do`), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("orphaned compaction temp file was not swept")
	}
	jobs := s.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d, want 3 (original journal intact)", len(jobs))
	}
	for i, j := range jobs {
		if j.ID != jobID(i+1) || j.State != "done" {
			t.Errorf("job %d = %s/%s, want %s/done", i, j.ID, j.State, jobID(i+1))
		}
	}
	if lines := logLines(t, dir); len(lines) != 3 {
		t.Fatalf("log lines = %d, want 3 (compaction retried)", len(lines))
	}
}

// TestJobRecordFleetFieldsRoundTrip: the lease/node/attempts fields
// survive journal replay and compaction, and are omitted entirely from
// records that never touched the fleet path (single-process
// byte-compat).
func TestJobRecordFleetFieldsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	expiry := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	leased := JobRecord{
		ID: "j-000001", State: "running", Source: "upload",
		Node: "analyzer-1", Attempts: 2, LeaseExpiry: expiry,
	}
	plain := JobRecord{ID: "j-000002", State: "queued", Source: "upload"}
	for _, rec := range []JobRecord{leased, plain} {
		if err := s.AppendJob(rec); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	for _, line := range logLines(t, dir) {
		if strings.Contains(line, `"j-000002"`) {
			for _, field := range []string{"node", "attempts", "lease_expiry"} {
				if strings.Contains(line, field) {
					t.Errorf("fleet field %q leaked into a non-fleet record: %s", field, line)
				}
			}
		}
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jobs := s2.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(jobs))
	}
	got := jobs[0]
	if got.Node != "analyzer-1" || got.Attempts != 2 || !got.LeaseExpiry.Equal(expiry) {
		t.Fatalf("fleet fields after replay = %q/%d/%v", got.Node, got.Attempts, got.LeaseExpiry)
	}
}
