package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// appendJobs opens a store at dir, appends n queued records and closes
// it, returning the job log path.
func appendJobs(t *testing.T, dir string, n int) string {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		rec := JobRecord{
			ID:      jobID(i),
			State:   "queued",
			Source:  "upload",
			Created: time.Date(2026, 8, 1, 0, 0, i, 0, time.UTC),
		}
		if err := s.AppendJob(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "jobs.jsonl")
}

func jobID(i int) string {
	return "j-" + string(rune('0'+i/10)) + string(rune('0'+i%10)) + "0000"
}

// TestRecoveryTruncatedTail simulates a crash mid-append: the job log
// ends in a torn, partial record. Reopening must drop exactly the torn
// line, repair the file, and keep appending cleanly.
func TestRecoveryTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := appendJobs(t, dir, 3)

	// Kill: chop the file mid-way through the final record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("log lines = %d, want 3", len(lines))
	}
	torn := data[:len(data)-len(lines[2])/2-1] // cut inside the last line
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen: the two intact records survive, the torn one is gone.
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := s.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("jobs after torn-tail reopen = %d, want 2", len(jobs))
	}
	for i, j := range jobs {
		if j.ID != jobID(i+1) {
			t.Errorf("job %d = %s, want %s", i, j.ID, jobID(i+1))
		}
	}

	// The file itself was repaired back to a record boundary.
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) == 0 || repaired[len(repaired)-1] != '\n' {
		t.Error("repaired log does not end on a record boundary")
	}
	for _, line := range strings.Split(strings.TrimSuffix(string(repaired), "\n"), "\n") {
		var rec JobRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Errorf("repaired log still holds a corrupt line: %q", line)
		}
	}

	// Appends after repair land on the boundary and survive another
	// reopen.
	if err := s.AppendJob(JobRecord{ID: "j-990000", State: "queued", Source: "upload"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jobs = s2.Jobs()
	if len(jobs) != 3 || jobs[2].ID != "j-990000" {
		t.Fatalf("jobs after repair+append+reopen = %+v", jobs)
	}
}

// TestRecoveryMissingNewline covers the other torn-tail shape: the final
// record is complete JSON but the newline never hit the disk. The
// append path writes record+newline in one write, so a missing newline
// still marks a torn record and must be dropped.
func TestRecoveryMissingNewline(t *testing.T) {
	dir := t.TempDir()
	path := appendJobs(t, dir, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := len(s.Jobs()); got != 1 {
		t.Fatalf("jobs = %d, want 1 (record without newline is torn)", got)
	}
}

// TestRecoveryCorruptLine: garbage in the middle of the log (torn write
// followed by a later append from a buggy run) drops the corrupt line
// and everything after it rather than failing open.
func TestRecoveryCorruptLine(t *testing.T) {
	dir := t.TempDir()
	path := appendJobs(t, dir, 1)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{torn garbage\n{\"id\":\"j-020000\",\"state\":\"queued\",\"source\":\"upload\"}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := len(s.Jobs()); got != 1 {
		t.Fatalf("jobs = %d, want 1 (corrupt line and successors dropped)", got)
	}
}

// TestRecoveryEmptyAndAbsentLog: a fresh directory and an empty log both
// open cleanly.
func TestRecoveryEmptyAndAbsentLog(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Jobs()); got != 0 {
		t.Errorf("fresh store jobs = %d", got)
	}
	s.Close()
	if err := os.Truncate(filepath.Join(dir, "jobs.jsonl"), 0); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.Jobs()); got != 0 {
		t.Errorf("empty-log store jobs = %d", got)
	}
}
