package store

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wolf/internal/core"
	"wolf/internal/obs"
	"wolf/internal/trace"
	"wolf/internal/workloads"
	"wolf/sim"
)

// recordedTrace records a detection trace of the named workload on the
// first terminating seed at or after from, so tests can get distinct
// traces of the same defect by advancing from.
func recordedTrace(t testing.TB, name string, from int64) (*trace.Trace, int64) {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %s not registered", name)
	}
	for seed := from; seed < from+300; seed++ {
		prog, opts := w.New()
		if out := sim.Run(prog, sim.NewRandomStrategy(seed), opts); out.Kind != sim.Terminated {
			continue
		}
		return core.Record(w.New, seed, 0), seed
	}
	t.Fatalf("no terminating seed for %s at or after %d", name, from)
	return nil, 0
}

func analyze(t *testing.T, tr *trace.Trace) *core.Report {
	t.Helper()
	rep, err := core.AnalyzeTraceCtx(context.Background(), tr, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestPutTraceDedupAndRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tr, _ := recordedTrace(t, "Figure4", 1)
	ctx := context.Background()
	hash, created, err := s.PutTrace(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("first put should create")
	}
	if len(hash) != 64 {
		t.Errorf("hash %q not sha256 hex", hash)
	}

	// Second put of the same trace: dedup, same address.
	hash2, created2, err := s.PutTrace(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	if created2 || hash2 != hash {
		t.Errorf("dedup put: created=%v hash match=%v", created2, hash2 == hash)
	}
	if got := s.Stats().Traces; got != 1 {
		t.Errorf("stats traces = %d, want 1", got)
	}

	got, err := s.GetTrace(hash)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != len(tr.Tuples) || got.Seed != tr.Seed {
		t.Errorf("round trip: %d tuples seed %d, want %d tuples seed %d",
			len(got.Tuples), got.Seed, len(tr.Tuples), tr.Seed)
	}

	// Raw blob hashes back to its own address.
	rc, size, err := s.OpenTrace(hash)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || int64(len(raw)) != size {
		t.Fatalf("blob read: %v (%d vs %d bytes)", err, len(raw), size)
	}
	wantHash, enc, err := HashTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if wantHash != hash || !bytes.Equal(raw, enc) {
		t.Error("stored blob is not the canonical encoding")
	}
}

func TestDeleteTrace(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr, _ := recordedTrace(t, "Figure4", 1)
	hash, _, err := s.PutTrace(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteTrace(hash); err != nil {
		t.Fatal(err)
	}
	if s.HasTrace(hash) {
		t.Error("trace still indexed after delete")
	}
	if _, err := s.GetTrace(hash); err != ErrNotFound {
		t.Errorf("get after delete: %v, want ErrNotFound", err)
	}
	if err := s.DeleteTrace(hash); err != ErrNotFound {
		t.Errorf("double delete: %v, want ErrNotFound", err)
	}
}

func TestRecordAggregatesByFingerprint(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	// Two distinct traces of the same workload defect.
	tr1, seed1 := recordedTrace(t, "Figure4", 1)
	tr2, _ := recordedTrace(t, "Figure4", seed1+1)
	h1, _, err := s.PutTrace(ctx, tr1)
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := s.PutTrace(ctx, tr2)
	if err != nil {
		t.Fatal(err)
	}

	rep1 := analyze(t, tr1)
	rep2 := analyze(t, tr2)
	if len(rep1.Cycles) == 0 || len(rep2.Cycles) == 0 {
		t.Skip("seeds produced no cycles")
	}
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	t1 := t0.Add(time.Hour)
	if _, err := s.Record(ctx, h1, rep1, "workload:figure4", t0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Record(ctx, h2, rep2, "workload:figure4", t1); err != nil {
		t.Fatal(err)
	}

	defects := s.Defects()
	if len(defects) != 1 {
		t.Fatalf("defects = %d, want 1 (same defect, two executions)", len(defects))
	}
	d := defects[0]
	if d.Occurrences != 2 {
		t.Errorf("occurrences = %d, want 2", d.Occurrences)
	}
	if !d.FirstSeen.Equal(t0) || !d.LastSeen.Equal(t1) {
		t.Errorf("seen window = %v..%v, want %v..%v", d.FirstSeen, d.LastSeen, t0, t1)
	}
	if len(d.Traces) != 2 || !containsString(d.Traces, h1) || !containsString(d.Traces, h2) {
		t.Errorf("confirming traces = %v, want both %s and %s", d.Traces, h1[:8], h2[:8])
	}
	if d.Class != "candidate" {
		t.Errorf("offline analysis class = %q, want candidate", d.Class)
	}
	if len(d.Edges) == 0 || d.Signature == "" {
		t.Error("record missing edges/signature")
	}

	// Re-recording the same trace's analysis counts another occurrence
	// but does not duplicate the trace hash.
	if _, err := s.Record(ctx, h1, rep1, "workload:figure4", t1.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	d2, ok := s.Defect(d.Fingerprint)
	if !ok {
		t.Fatal("defect vanished")
	}
	if d2.Occurrences != 3 || len(d2.Traces) != 2 {
		t.Errorf("after re-record: occurrences=%d traces=%d, want 3 and 2", d2.Occurrences, len(d2.Traces))
	}
}

func TestRecordSkipsFalsePositives(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr, _ := recordedTrace(t, "Figure4", 1)
	rep := analyze(t, tr)
	for _, cr := range rep.Cycles {
		cr.Class = core.FalseByPruner
	}
	updated, err := s.Record(context.Background(), "", rep, "", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(updated) != 0 || len(s.Defects()) != 0 {
		t.Error("refuted cycles must not become defect records")
	}
}

func TestReopenRebuildsIndexByScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tr, _ := recordedTrace(t, "Figure4", 1)
	hash, _, err := s.PutTrace(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	rep := analyze(t, tr)
	if _, err := s.Record(ctx, hash, rep, "upload", time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendJob(JobRecord{ID: "j-000001", State: "done", Source: "upload", TraceHash: hash}); err != nil {
		t.Fatal(err)
	}
	wantDefects := len(s.Defects())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Force the cold path: a clean Close leaves a valid index snapshot,
	// and this test is about the scan rebuilding the index from disk.
	if err := os.Remove(filepath.Join(dir, "index.bin")); err != nil {
		t.Fatal(err)
	}
	// Drop in garbage the scanner must ignore: a stale temp file and a
	// corrupt defect record.
	if err := os.WriteFile(filepath.Join(dir, "traces", ".tmp-123"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	badFP := strings.Repeat("ab", 32)
	if err := os.WriteFile(filepath.Join(dir, "defects", badFP+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.HasTrace(hash) {
		t.Error("trace lost across reopen")
	}
	if got := len(s2.Defects()); got != wantDefects {
		t.Errorf("defects after reopen = %d, want %d", got, wantDefects)
	}
	jobs := s2.Jobs()
	if len(jobs) != 1 || jobs[0].ID != "j-000001" || jobs[0].State != "done" {
		t.Errorf("jobs after reopen = %+v", jobs)
	}
	if _, err := os.Stat(filepath.Join(dir, "traces", ".tmp-123")); !os.IsNotExist(err) {
		t.Error("stale temp file not swept on open")
	}
}

func TestJobLogLatestRecordWins(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	now := time.Now().UTC().Truncate(time.Second)
	rep := json.RawMessage(`{"tool":"wolf(offline)"}`)
	must := func(rec JobRecord) {
		t.Helper()
		if err := s.AppendJob(rec); err != nil {
			t.Fatal(err)
		}
	}
	must(JobRecord{ID: "j-000001", State: "queued", Source: "upload", Created: now})
	must(JobRecord{ID: "j-000002", State: "queued", Source: "upload", Created: now})
	must(JobRecord{ID: "j-000001", State: "done", Source: "upload", Created: now, Report: rep})

	jobs := s.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(jobs))
	}
	if jobs[0].ID != "j-000001" || jobs[0].State != "done" || string(jobs[0].Report) != string(rep) {
		t.Errorf("latest record did not win: %+v", jobs[0])
	}
	if jobs[1].State != "queued" {
		t.Errorf("unrelated job mutated: %+v", jobs[1])
	}
}

func TestStoreMetricsLintClean(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr, _ := recordedTrace(t, "Figure4", 1)
	if _, _, err := s.PutTrace(context.Background(), tr); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s.WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{
		"wolfd_store_traces 1",
		"wolfd_store_trace_writes_total 1",
		"wolfd_store_put_seconds_count",
		"wolfd_corpus_traces 1",
		"wolfd_corpus_defects 0",
		"wolfd_corpus_bytes ",
		"wolfd_store_open_seconds ",
		"wolfd_store_gc_runs_total 0",
		"wolfd_store_gc_bytes_reclaimed_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if errs := obs.PromLint(strings.NewReader(text)); len(errs) != 0 {
		t.Errorf("promlint: %v", errs)
	}
}

func TestPutTraceEmitsSpans(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	tr, _ := recordedTrace(t, "Figure4", 1)
	hash, _, err := s.PutTrace(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	rep := analyze(t, tr)
	if _, err := s.Record(ctx, hash, rep, "upload", time.Now()); err != nil {
		t.Fatal(err)
	}
	if rec.Count("store.put-trace") != 1 {
		t.Error("missing store.put-trace span")
	}
	if rec.Count("store.record-defects") != 1 {
		t.Error("missing store.record-defects span")
	}
}
