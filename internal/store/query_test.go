package store

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// buildQueryCorpus populates a store with synthetic defect records
// spanning every query dimension, returning the store and the base
// time t0 (records are spread over the following n hours).
func buildQueryCorpus(t *testing.T, n int) (*Store, time.Time) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	workloads := []string{"Figure4", "Bank", "Dining", "Philo"}
	methods := []string{"", "steering", "fallback"}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		fp := fakeHash(i)
		method := methods[i%len(methods)]
		sums := []CycleSummary{{
			Fingerprint: fp,
			Signature:   fmt.Sprintf("sig-%d", i),
			Confirmed:   method != "",
			Method:      method,
		}}
		// Occurrences vary 1..4, spread over time.
		for occ := 0; occ <= i%4; occ++ {
			now := t0.Add(time.Duration(i) * time.Hour).Add(time.Duration(occ) * time.Minute)
			src := "workload:" + workloads[(i+occ)%len(workloads)]
			if _, err := s.RecordSummaries(ctx, fakeHash(10_000+i), sums, src, now); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s, t0
}

// bruteForceQuery filters and sorts the full listing with the naive
// algorithm — the oracle Query must agree with.
func bruteForceQuery(s *Store, opts QueryOptions) []string {
	var out []DefectRecord
	for _, rec := range s.Defects() {
		if matchDefect(rec, opts) {
			out = append(out, rec.clone())
		}
	}
	sortDefects(out, opts.Sort)
	fps := make([]string, len(out))
	for i, rec := range out {
		fps[i] = rec.Fingerprint
	}
	return fps
}

// TestQueryMatchesBruteForce cross-checks Query against the naive
// filter-everything oracle over randomized option combinations.
func TestQueryMatchesBruteForce(t *testing.T) {
	s, t0 := buildQueryCorpus(t, 60)
	rng := rand.New(rand.NewSource(7))
	classes := []string{"", ClassCandidate, ClassConfirmed}
	workloads := []string{"", "Figure4", "Bank", "Dining", "nosuch"}
	methods := []string{"", "steering", "fallback"}
	sorts := []string{"", "occurrences", "last_seen", "first_seen", "rank"}
	for trial := 0; trial < 200; trial++ {
		opts := QueryOptions{
			Class:          classes[rng.Intn(len(classes))],
			Workload:       workloads[rng.Intn(len(workloads))],
			Method:         methods[rng.Intn(len(methods))],
			Sort:           sorts[rng.Intn(len(sorts))],
			MinOccurrences: rng.Intn(4),
		}
		if rng.Intn(2) == 0 {
			opts.Since = t0.Add(time.Duration(rng.Intn(70)) * time.Hour)
		}
		if rng.Intn(3) == 0 {
			opts.Until = t0.Add(time.Duration(rng.Intn(70)) * time.Hour)
		}
		want := bruteForceQuery(s, opts)
		res := s.Query(opts)
		if res.Total != len(want) {
			t.Fatalf("trial %d %+v: total = %d, want %d", trial, opts, res.Total, len(want))
		}
		got := make([]string, len(res.Defects))
		for i, rec := range res.Defects {
			got[i] = rec.Fingerprint
		}
		// rank sort uses wall-clock recency; order can tie-shift between
		// the two calls, so compare as sets for rank and exactly otherwise.
		if opts.Sort == "rank" {
			sort.Strings(got)
			w := append([]string(nil), want...)
			sort.Strings(w)
			want = w
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d %+v:\n got %v\nwant %v", trial, opts, got, want)
			}
		}
	}
}

// TestQueryPagination: limit/offset slice the sorted match set stably
// and total always reports the full count.
func TestQueryPagination(t *testing.T) {
	s, _ := buildQueryCorpus(t, 25)
	full := s.Query(QueryOptions{Sort: "occurrences"})
	if full.Total != 25 || len(full.Defects) != 25 {
		t.Fatalf("full query = %d/%d, want 25/25", len(full.Defects), full.Total)
	}
	var paged []string
	for offset := 0; offset < full.Total; offset += 7 {
		res := s.Query(QueryOptions{Sort: "occurrences", Limit: 7, Offset: offset})
		if res.Total != 25 {
			t.Fatalf("page total = %d, want 25", res.Total)
		}
		if len(res.Defects) > 7 {
			t.Fatalf("page size = %d, want <= 7", len(res.Defects))
		}
		for _, rec := range res.Defects {
			paged = append(paged, rec.Fingerprint)
		}
	}
	if len(paged) != 25 {
		t.Fatalf("pages covered %d records, want 25", len(paged))
	}
	for i, rec := range full.Defects {
		if paged[i] != rec.Fingerprint {
			t.Fatalf("page order diverges at %d: %s vs %s", i, paged[i], rec.Fingerprint)
		}
	}
	// Offset past the end is an empty page, not an error.
	if res := s.Query(QueryOptions{Offset: 1000}); len(res.Defects) != 0 || res.Total != 25 {
		t.Errorf("past-the-end page = %d records total %d", len(res.Defects), res.Total)
	}
}

// TestQuerySortOrders spot-checks each sort key's direction.
func TestQuerySortOrders(t *testing.T) {
	s, _ := buildQueryCorpus(t, 30)
	check := func(name string, cmp func(a, b DefectRecord) bool) {
		t.Helper()
		res := s.Query(QueryOptions{Sort: name})
		for i := 1; i < len(res.Defects); i++ {
			if cmp(res.Defects[i-1], res.Defects[i]) {
				t.Errorf("sort %q violated at %d", name, i)
				return
			}
		}
	}
	check("occurrences", func(a, b DefectRecord) bool { return a.Occurrences < b.Occurrences })
	check("last_seen", func(a, b DefectRecord) bool { return a.LastSeen.Before(b.LastSeen) })
	check("first_seen", func(a, b DefectRecord) bool { return a.FirstSeen.After(b.FirstSeen) })
	check("rank", func(a, b DefectRecord) bool { return a.Rank < b.Rank })
}

// TestQueryRankFillsScore: query results carry the corpus rank, and a
// confirmed defect outranks an unconfirmed one.
func TestQueryRankFillsScore(t *testing.T) {
	s, _ := buildQueryCorpus(t, 10)
	res := s.Query(QueryOptions{Sort: "rank"})
	if len(res.Defects) == 0 {
		t.Fatal("no records")
	}
	for _, rec := range res.Defects {
		if rec.Rank == 0 {
			t.Errorf("record %s has zero rank", rec.Fingerprint[:12])
		}
	}
	var bestCandidate, worstConfirmed float64 = -1, -1
	for _, rec := range res.Defects {
		if rec.Class == ClassConfirmed && (worstConfirmed < 0 || rec.Rank < worstConfirmed) {
			worstConfirmed = rec.Rank
		}
		if rec.Class == ClassCandidate && rec.Rank > bestCandidate {
			bestCandidate = rec.Rank
		}
	}
	if worstConfirmed >= 0 && bestCandidate >= 0 && worstConfirmed <= bestCandidate {
		t.Errorf("confirmed defect (%f) ranked below candidate (%f)", worstConfirmed, bestCandidate)
	}
}

// TestQueryEqualityUsesPostings: a workload filter must not touch
// records without that workload — verified behaviorally (unknown value
// yields an instant empty result even on a populated corpus).
func TestQueryEqualityUsesPostings(t *testing.T) {
	s, _ := buildQueryCorpus(t, 20)
	if res := s.Query(QueryOptions{Workload: "nosuch"}); res.Total != 0 {
		t.Errorf("unknown workload matched %d records", res.Total)
	}
	if res := s.Query(QueryOptions{Class: ClassConfirmed, Workload: "nosuch"}); res.Total != 0 {
		t.Errorf("unknown workload with class matched %d records", res.Total)
	}
	// The candidate set for an equality filter is the posting, not the
	// corpus: peek under the hood to keep the sublinear promise honest.
	s.mu.Lock()
	cands := s.candidatesLocked(QueryOptions{Workload: "Figure4"})
	total := len(s.defects)
	s.mu.Unlock()
	if len(cands) >= total {
		t.Errorf("workload posting did not narrow candidates: %d of %d", len(cands), total)
	}
}
