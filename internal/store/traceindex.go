package store

// traceIndex is the in-memory trace table, sharded 256 ways on the
// first hash byte — the same fan-out as the on-disk layout. Each shard
// is either a materialized map or a raw, still-encoded section of the
// index snapshot (fixed 49-byte entries, see index.go). A warm Open
// only slices the snapshot into raw sections; a shard decodes on first
// access, so opening a million-trace corpus costs O(snapshot bytes)
// rather than a million map inserts, and a process that touches a
// handful of shards never pays for the rest. Aggregate count and byte
// totals ride in the snapshot's shard table, keeping Stats O(1) either
// way.
//
// All methods assume the caller holds Store.mu.

import (
	"encoding/binary"
	"encoding/hex"
	"time"
)

// traceShards is the fan-out; shardIndex depends on two hex digits.
const traceShards = 256

// traceEntrySize is the fixed encoded size of one trace entry: 32-byte
// raw hash, 8-byte blob size, 1 flags byte, 8-byte mod-time nanos.
const traceEntrySize = 32 + 8 + 1 + 8

type traceIndex struct {
	shards [traceShards]traceShard
	n      int
	bytes  int64
}

type traceShard struct {
	// raw holds this shard's still-encoded snapshot section; nil once
	// materialized. rawN/rawBytes mirror the shard-table totals so the
	// index answers aggregates without decoding.
	raw      []byte
	rawN     int
	rawBytes int64
	m        map[string]TraceInfo
}

// shardIndex maps a validated lowercase-hex hash to its shard number.
func shardIndex(hash string) int {
	return int(hexNibble(hash[0])<<4 | hexNibble(hash[1]))
}

func hexNibble(c byte) byte {
	if c >= 'a' {
		return c - 'a' + 10
	}
	return c - '0'
}

// shard returns the (materialized) shard owning hash.
func (ix *traceIndex) shard(hash string) *traceShard {
	ts := &ix.shards[shardIndex(hash)]
	ts.materialize()
	return ts
}

// materialize decodes the raw section into the shard map. Entries are
// fixed-width and come from a checksummed snapshot, so decoding cannot
// fail; a short trailing fragment (impossible absent an encoder bug) is
// ignored.
func (ts *traceShard) materialize() {
	if ts.m != nil {
		return
	}
	ts.m = make(map[string]TraceInfo, ts.rawN)
	for raw := ts.raw; len(raw) >= traceEntrySize; raw = raw[traceEntrySize:] {
		hash := hex.EncodeToString(raw[:32])
		ts.m[hash] = TraceInfo{
			Hash:    hash,
			Bytes:   int64(binary.BigEndian.Uint64(raw[32:40])),
			flat:    raw[40]&1 != 0,
			ModTime: time.Unix(0, int64(binary.BigEndian.Uint64(raw[41:49]))),
		}
	}
	ts.raw = nil
}

// encodeEntry appends one fixed-width entry; rawHash is the 32-byte
// decoded hash.
func encodeEntry(dst []byte, rawHash []byte, info TraceInfo) []byte {
	var tmp [traceEntrySize]byte
	copy(tmp[:32], rawHash)
	binary.BigEndian.PutUint64(tmp[32:40], uint64(info.Bytes))
	if info.flat {
		tmp[40] = 1
	}
	binary.BigEndian.PutUint64(tmp[41:49], uint64(info.ModTime.UnixNano()))
	return append(dst, tmp[:]...)
}

func (ix *traceIndex) get(hash string) (TraceInfo, bool) {
	info, ok := ix.shard(hash).m[hash]
	return info, ok
}

func (ix *traceIndex) put(info TraceInfo) {
	ts := ix.shard(info.Hash)
	if old, ok := ts.m[info.Hash]; ok {
		ix.bytes += info.Bytes - old.Bytes
	} else {
		ix.n++
		ix.bytes += info.Bytes
	}
	ts.m[info.Hash] = info
}

func (ix *traceIndex) del(hash string) {
	ts := ix.shard(hash)
	if old, ok := ts.m[hash]; ok {
		ix.n--
		ix.bytes -= old.Bytes
		delete(ts.m, hash)
	}
}

func (ix *traceIndex) len() int          { return ix.n }
func (ix *traceIndex) totalBytes() int64 { return ix.bytes }

// each calls fn for every entry, materializing all shards.
func (ix *traceIndex) each(fn func(TraceInfo)) {
	for i := range ix.shards {
		ts := &ix.shards[i]
		ts.materialize()
		for _, info := range ts.m {
			fn(info)
		}
	}
}

// reset empties the index (snapshot decode failure fallback).
func (ix *traceIndex) reset() {
	*ix = traceIndex{}
}
