package store

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// flattenCorpus rewrites a sharded corpus into the pre-sharding layout:
// every blob and defect record moved up to the top of its kind
// directory, shard directories removed, index snapshot deleted — the
// exact on-disk shape an old -data-dir has.
func flattenCorpus(t *testing.T, dir string) {
	t.Helper()
	for _, kind := range []string{"traces", "defects"} {
		root := filepath.Join(dir, kind)
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			shard := filepath.Join(root, e.Name())
			files, err := os.ReadDir(shard)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range files {
				if err := os.Rename(filepath.Join(shard, f.Name()), filepath.Join(root, f.Name())); err != nil {
					t.Fatal(err)
				}
			}
			if err := os.Remove(shard); err != nil {
				t.Fatal(err)
			}
		}
	}
	os.Remove(filepath.Join(dir, "index.bin"))
	os.Remove(filepath.Join(dir, "index.dirty"))
}

// seedCorpus opens a store at dir, ingests one Figure4 trace plus its
// defects, closes it, and returns the trace hash and defect count.
func seedCorpus(t *testing.T, dir string) (hash string, defects int) {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tr, _ := recordedTrace(t, "Figure4", 1)
	hash, _, err = s.PutTrace(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Record(ctx, hash, analyze(t, tr), "workload:Figure4", time.Now()); err != nil {
		t.Fatal(err)
	}
	defects = len(s.Defects())
	if defects == 0 {
		t.Fatal("seed produced no defects")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return hash, defects
}

// TestFlatCorpusReadThrough proves an old flat-layout -data-dir keeps
// working: Open indexes the flat files and every read serves unchanged
// results.
func TestFlatCorpusReadThrough(t *testing.T) {
	dir := t.TempDir()
	hash, wantDefects := seedCorpus(t, dir)
	flattenCorpus(t, dir)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.HasTrace(hash) {
		t.Fatal("flat trace not indexed")
	}
	if _, err := s.GetTrace(hash); err != nil {
		t.Fatalf("flat trace not readable: %v", err)
	}
	if got := len(s.Defects()); got != wantDefects {
		t.Errorf("flat defects = %d, want %d", got, wantDefects)
	}
}

// TestLazyTraceMigration: opening a flat-layout blob moves it into its
// shard, and the flat path empties out.
func TestLazyTraceMigration(t *testing.T) {
	dir := t.TempDir()
	hash, _ := seedCorpus(t, dir)
	flattenCorpus(t, dir)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	flat := filepath.Join(dir, "traces", hash+traceExt)
	sharded := filepath.Join(dir, "traces", hash[:2], hash+traceExt)
	if _, err := os.Stat(flat); err != nil {
		t.Fatalf("precondition: blob not flat: %v", err)
	}
	if _, err := s.GetTrace(hash); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sharded); err != nil {
		t.Errorf("blob not migrated to shard: %v", err)
	}
	if _, err := os.Stat(flat); !os.IsNotExist(err) {
		t.Error("flat blob still present after migration")
	}
	// Migrated blob still reads.
	if _, err := s.GetTrace(hash); err != nil {
		t.Errorf("migrated blob unreadable: %v", err)
	}
}

// TestLazyTraceMigrationOnDedup: re-putting a trace the flat corpus
// already holds both dedups and migrates it.
func TestLazyTraceMigrationOnDedup(t *testing.T) {
	dir := t.TempDir()
	hash, _ := seedCorpus(t, dir)
	flattenCorpus(t, dir)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr, _ := recordedTrace(t, "Figure4", 1)
	h2, created, err := s.PutTrace(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if created || h2 != hash {
		t.Fatalf("dedup put: created=%v hash=%s want %s", created, h2, hash)
	}
	if _, err := os.Stat(filepath.Join(dir, "traces", hash[:2], hash+traceExt)); err != nil {
		t.Errorf("dedup hit did not migrate the blob: %v", err)
	}
}

// TestLazyDefectMigration: updating a flat-layout defect record writes
// it at its sharded path and removes the flat file.
func TestLazyDefectMigration(t *testing.T) {
	dir := t.TempDir()
	hash, _ := seedCorpus(t, dir)
	flattenCorpus(t, dir)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := s.Defects()
	fp := recs[0].Fingerprint
	wantOcc := recs[0].Occurrences + 1
	tr, _ := recordedTrace(t, "Figure4", 1)
	if _, err := s.Record(context.Background(), hash, analyze(t, tr), "workload:Figure4", time.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "defects", fp[:2], fp+".json")); err != nil {
		t.Errorf("defect not migrated to shard: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "defects", fp+".json")); !os.IsNotExist(err) {
		t.Error("flat defect record still present after update")
	}
	d, ok := s.Defect(fp)
	if !ok || d.Occurrences != wantOcc {
		t.Errorf("defect after migration: ok=%v occ=%d want %d", ok, d.Occurrences, wantOcc)
	}
}

// TestCrashDuringMigrationDuplicate: tooling that resolved a partial
// migration by copying can leave a blob at both paths. The cold scan
// keeps the sharded copy and sweeps the flat one.
func TestCrashDuringMigrationDuplicate(t *testing.T) {
	dir := t.TempDir()
	hash, _ := seedCorpus(t, dir)

	sharded := filepath.Join(dir, "traces", hash[:2], hash+traceExt)
	flat := filepath.Join(dir, "traces", hash+traceExt)
	data, err := os.ReadFile(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(flat, data, 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, "index.bin")) // force the scan

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.HasTrace(hash) {
		t.Fatal("trace lost resolving the duplicate")
	}
	if _, err := os.Stat(flat); !os.IsNotExist(err) {
		t.Error("flat duplicate not swept")
	}
	if _, err := s.GetTrace(hash); err != nil {
		t.Errorf("trace unreadable after duplicate resolution: %v", err)
	}
}

// TestStaleSnapshotFlatHint: a snapshot can record a blob as flat when
// the disk has since migrated it (or vice versa). Reads must fall back
// to the other path instead of failing.
func TestStaleSnapshotFlatHint(t *testing.T) {
	dir := t.TempDir()
	hash, _ := seedCorpus(t, dir)
	flattenCorpus(t, dir)

	// Cold open indexes the blob as flat; Close snapshots that.
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Behind the snapshot's back, migrate the blob on disk.
	flat := filepath.Join(dir, "traces", hash+traceExt)
	sharded := filepath.Join(dir, "traces", hash[:2], hash+traceExt)
	if err := os.MkdirAll(filepath.Dir(sharded), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(flat, sharded); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	warm, _ := s2.OpenInfo()
	if !warm {
		t.Fatal("expected a warm open (snapshot should validate)")
	}
	if _, err := s2.GetTrace(hash); err != nil {
		t.Errorf("stale flat hint broke the read: %v", err)
	}
}
