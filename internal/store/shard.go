package store

// Sharded corpus layout. At the "millions of traces" scale the ROADMAP
// targets, one flat directory per kind stops working: directory lookups
// degrade, a full listing is O(corpus), and parallel scans have nothing
// to fan out over. Blobs therefore live two levels deep, bucketed by
// the first byte of their content address:
//
//	traces/ab/<sha256>.wtrc
//	defects/ab/<fp>.json
//
// with 256 shards per kind. Corpora written before sharding keep their
// files directly under traces/ and defects/; Open indexes both
// locations transparently and files migrate to their shard lazily — a
// trace when it is next opened (or its put dedups), a defect record
// when it is next updated. Migration is a same-filesystem rename, so a
// crash at any point leaves the file wholly at exactly one of the two
// paths, and the scanner accepts either.

import (
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"
)

// shardOf returns the shard bucket of a content address: its first two
// hex characters.
func shardOf(hash string) string { return hash[:2] }

// flatTracePath is the pre-sharding location of a trace blob.
func (s *Store) flatTracePath(hash string) string {
	return filepath.Join(s.tracesDir(), hash+traceExt)
}

// shardTracePath is the sharded location of a trace blob.
func (s *Store) shardTracePath(hash string) string {
	return filepath.Join(s.tracesDir(), shardOf(hash), hash+traceExt)
}

// tracePath resolves a blob's current location from its index entry.
func (s *Store) tracePath(hash string, flat bool) string {
	if flat {
		return s.flatTracePath(hash)
	}
	return s.shardTracePath(hash)
}

// flatDefectPath is the pre-sharding location of a defect record.
func (s *Store) flatDefectPath(fp string) string {
	return filepath.Join(s.defectsDir(), fp+".json")
}

// shardDefectPath is the sharded location of a defect record.
func (s *Store) shardDefectPath(fp string) string {
	return filepath.Join(s.defectsDir(), shardOf(fp), fp+".json")
}

// migrateTraceLocked moves a flat-layout blob into its shard. Purely an
// optimization: every failure mode leaves the blob readable at one of
// the two paths, so errors are swallowed and the entry just stays flat.
// Caller holds s.mu.
func (s *Store) migrateTraceLocked(hash string) {
	info, ok := s.traces.get(hash)
	if !ok || !info.flat {
		return
	}
	dst := s.shardTracePath(hash)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return
	}
	if err := os.Rename(s.flatTracePath(hash), dst); err != nil {
		return
	}
	// The on-disk layout no longer matches the last index snapshot.
	s.markDirtyLocked()
	info.flat = false
	s.traces.put(info)
}

// scanWorkers is the fan-out of a cold corpus scan.
func scanWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// forEachShard runs fn over every shard subdirectory name in dir on a
// worker pool, returning the non-directory (flat legacy) entries for
// the caller to handle inline. Stale ".tmp-*" files at the top level
// are swept here; fn sweeps its own shard.
func forEachShard(dir string, fn func(shard string)) ([]fs.DirEntry, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var flat []fs.DirEntry
	shards := make(chan string, len(entries))
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, ".tmp-"):
			os.Remove(filepath.Join(dir, name))
		case e.IsDir():
			shards <- name
		default:
			flat = append(flat, e)
		}
	}
	close(shards)
	var wg sync.WaitGroup
	for i := 0; i < scanWorkers(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for shard := range shards {
				fn(shard)
			}
		}()
	}
	wg.Wait()
	return flat, nil
}

// scanTraces rebuilds the trace index from the filesystem: the cold
// path of Open, fanned out over the shard directories. Flat legacy
// entries are indexed too; a blob present at both paths (a corpus
// copied with tooling that resolved a partial migration by duplicating)
// keeps the sharded copy and sweeps the flat one.
func (s *Store) scanTraces() error {
	var mu sync.Mutex
	flat, err := forEachShard(s.tracesDir(), func(shard string) {
		dir := filepath.Join(s.tracesDir(), shard)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return
		}
		for _, e := range entries {
			name := e.Name()
			if strings.HasPrefix(name, ".tmp-") {
				os.Remove(filepath.Join(dir, name))
				continue
			}
			hash, ok := strings.CutSuffix(name, traceExt)
			if !ok || !validHash(hash) || shardOf(hash) != shard {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			mu.Lock()
			s.traces.put(TraceInfo{Hash: hash, Bytes: info.Size(), ModTime: info.ModTime()})
			mu.Unlock()
		}
	})
	if err != nil {
		return err
	}
	for _, e := range flat {
		hash, ok := strings.CutSuffix(e.Name(), traceExt)
		if !ok || !validHash(hash) {
			continue
		}
		if _, dup := s.traces.get(hash); dup {
			os.Remove(s.flatTracePath(hash))
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		s.traces.put(TraceInfo{Hash: hash, Bytes: info.Size(), ModTime: info.ModTime(), flat: true})
	}
	return nil
}

// scanDefects rebuilds the defect index from the filesystem, in
// parallel per shard. Unreadable or mismatched records are skipped
// rather than fatal, so one corrupt file cannot take the corpus down.
func (s *Store) scanDefects() error {
	var mu sync.Mutex
	readRecord := func(path, fp string) {
		data, err := os.ReadFile(path)
		if err != nil {
			return
		}
		var rec DefectRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.Fingerprint != fp {
			return // corrupt record: skip, never fatal
		}
		mu.Lock()
		s.defects[fp] = &rec
		mu.Unlock()
	}
	flat, err := forEachShard(s.defectsDir(), func(shard string) {
		dir := filepath.Join(s.defectsDir(), shard)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return
		}
		for _, e := range entries {
			name := e.Name()
			if strings.HasPrefix(name, ".tmp-") {
				os.Remove(filepath.Join(dir, name))
				continue
			}
			fp, ok := strings.CutSuffix(name, ".json")
			if !ok || !validHash(fp) || shardOf(fp) != shard {
				continue
			}
			readRecord(filepath.Join(dir, name), fp)
		}
	})
	if err != nil {
		return err
	}
	for _, e := range flat {
		fp, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok || !validHash(fp) {
			continue
		}
		if _, dup := s.defects[fp]; dup {
			os.Remove(s.flatDefectPath(fp))
			continue
		}
		readRecord(s.flatDefectPath(fp), fp)
		if _, ok := s.defects[fp]; ok {
			s.flatDefects[fp] = true
		}
	}
	return nil
}

// touchModTime is a seam for GC tests: it backdates a blob's both
// on-disk and indexed modification time.
func (s *Store) touchModTime(hash string, t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.traces.get(hash)
	if !ok {
		return
	}
	os.Chtimes(s.tracePath(hash, info.flat), t, t)
	info.ModTime = t
	s.traces.put(info)
}
