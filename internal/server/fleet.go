package server

// The coordinator half of the wolfd fleet (wolfd -role=coordinator).
// Admission, validation and persistence are exactly the single-process
// path; what changes is execution: instead of local workers draining
// the queue, registered analyzer nodes pull jobs over HTTP under
// time-bounded leases (internal/fleet holds the wire types and the
// analyzer side).
//
// Failure rules, in one place:
//
//   - A node that misses heartbeats past HeartbeatTimeout is marked
//     lost; every lease it holds is revoked and the jobs reassigned.
//   - A lease that expires unrenewed is revoked the same way.
//   - Reassignment is bounded: a job delivered MaxDeliveries times
//     without a result is terminal-failed with reason
//     "reassign-exhausted" — a poison job cannot ping-pong forever.
//   - A lease renewed more than MaxRenewals times marks its holder a
//     straggler: the job is re-offered to a second node while the
//     first keeps running, and the first result to arrive wins. Late
//     results — including one from an expired lease — are accepted
//     whenever the job is still non-terminal, and reported as
//     duplicates otherwise.
//   - On restart, journal rehydration re-queues leased-but-unfinished
//     jobs for fresh delivery (the delivery budget survives via the
//     persisted attempt count) instead of failing them like the
//     single-process path does.

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"wolf/internal/fingerprint"
	"wolf/internal/fleet"
	"wolf/internal/obs"
	"wolf/internal/store"
	"wolf/internal/trace"
)

// Server roles. Analyzer nodes are not servers — they are clients of a
// coordinator (internal/fleet.Analyzer) — so the only roles here are
// the default single process and the coordinator.
const (
	RoleSingle      = ""
	RoleCoordinator = "coordinator"
)

// fleetNode is one registered analyzer.
type fleetNode struct {
	id         string
	name       string
	registered time.Time
	lastSeen   time.Time
	lost       bool
	completed  int64
	failed     int64
}

// jobLease is one live grant of a job to a node. A job normally has
// one; a straggler re-offer adds a second.
type jobLease struct {
	node     string
	expiry   time.Time
	renewals int
}

// fleetState is the coordinator's mutable fleet bookkeeping. One mutex
// guards all of it — fleet traffic is control-plane (a few requests
// per second per node), not data-plane.
type fleetState struct {
	s *Server

	mu      sync.Mutex
	seq     int
	nodes   map[string]*fleetNode
	pending []*Job // reassigned/rehydrated jobs, served before the queue
	leases  map[string][]*jobLease
	// reoffered marks jobs already re-offered for straggling, so one
	// slow lease triggers at most one extra delivery.
	reoffered map[string]bool
}

func newFleetState(s *Server) *fleetState {
	return &fleetState{
		s:         s,
		nodes:     make(map[string]*fleetNode),
		leases:    make(map[string][]*jobLease),
		reoffered: make(map[string]bool),
	}
}

// janitorTick is how often lease expiry and node liveness are checked:
// a quarter of the shortest deadline, clamped to [5ms, 1s].
func (f *fleetState) janitorTick() time.Duration {
	d := f.s.cfg.LeaseTTL
	if f.s.cfg.HeartbeatTimeout < d {
		d = f.s.cfg.HeartbeatTimeout
	}
	d /= 4
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// janitor is the coordinator's reaper goroutine: it expires silent
// nodes and unrenewed leases until shutdown.
func (f *fleetState) janitor() {
	defer f.s.wg.Done()
	tick := time.NewTicker(f.janitorTick())
	defer tick.Stop()
	for {
		select {
		case <-f.s.streamStop:
			return
		case <-tick.C:
			f.sweep(time.Now())
		}
	}
}

// sweep expires nodes and leases as of now. Exposed separately from
// the janitor so tests can drive time explicitly.
func (f *fleetState) sweep(now time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range f.nodes {
		if n.lost || now.Sub(n.lastSeen) <= f.s.cfg.HeartbeatTimeout {
			continue
		}
		n.lost = true
		f.s.metrics.NodesLost.Add(1)
		f.s.metrics.NodesAlive.Add(-1)
		f.s.cfg.Logger.Warn("node lost: missed heartbeats", "node", n.id, "name", n.name,
			"last_seen", n.lastSeen, "timeout", f.s.cfg.HeartbeatTimeout)
		f.s.event(obs.Event{Kind: evNodeLost, Msg: "missed heartbeats",
			Attrs: map[string]string{"node": n.id, "name": n.name}})
		for jobID, ls := range f.leases {
			kept := ls[:0]
			revoked := false
			for _, l := range ls {
				if l.node == n.id {
					revoked = true
					continue
				}
				kept = append(kept, l)
			}
			if revoked {
				f.setLeases(jobID, kept)
				f.maybeReassignLocked(jobID, n.id, "node lost")
			}
		}
	}
	for jobID, ls := range f.leases {
		kept := ls[:0]
		var from string
		for _, l := range ls {
			if now.After(l.expiry) {
				from = l.node
				continue
			}
			kept = append(kept, l)
		}
		if len(kept) != len(ls) {
			f.setLeases(jobID, kept)
			f.maybeReassignLocked(jobID, from, "lease expired")
		}
	}
}

// setLeases replaces a job's lease set, dropping the map entry when it
// empties. Caller holds f.mu.
func (f *fleetState) setLeases(jobID string, ls []*jobLease) {
	if len(ls) == 0 {
		delete(f.leases, jobID)
		return
	}
	f.leases[jobID] = ls
}

// maybeReassignLocked requeues a job whose lease was revoked — unless
// another node still holds one (straggler re-offer), the job already
// finished (late first-result win), or the delivery budget is spent.
// Caller holds f.mu.
func (f *fleetState) maybeReassignLocked(jobID, fromNode, cause string) {
	if len(f.leases[jobID]) > 0 {
		return // a second holder is still working on it
	}
	j, ok := f.s.jobs.get(jobID)
	if !ok || j.terminal() {
		return
	}
	if j.Attempts() >= f.s.cfg.MaxDeliveries {
		f.failExhaustedLocked(j)
		return
	}
	j.unlease()
	f.pending = append(f.pending, j)
	delete(f.reoffered, jobID)
	f.s.metrics.JobsReassigned.Add(1)
	f.s.persistJob(j)
	f.s.cfg.Logger.Warn("job reassigned", "job", j.ID, "from", fromNode, "cause", cause,
		"attempts", j.Attempts())
	f.s.jobEvent(evJobReassigned, j, cause, map[string]string{"from": fromNode})
}

// failExhaustedLocked terminal-fails a job whose redelivery budget is
// spent. Caller holds f.mu.
func (f *fleetState) failExhaustedLocked(j *Job) {
	j.fail(fmt.Sprintf("delivered %d times without completion (reassign budget exhausted)",
		j.Attempts()))
	f.s.metrics.Fail(FailReassign)
	delete(f.leases, j.ID)
	delete(f.reoffered, j.ID)
	f.s.persistJob(j)
	f.s.cfg.Logger.Error("job failed: reassign budget exhausted", "job", j.ID,
		"attempts", j.Attempts())
	f.s.jobEvent(evJobFailed, j, "reassign budget exhausted",
		map[string]string{"reason": string(FailReassign)})
}

// nextJobLocked pops the next deliverable job: reassigned/rehydrated
// work first, then the admission queue. Jobs that reached a terminal
// state while waiting (shed, drained, exhausted) are skipped. Caller
// holds f.mu.
func (f *fleetState) nextJobLocked() *Job {
	for len(f.pending) > 0 {
		j := f.pending[0]
		f.pending = f.pending[1:]
		if j.terminal() {
			continue
		}
		if j.Attempts() >= f.s.cfg.MaxDeliveries {
			f.failExhaustedLocked(j)
			continue
		}
		return j
	}
	for {
		select {
		case j := <-f.s.queue:
			if j == nil {
				return nil // queue closed: draining
			}
			f.s.metrics.QueueDepth.Add(-1)
			if j.terminal() {
				continue
			}
			if j.Attempts() >= f.s.cfg.MaxDeliveries {
				f.failExhaustedLocked(j)
				continue
			}
			return j
		default:
			return nil
		}
	}
}

// requeueRestored pushes journal-rehydrated jobs into the pending list
// at startup (before any analyzer can pull).
func (f *fleetState) requeueRestored(jobs []*Job) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pending = append(f.pending, jobs...)
}

// workPayload builds the grant for one job: the trace blob (from
// memory, or the corpus after a restart) or the workload the analyzer
// records itself.
func (f *fleetState) workPayload(j *Job) (fleet.WorkView, error) {
	v := j.view()
	w := fleet.WorkView{
		Job:       j.ID,
		Source:    v.Source,
		TraceID:   v.Trace,
		TraceHash: v.TraceHash,
	}
	if tr := j.Trace(); tr != nil {
		hash, data, err := store.HashTrace(tr)
		if err != nil {
			return w, err
		}
		w.TraceB64 = base64.StdEncoding.EncodeToString(data)
		w.TraceHash = hash
		return w, nil
	}
	if v.TraceHash != "" && f.s.cfg.Store != nil {
		rc, _, err := f.s.cfg.Store.OpenTrace(v.TraceHash)
		if err == nil {
			data, rerr := io.ReadAll(rc)
			rc.Close()
			if rerr != nil {
				return w, rerr
			}
			w.TraceB64 = base64.StdEncoding.EncodeToString(data)
			return w, nil
		}
	}
	if name, ok := strings.CutPrefix(v.Source, "workload:"); ok {
		w.Workload = name
		w.Seed = j.WorkloadSeed()
		w.SeedTries = f.s.cfg.SeedTries
		return w, nil
	}
	return w, fmt.Errorf("job %s has no deliverable work: trace not in memory or corpus", j.ID)
}

// nodeViews snapshots the registry for GET /v1/nodes, stable order.
func (f *fleetState) nodeViews() []fleet.NodeView {
	f.mu.Lock()
	defer f.mu.Unlock()
	leased := make(map[string]int)
	for _, ls := range f.leases {
		for _, l := range ls {
			leased[l.node]++
		}
	}
	out := make([]fleet.NodeView, 0, len(f.nodes))
	for _, n := range f.nodes {
		state := "alive"
		if n.lost {
			state = "lost"
		}
		nv := fleet.NodeView{
			ID:         n.id,
			Name:       n.name,
			State:      state,
			Leased:     leased[n.id],
			Completed:  n.completed,
			Failed:     n.failed,
			Registered: n.registered.UTC().Format(time.RFC3339Nano),
		}
		if !n.lastSeen.IsZero() {
			nv.LastHeartbeat = n.lastSeen.UTC().Format(time.RFC3339Nano)
		}
		out = append(out, nv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// counts returns (known, alive, leased jobs, pending) for status
// surfaces.
func (f *fleetState) counts() (nodes, alive, leased, pending int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	nodes = len(f.nodes)
	for _, n := range f.nodes {
		if !n.lost {
			alive++
		}
	}
	leased = len(f.leases)
	pending = len(f.pending)
	return
}

// writePrometheus renders the per-node leased gauge (only when nodes
// exist — an empty family would fail the exposition linter).
func (f *fleetState) writePrometheus(w io.Writer) {
	views := f.nodeViews()
	if len(views) == 0 {
		return
	}
	name := "wolfd_node_leased"
	fmt.Fprintf(w, "# HELP %s Jobs currently leased, per analyzer node.\n# TYPE %s gauge\n", name, name)
	for _, nv := range views {
		fmt.Fprintf(w, "%s{%s,%s} %d\n", name, obs.Label("node", nv.ID), obs.Label("name", nv.Name), nv.Leased)
	}
}

// requireFleet guards the coordinator-only endpoints.
func (s *Server) requireFleet(w http.ResponseWriter) (*fleetState, bool) {
	if s.fleet == nil {
		httpError(w, http.StatusServiceUnavailable,
			"not a coordinator: start wolfd with -role=coordinator")
		return nil, false
	}
	return s.fleet, true
}

// handleNodeRegister is POST /v1/nodes: admit an analyzer and hand it
// the fleet timings.
func (s *Server) handleNodeRegister(w http.ResponseWriter, r *http.Request) {
	f, ok := s.requireFleet(w)
	if !ok {
		return
	}
	var req fleet.RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad register request: "+err.Error())
		return
	}
	if req.Name == "" {
		req.Name = "analyzer"
	}
	f.mu.Lock()
	f.seq++
	n := &fleetNode{
		id:         fmt.Sprintf("n-%04d", f.seq),
		name:       req.Name,
		registered: time.Now(),
		lastSeen:   time.Now(),
	}
	f.nodes[n.id] = n
	f.mu.Unlock()
	s.metrics.NodesRegistered.Add(1)
	s.metrics.NodesAlive.Add(1)
	s.cfg.Logger.Info("node joined", "node", n.id, "name", n.name)
	s.event(obs.Event{Kind: evNodeJoin, Msg: "node registered",
		Attrs: map[string]string{"node": n.id, "name": n.name}})
	writeJSON(w, http.StatusOK, fleet.RegisterView{
		ID:                     n.id,
		Name:                   n.name,
		HeartbeatMillis:        fleet.ToMillis(s.cfg.HeartbeatInterval),
		HeartbeatTimeoutMillis: fleet.ToMillis(s.cfg.HeartbeatTimeout),
		LeaseTTLMillis:         fleet.ToMillis(s.cfg.LeaseTTL),
	})
}

// handleNodeList is GET /v1/nodes. It answers in every role so wolfctl
// nodes works uniformly; a single-process wolfd just has none.
func (s *Server) handleNodeList(w http.ResponseWriter, r *http.Request) {
	views := []fleet.NodeView{}
	if s.fleet != nil {
		views = s.fleet.nodeViews()
	}
	writeJSON(w, http.StatusOK, map[string]any{"nodes": views})
}

// handleNodeHeartbeat is POST /v1/nodes/{id}/heartbeat. 404 for an
// unknown or lost node tells the analyzer to re-register.
func (s *Server) handleNodeHeartbeat(w http.ResponseWriter, r *http.Request) {
	f, ok := s.requireFleet(w)
	if !ok {
		return
	}
	f.mu.Lock()
	n, known := f.nodes[r.PathValue("id")]
	if known && !n.lost {
		n.lastSeen = time.Now()
	} else {
		known = false
	}
	f.mu.Unlock()
	if !known {
		httpError(w, http.StatusNotFound, "unknown node: re-register")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleWorkPull is POST /v1/work/pull: lease one job to the calling
// node. 204 when there is nothing to do; 404 sends an unknown or lost
// node back to registration.
func (s *Server) handleWorkPull(w http.ResponseWriter, r *http.Request) {
	f, ok := s.requireFleet(w)
	if !ok {
		return
	}
	var req fleet.PullRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad pull request: "+err.Error())
		return
	}
	if s.draining() {
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	f.mu.Lock()
	n, known := f.nodes[req.Node]
	if !known || n.lost {
		f.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown node: re-register")
		return
	}
	n.lastSeen = time.Now() // a pull is as alive as a heartbeat
	j := f.nextJobLocked()
	if j == nil {
		f.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	payload, err := f.workPayload(j)
	if err != nil {
		// Undeliverable (e.g. blob deleted from the corpus): terminal-fail
		// rather than spin it through the budget.
		j.fail("undeliverable: " + err.Error())
		s.metrics.Fail(FailError)
		s.persistJob(j)
		s.jobEvent(evJobFailed, j, err.Error(), map[string]string{"reason": string(FailError)})
		f.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	expiry := time.Now().Add(s.cfg.LeaseTTL)
	attempts := j.leaseTo(req.Node, expiry)
	if attempts == 1 {
		s.metrics.QueueWait.Observe(time.Since(j.CreatedAt()))
	}
	f.leases[j.ID] = append(f.leases[j.ID], &jobLease{node: req.Node, expiry: expiry})
	payload.Attempts = attempts
	payload.LeaseTTLMillis = fleet.ToMillis(s.cfg.LeaseTTL)
	f.mu.Unlock()
	s.persistJob(j)
	s.cfg.Logger.Info("job leased", "job", j.ID, "node", req.Node, "attempts", attempts)
	s.jobEvent(evJobStarted, j, "leased to node",
		map[string]string{"node": req.Node, "attempts": fmt.Sprint(attempts)})
	writeJSON(w, http.StatusOK, payload)
}

// handleWorkRenew is POST /v1/work/renew: extend a lease. 409 means
// the lease is gone (expired, reassigned, or the job finished) and the
// analyzer must abandon the run. Renewing past MaxRenewals flags the
// holder as a straggler and re-offers the job to a second node.
func (s *Server) handleWorkRenew(w http.ResponseWriter, r *http.Request) {
	f, ok := s.requireFleet(w)
	if !ok {
		return
	}
	var req fleet.RenewRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad renew request: "+err.Error())
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	j, found := s.jobs.get(req.Job)
	if !found || j.terminal() {
		httpError(w, http.StatusConflict, "lease lost: job finished")
		return
	}
	var l *jobLease
	for _, cand := range f.leases[req.Job] {
		if cand.node == req.Node {
			l = cand
			break
		}
	}
	if l == nil {
		httpError(w, http.StatusConflict, "lease lost: job reassigned")
		return
	}
	if n, known := f.nodes[req.Node]; known && !n.lost {
		n.lastSeen = time.Now()
	}
	l.expiry = time.Now().Add(s.cfg.LeaseTTL)
	l.renewals++
	j.setLeaseExpiry(l.expiry)
	s.metrics.LeaseRenewals.Add(1)
	if l.renewals > s.cfg.MaxRenewals && !f.reoffered[req.Job] && len(f.leases[req.Job]) == 1 {
		f.reoffered[req.Job] = true
		f.pending = append(f.pending, j)
		s.metrics.JobsReassigned.Add(1)
		s.cfg.Logger.Warn("straggler: job re-offered to a second node",
			"job", j.ID, "node", req.Node, "renewals", l.renewals)
		s.jobEvent(evJobReassigned, j, "straggler re-offer",
			map[string]string{"from": req.Node, "renewals": fmt.Sprint(l.renewals)})
	}
	writeJSON(w, http.StatusOK, fleet.RenewView{
		Job:            req.Job,
		LeaseTTLMillis: fleet.ToMillis(s.cfg.LeaseTTL),
		Renewals:       l.renewals,
	})
}

// handleWorkComplete is POST /v1/work/complete: accept a result.
// First result wins: the job is finished by whichever node delivers
// first — even one whose lease already expired (the work is done;
// discarding it would only waste the redelivery) — and later arrivals
// get "duplicate". Unknown jobs are a 404.
func (s *Server) handleWorkComplete(w http.ResponseWriter, r *http.Request) {
	f, ok := s.requireFleet(w)
	if !ok {
		return
	}
	var req fleet.CompleteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad complete request: "+err.Error())
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	j, found := s.jobs.get(req.Job)
	if !found {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if j.terminal() {
		s.metrics.DuplicateResults.Add(1)
		s.cfg.Logger.Info("duplicate result discarded", "job", j.ID, "node", req.Node)
		writeJSON(w, http.StatusOK, fleet.CompleteView{Job: j.ID, Result: "duplicate"})
		return
	}
	node := f.nodes[req.Node] // may be nil: lost+swept or pre-restart identity; result still counts
	if !req.OK {
		msg := req.Error
		if msg == "" {
			msg = "analyzer reported failure"
		}
		j.fail(msg)
		s.metrics.Fail(FailError)
		if node != nil {
			node.failed++
		}
		s.cfg.Logger.Warn("remote analysis failed", "job", j.ID, "node", req.Node, "err", msg)
		s.jobEvent(evJobFailed, j, msg, map[string]string{"reason": string(FailError), "node": req.Node})
	} else {
		s.acceptResultLocked(r.Context(), j, node, &req)
	}
	delete(f.leases, j.ID)
	delete(f.reoffered, j.ID)
	s.persistJob(j)
	writeJSON(w, http.StatusOK, fleet.CompleteView{Job: j.ID, Result: "accepted"})
}

// acceptResultLocked folds a winning remote result into the job, the
// corpus and the metrics. Caller holds f.mu.
func (s *Server) acceptResultLocked(ctx context.Context, j *Job, node *fleetNode, req *fleet.CompleteRequest) {
	// Workload jobs ship the trace they recorded; archive it so the
	// corpus holds what was analyzed, exactly like the local path.
	if req.TraceB64 != "" && s.cfg.Store != nil && j.TraceHash() == "" {
		if raw, err := base64.StdEncoding.DecodeString(req.TraceB64); err == nil {
			if tr, err := trace.ReadBinary(bytes.NewReader(raw)); err == nil {
				s.archiveTrace(ctx, j, tr)
			}
		}
	}
	if s.cfg.Store != nil && len(req.Summaries) > 0 {
		updated, err := s.cfg.Store.RecordSummaries(ctx, j.TraceHash(), req.Summaries, j.Source(), time.Now())
		if err != nil {
			s.cfg.Logger.Error("record remote defects", "job", j.ID, "err", err)
		}
		for _, fp := range updated {
			s.cfg.Logger.Info("defect recorded", "job", j.ID, "trace", j.TraceID(),
				"fingerprint", fingerprint.Short(fp))
			s.event(obs.Event{Kind: evStoreDefect, Job: j.ID, Trace: j.TraceID(),
				Msg: "defect recorded", Attrs: map[string]string{"fingerprint": fingerprint.Short(fp)}})
		}
	}
	j.finishRaw(req.Report)
	s.metrics.JobsCompleted.Add(1)
	s.metrics.Analysis.Observe(time.Since(j.CreatedAt()))
	if node != nil {
		node.completed++
	}
	s.cfg.Logger.Info("job done", "job", j.ID, "node", req.Node, "defect_summaries", len(req.Summaries))
	s.jobEvent(evJobDone, j, "completed by node", map[string]string{"node": req.Node})
}
