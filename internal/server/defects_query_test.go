package server

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"

	"wolf/internal/store"
)

// seedDefects records n synthetic defect records straight into the
// store, alternating workloads and confirming every third one.
func seedDefects(t *testing.T, st *store.Store, n int) {
	t.Helper()
	ctx := context.Background()
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		sum := store.CycleSummary{
			Fingerprint: fmt.Sprintf("%064x", i+1),
			Signature:   fmt.Sprintf("sig-%d", i),
		}
		if i%3 == 0 {
			sum.Confirmed = true
			sum.Method = "steering"
		}
		src := "workload:Alpha"
		if i%2 == 1 {
			src = "workload:Beta"
		}
		traceHash := fmt.Sprintf("%064x", 100_000+i)
		// i%4+1 occurrences so sorts have structure.
		for occ := 0; occ <= i%4; occ++ {
			now := t0.Add(time.Duration(i) * time.Hour)
			if _, err := st.RecordSummaries(ctx, traceHash, []store.CycleSummary{sum}, src, now); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// defectsPage mirrors the GET /v1/defects response envelope.
type defectsPage struct {
	Defects []store.DefectRecord `json:"defects"`
	Total   int                  `json:"total"`
	Limit   int                  `json:"limit"`
	Offset  int                  `json:"offset"`
}

// TestDefectsDefaultLimit: with no parameters the endpoint caps the
// page at 100 records while total reports the full corpus.
func TestDefectsDefaultLimit(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	seedDefects(t, st, 150)
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4, Store: st})

	var page defectsPage
	if code := getJSON(t, ts.URL+"/v1/defects", &page); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(page.Defects) != 100 || page.Total != 150 || page.Limit != 100 || page.Offset != 0 {
		t.Fatalf("default page = %d records, total=%d limit=%d offset=%d; want 100/150/100/0",
			len(page.Defects), page.Total, page.Limit, page.Offset)
	}
	// Default order is unchanged from pre-query behavior: most
	// occurrences first.
	for i := 1; i < len(page.Defects); i++ {
		if page.Defects[i-1].Occurrences < page.Defects[i].Occurrences {
			t.Fatalf("default sort violated at %d", i)
		}
	}
}

// TestDefectsPagination: limit/offset walk the whole match set without
// gaps or repeats, and limits above the cap clamp to 1000.
func TestDefectsPagination(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	seedDefects(t, st, 25)
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4, Store: st})

	seen := make(map[string]bool)
	for offset := 0; ; offset += 10 {
		var page defectsPage
		if code := getJSON(t, fmt.Sprintf("%s/v1/defects?limit=10&offset=%d", ts.URL, offset), &page); code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
		if page.Total != 25 {
			t.Fatalf("total = %d, want 25", page.Total)
		}
		if len(page.Defects) == 0 {
			break
		}
		for _, rec := range page.Defects {
			if seen[rec.Fingerprint] {
				t.Fatalf("fingerprint %s repeated across pages", rec.Fingerprint[:12])
			}
			seen[rec.Fingerprint] = true
		}
	}
	if len(seen) != 25 {
		t.Fatalf("pages covered %d records, want 25", len(seen))
	}

	var page defectsPage
	if code := getJSON(t, ts.URL+"/v1/defects?limit=99999", &page); code != http.StatusOK || page.Limit != 1000 {
		t.Errorf("oversized limit: code=%d limit=%d, want 200/1000", code, page.Limit)
	}
}

// TestDefectsFilters: class, workload, method, min_occurrences, since
// and sort parameters narrow and order the listing.
func TestDefectsFilters(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	seedDefects(t, st, 30)
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4, Store: st})

	var page defectsPage
	getJSON(t, ts.URL+"/v1/defects?class=confirmed", &page)
	if page.Total != 10 {
		t.Errorf("confirmed = %d, want 10", page.Total)
	}
	for _, rec := range page.Defects {
		if rec.Class != store.ClassConfirmed {
			t.Errorf("class filter leaked %s record", rec.Class)
		}
	}

	getJSON(t, ts.URL+"/v1/defects?workload=Beta", &page)
	if page.Total != 15 {
		t.Errorf("workload Beta = %d, want 15", page.Total)
	}

	getJSON(t, ts.URL+"/v1/defects?method=steering&min_occurrences=2", &page)
	for _, rec := range page.Defects {
		if rec.Occurrences < 2 {
			t.Errorf("min_occurrences leaked %d-occurrence record", rec.Occurrences)
		}
	}

	// since excludes everything recorded before hour 20 (indexes 0..19).
	since := time.Date(2026, 8, 1, 20, 0, 0, 0, time.UTC).Format(time.RFC3339)
	getJSON(t, ts.URL+"/v1/defects?since="+since, &page)
	if page.Total != 10 {
		t.Errorf("since window = %d, want 10", page.Total)
	}

	getJSON(t, ts.URL+"/v1/defects?sort=rank", &page)
	for i := 1; i < len(page.Defects); i++ {
		if page.Defects[i-1].Rank < page.Defects[i].Rank {
			t.Errorf("rank sort violated at %d", i)
		}
	}
}

// TestDefectsBadParams: malformed parameters are 400s, not silent
// defaults.
func TestDefectsBadParams(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4, Store: st})

	for _, q := range []string{
		"sort=bogus",
		"since=yesterday",
		"until=not-a-time",
		"min_occurrences=-1",
		"min_occurrences=two",
		"limit=0",
		"limit=-5",
		"limit=abc",
		"offset=-1",
		"offset=x",
	} {
		if code := getJSON(t, ts.URL+"/v1/defects?"+q, nil); code != http.StatusBadRequest {
			t.Errorf("?%s: status = %d, want 400", q, code)
		}
	}
}

// TestGCJanitor: with a TTL policy configured the janitor reclaims
// expired unreferenced traces in the background.
func TestGCJanitor(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	tr := fig4Trace(t)
	hash, _, err := st.PutTrace(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	// No defect references the trace, so the TTL applies to it.
	startServer(t, Config{
		Workers: 1, QueueSize: 4, Store: st,
		TraceTTL:   50 * time.Millisecond,
		GCInterval: 10 * time.Millisecond,
	})

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !st.HasTrace(hash) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("janitor did not reclaim the expired trace")
}
