package server

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"wolf/internal/core"
	"wolf/internal/report"
	"wolf/internal/store"
	"wolf/internal/trace"
)

// JobState is the lifecycle of one analysis job.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: a worker is analyzing the trace.
	StateRunning JobState = "running"
	// StateDone: analysis finished; the report is available.
	StateDone JobState = "done"
	// StateFailed: analysis errored, timed out or panicked; Error says
	// why.
	StateFailed JobState = "failed"
)

// validState reports whether s names a job state (for the ?state list
// filter).
func validState(s string) bool {
	switch JobState(s) {
	case StateQueued, StateRunning, StateDone, StateFailed:
		return true
	}
	return false
}

// Job is one unit of analysis work: a trace (uploaded, or recorded from
// a named workload by the worker) plus its outcome.
type Job struct {
	// ID is the server-assigned job identifier.
	ID string

	mu        sync.Mutex
	state     JobState
	err       string
	source    string
	trace     string
	tuples    int
	created   time.Time
	started   time.Time
	finished  time.Time
	tr        *trace.Trace
	traceHash string
	// Fleet (coordinator role): the analyzer node currently holding the
	// job, the lease expiry, and the delivery count against the bounded
	// redelivery budget. wlSeed pins the detection schedule of a
	// workload job so a remote analyzer records the same trace a local
	// worker would.
	node        string
	attempts    int
	leaseExpiry time.Time
	wlSeed      int64
	// prepare produces the trace on the worker for jobs that record a
	// workload server-side; nil for uploads.
	prepare func() (*trace.Trace, error)
	report  *core.Report
	// reportJSON is the persisted wire report of a job rehydrated from
	// the corpus after a restart; the in-memory core.Report is gone but
	// the report endpoint can still serve this verbatim.
	reportJSON json.RawMessage
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Report returns the analysis report, nil until the job is done (and
// nil for jobs rehydrated from the corpus — see ReportJSON).
func (j *Job) Report() *core.Report {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil
	}
	return j.report
}

// ReportJSON returns the persisted wire report of a rehydrated job, nil
// otherwise.
func (j *Job) ReportJSON() json.RawMessage {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil
	}
	return j.reportJSON
}

// Trace returns the job's trace: set at creation for uploads, after
// worker-side recording for workload jobs, nil before that (and nil
// after a restart — the blob lives in the corpus under TraceHash).
func (j *Job) Trace() *trace.Trace {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tr
}

// TraceID returns the W3C trace ID correlating the job to the request
// that created it (client-supplied via traceparent, or server-minted).
func (j *Job) TraceID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

// Source returns the job's provenance tag ("upload", "workload:NAME",
// ...) as submitted.
func (j *Job) Source() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.source
}

// TraceHash returns the content address of the job's trace in the
// corpus, empty when the server runs without one.
func (j *Job) TraceHash() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.traceHash
}

// setTraceHash records the corpus address of the job's trace.
func (j *Job) setTraceHash(hash string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.traceHash = hash
}

// begin transitions the job to running.
func (j *Job) begin() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = time.Now()
}

// finish records a successful analysis.
func (j *Job) finish(rep *core.Report) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.report = rep
	j.finished = time.Now()
}

// fail records a failed analysis.
func (j *Job) fail(msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateFailed
	j.err = msg
	j.finished = time.Now()
}

// CreatedAt returns the admission time.
func (j *Job) CreatedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.created
}

// terminal reports whether the job reached done or failed.
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateDone || j.state == StateFailed
}

// Attempts returns the delivery count (coordinator role).
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// WorkloadSeed returns the pinned detection seed of a workload job (0
// means the analyzer searches).
func (j *Job) WorkloadSeed() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wlSeed
}

// setWorkloadSeed records the requested detection seed.
func (j *Job) setWorkloadSeed(seed int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.wlSeed = seed
}

// leaseTo marks the job delivered to a node under a lease and returns
// the new delivery count.
func (j *Job) leaseTo(node string, expiry time.Time) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	if j.started.IsZero() {
		j.started = time.Now()
	}
	j.node = node
	j.leaseExpiry = expiry
	j.attempts++
	return j.attempts
}

// unlease returns a job to queued after its lease was revoked.
func (j *Job) unlease() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateQueued
	j.node = ""
	j.leaseExpiry = time.Time{}
}

// setLeaseExpiry extends the recorded lease deadline (renewals).
func (j *Job) setLeaseExpiry(t time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.leaseExpiry = t
}

// finishRaw records a successful remote analysis by its wire-format
// report; the report endpoint serves it verbatim, exactly like a job
// rehydrated from the journal.
func (j *Job) finishRaw(raw json.RawMessage) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.reportJSON = raw
	j.finished = time.Now()
}

// setTrace attaches the prepared trace (worker side, workload jobs).
func (j *Job) setTrace(tr *trace.Trace) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.tr = tr
	j.tuples = len(tr.Tuples)
}

// record snapshots the job as a corpus JobRecord. The report is
// marshaled into its wire form for done jobs so a restarted server can
// serve it verbatim.
func (j *Job) record() store.JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := store.JobRecord{
		ID:          j.ID,
		State:       string(j.state),
		Source:      j.source,
		Trace:       j.trace,
		TraceHash:   j.traceHash,
		Error:       j.err,
		Created:     j.created,
		Started:     j.started,
		Finished:    j.finished,
		Node:        j.node,
		Attempts:    j.attempts,
		LeaseExpiry: j.leaseExpiry,
	}
	if j.state == StateDone {
		switch {
		case j.report != nil:
			if data, err := json.Marshal(report.FromCore(j.report)); err == nil {
				rec.Report = data
			}
		case j.reportJSON != nil:
			rec.Report = j.reportJSON
		}
	}
	return rec
}

// JobView is the wire representation of a job's status.
type JobView struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Source string `json:"source"`
	// Trace is the W3C trace ID correlating this job with the request
	// that created it; filter /v1/debug/events?trace= with it.
	Trace  string `json:"trace,omitempty"`
	Tuples int    `json:"tuples,omitempty"`
	// TraceHash is the content address of the job's trace in the corpus
	// (fetch it via GET /v1/traces/{hash}); empty without -data-dir.
	TraceHash string `json:"trace_hash,omitempty"`
	Error     string `json:"error,omitempty"`
	// Node is the analyzer currently (or last) holding the job's lease;
	// Attempts counts deliveries against the redelivery budget. Both
	// are only set in coordinator mode.
	Node     string `json:"node,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	// ReportURL is set once the report can be fetched.
	ReportURL string `json:"report_url,omitempty"`
}

// view snapshots the job for JSON rendering.
func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		State:     string(j.state),
		Source:    j.source,
		Trace:     j.trace,
		Tuples:    j.tuples,
		TraceHash: j.traceHash,
		Error:     j.err,
		Node:      j.node,
		Attempts:  j.attempts,
		Created:   j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.state == StateDone {
		v.ReportURL = "/v1/jobs/" + j.ID + "/report"
	}
	return v
}

// jobStore is the in-memory job registry. With a corpus attached it is
// rehydrated from the persisted job log at startup, so the ID sequence
// continues across restarts instead of colliding with history.
type jobStore struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*Job
	// order preserves creation order for listings.
	order []*Job
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*Job)}
}

// add registers a new job and assigns its ID. traceID is the causal
// identity propagated from the creating request.
func (s *jobStore) add(source, traceID string, tr *trace.Trace, prepare func() (*trace.Trace, error)) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &Job{
		ID:      fmt.Sprintf("j-%06d", s.seq),
		state:   StateQueued,
		source:  source,
		trace:   traceID,
		created: time.Now(),
		tr:      tr,
		prepare: prepare,
	}
	if tr != nil {
		j.tuples = len(tr.Tuples)
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	return j
}

// fromRecord builds the in-memory job a persisted record describes.
func fromRecord(rec store.JobRecord) *Job {
	return &Job{
		ID:         rec.ID,
		state:      JobState(rec.State),
		source:     rec.Source,
		trace:      rec.Trace,
		traceHash:  rec.TraceHash,
		err:        rec.Error,
		created:    rec.Created,
		started:    rec.Started,
		finished:   rec.Finished,
		node:       rec.Node,
		attempts:   rec.Attempts,
		reportJSON: rec.Report,
	}
}

// insertRestored registers a rehydrated job and advances the ID
// sequence past it. Caller holds s.mu.
func (s *jobStore) insertRestored(j *Job) {
	var n int
	if _, err := fmt.Sscanf(j.ID, "j-%d", &n); err == nil && n > s.seq {
		s.seq = n
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
}

// restore inserts a job rehydrated from a persisted record. Jobs that
// never reached a terminal state before the previous process died are
// failed: their queue position is gone. It reports whether the job's
// state changed (so the caller can persist the correction).
func (s *jobStore) restore(rec store.JobRecord) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := fromRecord(rec)
	lost := false
	switch j.state {
	case StateDone, StateFailed:
	default:
		j.state = StateFailed
		j.err = "job lost in wolfd restart before analysis finished"
		lost = true
	}
	s.insertRestored(j)
	return j, lost
}

// restoreQueued inserts a non-terminal rehydrated job back into the
// queued state — the coordinator path, where losing the process does
// not lose the work: the job is re-delivered to the fleet. The lease
// died with the process and is cleared; the delivery count survives so
// the redelivery budget cannot be reset by bouncing the coordinator.
func (s *jobStore) restoreQueued(rec store.JobRecord) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := fromRecord(rec)
	j.state = StateQueued
	j.node = ""
	j.leaseExpiry = time.Time{}
	s.insertRestored(j)
	return j
}

// get looks a job up by ID.
func (s *jobStore) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list snapshots every job's view in creation order.
func (s *jobStore) list() []JobView {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.view()
	}
	return out
}
