package server

import (
	"fmt"
	"sync"
	"time"

	"wolf/internal/core"
	"wolf/internal/trace"
)

// JobState is the lifecycle of one analysis job.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: a worker is analyzing the trace.
	StateRunning JobState = "running"
	// StateDone: analysis finished; the report is available.
	StateDone JobState = "done"
	// StateFailed: analysis errored, timed out or panicked; Error says
	// why.
	StateFailed JobState = "failed"
)

// Job is one unit of analysis work: a trace (uploaded, or recorded from
// a named workload by the worker) plus its outcome.
type Job struct {
	// ID is the server-assigned job identifier.
	ID string

	mu       sync.Mutex
	state    JobState
	err      string
	source   string
	tuples   int
	created  time.Time
	started  time.Time
	finished time.Time
	tr       *trace.Trace
	// prepare produces the trace on the worker for jobs that record a
	// workload server-side; nil for uploads.
	prepare func() (*trace.Trace, error)
	report  *core.Report
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Report returns the analysis report, nil until the job is done.
func (j *Job) Report() *core.Report {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil
	}
	return j.report
}

// Trace returns the job's trace: set at creation for uploads, after
// worker-side recording for workload jobs, nil before that.
func (j *Job) Trace() *trace.Trace {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tr
}

// begin transitions the job to running.
func (j *Job) begin() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = time.Now()
}

// finish records a successful analysis.
func (j *Job) finish(rep *core.Report) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.report = rep
	j.finished = time.Now()
}

// fail records a failed analysis.
func (j *Job) fail(msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateFailed
	j.err = msg
	j.finished = time.Now()
}

// setTrace attaches the prepared trace (worker side, workload jobs).
func (j *Job) setTrace(tr *trace.Trace) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.tr = tr
	j.tuples = len(tr.Tuples)
}

// JobView is the wire representation of a job's status.
type JobView struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Source   string `json:"source"`
	Tuples   int    `json:"tuples,omitempty"`
	Error    string `json:"error,omitempty"`
	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	// ReportURL is set once the report can be fetched.
	ReportURL string `json:"report_url,omitempty"`
}

// view snapshots the job for JSON rendering.
func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.ID,
		State:   string(j.state),
		Source:  j.source,
		Tuples:  j.tuples,
		Error:   j.err,
		Created: j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.state == StateDone {
		v.ReportURL = "/v1/jobs/" + j.ID + "/report"
	}
	return v
}

// store is the in-memory job registry.
type store struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*Job
	// order preserves creation order for listings.
	order []*Job
}

func newStore() *store {
	return &store{jobs: make(map[string]*Job)}
}

// add registers a new job and assigns its ID.
func (s *store) add(source string, tr *trace.Trace, prepare func() (*trace.Trace, error)) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &Job{
		ID:      fmt.Sprintf("j-%06d", s.seq),
		state:   StateQueued,
		source:  source,
		created: time.Now(),
		tr:      tr,
		prepare: prepare,
	}
	if tr != nil {
		j.tuples = len(tr.Tuples)
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	return j
}

// get looks a job up by ID.
func (s *store) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// list snapshots every job's view in creation order.
func (s *store) list() []JobView {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.view()
	}
	return out
}
