// Package server implements wolfd, the long-running WOLF analysis
// service: clients upload recorded traces (JSON or the binary "WTRC"
// format, optionally gzipped) over HTTP, a bounded queue feeds a worker
// pool running the offline pipeline (cycle detection → Pruner →
// Generator), and structured reports come back as JSON or Graphviz dot.
//
// API:
//
//	POST /v1/traces              upload a trace, enqueue analysis → 202 + job
//	POST /v1/analyze             upload a trace, analyze synchronously → report
//	POST /v1/workloads/{name}    record a named workload server-side, enqueue
//	GET  /v1/workloads           list the workload registry
//	GET  /v1/jobs                list jobs
//	GET  /v1/jobs/{id}           job status
//	GET  /v1/jobs/{id}/report    analysis report (JSON)
//	GET  /v1/jobs/{id}/dot       a defect's synchronization dependency graph
//	GET  /v1/jobs/{id}/timeline  the job's trace as Chrome trace-event JSON (Perfetto)
//	GET  /metrics                Prometheus text metrics
//	GET  /version                build information (JSON)
//	GET  /healthz                liveness + queue depth
package server

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"wolf/internal/core"
	"wolf/internal/obs"
	"wolf/internal/report"
	"wolf/internal/trace"
	"wolf/internal/workloads"
)

// Config controls a wolfd server.
type Config struct {
	// Workers is the analysis pool size (default 4).
	Workers int
	// QueueSize bounds the job queue; a full queue rejects uploads with
	// 429 (default 64).
	QueueSize int
	// JobTimeout cancels an analysis that runs longer (default 30s).
	JobTimeout time.Duration
	// WatchdogGrace is how long past JobTimeout a worker waits for a
	// cancelled analysis to return before abandoning it and failing the
	// job (default 2s). The watchdog is what keeps one analysis that
	// ignores its context from pinning a worker slot forever.
	WatchdogGrace time.Duration
	// MaxUploadBytes bounds a decompressed upload (default 32 MiB).
	MaxUploadBytes int64
	// Analysis configures the offline pipeline for every job.
	Analysis core.Config
	// Analyze overrides the analysis function (tests); default
	// core.AnalyzeTraceCtx.
	Analyze func(ctx context.Context, tr *trace.Trace, cfg core.Config) (*core.Report, error)
	// SeedTries bounds the terminating-seed search for workload jobs
	// (default 300).
	SeedTries int
	// Logger receives structured job lifecycle logs (start, done, failed)
	// tagged with job IDs. Silent when nil; the wolfd binary wires it to
	// stderr via -log-format/-log-level.
	Logger *slog.Logger
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 30 * time.Second
	}
	if c.WatchdogGrace <= 0 {
		c.WatchdogGrace = 2 * time.Second
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 32 << 20
	}
	if c.Analyze == nil {
		c.Analyze = core.AnalyzeTraceCtx
	}
	if c.SeedTries <= 0 {
		c.SeedTries = 300
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
}

// Server is a wolfd instance: job store, bounded queue, worker pool and
// HTTP handler. Create with New, serve Handler(), stop with Shutdown.
type Server struct {
	cfg     Config
	metrics *Metrics
	jobs    *store
	mux     *http.ServeMux
	// syncSem bounds concurrent synchronous analyses (POST /v1/analyze)
	// to the worker pool size; acquiring is non-blocking, so saturation
	// sheds load with 429 instead of stacking goroutines.
	syncSem chan struct{}

	mu     sync.Mutex
	queue  chan *Job
	closed bool
	wg     sync.WaitGroup
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:     cfg,
		metrics: newMetrics(),
		jobs:    newStore(),
		queue:   make(chan *Job, cfg.QueueSize),
		syncSem: make(chan struct{}, cfg.Workers),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/traces", s.handleUpload)
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyzeSync)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("POST /v1/workloads/{name}", s.handleWorkloadJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/jobs/{id}/dot", s.handleDot)
	s.mux.HandleFunc("GET /v1/jobs/{id}/timeline", s.handleTimeline)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /version", s.handleVersion)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains with a bias toward exiting fast: new uploads are
// refused, in-flight analyses complete (or are watchdog-failed), and
// jobs still sitting in the queue are failed immediately with a
// distinct "drained" reason rather than analyzed — a restarting client
// re-submits cheaply, whereas finishing a deep queue can outlive any
// reasonable drain budget. The context bounds the wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// enqueue admits a job to the bounded queue. It reports false when the
// queue is full or the server is shutting down.
func (s *Server) enqueue(j *Job) (ok, closed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, true
	}
	select {
	case s.queue <- j:
		s.metrics.JobsAccepted.Add(1)
		s.metrics.QueueDepth.Add(1)
		return true, false
	default:
		s.metrics.JobsRejected.Add(1)
		return false, false
	}
}

// worker drains the queue until Shutdown closes it. A panicking,
// timed-out or watchdog-abandoned analysis fails its job only — the
// worker survives. Once draining starts, jobs still in the queue are
// failed fast instead of analyzed.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.metrics.QueueDepth.Add(-1)
		if s.draining() {
			s.metrics.Fail(FailDrained)
			j.fail("server draining: job was queued but never started")
			s.cfg.Logger.Info("job drained", "job", j.ID, "source", j.source)
			continue
		}
		s.runJob(j)
	}
}

// draining reports whether Shutdown has begun.
func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// analysisPanic carries a recovered panic out of the analysis goroutine
// so the worker can count and report it like any other failure.
type analysisPanic struct {
	val   any
	stack []byte
}

func (p *analysisPanic) Error() string { return fmt.Sprintf("analysis panicked: %v", p.val) }

// runJob executes one job with timeout, panic isolation and a watchdog:
// the analysis runs in its own goroutine, and if it ignores its
// cancelled context past WatchdogGrace the worker abandons it and fails
// the job rather than blocking the pool. The abandoned goroutine keeps
// its result channel (buffered) so it exits cleanly whenever it does
// return.
func (s *Server) runJob(j *Job) {
	log := s.cfg.Logger.With("job", j.ID, "source", j.source)
	s.metrics.QueueWait.Observe(time.Since(j.created))
	j.begin()
	log.Info("job started", "queue_wait", time.Since(j.created))
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	defer cancel()

	type result struct {
		rep *core.Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- result{err: &analysisPanic{val: r, stack: debug.Stack()}}
			}
		}()
		tr := j.tr
		if j.prepare != nil {
			prepared, err := j.prepare()
			if err != nil {
				done <- result{err: fmt.Errorf("trace preparation failed: %w", err)}
				return
			}
			j.setTrace(prepared)
			tr = prepared
		}
		rep, err := s.cfg.Analyze(ctx, tr, s.cfg.Analysis)
		done <- result{rep: rep, err: err}
	}()

	watchdog := time.NewTimer(s.cfg.JobTimeout + s.cfg.WatchdogGrace)
	defer watchdog.Stop()
	var res result
	select {
	case res = <-done:
	case <-watchdog.C:
		s.metrics.Fail(FailWatchdog)
		j.fail(fmt.Sprintf("analysis ignored cancellation; abandoned by watchdog after %v",
			s.cfg.JobTimeout+s.cfg.WatchdogGrace))
		log.Error("analysis abandoned by watchdog",
			"timeout", s.cfg.JobTimeout, "grace", s.cfg.WatchdogGrace)
		return
	}
	if res.err != nil {
		var ap *analysisPanic
		switch {
		case errors.As(res.err, &ap):
			s.metrics.Fail(FailPanic)
			j.fail(ap.Error())
			log.Error("analysis panicked", "panic", fmt.Sprint(ap.val))
			// The stack is server-side diagnostics, not client payload.
			os.Stderr.Write(ap.stack)
		case errors.Is(res.err, context.DeadlineExceeded):
			s.metrics.Fail(FailTimeout)
			j.fail(fmt.Sprintf("analysis timed out after %v", s.cfg.JobTimeout))
			log.Warn("analysis timed out", "timeout", s.cfg.JobTimeout)
		default:
			s.metrics.Fail(FailError)
			j.fail(res.err.Error())
			log.Warn("analysis failed", "err", res.err)
		}
		return
	}
	s.metrics.observe(res.rep, time.Since(start))
	j.finish(res.rep)
	log.Info("job done", "cycles", len(res.rep.Cycles), "defects", len(res.rep.Defects), "elapsed", time.Since(start))
}

// readTrace decodes an uploaded trace body — either format, gzip-aware
// (Content-Encoding header or magic sniff), size-capped — and validates
// its structural integrity before any analysis work is queued. Bytes
// that do not parse are a 400; bytes that parse into a trace no
// execution could have recorded are a 422, labeled with the corruption
// class trace.Validate found.
func (s *Server) readTrace(w http.ResponseWriter, r *http.Request) (*trace.Trace, bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	var in = body
	if r.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad gzip stream: "+err.Error())
			return nil, false
		}
		defer zr.Close()
		in = http.MaxBytesReader(w, readCloser{zr}, s.cfg.MaxUploadBytes)
	}
	tr, err := trace.Decode(in)
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "bad trace: "+err.Error())
		return nil, false
	}
	if len(tr.Tuples) == 0 {
		httpError(w, http.StatusBadRequest, "bad trace: no lock acquisitions recorded")
		return nil, false
	}
	if err := trace.Validate(tr); err != nil {
		class := "invalid"
		var ve *trace.ValidationError
		if errors.As(err, &ve) {
			class = ve.Class
		}
		s.metrics.InvalidTraces.Add(class, 1)
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return nil, false
	}
	return tr, true
}

// readCloser adapts a gzip reader for MaxBytesReader (which wants a
// ReadCloser).
type readCloser struct{ *gzip.Reader }

func (rc readCloser) Close() error { return rc.Reader.Close() }

// handleUpload is POST /v1/traces: decode, enqueue, 202.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	tr, ok := s.readTrace(w, r)
	if !ok {
		return
	}
	j := s.jobs.add("upload", tr, nil)
	s.admit(w, j)
}

// handleWorkloadJob is POST /v1/workloads/{name}: record the named
// workload server-side (on the worker, not the request path) and analyze
// the trace. Optional ?seed=N pins the detection schedule; 0 searches
// for a terminating seed.
func (s *Server) handleWorkloadJob(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	wl, ok := workloads.ByName(name)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown workload %q", name))
		return
	}
	seed := int64(0)
	if v := r.URL.Query().Get("seed"); v != "" {
		parsed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad seed: "+err.Error())
			return
		}
		seed = parsed
	}
	tries := s.cfg.SeedTries
	prepare := func() (*trace.Trace, error) {
		sd := seed
		if sd == 0 {
			found, ok := workloads.FindTerminatingSeed(wl.New, tries)
			if !ok {
				return nil, fmt.Errorf("no terminating detection seed found in %d tries", tries)
			}
			sd = found
		}
		return core.Record(wl.New, sd, 0), nil
	}
	j := s.jobs.add("workload:"+name, nil, prepare)
	s.admit(w, j)
}

// admit enqueues a freshly created job and writes the accept response.
func (s *Server) admit(w http.ResponseWriter, j *Job) {
	ok, closed := s.enqueue(j)
	switch {
	case closed:
		j.fail("server shutting down")
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
	case !ok:
		j.fail("queue full")
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "analysis queue full")
	default:
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.view())
	}
}

// handleAnalyzeSync is POST /v1/analyze: run the pipeline inline on the
// request and return the report directly. The analysis runs under the
// request context, so a client disconnect cancels it; the per-job
// timeout still applies. Concurrency is bounded by the worker pool
// size — when every slot is busy the request is shed with 429 rather
// than queued on the request path, where stacked analyses would starve
// the async workers of CPU.
func (s *Server) handleAnalyzeSync(w http.ResponseWriter, r *http.Request) {
	select {
	case s.syncSem <- struct{}{}:
		defer func() { <-s.syncSem }()
	default:
		s.metrics.SyncRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "all analysis slots busy")
		return
	}
	tr, ok := s.readTrace(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.JobTimeout)
	defer cancel()
	start := time.Now()
	rep, err := s.cfg.Analyze(ctx, tr, s.cfg.Analysis)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.metrics.Fail(FailTimeout)
			httpError(w, http.StatusGatewayTimeout, fmt.Sprintf("analysis timed out after %v", s.cfg.JobTimeout))
		} else {
			s.metrics.Fail(FailError)
			httpError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	s.metrics.observe(rep, time.Since(start))
	writeJSON(w, http.StatusOK, report.FromCore(rep))
}

// handleWorkloads is GET /v1/workloads: the shared registry.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	names := []string{}
	for _, wl := range workloads.Registry() {
		names = append(names, wl.Name)
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": names})
}

// handleJobs is GET /v1/jobs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

// handleJob is GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleReport is GET /v1/jobs/{id}/report: the analysis report once the
// job is done; 409 while it is still queued or running.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	switch j.State() {
	case StateDone:
		writeJSON(w, http.StatusOK, report.FromCore(j.Report()))
	case StateFailed:
		httpError(w, http.StatusUnprocessableEntity, "job failed: "+j.view().Error)
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusConflict, "job not finished")
	}
}

// handleDot is GET /v1/jobs/{id}/dot?signature=SIG: the synchronization
// dependency graph of one defect as Graphviz dot. Without a signature
// the first defect that has a graph is rendered.
func (s *Server) handleDot(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	rep := j.Report()
	if rep == nil {
		httpError(w, http.StatusConflict, "job not finished")
		return
	}
	want := r.URL.Query().Get("signature")
	for _, d := range rep.Defects {
		if want != "" && d.Signature != want {
			continue
		}
		for _, cr := range d.Cycles {
			if cr.Gs != nil {
				w.Header().Set("Content-Type", "text/vnd.graphviz")
				fmt.Fprint(w, cr.Gs.DOT(d.Signature))
				return
			}
		}
		if want != "" {
			break
		}
	}
	httpError(w, http.StatusNotFound, "no graph for that defect (pruned, or unknown signature)")
}

// handleTimeline is GET /v1/jobs/{id}/timeline: the job's recorded
// trace rendered as Chrome trace-event JSON, loadable in Perfetto or
// chrome://tracing. Available as soon as the trace exists (uploads:
// immediately; workload jobs: once the worker has recorded it).
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	tr := j.Trace()
	if tr == nil {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusConflict, "trace not recorded yet")
		return
	}
	tl := obs.NewTimeline()
	core.TimelineFromTrace(tr, tl, 1)
	w.Header().Set("Content-Type", "application/json")
	tl.WriteJSON(w)
}

// handleVersion is GET /version: build information.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.ReadBuildInfo())
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
}

// handleHealthz is GET /healthz: 200 while accepting work, 503 during
// shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	status := http.StatusOK
	state := "ok"
	if closed {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{
		"status":      state,
		"queue_depth": s.metrics.QueueDepth.Load(),
	})
}

// Metrics exposes the registry (for the binary's logs and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// writeJSON renders v with the right headers.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError renders a JSON error body.
func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
