// Package server implements wolfd, the long-running WOLF analysis
// service: clients upload recorded traces (JSON or the binary "WTRC"
// format, optionally gzipped) over HTTP, a bounded queue feeds a worker
// pool running the offline pipeline (cycle detection → Pruner →
// Generator), and structured reports come back as JSON or Graphviz dot.
//
// API:
//
//	POST /v1/traces              upload a trace, enqueue analysis → 202 + job
//	POST /v1/analyze             upload a trace, analyze synchronously → report
//	POST /v1/workloads/{name}    record a named workload server-side, enqueue
//	GET  /v1/workloads           list the workload registry
//	GET  /v1/jobs                list jobs (?state=done&limit=N)
//	GET  /v1/jobs/{id}           job status
//	GET  /v1/jobs/{id}/report    analysis report (JSON)
//	GET  /v1/jobs/{id}/dot       a defect's synchronization dependency graph
//	GET  /v1/jobs/{id}/timeline  the job's trace as Chrome trace-event JSON (Perfetto)
//	GET  /metrics                Prometheus text metrics
//	GET  /version                build information (JSON)
//	GET  /healthz                liveness + queue depth
//
// With a corpus attached (wolfd -data-dir), uploaded traces, jobs and
// aggregated defect records persist across restarts and the corpus API
// is served too:
//
//	GET    /v1/traces               list stored trace blobs
//	GET    /v1/traces/{hash}        one stored trace, binary encoding
//	DELETE /v1/traces/{hash}        remove a stored trace blob
//	POST   /v1/traces/{hash}/replay re-enqueue analysis of a stored trace
//	GET    /v1/defects              defect records (?class=&workload=&method=
//	                                &since=&until=&min_occurrences=&sort=
//	                                &limit=&offset=; default limit 100)
//	GET    /v1/defects/{fp}         one defect record by fingerprint
package server

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"wolf/internal/core"
	"wolf/internal/fingerprint"
	"wolf/internal/obs"
	"wolf/internal/replay"
	"wolf/internal/report"
	"wolf/internal/store"
	"wolf/internal/trace"
	"wolf/internal/workloads"
)

// Config controls a wolfd server.
type Config struct {
	// Role selects the fleet role: RoleSingle (default — admit and
	// analyze in one process) or RoleCoordinator (admit and persist
	// here, hand analysis to registered analyzer nodes under leases).
	// Analyzer nodes are not servers; see internal/fleet.
	Role string
	// LeaseTTL bounds one work lease; analyzers must renew before it
	// elapses or the job is reassigned (default 15s).
	LeaseTTL time.Duration
	// HeartbeatInterval is the cadence registration hands to analyzers
	// (default 3s); HeartbeatTimeout is how long a node may stay silent
	// before it is declared lost and its jobs reassigned (default 10s).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// MaxDeliveries bounds how many times a job is handed out before
	// reassignment terminal-fails it with reason "reassign-exhausted"
	// (default 3).
	MaxDeliveries int
	// MaxRenewals is how many renewals one lease may take before its
	// holder is treated as a straggler and the job is re-offered to a
	// second node, first result winning (default 8).
	MaxRenewals int
	// Workers is the analysis pool size (default 4).
	Workers int
	// QueueSize bounds the job queue; a full queue rejects uploads with
	// 429 (default 64).
	QueueSize int
	// JobTimeout cancels an analysis that runs longer (default 30s).
	JobTimeout time.Duration
	// WatchdogGrace is how long past JobTimeout a worker waits for a
	// cancelled analysis to return before abandoning it and failing the
	// job (default 2s). The watchdog is what keeps one analysis that
	// ignores its context from pinning a worker slot forever.
	WatchdogGrace time.Duration
	// MaxUploadBytes bounds a decompressed upload (default 32 MiB).
	MaxUploadBytes int64
	// MaxOpenStreams bounds concurrently open ingestion streams; opens
	// beyond it are shed with 429 + Retry-After (default 64).
	MaxOpenStreams int
	// StreamIdleTimeout evicts a stream that has not received a chunk
	// for this long (default 2m).
	StreamIdleTimeout time.Duration
	// StreamMemBudget bounds one stream decoder's retained memory;
	// breaching it rejects the stream with 413 (default 16 MiB).
	StreamMemBudget int64
	// FlightRecorderSize bounds the daemon-wide flight recorder — the
	// fixed ring of recent lifecycle events behind GET /v1/debug/events
	// (default 4096 entries, rounded up to a power of two).
	FlightRecorderSize int
	// Analysis configures the offline pipeline for every job.
	Analysis core.Config
	// Analyze overrides the analysis function (tests); default
	// core.AnalyzeTraceCtx.
	Analyze func(ctx context.Context, tr *trace.Trace, cfg core.Config) (*core.Report, error)
	// SeedTries bounds the terminating-seed search for workload jobs
	// (default 300).
	SeedTries int
	// Logger receives structured job lifecycle logs (start, done, failed)
	// tagged with job IDs. Silent when nil; the wolfd binary wires it to
	// stderr via -log-format/-log-level.
	Logger *slog.Logger
	// Store is the persistent defect corpus (wolfd -data-dir). When set,
	// uploaded and server-recorded traces are archived by content
	// address, finished analyses fold their cycles into fingerprinted
	// defect records, the job log survives restarts, and the corpus
	// endpoints are live. Nil keeps the server fully in-memory.
	Store *store.Store
	// MaxCorpusBytes bounds the total size of stored trace blobs (wolfd
	// -max-corpus-bytes); TraceTTL expires blobs by age (wolfd
	// -trace-ttl). When either is set a GC janitor prunes unreferenced
	// blobs every GCInterval (default 1m). Traces confirming a defect
	// are never deleted.
	MaxCorpusBytes int64
	TraceTTL       time.Duration
	GCInterval     time.Duration
}

func (c *Config) fill() {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 3 * time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 10 * time.Second
	}
	if c.MaxDeliveries <= 0 {
		c.MaxDeliveries = 3
	}
	if c.MaxRenewals <= 0 {
		c.MaxRenewals = 8
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 30 * time.Second
	}
	if c.WatchdogGrace <= 0 {
		c.WatchdogGrace = 2 * time.Second
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 32 << 20
	}
	if c.MaxOpenStreams <= 0 {
		c.MaxOpenStreams = 64
	}
	if c.StreamIdleTimeout <= 0 {
		c.StreamIdleTimeout = 2 * time.Minute
	}
	if c.StreamMemBudget <= 0 {
		c.StreamMemBudget = 16 << 20
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = 4096
	}
	if c.Analyze == nil {
		c.Analyze = core.AnalyzeTraceCtx
	}
	if c.SeedTries <= 0 {
		c.SeedTries = 300
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.GCInterval <= 0 {
		c.GCInterval = time.Minute
	}
}

// Server is a wolfd instance: job store, bounded queue, worker pool and
// HTTP handler. Create with New, serve Handler(), stop with Shutdown.
type Server struct {
	cfg     Config
	metrics *Metrics
	jobs    *jobStore
	mux     *http.ServeMux
	// syncSem bounds concurrent synchronous analyses (POST /v1/analyze)
	// to the worker pool size; acquiring is non-blocking, so saturation
	// sheds load with 429 instead of stacking goroutines.
	syncSem chan struct{}
	// streams is the open ingestion-stream registry; streamStop ends
	// the idle-eviction janitor and any /v1/debug/events SSE tails.
	streams    *streamStore
	streamStop chan struct{}
	// flight is the daemon-wide flight recorder: a bounded lock-free
	// ring of recent lifecycle events across all jobs and streams.
	flight  *obs.FlightRecorder
	started time.Time
	// fleet is the coordinator's node/lease bookkeeping; nil outside
	// RoleCoordinator.
	fleet *fleetState

	mu     sync.Mutex
	queue  chan *Job
	closed bool
	wg     sync.WaitGroup
}

// New builds a server and starts its worker pool. With a corpus
// attached, the job registry is rehydrated from the persisted job log
// first: finished jobs come back with their reports, and jobs the
// previous process never finished are failed (their queue position died
// with it) so clients polling them see a terminal state, not a hang.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:        cfg,
		metrics:    newMetrics(),
		jobs:       newJobStore(),
		queue:      make(chan *Job, cfg.QueueSize),
		syncSem:    make(chan struct{}, cfg.Workers),
		streams:    newStreamStore(),
		streamStop: make(chan struct{}),
		flight:     obs.NewFlightRecorder(cfg.FlightRecorderSize),
		started:    time.Now(),
	}
	s.metrics.AnalysisParallelism.Store(int64(cfg.Analysis.EffectiveParallelism()))
	if cfg.Role == RoleCoordinator {
		s.fleet = newFleetState(s)
	}
	if cfg.Store != nil {
		var requeued []*Job
		for _, rec := range cfg.Store.Jobs() {
			// Coordinator restarts survive in-flight work: a non-terminal
			// job whose trace is recoverable (corpus blob, or a workload
			// the analyzer records itself) goes back to the fleet instead
			// of being failed. Everything else takes the single-process
			// path: terminal jobs restore as-is, unrecoverable ones fail.
			if s.fleet != nil && !terminalRecord(rec) && recoverableRecord(rec, cfg.Store) {
				j := s.jobs.restoreQueued(rec)
				requeued = append(requeued, j)
				s.persistJob(j)
				cfg.Logger.Info("job re-queued after coordinator restart",
					"job", j.ID, "trace", j.TraceID(), "attempts", j.Attempts())
				continue
			}
			j, lost := s.jobs.restore(rec)
			if lost {
				s.persistJob(j)
				cfg.Logger.Warn("job lost in restart", "job", j.ID, "trace", j.TraceID())
			}
		}
		if len(requeued) > 0 {
			s.fleet.requeueRestored(requeued)
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/traces", s.handleUpload)
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyzeSync)
	s.mux.HandleFunc("POST /v1/streams", s.handleStreamOpen)
	s.mux.HandleFunc("POST /v1/streams/{id}/chunks", s.handleStreamChunk)
	s.mux.HandleFunc("GET /v1/streams/{id}", s.handleStreamGet)
	s.mux.HandleFunc("POST /v1/streams/{id}/close", s.handleStreamClose)
	s.mux.HandleFunc("DELETE /v1/streams/{id}", s.handleStreamDelete)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("POST /v1/workloads/{name}", s.handleWorkloadJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/jobs/{id}/dot", s.handleDot)
	s.mux.HandleFunc("GET /v1/jobs/{id}/timeline", s.handleTimeline)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraceList)
	s.mux.HandleFunc("GET /v1/traces/{hash}", s.handleTraceGet)
	s.mux.HandleFunc("DELETE /v1/traces/{hash}", s.handleTraceDelete)
	s.mux.HandleFunc("POST /v1/traces/{hash}/replay", s.handleTraceReplay)
	s.mux.HandleFunc("GET /v1/defects", s.handleDefects)
	s.mux.HandleFunc("GET /v1/defects/{fp}", s.handleDefect)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /version", s.handleVersion)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /v1/debug/events", s.handleDebugEvents)
	s.mux.HandleFunc("POST /v1/nodes", s.handleNodeRegister)
	s.mux.HandleFunc("GET /v1/nodes", s.handleNodeList)
	s.mux.HandleFunc("POST /v1/nodes/{id}/heartbeat", s.handleNodeHeartbeat)
	s.mux.HandleFunc("POST /v1/work/pull", s.handleWorkPull)
	s.mux.HandleFunc("POST /v1/work/renew", s.handleWorkRenew)
	s.mux.HandleFunc("POST /v1/work/complete", s.handleWorkComplete)
	if s.fleet == nil {
		// Single-process mode: local workers drain the queue. A
		// coordinator has none — registered analyzers pull the work.
		for i := 0; i < cfg.Workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	} else {
		s.wg.Add(1)
		go s.fleet.janitor()
	}
	s.wg.Add(1)
	go s.streamJanitor()
	if cfg.Store != nil && (cfg.MaxCorpusBytes > 0 || cfg.TraceTTL > 0) {
		s.wg.Add(1)
		go s.gcJanitor()
	}
	return s
}

// gcJanitor periodically prunes unreferenced trace blobs under the
// configured size budget and age ceiling. Runs only with a corpus
// attached and at least one bound set; stops with the server.
func (s *Server) gcJanitor() {
	defer s.wg.Done()
	policy := store.GCPolicy{MaxBytes: s.cfg.MaxCorpusBytes, TTL: s.cfg.TraceTTL}
	ticker := time.NewTicker(s.cfg.GCInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.streamStop:
			return
		case <-ticker.C:
			stats := s.cfg.Store.GC(policy, time.Now())
			if stats.Deleted == 0 {
				continue
			}
			s.cfg.Logger.Info("corpus gc", "deleted", stats.Deleted,
				"bytes_reclaimed", stats.BytesReclaimed, "kept_referenced", stats.Kept)
			s.event(obs.Event{Kind: evStoreGC, Msg: "trace gc pass", Attrs: map[string]string{
				"deleted":         strconv.Itoa(stats.Deleted),
				"bytes_reclaimed": strconv.FormatInt(stats.BytesReclaimed, 10),
			}})
		}
	}
}

// terminalRecord reports whether a persisted job record is done or
// failed.
func terminalRecord(rec store.JobRecord) bool {
	switch JobState(rec.State) {
	case StateDone, StateFailed:
		return true
	}
	return false
}

// recoverableRecord reports whether a restarted coordinator can still
// deliver the job's work: the trace blob is in the corpus, or the job
// is a workload an analyzer records itself.
func recoverableRecord(rec store.JobRecord, st *store.Store) bool {
	if rec.TraceHash != "" && st.HasTrace(rec.TraceHash) {
		return true
	}
	return strings.HasPrefix(rec.Source, "workload:")
}

// persistJob appends the job's current state to the corpus job log. A
// persistence failure never fails the request — the corpus degrades to
// best-effort and the error is logged.
func (s *Server) persistJob(j *Job) {
	if s.cfg.Store == nil {
		return
	}
	if err := s.cfg.Store.AppendJob(j.record()); err != nil {
		s.cfg.Logger.Error("persist job", "job", j.ID, "err", err)
	}
}

// archiveTrace stores tr in the corpus and stamps its content address
// on the job. Archival failures are logged, not fatal.
func (s *Server) archiveTrace(ctx context.Context, j *Job, tr *trace.Trace) {
	if s.cfg.Store == nil || tr == nil {
		return
	}
	hash, _, err := s.cfg.Store.PutTrace(ctx, tr)
	if err != nil {
		s.cfg.Logger.Error("archive trace", "job", j.ID, "trace", j.TraceID(), "err", err)
		return
	}
	j.setTraceHash(hash)
	s.jobEvent(evStoreTrace, j, "trace archived", map[string]string{"hash": fingerprint.Short(hash)})
}

// recordDefects folds a finished analysis into the corpus. j carries
// the causal identity for logs and events; it is nil on the synchronous
// path, which has no job.
func (s *Server) recordDefects(ctx context.Context, j *Job, traceHash string, rep *core.Report) {
	if s.cfg.Store == nil {
		return
	}
	jobID, traceID, source := "", "", ""
	if j != nil {
		jobID, traceID, source = j.ID, j.TraceID(), j.Source()
	}
	updated, err := s.cfg.Store.Record(ctx, traceHash, rep, source, time.Now())
	if err != nil {
		s.cfg.Logger.Error("record defects", "job", jobID, "trace", traceID, "err", err)
		return
	}
	for _, fp := range updated {
		s.cfg.Logger.Info("defect recorded", "job", jobID, "trace", traceID,
			"fingerprint", fingerprint.Short(fp))
		s.event(obs.Event{Kind: evStoreDefect, Job: jobID, Trace: traceID,
			Msg: "defect recorded", Attrs: map[string]string{"fingerprint": fingerprint.Short(fp)}})
	}
}

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains with a bias toward exiting fast: new uploads are
// refused, in-flight analyses complete (or are watchdog-failed), and
// jobs still sitting in the queue are failed immediately with a
// distinct "drained" reason rather than analyzed — a restarting client
// re-submits cheaply, whereas finishing a deep queue can outlive any
// reasonable drain budget. The context bounds the wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
		close(s.streamStop)
	}
	s.mu.Unlock()
	// Open streams cannot finish once the queue is closed; release
	// their slots now so the drained process accounts for them.
	for _, ss := range s.streams.snapshot() {
		s.dropStream(ss, "shutdown")
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// enqueue admits a job to the bounded queue. It reports false when the
// queue is full or the server is shutting down.
func (s *Server) enqueue(j *Job) (ok, closed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, true
	}
	select {
	case s.queue <- j:
		s.metrics.JobsAccepted.Add(1)
		s.metrics.QueueDepth.Add(1)
		return true, false
	default:
		s.metrics.JobsRejected.Add(1)
		return false, false
	}
}

// worker drains the queue until Shutdown closes it. A panicking,
// timed-out or watchdog-abandoned analysis fails its job only — the
// worker survives. Once draining starts, jobs still in the queue are
// failed fast instead of analyzed.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.metrics.QueueDepth.Add(-1)
		if s.draining() {
			s.metrics.Fail(FailDrained)
			j.fail("server draining: job was queued but never started")
			s.cfg.Logger.Info("job drained", "job", j.ID, "source", j.source, "trace", j.TraceID())
			s.jobEvent(evJobFailed, j, "drained", map[string]string{"reason": string(FailDrained)})
			continue
		}
		s.runJob(j)
	}
}

// draining reports whether Shutdown has begun.
func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// analysisPanic carries a recovered panic out of the analysis goroutine
// so the worker can count and report it like any other failure.
type analysisPanic struct {
	val   any
	stack []byte
}

func (p *analysisPanic) Error() string { return fmt.Sprintf("analysis panicked: %v", p.val) }

// runJob executes one job with timeout, panic isolation and a watchdog:
// the analysis runs in its own goroutine, and if it ignores its
// cancelled context past WatchdogGrace the worker abandons it and fails
// the job rather than blocking the pool. The abandoned goroutine keeps
// its result channel (buffered) so it exits cleanly whenever it does
// return.
func (s *Server) runJob(j *Job) {
	log := s.cfg.Logger.With("job", j.ID, "source", j.source, "trace", j.TraceID())
	s.metrics.QueueWait.Observe(time.Since(j.created))
	s.metrics.WorkersBusy.Add(1)
	defer s.metrics.WorkersBusy.Add(-1)
	j.begin()
	// Journal the terminal state whichever exit path the job takes.
	defer s.persistJob(j)
	log.Info("job started", "queue_wait", time.Since(j.created))
	s.jobEvent(evJobStarted, j, "", nil)
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	defer cancel()
	// Propagate the job's causal identity into the pipeline so every
	// span the analysis records carries the client's trace ID.
	ctx = obs.WithTrace(ctx, j.TraceID(), "")

	type result struct {
		rep *core.Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- result{err: &analysisPanic{val: r, stack: debug.Stack()}}
			}
		}()
		tr := j.tr
		if j.prepare != nil {
			prepared, err := j.prepare()
			if err != nil {
				done <- result{err: fmt.Errorf("trace preparation failed: %w", err)}
				return
			}
			j.setTrace(prepared)
			tr = prepared
		}
		rep, err := s.cfg.Analyze(ctx, tr, s.cfg.Analysis)
		done <- result{rep: rep, err: err}
	}()

	watchdog := time.NewTimer(s.cfg.JobTimeout + s.cfg.WatchdogGrace)
	defer watchdog.Stop()
	var res result
	select {
	case res = <-done:
	case <-watchdog.C:
		s.metrics.Fail(FailWatchdog)
		j.fail(fmt.Sprintf("analysis ignored cancellation; abandoned by watchdog after %v",
			s.cfg.JobTimeout+s.cfg.WatchdogGrace))
		log.Error("analysis abandoned by watchdog",
			"timeout", s.cfg.JobTimeout, "grace", s.cfg.WatchdogGrace)
		s.jobEvent(evJobFailed, j, "abandoned by watchdog", map[string]string{"reason": string(FailWatchdog)})
		return
	}
	if res.err != nil {
		var ap *analysisPanic
		switch {
		case errors.As(res.err, &ap):
			s.metrics.Fail(FailPanic)
			j.fail(ap.Error())
			log.Error("analysis panicked", "panic", fmt.Sprint(ap.val))
			s.jobEvent(evJobFailed, j, ap.Error(), map[string]string{"reason": string(FailPanic)})
			// The stack is server-side diagnostics, not client payload.
			os.Stderr.Write(ap.stack)
		case errors.Is(res.err, context.DeadlineExceeded):
			s.metrics.Fail(FailTimeout)
			j.fail(fmt.Sprintf("analysis timed out after %v", s.cfg.JobTimeout))
			log.Warn("analysis timed out", "timeout", s.cfg.JobTimeout)
			s.jobEvent(evJobFailed, j, "timed out", map[string]string{"reason": string(FailTimeout)})
		default:
			s.metrics.Fail(FailError)
			j.fail(res.err.Error())
			log.Warn("analysis failed", "err", res.err)
			s.jobEvent(evJobFailed, j, res.err.Error(), map[string]string{"reason": string(FailError)})
		}
		return
	}
	// Workload jobs only have a trace once prepare ran on the worker;
	// archive it now so the corpus holds what was analyzed.
	if j.TraceHash() == "" {
		s.archiveTrace(context.Background(), j, j.Trace())
	}
	s.recordDefects(context.Background(), j, j.TraceHash(), res.rep)
	s.metrics.observe(res.rep, time.Since(start))
	j.finish(res.rep)
	log.Info("job done", "cycles", len(res.rep.Cycles), "defects", len(res.rep.Defects), "elapsed", time.Since(start))
	for _, cr := range res.rep.Cycles {
		if cr.ReplayMethod == replay.MethodNone || cr.Cycle == nil {
			continue
		}
		s.jobEvent(evReplayVerdict, j, "cycle confirmed by replay", map[string]string{
			"method":      string(cr.ReplayMethod),
			"fingerprint": fingerprint.Short(fingerprint.Of(cr.Cycle)),
		})
	}
	s.jobEvent(evJobDone, j, "", map[string]string{
		"cycles":  strconv.Itoa(len(res.rep.Cycles)),
		"defects": strconv.Itoa(len(res.rep.Defects)),
	})
}

// readTrace decodes an uploaded trace body — either format, gzip-aware
// (Content-Encoding header or magic sniff), size-capped — and validates
// its structural integrity before any analysis work is queued. Bytes
// that do not parse are a 400; bytes that parse into a trace no
// execution could have recorded are a 422, labeled with the corruption
// class trace.Validate found.
func (s *Server) readTrace(w http.ResponseWriter, r *http.Request) (*trace.Trace, bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	var in = body
	if r.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad gzip stream: "+err.Error())
			return nil, false
		}
		defer zr.Close()
		in = http.MaxBytesReader(w, readCloser{zr}, s.cfg.MaxUploadBytes)
	}
	tr, err := trace.Decode(in)
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "bad trace: "+err.Error())
		return nil, false
	}
	if len(tr.Tuples) == 0 {
		httpError(w, http.StatusBadRequest, "bad trace: no lock acquisitions recorded")
		return nil, false
	}
	if err := trace.Validate(tr); err != nil {
		class := "invalid"
		var ve *trace.ValidationError
		if errors.As(err, &ve) {
			class = ve.Class
		}
		s.metrics.InvalidTraces.Add(class, 1)
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return nil, false
	}
	return tr, true
}

// readCloser adapts a gzip reader for MaxBytesReader (which wants a
// ReadCloser).
type readCloser struct{ *gzip.Reader }

func (rc readCloser) Close() error { return rc.Reader.Close() }

// handleUpload is POST /v1/traces: decode, archive in the corpus,
// enqueue, 202. The traceparent header (minted when absent) becomes the
// job's causal identity and is echoed in the response.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	traceID := ingestTraceparent(w, r)
	tr, ok := s.readTrace(w, r)
	if !ok {
		return
	}
	j := s.jobs.add("upload", traceID, tr, nil)
	s.archiveTrace(r.Context(), j, tr)
	s.admit(w, j)
}

// handleWorkloadJob is POST /v1/workloads/{name}: record the named
// workload server-side (on the worker, not the request path) and analyze
// the trace. Optional ?seed=N pins the detection schedule; 0 searches
// for a terminating seed.
func (s *Server) handleWorkloadJob(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	wl, ok := workloads.ByName(name)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown workload %q", name))
		return
	}
	traceID := ingestTraceparent(w, r)
	seed := int64(0)
	if v := r.URL.Query().Get("seed"); v != "" {
		parsed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad seed: "+err.Error())
			return
		}
		seed = parsed
	}
	tries := s.cfg.SeedTries
	prepare := func() (*trace.Trace, error) {
		sd := seed
		if sd == 0 {
			found, ok := workloads.FindTerminatingSeed(wl.New, tries)
			if !ok {
				return nil, fmt.Errorf("no terminating detection seed found in %d tries", tries)
			}
			sd = found
		}
		return core.Record(wl.New, sd, 0), nil
	}
	j := s.jobs.add("workload:"+name, traceID, nil, prepare)
	j.setWorkloadSeed(seed)
	s.admit(w, j)
}

// admit enqueues a freshly created job and writes the accept response.
// Every outcome is journaled: the accepted record marks admission, and
// a rejected job's terminal failure is persisted too, so the history a
// restarted server rehydrates matches what clients were told.
func (s *Server) admit(w http.ResponseWriter, j *Job) {
	ok, closed := s.enqueue(j)
	switch {
	case closed:
		j.fail("server shutting down")
		s.persistJob(j)
		s.jobEvent(evJobShed, j, "server shutting down", nil)
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
	case !ok:
		j.fail("queue full")
		s.persistJob(j)
		s.jobEvent(evJobShed, j, "queue full", nil)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "analysis queue full")
	default:
		s.persistJob(j)
		s.jobEvent(evJobQueued, j, "", map[string]string{"source": j.source})
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.view())
	}
}

// handleAnalyzeSync is POST /v1/analyze: run the pipeline inline on the
// request and return the report directly. The analysis runs under the
// request context, so a client disconnect cancels it; the per-job
// timeout still applies. Concurrency is bounded by the worker pool
// size — when every slot is busy the request is shed with 429 rather
// than queued on the request path, where stacked analyses would starve
// the async workers of CPU.
func (s *Server) handleAnalyzeSync(w http.ResponseWriter, r *http.Request) {
	select {
	case s.syncSem <- struct{}{}:
		defer func() { <-s.syncSem }()
	default:
		s.metrics.SyncRejected.Add(1)
		s.event(obs.Event{Kind: evSyncShed, Msg: "all analysis slots busy"})
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "all analysis slots busy")
		return
	}
	traceID := ingestTraceparent(w, r)
	tr, ok := s.readTrace(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.JobTimeout)
	defer cancel()
	ctx = obs.WithTrace(ctx, traceID, "")
	start := time.Now()
	rep, err := s.cfg.Analyze(ctx, tr, s.cfg.Analysis)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.metrics.Fail(FailTimeout)
			httpError(w, http.StatusGatewayTimeout, fmt.Sprintf("analysis timed out after %v", s.cfg.JobTimeout))
		} else {
			s.metrics.Fail(FailError)
			httpError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	if s.cfg.Store != nil {
		if hash, _, perr := s.cfg.Store.PutTrace(r.Context(), tr); perr == nil {
			s.recordDefects(r.Context(), nil, hash, rep)
		} else {
			s.cfg.Logger.Error("archive trace", "source", "sync", "trace", traceID, "err", perr)
		}
	}
	s.metrics.observe(rep, time.Since(start))
	writeJSON(w, http.StatusOK, report.FromCore(rep))
}

// handleWorkloads is GET /v1/workloads: the shared registry.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	names := []string{}
	for _, wl := range workloads.Registry() {
		names = append(names, wl.Name)
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": names})
}

// handleJobs is GET /v1/jobs. ?state=done filters by lifecycle state,
// ?limit=N keeps only the N most recent matches (tail of the
// creation-ordered list).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	if state := r.URL.Query().Get("state"); state != "" {
		if !validState(state) {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("bad state %q: want queued, running, done or failed", state))
			return
		}
		filtered := jobs[:0]
		for _, v := range jobs {
			if v.State == state {
				filtered = append(filtered, v)
			}
		}
		jobs = filtered
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad limit: want a non-negative integer")
			return
		}
		if n < len(jobs) {
			jobs = jobs[len(jobs)-n:]
		}
	}
	if jobs == nil {
		jobs = []JobView{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

// handleJob is GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleReport is GET /v1/jobs/{id}/report: the analysis report once the
// job is done; 409 while it is still queued or running.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	switch j.State() {
	case StateDone:
		if rep := j.Report(); rep != nil {
			writeJSON(w, http.StatusOK, report.FromCore(rep))
			return
		}
		// Rehydrated after a restart: the in-memory report is gone, but
		// the persisted wire form is served verbatim.
		if raw := j.ReportJSON(); raw != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(raw)
			return
		}
		httpError(w, http.StatusGone, "report not preserved across wolfd restart")
	case StateFailed:
		httpError(w, http.StatusUnprocessableEntity, "job failed: "+j.view().Error)
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusConflict, "job not finished")
	}
}

// handleDot is GET /v1/jobs/{id}/dot?signature=SIG: the synchronization
// dependency graph of one defect as Graphviz dot. Without a signature
// the first defect that has a graph is rendered.
func (s *Server) handleDot(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	rep := j.Report()
	if rep == nil {
		if j.State() == StateDone {
			// Rehydrated job: the SDG lives only in the in-memory report,
			// which did not survive the restart. Re-analyze to get it back.
			httpError(w, http.StatusGone,
				"graph not preserved across wolfd restart; replay the trace to regenerate it")
			return
		}
		httpError(w, http.StatusConflict, "job not finished")
		return
	}
	want := r.URL.Query().Get("signature")
	for _, d := range rep.Defects {
		if want != "" && d.Signature != want {
			continue
		}
		for _, cr := range d.Cycles {
			if cr.Gs != nil {
				w.Header().Set("Content-Type", "text/vnd.graphviz")
				fmt.Fprint(w, cr.Gs.DOT(d.Signature))
				return
			}
		}
		if want != "" {
			break
		}
	}
	httpError(w, http.StatusNotFound, "no graph for that defect (pruned, or unknown signature)")
}

// handleTimeline is GET /v1/jobs/{id}/timeline: the job's recorded
// trace rendered as Chrome trace-event JSON, loadable in Perfetto or
// chrome://tracing. Available as soon as the trace exists (uploads:
// immediately; workload jobs: once the worker has recorded it).
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	tr := j.Trace()
	if tr == nil && s.cfg.Store != nil && j.TraceHash() != "" {
		// After a restart the in-memory trace is gone, but the corpus
		// still has the blob under the job's content address.
		if stored, err := s.cfg.Store.GetTrace(j.TraceHash()); err == nil {
			tr = stored
		}
	}
	if tr == nil {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusConflict, "trace not recorded yet")
		return
	}
	tl := obs.NewTimeline()
	core.TimelineFromTrace(tr, tl, 1)
	// Stamp the job's causal identity into the export: the instant's
	// args carry the trace ID verbatim, so a timeline can be matched
	// back to the request (and the flight-recorder events) that made it.
	if traceID := j.TraceID(); traceID != "" {
		tl.Instant(1, 0, "traceparent", "meta", 0, "g", map[string]any{"trace": traceID, "job": j.ID})
	}
	w.Header().Set("Content-Type", "application/json")
	tl.WriteJSON(w)
}

// corpus guards the corpus endpoints: they only exist with -data-dir.
func (s *Server) corpus(w http.ResponseWriter) (*store.Store, bool) {
	if s.cfg.Store == nil {
		httpError(w, http.StatusServiceUnavailable, "corpus disabled: start wolfd with -data-dir")
		return nil, false
	}
	return s.cfg.Store, true
}

// handleTraceList is GET /v1/traces: every stored trace blob by content
// address.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	st, ok := s.corpus(w)
	if !ok {
		return
	}
	traces := st.Traces()
	if traces == nil {
		traces = []store.TraceInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": traces})
}

// handleTraceGet is GET /v1/traces/{hash}: the stored blob in its
// canonical binary encoding. The body re-hashes to the URL.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	st, ok := s.corpus(w)
	if !ok {
		return
	}
	rc, size, err := st.OpenTrace(r.PathValue("hash"))
	if err != nil {
		httpError(w, http.StatusNotFound, "no such trace")
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	io.Copy(w, rc)
}

// handleTraceDelete is DELETE /v1/traces/{hash}. Defect records that
// cite the trace keep their (now dangling) reference — the defect was
// still observed.
func (s *Server) handleTraceDelete(w http.ResponseWriter, r *http.Request) {
	st, ok := s.corpus(w)
	if !ok {
		return
	}
	if err := st.DeleteTrace(r.PathValue("hash")); err != nil {
		httpError(w, http.StatusNotFound, "no such trace")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleTraceReplay is POST /v1/traces/{hash}/replay: re-enqueue
// analysis of a stored trace, e.g. after the analysis pipeline improved
// or to regenerate a rehydrated job's graphs.
func (s *Server) handleTraceReplay(w http.ResponseWriter, r *http.Request) {
	st, ok := s.corpus(w)
	if !ok {
		return
	}
	hash := r.PathValue("hash")
	tr, err := st.GetTrace(hash)
	if err != nil {
		httpError(w, http.StatusNotFound, "no such trace")
		return
	}
	j := s.jobs.add("replay:"+hash[:12], ingestTraceparent(w, r), tr, nil)
	j.setTraceHash(hash)
	s.admit(w, j)
}

// defectsMaxLimit caps one page of GET /v1/defects.
const defectsMaxLimit = 1000

// handleDefects is GET /v1/defects: aggregated defect records, filtered
// and paginated. With no parameters it keeps the pre-query behavior
// (most occurrences first) except for the default page cap of 100.
// Filters: class, workload, method, since/until (RFC 3339),
// min_occurrences. sort is occurrences|last_seen|first_seen|rank;
// limit (<=1000) and offset page through the sorted match set, whose
// size is returned as total.
func (s *Server) handleDefects(w http.ResponseWriter, r *http.Request) {
	st, ok := s.corpus(w)
	if !ok {
		return
	}
	q := r.URL.Query()
	opts := store.QueryOptions{
		Class:    q.Get("class"),
		Workload: q.Get("workload"),
		Method:   q.Get("method"),
		Sort:     q.Get("sort"),
		Limit:    100,
	}
	if !store.ValidSort(opts.Sort) {
		httpError(w, http.StatusBadRequest, "invalid sort")
		return
	}
	var err error
	if opts.Since, err = parseTimeParam(q.Get("since")); err != nil {
		httpError(w, http.StatusBadRequest, "invalid since")
		return
	}
	if opts.Until, err = parseTimeParam(q.Get("until")); err != nil {
		httpError(w, http.StatusBadRequest, "invalid until")
		return
	}
	if v := q.Get("min_occurrences"); v != "" {
		if opts.MinOccurrences, err = strconv.Atoi(v); err != nil || opts.MinOccurrences < 0 {
			httpError(w, http.StatusBadRequest, "invalid min_occurrences")
			return
		}
	}
	if v := q.Get("limit"); v != "" {
		if opts.Limit, err = strconv.Atoi(v); err != nil || opts.Limit < 1 {
			httpError(w, http.StatusBadRequest, "invalid limit")
			return
		}
	}
	if opts.Limit > defectsMaxLimit {
		opts.Limit = defectsMaxLimit
	}
	if v := q.Get("offset"); v != "" {
		if opts.Offset, err = strconv.Atoi(v); err != nil || opts.Offset < 0 {
			httpError(w, http.StatusBadRequest, "invalid offset")
			return
		}
	}
	res := st.Query(opts)
	if res.Defects == nil {
		res.Defects = []store.DefectRecord{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"defects": res.Defects,
		"total":   res.Total,
		"limit":   opts.Limit,
		"offset":  opts.Offset,
	})
}

// parseTimeParam parses an optional RFC 3339 query parameter.
func parseTimeParam(v string) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	return time.Parse(time.RFC3339, v)
}

// handleDefect is GET /v1/defects/{fp}: one defect record by full or
// short (12-hex-char) fingerprint.
func (s *Server) handleDefect(w http.ResponseWriter, r *http.Request) {
	st, ok := s.corpus(w)
	if !ok {
		return
	}
	fp := r.PathValue("fp")
	if d, found := st.Defect(fp); found {
		writeJSON(w, http.StatusOK, d)
		return
	}
	// Short-form lookup: unique prefix match.
	if len(fp) >= 12 {
		var match *store.DefectRecord
		for _, d := range st.Defects() {
			if strings.HasPrefix(d.Fingerprint, fp) {
				if match != nil {
					httpError(w, http.StatusConflict, "fingerprint prefix is ambiguous")
					return
				}
				match = d
			}
		}
		if match != nil {
			writeJSON(w, http.StatusOK, match)
			return
		}
	}
	httpError(w, http.StatusNotFound, "no such defect")
}

// handleVersion is GET /version: build information.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.ReadBuildInfo())
}

// handleMetrics is GET /metrics. The fleet families render only in
// coordinator mode, keeping the single-process exposition unchanged.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
	if s.fleet != nil {
		s.metrics.WriteFleetPrometheus(w)
		s.fleet.writePrometheus(w)
	}
	if s.cfg.Store != nil {
		s.cfg.Store.WritePrometheus(w)
	}
}

// role names the server's fleet role for status surfaces.
func (s *Server) role() string {
	if s.fleet != nil {
		return "coordinator"
	}
	return "single"
}

// handleHealthz is GET /healthz: 200 while accepting work, 503 during
// shutdown. The body shares its shape with the planned fleet heartbeat:
// probes and a future coordinator read the same queue/stream/build
// rollup.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	status := http.StatusOK
	state := "ok"
	if closed {
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	body := map[string]any{
		"status":       state,
		"draining":     closed,
		"role":         s.role(),
		"queue_depth":  s.metrics.QueueDepth.Load(),
		"streams_open": s.metrics.StreamsOpen.Load(),
		"version":      obs.ReadBuildInfo().Version,
	}
	if s.fleet != nil {
		nodes, alive, leased, _ := s.fleet.counts()
		body["nodes"] = nodes
		body["nodes_alive"] = alive
		body["jobs_leased"] = leased
	}
	writeJSON(w, status, body)
}

// Metrics exposes the registry (for the binary's logs and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// writeJSON renders v with the right headers.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError renders a JSON error body.
func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
