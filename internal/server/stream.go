package server

// Streaming ingestion: the /v1/streams API. A client opens a stream,
// appends WTRC bytes in arbitrary chunks, and receives cycle candidates
// in each chunk response the moment their closing acquisition decodes —
// the incremental counterpart of POST /v1/traces. Closing a stream
// assembles the decoded trace and hands it to the normal job pipeline,
// so reports, fingerprints and corpus records are byte-identical to the
// batch path.
//
//	POST   /v1/streams             open a stream → 201 + id
//	POST   /v1/streams/{id}/chunks append bytes → 200 + new candidates
//	GET    /v1/streams/{id}        stream status
//	POST   /v1/streams/{id}/close  finalize into a job → 202 + job
//	DELETE /v1/streams/{id}        abort and discard
//
// Streams are a bounded resource: at most MaxOpenStreams are open at
// once (429 + Retry-After beyond that), idle streams are evicted by a
// janitor after StreamIdleTimeout, and each stream's decoder enforces
// StreamMemBudget (413 on breach). Every terminal path — close, abort,
// idle eviction, decode error, shutdown — releases the slot exactly
// once.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"wolf/internal/obs"
	"wolf/internal/stream"
	"wolf/internal/trace"
)

// streamSession is one open stream: a suspended decoder, the
// incremental engine fed from it, and bookkeeping for eviction.
type streamSession struct {
	ID      string
	created time.Time
	rec     *obs.Recorder
	// trace is the W3C trace ID from the opening request (minted when
	// absent), stamped on every chunk span, log line and event the
	// stream produces — and inherited by the job its close creates.
	trace string
	// source is the client-declared origin from the open request's
	// metadata body ("sim", "wolfsync", ...; "unknown" when absent),
	// the label on wolfd_streams_opened_total.
	source string

	mu    sync.Mutex
	last  time.Time
	dec   *stream.Decoder
	eng   *stream.Engine
	armed bool // engine clocks set from the stream header
	cands int  // candidates emitted so far
	gone  bool // removed from the registry; session is dead
}

// StreamView is the wire form of a stream's status.
type StreamView struct {
	ID         string    `json:"id"`
	Trace      string    `json:"trace,omitempty"`
	Source     string    `json:"source"`
	Created    time.Time `json:"created"`
	Bytes      int64     `json:"bytes"`
	Events     int       `json:"events"`
	Candidates int       `json:"candidates"`
	Done       bool      `json:"done"`
	Mem        int       `json:"mem"`
	Peak       int       `json:"peak"`
	Budget     int       `json:"budget"`
}

// view snapshots the session under its lock.
func (ss *streamSession) view(budget int) StreamView {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return StreamView{
		ID:         ss.ID,
		Trace:      ss.trace,
		Source:     ss.source,
		Created:    ss.created,
		Bytes:      ss.dec.BytesIn(),
		Events:     ss.eng.Events(),
		Candidates: ss.cands,
		Done:       ss.dec.Done(),
		Mem:        ss.dec.Mem(),
		Peak:       ss.dec.Peak(),
		Budget:     budget,
	}
}

// streamStore is the registry of open streams.
type streamStore struct {
	mu  sync.Mutex
	seq int
	m   map[string]*streamSession
}

func newStreamStore() *streamStore {
	return &streamStore{m: make(map[string]*streamSession)}
}

// open admits a new stream unless max are already open.
func (st *streamStore) open(max, budget int, traceID, source string) (*streamSession, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.m) >= max {
		return nil, false
	}
	st.seq++
	now := time.Now()
	ss := &streamSession{
		ID:      fmt.Sprintf("s-%06d", st.seq),
		created: now,
		last:    now,
		rec:     obs.NewRecorder(),
		trace:   traceID,
		source:  source,
		dec:     stream.NewDecoder(budget),
		eng:     stream.NewEngine(stream.EngineConfig{}),
	}
	st.m[ss.ID] = ss
	return ss, true
}

func (st *streamStore) get(id string) (*streamSession, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss, ok := st.m[id]
	return ss, ok
}

func (st *streamStore) remove(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.m, id)
}

// snapshot returns the open sessions for janitor scans.
func (st *streamStore) snapshot() []*streamSession {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*streamSession, 0, len(st.m))
	for _, ss := range st.m {
		out = append(out, ss)
	}
	return out
}

// dropStream retires a session exactly once: marks it dead, frees its
// slot, and folds its byte count into the per-stream size histogram.
// reason is the eviction label ("" for a normal close, which is not an
// eviction). Callers must not hold ss.mu.
func (s *Server) dropStream(ss *streamSession, reason string) bool {
	ss.mu.Lock()
	if ss.gone {
		ss.mu.Unlock()
		return false
	}
	ss.gone = true
	bytes := ss.dec.BytesIn()
	ss.mu.Unlock()
	s.streams.remove(ss.ID)
	s.metrics.StreamsOpen.Add(-1)
	s.metrics.StreamBytes.ObserveValue(bytes)
	if reason != "" {
		s.metrics.StreamEvicted.Add(reason, 1)
		s.cfg.Logger.Info("stream evicted", "stream", ss.ID, "trace", ss.trace,
			"reason", reason, "bytes", bytes)
		s.event(obs.Event{Kind: evStreamEvict, Stream: ss.ID, Trace: ss.trace,
			Msg: reason, Attrs: map[string]string{"reason": reason}})
	}
	return true
}

// streamJanitor evicts idle streams until Shutdown closes streamStop.
func (s *Server) streamJanitor() {
	defer s.wg.Done()
	tick := min(max(s.cfg.StreamIdleTimeout/4, 50*time.Millisecond), 15*time.Second)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.streamStop:
			return
		case now := <-t.C:
			for _, ss := range s.streams.snapshot() {
				ss.mu.Lock()
				idle := now.Sub(ss.last) > s.cfg.StreamIdleTimeout
				ss.mu.Unlock()
				if idle {
					s.dropStream(ss, "idle")
				}
			}
		}
	}
}

// handleStreamOpen is POST /v1/streams: admit a stream or shed load.
func (s *Server) handleStreamOpen(w http.ResponseWriter, r *http.Request) {
	if s.draining() {
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	traceID := ingestTraceparent(w, r)
	source, err := ingestStreamMeta(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	budget := int(s.cfg.StreamMemBudget)
	ss, ok := s.streams.open(s.cfg.MaxOpenStreams, budget, traceID, source)
	if !ok {
		s.metrics.StreamsRejected.Add(1)
		s.event(obs.Event{Kind: evStreamShed, Trace: traceID, Msg: "too many open streams"})
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("too many open streams (max %d)", s.cfg.MaxOpenStreams))
		return
	}
	s.metrics.StreamsOpen.Add(1)
	s.metrics.StreamsOpened.Add(source, 1)
	s.cfg.Logger.Info("stream opened", "stream", ss.ID, "trace", ss.trace, "source", source)
	s.event(obs.Event{Kind: evStreamOpen, Stream: ss.ID, Trace: ss.trace,
		Attrs: map[string]string{"source": source}})
	w.Header().Set("Location", "/v1/streams/"+ss.ID)
	writeJSON(w, http.StatusCreated, ss.view(budget))
}

// ingestStreamMeta reads the optional JSON metadata body of a stream
// open ({"source": "sim" | "wolfsync" | ...}). An empty body is fine
// (clients predating the field, curl) and yields "unknown"; a body
// that is present but not valid JSON is a client error. The source is
// a metrics label, so it is clamped to a small safe alphabet rather
// than trusted.
func ingestStreamMeta(w http.ResponseWriter, r *http.Request) (string, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4096))
	if err != nil {
		return "", fmt.Errorf("read stream metadata: %v", err)
	}
	if len(bytes.TrimSpace(body)) == 0 {
		return "unknown", nil
	}
	var meta struct {
		Source string `json:"source"`
	}
	if err := json.Unmarshal(body, &meta); err != nil {
		return "", fmt.Errorf("stream metadata: %v", err)
	}
	return sanitizeSource(meta.Source), nil
}

// sanitizeSource clamps a client-declared source to a label-safe
// token: lowercase letters, digits, '-', '_', at most 32 bytes.
// Anything else collapses to "unknown" — a label cardinality bound,
// not a validation error.
func sanitizeSource(s string) string {
	if s == "" || len(s) > 32 {
		return "unknown"
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' && c != '_' {
			return "unknown"
		}
	}
	return s
}

// chunkResponse answers one append: running totals plus the candidates
// whose cycles this chunk closed.
type chunkResponse struct {
	ID         string             `json:"id"`
	Bytes      int64              `json:"bytes"`
	Events     int                `json:"events"`
	Candidates int                `json:"candidates"`
	Done       bool               `json:"done"`
	New        []stream.Candidate `json:"new,omitempty"`
}

// handleStreamChunk is POST /v1/streams/{id}/chunks: feed bytes through
// the suspended decoder, drain completed tuples into the engine, and
// return any cycles that just closed. Appends to one stream are
// serialized by the session lock; distinct streams proceed in parallel.
func (s *Server) handleStreamChunk(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such stream")
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, "chunk exceeds upload limit")
		} else {
			httpError(w, http.StatusBadRequest, "read chunk: "+err.Error())
		}
		return
	}

	ss.mu.Lock()
	if ss.gone {
		ss.mu.Unlock()
		httpError(w, http.StatusNotFound, "no such stream")
		return
	}
	ss.last = time.Now()
	_, sp := obs.Start(obs.WithTrace(obs.WithRecorder(r.Context(), ss.rec), ss.trace, ""), "stream.chunk")
	sp.Add("bytes", int64(len(data)))
	werr := ss.dec.Write(data)
	var resp chunkResponse
	if werr == nil {
		if !ss.armed && ss.dec.HeaderDone() {
			ss.eng.SetClocks(ss.dec.Clocks())
			ss.armed = true
		}
		events := ss.dec.Events()
		var cands []stream.Candidate
		for _, tp := range events {
			cands = append(cands, ss.eng.Add(tp)...)
		}
		ss.cands += len(cands)
		sp.Add("events", int64(len(events)))
		sp.Add("candidates", int64(len(cands)))
		s.metrics.StreamEvents.Add(int64(len(events)))
		s.metrics.StreamCandidates.Add(int64(len(cands)))
		resp = chunkResponse{
			ID:         ss.ID,
			Bytes:      ss.dec.BytesIn(),
			Events:     ss.eng.Events(),
			Candidates: ss.cands,
			Done:       ss.dec.Done(),
			New:        cands,
		}
	}
	sp.End()
	ss.mu.Unlock()

	if werr != nil {
		s.rejectStream(w, ss, werr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// rejectStream maps a decode error to its HTTP status, evicts the
// stream, and labels the eviction with the error family — the
// mid-stream analogue of readTrace's 400/413/422 mapping.
func (s *Server) rejectStream(w http.ResponseWriter, ss *streamSession, err error) {
	var ve *trace.ValidationError
	switch {
	case errors.Is(err, stream.ErrBudget):
		s.dropStream(ss, "budget")
		httpError(w, http.StatusRequestEntityTooLarge, err.Error())
	case errors.As(err, &ve):
		s.metrics.InvalidTraces.Add(ve.Class, 1)
		s.dropStream(ss, "invalid")
		httpError(w, http.StatusUnprocessableEntity, err.Error())
	case errors.Is(err, trace.ErrInvalid):
		s.metrics.InvalidTraces.Add("invalid", 1)
		s.dropStream(ss, "invalid")
		httpError(w, http.StatusUnprocessableEntity, err.Error())
	default:
		s.dropStream(ss, "corrupt")
		httpError(w, http.StatusBadRequest, "bad trace: "+err.Error())
	}
}

// handleStreamGet is GET /v1/streams/{id}.
func (s *Server) handleStreamGet(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such stream")
		return
	}
	writeJSON(w, http.StatusOK, ss.view(int(s.cfg.StreamMemBudget)))
}

// handleStreamClose is POST /v1/streams/{id}/close: assemble the
// decoded trace and enqueue it as a normal job — from here on the
// stream is indistinguishable from a batch upload, which is what makes
// its report fingerprints byte-identical to POST /v1/traces.
func (s *Server) handleStreamClose(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such stream")
		return
	}
	ss.mu.Lock()
	if ss.gone {
		ss.mu.Unlock()
		httpError(w, http.StatusNotFound, "no such stream")
		return
	}
	ss.last = time.Now()
	_, sp := obs.Start(obs.WithTrace(obs.WithRecorder(r.Context(), ss.rec), ss.trace, ""), "stream.finalize")
	tr, err := ss.dec.Finalize()
	sp.Add("events", int64(ss.eng.Events()))
	sp.End()
	bytes, cands := ss.dec.BytesIn(), ss.cands
	ss.mu.Unlock()

	if err != nil {
		s.rejectStream(w, ss, err)
		return
	}
	if len(tr.Tuples) == 0 {
		s.dropStream(ss, "empty")
		httpError(w, http.StatusBadRequest, "bad trace: no lock acquisitions recorded")
		return
	}
	s.dropStream(ss, "")
	s.cfg.Logger.Info("stream closed", "stream", ss.ID, "trace", ss.trace,
		"bytes", bytes, "events", len(tr.Tuples), "candidates", cands)
	s.event(obs.Event{Kind: evStreamClose, Stream: ss.ID, Trace: ss.trace,
		Attrs: map[string]string{
			"bytes":      strconv.FormatInt(bytes, 10),
			"events":     strconv.Itoa(len(tr.Tuples)),
			"candidates": strconv.Itoa(cands),
		}})
	// The finalized job inherits the stream's causal identity, so the
	// whole ingest→analyze→report arc shares one trace ID.
	j := s.jobs.add("stream:"+ss.ID, ss.trace, tr, nil)
	s.archiveTrace(r.Context(), j, tr)
	s.admit(w, j)
}

// handleStreamDelete is DELETE /v1/streams/{id}: abort and discard.
func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.streams.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such stream")
		return
	}
	s.dropStream(ss, "aborted")
	w.WriteHeader(http.StatusNoContent)
}
