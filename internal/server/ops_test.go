package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"wolf/internal/obs"
	"wolf/internal/store"
)

// syncBuffer is a goroutine-safe log sink for asserting slog output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// debugEvents fetches /v1/debug/events with the given raw query.
func debugEvents(t *testing.T, base, query string) []obs.Event {
	t.Helper()
	var out struct {
		Events []obs.Event `json:"events"`
		Seq    uint64      `json:"seq"`
	}
	if code := getJSON(t, base+"/v1/debug/events"+query, &out); code != http.StatusOK {
		t.Fatalf("debug/events%s = %d", query, code)
	}
	return out.Events
}

// TestTraceparentRoundTrip is the PR's acceptance criterion end to end:
// one client-supplied trace ID must appear verbatim in the upload
// response (header and body), the job view, the slog lines, the
// persisted job record, the flight-recorder events, and the exported
// timeline.
func TestTraceparentRoundTrip(t *testing.T) {
	tr := fig4Trace(t)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var logs syncBuffer
	logger := slog.New(slog.NewTextHandler(&logs, nil))
	_, ts := startServer(t, Config{Workers: 2, QueueSize: 8, Store: st, Logger: logger})

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	parent := "00-" + traceID + "-00f067aa0ba902b7-01"

	var body bytes.Buffer
	if err := tr.Write(&body); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/traces", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("upload = %d", resp.StatusCode)
	}

	// 1. Echoed in the response header, with a fresh server-side span.
	echo := resp.Header.Get("Traceparent")
	gotTrace, gotSpan, err := obs.ParseTraceparent(echo)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", echo, err)
	}
	if gotTrace != traceID {
		t.Fatalf("response trace = %s, want %s", gotTrace, traceID)
	}
	if gotSpan == "00f067aa0ba902b7" {
		t.Fatal("server echoed the client span ID instead of minting one")
	}

	// 2. In the upload response body and the job view.
	var accepted JobView
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Trace != traceID {
		t.Fatalf("accepted.trace = %q, want %s", accepted.Trace, traceID)
	}
	v := pollJob(t, ts.URL, accepted.ID)
	if v.State != string(StateDone) {
		t.Fatalf("job state = %s (%s)", v.State, v.Error)
	}
	if v.Trace != traceID {
		t.Fatalf("job view trace = %q, want %s", v.Trace, traceID)
	}

	// 3. In the persisted job record.
	found := false
	for _, rec := range st.Jobs() {
		if rec.ID == accepted.ID {
			found = true
			if rec.Trace != traceID {
				t.Fatalf("persisted trace = %q, want %s", rec.Trace, traceID)
			}
		}
	}
	if !found {
		t.Fatalf("job %s not persisted", accepted.ID)
	}

	// 4. In the slog lines for the job.
	if !strings.Contains(logs.String(), "trace="+traceID) {
		t.Fatalf("slog output missing trace=%s:\n%s", traceID, logs.String())
	}

	// 5. In the flight-recorder events, filterable by ?trace=.
	events := debugEvents(t, ts.URL, "?trace="+traceID)
	kinds := map[string]bool{}
	for _, ev := range events {
		if ev.Trace != traceID {
			t.Fatalf("event %d trace = %q, want %s", ev.Seq, ev.Trace, traceID)
		}
		kinds[ev.Kind] = true
	}
	for _, want := range []string{evJobQueued, evJobStarted, evJobDone} {
		if !kinds[want] {
			t.Fatalf("no %s event for trace; got %v", want, kinds)
		}
	}

	// 6. In the exported timeline, verbatim.
	httpResp, err := http.Get(ts.URL + "/v1/jobs/" + accepted.ID + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var tl bytes.Buffer
	if _, err := tl.ReadFrom(httpResp.Body); err != nil {
		t.Fatal(err)
	}
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("timeline = %d", httpResp.StatusCode)
	}
	if !strings.Contains(tl.String(), traceID) {
		t.Fatal("timeline export missing the trace ID")
	}
}

// TestTraceparentMinted: without a client header (or with a mangled
// one) wolfd mints a valid trace ID and still echoes it back.
func TestTraceparentMinted(t *testing.T) {
	tr := fig4Trace(t)
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4})
	var body bytes.Buffer
	if err := tr.Write(&body); err != nil {
		t.Fatal(err)
	}
	for _, hdr := range []string{"", "00-zz-bad-header"} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/traces", bytes.NewReader(body.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if hdr != "" {
			req.Header.Set("traceparent", hdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var accepted JobView
		err = json.NewDecoder(resp.Body).Decode(&accepted)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		gotTrace, _, perr := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
		if perr != nil {
			t.Fatalf("minted traceparent %q: %v", resp.Header.Get("Traceparent"), perr)
		}
		if accepted.Trace != gotTrace {
			t.Fatalf("body trace %q != header trace %q", accepted.Trace, gotTrace)
		}
	}
}

// TestStatusEndpoint checks the one-shot ops rollup: shape, config
// echoes, per-stage latency keys, error window, and corpus counts.
func TestStatusEndpoint(t *testing.T) {
	tr := fig4Trace(t)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, ts := startServer(t, Config{Workers: 3, QueueSize: 16, Store: st})

	var body bytes.Buffer
	if err := tr.Write(&body); err != nil {
		t.Fatal(err)
	}
	code, accepted := postTrace(t, ts.URL+"/v1/traces", body.Bytes(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("upload = %d", code)
	}
	id, _ := accepted["id"].(string)
	pollJob(t, ts.URL, id)

	var v StatusView
	if code := getJSON(t, ts.URL+"/v1/status", &v); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if v.Status != "ok" {
		t.Fatalf("status = %q, want ok", v.Status)
	}
	if v.UptimeSeconds <= 0 {
		t.Fatal("uptime not positive")
	}
	if v.Queue.Capacity != 16 || v.Workers.Total != 3 {
		t.Fatalf("config echo: queue cap %d workers %d", v.Queue.Capacity, v.Workers.Total)
	}
	if v.Jobs.Accepted < 1 || v.Jobs.Completed < 1 {
		t.Fatalf("job counters: %+v", v.Jobs)
	}
	if v.ErrorWindow.Seconds != errorWindowSeconds || v.ErrorWindow.Done < 1 {
		t.Fatalf("error window: %+v", v.ErrorWindow)
	}
	if v.ErrorWindow.Rate != 0 {
		t.Fatalf("error rate = %v with no failures", v.ErrorWindow.Rate)
	}
	for _, stage := range []string{"queue_wait", "detect", "prune", "generate", "analysis"} {
		lat, ok := v.Latency[stage]
		if !ok {
			t.Fatalf("latency missing stage %s", stage)
		}
		if lat.P50 > lat.P99 {
			t.Fatalf("%s: p50 %v > p99 %v", stage, lat.P50, lat.P99)
		}
	}
	if v.Latency["analysis"].Count < 1 {
		t.Fatal("analysis histogram empty after a completed job")
	}
	if v.Corpus == nil || v.Corpus.Traces < 1 || v.Corpus.Jobs < 1 {
		t.Fatalf("corpus view: %+v", v.Corpus)
	}
	if v.Events.Seq == 0 || v.Events.Capacity == 0 {
		t.Fatalf("events cursor: %+v", v.Events)
	}

	// Without a corpus the block is omitted entirely.
	_, ts2 := startServer(t, Config{Workers: 1, QueueSize: 4})
	var bare StatusView
	getJSON(t, ts2.URL+"/v1/status", &bare)
	if bare.Corpus != nil {
		t.Fatal("corpus view present without a store")
	}
}

// TestDebugEventsFilters exercises the snapshot query surface: kind and
// since filters, and rejection of a malformed cursor.
func TestDebugEventsFilters(t *testing.T) {
	tr := fig4Trace(t)
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4})
	var body bytes.Buffer
	if err := tr.Write(&body); err != nil {
		t.Fatal(err)
	}
	code, accepted := postTrace(t, ts.URL+"/v1/traces", body.Bytes(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("upload = %d", code)
	}
	id, _ := accepted["id"].(string)
	pollJob(t, ts.URL, id)

	all := debugEvents(t, ts.URL, "")
	if len(all) < 3 {
		t.Fatalf("want >=3 events, got %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("events out of order at %d: %d then %d", i, all[i-1].Seq, all[i].Seq)
		}
	}
	for _, ev := range debugEvents(t, ts.URL, "?kind="+evJobQueued) {
		if ev.Kind != evJobQueued {
			t.Fatalf("kind filter leaked %s", ev.Kind)
		}
	}
	for _, ev := range debugEvents(t, ts.URL, "?job="+id) {
		if ev.Job != id {
			t.Fatalf("job filter leaked %s", ev.Job)
		}
	}
	mid := all[len(all)/2].Seq
	for _, ev := range debugEvents(t, ts.URL, fmt.Sprintf("?since=%d", mid)) {
		if ev.Seq <= mid {
			t.Fatalf("since=%d returned seq %d", mid, ev.Seq)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/debug/events?since=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since = %d, want 400", resp.StatusCode)
	}
}

// TestEventsSSEFraming is the framing golden test for the live tail:
// every frame must be exactly `id: <seq>` / `data: <event JSON>` /
// blank line, with strictly increasing ids matching the event's own
// sequence number.
func TestEventsSSEFraming(t *testing.T) {
	tr := fig4Trace(t)
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4})

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/debug/events?follow=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}

	var body bytes.Buffer
	if err := tr.Write(&body); err != nil {
		t.Fatal(err)
	}
	code, accepted := postTrace(t, ts.URL+"/v1/traces", body.Bytes(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("upload = %d", code)
	}
	id, _ := accepted["id"].(string)
	pollJob(t, ts.URL, id)

	idLine := regexp.MustCompile(`^id: (\d+)$`)
	sc := bufio.NewScanner(resp.Body)
	deadline := time.AfterFunc(15*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	var lastSeq uint64
	frames := 0
	for frames < 3 && sc.Scan() {
		m := idLine.FindStringSubmatch(sc.Text())
		if m == nil {
			t.Fatalf("frame %d: first line %q, want `id: <seq>`", frames, sc.Text())
		}
		if !sc.Scan() {
			t.Fatal("stream ended mid-frame")
		}
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			t.Fatalf("frame %d: second line %q, want `data: ...`", frames, sc.Text())
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("frame %d: data not JSON: %v", frames, err)
		}
		if fmt.Sprintf("%d", ev.Seq) != m[1] {
			t.Fatalf("frame %d: id %s != event seq %d", frames, m[1], ev.Seq)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("frame %d: seq %d not increasing past %d", frames, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Kind == "" {
			t.Fatalf("frame %d: empty kind", frames)
		}
		if !sc.Scan() || sc.Text() != "" {
			t.Fatalf("frame %d: missing blank separator line", frames)
		}
		frames++
	}
	if frames < 3 {
		t.Fatalf("tail delivered %d frames before close, want >=3 (%v)", frames, sc.Err())
	}
}

// TestHealthzOps checks the upgraded liveness probe fields.
func TestHealthzOps(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4})
	var v struct {
		Status      string `json:"status"`
		Draining    bool   `json:"draining"`
		QueueDepth  int64  `json:"queue_depth"`
		StreamsOpen int64  `json:"streams_open"`
		Version     string `json:"version"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &v); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if v.Status != "ok" || v.Draining {
		t.Fatalf("healthz: %+v", v)
	}
	if v.Version == "" {
		t.Fatal("healthz missing build version")
	}
}

// eventKindPattern is the lint rule for flight-recorder kinds: they
// become Prometheus label values, so keep them lowercase dot-paths.
var eventKindPattern = regexp.MustCompile(`^[a-z]+(\.[a-z]+)+$`)

// TestEventKindLabels lints the event-kind vocabulary and checks the
// wolfd_events_total family renders through the strict PromLint gate.
func TestEventKindLabels(t *testing.T) {
	for _, kind := range []string{
		evJobQueued, evJobStarted, evJobDone, evJobFailed, evJobShed,
		evSyncShed, evStreamOpen, evStreamClose, evStreamEvict,
		evStreamShed, evStoreTrace, evStoreDefect, evStoreGC, evReplayVerdict,
		evNodeJoin, evNodeLost, evJobReassigned,
	} {
		if !eventKindPattern.MatchString(kind) {
			t.Errorf("event kind %q breaks the label-value pattern %s", kind, eventKindPattern)
		}
	}

	tr := fig4Trace(t)
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4})
	var body bytes.Buffer
	if err := tr.Write(&body); err != nil {
		t.Fatal(err)
	}
	code, accepted := postTrace(t, ts.URL+"/v1/traces", body.Bytes(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("upload = %d", code)
	}
	id, _ := accepted["id"].(string)
	pollJob(t, ts.URL, id)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var text bytes.Buffer
	if _, err := text.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if errs := obs.PromLint(strings.NewReader(text.String())); len(errs) != 0 {
		t.Fatalf("promlint: %v", errs)
	}
	for _, want := range []string{
		`wolfd_events_total{kind="job.queued"} 1`,
		`wolfd_events_total{kind="job.started"} 1`,
		`wolfd_events_total{kind="job.done"} 1`,
		`wolfd_workers_busy`,
	} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, text.String())
		}
	}
}
