package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"wolf/internal/core"
	"wolf/internal/obs"
	"wolf/internal/workloads"
)

// encodeBinary serializes a trace to WTRC bytes.
func encodeBinary(t *testing.T, tr interface{ WriteBinary(io.Writer) error }) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openStream opens a stream and returns its id.
func openStream(t *testing.T, base string) string {
	t.Helper()
	code, body := postTrace(t, base+"/v1/streams", nil, nil)
	if code != http.StatusCreated {
		t.Fatalf("open stream = %d (%v)", code, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("stream response without id: %v", body)
	}
	return id
}

// streamChunks feeds data in chunkSize pieces, returning the last
// response and the candidate fingerprints collected along the way.
func streamChunks(t *testing.T, base, id string, data []byte, chunkSize int) (map[string]any, []string) {
	t.Helper()
	var last map[string]any
	var fps []string
	for off := 0; off < len(data); off += chunkSize {
		end := min(off+chunkSize, len(data))
		code, body := postTrace(t, base+"/v1/streams/"+id+"/chunks", data[off:end], nil)
		if code != http.StatusOK {
			t.Fatalf("chunk at %d = %d (%v)", off, code, body)
		}
		last = body
		if news, ok := body["new"].([]any); ok {
			for _, c := range news {
				if m, ok := c.(map[string]any); ok {
					if fp, ok := m["fingerprint"].(string); ok {
						fps = append(fps, fp)
					}
				}
			}
		}
	}
	return last, fps
}

// closeStream finalizes and returns the job id from the 202 response.
func closeStream(t *testing.T, base, id string) string {
	t.Helper()
	code, body := postTrace(t, base+"/v1/streams/"+id+"/close", nil, nil)
	if code != http.StatusAccepted {
		t.Fatalf("close stream = %d (%v)", code, body)
	}
	jid, _ := body["id"].(string)
	if jid == "" {
		t.Fatalf("close response without job id: %v", body)
	}
	return jid
}

// reportFingerprints fetches a finished job's report and returns its
// sorted cycle fingerprints.
func reportFingerprints(t *testing.T, base, jobID string) []string {
	t.Helper()
	if v := pollJob(t, base, jobID); v.State != string(StateDone) {
		t.Fatalf("job %s state = %s (%s)", jobID, v.State, v.Error)
	}
	var rep struct {
		Cycles []struct {
			Fingerprint string `json:"fingerprint"`
		} `json:"cycles"`
	}
	if code := getJSON(t, base+"/v1/jobs/"+jobID+"/report", &rep); code != http.StatusOK {
		t.Fatalf("report = %d", code)
	}
	fps := make([]string, 0, len(rep.Cycles))
	for _, c := range rep.Cycles {
		fps = append(fps, c.Fingerprint)
	}
	sort.Strings(fps)
	return fps
}

// TestStreamMatchesBatchRegistry is the subsystem's acceptance
// contract: for every workload in the registry, streaming the WTRC
// trace in ≤4 KiB chunks yields a report whose cycle fingerprints are
// byte-identical to the batch POST /v1/traces path, and the candidates
// emitted mid-stream carry exactly those fingerprints.
func TestStreamMatchesBatchRegistry(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 4, QueueSize: 64})
	for _, wl := range workloads.Registry() {
		t.Run(wl.Name, func(t *testing.T) {
			seed, ok := workloads.FindTerminatingSeed(wl.New, 300)
			if !ok {
				t.Skipf("no terminating seed for %s", wl.Name)
			}
			tr := core.Record(wl.New, seed, 0)
			data := encodeBinary(t, tr)

			code, batchJob := postTrace(t, ts.URL+"/v1/traces", data, nil)
			if code != http.StatusAccepted {
				t.Fatalf("batch upload = %d", code)
			}
			batchFPs := reportFingerprints(t, ts.URL, batchJob["id"].(string))

			id := openStream(t, ts.URL)
			last, liveFPs := streamChunks(t, ts.URL, id, data, 4096)
			if done, _ := last["done"].(bool); !done {
				t.Fatalf("stream not done after all chunks: %v", last)
			}
			streamFPs := reportFingerprints(t, ts.URL, closeStream(t, ts.URL, id))

			if !equalStrings(batchFPs, streamFPs) {
				t.Errorf("report fingerprints differ\nbatch:  %v\nstream: %v", batchFPs, streamFPs)
			}
			sort.Strings(liveFPs)
			if !equalStrings(dedup(liveFPs), dedup(batchFPs)) {
				t.Errorf("mid-stream candidate fingerprints differ from batch cycles\nlive:  %v\nbatch: %v",
					dedup(liveFPs), dedup(batchFPs))
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dedup collapses a sorted slice to its distinct values.
func dedup(sorted []string) []string {
	var out []string
	for _, s := range sorted {
		if len(out) == 0 || out[len(out)-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// TestStreamShedding: the max-open-streams cap sheds with 429 +
// Retry-After, and aborting a stream frees its slot.
func TestStreamShedding(t *testing.T) {
	s, ts := startServer(t, Config{MaxOpenStreams: 2})
	a := openStream(t, ts.URL)
	openStream(t, ts.URL)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/streams", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third open = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if s.metrics.StreamsRejected.Load() == 0 {
		t.Fatal("shed open not counted")
	}

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/"+a, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("abort = %d, want 204", resp.StatusCode)
	}
	openStream(t, ts.URL) // slot freed
	if got := s.metrics.StreamsOpen.Load(); got != 2 {
		t.Fatalf("streams_open = %d, want 2", got)
	}
}

// TestStreamIdleEviction: a stream with no traffic is evicted by the
// janitor and later appends see 404.
func TestStreamIdleEviction(t *testing.T) {
	s, ts := startServer(t, Config{StreamIdleTimeout: 50 * time.Millisecond})
	id := openStream(t, ts.URL)
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.StreamsOpen.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.metrics.StreamsOpen.Load(); got != 0 {
		t.Fatalf("streams_open = %d after idle timeout", got)
	}
	if n := s.metrics.StreamEvicted.Snapshot()["idle"]; n == 0 {
		t.Fatal("idle eviction not counted")
	}
	code, _ := postTrace(t, ts.URL+"/v1/streams/"+id+"/chunks", []byte("WTRC"), nil)
	if code != http.StatusNotFound {
		t.Fatalf("chunk after eviction = %d, want 404", code)
	}
}

// TestStreamBudget: a starved per-stream budget rejects mid-stream with
// 413 and evicts the stream.
func TestStreamBudget(t *testing.T) {
	s, ts := startServer(t, Config{StreamMemBudget: 1024})
	data := encodeBinary(t, fig4Trace(t))
	id := openStream(t, ts.URL)
	got := 0
	for off := 0; off < len(data); off += 256 {
		end := min(off+256, len(data))
		code, _ := postTrace(t, ts.URL+"/v1/streams/"+id+"/chunks", data[off:end], nil)
		if code != http.StatusOK {
			got = code
			break
		}
	}
	if got != http.StatusRequestEntityTooLarge {
		t.Fatalf("starved stream = %d, want 413", got)
	}
	if n := s.metrics.StreamEvicted.Snapshot()["budget"]; n == 0 {
		t.Fatal("budget eviction not counted")
	}
}

// TestStreamRejectsMidStream: structurally corrupt bytes are a 400 and
// an invalid-but-well-formed trace is a 422 labeled with its corruption
// class — both evicting the stream at the offending chunk.
func TestStreamRejectsMidStream(t *testing.T) {
	s, ts := startServer(t, Config{})

	id := openStream(t, ts.URL)
	code, _ := postTrace(t, ts.URL+"/v1/streams/"+id+"/chunks", []byte("NOPE not a trace"), nil)
	if code != http.StatusBadRequest {
		t.Fatalf("corrupt chunk = %d, want 400", code)
	}
	if n := s.metrics.StreamEvicted.Snapshot()["corrupt"]; n == 0 {
		t.Fatal("corrupt eviction not counted")
	}

	tr := fig4Trace(t)
	tr.Tuples[0].Key.Occ = 0 // bad-key
	data := encodeBinary(t, tr)
	id = openStream(t, ts.URL)
	status := 0
	for off := 0; off < len(data); off += 512 {
		end := min(off+512, len(data))
		c, _ := postTrace(t, ts.URL+"/v1/streams/"+id+"/chunks", data[off:end], nil)
		if c != http.StatusOK {
			status = c
			break
		}
	}
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("invalid stream = %d, want 422", status)
	}
	if n := s.metrics.InvalidTraces.Snapshot()["bad-key"]; n == 0 {
		t.Fatal("validation class not counted")
	}
}

// TestStreamConcurrent exercises many interleaved streams end to end —
// the race-detector companion of the registry test.
func TestStreamConcurrent(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 4, QueueSize: 64, MaxOpenStreams: 16})
	data := encodeBinary(t, fig4Trace(t))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body := postTrace(t, ts.URL+"/v1/streams", nil, nil)
			if code != http.StatusCreated {
				errs <- fmt.Errorf("open = %d", code)
				return
			}
			id := body["id"].(string)
			for off := 0; off < len(data); off += 512 {
				end := min(off+512, len(data))
				if c, _ := postTrace(t, ts.URL+"/v1/streams/"+id+"/chunks", data[off:end], nil); c != http.StatusOK {
					errs <- fmt.Errorf("chunk = %d", c)
					return
				}
			}
			code, body = postTrace(t, ts.URL+"/v1/streams/"+id+"/close", nil, nil)
			if code != http.StatusAccepted {
				errs <- fmt.Errorf("close = %d (%v)", code, body)
				return
			}
			if v := pollJob(t, ts.URL, body["id"].(string)); v.State != string(StateDone) {
				errs <- fmt.Errorf("job state = %s (%s)", v.State, v.Error)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestStreamMetricsLint: after stream traffic including evictions, the
// exposition passes the strict linter and carries the stream families.
func TestStreamMetricsLint(t *testing.T) {
	s, ts := startServer(t, Config{StreamMemBudget: 1024})
	data := encodeBinary(t, fig4Trace(t))

	id := openStream(t, ts.URL)
	streamChunksUntilError(t, ts.URL, id, data) // budget eviction
	id = openStream(t, ts.URL)
	closeStreamOrError(t, ts.URL, id)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	if errs := obs.PromLint(strings.NewReader(text)); len(errs) != 0 {
		t.Fatalf("metrics lint: %v", errs)
	}
	for _, want := range []string{
		"wolfd_streams_open ",
		`wolfd_streams_opened_total{source="unknown"} 2`,
		"wolfd_stream_events_total",
		`wolfd_stream_evicted_total{reason="budget"}`,
		`wolfd_stream_bytes_bucket{le="+Inf"}`,
		"wolfd_stream_bytes_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	_ = s
}

// streamChunksUntilError feeds chunks until the server rejects one.
func streamChunksUntilError(t *testing.T, base, id string, data []byte) {
	t.Helper()
	for off := 0; off < len(data); off += 256 {
		end := min(off+256, len(data))
		if code, _ := postTrace(t, base+"/v1/streams/"+id+"/chunks", data[off:end], nil); code != http.StatusOK {
			return
		}
	}
	t.Fatal("no chunk was rejected")
}

// closeStreamOrError closes an (empty) stream, accepting the 400 an
// empty trace earns — the point is exercising the terminal path.
// TestStreamOpenSourceLabel: the optional metadata body of a stream
// open labels wolfd_streams_opened_total by source, surfaces in the
// stream view, and collapses unsafe values to "unknown"; a malformed
// body is a 400.
func TestStreamOpenSourceLabel(t *testing.T) {
	_, ts := startServer(t, Config{})

	open := func(body string) (int, map[string]any) {
		t.Helper()
		return postTrace(t, ts.URL+"/v1/streams", []byte(body), nil)
	}

	code, view := open(`{"source":"wolfsync"}`)
	if code != http.StatusCreated || view["source"] != "wolfsync" {
		t.Fatalf("wolfsync open = %d %v", code, view)
	}
	if code, view = open(`{"source":"sim"}`); code != http.StatusCreated || view["source"] != "sim" {
		t.Fatalf("sim open = %d %v", code, view)
	}
	if code, view = open(`{"source":"Weird Label!"}`); code != http.StatusCreated || view["source"] != "unknown" {
		t.Fatalf("unsafe open = %d %v", code, view)
	}
	if code, _ = open(`{not json`); code != http.StatusBadRequest {
		t.Fatalf("malformed metadata = %d, want 400", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`wolfd_streams_opened_total{source="wolfsync"} 1`,
		`wolfd_streams_opened_total{source="sim"} 1`,
		`wolfd_streams_opened_total{source="unknown"} 1`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if errs := obs.PromLint(bytes.NewReader(raw)); len(errs) != 0 {
		t.Fatalf("metrics lint: %v", errs)
	}
}

func closeStreamOrError(t *testing.T, base, id string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/streams/"+id+"/close", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
