package server

// The ops surface: causal trace ingestion, the daemon-wide flight
// recorder, and the two endpoints operators drive:
//
//	GET /v1/status        one-shot rollup: uptime, build, queue, workers,
//	                      streams, sliding-window error rate, per-stage
//	                      latency quantiles, corpus counts
//	GET /v1/debug/events  flight-recorder snapshot (?kind= ?job= ?stream=
//	                      ?trace= ?since=), or a live SSE tail (?follow=1)
//
// Every work-creating request (POST /v1/traces, /v1/workloads/{name},
// /v1/streams, /v1/traces/{hash}/replay, /v1/analyze) ingests the W3C
// `traceparent` header — minting a trace ID when absent — and echoes it
// back, so one client-supplied ID correlates the job record, pipeline
// spans, slog lines, flight-recorder events and the timeline export.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"wolf/internal/obs"
)

// Flight-recorder event kinds. These are the closed vocabulary behind
// /v1/debug/events?kind= and the wolfd_events_total{kind=...} metric;
// keep them lowercase dot-namespaced so the label values stay
// exposition-clean.
const (
	evJobQueued     = "job.queued"
	evJobStarted    = "job.started"
	evJobDone       = "job.done"
	evJobFailed     = "job.failed"
	evJobShed       = "job.shed"
	evSyncShed      = "sync.shed"
	evStreamOpen    = "stream.open"
	evStreamClose   = "stream.close"
	evStreamEvict   = "stream.evict"
	evStreamShed    = "stream.shed"
	evStoreTrace    = "store.trace"
	evStoreDefect   = "store.defect"
	evStoreGC       = "store.gc"
	evReplayVerdict = "replay.verdict"
	// Fleet lifecycle (coordinator role): analyzer nodes joining and
	// being declared lost, and jobs re-queued after a revoked lease.
	evNodeJoin      = "node.join"
	evNodeLost      = "node.lost"
	evJobReassigned = "job.reassigned"
)

// event publishes one lifecycle event to the flight recorder and bumps
// its kind counter. Timestamping and sequence assignment happen inside
// the ring; this helper is safe from any goroutine.
func (s *Server) event(ev obs.Event) {
	s.flight.Record(ev)
	s.metrics.Events.Add(ev.Kind, 1)
}

// jobEvent publishes a lifecycle event stamped with the job's identity.
func (s *Server) jobEvent(kind string, j *Job, msg string, attrs map[string]string) {
	s.event(obs.Event{Kind: kind, Job: j.ID, Trace: j.TraceID(), Msg: msg, Attrs: attrs})
}

// ingestTraceparent resolves the request's causal identity: a valid
// W3C traceparent header supplies the trace ID, anything else mints a
// fresh one (per spec, invalid headers are ignored, not rejected). The
// response always echoes a traceparent carrying that trace ID, so
// clients learn the ID wolfd minted for them.
func ingestTraceparent(w http.ResponseWriter, r *http.Request) string {
	traceID, _, err := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if err != nil {
		traceID = obs.NewTraceID()
	}
	w.Header().Set("Traceparent", obs.FormatTraceparent(traceID, obs.NewSpanID()))
	return traceID
}

// StatusView is the wire form of GET /v1/status: everything a probe,
// a fleet heartbeat or an operator's first glance needs in one shot.
type StatusView struct {
	Status string `json:"status"`
	// Role is "single" or "coordinator"; Fleet summarizes the node and
	// lease state in coordinator mode.
	Role          string           `json:"role"`
	Fleet         *FleetStatusView `json:"fleet,omitempty"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	Build         obs.BuildInfo    `json:"build"`
	Queue         struct {
		Depth    int64 `json:"depth"`
		Capacity int   `json:"capacity"`
	} `json:"queue"`
	Workers struct {
		Total int   `json:"total"`
		Busy  int64 `json:"busy"`
	} `json:"workers"`
	Streams struct {
		Open int64 `json:"open"`
		Max  int   `json:"max"`
	} `json:"streams"`
	Jobs struct {
		Accepted  int64 `json:"accepted"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		Rejected  int64 `json:"rejected"`
	} `json:"jobs"`
	// ErrorWindow is the job failure rate over the trailing window,
	// derived from flight-recorder terminal events (so it is bounded by
	// the ring's retention, not an unbounded log).
	ErrorWindow struct {
		Seconds float64 `json:"seconds"`
		Done    int     `json:"done"`
		Failed  int     `json:"failed"`
		Rate    float64 `json:"rate"`
	} `json:"error_window"`
	// Latency reports per-stage p50/p95/p99 in seconds, derived from
	// the same histograms /metrics exposes.
	Latency map[string]LatencyView `json:"latency"`
	Corpus  *CorpusView            `json:"corpus,omitempty"`
	Events  struct {
		Seq      uint64 `json:"seq"`
		Capacity int    `json:"capacity"`
	} `json:"events"`
}

// LatencyView is one stage's quantile summary, in seconds.
type LatencyView struct {
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Count uint64  `json:"count"`
}

// FleetStatusView summarizes the coordinator's fleet: known/alive
// nodes, jobs currently out under lease, and jobs waiting for
// redelivery.
type FleetStatusView struct {
	Nodes      int   `json:"nodes"`
	Alive      int   `json:"alive"`
	Leased     int   `json:"leased"`
	Pending    int   `json:"pending"`
	Reassigned int64 `json:"reassigned"`
}

// CorpusView summarizes the persistent corpus (absent without -data-dir).
type CorpusView struct {
	Traces  int   `json:"traces"`
	Bytes   int64 `json:"bytes"`
	Defects int   `json:"defects"`
	Jobs    int   `json:"jobs"`
}

// latencyView snapshots one histogram's quantiles.
func latencyView(h *obs.Histogram) LatencyView {
	return LatencyView{
		P50:   h.Quantile(0.50).Seconds(),
		P95:   h.Quantile(0.95).Seconds(),
		P99:   h.Quantile(0.99).Seconds(),
		Count: h.Count(),
	}
}

// errorWindowSeconds is the trailing window for /v1/status error rates.
const errorWindowSeconds = 300

// handleStatus is GET /v1/status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	var v StatusView
	v.Status = "ok"
	if s.draining() {
		v.Status = "draining"
	}
	v.Role = s.role()
	if s.fleet != nil {
		nodes, alive, leased, pending := s.fleet.counts()
		v.Fleet = &FleetStatusView{
			Nodes:      nodes,
			Alive:      alive,
			Leased:     leased,
			Pending:    pending,
			Reassigned: s.metrics.JobsReassigned.Load(),
		}
	}
	v.UptimeSeconds = time.Since(s.started).Seconds()
	v.Build = obs.ReadBuildInfo()
	v.Queue.Depth = s.metrics.QueueDepth.Load()
	v.Queue.Capacity = s.cfg.QueueSize
	v.Workers.Total = s.cfg.Workers
	v.Workers.Busy = s.metrics.WorkersBusy.Load()
	v.Streams.Open = s.metrics.StreamsOpen.Load()
	v.Streams.Max = s.cfg.MaxOpenStreams
	v.Jobs.Accepted = s.metrics.JobsAccepted.Load()
	v.Jobs.Completed = s.metrics.JobsCompleted.Load()
	v.Jobs.Failed = s.metrics.JobsFailed()
	v.Jobs.Rejected = s.metrics.JobsRejected.Load()

	v.ErrorWindow.Seconds = errorWindowSeconds
	cutoff := time.Now().Add(-errorWindowSeconds * time.Second)
	for _, ev := range s.flight.Snapshot() {
		if ev.Time.Before(cutoff) {
			continue
		}
		switch ev.Kind {
		case evJobDone:
			v.ErrorWindow.Done++
		case evJobFailed:
			v.ErrorWindow.Failed++
		}
	}
	if total := v.ErrorWindow.Done + v.ErrorWindow.Failed; total > 0 {
		v.ErrorWindow.Rate = float64(v.ErrorWindow.Failed) / float64(total)
	}

	v.Latency = map[string]LatencyView{
		"queue_wait": latencyView(&s.metrics.QueueWait),
		"detect":     latencyView(&s.metrics.PhaseDetect),
		"prune":      latencyView(&s.metrics.PhasePrune),
		"generate":   latencyView(&s.metrics.PhaseGenerate),
		"analysis":   latencyView(&s.metrics.Analysis),
	}
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		v.Corpus = &CorpusView{Traces: st.Traces, Bytes: st.TraceBytes, Defects: st.Defects, Jobs: st.Jobs}
	}
	v.Events.Seq = s.flight.Seq()
	v.Events.Capacity = s.flight.Cap()
	writeJSON(w, http.StatusOK, v)
}

// eventFilter is the compiled ?kind= ?job= ?stream= ?trace= selection.
type eventFilter struct {
	kind, job, stream, trace string
}

func (f eventFilter) match(ev obs.Event) bool {
	return (f.kind == "" || ev.Kind == f.kind) &&
		(f.job == "" || ev.Job == f.job) &&
		(f.stream == "" || ev.Stream == f.stream) &&
		(f.trace == "" || ev.Trace == f.trace)
}

// handleDebugEvents is GET /v1/debug/events: a filtered snapshot of the
// flight recorder, or — with ?follow=1 — a Server-Sent Events live tail
// (`id:` carries the sequence number, `data:` the event JSON) that runs
// until the client disconnects or the server drains.
func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := eventFilter{
		kind:   q.Get("kind"),
		job:    q.Get("job"),
		stream: q.Get("stream"),
		trace:  q.Get("trace"),
	}
	var since uint64
	if v := q.Get("since"); v != "" {
		parsed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad since: want a sequence number")
			return
		}
		since = parsed
	}
	if q.Get("follow") == "1" {
		s.followEvents(w, r, f, since)
		return
	}
	events := []obs.Event{}
	for _, ev := range s.flight.Since(since) {
		if f.match(ev) {
			events = append(events, ev)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"events": events, "seq": s.flight.Seq()})
}

// followEvents streams matching flight-recorder events as SSE frames.
// The ring has no subscriber hooks (writers stay lock-free), so the
// tail polls the sequence cursor; each frame is
//
//	id: <seq>\n
//	data: <event JSON>\n
//	\n
//
// which standard EventSource clients and `curl -N` both consume.
func (s *Server) followEvents(w http.ResponseWriter, r *http.Request, f eventFilter, since uint64) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	last := since
	emit := func() bool {
		for _, ev := range s.flight.Since(last) {
			if ev.Seq > last {
				last = ev.Seq
			}
			if !f.match(ev) {
				continue
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, data); err != nil {
				return false
			}
		}
		flusher.Flush()
		return true
	}
	if !emit() {
		return
	}
	tick := time.NewTicker(150 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.streamStop:
			return
		case <-tick.C:
			if !emit() {
				return
			}
		}
	}
}
