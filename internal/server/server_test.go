package server

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strings"
	"testing"
	"time"

	"wolf/internal/core"
	"wolf/internal/obs"
	"wolf/internal/replay"
	"wolf/internal/report"
	"wolf/internal/trace"
	"wolf/internal/workloads"
	"wolf/sim"
)

// fig4Trace records a Figure 4 detection trace on a terminating seed.
func fig4Trace(t *testing.T) *trace.Trace {
	t.Helper()
	w, ok := workloads.ByName("Figure4")
	if !ok {
		t.Fatal("Figure4 not registered")
	}
	seed, ok := workloads.FindTerminatingSeed(w.New, 300)
	if !ok {
		t.Fatal("no terminating seed")
	}
	return core.Record(w.New, seed, 0)
}

// startServer runs a wolfd instance behind a real loopback HTTP server.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// postTrace uploads a trace body and decodes the response JSON.
func postTrace(t *testing.T, url string, body []byte, hdr map[string]string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

// postTraceResp uploads a trace body and returns the raw response for
// header assertions; the caller closes the body.
func postTraceResp(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// getJSON fetches url into out, returning the status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// pollJob waits for the job to leave the queued/running states.
func pollJob(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var v JobView
		if code := getJSON(t, base+"/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("job status = %d", code)
		}
		if v.State == string(StateDone) || v.State == string(StateFailed) {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return JobView{}
}

// TestEndToEndFigure4 is the service's core contract: record a workload
// trace, upload it over real HTTP in both encodings (binary gzipped),
// poll the job, and check the report classifies the known cycles — θ1
// refuted by the Pruner, θ2 (the real Figure 4 deadlock) surviving
// pruning and generation.
func TestEndToEndFigure4(t *testing.T) {
	tr := fig4Trace(t)
	_, ts := startServer(t, Config{Workers: 2, QueueSize: 8})

	var js bytes.Buffer
	if err := tr.Write(&js); err != nil {
		t.Fatal(err)
	}
	var binGz bytes.Buffer
	zw := gzip.NewWriter(&binGz)
	if err := tr.WriteBinary(zw); err != nil {
		t.Fatal(err)
	}
	zw.Close()

	uploads := []struct {
		name string
		body []byte
		hdr  map[string]string
	}{
		{"json", js.Bytes(), nil},
		{"binary+gzip", binGz.Bytes(), map[string]string{"Content-Encoding": "gzip"}},
	}
	for _, up := range uploads {
		t.Run(up.name, func(t *testing.T) {
			code, accepted := postTrace(t, ts.URL+"/v1/traces", up.body, up.hdr)
			if code != http.StatusAccepted {
				t.Fatalf("upload = %d (%v)", code, accepted)
			}
			id, _ := accepted["id"].(string)
			if id == "" {
				t.Fatalf("no job id in %v", accepted)
			}
			v := pollJob(t, ts.URL, id)
			if v.State != string(StateDone) {
				t.Fatalf("job = %+v", v)
			}
			if v.Tuples != len(tr.Tuples) {
				t.Fatalf("tuples = %d, want %d", v.Tuples, len(tr.Tuples))
			}

			var rep report.JSONReport
			if code := getJSON(t, ts.URL+v.ReportURL, &rep); code != http.StatusOK {
				t.Fatalf("report = %d", code)
			}
			if len(rep.Defects) != 2 {
				t.Fatalf("defects = %+v, want 2", rep.Defects)
			}
			classes := map[string]string{}
			for _, d := range rep.Defects {
				classes[d.Class] = d.Signature
			}
			if _, ok := classes["false(pruner)"]; !ok {
				t.Fatalf("θ1 not pruned: %+v", rep.Defects)
			}
			sig, ok := classes["unknown"]
			if !ok {
				t.Fatalf("θ2 did not survive pruning/generation: %+v", rep.Defects)
			}

			// The surviving defect's dependency graph is retrievable as dot.
			resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/dot?" +
				url.Values{"signature": {sig}}.Encode())
			if err != nil {
				t.Fatal(err)
			}
			dot, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || !strings.Contains(string(dot), "digraph Gs") {
				t.Fatalf("dot = %d: %.80s", resp.StatusCode, dot)
			}
		})
	}

	// The synchronous endpoint returns the same verdicts inline.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(js.Bytes()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sync report.JSONReport
	if err := json.NewDecoder(resp.Body).Decode(&sync); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(sync.Defects) != 2 {
		t.Fatalf("sync analyze = %d, %+v", resp.StatusCode, sync.Defects)
	}
}

// TestWorkloadJob: the server records and analyzes a registered workload
// on its own, sharing cmd/wolf's registry.
func TestWorkloadJob(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4})

	var names struct {
		Workloads []string `json:"workloads"`
	}
	if code := getJSON(t, ts.URL+"/v1/workloads", &names); code != http.StatusOK {
		t.Fatalf("workloads = %d", code)
	}
	found := false
	for _, n := range names.Workloads {
		if n == "Figure4" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Figure4 missing from %v", names.Workloads)
	}

	code, accepted := postTrace(t, ts.URL+"/v1/workloads/Figure4", nil, nil)
	if code != http.StatusAccepted {
		t.Fatalf("workload job = %d (%v)", code, accepted)
	}
	v := pollJob(t, ts.URL, accepted["id"].(string))
	if v.State != string(StateDone) || v.Tuples == 0 {
		t.Fatalf("workload job = %+v", v)
	}

	if code, _ := postTrace(t, ts.URL+"/v1/workloads/NoSuchThing", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown workload = %d", code)
	}
}

// TestUploadRejectsGarbage: malformed bodies are a client error, and the
// queue never sees them.
func TestUploadRejectsGarbage(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 1, QueueSize: 4})
	for name, body := range map[string][]byte{
		"empty":     nil,
		"garbage":   []byte("not a trace"),
		"truncated": []byte("WTRC\x01"),
		"no-tuples": []byte(`{"version":1,"tuples":[]}`),
	} {
		if code, _ := postTrace(t, ts.URL+"/v1/traces", body, nil); code != http.StatusBadRequest {
			t.Fatalf("%s upload = %d, want 400", name, code)
		}
	}
	if got := s.Metrics().JobsAccepted.Load(); got != 0 {
		t.Fatalf("accepted = %d, want 0", got)
	}
}

// blockingAnalyze returns an analyze hook that parks until released,
// then runs the real pipeline.
func blockingAnalyze(release <-chan struct{}) func(context.Context, *trace.Trace, core.Config) (*core.Report, error) {
	return func(ctx context.Context, tr *trace.Trace, cfg core.Config) (*core.Report, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return core.AnalyzeTraceCtx(ctx, tr, cfg)
	}
}

// TestQueueFull: with workers parked and the queue at capacity, further
// uploads get 429 and the rejection is counted; draining the queue makes
// the server accept again.
func TestQueueFull(t *testing.T) {
	release := make(chan struct{})
	s, ts := startServer(t, Config{
		Workers:   1,
		QueueSize: 2,
		Analyze:   blockingAnalyze(release),
	})
	tr := fig4Trace(t)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()

	// 1 job parks on the worker; 2 fill the queue. Subsequent uploads
	// must bounce. (The parked job may or may not have been picked up
	// yet, so fill to capacity + 1 first.)
	ids := []string{}
	for i := 0; i < 3; i++ {
		code, out := postTrace(t, ts.URL+"/v1/traces", body, nil)
		if code != http.StatusAccepted {
			t.Fatalf("upload %d = %d", i, code)
		}
		ids = append(ids, out["id"].(string))
	}
	// Wait until the worker has dequeued the first job so exactly
	// QueueSize slots are occupied.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().QueueDepth.Load() != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	resp := postTraceResp(t, ts.URL+"/v1/traces", body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity upload = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	if got := s.Metrics().JobsRejected.Load(); got == 0 {
		t.Fatal("rejection not counted")
	}

	close(release)
	for _, id := range ids {
		if v := pollJob(t, ts.URL, id); v.State != string(StateDone) {
			t.Fatalf("job %s = %+v", id, v)
		}
	}
	// Queue drained: uploads flow again.
	if code, _ := postTrace(t, ts.URL+"/v1/traces", body, nil); code != http.StatusAccepted {
		t.Fatalf("post-drain upload = %d", code)
	}
}

// TestJobTimeout: an analysis exceeding the per-job timeout is reported
// failed, counted, and the worker survives to serve the next job.
func TestJobTimeout(t *testing.T) {
	const slowSeed = 999
	slow := func(ctx context.Context, tr *trace.Trace, cfg core.Config) (*core.Report, error) {
		if tr.Seed == slowSeed {
			<-ctx.Done() // simulate an analysis that outlives its budget
			return nil, ctx.Err()
		}
		return core.AnalyzeTraceCtx(ctx, tr, cfg)
	}
	s, ts := startServer(t, Config{
		Workers:    1,
		QueueSize:  4,
		JobTimeout: 50 * time.Millisecond,
		Analyze:    slow,
	})
	tr := fig4Trace(t)
	tr.Seed = slowSeed
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}

	code, out := postTrace(t, ts.URL+"/v1/traces", buf.Bytes(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("upload = %d", code)
	}
	v := pollJob(t, ts.URL, out["id"].(string))
	if v.State != string(StateFailed) || !strings.Contains(v.Error, "timed out") {
		t.Fatalf("job = %+v, want timeout failure", v)
	}
	if s.Metrics().JobsTimedOut.Load() != 1 {
		t.Fatal("timeout not counted")
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/report", nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("report of failed job = %d, want 422", code)
	}

	// The worker must still be alive: the same trace under a normal seed
	// (fast path) succeeds on the same single worker.
	tr.Seed = 1
	buf.Reset()
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	code, out = postTrace(t, ts.URL+"/v1/traces", buf.Bytes(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("second upload = %d", code)
	}
	if v := pollJob(t, ts.URL, out["id"].(string)); v.State != string(StateDone) {
		t.Fatalf("worker did not survive timeout: %+v", v)
	}
}

// TestPanicRecovery: a panicking analysis fails its job with the panic
// surfaced in the status, the worker pool survives, and the panic is
// counted.
func TestPanicRecovery(t *testing.T) {
	count := 0
	boom := func(ctx context.Context, tr *trace.Trace, cfg core.Config) (*core.Report, error) {
		count++
		if count == 1 {
			panic("synthetic analyzer bug")
		}
		return core.AnalyzeTraceCtx(ctx, tr, cfg)
	}
	s, ts := startServer(t, Config{Workers: 1, QueueSize: 4, Analyze: boom})
	tr := fig4Trace(t)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}

	code, out := postTrace(t, ts.URL+"/v1/traces", buf.Bytes(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("upload = %d", code)
	}
	v := pollJob(t, ts.URL, out["id"].(string))
	if v.State != string(StateFailed) || !strings.Contains(v.Error, "synthetic analyzer bug") {
		t.Fatalf("job = %+v, want surfaced panic", v)
	}
	if s.Metrics().JobsPanicked.Load() != 1 {
		t.Fatal("panic not counted")
	}

	// Same worker, next job: must succeed.
	code, out = postTrace(t, ts.URL+"/v1/traces", buf.Bytes(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("second upload = %d", code)
	}
	if v := pollJob(t, ts.URL, out["id"].(string)); v.State != string(StateDone) {
		t.Fatalf("worker did not survive panic: %+v", v)
	}
}

// TestGracefulShutdown: Shutdown completes the in-flight job, fails
// still-queued jobs fast with a distinct "drained" reason, flips
// healthz to draining, and refuses new uploads with 503.
func TestGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueSize: 8, Analyze: blockingAnalyze(release)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tr := fig4Trace(t)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	ids := []string{}
	for i := 0; i < 3; i++ {
		code, out := postTrace(t, ts.URL+"/v1/traces", buf.Bytes(), nil)
		if code != http.StatusAccepted {
			t.Fatalf("upload = %d", code)
		}
		ids = append(ids, out["id"].(string))
	}
	// Wait for the single worker to park on the first job so exactly one
	// job is in flight and two are queued when the drain starts.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().QueueDepth.Load() != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	// While draining: health is 503 with the draining state visible.
	time.Sleep(20 * time.Millisecond) // let Shutdown close the queue
	var health struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Fatalf("healthz during drain = %d %q, want 503 \"draining\"", code, health.Status)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The in-flight job completed; the queued-but-unstarted ones were
	// failed fast with the drain reason, not silently analyzed.
	j, _ := s.jobs.get(ids[0])
	if j.State() != StateDone {
		t.Fatalf("in-flight job = %v, want done", j.State())
	}
	for _, id := range ids[1:] {
		j, ok := s.jobs.get(id)
		if !ok || j.State() != StateFailed {
			t.Fatalf("queued job %s = %v, want failed", id, j.State())
		}
		if msg := j.view().Error; !strings.Contains(msg, "draining") {
			t.Fatalf("queued job %s error = %q, want drain reason", id, msg)
		}
	}
	if got := s.Metrics().JobsDrained.Load(); got != 2 {
		t.Fatalf("drained count = %d, want 2", got)
	}

	// New work is refused and health reports draining state.
	if code, _ := postTrace(t, ts.URL+"/v1/traces", buf.Bytes(), nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown upload = %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown = %d, want 503", code)
	}
}

// TestAnalysisParallelismGauge: the resolved Generator pool size is
// exported at startup — an explicit setting verbatim, zero resolved via
// EffectiveParallelism.
func TestAnalysisParallelismGauge(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4,
		Analysis: core.Config{Parallelism: 3}})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "wolfd_analysis_parallelism 3") {
		t.Fatalf("metrics missing explicit wolfd_analysis_parallelism:\n%s", body)
	}

	_, ts = startServer(t, Config{Workers: 1, QueueSize: 4})
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	def := (&core.Config{}).EffectiveParallelism()
	if !strings.Contains(string(body), fmt.Sprintf("wolfd_analysis_parallelism %d", def)) {
		t.Fatalf("metrics missing default wolfd_analysis_parallelism %d:\n%s", def, body)
	}
}

// TestMetricsEndpoint: the Prometheus rendering carries the counters.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4})
	tr := fig4Trace(t)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	code, out := postTrace(t, ts.URL+"/v1/traces", buf.Bytes(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("upload = %d", code)
	}
	pollJob(t, ts.URL, out["id"].(string))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"wolfd_jobs_accepted_total 1",
		"wolfd_jobs_completed_total 1",
		"wolfd_queue_depth 0",
		`wolfd_jobs_failed_total{reason="error"} 0`,
		`wolfd_jobs_failed_total{reason="timeout"} 0`,
		`wolfd_jobs_failed_total{reason="panic"} 0`,
		`wolfd_jobs_failed_total{reason="watchdog"} 0`,
		`wolfd_jobs_failed_total{reason="drained"} 0`,
		"wolfd_sync_rejected_total 0",
		"wolfd_phase_detect_seconds_count 1",
		"wolfd_phase_prune_seconds_count 1",
		"wolfd_phase_generate_seconds_count 1",
		"wolfd_analysis_seconds_count 1",
		"wolfd_queue_wait_seconds_count 1",
		"wolfd_cycles_total",
		`wolfd_defects_total{class="confirmed"}`,
		"wolfd_build_info{",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	// The analysis completed, so the phase histograms must have counts
	// in real buckets, not just +Inf (the acceptance check for the
	// histogram rendering).
	if !regexp.MustCompile(`wolfd_analysis_seconds_bucket\{le="[0-9][^"]*"\} [1-9]`).MatchString(text) {
		t.Fatalf("no non-empty finite analysis histogram bucket:\n%s", text)
	}
	// Every line must satisfy the strict exposition-format linter.
	if errs := obs.PromLint(strings.NewReader(text)); len(errs) != 0 {
		t.Fatalf("metrics output fails lint: %v\n%s", errs, text)
	}

	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
}

// TestVersionEndpoint: GET /version reports build information.
func TestVersionEndpoint(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4})
	var bi map[string]any
	if code := getJSON(t, ts.URL+"/version", &bi); code != http.StatusOK {
		t.Fatalf("version = %d", code)
	}
	if bi["go_version"] == "" || bi["version"] == "" {
		t.Fatalf("version body incomplete: %v", bi)
	}
}

// TestTimelineEndpoint: GET /v1/jobs/{id}/timeline serves the job's
// trace as valid Chrome trace-event JSON.
func TestTimelineEndpoint(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4})
	tr := fig4Trace(t)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	code, out := postTrace(t, ts.URL+"/v1/traces", buf.Bytes(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("upload = %d", code)
	}
	id := out["id"].(string)
	pollJob(t, ts.URL, id)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content-type = %q", ct)
	}
	if err := obs.ValidateTimeline(body); err != nil {
		t.Fatalf("served timeline invalid: %v\n%s", err, body)
	}
	if !bytes.Contains(body, []byte(`"ph":"i"`)) {
		t.Error("timeline has no acquisition instants")
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/nope/timeline", nil); code != http.StatusNotFound {
		t.Fatalf("missing job timeline = %d, want 404", code)
	}
}

// TestUploadTooLarge: the size cap returns 413, not an open-ended read.
func TestUploadTooLarge(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4, MaxUploadBytes: 128})
	tr := fig4Trace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() <= 128 {
		t.Fatalf("fixture too small: %d bytes", buf.Len())
	}
	code, _ := postTrace(t, ts.URL+"/v1/traces", buf.Bytes(), nil)
	if code != http.StatusRequestEntityTooLarge && code != http.StatusBadRequest {
		t.Fatalf("oversized upload = %d, want 413/400", code)
	}
}

// TestSyncAnalyzeClientCancel: POST /v1/analyze runs under the request
// context, so a client disconnect cancels the in-flight analysis.
func TestSyncAnalyzeClientCancel(t *testing.T) {
	started := make(chan struct{}, 1)
	cancelled := make(chan struct{}, 1)
	hook := func(ctx context.Context, tr *trace.Trace, cfg core.Config) (*core.Report, error) {
		started <- struct{}{}
		select {
		case <-ctx.Done():
			cancelled <- struct{}{}
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			return nil, fmt.Errorf("client disconnect never propagated")
		}
	}
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4, Analyze: hook})
	tr := fig4Trace(t)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(buf.Bytes()))
	go http.DefaultClient.Do(req)
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("analysis never started")
	}
	cancel() // client walks away
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("analysis kept running after client disconnect")
	}
}

// TestWorkerWatchdog: an analysis that ignores its cancelled context is
// abandoned after JobTimeout+WatchdogGrace — the job fails with a
// watchdog reason, the failure is counted separately from timeouts, and
// the worker slot is freed for the next job.
func TestWorkerWatchdog(t *testing.T) {
	const stuckSeed = 999
	hung := make(chan struct{})
	t.Cleanup(func() { close(hung) }) // let the abandoned goroutine exit
	stuck := func(ctx context.Context, tr *trace.Trace, cfg core.Config) (*core.Report, error) {
		if tr.Seed == stuckSeed {
			<-hung // ignores ctx entirely: the watchdog's target
			return nil, fmt.Errorf("released")
		}
		return core.AnalyzeTraceCtx(ctx, tr, cfg)
	}
	s, ts := startServer(t, Config{
		Workers:       1,
		QueueSize:     4,
		JobTimeout:    50 * time.Millisecond,
		WatchdogGrace: 50 * time.Millisecond,
		Analyze:       stuck,
	})
	tr := fig4Trace(t)
	tr.Seed = stuckSeed
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}

	code, out := postTrace(t, ts.URL+"/v1/traces", buf.Bytes(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("upload = %d", code)
	}
	v := pollJob(t, ts.URL, out["id"].(string))
	if v.State != string(StateFailed) || !strings.Contains(v.Error, "watchdog") {
		t.Fatalf("job = %+v, want watchdog failure", v)
	}
	if s.Metrics().JobsWatchdogged.Load() != 1 {
		t.Fatal("watchdog abandonment not counted")
	}
	if s.Metrics().JobsTimedOut.Load() != 0 {
		t.Fatal("watchdog abandonment miscounted as timeout")
	}

	// The worker survived the abandonment: a well-behaved job on the same
	// single worker succeeds.
	tr.Seed = 1
	buf.Reset()
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	code, out = postTrace(t, ts.URL+"/v1/traces", buf.Bytes(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("second upload = %d", code)
	}
	if v := pollJob(t, ts.URL, out["id"].(string)); v.State != string(StateDone) {
		t.Fatalf("worker did not survive watchdog: %+v", v)
	}
}

// corruptUpload decodes a fresh copy of base, applies the corruption and
// re-encodes it as JSON for upload.
func corruptUpload(t *testing.T, base []byte, corrupt func(tr *trace.Trace)) []byte {
	t.Helper()
	tr, err := trace.Decode(bytes.NewReader(base))
	if err != nil {
		t.Fatal(err)
	}
	corrupt(tr)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestUploadRejectsInvalidTrace: traces that parse but violate
// structural invariants are rejected with 422 before any analysis is
// queued, one counted corruption class each, and the classes surface on
// /metrics.
func TestUploadRejectsInvalidTrace(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 1, QueueSize: 4})
	tr := fig4Trace(t)
	var base bytes.Buffer
	if err := tr.WriteBinary(&base); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		class   string
		corrupt func(tr *trace.Trace)
	}{
		{"empty-lock", trace.InvalidMissingField, func(tr *trace.Trace) {
			tr.Tuples[0].Lock = ""
		}},
		{"key-zero-occ", trace.InvalidBadKey, func(tr *trace.Trace) {
			tr.Tuples[0].Key.Occ = 0
		}},
		{"held-duplicate", trace.InvalidHeldSet, func(tr *trace.Trace) {
			for i := len(tr.Tuples) - 1; i >= 0; i-- {
				if len(tr.Tuples[i].Held) > 0 {
					tr.Tuples[i].Held = append(tr.Tuples[i].Held, tr.Tuples[i].Held[0])
					return
				}
			}
			t.Fatal("no tuple with held locks in fixture")
		}},
		{"thread-id-range", trace.InvalidThreadID, func(tr *trace.Trace) {
			tr.Tuples[0].ThreadID = 99
		}},
		{"clock-shape", trace.InvalidClockShape, func(tr *trace.Trace) {
			tr.Taus = tr.Taus[:len(tr.Taus)-1]
		}},
		{"tau-backwards", trace.InvalidNonMonotonicTau, func(tr *trace.Trace) {
			for _, name := range tr.Threads() {
				if ts := tr.ByThread(name); len(ts) >= 2 {
					ts[0].Tau = 1 << 20
					return
				}
			}
			t.Fatal("no thread with two acquisitions in fixture")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := corruptUpload(t, base.Bytes(), tc.corrupt)
			code, out := postTrace(t, ts.URL+"/v1/traces", body, nil)
			if code != http.StatusUnprocessableEntity {
				t.Fatalf("upload = %d (%v), want 422", code, out)
			}
			if msg, _ := out["error"].(string); !strings.Contains(msg, tc.class) {
				t.Fatalf("error %q does not name class %s", msg, tc.class)
			}
			if got := s.Metrics().InvalidTraces.Get(tc.class); got == 0 {
				t.Fatalf("class %s not counted", tc.class)
			}
		})
	}
	if got := s.Metrics().JobsAccepted.Load(); got != 0 {
		t.Fatalf("accepted = %d, want 0", got)
	}

	// The classes render as a labeled counter family and the exposition
	// output still lints.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, `wolfd_traces_invalid_total{class="bad-key"} 1`) {
		t.Fatalf("invalid-trace counter missing:\n%s", text)
	}
	if errs := obs.PromLint(strings.NewReader(text)); len(errs) != 0 {
		t.Fatalf("metrics output fails lint: %v\n%s", errs, text)
	}

	// A well-formed upload still flows after the rejections.
	if code, _ := postTrace(t, ts.URL+"/v1/traces", base.Bytes(), nil); code != http.StatusAccepted {
		t.Fatalf("valid upload after rejections = %d", code)
	}
}

// TestSyncAnalyzeShedding: POST /v1/analyze sheds load with 429 +
// Retry-After when every worker slot is busy, and accepts again once a
// slot frees up.
func TestSyncAnalyzeShedding(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	hook := func(ctx context.Context, tr *trace.Trace, cfg core.Config) (*core.Report, error) {
		started <- struct{}{}
		select {
		case <-release:
			return core.AnalyzeTraceCtx(ctx, tr, cfg)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s, ts := startServer(t, Config{Workers: 1, QueueSize: 4, Analyze: hook})
	tr := fig4Trace(t)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()

	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			first <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("first analysis never started")
	}

	// The single slot is held: the next sync request bounces immediately.
	resp := postTraceResp(t, ts.URL+"/v1/analyze", body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated sync analyze = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	if s.Metrics().SyncRejected.Load() != 1 {
		t.Fatal("shed request not counted")
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first sync analyze = %d, want 200", code)
	}
	// Slot free again: the next request is admitted.
	resp = postTraceResp(t, ts.URL+"/v1/analyze", body)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release sync analyze = %d, want 200", resp.StatusCode)
	}
}

// TestReplayMetricsRendered: divergence histograms, replay methods and
// fault counts from analysis reports surface as labeled counters on
// /metrics and the output still lints.
func TestReplayMetricsRendered(t *testing.T) {
	fake := func(ctx context.Context, tr *trace.Trace, cfg core.Config) (*core.Report, error) {
		return &core.Report{
			Tool: "fake",
			Cycles: []*core.CycleReport{
				{ReplayMethod: replay.MethodSteering},
				{
					ReplayMethod: replay.MethodFallback,
					Divergence: replay.Divergence{
						replay.DivergenceStarved:  2,
						replay.DivergenceMaxSteps: 1,
					},
					Faults: sim.FaultStats{Preemptions: 3, Wakeups: 1},
				},
			},
		}, nil
	}
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4, Analyze: fake})
	tr := fig4Trace(t)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	code, out := postTrace(t, ts.URL+"/v1/traces", buf.Bytes(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("upload = %d", code)
	}
	pollJob(t, ts.URL, out["id"].(string))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`wolfd_replay_confirmed_total{method="fallback"} 1`,
		`wolfd_replay_confirmed_total{method="steering"} 1`,
		`wolfd_replay_divergence_total{reason="max-steps"} 1`,
		`wolfd_replay_divergence_total{reason="starved"} 2`,
		"wolfd_replay_faults_injected_total 4",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	if errs := obs.PromLint(strings.NewReader(text)); len(errs) != 0 {
		t.Fatalf("metrics output fails lint: %v\n%s", errs, text)
	}
}
