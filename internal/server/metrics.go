package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"wolf/internal/core"
	"wolf/internal/obs"
	"wolf/internal/replay"
)

// FailReason labels the reason dimension of wolfd_jobs_failed_total.
type FailReason string

const (
	// FailError: the analysis returned an error (bad trace, preparation
	// failure).
	FailError FailReason = "error"
	// FailTimeout: the per-job timeout cancelled the analysis.
	FailTimeout FailReason = "timeout"
	// FailPanic: the analysis panicked and was recovered.
	FailPanic FailReason = "panic"
	// FailWatchdog: the analysis ignored its cancelled context past the
	// grace period and the worker abandoned it.
	FailWatchdog FailReason = "watchdog"
	// FailDrained: the job was still queued when Shutdown began and was
	// failed fast instead of analyzed.
	FailDrained FailReason = "drained"
	// FailReassign: the job's bounded redelivery budget was exhausted —
	// every delivery to an analyzer node ended in a lost lease
	// (coordinator role only).
	FailReassign FailReason = "reassign-exhausted"
)

// Metrics is the wolfd in-process metrics registry. Counters are plain
// atomics and latency distributions are obs.Histogram (lock-free,
// power-of-two buckets) — no external metrics dependency — rendered in
// Prometheus text exposition format at GET /metrics so standard
// scrapers work unchanged.
//
// Failures are counted once, under exactly one reason (error, timeout
// or panic); wolfd_jobs_failed_total{reason=...} is the source of truth
// and the unlabeled timeout/panic counters are kept as deprecated
// aliases for existing dashboards.
type Metrics struct {
	// JobsAccepted counts jobs admitted to the queue.
	JobsAccepted atomic.Int64
	// JobsRejected counts uploads refused because the queue was full.
	JobsRejected atomic.Int64
	// JobsCompleted counts jobs whose analysis finished.
	JobsCompleted atomic.Int64
	// JobsErrored counts jobs failed by an analysis error.
	JobsErrored atomic.Int64
	// JobsTimedOut counts jobs cancelled by the per-job timeout.
	JobsTimedOut atomic.Int64
	// JobsPanicked counts recovered analysis panics.
	JobsPanicked atomic.Int64
	// JobsWatchdogged counts analyses abandoned by the worker watchdog.
	JobsWatchdogged atomic.Int64
	// JobsDrained counts queued jobs failed fast during shutdown.
	JobsDrained atomic.Int64
	// JobsReassignEx counts jobs terminal-failed because the bounded
	// redelivery budget ran out (coordinator role).
	JobsReassignEx atomic.Int64

	// Fleet (coordinator role). NodesRegistered/NodesLost are lifetime
	// counters; NodesAlive is the live gauge. JobsReassigned counts
	// lease revocations that re-queued a job (including straggler
	// re-offers); LeaseRenewals counts granted renewals;
	// DuplicateResults counts completions that lost the
	// first-result-wins race.
	NodesRegistered  atomic.Int64
	NodesLost        atomic.Int64
	NodesAlive       atomic.Int64
	JobsReassigned   atomic.Int64
	LeaseRenewals    atomic.Int64
	DuplicateResults atomic.Int64
	// SyncRejected counts synchronous analyses shed because every worker
	// slot was busy.
	SyncRejected atomic.Int64
	// QueueDepth is the number of queued-but-not-started jobs.
	QueueDepth atomic.Int64
	// WorkersBusy is the number of workers currently running an
	// analysis (the /v1/status utilization gauge).
	WorkersBusy atomic.Int64
	// AnalysisParallelism is the resolved per-job Generator worker pool
	// size (core.Config.EffectiveParallelism), set once at startup.
	AnalysisParallelism atomic.Int64

	// Streaming ingestion (/v1/streams). StreamsOpen is the live gauge;
	// StreamsOpened counts admissions by the client-declared source
	// ("sim" for trace replays, "wolfsync" for live runtime recorders,
	// "unknown" when the open carried no metadata); StreamsRejected
	// counts shed opens; StreamEvents counts decoded tuples fed to the
	// incremental engine; StreamCandidates counts cycle candidates
	// emitted mid-stream.
	StreamsOpen      atomic.Int64
	StreamsOpened    *obs.CounterSet
	StreamsRejected  atomic.Int64
	StreamEvents     atomic.Int64
	StreamCandidates atomic.Int64
	// StreamEvicted counts streams removed before a normal close, by
	// reason (idle, budget, corrupt, invalid, empty, aborted, shutdown).
	StreamEvicted *obs.CounterSet
	// StreamBytes is the per-stream total byte count, observed once per
	// stream at its terminal transition (close or eviction).
	StreamBytes obs.Histogram

	// Events counts flight-recorder events by kind — the aggregate
	// (exemplar-style) face of GET /v1/debug/events, which holds the
	// individual entries with their trace IDs.
	Events *obs.CounterSet

	// InvalidTraces counts uploads rejected by trace.Validate, by
	// corruption class (422 responses).
	InvalidTraces *obs.CounterSet
	// ReplayDivergence histograms failed replay attempts by divergence
	// reason, aggregated over every analyzed cycle.
	ReplayDivergence *obs.CounterSet
	// ReplayConfirmed counts confirmed cycles by replay method (steered
	// Algorithm 4 vs. the PCT-randomized fallback).
	ReplayConfirmed *obs.CounterSet
	// FaultsInjected counts scheduling perturbations injected across all
	// replays.
	FaultsInjected atomic.Int64

	// CyclesTotal counts potential deadlock cycles across all reports.
	CyclesTotal atomic.Int64
	// Defect verdict counts across all reports, by class.
	DefectsPruned     atomic.Int64
	DefectsInfeasible atomic.Int64
	DefectsConfirmed  atomic.Int64
	DefectsUnknown    atomic.Int64

	// Latency distributions. The phase histograms observe the per-job
	// core.Timings (themselves derived from obs spans); QueueWait covers
	// admission to worker pickup; Analysis is end-to-end wall clock on
	// the worker, including server-side workload recording.
	QueueWait     obs.Histogram
	PhaseDetect   obs.Histogram
	PhasePrune    obs.Histogram
	PhaseGenerate obs.Histogram
	Analysis      obs.Histogram
}

// newMetrics returns a registry with its counter sets initialized.
func newMetrics() *Metrics {
	return &Metrics{
		Events:           obs.NewCounterSet(),
		StreamsOpened:    obs.NewCounterSet(),
		StreamEvicted:    obs.NewCounterSet(),
		InvalidTraces:    obs.NewCounterSet(),
		ReplayDivergence: obs.NewCounterSet(),
		ReplayConfirmed:  obs.NewCounterSet(),
	}
}

// Fail counts one failed job under exactly one reason.
func (m *Metrics) Fail(reason FailReason) {
	switch reason {
	case FailTimeout:
		m.JobsTimedOut.Add(1)
	case FailPanic:
		m.JobsPanicked.Add(1)
	case FailWatchdog:
		m.JobsWatchdogged.Add(1)
	case FailDrained:
		m.JobsDrained.Add(1)
	case FailReassign:
		m.JobsReassignEx.Add(1)
	default:
		m.JobsErrored.Add(1)
	}
}

// JobsFailed is the total across failure reasons.
func (m *Metrics) JobsFailed() int64 {
	return m.JobsErrored.Load() + m.JobsTimedOut.Load() + m.JobsPanicked.Load() +
		m.JobsWatchdogged.Load() + m.JobsDrained.Load() + m.JobsReassignEx.Load()
}

// observe folds one completed analysis into the registry.
func (m *Metrics) observe(rep *core.Report, total time.Duration) {
	m.JobsCompleted.Add(1)
	m.PhaseDetect.Observe(rep.Timings.CycleDetect)
	m.PhasePrune.Observe(rep.Timings.Prune)
	m.PhaseGenerate.Observe(rep.Timings.Generate)
	m.Analysis.Observe(total)
	m.CyclesTotal.Add(int64(len(rep.Cycles)))
	pruned, infeasible, confirmed, unknown := rep.CountDefects()
	m.DefectsPruned.Add(int64(pruned))
	m.DefectsInfeasible.Add(int64(infeasible))
	m.DefectsConfirmed.Add(int64(confirmed))
	m.DefectsUnknown.Add(int64(unknown))
	for _, cr := range rep.Cycles {
		for reason, n := range cr.Divergence.ByName() {
			m.ReplayDivergence.Add(reason, int64(n))
		}
		if cr.ReplayMethod != replay.MethodNone {
			m.ReplayConfirmed.Add(string(cr.ReplayMethod), 1)
		}
		m.FaultsInjected.Add(int64(cr.Faults.Total()))
	}
}

// WritePrometheus renders the registry in Prometheus text exposition
// format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("wolfd_jobs_accepted_total", "Jobs admitted to the queue.", m.JobsAccepted.Load())
	counter("wolfd_jobs_rejected_total", "Uploads refused because the queue was full.", m.JobsRejected.Load())
	counter("wolfd_jobs_completed_total", "Jobs whose analysis finished.", m.JobsCompleted.Load())

	name := "wolfd_jobs_failed_total"
	fmt.Fprintf(w, "# HELP %s Jobs that failed, by reason.\n# TYPE %s counter\n", name, name)
	fmt.Fprintf(w, "%s{reason=\"error\"} %d\n", name, m.JobsErrored.Load())
	fmt.Fprintf(w, "%s{reason=\"timeout\"} %d\n", name, m.JobsTimedOut.Load())
	fmt.Fprintf(w, "%s{reason=\"panic\"} %d\n", name, m.JobsPanicked.Load())
	fmt.Fprintf(w, "%s{reason=\"watchdog\"} %d\n", name, m.JobsWatchdogged.Load())
	fmt.Fprintf(w, "%s{reason=\"drained\"} %d\n", name, m.JobsDrained.Load())
	fmt.Fprintf(w, "%s{reason=\"reassign-exhausted\"} %d\n", name, m.JobsReassignEx.Load())
	counter("wolfd_jobs_timeout_total", "Deprecated alias of wolfd_jobs_failed_total{reason=\"timeout\"}.", m.JobsTimedOut.Load())
	counter("wolfd_jobs_panic_total", "Deprecated alias of wolfd_jobs_failed_total{reason=\"panic\"}.", m.JobsPanicked.Load())
	counter("wolfd_sync_rejected_total", "Synchronous analyses shed because every worker slot was busy.", m.SyncRejected.Load())

	gauge("wolfd_streams_open", "Currently open ingestion streams.", m.StreamsOpen.Load())
	counter("wolfd_streams_rejected_total", "Stream opens shed at the max-open-streams cap.", m.StreamsRejected.Load())
	counter("wolfd_stream_events_total", "Tuples decoded from stream chunks and fed to the incremental detector.", m.StreamEvents.Load())
	counter("wolfd_stream_candidates_total", "Cycle candidates emitted mid-stream.", m.StreamCandidates.Load())

	gauge("wolfd_queue_depth", "Queued-but-not-started jobs.", m.QueueDepth.Load())
	gauge("wolfd_workers_busy", "Workers currently running an analysis.", m.WorkersBusy.Load())
	gauge("wolfd_analysis_parallelism", "Resolved per-job analysis worker pool size (-analysis-parallelism).", m.AnalysisParallelism.Load())
	counter("wolfd_cycles_total", "Potential deadlock cycles detected across all reports.", m.CyclesTotal.Load())
	counter("wolfd_replay_faults_injected_total", "Scheduling perturbations injected across all replays.", m.FaultsInjected.Load())

	// Dynamic-label counters render only once they have samples; an empty
	// family would fail the exposition linter (TYPE with no series).
	counterSet := func(set *obs.CounterSet, name, help, label string) {
		if set == nil || len(set.Snapshot()) == 0 {
			return
		}
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		set.WritePrometheus(w, name, label)
	}
	counterSet(m.Events, "wolfd_events_total", "Flight-recorder events, by kind.", "kind")
	counterSet(m.StreamsOpened, "wolfd_streams_opened_total", "Ingestion streams admitted, by client-declared source.", "source")
	counterSet(m.StreamEvicted, "wolfd_stream_evicted_total", "Streams removed before a normal close, by reason.", "reason")
	counterSet(m.InvalidTraces, "wolfd_traces_invalid_total", "Uploads rejected by trace validation, by corruption class.", "class")
	counterSet(m.ReplayDivergence, "wolfd_replay_divergence_total", "Failed replay attempts, by divergence reason.", "reason")
	counterSet(m.ReplayConfirmed, "wolfd_replay_confirmed_total", "Cycles confirmed by replay, by method.", "method")

	name = "wolfd_defects_total"
	fmt.Fprintf(w, "# HELP %s Defects reported, by pipeline verdict.\n# TYPE %s counter\n", name, name)
	fmt.Fprintf(w, "%s{class=\"pruned\"} %d\n", name, m.DefectsPruned.Load())
	fmt.Fprintf(w, "%s{class=\"infeasible\"} %d\n", name, m.DefectsInfeasible.Load())
	fmt.Fprintf(w, "%s{class=\"confirmed\"} %d\n", name, m.DefectsConfirmed.Load())
	fmt.Fprintf(w, "%s{class=\"unknown\"} %d\n", name, m.DefectsUnknown.Load())

	m.QueueWait.WritePrometheus(w, "wolfd_queue_wait_seconds", "Time from job admission to worker pickup.", "")
	m.PhaseDetect.WritePrometheus(w, "wolfd_phase_detect_seconds", "Per-job cycle-detection latency.", "")
	m.PhasePrune.WritePrometheus(w, "wolfd_phase_prune_seconds", "Per-job pruner latency.", "")
	m.PhaseGenerate.WritePrometheus(w, "wolfd_phase_generate_seconds", "Per-job generator latency.", "")
	m.Analysis.WritePrometheus(w, "wolfd_analysis_seconds", "Per-job end-to-end analysis latency.", "")
	m.StreamBytes.WritePrometheusValues(w, "wolfd_stream_bytes", "Total bytes per ingestion stream, observed at stream end.", "")

	bi := obs.ReadBuildInfo()
	name = "wolfd_build_info"
	fmt.Fprintf(w, "# HELP %s Build information; value is always 1.\n# TYPE %s gauge\n", name, name)
	fmt.Fprintf(w, "%s{%s,%s,%s} 1\n", name,
		obs.Label("version", bi.Version), obs.Label("goversion", bi.GoVersion), obs.Label("revision", bi.Revision))
}

// WriteFleetPrometheus renders the coordinator-only fleet families.
// Separate from WritePrometheus so the single-process exposition stays
// byte-identical to earlier releases.
func (m *Metrics) WriteFleetPrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("wolfd_nodes_registered_total", "Analyzer nodes that ever registered.", m.NodesRegistered.Load())
	counter("wolfd_nodes_lost_total", "Analyzer nodes declared lost after missed heartbeats.", m.NodesLost.Load())
	gauge("wolfd_nodes_alive", "Currently registered, non-lost analyzer nodes.", m.NodesAlive.Load())
	counter("wolfd_jobs_reassigned_total", "Jobs re-queued after a revoked lease (including straggler re-offers).", m.JobsReassigned.Load())
	counter("wolfd_lease_renewals_total", "Work lease renewals granted.", m.LeaseRenewals.Load())
	counter("wolfd_results_duplicate_total", "Completions that lost the first-result-wins race.", m.DuplicateResults.Load())
}
