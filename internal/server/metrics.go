package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"wolf/internal/core"
)

// Metrics is the wolfd in-process metrics registry. Counters are plain
// atomics — no external metrics dependency — rendered in Prometheus text
// exposition format at GET /metrics so standard scrapers work unchanged.
type Metrics struct {
	// JobsAccepted counts jobs admitted to the queue.
	JobsAccepted atomic.Int64
	// JobsRejected counts uploads refused because the queue was full.
	JobsRejected atomic.Int64
	// JobsCompleted counts jobs whose analysis finished.
	JobsCompleted atomic.Int64
	// JobsFailed counts jobs that errored (including panics).
	JobsFailed atomic.Int64
	// JobsTimedOut counts jobs cancelled by the per-job timeout (also
	// counted in JobsFailed).
	JobsTimedOut atomic.Int64
	// JobsPanicked counts recovered analysis panics (also counted in
	// JobsFailed).
	JobsPanicked atomic.Int64
	// QueueDepth is the number of queued-but-not-started jobs.
	QueueDepth atomic.Int64

	// Per-phase analysis latency sums in nanoseconds, mirroring
	// core.Timings; with the completed-jobs counter these give average
	// phase latency.
	DetectNs   atomic.Int64
	PruneNs    atomic.Int64
	GenerateNs atomic.Int64
	// AnalysisNs is total wall-clock analysis time (including queue-side
	// recording for workload jobs).
	AnalysisNs atomic.Int64
}

// observe folds one completed analysis into the registry.
func (m *Metrics) observe(rep *core.Report, total time.Duration) {
	m.JobsCompleted.Add(1)
	m.DetectNs.Add(int64(rep.Timings.CycleDetect))
	m.PruneNs.Add(int64(rep.Timings.Prune))
	m.GenerateNs.Add(int64(rep.Timings.Generate))
	m.AnalysisNs.Add(int64(total))
}

// WritePrometheus renders the registry in Prometheus text exposition
// format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("wolfd_jobs_accepted_total", "Jobs admitted to the queue.", m.JobsAccepted.Load())
	counter("wolfd_jobs_rejected_total", "Uploads refused because the queue was full.", m.JobsRejected.Load())
	counter("wolfd_jobs_completed_total", "Jobs whose analysis finished.", m.JobsCompleted.Load())
	counter("wolfd_jobs_failed_total", "Jobs that errored.", m.JobsFailed.Load())
	counter("wolfd_jobs_timeout_total", "Jobs cancelled by the per-job timeout.", m.JobsTimedOut.Load())
	counter("wolfd_jobs_panic_total", "Recovered analysis panics.", m.JobsPanicked.Load())
	gauge("wolfd_queue_depth", "Queued-but-not-started jobs.", m.QueueDepth.Load())
	counter("wolfd_phase_detect_ns_total", "Cumulative cycle-detection time.", m.DetectNs.Load())
	counter("wolfd_phase_prune_ns_total", "Cumulative pruner time.", m.PruneNs.Load())
	counter("wolfd_phase_generate_ns_total", "Cumulative generator time.", m.GenerateNs.Load())
	counter("wolfd_analysis_ns_total", "Cumulative end-to-end analysis time.", m.AnalysisNs.Load())
}
