package server

// Fleet (coordinator + analyzer) tests: the failure drills behind the
// robustness story. Raw-protocol tests drive the lease endpoints by
// hand so expiry, reassignment, exhaustion, stragglers and duplicate
// completions happen deterministically; the end-to-end test runs a
// real internal/fleet.Analyzer against the coordinator and checks the
// distributed path lands the same defects as the local one.

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wolf/internal/core"
	"wolf/internal/fleet"
	"wolf/internal/store"
	"wolf/internal/trace"
)

// fleetPost posts v as JSON and decodes the reply into out (when 2xx
// and out != nil), returning the status code.
func fleetPost(t *testing.T, url string, v, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 && resp.StatusCode != http.StatusNoContent && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// registerNode registers one analyzer identity, returning its ID.
func registerNode(t *testing.T, base, name string) string {
	t.Helper()
	var view fleet.RegisterView
	if code := fleetPost(t, base+"/v1/nodes", fleet.RegisterRequest{Name: name}, &view); code != http.StatusOK {
		t.Fatalf("register = %d", code)
	}
	return view.ID
}

// pullWork polls /v1/work/pull as node until a grant arrives.
func pullWork(t *testing.T, base, node string) fleet.WorkView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var w fleet.WorkView
		code := fleetPost(t, base+"/v1/work/pull", fleet.PullRequest{Node: node}, &w)
		switch code {
		case http.StatusOK:
			return w
		case http.StatusNoContent:
			time.Sleep(5 * time.Millisecond)
		default:
			t.Fatalf("pull = %d", code)
		}
	}
	t.Fatal("no work granted in time")
	return fleet.WorkView{}
}

// uploadFig4 uploads the Figure 4 trace and returns the job ID.
func uploadFig4(t *testing.T, base string) string {
	t.Helper()
	tr := fig4Trace(t)
	var body bytes.Buffer
	if err := tr.Write(&body); err != nil {
		t.Fatal(err)
	}
	code, accepted := postTrace(t, base+"/v1/traces", body.Bytes(), nil)
	if code != http.StatusAccepted {
		t.Fatalf("upload = %d", code)
	}
	id, _ := accepted["id"].(string)
	if id == "" {
		t.Fatal("no job id in upload reply")
	}
	return id
}

// okComplete is a minimal successful completion for protocol tests
// that do not care about report contents.
func okComplete(node, job string) fleet.CompleteRequest {
	return fleet.CompleteRequest{
		Node: node, Job: job, OK: true,
		Report: json.RawMessage(`{"summary":{"candidates":0}}`),
	}
}

// TestFleetAnalyzerEndToEnd runs a real analyzer against a coordinator
// with a persistent corpus and checks the distributed path records the
// same defect fingerprints as a local analysis of the same trace.
func TestFleetAnalyzerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, ts := startServer(t, Config{
		QueueSize: 8, Role: RoleCoordinator, Store: st,
		LeaseTTL: 2 * time.Second, HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout: 5 * time.Second,
	})

	a := fleet.NewAnalyzer(fleet.AnalyzerConfig{
		Coordinator: ts.URL, Name: "e2e", Poll: 10 * time.Millisecond,
		JobTimeout: 15 * time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); a.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })

	id := uploadFig4(t, ts.URL)
	v := pollJob(t, ts.URL, id)
	if v.State != string(StateDone) {
		t.Fatalf("job = %s (%s), want done", v.State, v.Error)
	}
	if v.Node == "" || v.Attempts != 1 {
		t.Fatalf("job view node=%q attempts=%d, want a node and 1 attempt", v.Node, v.Attempts)
	}

	// The corpus must hold exactly what a local analysis records.
	rep, err := core.AnalyzeTraceCtx(context.Background(), fig4Trace(t), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := store.Summarize(rep)
	if len(want) == 0 {
		t.Fatal("local analysis found no defects to compare")
	}
	var defects struct {
		Defects []struct {
			Fingerprint string `json:"fingerprint"`
		} `json:"defects"`
	}
	if code := getJSON(t, ts.URL+"/v1/defects", &defects); code != http.StatusOK {
		t.Fatalf("defects = %d", code)
	}
	got := map[string]bool{}
	for _, d := range defects.Defects {
		got[d.Fingerprint] = true
	}
	for _, sum := range want {
		if !got[sum.Fingerprint] {
			t.Errorf("fingerprint %s missing from the distributed corpus", sum.Fingerprint)
		}
	}

	// The ops surface reports the fleet.
	var status StatusView
	if code := getJSON(t, ts.URL+"/v1/status", &status); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if status.Role != "coordinator" || status.Fleet == nil || status.Fleet.Nodes != 1 {
		t.Fatalf("status role=%q fleet=%+v, want coordinator with 1 node", status.Role, status.Fleet)
	}
	var nodes struct {
		Nodes []fleet.NodeView `json:"nodes"`
	}
	if code := getJSON(t, ts.URL+"/v1/nodes", &nodes); code != http.StatusOK {
		t.Fatalf("nodes = %d", code)
	}
	if len(nodes.Nodes) != 1 || nodes.Nodes[0].State != "alive" || nodes.Nodes[0].Completed != 1 {
		t.Fatalf("nodes = %+v, want one alive node with 1 completion", nodes.Nodes)
	}
	var hz map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if hz["role"] != "coordinator" || hz["nodes"] != float64(1) {
		t.Fatalf("healthz = %v, want coordinator with 1 node", hz)
	}
}

// TestFleetSingleModeSurface pins the default role: fleet mutation
// endpoints refuse, the node list is empty, and role reporting says
// single.
func TestFleetSingleModeSurface(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4})
	var w fleet.WorkView
	if code := fleetPost(t, ts.URL+"/v1/work/pull", fleet.PullRequest{Node: "n-0001"}, &w); code != http.StatusServiceUnavailable {
		t.Fatalf("pull in single mode = %d, want 503", code)
	}
	if code := fleetPost(t, ts.URL+"/v1/nodes", fleet.RegisterRequest{Name: "x"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("register in single mode = %d, want 503", code)
	}
	var nodes struct {
		Nodes []fleet.NodeView `json:"nodes"`
	}
	if code := getJSON(t, ts.URL+"/v1/nodes", &nodes); code != http.StatusOK || len(nodes.Nodes) != 0 {
		t.Fatalf("nodes in single mode = %d %v, want 200 and empty", code, nodes.Nodes)
	}
	var status StatusView
	getJSON(t, ts.URL+"/v1/status", &status)
	if status.Role != "single" || status.Fleet != nil {
		t.Fatalf("status role=%q fleet=%v, want single and no fleet block", status.Role, status.Fleet)
	}
	var hz map[string]any
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz["role"] != "single" {
		t.Fatalf("healthz role = %v, want single", hz["role"])
	}
}

// TestLeaseExpiryReassignFirstResultWins is the core failure drill: a
// lease expires unrenewed, the job is redelivered to a second node,
// and then the FIRST node — lease long dead — still delivers first and
// wins; the second result is a duplicate.
func TestLeaseExpiryReassignFirstResultWins(t *testing.T) {
	s, ts := startServer(t, Config{
		QueueSize: 8, Role: RoleCoordinator,
		LeaseTTL: 40 * time.Millisecond, HeartbeatTimeout: time.Hour,
		MaxDeliveries: 3,
	})
	nodeA := registerNode(t, ts.URL, "a")
	nodeB := registerNode(t, ts.URL, "b")
	id := uploadFig4(t, ts.URL)

	wA := pullWork(t, ts.URL, nodeA)
	if wA.Job != id || wA.Attempts != 1 {
		t.Fatalf("grant A = %+v, want job %s attempt 1", wA, id)
	}
	if wA.TraceB64 == "" {
		t.Fatal("grant A carries no trace blob")
	}
	// A never renews: the janitor expires the lease and the job goes
	// back to pending, where B picks it up.
	wB := pullWork(t, ts.URL, nodeB)
	if wB.Job != id || wB.Attempts != 2 {
		t.Fatalf("grant B = %+v, want job %s attempt 2", wB, id)
	}
	if s.metrics.JobsReassigned.Load() == 0 {
		t.Fatal("no reassignment counted")
	}

	// A's late result wins because the job is still non-terminal.
	var verdict fleet.CompleteView
	if code := fleetPost(t, ts.URL+"/v1/work/complete", okComplete(nodeA, id), &verdict); code != http.StatusOK {
		t.Fatalf("complete A = %d", code)
	}
	if verdict.Result != "accepted" {
		t.Fatalf("complete A result = %q, want accepted (first result wins)", verdict.Result)
	}
	if code := fleetPost(t, ts.URL+"/v1/work/complete", okComplete(nodeB, id), &verdict); code != http.StatusOK {
		t.Fatalf("complete B = %d", code)
	}
	if verdict.Result != "duplicate" {
		t.Fatalf("complete B result = %q, want duplicate", verdict.Result)
	}
	if v := pollJob(t, ts.URL, id); v.State != string(StateDone) {
		t.Fatalf("job = %s, want done", v.State)
	}
	if s.metrics.DuplicateResults.Load() != 1 {
		t.Fatalf("duplicates = %d, want 1", s.metrics.DuplicateResults.Load())
	}
}

// TestReassignExhausted pins the redelivery bound: a job whose leases
// keep expiring is terminal-failed with reason reassign-exhausted
// instead of ping-ponging forever.
func TestReassignExhausted(t *testing.T) {
	s, ts := startServer(t, Config{
		QueueSize: 8, Role: RoleCoordinator,
		LeaseTTL: 30 * time.Millisecond, HeartbeatTimeout: time.Hour,
		MaxDeliveries: 2,
	})
	node := registerNode(t, ts.URL, "flaky")
	id := uploadFig4(t, ts.URL)

	first := pullWork(t, ts.URL, node)
	if first.Job != id {
		t.Fatalf("granted %s, want %s", first.Job, id)
	}
	second := pullWork(t, ts.URL, node) // after expiry: redelivery 2/2
	if second.Job != id || second.Attempts != 2 {
		t.Fatalf("grant 2 = %+v, want job %s attempt 2", second, id)
	}
	// Let the final lease expire too; the budget is spent.
	v := pollJob(t, ts.URL, id)
	if v.State != string(StateFailed) || !strings.Contains(v.Error, "reassign budget exhausted") {
		t.Fatalf("job = %s (%q), want failed with reassign budget exhausted", v.State, v.Error)
	}
	if s.metrics.JobsReassignEx.Load() != 1 {
		t.Fatalf("reassign-exhausted count = %d, want 1", s.metrics.JobsReassignEx.Load())
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var text bytes.Buffer
	text.ReadFrom(resp.Body)
	if !strings.Contains(text.String(), `wolfd_jobs_failed_total{reason="reassign-exhausted"} 1`) {
		t.Fatal("metrics missing the reassign-exhausted failure reason")
	}
}

// TestNodeLostReassignsWork drills the heartbeat path: a node that
// goes silent past HeartbeatTimeout is declared lost, its heartbeats
// are refused with 404 (forcing re-registration), and its leased job
// is redelivered to a surviving node.
func TestNodeLostReassignsWork(t *testing.T) {
	s, ts := startServer(t, Config{
		QueueSize: 8, Role: RoleCoordinator,
		LeaseTTL: time.Hour, HeartbeatTimeout: 40 * time.Millisecond,
		MaxDeliveries: 3,
	})
	dead := registerNode(t, ts.URL, "dead")
	id := uploadFig4(t, ts.URL)
	if w := pullWork(t, ts.URL, dead); w.Job != id {
		t.Fatalf("granted %s, want %s", w.Job, id)
	}

	// The survivor registers and polls; each pull refreshes its own
	// liveness, while "dead" never heartbeats again.
	live := registerNode(t, ts.URL, "live")
	w := pullWork(t, ts.URL, live)
	if w.Job != id || w.Attempts != 2 {
		t.Fatalf("survivor grant = %+v, want job %s attempt 2", w, id)
	}
	if code := fleetPost(t, ts.URL+"/v1/nodes/"+dead+"/heartbeat", struct{}{}, nil); code != http.StatusNotFound {
		t.Fatalf("heartbeat from lost node = %d, want 404", code)
	}
	var nodes struct {
		Nodes []fleet.NodeView `json:"nodes"`
	}
	getJSON(t, ts.URL+"/v1/nodes", &nodes)
	states := map[string]string{}
	for _, n := range nodes.Nodes {
		states[n.ID] = n.State
	}
	if states[dead] != "lost" || states[live] != "alive" {
		t.Fatalf("node states = %v, want %s lost and %s alive", states, dead, live)
	}
	if s.metrics.NodesLost.Load() != 1 {
		t.Fatalf("nodes lost = %d, want 1", s.metrics.NodesLost.Load())
	}

	var verdict fleet.CompleteView
	fleetPost(t, ts.URL+"/v1/work/complete", okComplete(live, id), &verdict)
	if verdict.Result != "accepted" {
		t.Fatalf("survivor result = %q, want accepted", verdict.Result)
	}

	// The flight recorder saw the whole story.
	for _, kind := range []string{"node.join", "node.lost", "job.reassigned"} {
		var evs struct {
			Events []json.RawMessage `json:"events"`
		}
		getJSON(t, ts.URL+"/v1/debug/events?kind="+kind, &evs)
		if len(evs.Events) == 0 {
			t.Errorf("no %s event recorded", kind)
		}
	}
}

// TestStragglerReoffer drills the slow-node path: a lease renewed past
// MaxRenewals re-offers the job to a second node while the first keeps
// its lease; the second node's result lands first and wins, and the
// straggler's renewals then report the lease lost.
func TestStragglerReoffer(t *testing.T) {
	_, ts := startServer(t, Config{
		QueueSize: 8, Role: RoleCoordinator,
		LeaseTTL: time.Hour, HeartbeatTimeout: time.Hour,
		MaxDeliveries: 3, MaxRenewals: 1,
	})
	slow := registerNode(t, ts.URL, "slow")
	fast := registerNode(t, ts.URL, "fast")
	id := uploadFig4(t, ts.URL)
	if w := pullWork(t, ts.URL, slow); w.Job != id {
		t.Fatalf("granted %s, want %s", w.Job, id)
	}

	// Renewal 1 is within budget; renewal 2 crosses MaxRenewals=1 and
	// triggers the re-offer.
	for i := 0; i < 2; i++ {
		var rv fleet.RenewView
		if code := fleetPost(t, ts.URL+"/v1/work/renew", fleet.RenewRequest{Node: slow, Job: id}, &rv); code != http.StatusOK {
			t.Fatalf("renew %d = %d", i+1, code)
		}
	}
	w := pullWork(t, ts.URL, fast)
	if w.Job != id || w.Attempts != 2 {
		t.Fatalf("re-offer grant = %+v, want job %s attempt 2", w, id)
	}

	var verdict fleet.CompleteView
	fleetPost(t, ts.URL+"/v1/work/complete", okComplete(fast, id), &verdict)
	if verdict.Result != "accepted" {
		t.Fatalf("fast result = %q, want accepted", verdict.Result)
	}
	if code := fleetPost(t, ts.URL+"/v1/work/renew", fleet.RenewRequest{Node: slow, Job: id}, nil); code != http.StatusConflict {
		t.Fatalf("straggler renew after finish = %d, want 409", code)
	}
	fleetPost(t, ts.URL+"/v1/work/complete", okComplete(slow, id), &verdict)
	if verdict.Result != "duplicate" {
		t.Fatalf("straggler result = %q, want duplicate", verdict.Result)
	}
}

// TestCoordinatorRestartRequeuesLeased proves leased-but-unfinished
// work survives a coordinator restart: journal rehydration re-queues
// the job (attempt count intact) instead of failing it, and a fresh
// node finishes it against the corpus blob.
func TestCoordinatorRestartRequeuesLeased(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		QueueSize: 8, Role: RoleCoordinator,
		LeaseTTL: time.Hour, HeartbeatTimeout: time.Hour, MaxDeliveries: 3,
	}

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st1
	s1 := New(cfg)
	ts1 := httptest.NewServer(s1.Handler())
	node := registerNode(t, ts1.URL, "doomed")
	id := uploadFig4(t, ts1.URL)
	w1 := pullWork(t, ts1.URL, node)
	if w1.Job != id || w1.Attempts != 1 {
		t.Fatalf("grant = %+v, want job %s attempt 1", w1, id)
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	st1.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	cfg.Store = st2
	_, ts2 := startServer(t, cfg)

	// The restored job is queued again, not failed, with its delivery
	// history intact.
	var v JobView
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+id, &v); code != http.StatusOK {
		t.Fatalf("restored job status = %d", code)
	}
	if v.State != string(StateQueued) || v.Attempts != 1 {
		t.Fatalf("restored job = %s attempts=%d (%q), want queued with 1 attempt", v.State, v.Attempts, v.Error)
	}

	fresh := registerNode(t, ts2.URL, "fresh")
	w2 := pullWork(t, ts2.URL, fresh)
	if w2.Job != id || w2.Attempts != 2 {
		t.Fatalf("post-restart grant = %+v, want job %s attempt 2", w2, id)
	}
	if w2.TraceB64 == "" {
		t.Fatal("post-restart grant carries no trace blob (corpus rehydration failed)")
	}
	raw, err := base64.StdEncoding.DecodeString(w2.TraceB64)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("shipped blob does not decode: %v", err)
	}

	// Finish it like a real analyzer: analyze the shipped blob and
	// deliver the summaries, which must land in the corpus.
	rep, err := core.AnalyzeTraceCtx(context.Background(), tr, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	req := okComplete(fresh, id)
	req.Summaries = store.Summarize(rep)
	req.TraceHash = w2.TraceHash
	var verdict fleet.CompleteView
	if code := fleetPost(t, ts2.URL+"/v1/work/complete", req, &verdict); code != http.StatusOK || verdict.Result != "accepted" {
		t.Fatalf("post-restart complete = %d %q, want 200 accepted", code, verdict.Result)
	}
	if v := pollJob(t, ts2.URL, id); v.State != string(StateDone) {
		t.Fatalf("job = %s, want done", v.State)
	}
	var defects struct {
		Defects []json.RawMessage `json:"defects"`
	}
	getJSON(t, ts2.URL+"/v1/defects", &defects)
	if len(defects.Defects) == 0 {
		t.Fatal("no defects recorded after the post-restart completion")
	}
}

// TestCompleteFromForgottenNode pins the restart-completion edge: a
// result from a node identity the coordinator no longer knows (it
// restarted) is still accepted when the job is live — the work is
// done; identity is not what wins, timing is.
func TestCompleteFromForgottenNode(t *testing.T) {
	_, ts := startServer(t, Config{
		QueueSize: 8, Role: RoleCoordinator,
		LeaseTTL: 40 * time.Millisecond, HeartbeatTimeout: time.Hour,
		MaxDeliveries: 3,
	})
	node := registerNode(t, ts.URL, "a")
	id := uploadFig4(t, ts.URL)
	if w := pullWork(t, ts.URL, node); w.Job != id {
		t.Fatalf("granted %s, want %s", w.Job, id)
	}
	var verdict fleet.CompleteView
	if code := fleetPost(t, ts.URL+"/v1/work/complete", okComplete("n-9999", id), &verdict); code != http.StatusOK {
		t.Fatalf("complete = %d", code)
	}
	if verdict.Result != "accepted" {
		t.Fatalf("result = %q, want accepted even from an unknown node", verdict.Result)
	}
}
