package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wolf/internal/core"
	"wolf/internal/obs"
	"wolf/internal/store"
	"wolf/internal/trace"
	"wolf/internal/workloads"
	"wolf/sim"
)

// fig4TraceFrom records a Figure 4 detection trace on the first
// terminating seed at or after from, so tests can get two distinct
// executions of the same defect.
func fig4TraceFrom(t *testing.T, from int64) (*trace.Trace, int64) {
	t.Helper()
	w, ok := workloads.ByName("Figure4")
	if !ok {
		t.Fatal("Figure4 not registered")
	}
	for seed := from; seed < from+300; seed++ {
		prog, opts := w.New()
		if out := sim.Run(prog, sim.NewRandomStrategy(seed), opts); out.Kind != sim.Terminated {
			continue
		}
		return core.Record(w.New, seed, 0), seed
	}
	t.Fatalf("no terminating Figure4 seed at or after %d", from)
	return nil, 0
}

func binBody(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// uploadAndFinish posts a trace and waits for its job to complete.
func uploadAndFinish(t *testing.T, base string, body []byte) JobView {
	t.Helper()
	code, accepted := postTrace(t, base+"/v1/traces", body, nil)
	if code != http.StatusAccepted {
		t.Fatalf("upload = %d", code)
	}
	return pollJob(t, base, accepted["id"].(string))
}

// TestCorpusAggregatesAcrossExecutions is the tentpole's e2e criterion:
// two distinct recorded executions of the same workload deadlock fold
// into ONE defect record whose occurrence count is 2.
func TestCorpusAggregatesAcrossExecutions(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	_, ts := startServer(t, Config{Workers: 2, QueueSize: 8, Store: st})

	tr1, seed1 := fig4TraceFrom(t, 1)
	tr2, _ := fig4TraceFrom(t, seed1+1)
	v1 := uploadAndFinish(t, ts.URL, binBody(t, tr1))
	v2 := uploadAndFinish(t, ts.URL, binBody(t, tr2))
	if v1.State != string(StateDone) || v2.State != string(StateDone) {
		t.Fatalf("jobs = %s / %s", v1.State, v2.State)
	}
	if v1.TraceHash == "" || v2.TraceHash == "" || v1.TraceHash == v2.TraceHash {
		t.Fatalf("trace hashes %q / %q: want distinct, non-empty", v1.TraceHash, v2.TraceHash)
	}

	var defects struct {
		Defects []store.DefectRecord `json:"defects"`
	}
	if code := getJSON(t, ts.URL+"/v1/defects", &defects); code != http.StatusOK {
		t.Fatalf("defects = %d", code)
	}
	if len(defects.Defects) != 1 {
		t.Fatalf("defect records = %d, want 1 (same deadlock, two executions)", len(defects.Defects))
	}
	d := defects.Defects[0]
	if d.Occurrences != 2 {
		t.Errorf("occurrences = %d, want 2", d.Occurrences)
	}
	if len(d.Traces) != 2 {
		t.Errorf("confirming traces = %d, want 2", len(d.Traces))
	}
	if len(d.Fingerprint) != 64 {
		t.Errorf("fingerprint %q not sha256 hex", d.Fingerprint)
	}

	// Single-defect fetch works by full fingerprint and by short prefix.
	var one store.DefectRecord
	if code := getJSON(t, ts.URL+"/v1/defects/"+d.Fingerprint, &one); code != http.StatusOK || one.Fingerprint != d.Fingerprint {
		t.Errorf("defect by fingerprint = %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/defects/"+d.Fingerprint[:12], &one); code != http.StatusOK || one.Fingerprint != d.Fingerprint {
		t.Errorf("defect by short fingerprint = %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/defects/"+strings.Repeat("0", 64), nil); code != http.StatusNotFound {
		t.Errorf("unknown defect = %d, want 404", code)
	}
}

// TestCorpusSurvivesRestart kills the server (plus store) and brings up
// a fresh instance over the same data dir: traces, defect records and
// job history must all come back, and the rehydrated job endpoints must
// degrade the way the API promises.
func TestCorpusSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	s1 := New(Config{Workers: 2, QueueSize: 8, Store: st})
	ts1 := httptest.NewServer(s1.Handler())

	tr, _ := fig4TraceFrom(t, 1)
	done := uploadAndFinish(t, ts1.URL, binBody(t, tr))
	if done.State != string(StateDone) {
		t.Fatalf("job = %+v", done)
	}
	var rep1 map[string]any
	if code := getJSON(t, ts1.URL+"/v1/jobs/"+done.ID+"/report", &rep1); code != http.StatusOK {
		t.Fatalf("report before restart = %d", code)
	}

	// Kill: shut the server down and close the store cleanly.
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	s1.Shutdown(ctx)
	cancel()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory.
	st2 := openStore(t, dir)
	defer st2.Close()
	_, ts2 := startServer(t, Config{Workers: 2, QueueSize: 8, Store: st2})

	// The job came back, terminal, with its trace hash.
	v := JobView{}
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+done.ID, &v); code != http.StatusOK {
		t.Fatalf("job after restart = %d", code)
	}
	if v.State != string(StateDone) || v.TraceHash != done.TraceHash {
		t.Fatalf("rehydrated job = %+v, want done with hash %s", v, done.TraceHash)
	}

	// The report survives verbatim from the journal.
	var rep2 map[string]any
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+done.ID+"/report", &rep2); code != http.StatusOK {
		t.Fatalf("report after restart = %d", code)
	}
	if rep1["tool"] != rep2["tool"] {
		t.Errorf("report tool changed across restart: %v vs %v", rep1["tool"], rep2["tool"])
	}

	// The in-memory SDG did not survive; dot says so explicitly.
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+done.ID+"/dot", nil); code != http.StatusGone {
		t.Errorf("dot after restart = %d, want 410", code)
	}

	// The timeline is rebuilt from the corpus blob.
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+done.ID+"/timeline", nil); code != http.StatusOK {
		t.Errorf("timeline after restart = %d, want 200", code)
	}

	// The trace blob itself is still addressable and the defect survived.
	resp, err := http.Get(ts2.URL + "/v1/traces/" + done.TraceHash)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("trace blob after restart = %d", resp.StatusCode)
	}
	var defects struct {
		Defects []store.DefectRecord `json:"defects"`
	}
	if code := getJSON(t, ts2.URL+"/v1/defects", &defects); code != http.StatusOK || len(defects.Defects) != 1 {
		t.Fatalf("defects after restart: code=%d n=%d, want 1", code, len(defects.Defects))
	}

	// Replaying the stored trace regenerates analysis (and the graphs a
	// fresh job carries), counting another occurrence of the defect.
	code, accepted := postTrace(t, ts2.URL+"/v1/traces/"+done.TraceHash+"/replay", nil, nil)
	if code != http.StatusAccepted {
		t.Fatalf("replay = %d", code)
	}
	rv := pollJob(t, ts2.URL, accepted["id"].(string))
	if rv.State != string(StateDone) || rv.TraceHash != done.TraceHash {
		t.Fatalf("replay job = %+v", rv)
	}
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+rv.ID+"/dot", nil); code != http.StatusOK {
		t.Errorf("dot on replay job = %d, want 200", code)
	}
	if code := getJSON(t, ts2.URL+"/v1/defects", &defects); code != http.StatusOK || len(defects.Defects) != 1 {
		t.Fatalf("defects after replay: code=%d n=%d", code, len(defects.Defects))
	}
	if got := defects.Defects[0].Occurrences; got != 2 {
		t.Errorf("occurrences after replay = %d, want 2", got)
	}
}

// TestLostJobFailedOnRestart: a job persisted as queued (the process
// died before a worker picked it up) must come back failed, not hang.
func TestLostJobFailedOnRestart(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	if err := st.AppendJob(store.JobRecord{
		ID:      "j-000007",
		State:   "running",
		Source:  "upload",
		Created: time.Now().UTC(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4, Store: st2})
	var v JobView
	if code := getJSON(t, ts.URL+"/v1/jobs/j-000007", &v); code != http.StatusOK {
		t.Fatalf("lost job = %d", code)
	}
	if v.State != string(StateFailed) || !strings.Contains(v.Error, "lost") {
		t.Errorf("lost job = %+v, want failed with a lost-in-restart error", v)
	}
	// The correction was journaled: the ID sequence continues past it
	// and new jobs do not collide.
	tr, _ := fig4TraceFrom(t, 1)
	nv := uploadAndFinish(t, ts.URL, binBody(t, tr))
	if nv.ID <= "j-000007" {
		t.Errorf("new job ID %s did not continue past restored sequence", nv.ID)
	}
}

// TestTraceDeleteEndpoint: DELETE removes the blob; the defect record
// keeps its dangling reference.
func TestTraceDeleteEndpoint(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4, Store: st})
	tr, _ := fig4TraceFrom(t, 1)
	v := uploadAndFinish(t, ts.URL, binBody(t, tr))

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/traces/"+v.TraceHash, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/v1/traces/"+v.TraceHash, nil); code != http.StatusNotFound {
		t.Errorf("get after delete = %d", code)
	}
	var defects struct {
		Defects []store.DefectRecord `json:"defects"`
	}
	if code := getJSON(t, ts.URL+"/v1/defects", &defects); code != http.StatusOK || len(defects.Defects) != 1 {
		t.Fatalf("defect record must survive trace deletion")
	}
}

// TestJobsFilter: GET /v1/jobs?state=&limit= narrows the listing; bad
// values are 400s, not silent full listings.
func TestJobsFilter(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 8, Store: st})
	tr, _ := fig4TraceFrom(t, 1)
	body := binBody(t, tr)
	var last JobView
	for i := 0; i < 3; i++ {
		last = uploadAndFinish(t, ts.URL, body)
	}

	var out struct {
		Jobs []JobView `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?state=done", &out); code != http.StatusOK || len(out.Jobs) != 3 {
		t.Fatalf("state=done: code=%d n=%d, want 3", code, len(out.Jobs))
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?state=failed", &out); code != http.StatusOK || len(out.Jobs) != 0 {
		t.Errorf("state=failed: code=%d n=%d, want 0", code, len(out.Jobs))
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?state=done&limit=1", &out); code != http.StatusOK || len(out.Jobs) != 1 {
		t.Fatalf("limit=1: code=%d n=%d", code, len(out.Jobs))
	}
	if out.Jobs[0].ID != last.ID {
		t.Errorf("limit keeps %s, want most recent %s", out.Jobs[0].ID, last.ID)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?state=bogus", nil); code != http.StatusBadRequest {
		t.Errorf("state=bogus = %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs?limit=x", nil); code != http.StatusBadRequest {
		t.Errorf("limit=x = %d, want 400", code)
	}
}

// TestCorpusEndpointsWithoutStore: without -data-dir the corpus API is
// a clear 503, not a panic or a silent empty list.
func TestCorpusEndpointsWithoutStore(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4})
	for _, url := range []string{
		ts.URL + "/v1/traces",
		ts.URL + "/v1/traces/" + strings.Repeat("a", 64),
		ts.URL + "/v1/defects",
		ts.URL + "/v1/defects/" + strings.Repeat("a", 64),
	} {
		if code := getJSON(t, url, nil); code != http.StatusServiceUnavailable {
			t.Errorf("%s = %d, want 503", url, code)
		}
	}
}

// TestMetricsIncludeStore: /metrics gains the wolfd_store_* family when
// a corpus is attached, and the combined exposition stays lint-clean.
func TestMetricsIncludeStore(t *testing.T) {
	st := openStore(t, t.TempDir())
	defer st.Close()
	_, ts := startServer(t, Config{Workers: 1, QueueSize: 4, Store: st})
	tr, _ := fig4TraceFrom(t, 1)
	uploadAndFinish(t, ts.URL, binBody(t, tr))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{"wolfd_store_traces 1", "wolfd_store_defects 1", "wolfd_store_jobs"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if errs := obs.PromLint(strings.NewReader(text)); len(errs) != 0 {
		t.Errorf("promlint with store metrics: %v", errs)
	}
}
